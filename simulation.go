package fastreg

import (
	"fmt"
	"strings"

	"fastreg/internal/atomicity"
	"fastreg/internal/consistency"
	"fastreg/internal/netsim"
	"fastreg/internal/types"
	"fastreg/internal/vclock"
	"fastreg/internal/workload"
)

// SimOptions configures a deterministic Simulation.
type SimOptions struct {
	// Seed drives every random choice; equal seeds give identical
	// executions (default 1).
	Seed int64
	// MinDelay/MaxDelay bound the one-way message delay in virtual time
	// units (default 10/10, i.e. constant).
	MinDelay, MaxDelay int
	// ReaderSkips maps reader index → server index whose messages are
	// delayed past the end of the execution (the paper's "skip"); at most
	// MaxCrashes skips per client keep operations live.
	ReaderSkips map[int]int
}

func (o SimOptions) delay() netsim.DelayFn {
	lo, hi := o.MinDelay, o.MaxDelay
	if lo <= 0 {
		lo = 10
	}
	if hi < lo {
		hi = lo
	}
	var d netsim.DelayFn
	if lo == hi {
		d = netsim.ConstDelay(vclock.Duration(lo))
	} else {
		d = netsim.UniformDelay(vclock.Duration(lo), vclock.Duration(hi))
	}
	for reader, server := range o.ReaderSkips {
		d = netsim.Skip(d, types.Reader(reader), types.Server(server))
	}
	return d
}

// Latency summarizes operation latencies in virtual time units.
type Latency struct {
	Count    int
	Mean     float64
	P50, P99 float64
}

func latencyOf(s workload.LatencyStats) Latency {
	return Latency{Count: s.Count, Mean: s.Mean, P50: s.P50, P99: s.P99}
}

// String renders the latency summary.
func (l Latency) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%.1f p99=%.1f", l.Count, l.Mean, l.P50, l.P99)
}

// Consistency quantifies how far a history deviates from atomicity — the
// paper's Section 7 future-work direction, after the authors' 2-atomicity
// line of work. KAtomicity = 1 means every read returned the freshest
// completed value.
type Consistency struct {
	StaleReads   int
	MaxStaleness int
	KAtomicity   int
	Inversions   int
	StaleRate    float64
}

// String renders the consistency summary.
func (c Consistency) String() string {
	return fmt.Sprintf("k-atomicity=%d stale=%d (%.1f%%) inversions=%d",
		c.KAtomicity, c.StaleReads, 100*c.StaleRate, c.Inversions)
}

// WorkloadResult is the outcome of Simulation.Run.
type WorkloadResult struct {
	WriteLatency Latency
	ReadLatency  Latency
	Check        CheckResult
	// Consistency quantifies the deviation when Check is not atomic (and
	// confirms KAtomicity = 1 when it is).
	Consistency Consistency
	// Pending counts operations that could not complete (quorum loss).
	Pending int
}

// Simulation is a deterministic discrete-event run of a cluster under a
// closed-loop workload — the environment for latency and adversarial
// experiments. Unlike Cluster, time is virtual: latency numbers are exact
// functions of round-trip counts and configured delays.
type Simulation struct {
	sim *netsim.Sim
}

// NewSimulation builds the simulated cluster.
func NewSimulation(cfg Config, p Protocol, opts SimOptions) (*Simulation, error) {
	impl, err := p.impl()
	if err != nil {
		return nil, err
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	sim, err := netsim.New(cfg.internal(), impl, netsim.WithSeed(seed), netsim.WithDelay(opts.delay()))
	if err != nil {
		return nil, err
	}
	return &Simulation{sim: sim}, nil
}

// CrashServerAt schedules server s_i to crash at the given virtual time.
func (s *Simulation) CrashServerAt(i int, at int64) {
	s.sim.CrashServer(types.Server(i), vclock.Time(at))
}

// Run drives a closed-loop workload (every writer issues writesPerWriter
// writes, every reader readsPerReader reads) to completion and returns
// latency and atomicity results.
func (s *Simulation) Run(writesPerWriter, readsPerReader int) WorkloadResult {
	h := workload.Run(s.sim, workload.Mix{WritesPerWriter: writesPerWriter, ReadsPerReader: readsPerReader})
	stats := workload.Measure(h)
	res := atomicity.Check(h)
	cons := consistency.Analyze(h)
	return WorkloadResult{
		WriteLatency: latencyOf(stats[types.OpWrite]),
		ReadLatency:  latencyOf(stats[types.OpRead]),
		Pending:      len(h.Pending()),
		Check: CheckResult{
			Atomic:      res.Atomic,
			Explanation: res.String(),
			Operations:  len(h.Completed()),
		},
		Consistency: Consistency{
			StaleReads:   cons.StaleReads,
			MaxStaleness: cons.MaxStaleness,
			KAtomicity:   cons.KAtomicity,
			Inversions:   cons.Inversions,
			StaleRate:    cons.StaleRate,
		},
	}
}

// Transcript returns the recorded execution, one operation per line — the
// Fig 1 message-flow view at operation granularity.
func (s *Simulation) Transcript() string {
	return strings.TrimRight(s.sim.History().String(), "\n")
}
