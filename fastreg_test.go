package fastreg

import (
	"strings"
	"sync"
	"testing"
)

func TestProtocolsResolve(t *testing.T) {
	for _, p := range Protocols() {
		impl, err := p.impl()
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if impl.WriteRounds() < 1 || impl.ReadRounds() < 1 {
			t.Errorf("%s: bad round counts", p)
		}
	}
	if _, err := Protocol("nope").impl(); err == nil {
		t.Error("unknown protocol resolved")
	}
}

func TestConfigImplementableTable1(t *testing.T) {
	cfg := DefaultConfig()
	want := map[Protocol]bool{
		W2R2: true, W2R1: true, W1R2: false, W1R1: false, ABD: false, FullInfo: false,
	}
	for p, expect := range want {
		got, err := cfg.Implementable(p)
		if err != nil {
			t.Fatal(err)
		}
		if got != expect {
			t.Errorf("Implementable(%s) = %v, want %v", p, got, expect)
		}
	}
	if _, err := cfg.Implementable(Protocol("x")); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{Servers: -1}).Validate(); err == nil {
		t.Error("bad config validated")
	}
}

func TestVersionOrderAndString(t *testing.T) {
	a := Version{TS: 1, Writer: 1}
	b := Version{TS: 1, Writer: 2}
	c := Version{TS: 2, Writer: 1}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Error("version order wrong")
	}
	if a.String() != "(1,w1)" {
		t.Errorf("String = %q", a.String())
	}
}

func TestClusterReadYourWrites(t *testing.T) {
	c, err := NewCluster(DefaultConfig(), W2R2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ver, err := c.Write(1, "hello")
	if err != nil {
		t.Fatal(err)
	}
	if ver.TS < 1 || ver.Writer != 1 {
		t.Fatalf("version = %v", ver)
	}
	val, rver, err := c.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	if val != "hello" || rver != ver {
		t.Fatalf("read %q %v", val, rver)
	}
	res := c.Check()
	if !res.Atomic || res.Operations != 2 {
		t.Fatalf("check = %+v", res)
	}
}

func TestClusterRangeValidation(t *testing.T) {
	c, err := NewCluster(DefaultConfig(), W2R1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write(0, "x"); err == nil {
		t.Error("writer 0 accepted")
	}
	if _, _, err := c.Read(3); err == nil {
		t.Error("reader 3 accepted")
	}
}

func TestClusterConcurrentAtomic(t *testing.T) {
	for _, p := range []Protocol{W2R2, W2R1} {
		p := p
		t.Run(string(p), func(t *testing.T) {
			cfg := Config{Servers: 7, MaxCrashes: 1, Readers: 2, Writers: 2}
			c, err := NewCluster(cfg, p)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			var wg sync.WaitGroup
			for i := 1; i <= 2; i++ {
				i := i
				wg.Add(2)
				go func() {
					defer wg.Done()
					for j := 0; j < 10; j++ {
						if _, err := c.Write(i, "v"); err != nil {
							t.Errorf("write: %v", err)
							return
						}
					}
				}()
				go func() {
					defer wg.Done()
					for j := 0; j < 10; j++ {
						if _, _, err := c.Read(i); err != nil {
							t.Errorf("read: %v", err)
							return
						}
					}
				}()
			}
			wg.Wait()
			res := c.Check()
			if !res.Atomic {
				t.Fatalf("not atomic: %s", res.Explanation)
			}
			if res.Operations != 40 {
				t.Fatalf("operations = %d", res.Operations)
			}
		})
	}
}

func TestClusterCrashTolerance(t *testing.T) {
	c, err := NewCluster(DefaultConfig(), W2R2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write(1, "before"); err != nil {
		t.Fatal(err)
	}
	c.CrashServer(3)
	val, _, err := c.Read(2)
	if err != nil {
		t.Fatal(err)
	}
	if val != "before" {
		t.Fatalf("read %q", val)
	}
}

func TestSimulationLatencyShape(t *testing.T) {
	// W2R1 vs W2R2 at the same constant delay: fast read is half the slow
	// read; writes are equal.
	run := func(p Protocol) WorkloadResult {
		sim, err := NewSimulation(DefaultConfig(), p, SimOptions{MinDelay: 50, MaxDelay: 50})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run(5, 5)
	}
	slow := run(W2R2)
	fast := run(W2R1)
	if !slow.Check.Atomic || !fast.Check.Atomic {
		t.Fatal("baseline runs not atomic")
	}
	if fast.ReadLatency.Mean*1.8 > slow.ReadLatency.Mean {
		t.Errorf("fast read %.1f not ≈ half of slow read %.1f", fast.ReadLatency.Mean, slow.ReadLatency.Mean)
	}
	if fast.WriteLatency.Mean < slow.WriteLatency.Mean*0.9 || fast.WriteLatency.Mean > slow.WriteLatency.Mean*1.1 {
		t.Errorf("write latencies should match: %.1f vs %.1f", fast.WriteLatency.Mean, slow.WriteLatency.Mean)
	}
}

func TestSimulationDeterministic(t *testing.T) {
	run := func() string {
		sim, err := NewSimulation(DefaultConfig(), W2R2, SimOptions{Seed: 7, MinDelay: 1, MaxDelay: 90})
		if err != nil {
			t.Fatal(err)
		}
		sim.Run(3, 3)
		return sim.Transcript()
	}
	if run() != run() {
		t.Fatal("same seed gave different transcripts")
	}
}

func TestSimulationCrashAndSkips(t *testing.T) {
	sim, err := NewSimulation(DefaultConfig(), W2R1, SimOptions{
		Seed: 3, MinDelay: 1, MaxDelay: 60,
		ReaderSkips: map[int]int{1: 2, 2: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.CrashServerAt(5, 500)
	res := sim.Run(4, 4)
	if !res.Check.Atomic {
		t.Fatalf("adversarial feasible run not atomic: %s", res.Check.Explanation)
	}
	if res.Pending != 0 {
		t.Fatalf("pending = %d", res.Pending)
	}
}

func TestSimulationRejectsUnknownProtocol(t *testing.T) {
	if _, err := NewSimulation(DefaultConfig(), Protocol("zzz"), SimOptions{}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestAnalysisFeasibility(t *testing.T) {
	if !FastReadFeasible(5, 1, 2) {
		t.Error("(5,1,2) should be feasible")
	}
	if FastReadFeasible(5, 1, 3) {
		t.Error("(5,1,3) should be infeasible")
	}
	if MaxFastReaders(5, 1) != 2 {
		t.Errorf("MaxFastReaders(5,1) = %d", MaxFastReaders(5, 1))
	}
	if MaxFastReaders(5, 0) != -1 {
		t.Error("t=0 should be unbounded")
	}
}

func TestProveFastWriteImpossible(t *testing.T) {
	rep, err := ProveFastWriteImpossible(5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations == 0 {
		t.Fatal("no violation found")
	}
	if !rep.LinksHold {
		t.Error("indistinguishability links failed")
	}
	if rep.CriticalServer == 0 {
		t.Error("critical server not found for the full-info candidate")
	}
	if rep.FirstViolation == "" || !strings.Contains(rep.Summary, "W1R2") {
		t.Errorf("report incomplete: %+v", rep)
	}
	// The naive W1R2 protocol dies too.
	rep2, err := ProveFastWriteImpossibleFor(W1R2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Violations == 0 {
		t.Fatal("naive candidate survived")
	}
	// A two-round-write protocol is rejected by the argument.
	if _, err := ProveFastWriteImpossibleFor(W2R2, 5); err == nil {
		t.Fatal("W2R2 accepted by the fast-write argument")
	}
}

func TestFastReadBoundaryTable(t *testing.T) {
	table := FastReadBoundary([][2]int{{5, 1}}, 2)
	if !strings.Contains(table, "Fig 9") || !strings.Contains(table, "S=5") {
		t.Errorf("table:\n%s", table)
	}
}
