package fastreg

import (
	"fastreg/internal/chains"
	"fastreg/internal/crucialinfo"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/sweep"
)

// FastReadFeasible reports the paper's necessary and sufficient condition
// for a fast-read (W2R1) implementation: R < S/t − 2 (Section 5).
func FastReadFeasible(servers, maxCrashes, readers int) bool {
	return quorum.Config{S: servers, T: maxCrashes, R: readers}.FastReadOK()
}

// MaxFastReaders returns the largest number of readers for which a W2R1
// implementation exists at the given S and t; -1 means unbounded (t = 0).
func MaxFastReaders(servers, maxCrashes int) int {
	return quorum.Config{S: servers, T: maxCrashes}.MaxFastReaders()
}

// ImpossibilityReport summarizes a run of the executable Theorem 1
// argument (Sections 3–4): the three-phase chain construction against a
// fast-write candidate.
type ImpossibilityReport struct {
	// Protocol is the candidate's name.
	Protocol string
	// Servers is S (t=1, W=2, R=2 fixed as in Section 3.1).
	Servers int
	// CriticalServer is the paper's s_i1 (0 if the candidate already
	// violated atomicity at a chain end, before Phase 2 was needed).
	CriticalServer int
	// ExecutionsChecked counts the constructed executions.
	ExecutionsChecked int
	// Violations counts the non-atomic ones; Theorem 1 guarantees ≥ 1.
	Violations int
	// FirstViolation locates the first violating execution ("phase/name").
	FirstViolation string
	// LinksHold reports that every indistinguishability the proof
	// constructs actually held — i.e. the violation is forced by the fast
	// write, not by nondeterminism.
	LinksHold bool
	// Summary is the human-readable report.
	Summary string
}

// ProveFastWriteImpossible runs the executable impossibility argument for
// W1R2 (Theorem 1) against the full-info fast-write candidate of Section
// 4.1 on S servers (S ≥ 3; t=1, W=2, R=2). It returns the violation the
// chain construction exhibits.
func ProveFastWriteImpossible(servers int) (*ImpossibilityReport, error) {
	return proveAgainst(crucialinfo.New(), servers)
}

// ProveFastWriteImpossibleFor runs the same argument against one of this
// package's own fast-write protocols (W1R2 or FullInfo).
func ProveFastWriteImpossibleFor(p Protocol, servers int) (*ImpossibilityReport, error) {
	impl, err := p.impl()
	if err != nil {
		return nil, err
	}
	return proveAgainst(impl, servers)
}

func proveAgainst(impl register.Protocol, servers int) (*ImpossibilityReport, error) {
	rep, err := chains.FindViolation(impl, servers)
	if err != nil {
		return nil, err
	}
	out := &ImpossibilityReport{
		Protocol:          rep.Protocol,
		Servers:           rep.S,
		ExecutionsChecked: len(rep.Verdicts),
		Violations:        len(rep.Violations),
		LinksHold:         rep.LinksHold,
		Summary:           rep.String(),
	}
	if rep.Alpha != nil {
		out.CriticalServer = rep.Alpha.Critical
	}
	if v := rep.First(); v != nil {
		out.FirstViolation = v.Phase + "/" + v.Execution
	}
	return out, nil
}

// FastReadBoundary sweeps the W2R1 feasibility boundary (Fig 9 / Section
// 5) for the given (S, t) pairs, running `trials` randomized adversarial
// executions per cell plus the directed inversion on the impossible side,
// and returns the rendered table.
func FastReadBoundary(configs [][2]int, trials int) string {
	return sweep.Render(sweep.Boundary(configs, trials))
}
