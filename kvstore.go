package fastreg

import (
	"fastreg/internal/atomicity"
	"fastreg/internal/kv"
)

// KVStore is a replicated key-value store built on one atomic register per
// key — the application shape the paper's introduction motivates (Cassandra,
// Redis, Riak). By the locality property of atomicity (Section 2.1) the
// per-key registers compose into an atomic store.
//
// The store runs on the multiplexed runtime (netsim.MultiLive): a single
// fleet of server goroutines serves every key, routing key-tagged messages
// to per-key protocol state held in sharded maps. The goroutine count is
// O(Servers) no matter how many keys the store holds, and CrashServer
// fails a replica for every key at once — the production shape, rather
// than one full cluster per key.
type KVStore struct {
	store *kv.Store
}

// NewKVStore creates a store with the given cluster shape and register
// protocol, on the multiplexed runtime.
func NewKVStore(cfg Config, p Protocol) (*KVStore, error) {
	impl, err := p.impl()
	if err != nil {
		return nil, err
	}
	s, err := kv.New(cfg.internal(), impl)
	if err != nil {
		return nil, err
	}
	return &KVStore{store: s}, nil
}

// Put writes value under key as writer w_i (1-based).
func (s *KVStore) Put(writer int, key, value string) error {
	return s.store.Put(writer, key, value)
}

// Get reads key as reader r_i (1-based); ok is false for never-written
// keys.
func (s *KVStore) Get(reader int, key string) (value string, ok bool, err error) {
	return s.store.Get(reader, key)
}

// CrashServer crashes server s_i for every key's register.
func (s *KVStore) CrashServer(i int) { s.store.CrashServer(i) }

// Keys lists the keys touched so far.
func (s *KVStore) Keys() []string { return s.store.Keys() }

// Check verifies atomicity of every per-key history; it returns the first
// violation found, or an all-clear result.
func (s *KVStore) Check() CheckResult {
	total := 0
	for key, h := range s.store.Histories() {
		res := atomicity.Check(h)
		total += len(h.Completed())
		if !res.Atomic {
			return CheckResult{
				Atomic:      false,
				Explanation: "key " + key + ": " + res.String(),
				Operations:  total,
			}
		}
	}
	return CheckResult{Atomic: true, Explanation: "all per-key histories atomic", Operations: total}
}

// Close shuts the store down.
func (s *KVStore) Close() { s.store.Close() }
