package fastreg

import (
	"context"
	"errors"

	"fastreg/internal/register"
)

// ErrTimeout reports a store operation abandoned because its context
// expired before a reply quorum arrived — typically more than MaxCrashes
// servers are unreachable. The operation's effect is indeterminate: a
// timed-out Put may still land at the servers.
var ErrTimeout = register.ErrTimeout

// IsTimeout reports whether err is (or wraps) ErrTimeout.
func IsTimeout(err error) bool { return errors.Is(err, ErrTimeout) }

// KVStore is the pre-Open store API: writer/reader indices threaded
// through every call instead of bound into session handles. It is a thin
// wrapper over Store and runs the same backends.
//
// Deprecated: use Open, which selects the backend by option
// (WithInProcess, WithTCP, WithPerKey) and returns context-first session
// handles.
type KVStore struct {
	s *Store
}

// NewKVStore creates a store with the given cluster shape and register
// protocol, on the multiplexed runtime.
//
// Deprecated: use Open(cfg, p) — the same backend, behind handles.
func NewKVStore(cfg Config, p Protocol) (*KVStore, error) {
	s, err := Open(cfg, p)
	if err != nil {
		return nil, err
	}
	return &KVStore{s: s}, nil
}

// NewKVStoreTCP creates a store whose replicas are remote cmd/regserver
// processes listening at addrs ("host:port" for s_1..s_Servers, in
// order).
//
// Deprecated: use Open(cfg, p, WithTCP(addrs...)) — the same backend,
// behind handles.
func NewKVStoreTCP(cfg Config, p Protocol, addrs []string) (*KVStore, error) {
	s, err := Open(cfg, p, WithTCP(addrs...))
	if err != nil {
		return nil, err
	}
	return &KVStore{s: s}, nil
}

// Store returns the handle-based Store this wrapper runs on — the
// migration path to the Open API.
func (s *KVStore) Store() *Store { return s.s }

// Put writes value under key as writer w_i (1-based).
func (s *KVStore) Put(writer int, key, value string) error {
	return s.s.put(context.Background(), writer, key, value)
}

// PutCtx is Put with a deadline: it returns an error wrapping ErrTimeout
// if ctx expires before the write's reply quorums arrive.
func (s *KVStore) PutCtx(ctx context.Context, writer int, key, value string) error {
	return s.s.put(ctx, writer, key, value)
}

// Get reads key as reader r_i (1-based); ok is false for never-written
// keys.
func (s *KVStore) Get(reader int, key string) (value string, ok bool, err error) {
	return s.s.get(context.Background(), reader, key)
}

// GetCtx is Get with a deadline; see PutCtx.
func (s *KVStore) GetCtx(ctx context.Context, reader int, key string) (value string, ok bool, err error) {
	return s.s.get(ctx, reader, key)
}

// CrashServer crashes server s_i for every key's register. On a TCP
// store this severs only this client's link to the replica.
func (s *KVStore) CrashServer(i int) { s.s.CrashServer(i) }

// Keys lists the keys touched so far.
func (s *KVStore) Keys() []string { return s.s.Keys() }

// Check verifies atomicity of every per-key history; it returns the first
// violation found, or an all-clear result.
func (s *KVStore) Check() CheckResult { return s.s.Check() }

// Close shuts the store down.
func (s *KVStore) Close() { s.s.Close() }
