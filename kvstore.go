package fastreg

import (
	"context"
	"errors"

	"fastreg/internal/atomicity"
	"fastreg/internal/kv"
	"fastreg/internal/register"
	"fastreg/internal/transport"
)

// ErrTimeout reports a store operation abandoned because its context
// expired before a reply quorum arrived — typically more than MaxCrashes
// servers are unreachable. The operation's effect is indeterminate: a
// timed-out Put may still land at the servers.
var ErrTimeout = register.ErrTimeout

// IsTimeout reports whether err is (or wraps) ErrTimeout.
func IsTimeout(err error) bool { return errors.Is(err, ErrTimeout) }

// KVStore is a replicated key-value store built on one atomic register per
// key — the application shape the paper's introduction motivates (Cassandra,
// Redis, Riak). By the locality property of atomicity (Section 2.1) the
// per-key registers compose into an atomic store.
//
// The store runs on the multiplexed runtime (netsim.MultiLive): a single
// fleet of server goroutines serves every key, routing key-tagged messages
// to per-key protocol state held in sharded maps. The goroutine count is
// O(Servers) no matter how many keys the store holds, and CrashServer
// fails a replica for every key at once — the production shape, rather
// than one full cluster per key.
type KVStore struct {
	store *kv.Store
}

// NewKVStore creates a store with the given cluster shape and register
// protocol, on the multiplexed runtime.
func NewKVStore(cfg Config, p Protocol) (*KVStore, error) {
	impl, err := p.impl()
	if err != nil {
		return nil, err
	}
	s, err := kv.New(cfg.internal(), impl)
	if err != nil {
		return nil, err
	}
	return &KVStore{store: s}, nil
}

// NewKVStoreTCP creates a store whose replicas are remote cmd/regserver
// processes listening at addrs ("host:port" for s_1..s_Servers, in
// order). The store becomes a network client: every Put/Get runs the
// register protocol's rounds over TCP connections (one per server,
// reconnected with backoff after failures). Use PutCtx/GetCtx to bound
// operations — with more than MaxCrashes servers unreachable an
// unbounded Put/Get blocks, exactly like the protocols' model demands,
// and only a context deadline (ErrTimeout) releases it. CrashServer only
// severs this client's link to the replica.
func NewKVStoreTCP(cfg Config, p Protocol, addrs []string) (*KVStore, error) {
	impl, err := p.impl()
	if err != nil {
		return nil, err
	}
	s, err := kv.NewRemote(cfg.internal(), impl, addrs, transport.DialTCP)
	if err != nil {
		return nil, err
	}
	return &KVStore{store: s}, nil
}

// Put writes value under key as writer w_i (1-based).
func (s *KVStore) Put(writer int, key, value string) error {
	return s.store.Put(writer, key, value)
}

// PutCtx is Put with a deadline: it returns an error wrapping ErrTimeout
// if ctx expires before the write's reply quorums arrive.
func (s *KVStore) PutCtx(ctx context.Context, writer int, key, value string) error {
	return s.store.PutCtx(ctx, writer, key, value)
}

// Get reads key as reader r_i (1-based); ok is false for never-written
// keys.
func (s *KVStore) Get(reader int, key string) (value string, ok bool, err error) {
	return s.store.Get(reader, key)
}

// GetCtx is Get with a deadline; see PutCtx.
func (s *KVStore) GetCtx(ctx context.Context, reader int, key string) (value string, ok bool, err error) {
	return s.store.GetCtx(ctx, reader, key)
}

// CrashServer crashes server s_i for every key's register. On a TCP
// store this severs only this client's link to the replica.
func (s *KVStore) CrashServer(i int) { s.store.CrashServer(i) }

// Keys lists the keys touched so far.
func (s *KVStore) Keys() []string { return s.store.Keys() }

// Check verifies atomicity of every per-key history; it returns the first
// violation found, or an all-clear result.
func (s *KVStore) Check() CheckResult {
	total := 0
	for key, h := range s.store.Histories() {
		res := atomicity.Check(h)
		total += len(h.Completed())
		if !res.Atomic {
			return CheckResult{
				Atomic:      false,
				Explanation: "key " + key + ": " + res.String(),
				Operations:  total,
			}
		}
	}
	return CheckResult{Atomic: true, Explanation: "all per-key histories atomic", Operations: total}
}

// Close shuts the store down.
func (s *KVStore) Close() { s.store.Close() }
