package fastreg

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"fastreg/internal/atomicity"
	"fastreg/internal/audit"
	"fastreg/internal/epoch"
	"fastreg/internal/kv"
	"fastreg/internal/netsim"
	"fastreg/internal/obs"
	"fastreg/internal/transport"
)

// captureSeq disambiguates the trace logs of multiple captured Opens in
// one process (the files are named client-<pid>-<seq>.trlog).
var captureSeq atomic.Int64

// Backend is the seam between a Store and the register runtimes: one
// multi-key, context-first contract (Write/Read/Crash/Histories/Keys/
// Close) that every runtime satisfies — netsim.MultiLive (the in-process
// multiplexed fleet), the legacy per-key runtime, and transport.Client
// (replicas behind real TCP). Open picks the implementation from its
// options; Store.Backend exposes the running one, which is how the
// backend conformance suite drives all three through identical code.
//
// The interface is sealed: its methods exchange internal types (tagged
// values, histories), so implementations outside this module are not
// possible — backend choice is configuration, not an extension point.
type Backend = kv.Backend

// ErrHandleInUse reports a session handle used from two goroutines at
// once. The register protocols require each writer and reader identity to
// issue operations sequentially (well-formed histories); a handle detects
// the violation and rejects the overlapping call instead of silently
// corrupting the protocol's client state.
var ErrHandleInUse = errors.New("fastreg: handle used concurrently")

// Store is a replicated key-value store — one multi-writer atomic
// register per key, composed atomically by the locality property of
// Section 2.1 — over any Backend. Open is the only constructor; the
// backend (in-process multiplexed fleet, per-key clusters, or a TCP
// client of a deployed regserver fleet) is chosen by options, so the
// code driving a Store is identical across deployment shapes.
//
// Clients are session handles: Writer(i) and Reader(i) bind an identity
// once and return a handle whose methods are context-first. Out-of-range
// identities fail at handle creation; concurrent use of one handle —
// illegal under the protocols' well-formedness requirement — is caught
// per call (ErrHandleInUse).
type Store struct {
	cfg     Config
	store   *kv.Store
	writers []*Writer
	readers []*Reader
	capture []*audit.Writer // trace logs to flush+close with the store

	// coord drives continuous-audit epoch cutover (nil without
	// WithAuditEpochs); epochDone stops its ticker goroutine.
	coord     *epoch.Coordinator
	epochDone chan struct{}

	// obsReg/tracer back Stats and DebugHandler; nil without
	// WithMetrics / WithSlowOpTrace (nil is the disabled state
	// throughout internal/obs).
	obsReg *obs.Registry
	tracer *obs.Tracer
}

// openOptions collects what Open's functional options configure.
type openOptions struct {
	kind         backendKind
	addrs        []string
	evictTTL     time.Duration
	unbatched    bool
	connsPerLink int
	vouchT       int
	captureDir   string
	rotateBytes  int64
	epochEvery   time.Duration
	metrics      bool
	slowOp       time.Duration
}

type backendKind int

const (
	backendInProcess backendKind = iota
	backendPerKey
	backendTCP
)

// Option configures Open.
type Option func(*openOptions)

// WithInProcess selects the in-process multiplexed backend (the
// default): one fixed fleet of server goroutines serves every key
// through key-tagged messages and sharded per-key state — O(Servers)
// goroutines no matter how many keys the store holds, and CrashServer
// fails a replica for every key at once.
func WithInProcess() Option {
	return func(o *openOptions) { o.kind = backendInProcess }
}

// WithPerKey selects the legacy per-key backend: one full
// goroutine-per-server register cluster per key, created lazily —
// O(keys × Servers) goroutines. It is the reference implementation the
// multiplexed runtime is regression-tested against; prefer the default
// for anything beyond a handful of keys.
func WithPerKey() Option {
	return func(o *openOptions) { o.kind = backendPerKey }
}

// WithTCP selects the network backend: the replicas are remote
// cmd/regserver processes listening at addrs ("host:port" for
// s_1..s_Servers, in order), and the store becomes a network client —
// every Put/Get runs the register protocol's rounds over TCP connections
// (one per server, reconnected with backoff after failures). Bound
// operations with their contexts: with more than MaxCrashes servers
// unreachable an unbounded operation blocks, exactly as the protocols'
// model demands, and only a context deadline (ErrTimeout) releases it.
// CrashServer only severs this client's link to the replica.
func WithTCP(addrs ...string) Option {
	return func(o *openOptions) {
		o.kind = backendTCP
		o.addrs = addrs
	}
}

// WithEvictionTTL bounds the store's per-key state: every ttl, keys with
// no operation in flight that went untouched for at least one full ttl
// window (and at most two) are evicted, so a long-running store serving
// a churning key population stops growing without bound.
//
// On the in-process backend this is full TTL-expiry semantics (Redis
// EXPIRE): client and server state are dropped together, and an evicted
// key reads as never-written again. On the TCP backend it bounds this
// client's memory only — protocol state machines, op counters and the
// key's recorded history; the replicas' state belongs to the regserver
// fleet and its own -evict-ttl. Either way evicted histories are gone,
// so don't combine eviction with Check unless every checked key stays
// hotter than the TTL. The per-key backend does not support eviction.
func WithEvictionTTL(ttl time.Duration) Option {
	return func(o *openOptions) { o.evictTTL = ttl }
}

// WithCapture enables audit capture: every operation this store
// completes (or fails) is appended, as it responds, to a trace log in
// dir — a "client-<pid>-<n>.trlog" file opened at Open and closed by
// Close. On the in-process backend each of the store's replicas
// additionally writes its own per-replica trace log (the requests it
// handled), so a single process captures the same set of logs a
// deployed fleet does; on the TCP backend the replica logs belong to
// the regserver processes and their own -capture flags.
//
// The logs are the input to cmd/regaudit: `regaudit check dir` merges
// every process's log into one multi-client history and re-runs the
// atomicity checker over it — the only way to verify a run that spans
// several client processes, where no single process's clock orders all
// operations. Capture is an observer: record appends are buffered and
// best-effort, and I/O errors never fail store operations. The per-key
// backend does not support capture, and capture cannot be combined with
// WithEvictionTTL (evicting a key resets its history clock, which would
// corrupt the log's time domain — Open rejects the pair).
func WithCapture(dir string) Option {
	return func(o *openOptions) { o.captureDir = dir }
}

// WithCaptureRotation enables size-based rotation of the trace logs
// WithCapture opens: once a log's current segment reaches maxBytes it
// is sealed and writing continues in "<path>.1", "<path>.2", … (see
// audit.Writer.RotateAt). regaudit — offline and follow mode — reads a
// rotation family as one logical log, so long-running captured stores
// stop growing any single file without losing auditability. Requires
// WithCapture; maxBytes must be positive.
func WithCaptureRotation(maxBytes int64) Option {
	return func(o *openOptions) { o.rotateBytes = maxBytes }
}

// WithAuditEpochs turns the capture logs into a CONTINUOUS audit
// stream: the store hosts a weight-throwing epoch coordinator
// (internal/epoch, Huang's termination-detection algorithm) and cuts an
// audit epoch roughly every interval. Each operation borrows weight
// from the current epoch and the transport splits it across the op's
// request frames; replicas forward it back on replies; when ALL weight
// thrown with an epoch's ops has returned, the epoch closes and an
// epoch-boundary record is stamped into every capture log this store
// owns — a history boundary FOUND under live traffic, never imposed:
// no operation ever blocks on a cutover. `regaudit follow` tails the
// logs and emits a per-epoch atomicity verdict while the fleet runs.
//
// Requires WithCapture (the boundaries go into its logs) and the
// WithTCP backend (weight rides the wire envelopes). Replica logs
// written by other processes (regserver -capture) are not stamped —
// co-hosted fleets like cmd/regstorm register their replica writers via
// Store.OnAuditEpoch. interval must be positive.
func WithAuditEpochs(interval time.Duration) Option {
	return func(o *openOptions) { o.epochEvery = interval }
}

// WithUnbatchedSends disables the TCP backend's message-level
// coalescing: every envelope goes out as its own frame, the pre-batching
// wire behavior. Benchmarks use it to measure what coalescing buys;
// production stores should leave batching on. TCP backend only.
func WithUnbatchedSends() Option {
	return func(o *openOptions) { o.unbatched = true }
}

// WithConnsPerLink opens n TCP connections to each replica instead of
// one (the default). Sends are steered round-robin across a link's
// connections and replies are correlated back to their operations by
// operation ID, so a reply may return on a different socket than the one
// that carried the request. At high client counts this removes the
// single per-server connection (its flusher goroutine and TCP stream) as
// a throughput ceiling; it multiplies sockets and dilutes per-connection
// batching, so keep the default unless a profile shows a link-side
// bottleneck. TCP backend only; n ≤ 1 is the default single connection.
func WithConnsPerLink(n int) Option {
	return func(o *openOptions) { o.connsPerLink = n }
}

// WithVouchedReads hardens the store's reads against Byzantine replicas:
// before the fast read's admissibility selection runs, every value
// reported by at most t servers is discarded. A fabricated value can
// appear in at most t replies when at most t replicas are Byzantine, so
// it never survives the filter — reads return only genuinely written
// values — while any value a correct read may return carries more than t
// honest reports under the fast-read feasibility condition, so nothing
// legitimate is lost. This is the value-authenticity half of the paper's
// Section 5.2 Byzantine extension (full Byzantine atomicity needs echo
// phases and is out of scope, as in the paper).
//
// The filter reasons about the W2R1 fast read's reply vectors; on every
// other protocol it would be unsound — W2R2 and ABD maximize over
// single-server acks a liar controls outright — so Open rejects the
// option unless the protocol is W2R1. TCP backend only (a Byzantine
// replica is a remote process by definition); t must be at least 1 and
// at most the cluster's crash tolerance makes operational sense.
func WithVouchedReads(t int) Option {
	return func(o *openOptions) { o.vouchT = t }
}

// WithMetrics enables the store's observability core: per-operation
// latency histograms (with p50/p95/p99 extraction) split by kind,
// rounds-per-operation, retry/failure counters, queue-depth and
// worker-occupancy gauges — surfaced through Store.Stats and the
// DebugHandler's /metrics endpoint. The in-process and TCP backends
// record under identical metric names, so their numbers are directly
// comparable. Recording costs one or two uncontended atomic adds per
// event; disabled (the default), the instrumented paths carry nil
// metrics and pay a single predictable branch — nothing measurable.
// The per-key backend does not support metrics.
func WithMetrics() Option {
	return func(o *openOptions) { o.metrics = true }
}

// WithSlowOpTrace makes every operation carry a round timeline
// (queued→sent→quorum→done) and retains — and dumps to stderr — every
// operation that takes threshold or longer, for the DebugHandler's
// /debug/slowops endpoint and Stats.SlowOps. Tracing is independent of
// WithMetrics and adds one pooled timeline (no steady-state allocation)
// per operation. TCP backend only; threshold must be positive.
func WithSlowOpTrace(threshold time.Duration) Option {
	return func(o *openOptions) { o.slowOp = threshold }
}

// Open starts a replicated KV store of the given cluster shape running
// the protocol, on the backend the options select (in-process
// multiplexed by default). It is the single entry point the deprecated
// NewKVStore/NewKVStoreTCP/NewCluster constructors are re-expressed
// over.
func Open(cfg Config, p Protocol, opts ...Option) (*Store, error) {
	impl, err := p.impl()
	if err != nil {
		return nil, err
	}
	var o openOptions
	for _, opt := range opts {
		opt(&o)
	}
	qcfg := cfg.internal()
	if err := qcfg.Validate(); err != nil {
		return nil, err
	}

	var (
		capture []*audit.Writer
		mopts   []netsim.MultiOption
		copts   []transport.ClientOption
		obsReg  *obs.Registry
		tracer  *obs.Tracer
	)
	if o.metrics {
		if o.kind == backendPerKey {
			return nil, fmt.Errorf("fastreg: the WithPerKey backend does not support WithMetrics")
		}
		obsReg = obs.New()
	}
	if o.slowOp > 0 {
		if o.kind != backendTCP {
			return nil, fmt.Errorf("fastreg: WithSlowOpTrace applies only to the WithTCP backend")
		}
		tracer = obs.NewTracer(o.slowOp, os.Stderr)
	}
	if o.vouchT != 0 {
		if o.kind != backendTCP {
			return nil, fmt.Errorf("fastreg: WithVouchedReads applies only to the WithTCP backend")
		}
		if o.vouchT < 0 {
			return nil, fmt.Errorf("fastreg: WithVouchedReads needs a fault budget of at least 1, got %d", o.vouchT)
		}
		if p != W2R1 {
			return nil, fmt.Errorf("fastreg: WithVouchedReads is sound only on the W2R1 fast read (its admissibility vectors are what the filter vouches over); %s reads maximize over single-server replies a Byzantine replica controls outright", p)
		}
		copts = append(copts, transport.WithVouchedReads(o.vouchT))
	}
	if obsReg != nil && o.kind == backendInProcess {
		mopts = append(mopts, netsim.WithMultiObs(obsReg))
	}
	if (obsReg != nil || tracer != nil) && o.kind == backendTCP {
		copts = append(copts, transport.WithClientObs(obsReg, tracer))
	}
	closeCapture := func() {
		for _, w := range capture {
			w.Close()
		}
	}
	if o.captureDir != "" {
		if o.kind == backendPerKey {
			return nil, fmt.Errorf("fastreg: the WithPerKey backend does not support WithCapture")
		}
		if o.evictTTL > 0 {
			// Eviction drops a key's state INCLUDING its clock; the re-
			// acquired key restarts at time zero, but the capture log's
			// earlier ops keep their high timestamps in the same clock
			// domain — the merge would read that as a (false, binding)
			// read-from-future. Refuse the combination rather than emit
			// trace logs whose verdicts can lie.
			return nil, fmt.Errorf("fastreg: WithCapture cannot be combined with WithEvictionTTL — evicting a key resets its history clock, which would corrupt the trace log's per-process time domain")
		}
		if err := os.MkdirAll(o.captureDir, 0o755); err != nil {
			return nil, fmt.Errorf("fastreg: capture dir: %w", err)
		}
		seq := captureSeq.Add(1)
		label := fmt.Sprintf("client-%d-%d", os.Getpid(), seq)
		cw, err := audit.NewFileWriter(filepath.Join(o.captureDir, label+audit.TraceExt), audit.ClientHeader(label, impl.Name(), qcfg))
		if err != nil {
			return nil, err
		}
		capture = append(capture, cw)
		switch o.kind {
		case backendInProcess:
			mopts = append(mopts, netsim.WithMultiOpCapture(cw.Op))
			sws := make([]*audit.Writer, cfg.Servers)
			for i := 1; i <= cfg.Servers; i++ {
				name := fmt.Sprintf("s%d-%d-%d%s", i, os.Getpid(), seq, audit.TraceExt)
				sw, err := audit.NewFileWriter(filepath.Join(o.captureDir, name), audit.ServerHeader(i, impl.Name(), qcfg))
				if err != nil {
					closeCapture()
					return nil, err
				}
				sws[i-1] = sw
				capture = append(capture, sw)
			}
			mopts = append(mopts, netsim.WithMultiServerCapture(audit.MultiServerHook(sws)))
		case backendTCP:
			copts = append(copts, transport.WithOpCapture(cw.Op))
		}
	}
	if o.rotateBytes != 0 {
		if o.rotateBytes < 0 {
			closeCapture()
			return nil, fmt.Errorf("fastreg: WithCaptureRotation needs a positive size, got %d", o.rotateBytes)
		}
		if o.captureDir == "" {
			return nil, fmt.Errorf("fastreg: WithCaptureRotation requires WithCapture")
		}
		for _, w := range capture {
			w.RotateAt(o.rotateBytes)
		}
	}
	var coord *epoch.Coordinator
	if o.epochEvery != 0 {
		if o.epochEvery < 0 {
			closeCapture()
			return nil, fmt.Errorf("fastreg: WithAuditEpochs needs a positive interval, got %v", o.epochEvery)
		}
		if o.captureDir == "" {
			return nil, fmt.Errorf("fastreg: WithAuditEpochs requires WithCapture — epoch boundaries are stamped into its trace logs")
		}
		if o.kind != backendTCP {
			closeCapture()
			return nil, fmt.Errorf("fastreg: WithAuditEpochs applies only to the WithTCP backend (weight rides the wire envelopes)")
		}
		coord = epoch.New(obsReg)
		for _, w := range capture {
			coord.Stamp(w.Epoch)
		}
		copts = append(copts, transport.WithEpochCoordinator(coord))
	}

	var b Backend
	switch o.kind {
	case backendInProcess:
		if o.unbatched {
			closeCapture()
			return nil, fmt.Errorf("fastreg: WithUnbatchedSends applies only to the WithTCP backend")
		}
		if o.connsPerLink > 1 {
			closeCapture()
			return nil, fmt.Errorf("fastreg: WithConnsPerLink applies only to the WithTCP backend")
		}
		if o.evictTTL > 0 {
			mopts = append(mopts, netsim.WithMultiEviction(o.evictTTL))
		}
		b, err = netsim.NewMultiLive(qcfg, impl, mopts...)
	case backendPerKey:
		if o.unbatched || o.evictTTL > 0 || o.connsPerLink > 1 {
			return nil, fmt.Errorf("fastreg: the WithPerKey backend supports neither eviction nor wire-tuning options")
		}
		b, err = kv.NewPerKeyBackend(qcfg, impl)
	case backendTCP:
		if len(o.addrs) != cfg.Servers {
			closeCapture()
			return nil, fmt.Errorf("fastreg: WithTCP got %d addresses for %d servers", len(o.addrs), cfg.Servers)
		}
		if o.unbatched {
			copts = append(copts, transport.WithUnbatchedSends())
		}
		if o.connsPerLink > 1 {
			copts = append(copts, transport.WithConnsPerLink(o.connsPerLink))
		}
		if o.evictTTL > 0 {
			copts = append(copts, transport.WithClientEviction(o.evictTTL))
		}
		b, err = transport.NewClient(qcfg, impl, o.addrs, transport.DialTCP, copts...)
	}
	if err != nil {
		closeCapture()
		return nil, err
	}
	st, err := kv.NewFromBackend(qcfg, b)
	if err != nil {
		b.Close()
		closeCapture()
		return nil, err
	}
	s := &Store{cfg: cfg, store: st, capture: capture, coord: coord, obsReg: obsReg, tracer: tracer}
	if coord != nil {
		s.epochDone = make(chan struct{})
		go func(every time.Duration) {
			t := time.NewTicker(every)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					// A refused cut (previous epoch still draining) is
					// fine — the next tick tries again; at most two
					// epochs are ever live.
					coord.Cut()
				case <-s.epochDone:
					return
				}
			}
		}(o.epochEvery)
	}
	s.writers = make([]*Writer, cfg.Writers)
	for i := range s.writers {
		s.writers[i] = &Writer{store: s, id: i + 1}
	}
	s.readers = make([]*Reader, cfg.Readers)
	for i := range s.readers {
		s.readers[i] = &Reader{store: s, id: i + 1}
	}
	return s, nil
}

// Writer returns the session handle for writer w_i (1-based). The handle
// binds the identity once — its methods never take a writer index — and
// the same handle is returned for the same i, so the per-handle
// sequential-use guard covers every caller of that identity.
func (s *Store) Writer(i int) (*Writer, error) {
	if i < 1 || i > s.cfg.Writers {
		return nil, fmt.Errorf("fastreg: writer %d out of range [1,%d]", i, s.cfg.Writers)
	}
	return s.writers[i-1], nil
}

// Reader returns the session handle for reader r_i (1-based); see Writer.
func (s *Store) Reader(i int) (*Reader, error) {
	if i < 1 || i > s.cfg.Readers {
		return nil, fmt.Errorf("fastreg: reader %d out of range [1,%d]", i, s.cfg.Readers)
	}
	return s.readers[i-1], nil
}

// Backend returns the running backend — the seam conformance tests and
// low-level tooling drive directly. Most callers never need it.
func (s *Store) Backend() Backend { return s.store.Backend() }

// OnAuditEpoch registers fn to run each time an audit epoch closes
// (all weight home), with the closed epoch's number — the hook
// co-hosted fleets (cmd/regstorm) use to stamp the boundary into
// replica trace logs they own in the same process. fn must be fast and
// must not call back into the store. Fails unless the store was opened
// WithAuditEpochs.
func (s *Store) OnAuditEpoch(fn func(epoch uint64)) error {
	if s.coord == nil {
		return fmt.Errorf("fastreg: OnAuditEpoch requires WithAuditEpochs")
	}
	s.coord.Stamp(fn)
	return nil
}

// Connect eagerly reaches for every replica and reports how many are
// reachable right now. On the TCP backend this dials all servers (purely
// advisory — operations dial lazily anyway); the in-process backends are
// always fully reachable and report Servers.
func (s *Store) Connect() int {
	if c, ok := s.store.Backend().(interface{ Connect() int }); ok {
		return c.Connect()
	}
	return s.cfg.Servers
}

// CrashServer crashes server s_i (1-based) for every key's register. On
// the TCP backend this severs only this client's link to the replica —
// the replica itself lives in another process and keeps serving others.
// An index outside [1, Servers] panics: there is no such replica to
// crash, on any backend.
func (s *Store) CrashServer(i int) {
	if i < 1 || i > s.cfg.Servers {
		panic(fmt.Sprintf("fastreg: CrashServer(%d) out of range [1,%d]", i, s.cfg.Servers))
	}
	s.store.CrashServer(i)
}

// Keys lists the keys touched so far.
func (s *Store) Keys() []string { return s.store.Keys() }

// Check verifies atomicity (Definition 2.1) of every per-key history; it
// returns the first violation found, or an all-clear result. By locality,
// per-key atomicity is atomicity of the whole store.
func (s *Store) Check() CheckResult {
	total := 0
	for key, h := range s.store.Histories() {
		res := atomicity.Check(h)
		total += len(h.Completed())
		if !res.Atomic {
			return CheckResult{
				Atomic:      false,
				Explanation: "key " + key + ": " + res.String(),
				Operations:  total,
			}
		}
	}
	return CheckResult{Atomic: true, Explanation: "all per-key histories atomic", Operations: total}
}

// Config returns the cluster shape.
func (s *Store) Config() Config { return s.cfg }

// Close shuts the store (and its backend) down, then flushes and closes
// any trace logs WithCapture opened — regaudit reads complete logs once
// the process is done with them.
func (s *Store) Close() {
	if s.epochDone != nil {
		close(s.epochDone)
	}
	s.store.Close()
	if s.coord != nil {
		// One final cutover now that every operation has returned its
		// weight: the last traffic-bearing epoch closes and stamps its
		// boundary, so a follower can finalize it. Retry briefly — a
		// previous close's stamping may still be in flight.
		for i := 0; i < 1000 && !s.coord.Cut(); i++ {
			time.Sleep(time.Millisecond)
		}
	}
	for _, w := range s.capture {
		w.Close()
	}
}

// put and get back the deprecated index-threading wrappers (KVStore);
// new code goes through handles. They route through the canonical
// handles rather than the backend so the per-identity sequential-use
// guard covers wrapper callers too — a KVStore.Put racing a handle Put
// on the same identity is caught, not silently interleaved.
func (s *Store) put(ctx context.Context, writer int, key, value string) error {
	w, err := s.Writer(writer)
	if err != nil {
		return err
	}
	_, err = w.Put(ctx, key, value)
	return err
}

func (s *Store) get(ctx context.Context, reader int, key string) (string, bool, error) {
	r, err := s.Reader(reader)
	if err != nil {
		return "", false, err
	}
	v, _, ok, err := r.Get(ctx, key)
	return v, ok, err
}

// Writer is the session handle of one writer identity: w_i bound at
// creation, operations context-first. The protocols require each writer
// to issue operations sequentially (distinct writers may run
// concurrently); the handle enforces it, failing an overlapping call
// with ErrHandleInUse instead of corrupting protocol state.
type Writer struct {
	store *Store
	id    int
	busy  atomic.Bool
}

// Index returns the 1-based writer index the handle is bound to.
func (w *Writer) Index() int { return w.id }

// Put writes value under key and returns the version assigned. It blocks
// until the protocol's write completes or ctx expires (ErrTimeout) — a
// timed-out write's effect is indeterminate: it may still land at the
// servers.
func (w *Writer) Put(ctx context.Context, key, value string) (Version, error) {
	if !w.busy.CompareAndSwap(false, true) {
		return Version{}, fmt.Errorf("%w: writer %d", ErrHandleInUse, w.id)
	}
	defer w.busy.Store(false)
	v, err := w.store.store.Backend().Write(ctx, key, w.id, value)
	if err != nil {
		return Version{}, err
	}
	return versionOf(v), nil
}

// Reader is the session handle of one reader identity: r_i bound at
// creation, operations context-first; see Writer for the sequential-use
// contract.
type Reader struct {
	store *Store
	id    int
	busy  atomic.Bool
}

// Index returns the 1-based reader index the handle is bound to.
func (r *Reader) Index() int { return r.id }

// Get reads key, returning its value and version; ok is false for
// never-written keys. It blocks until the protocol's read completes or
// ctx expires (ErrTimeout).
func (r *Reader) Get(ctx context.Context, key string) (value string, ver Version, ok bool, err error) {
	if !r.busy.CompareAndSwap(false, true) {
		return "", Version{}, false, fmt.Errorf("%w: reader %d", ErrHandleInUse, r.id)
	}
	defer r.busy.Store(false)
	v, err := r.store.store.Backend().Read(ctx, key, r.id)
	if err != nil {
		return "", Version{}, false, err
	}
	return v.Data, versionOf(v), !v.IsInitial(), nil
}
