// Benchmarks regenerating every table and figure of the paper's analysis,
// plus the ablations DESIGN.md §5 calls out. Each benchmark prints or
// reports the same quantities the paper's artifact shows; absolute
// nanoseconds are incidental (the substrate is a simulator) — the reported
// custom metrics (RTTs, verdicts) carry the reproduction.
package fastreg_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"fastreg"
	"fastreg/internal/atomicity"
	"fastreg/internal/chains"
	"fastreg/internal/consistency"
	"fastreg/internal/crucialinfo"
	"fastreg/internal/harness"
	"fastreg/internal/history"
	"fastreg/internal/mwabd"
	"fastreg/internal/netsim"
	"fastreg/internal/opkit"
	"fastreg/internal/proto"
	"fastreg/internal/quorum"
	"fastreg/internal/sweep"
	"fastreg/internal/types"
	"fastreg/internal/vclock"
	"fastreg/internal/workload"
)

// BenchmarkTable1DesignSpace regenerates Table 1: one adversarial workload
// + atomicity check per design-space quadrant. The reported metrics are
// the quadrant's verdict (atomic=1/0) and its round-trip counts.
func BenchmarkTable1DesignSpace(b *testing.B) {
	cfg := quorum.Config{S: 5, T: 1, R: 2, W: 2}
	for _, p := range harness.DesignSpace() {
		p := p
		b.Run(p.Name(), func(b *testing.B) {
			atomic := 1.0
			for i := 0; i < b.N; i++ {
				sim := netsim.MustNew(cfg, p, netsim.WithSeed(int64(i+1)), netsim.WithDelay(netsim.UniformDelay(1, 150)))
				h := workload.Run(sim, workload.Mix{WritesPerWriter: 4, ReadsPerReader: 4})
				if !atomicity.Check(h).Atomic {
					atomic = 0
				}
			}
			// The impossible quadrants may pass random schedules; their
			// verdict comes from the directed probes of the harness (run
			// once, outside timing).
			b.StopTimer()
			rows := map[string]bool{}
			for _, row := range harness.Table1(1) {
				rows[row.Design] = row.Empirical
			}
			if !rows[p.Name()] {
				atomic = 0
			}
			b.ReportMetric(atomic, "atomic")
			b.ReportMetric(float64(p.WriteRounds()), "write-rtts")
			b.ReportMetric(float64(p.ReadRounds()), "read-rtts")
		})
	}
}

// BenchmarkFig2LatencyHasse regenerates Fig 2: per-protocol read/write
// latency in RTTs at a constant one-way delay.
func BenchmarkFig2LatencyHasse(b *testing.B) {
	cfg := quorum.Config{S: 5, T: 1, R: 2, W: 2}
	const oneWay = 50
	for _, p := range harness.DesignSpace() {
		p := p
		b.Run(p.Name(), func(b *testing.B) {
			var wRTT, rRTT float64
			for i := 0; i < b.N; i++ {
				sim := netsim.MustNew(cfg, p, netsim.WithDelay(netsim.ConstDelay(oneWay)))
				h := workload.Run(sim, workload.Mix{WritesPerWriter: 5, ReadsPerReader: 5})
				stats := workload.Measure(h)
				wRTT = stats[types.OpWrite].Mean / (2 * oneWay)
				rRTT = stats[types.OpRead].Mean / (2 * oneWay)
			}
			b.ReportMetric(wRTT, "write-rtts")
			b.ReportMetric(rRTT, "read-rtts")
		})
	}
}

// BenchmarkFig3ChainPhases regenerates the Fig 3 construction end to end:
// chain α, the critical server, chains β′/β″/β and the zigzag links, with
// every execution atomicity-checked.
func BenchmarkFig3ChainPhases(b *testing.B) {
	for _, s := range []int{3, 5, 7} {
		s := s
		b.Run(fmt.Sprintf("S=%d", s), func(b *testing.B) {
			var rep *chains.Report
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = chains.FindViolation(crucialinfo.New(), s)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(rep.Verdicts)), "executions")
			b.ReportMetric(float64(len(rep.Violations)), "violations")
			b.ReportMetric(float64(rep.Alpha.Critical), "critical-server")
			if !rep.LinksHold {
				b.Fatal("indistinguishability links failed")
			}
		})
	}
}

// BenchmarkFig8Sieve regenerates the Fig 8 analysis: Σ1/Σ2 partition and
// the shortened chain α̂ under an adversary flipping crucial info on |Σ1|
// servers.
func BenchmarkFig8Sieve(b *testing.B) {
	for _, nFlip := range []int{0, 1, 2} {
		nFlip := nFlip
		b.Run(fmt.Sprintf("affected=%d", nFlip), func(b *testing.B) {
			var sigma1 []types.ProcID
			for i := 0; i < nFlip; i++ {
				sigma1 = append(sigma1, types.Server(5-i))
			}
			var res *chains.SieveResult
			for i := 0; i < b.N; i++ {
				p := crucialinfo.NewWithFlips(types.Reader(2), sigma1)
				f, err := chains.NewFamily(p, 5)
				if err != nil {
					b.Fatal(err)
				}
				res, err = f.Sieve()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(res.Sigma1)), "sigma1")
			b.ReportMetric(float64(len(res.Sigma2)), "sigma2")
			b.ReportMetric(float64(res.Critical), "critical-in-sigma2")
		})
	}
}

// BenchmarkFig9Boundary regenerates the Section 5 / Fig 9 feasibility
// boundary: cells around R = S/t − 2 with randomized trials and the
// directed inversion on the impossible side.
func BenchmarkFig9Boundary(b *testing.B) {
	for _, st := range [][2]int{{3, 1}, {5, 1}, {9, 2}} {
		st := st
		b.Run(fmt.Sprintf("S=%d,t=%d", st[0], st[1]), func(b *testing.B) {
			var cells []sweep.Cell
			for i := 0; i < b.N; i++ {
				cells = sweep.Boundary([][2]int{st}, 3)
			}
			match := 1.0
			for _, c := range cells {
				// On the feasible side the random adversary must find
				// nothing; on the infeasible side with S ≤ 3t the directed
				// construction must violate.
				if c.Feasible && !c.RandomAtomic {
					match = 0
				}
				if c.DirectedAttempted && !c.DirectedViolation {
					match = 0
				}
			}
			b.ReportMetric(match, "boundary-matches-paper")
			b.ReportMetric(float64(len(cells)), "cells")
		})
	}
}

// BenchmarkAblationAdmissible compares the exact subset-enumeration
// admissibility test (Algorithm 1 line 32) against the greedy
// approximation (DESIGN.md §5).
func BenchmarkAblationAdmissible(b *testing.B) {
	cfg := opkit.AdmissibleConfig{S: 9, T: 2, MaxDegree: 4}
	rng := rand.New(rand.NewSource(1))
	v := types.Value{Tag: types.Tag{TS: 1, WID: types.Writer(1)}, Data: "v"}
	var msgs []proto.FastReadAck
	for i := 0; i < 7; i++ {
		var ups []types.ProcID
		for c := 1; c <= 5; c++ {
			if rng.Intn(2) == 0 {
				ups = append(ups, types.Reader(c))
			}
		}
		msgs = append(msgs, proto.FastReadAck{Vector: []proto.VectorEntry{{Val: v, Updated: ups}}})
	}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for a := 1; a <= cfg.MaxDegree; a++ {
				opkit.Admissible(v, msgs, a, cfg)
			}
		}
	})
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for a := 1; a <= cfg.MaxDegree; a++ {
				opkit.AdmissibleGreedy(v, msgs, a, cfg)
			}
		}
	})
}

// BenchmarkAblationWriteBack measures what the read write-back costs (and
// buys): W2R2 vs the non-atomic no-write-back variant.
func BenchmarkAblationWriteBack(b *testing.B) {
	cfg := quorum.Config{S: 5, T: 1, R: 2, W: 2}
	for _, variant := range []struct {
		name string
		p    func() *mwabd.Protocol
	}{
		{"with-write-back", mwabd.New},
		{"no-write-back", mwabd.NewNoWriteBack},
	} {
		variant := variant
		b.Run(variant.name, func(b *testing.B) {
			var readRTT float64
			for i := 0; i < b.N; i++ {
				sim := netsim.MustNew(cfg, variant.p(), netsim.WithDelay(netsim.ConstDelay(50)))
				h := workload.Run(sim, workload.Mix{WritesPerWriter: 4, ReadsPerReader: 4})
				stats := workload.Measure(h)
				readRTT = stats[types.OpRead].Mean / 100
			}
			b.ReportMetric(readRTT, "read-rtts")
		})
	}
}

// BenchmarkAblationScheduler compares the deterministic discrete-event
// simulator against the goroutine-per-server live network on the same
// workload.
func BenchmarkAblationScheduler(b *testing.B) {
	cfg := fastreg.Config{Servers: 5, MaxCrashes: 1, Readers: 2, Writers: 2}
	b.Run("discrete-event", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim, err := fastreg.NewSimulation(cfg, fastreg.W2R2, fastreg.SimOptions{Seed: int64(i + 1)})
			if err != nil {
				b.Fatal(err)
			}
			sim.Run(5, 5)
		}
	})
	b.Run("live-goroutines", func(b *testing.B) {
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			s, err := fastreg.Open(cfg, fastreg.W2R2, fastreg.WithPerKey())
			if err != nil {
				b.Fatal(err)
			}
			w, _ := s.Writer(1)
			r, _ := s.Reader(1)
			for j := 0; j < 5; j++ {
				if _, err := w.Put(ctx, "reg", "v"); err != nil {
					b.Fatal(err)
				}
				if _, _, _, err := r.Get(ctx, "reg"); err != nil {
					b.Fatal(err)
				}
			}
			s.Close()
		}
	})
}

// BenchmarkKVMultiplexed compares the KV store's two in-process backends
// on the same keyspace and client mix: the legacy per-key-cluster backend
// (one full goroutine fleet per key, fastreg.WithPerKey) against the
// multiplexed backend (one shared fleet serving every key through
// key-tagged messages and sharded per-key state, the fastreg.Open
// default). Reported metrics: end-to-end ops/sec and the steady-state
// goroutine count — O(keys × servers) vs O(servers).
func BenchmarkKVMultiplexed(b *testing.B) {
	cfg := fastreg.Config{Servers: 5, MaxCrashes: 1, Readers: 4, Writers: 4}
	for _, rt := range []struct {
		name string
		opts []fastreg.Option
	}{
		{"per-key-clusters", []fastreg.Option{fastreg.WithPerKey()}},
		{"multiplexed", nil},
	} {
		rt := rt
		b.Run(rt.name, func(b *testing.B) {
			s, err := fastreg.Open(cfg, fastreg.W2R2, rt.opts...)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			benchKVStore(b, s, cfg, true)
		})
	}
}

// benchKVStore drives a store through the shared client mix (one
// goroutine per writer/reader handle over 64 keys), reporting ops/sec
// and — for the in-process backends — the steady-state goroutine count.
func benchKVStore(b *testing.B, s *fastreg.Store, cfg fastreg.Config, reportGoroutines bool) {
	b.Helper()
	const nKeys = 64
	key := func(i int) string { return fmt.Sprintf("key-%03d", i%nKeys) }
	ctx := context.Background()
	seedW, err := s.Writer(1)
	if err != nil {
		b.Fatal(err)
	}
	// Touch every key up front so the goroutine count is the
	// steady-state serving footprint, not mid-instantiation.
	for i := 0; i < nKeys; i++ {
		if _, err := seedW.Put(ctx, key(i), "seed"); err != nil {
			b.Fatal(err)
		}
	}
	goroutines := runtime.NumGoroutine()
	clients := cfg.Writers + cfg.Readers
	b.ReportAllocs() // allocs/op tracks the wire path's pooling (PR 6)
	b.ResetTimer()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		n := b.N / clients
		if c < b.N%clients {
			n++
		}
		if n == 0 {
			continue
		}
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			if c < cfg.Writers {
				w, err := s.Writer(c + 1)
				if err != nil {
					b.Error(err)
					return
				}
				for i := 0; i < n; i++ {
					if _, err := w.Put(ctx, key((c+1)*13+i), "v"); err != nil {
						b.Error(err)
						return
					}
				}
				return
			}
			r, err := s.Reader(c - cfg.Writers + 1)
			if err != nil {
				b.Error(err)
				return
			}
			for i := 0; i < n; i++ {
				if _, _, _, err := r.Get(ctx, key(r.Index()*29+i)); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
	if reportGoroutines {
		b.ReportMetric(float64(goroutines), "goroutines")
	}
}

// BenchmarkKVTCP puts the KV store's network runtime next to
// BenchmarkKVMultiplexed's in-process numbers: the same cluster shape and
// client mix (8 concurrent clients), but every operation now crosses real
// loopback TCP sockets — encode, kernel, decode, quorum wait — against 5
// replica servers, the deployment shape cmd/regserver + cmd/regclient
// run. The gap between the two benchmarks is the price of the wire.
//
// Three wire modes isolate what each layer buys: "unbatched" sends one
// frame per envelope (the pre-batching behavior, via
// transport.WithUnbatchedSends); "batched" (the default) coalesces
// concurrent rounds to the same server into multi-envelope frames, and
// replicas reply in kind; "multiconn" adds two client connections per
// replica with round-robin steering (fastreg.WithConnsPerLink) — a win
// only where the single per-server stream is the bottleneck, so expect
// it to trail "batched" on a single CPU. The client counts show how the
// wins grow with the per-connection overlap the optimizations feed on.
func BenchmarkKVTCP(b *testing.B) {
	for _, clients := range []int{8, 16} {
		cfg := fastreg.Config{Servers: 5, MaxCrashes: 1, Readers: clients / 2, Writers: clients / 2}
		for _, mode := range []struct {
			name string
			opts []fastreg.Option
		}{
			{"unbatched", []fastreg.Option{fastreg.WithUnbatchedSends()}},
			{"batched", nil},
			{"multiconn", []fastreg.Option{fastreg.WithConnsPerLink(2)}},
		} {
			mode := mode
			b.Run(fmt.Sprintf("clients=%d/%s", clients, mode.name), func(b *testing.B) {
				benchKVTCP(b, cfg, mode.opts...)
			})
		}
	}
}

func benchKVTCP(b *testing.B, cfg fastreg.Config, opts ...fastreg.Option) {
	qcfg := quorum.Config{S: cfg.Servers, T: cfg.MaxCrashes, R: cfg.Readers, W: cfg.Writers}
	_, addrs := bootTCPFleet(b, qcfg)
	s, err := fastreg.Open(cfg, fastreg.W2R2, append([]fastreg.Option{fastreg.WithTCP(addrs...)}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	benchKVStore(b, s, cfg, false)
}

// BenchmarkAblationCheckerMemo measures the WGL checker with and without
// state memoization on a concurrent history.
func BenchmarkAblationCheckerMemo(b *testing.B) {
	h := concurrentHistory(16)
	b.Run("memo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			atomicity.CheckOpt(h, atomicity.Options{})
		}
	})
	b.Run("no-memo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			atomicity.CheckOpt(h, atomicity.Options{DisableMemo: true})
		}
	})
}

// concurrentHistory builds an atomic history with n overlapping operations
// to exercise the checker's search.
func concurrentHistory(n int) history.History {
	bld := history.NewBuilder()
	v := types.Value{Tag: types.Tag{TS: 1, WID: types.Writer(1)}, Data: "x"}
	bld.Add(types.Writer(1), types.OpWrite, v, 1, 1000)
	for i := 0; i < n; i++ {
		client := types.Reader(i + 1)
		// Reads overlap the write; half return the old value, half the new.
		if i%2 == 0 {
			bld.Add(client, types.OpRead, types.InitialValue(), vclock.Time(2+i), vclock.Time(500+i))
		} else {
			bld.Add(client, types.OpRead, v, vclock.Time(600+i), vclock.Time(900+i))
		}
	}
	return bld.History()
}

// BenchmarkExtW1Rk runs the Section 3 generalization: the impossibility
// argument against W1Rk candidates for k ∈ {2, 3, 4}, merging each read's
// rounds 2…k into one unit.
func BenchmarkExtW1Rk(b *testing.B) {
	for _, k := range []int{2, 3, 4} {
		k := k
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var rep *chains.Report
			for i := 0; i < b.N; i++ {
				p := crucialinfo.NewKRound(k)
				var err error
				rep, err = chains.FindViolation(p, 5)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(rep.Violations)), "violations")
			if len(rep.Violations) == 0 || !rep.LinksHold {
				b.Fatal("W1Rk argument failed")
			}
		})
	}
}

// BenchmarkExtInconsistency quantifies the Section 7 future-work question:
// how inconsistent do the impossible fast quadrants actually get? Reported
// metrics: worst k-atomicity and stale-read rate over adversarial runs.
func BenchmarkExtInconsistency(b *testing.B) {
	cfg := quorum.Config{S: 5, T: 1, R: 2, W: 2}
	for _, p := range harness.DesignSpace() {
		p := p
		b.Run(p.Name(), func(b *testing.B) {
			worstK, stale, runs := 1.0, 0.0, 0
			for i := 0; i < b.N; i++ {
				for seed := int64(1); seed <= 10; seed++ {
					sim := netsim.MustNew(cfg, p, netsim.WithSeed(seed), netsim.WithDelay(netsim.UniformDelay(1, 200)))
					h := workload.Run(sim, workload.Mix{WritesPerWriter: 5, ReadsPerReader: 5})
					rep := consistency.Analyze(h)
					if float64(rep.KAtomicity) > worstK {
						worstK = float64(rep.KAtomicity)
					}
					stale += rep.StaleRate
					runs++
				}
			}
			b.ReportMetric(worstK, "worst-k-atomicity")
			b.ReportMetric(stale/float64(runs), "stale-rate")
		})
	}
}
