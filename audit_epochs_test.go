package fastreg_test

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"fastreg"
	"fastreg/internal/audit"
	"fastreg/internal/mwabd"
	"fastreg/internal/quorum"
	"fastreg/internal/transport"
)

// TestAuditEpochsLive is the continuous audit end to end at the public
// surface: a real TCP fleet with per-replica capture, a store opened
// WithAuditEpochs cutting weight-throwing epochs under live traffic,
// OnAuditEpoch stamping the replica logs — then both the streaming
// follower and the offline merge verify the run, and agree.
func TestAuditEpochsLive(t *testing.T) {
	cfg := fastreg.DefaultConfig()
	qcfg := quorum.Config{S: cfg.Servers, T: cfg.MaxCrashes, R: cfg.Readers, W: cfg.Writers}
	dir := t.TempDir()
	var writers []*audit.Writer
	var sopts [][]transport.ServerOption
	for i := 1; i <= qcfg.S; i++ {
		w, err := audit.NewFileWriter(
			filepath.Join(dir, fmt.Sprintf("s%d%s", i, audit.TraceExt)),
			audit.ServerHeader(i, "W2R2", qcfg))
		if err != nil {
			t.Fatal(err)
		}
		writers = append(writers, w)
		sopts = append(sopts, []transport.ServerOption{transport.WithServerCapture(w.Handle)})
	}
	servers := make([]*transport.Server, qcfg.S)
	addrs := make([]string, qcfg.S)
	for i := range servers {
		lis, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv, err := transport.NewServer(qcfg, mwabd.New(), i+1, lis, sopts[i]...)
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		addrs[i] = srv.Addr()
		t.Cleanup(srv.Close)
	}

	s, err := fastreg.Open(cfg, fastreg.W2R2,
		fastreg.WithTCP(addrs...),
		fastreg.WithCapture(dir),
		fastreg.WithCaptureRotation(4096),
		fastreg.WithAuditEpochs(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.OnAuditEpoch(func(n uint64) {
		for _, w := range writers {
			w.Epoch(n)
		}
	}); err != nil {
		t.Fatal(err)
	}

	// Drive traffic across several cutovers; ops must never block on one.
	ctx := context.Background()
	wr, err := s.Writer(1)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := s.Reader(1)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	n := 0
	for time.Now().Before(deadline) {
		k := fmt.Sprintf("k%d", n%4)
		if _, err := wr.Put(ctx, k, fmt.Sprintf("v%d", n)); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := rd.Get(ctx, k); err != nil {
			t.Fatal(err)
		}
		n++
	}
	s.Close() // stops the cutover ticker and stamps the final boundary
	for _, srv := range servers {
		srv.Close()
	}
	for _, w := range writers {
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}

	paths, err := filepath.Glob(filepath.Join(dir, "*"+audit.TraceExt))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(paths)

	f := audit.NewFollower(audit.FollowOptions{})
	defer f.Close()
	for _, p := range paths {
		if err := f.AddLog(p); err != nil {
			t.Fatal(err)
		}
	}
	f.Poll()
	f.Drain()
	if f.ViolatedEpochs != 0 || len(f.PendingStale()) != 0 {
		t.Fatalf("live run flagged: %d violated epochs, %d stale (warnings: %v)",
			f.ViolatedEpochs, len(f.PendingStale()), f.Warnings)
	}
	if f.CleanEpochs < 2 {
		t.Fatalf("only %d epoch(s) closed under 200ms of traffic at 30ms cuts", f.CleanEpochs)
	}

	m, err := audit.MergeFiles(paths...)
	if err != nil {
		t.Fatal(err)
	}
	rep := m.Check()
	if !rep.Clean {
		t.Fatalf("offline verdict over the same logs:\n%s", rep.Summary())
	}
	if f.TotalOps != rep.Operations {
		t.Fatalf("windowed saw %d completed ops, offline saw %d", f.TotalOps, rep.Operations)
	}
}

// TestAuditEpochsValidation pins WithAuditEpochs' backend requirements.
func TestAuditEpochsValidation(t *testing.T) {
	cfg := fastreg.DefaultConfig()
	if s, err := fastreg.Open(cfg, fastreg.W2R2,
		fastreg.WithAuditEpochs(time.Second)); err == nil {
		s.Close()
		t.Fatal("WithAuditEpochs without WithCapture must fail")
	}
	if s, err := fastreg.Open(cfg, fastreg.W2R2,
		fastreg.WithCapture(t.TempDir()), fastreg.WithAuditEpochs(time.Second)); err == nil {
		s.Close()
		t.Fatal("WithAuditEpochs on the in-process backend must fail")
	}
	if s, err := fastreg.Open(cfg, fastreg.W2R2,
		fastreg.WithCaptureRotation(1024)); err == nil {
		s.Close()
		t.Fatal("WithCaptureRotation without WithCapture must fail")
	}
}
