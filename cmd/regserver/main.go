// Command regserver hosts ONE replica of a register cluster over real TCP
// — the server half of the paper's system model deployed as a process.
// Replicas never talk to each other (the protocols are strictly
// client-server), so a fleet is just S regserver processes; clients
// (cmd/regclient, or fastreg.NewKVStoreTCP) connect to all of them and
// drive the round-based protocols.
//
// The cluster shape is fixed by flags and must match on every replica and
// client: either -cluster (comma-separated host:port list; S is its
// length and -replica selects which entry this process is) or -servers.
//
// Usage:
//
//	regserver -replica 1 -cluster :7001,:7002,:7003 [-t 1] [-readers 4] [-writers 4]
//	regserver -replica 2 -listen :7002 -servers 3 [-t 1] ...
//
// The replica serves every key from sharded, lazily-created per-key
// protocol state; kill the process to crash the replica for all keys at
// once.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"fastreg/internal/protocols"
	"fastreg/internal/quorum"
	"fastreg/internal/transport"
)

func main() {
	var (
		replica  = flag.Int("replica", 1, "which replica this process is: s_i (1-based)")
		listen   = flag.String("listen", "", "listen address (default: the -cluster entry for -replica)")
		cluster  = flag.String("cluster", "", "comma-separated host:port list of ALL replicas (sets -servers)")
		servers  = flag.Int("servers", 3, "number of servers S (ignored when -cluster is set)")
		t        = flag.Int("t", 1, "crash tolerance t")
		readers  = flag.Int("readers", 4, "number of readers R in the cluster shape")
		writers  = flag.Int("writers", 4, "number of writers W in the cluster shape")
		protocol = flag.String("protocol", "W2R2", "register protocol (W2R2, W2R1, ABD, ...)")
		shards   = flag.Int("shards", transport.DefaultServerShards, "key-space shards")
		evictTTL = flag.Duration("evict-ttl", 0, "expire keys idle for this long (0 = keep all state forever); a fleet-wide TTL makes idle keys read as never-written again — TTL-expiry semantics, not a cache")
	)
	flag.Parse()

	cfg, addr, err := resolve(*cluster, *servers, *replica, *listen, *t, *readers, *writers)
	if err != nil {
		fatal(err)
	}
	impl, err := protocols.New(*protocol)
	if err != nil {
		fatal(err)
	}

	lis, err := transport.ListenTCP(addr)
	if err != nil {
		fatal(err)
	}
	opts := []transport.ServerOption{transport.WithServerShards(*shards)}
	if *evictTTL > 0 {
		opts = append(opts, transport.WithServerEviction(*evictTTL))
	}
	srv, err := transport.NewServer(cfg, impl, *replica, lis, opts...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("regserver %s (%s, %s) listening on %s\n", srv.ID(), *protocol, cfg, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("regserver %s: shutting down (%d keys served)\n", srv.ID(), srv.KeyCount())
	srv.Close()
}

// resolve derives the cluster shape and this replica's listen address
// from the two flag styles.
func resolve(cluster string, servers, replica int, listen string, t, readers, writers int) (quorum.Config, string, error) {
	if cluster != "" {
		addrs := strings.Split(cluster, ",")
		servers = len(addrs)
		if replica >= 1 && replica <= servers && listen == "" {
			listen = addrs[replica-1]
		}
	} else if listen == "" {
		return quorum.Config{}, "", fmt.Errorf("need -listen or -cluster")
	}
	if replica < 1 || replica > servers {
		return quorum.Config{}, "", fmt.Errorf("-replica %d out of range [1,%d]", replica, servers)
	}
	cfg := quorum.Config{S: servers, T: t, R: readers, W: writers}
	if err := cfg.Validate(); err != nil {
		return quorum.Config{}, "", err
	}
	return cfg, listen, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "regserver:", err)
	os.Exit(1)
}
