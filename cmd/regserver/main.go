// Command regserver hosts ONE replica of a register cluster over real TCP
// — the server half of the paper's system model deployed as a process.
// Replicas never talk to each other (the protocols are strictly
// client-server), so a fleet is just S regserver processes; clients
// (cmd/regclient, or a fastreg.Open store with WithTCP) connect to all of
// them and drive the round-based protocols.
//
// The cluster shape is fixed by flags and must match on every replica and
// client — the shape, protocol and operational flags (-evict-ttl,
// -shards, …) are the shared internal/cliflags surface, identical to
// regclient's: either -cluster (comma-separated host:port list; S is its
// length and -replica selects which entry this process is) or -servers.
//
// Usage:
//
//	regserver -replica 1 -cluster :7001,:7002,:7003 [-t 1] [-readers 4] [-writers 4]
//	regserver -replica 2 -listen :7002 -servers 3 [-t 1] [-evict-ttl 10m] ...
//
// The replica serves every key from sharded, lazily-created per-key
// protocol state; kill the process to crash the replica for all keys at
// once.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"fastreg/internal/byzantine"
	"fastreg/internal/cliflags"
	"fastreg/internal/obs"
	"fastreg/internal/transport"
)

func main() {
	shared := cliflags.Register(flag.CommandLine)
	var (
		replica    = flag.Int("replica", 1, "which replica this process is: s_i (1-based)")
		listen     = flag.String("listen", "", "listen address (default: the -cluster entry for -replica)")
		staleAfter = flag.Int64("fault-stale-after", 0, "FAULT INJECTION (audit pipeline testing only): after a key's first N handled requests, serve its reads the initial value while still acking writes — a frozen, lying replica the capture/regaudit pipeline must catch")
		byz        = flag.Bool("byzantine", false, "BYZANTINE REPLICA (scenario testing only): wrap the server logic in internal/byzantine's LyingServer — every read-path reply carries a fabricated maximal-tag value; clients with vouched reads (fastreg.WithVouchedReads) must shrug off up to t such replicas")
	)
	flag.Parse()

	stopProfiles, err := shared.StartProfiles()
	if err != nil {
		fatal(err)
	}

	cfg, err := shared.Config()
	if err != nil {
		fatal(err)
	}
	addr, err := shared.ListenAddr(*replica, *listen)
	if err != nil {
		fatal(err)
	}
	impl, err := shared.Impl()
	if err != nil {
		fatal(err)
	}
	if *byz {
		impl = byzantine.Liars(impl, *replica)
		fmt.Printf("regserver s%d: BYZANTINE — read-path replies carry a forged maximal-tag value\n", *replica)
	}
	reg := shared.Registry()
	stopDebug, err := shared.ServeDebug(obs.Handler(reg, nil))
	if err != nil {
		fatal(err)
	}
	opts := shared.ServerOptions(reg)
	capture, err := shared.ServerCapture(*replica)
	if err != nil {
		fatal(err)
	}
	if capture != nil {
		opts = append(opts, transport.WithServerCapture(capture.Handle))
	}
	if *staleAfter > 0 {
		opts = append(opts, transport.WithStaleReadFault(*staleAfter))
		fmt.Printf("regserver s%d: FAULT INJECTION ACTIVE — serving stale reads after %d requests per key\n", *replica, *staleAfter)
	}

	lis, err := transport.ListenTCP(addr)
	if err != nil {
		fatal(err)
	}
	srv, err := transport.NewServer(cfg, impl, *replica, lis, opts...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("regserver %s (%s, %s) listening on %s\n", srv.ID(), shared.Protocol, cfg, srv.Addr())
	if shared.DebugAddr != "" {
		fmt.Printf("regserver %s: debug endpoint on http://%s/metrics\n", srv.ID(), shared.DebugAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("regserver %s: shutting down (%d keys served)\n", srv.ID(), srv.KeyCount())
	srv.Close()
	if capture != nil {
		if err := capture.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "regserver: trace log:", err)
		}
	}
	stopDebug()
	stopProfiles()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "regserver:", err)
	os.Exit(1)
}
