// Command regaudit is the offline half of the capture/replay audit
// subsystem: it merges the per-process trace logs a captured run leaves
// behind (regserver -capture, regclient -capture, fastreg.WithCapture)
// and re-runs the atomicity checker over the joint multi-client history
// — the only way to verify a run that spans several client processes,
// where no single process's clock orders all operations.
//
// Usage:
//
//	regaudit merge [flags] DIR|LOG...   inspect the merged history (per
//	                                    key, with each operation's
//	                                    originating process)
//	regaudit check [flags] DIR|LOG...   merge and verify; exit 0 when
//	                                    every key checks atomic, 2 on a
//	                                    violation, 1 on a merge error
//	regaudit follow [flags] DIR|LOG...  tail a LIVE capture directory and
//	                                    print one verdict per closed
//	                                    audit epoch; exit 0 clean, 2 on
//	                                    any violation, 1 on error or too
//	                                    few epochs (-min-epochs)
//
// check prints a per-key summary table (operations, clock domains,
// pending/failed write counts) before the verdict lines. The flags are
// the shared diagnostics surface (-debug-addr, -cpuprofile, …), so an
// operator can profile a large merge like any other fleet process.
//
// Arguments are .trlog files or directories (every *.trlog inside is
// taken). Any subset of a run's logs merges — S−t of S replica logs and
// a surviving client log are still checkable — but verdicts are binding
// only with full coverage: all S replica logs intact and client
// identities partitioned, the condition under which every value the
// fleet ever served has a visible origin. regaudit prints exactly what
// is missing otherwise.
//
// follow is the streaming mode: the fleet must run WithAuditEpochs, so
// the weight-throwing coordinator stamps epoch boundaries into every
// log. follow tails the rotating logs (segments included), buckets
// records by their epoch tags, and emits a windowed verdict the moment
// each epoch's window closes in every log — memory stays O(window), and
// the verdicts agree with an offline `regaudit check` over the same
// logs. Directories are rescanned each poll, so logs that appear late
// are picked up; -idle-exit drains the trailing epochs and exits once
// the logs stop growing.
//
// The merge trusts nothing it cannot see: operations from different
// processes are never real-time ordered (each capture log is its own
// clock domain), writes that only replicas witnessed are replayed as
// optional pending operations, and duplicate replica records from
// retried rounds are folded away. See internal/audit for the model and
// why verdicts under it are binding.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"fastreg/internal/audit"
	"fastreg/internal/cliflags"
	"fastreg/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	if cmd != "merge" && cmd != "check" && cmd != "follow" {
		usage()
	}
	// Flags sit between the subcommand and the paths, the same
	// diagnostics surface as every other fleet binary — -debug-addr
	// keeps pprof reachable during a large merge.
	fs := flag.NewFlagSet("regaudit "+cmd, flag.ExitOnError)
	diag := cliflags.RegisterDiag(fs)
	var minEpochs int
	var idleExit, pollEvery time.Duration
	if cmd == "follow" {
		fs.IntVar(&minEpochs, "min-epochs", 1, "exit 1 unless at least this many epochs finalize")
		fs.DurationVar(&idleExit, "idle-exit", 3*time.Second, "drain and exit after the logs stop growing for this long (0 = follow forever)")
		fs.DurationVar(&pollEvery, "interval", 200*time.Millisecond, "poll interval")
	}
	fs.Usage = usage
	fs.Parse(os.Args[2:])
	if fs.NArg() == 0 {
		usage()
	}

	stopProfiles, err := diag.StartProfiles()
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()
	reg := diag.Registry()
	stopDebug, err := diag.ServeDebug(obs.Handler(reg, nil))
	if err != nil {
		fatal(err)
	}
	defer stopDebug()

	if cmd == "follow" {
		code := follow(reg, fs.Args(), minEpochs, idleExit, pollEvery)
		stopDebug()
		stopProfiles()
		os.Exit(code)
	}

	paths, err := expand(fs.Args())
	if err != nil {
		fatal(err)
	}
	m, err := audit.MergeFiles(paths...)
	if err != nil {
		fatal(err)
	}
	reg.Counter("audit.logs").Add(int64(len(m.Files)))
	reg.Counter("audit.keys").Add(int64(len(m.Keys)))
	printHeader(m)
	switch cmd {
	case "merge":
		printMerge(m)
	case "check":
		rep := m.Check()
		printKeyTable(rep)
		fmt.Print(rep.Summary())
		if !rep.Clean {
			stopDebug()
			stopProfiles()
			os.Exit(2)
		}
	}
}

// follow tails the given capture logs (directories rescanned each poll)
// and prints one verdict line per closed audit epoch, live. Once the
// logs stop growing for -idle-exit it drains the trailing epochs and
// exits: 0 when every epoch was clean and at least -min-epochs
// finalized, 2 on any violation or stale serve, 1 otherwise.
func follow(reg *obs.Registry, args []string, minEpochs int, idleExit, pollEvery time.Duration) int {
	f := audit.NewFollower(audit.FollowOptions{
		Obs: reg,
		OnVerdict: func(v audit.EpochVerdict) {
			fmt.Println(v)
			for _, kv := range v.Violations {
				fmt.Printf("  key %q: %s\n", kv.Key, kv.Result)
				for _, n := range kv.Notes {
					fmt.Printf("    note: %s\n", n)
				}
			}
			for _, s := range v.Stale {
				fmt.Printf("  replica-stale: %s\n", s)
			}
		},
	})
	defer f.Close()
	warned := 0
	flushWarnings := func() {
		for ; warned < len(f.Warnings); warned++ {
			fmt.Fprintln(os.Stderr, "regaudit: warning:", f.Warnings[warned])
		}
	}
	lastSize := int64(-1)
	idleSince := time.Now()
	for {
		for _, a := range args {
			// A named path may not exist yet (the fleet is still coming
			// up) — keep retrying rather than failing the follow.
			st, err := os.Stat(a)
			if err != nil {
				continue
			}
			if !st.IsDir() {
				f.AddLog(a)
				continue
			}
			inside, _ := filepath.Glob(filepath.Join(a, "*"+audit.TraceExt))
			sort.Strings(inside)
			for _, p := range inside {
				f.AddLog(p)
			}
		}
		f.Poll()
		flushWarnings()
		if size := followedBytes(args); size != lastSize {
			lastSize = size
			idleSince = time.Now()
		}
		if idleExit > 0 && time.Since(idleSince) >= idleExit {
			break
		}
		time.Sleep(pollEvery)
	}
	f.Poll()
	f.Drain()
	flushWarnings()
	for _, s := range f.PendingStale() {
		fmt.Printf("replica-stale: %s\n", s)
	}
	total := f.CleanEpochs + f.ViolatedEpochs
	fmt.Printf("follow: %d epoch(s) finalized (%d clean, %d violated), %d completed ops\n",
		total, f.CleanEpochs, f.ViolatedEpochs, f.TotalOps)
	switch {
	case f.ViolatedEpochs > 0 || len(f.PendingStale()) > 0:
		return 2
	case total < minEpochs:
		fmt.Fprintf(os.Stderr, "regaudit: only %d epoch(s) finalized, -min-epochs wants %d\n", total, minEpochs)
		return 1
	}
	return 0
}

// followedBytes sums the on-disk size of every trace log (segments
// included) under the followed paths — the follow loop's idle signal.
func followedBytes(args []string) int64 {
	var total int64
	for _, a := range args {
		st, err := os.Stat(a)
		if err != nil {
			continue
		}
		if !st.IsDir() {
			for _, p := range audit.Segments(a) {
				if fi, err := os.Stat(p); err == nil {
					total += fi.Size()
				}
			}
			continue
		}
		inside, _ := filepath.Glob(filepath.Join(a, "*"+audit.TraceExt+"*"))
		for _, p := range inside {
			if fi, err := os.Stat(p); err == nil {
				total += fi.Size()
			}
		}
	}
	return total
}

// printKeyTable renders the per-key summary — how much evidence each
// verdict rests on (operation count, originating processes, optional
// writes) — before the verdict lines.
func printKeyTable(rep *audit.Report) {
	if len(rep.Verdicts) == 0 {
		return
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "KEY\tOPS\tDOMAINS\tPENDING\tFAILED\tVERDICT")
	for _, v := range rep.Verdicts {
		status := "atomic"
		if !v.Result.Atomic {
			status = "VIOLATED"
		}
		fmt.Fprintf(tw, "%q\t%d\t%d\t%d\t%d\t%s\n",
			v.Key, v.Completed, v.Domains, v.Pending, v.Failed, status)
	}
	tw.Flush()
}

// expand resolves each argument to trace logs: directories contribute
// every *.trlog inside, files pass through.
func expand(args []string) ([]string, error) {
	var paths []string
	for _, a := range args {
		st, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !st.IsDir() {
			paths = append(paths, a)
			continue
		}
		inside, err := filepath.Glob(filepath.Join(a, "*"+audit.TraceExt))
		if err != nil {
			return nil, err
		}
		if len(inside) == 0 {
			return nil, fmt.Errorf("no %s files in %s", audit.TraceExt, a)
		}
		sort.Strings(inside)
		paths = append(paths, inside...)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no trace logs given")
	}
	return paths, nil
}

func printHeader(m *audit.Merge) {
	intact := 0
	for _, files := range m.Replicas {
		good := true
		for _, f := range files {
			if f.Truncated {
				good = false
			}
		}
		if good {
			intact++
		}
	}
	fmt.Printf("regaudit: %d logs (%d client, %d/%d replicas) — %s %s\n",
		len(m.Files), len(m.Clients), intact, m.Shape.S, m.Protocol, m.Shape)
	if m.Synthesized > 0 {
		fmt.Printf("  %d write(s) known only from replica evidence, replayed as optional\n", m.Synthesized)
	}
	if m.DuplicateHandles > 0 {
		fmt.Printf("  %d duplicate replica record(s) from retried rounds folded\n", m.DuplicateHandles)
	}
	for _, w := range m.Warnings {
		fmt.Printf("  warning: %s\n", w)
	}
}

func printMerge(m *audit.Merge) {
	for _, k := range m.KeyNames() {
		kh := m.Keys[k]
		h := kh.History()
		fmt.Printf("key %q — %d ops\n", k, len(h.Ops))
		for _, op := range h.Ops {
			fmt.Printf("  [%s] %s\n", kh.DomainLabel(kh.DomainOf(op)), op)
		}
	}
}

func usage() {
	fmt.Fprint(os.Stderr, strings.TrimLeft(`
usage:
  regaudit merge [flags] DIR|LOG...   print the merged multi-process history
  regaudit check [flags] DIR|LOG...   merge and run the atomicity checker
                                      (exit 0 clean, 2 violated, 1 error)
  regaudit follow [flags] DIR|LOG...  tail a live capture dir, one verdict
                                      per audit epoch (exit 0 clean,
                                      2 violated, 1 error/-min-epochs)
flags (the shared diagnostics surface): -debug-addr, -slow-op,
  -cpuprofile, -memprofile
follow flags: -min-epochs N, -idle-exit D, -interval D
`, "\n"))
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "regaudit:", err)
	os.Exit(1)
}
