// Command fastreglint runs fastreg's in-tree analyzer suite
// (internal/lint): the machine-checked form of the repo's concurrency
// and ownership invariants — pooled-slab aliasing, ctx-first APIs,
// shard-lock discipline, nil-disabled observability types, and
// durable-before-visible capture ordering.
//
// Standalone:
//
//	go run ./cmd/fastreglint ./...
//	go run ./cmd/fastreglint -analyzers            # list the suite
//
// As a vet tool (same diagnostics, vet's driver):
//
//	go vet -vettool=$(which fastreglint) ./...
//
// Exit status is 0 when clean, 1 on findings, 2 on internal errors.
// Findings can be suppressed with a same-line or line-above directive
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory and suppressions are counted in the summary,
// so every escape hatch stays auditable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"fastreg/internal/lint"
)

func main() {
	// `go vet -vettool` probes the tool's identity before use; the
	// response must be "<name> version <non-devel-version>".
	for _, a := range os.Args[1:] {
		if a == "-V=full" || a == "--V=full" {
			fmt.Printf("fastreglint version %s\n", lint.Version)
			return
		}
		// The vet driver also asks which analyzer flags the tool
		// accepts (a JSON array of flag descriptions); fastreglint
		// exposes none to vet.
		if a == "-flags" || a == "--flags" {
			fmt.Println("[]")
			return
		}
	}

	listFlag := flag.Bool("analyzers", false, "list the analyzer suite and exit")
	dirFlag := flag.String("C", ".", "change to this directory before resolving patterns")
	flag.Parse()

	if *listFlag {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()
	// Under `go vet -vettool`, the tool is invoked once per package
	// with a single JSON config file argument.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vettool(args[0]))
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*dirFlag, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fastreglint: %v\n", err)
		os.Exit(2)
	}
	res, err := lint.Run(pkgs, lint.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "fastreglint: %v\n", err)
		os.Exit(2)
	}
	os.Exit(report(res))
}

// report prints findings and the summary, returning the exit status.
func report(res lint.Result) int {
	for _, d := range res.BadIgnores {
		fmt.Println(d.String())
	}
	for _, d := range res.Diags {
		fmt.Println(d.String())
	}
	n := len(res.Diags) + len(res.BadIgnores)
	fmt.Fprintf(os.Stderr, "fastreglint %s: %d issue(s), %d suppressed by //lint:ignore\n",
		lint.Version, n, len(res.Suppressed))
	if n > 0 {
		return 1
	}
	return 0
}

// vetConfig mirrors the config file cmd/go hands a -vettool (see
// cmd/go/internal/work: vetConfig). Only the fields fastreglint needs
// are listed.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vettool analyzes one package as directed by a vet config file.
func vettool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fastreglint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "fastreglint: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return typecheckFail(cfg, err)
		}
		files = append(files, f)
	}
	pkg, err := lint.CheckFiles(fset, cfg.ImportPath, files, cfg.PackageFile, cfg.ImportMap)
	if err != nil {
		return typecheckFail(cfg, err)
	}

	// fastreglint keeps no cross-package facts, but vet requires the
	// output file to exist for downstream packages.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("fastreglint\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "fastreglint: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	res, err := lint.Run([]*lint.Package{pkg}, lint.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "fastreglint: %v\n", err)
		return 2
	}
	bad := false
	for _, d := range append(res.BadIgnores, res.Diags...) {
		fmt.Fprintln(os.Stderr, d.String())
		bad = true
	}
	if bad {
		return 2
	}
	return 0
}

func typecheckFail(cfg vetConfig, err error) int {
	if cfg.SucceedOnTypecheckFailure {
		return 0
	}
	fmt.Fprintf(os.Stderr, "fastreglint: %s: %v\n", cfg.ImportPath, err)
	return 1
}
