// Command regclient drives a live register cluster (a fleet of
// cmd/regserver processes) through a mixed read/write workload over real
// TCP, reports throughput and latency, and checks the atomicity of the
// history it observed.
//
// The cluster shape flags must match the servers'. This process hosts
// writers w_1..w_W and readers r_1..r_R, all running concurrently, each
// issuing its ops back-to-back (closed loop) over -keys keys.
//
// Usage:
//
//	regclient -cluster :7001,:7002,:7003 [-t 1] [-writers 4] [-readers 4]
//	          [-writes 200] [-reads 200] [-keys 16] [-valuesize 64]
//	          [-timeout 5s] [-protocol W2R2] [-check]
//
// The atomicity verdict covers only operations this process issued; runs
// from several regclient processes are individually — not jointly —
// checkable, because real-time order across processes is not observable.
// For the same reason keys default to a unique per-run prefix: the
// checker assumes keys start unwritten, and reads of a previous run's
// values would be flagged as read-from-nowhere (override with
// -keyprefix to hammer shared keys without -check).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"fastreg/internal/atomicity"
	"fastreg/internal/protocols"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/transport"
)

func main() {
	var (
		cluster   = flag.String("cluster", "", "comma-separated host:port list of ALL replicas (required)")
		t         = flag.Int("t", 1, "crash tolerance t")
		writers   = flag.Int("writers", 4, "number of writers W")
		readers   = flag.Int("readers", 4, "number of readers R")
		writes    = flag.Int("writes", 200, "writes per writer")
		reads     = flag.Int("reads", 200, "reads per reader")
		nkeys     = flag.Int("keys", 16, "number of distinct keys")
		keyPrefix = flag.String("keyprefix", "", "key name prefix (default: unique per run — the atomicity checker assumes keys start unwritten, so reusing keys across runs yields spurious read-from-nowhere verdicts)")
		valueSize = flag.Int("valuesize", 64, "bytes per written value")
		timeout   = flag.Duration("timeout", 5*time.Second, "per-operation deadline (0 = none)")
		protocol  = flag.String("protocol", "W2R2", "register protocol (W2R2, W2R1, ABD, ...)")
		check     = flag.Bool("check", true, "run the atomicity checker over the observed history")
	)
	flag.Parse()

	if *cluster == "" {
		fatal(fmt.Errorf("need -cluster"))
	}
	addrs := strings.Split(*cluster, ",")
	cfg := quorum.Config{S: len(addrs), T: *t, R: *readers, W: *writers}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	impl, err := protocols.New(*protocol)
	if err != nil {
		fatal(err)
	}
	client, err := transport.NewClient(cfg, impl, addrs, transport.DialTCP)
	if err != nil {
		fatal(err)
	}
	defer client.Close()
	if n := client.Connect(); n < cfg.ReplyQuorum() {
		fatal(fmt.Errorf("only %d of %d servers reachable (need %d)", n, cfg.S, cfg.ReplyQuorum()))
	}

	prefix := *keyPrefix
	if prefix == "" {
		prefix = fmt.Sprintf("run-%d-%d", os.Getpid(), time.Now().UnixNano()%1e6)
	}
	key := func(i int) string { return fmt.Sprintf("%s/key-%03d", prefix, i%*nkeys) }
	value := strings.Repeat("x", *valueSize)
	opCtx := func() (context.Context, context.CancelFunc) {
		if *timeout <= 0 {
			return context.Background(), func() {}
		}
		return context.WithTimeout(context.Background(), *timeout)
	}

	var (
		mu         sync.Mutex
		wLat, rLat []time.Duration
		errs       []error
	)
	record := func(lat *[]time.Duration, d time.Duration, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			errs = append(errs, err)
			return
		}
		*lat = append(*lat, d)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 1; w <= cfg.W; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < *writes; i++ {
				ctx, cancel := opCtx()
				t0 := time.Now()
				_, err := client.Write(ctx, key(w*7+i), w, value)
				record(&wLat, time.Since(t0), err)
				cancel()
			}
		}(w)
	}
	for r := 1; r <= cfg.R; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < *reads; i++ {
				ctx, cancel := opCtx()
				t0 := time.Now()
				_, err := client.Read(ctx, key(r*13+i), r)
				record(&rLat, time.Since(t0), err)
				cancel()
			}
		}(r)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := len(wLat) + len(rLat)
	fmt.Printf("%s against %d servers (%s): %d ops in %v (%.0f ops/sec), %d errors\n",
		*protocol, cfg.S, cfg, total, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds(), len(errs))
	fmt.Printf("  writes: %s\n", latencyLine(wLat))
	fmt.Printf("  reads:  %s\n", latencyLine(rLat))
	for i, err := range errs {
		if i == 5 {
			fmt.Printf("  ... and %d more errors\n", len(errs)-5)
			break
		}
		fmt.Println("  error:", err)
	}

	if *check {
		// Timed-out operations don't weaken the verdict: the history
		// records them as failed, and the checker models failed writes as
		// OPTIONAL ops (they may or may not have taken effect — see
		// internal/atomicity), so a later read of a timed-out write's
		// value linearizes it instead of producing a spurious
		// read-from-nowhere. A violation in a run with timeouts is
		// therefore just as binding as in a clean run.
		timeouts := 0
		for _, err := range errs {
			if errors.Is(err, register.ErrTimeout) {
				timeouts++
			}
		}
		ops, violated := 0, false
		for _, k := range client.Keys() {
			h := client.History(k)
			res := atomicity.Check(h)
			ops += len(h.Completed())
			if !res.Atomic {
				violated = true
				fmt.Printf("  ATOMICITY VIOLATION on %s: %s\n", k, res)
			}
		}
		if violated {
			if *keyPrefix != "" {
				// The one caveat the checker genuinely cannot model: an
				// explicit -keyprefix may reuse key names across runs, and
				// reads of another run's writes look like violations here
				// (the checker assumes keys start unwritten). The verdict
				// still exits 2 — a fresh prefix makes it as binding as a
				// default run — but flag the possibility for the operator.
				fmt.Printf("  note: -keyprefix %q was set explicitly — if it reuses keys from an earlier run, the violations above may be artifacts of that reuse\n", *keyPrefix)
			}
			os.Exit(2)
		}
		fmt.Printf("  checker: atomic over %d operations on %d keys (%d timed out, modeled as optional)\n", ops, len(client.Keys()), timeouts)
	}
}

func latencyLine(lats []time.Duration) string {
	if len(lats) == 0 {
		return "none"
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		len(sorted), (sum / time.Duration(len(sorted))).Round(time.Microsecond),
		pct(0.50).Round(time.Microsecond), pct(0.99).Round(time.Microsecond),
		sorted[len(sorted)-1].Round(time.Microsecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "regclient:", err)
	os.Exit(1)
}
