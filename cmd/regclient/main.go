// Command regclient drives a live register cluster (a fleet of
// cmd/regserver processes) through a mixed read/write workload over real
// TCP, reports throughput and latency, and checks the atomicity of the
// history it observed. It runs on the public fastreg.Open API: one store
// with the WithTCP backend, session handles for every writer and reader.
//
// The cluster shape flags must match the servers' — the shape, protocol
// and operational flags (-evict-ttl, -unbatched, …) are the shared
// internal/cliflags surface, identical to regserver's. This process
// hosts writers w_1..w_W and readers r_1..r_R, all running concurrently,
// each issuing its ops back-to-back (closed loop) over -keys keys.
//
// Usage:
//
//	regclient -cluster :7001,:7002,:7003 [-t 1] [-writers 4] [-readers 4]
//	          [-writes 200] [-reads 200] [-keys 16] [-valuesize 64]
//	          [-timeout 5s] [-protocol W2R2] [-check] [-unbatched]
//
// The in-memory atomicity verdict covers only operations this process
// issued, because real-time order across processes is not observable.
// With -capture the story changes: every process appends its trace log
// to the capture directory, and the post-run check merges ALL logs found
// there (this run's other clients, the servers', prior runs') through
// internal/audit — one binding multi-process verdict, the same check
// `regaudit check DIR` runs offline.
//
// A multi-process run must partition the client identities: -wbase/-wn
// and -rbase/-rn select which of the shape's writers and readers this
// process drives (e.g. two processes on a W=4 R=4 shape run with
// "-wbase 0 -wn 2 -rbase 0 -rn 2" and "-wbase 2 -rbase 2"). Two
// processes driving the same identity corrupt the protocols' per-writer
// state — the merge detects and flags it, but the run is wasted.
//
// Keys default to a unique per-run prefix: the checker assumes keys
// start unwritten, and without capture, reads of a previous run's values
// would be flagged as read-from-nowhere. An explicit -keyprefix plus
// -capture upgrades that caveat into a real cross-run check: the prior
// runs' trace logs in the capture directory join the merge, so their
// writes are visible to the checker instead of advisory noise.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"fastreg"
	"fastreg/internal/atomicity"
	"fastreg/internal/audit"
	"fastreg/internal/cliflags"
	"fastreg/internal/register"
)

func main() {
	shared := cliflags.Register(flag.CommandLine)
	var (
		writes     = flag.Int("writes", 200, "writes per writer")
		reads      = flag.Int("reads", 200, "reads per reader")
		nkeys      = flag.Int("keys", 16, "number of distinct keys")
		keyPrefix  = flag.String("keyprefix", "", "key name prefix (default: unique per run — without -capture, reusing keys across runs yields spurious read-from-nowhere verdicts; with -capture the merge resolves prior runs' writes)")
		valueSize  = flag.Int("valuesize", 64, "bytes per written value")
		timeout    = flag.Duration("timeout", 5*time.Second, "per-operation deadline (0 = none)")
		check      = flag.Bool("check", true, "run the atomicity checker over the observed history (merged across processes when -capture is set)")
		wbase      = flag.Int("wbase", 0, "writer identity offset: this process drives writers wbase+1..wbase+wn (partition identities across concurrent client processes)")
		wn         = flag.Int("wn", 0, "writer identities this process drives (0 = all above wbase)")
		rbase      = flag.Int("rbase", 0, "reader identity offset; see -wbase")
		rn         = flag.Int("rn", 0, "reader identities this process drives (0 = all above rbase)")
		sequential = flag.Bool("sequential", false, "complete every write before the first read starts (deterministic phases; default is full write/read concurrency)")
	)
	flag.Parse()

	stopProfiles, err := shared.StartProfiles()
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	addrs := shared.Addrs()
	if addrs == nil {
		fatal(fmt.Errorf("need -cluster"))
	}
	qcfg, err := shared.Config()
	if err != nil {
		fatal(err)
	}
	cfg := fastreg.Config{Servers: qcfg.S, MaxCrashes: qcfg.T, Readers: qcfg.R, Writers: qcfg.W}
	store, err := fastreg.Open(cfg, fastreg.Protocol(shared.Protocol), shared.StoreOptions()...)
	if err != nil {
		fatal(err)
	}
	defer store.Close()
	stopDebug, err := shared.ServeDebug(store.DebugHandler())
	if err != nil {
		fatal(err)
	}
	defer stopDebug()
	if n := store.Connect(); n < qcfg.ReplyQuorum() {
		fatal(fmt.Errorf("only %d of %d servers reachable (need %d)", n, qcfg.S, qcfg.ReplyQuorum()))
	}

	prefix := *keyPrefix
	if prefix == "" {
		prefix = fmt.Sprintf("run-%d-%d", os.Getpid(), time.Now().UnixNano()%1e6)
	}
	key := func(i int) string { return fmt.Sprintf("%s/key-%03d", prefix, i%*nkeys) }
	value := strings.Repeat("x", *valueSize)
	opCtx := func() (context.Context, context.CancelFunc) {
		if *timeout <= 0 {
			return context.Background(), func() {}
		}
		return context.WithTimeout(context.Background(), *timeout)
	}

	var (
		mu         sync.Mutex
		wLat, rLat []time.Duration
		errs       []error
	)
	record := func(lat *[]time.Duration, d time.Duration, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			errs = append(errs, err)
			return
		}
		*lat = append(*lat, d)
	}

	// Identity ranges: a multi-process run gives each process a disjoint
	// slice of the shape's writers and readers.
	wlo, whi, err := idRange(*wbase, *wn, cfg.Writers, "writer")
	if err != nil {
		fatal(err)
	}
	rlo, rhi, err := idRange(*rbase, *rn, cfg.Readers, "reader")
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	var wg sync.WaitGroup
	runWriters := func() {
		for w := wlo; w <= whi; w++ {
			h, err := store.Writer(w)
			if err != nil {
				fatal(err)
			}
			wg.Add(1)
			go func(w int, h *fastreg.Writer) {
				defer wg.Done()
				for i := 0; i < *writes; i++ {
					ctx, cancel := opCtx()
					t0 := time.Now()
					_, err := h.Put(ctx, key(w*7+i), value)
					record(&wLat, time.Since(t0), err)
					cancel()
				}
			}(w, h)
		}
	}
	runReaders := func() {
		for r := rlo; r <= rhi; r++ {
			h, err := store.Reader(r)
			if err != nil {
				fatal(err)
			}
			wg.Add(1)
			go func(r int, h *fastreg.Reader) {
				defer wg.Done()
				for i := 0; i < *reads; i++ {
					ctx, cancel := opCtx()
					t0 := time.Now()
					_, _, _, err := h.Get(ctx, key(r*13+i))
					record(&rLat, time.Since(t0), err)
					cancel()
				}
			}(r, h)
		}
	}
	runWriters()
	if *sequential {
		wg.Wait()
	}
	runReaders()
	wg.Wait()
	elapsed := time.Since(start)

	total := len(wLat) + len(rLat)
	fmt.Printf("%s against %d servers (%s): %d ops in %v (%.0f ops/sec), %d errors\n",
		shared.Protocol, cfg.Servers, qcfg, total, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds(), len(errs))
	fmt.Printf("  writes: %s\n", latencyLine(wLat))
	fmt.Printf("  reads:  %s\n", latencyLine(rLat))
	if st := store.Stats(); st.Enabled {
		fmt.Printf("  store:  ops p50=%v p95=%v p99=%v retries=%d failed=%d slow=%d\n",
			st.Ops.P50.Round(time.Microsecond), st.Ops.P95.Round(time.Microsecond),
			st.Ops.P99.Round(time.Microsecond), st.Retries, st.OpsFailed, st.SlowOps)
	}
	for i, err := range errs {
		if i == 5 {
			fmt.Printf("  ... and %d more errors\n", len(errs)-5)
			break
		}
		fmt.Println("  error:", err)
	}

	if *check {
		// Timed-out operations don't weaken the verdict: the history
		// records them as failed, and the checker models failed writes as
		// OPTIONAL ops (they may or may not have taken effect — see
		// internal/atomicity), so a later read of a timed-out write's
		// value linearizes it instead of producing a spurious
		// read-from-nowhere. A violation in a run with timeouts is
		// therefore just as binding as in a clean run.
		timeouts := 0
		for _, err := range errs {
			if errors.Is(err, register.ErrTimeout) {
				timeouts++
			}
		}
		if shared.CaptureDir != "" {
			// Merged multi-process check: flush this process's trace log
			// (Close is idempotent; the deferred one becomes a no-op) and
			// check every log in the capture directory jointly — other
			// client processes, the replicas' logs, and prior runs'.
			store.Close()
			stopProfiles()
			os.Exit(mergedCheck(shared.CaptureDir, timeouts))
		}
		histories := store.Backend().Histories()
		keys := make([]string, 0, len(histories))
		for k := range histories {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ops, violated := 0, false
		for _, k := range keys {
			h := histories[k]
			res := atomicity.Check(h)
			ops += len(h.Completed())
			if !res.Atomic {
				violated = true
				fmt.Printf("  ATOMICITY VIOLATION on %s: %s\n", k, res)
			}
		}
		if violated {
			if *keyPrefix != "" {
				// The one caveat the in-memory checker genuinely cannot
				// model: an explicit -keyprefix may reuse key names across
				// runs, and reads of another run's writes look like
				// violations here (the checker assumes keys start
				// unwritten). The verdict still exits 2 — a fresh prefix
				// makes it as binding as a default run — but flag the
				// possibility for the operator. Running with -capture
				// removes the caveat entirely: the merged check sees the
				// earlier runs' trace logs, so their writes resolve
				// instead of reading "from nowhere".
				fmt.Printf("  note: -keyprefix %q was set explicitly — if it reuses keys from an earlier run, the violations above may be artifacts of that reuse (add -capture to both runs for a real cross-run check)\n", *keyPrefix)
			}
			stopProfiles()
			os.Exit(2)
		}
		fmt.Printf("  checker: atomic over %d operations on %d keys (%d timed out, modeled as optional)\n", ops, len(keys), timeouts)
	}
}

// idRange resolves one -{w,r}base/-{w,r}n pair against the cluster
// shape's total, returning the 1-based inclusive identity range this
// process drives.
func idRange(base, n, total int, role string) (lo, hi int, err error) {
	if base < 0 || base >= total {
		return 0, 0, fmt.Errorf("-%cbase %d out of range [0,%d)", role[0], base, total)
	}
	if n == 0 {
		n = total - base
	}
	if n < 0 || base+n > total {
		return 0, 0, fmt.Errorf("-%cn %d with -%cbase %d exceeds the shape's %d %ss", role[0], n, role[0], base, total, role)
	}
	return base + 1, base + n, nil
}

// mergedCheck merges every trace log in dir (this process's included)
// and replays the joint multi-process history through the atomicity
// checker — regaudit's check, run inline. Returns the process exit code.
func mergedCheck(dir string, timeouts int) int {
	paths, err := filepath.Glob(filepath.Join(dir, "*"+audit.TraceExt))
	if err != nil || len(paths) == 0 {
		fmt.Fprintf(os.Stderr, "regclient: no trace logs in %s (err: %v)\n", dir, err)
		return 1
	}
	m, err := audit.MergeFiles(paths...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "regclient:", err)
		return 1
	}
	fmt.Printf("  merged check: %d logs (%d client, %d replica) from %s\n", len(m.Files), len(m.Clients), len(m.Replicas), dir)
	for _, w := range m.Warnings {
		fmt.Printf("  merge warning: %s\n", w)
	}
	rep := m.Check()
	for _, line := range strings.Split(strings.TrimRight(rep.Summary(), "\n"), "\n") {
		fmt.Println("  " + line)
	}
	if timeouts > 0 {
		fmt.Printf("  (%d local ops timed out, modeled as optional)\n", timeouts)
	}
	if !rep.Clean {
		return 2
	}
	return 0
}

func latencyLine(lats []time.Duration) string {
	if len(lats) == 0 {
		return "none"
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		len(sorted), (sum / time.Duration(len(sorted))).Round(time.Microsecond),
		pct(0.50).Round(time.Microsecond), pct(0.99).Round(time.Microsecond),
		sorted[len(sorted)-1].Round(time.Microsecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "regclient:", err)
	os.Exit(1)
}
