// Command sweep prints the fast-read feasibility boundary of Section 5
// (Fig 9): for each (S, t) it evaluates reader counts around the threshold
// R = S/t − 2 with randomized adversarial trials and, on the impossible
// side, the directed new-old-inversion construction.
//
// Usage:
//
//	sweep [-trials 5] [-configs "5:1,9:2,12:3"]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fastreg"
)

func main() {
	var (
		trials  = flag.Int("trials", 5, "randomized adversarial trials per cell")
		configs = flag.String("configs", "3:1,5:1,6:2,9:2,12:3", "comma-separated S:t pairs")
	)
	flag.Parse()

	var pairs [][2]int
	for _, part := range strings.Split(*configs, ",") {
		st := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(st) != 2 {
			fmt.Fprintf(os.Stderr, "sweep: bad config %q (want S:t)\n", part)
			os.Exit(1)
		}
		s, err1 := strconv.Atoi(st[0])
		t, err2 := strconv.Atoi(st[1])
		if err1 != nil || err2 != nil || s < 1 || t < 1 || t >= s {
			fmt.Fprintf(os.Stderr, "sweep: bad config %q\n", part)
			os.Exit(1)
		}
		pairs = append(pairs, [2]int{s, t})
	}
	fmt.Print(fastreg.FastReadBoundary(pairs, *trials))
}
