// Command benchwire measures the wire path's throughput and allocation
// rate in a machine-readable way: it drives the same TCP cluster shape
// and client mix as the BenchmarkKVTCP suite (replica servers and the
// store client in one process, real loopback sockets) through
// testing.Benchmark, takes the median of -samples runs per case, and
// writes a BENCH_PR<N>.json document — the checked-in perf record each
// performance PR updates, and the input to the CI regression gate.
//
// Modes:
//
//	benchwire -out BENCH_PR7.json [-samples 3] [-pr 7]
//	    run every case (in-process baseline, tcp unbatched/batched at 8
//	    and 16 clients, tcp multiconn at 16) and write the document.
//	    Document runs open each store with metrics enabled and fold the
//	    run's p50/p95/p99 operation latencies into every record; with
//	    -debug-addr set, /metrics serves the store currently under
//	    measurement.
//
//	benchwire -check -floor BENCH_FLOOR.json [-samples 3]
//	    run only the gate case (tcp/batched/clients=16) and exit 1 if
//	    the median ops/sec falls more than the floor file's margin below
//	    its recorded floor — the CI perf-regression smoke.
//
// Document schema (fastreg-bench/v1): see README.md's "Performance
// records" section. Absolute numbers are machine-dependent; the schema
// exists so successive PRs on the same machine (and CI runners against
// their own floor) can be compared mechanically.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"fastreg"
	"fastreg/internal/cliflags"
	"fastreg/internal/lint"
	"fastreg/internal/mwabd"
	"fastreg/internal/quorum"
	"fastreg/internal/transport"
)

// benchDoc is the top-level BENCH_PR<N>.json document.
type benchDoc struct {
	Schema     string      `json:"schema"`    // "fastreg-bench/v1"
	Toolchain  string      `json:"toolchain"` // go runtime + fastreglint versions the record was produced under
	PR         int         `json:"pr"`
	GoMaxProcs int         `json:"go_maxprocs"`
	Samples    int         `json:"samples"`
	Results    []benchCase `json:"results"`
}

// toolchainString identifies the toolchain a record or gate run was
// produced under, so two BENCH_PR documents (or a CI gate log and a local
// repro) can be compared knowing whether the compiler or the analyzer
// suite differed.
func toolchainString() string {
	return fmt.Sprintf("%s fastreglint/%s", runtime.Version(), lint.Version)
}

// benchCase is one measured configuration: medians across the samples.
// The latency percentiles come from the store's own metrics layer
// (fastreg.WithMetrics → Store.Stats) during the measured run; document
// runs pay that (nanoseconds-per-op) cost uniformly across cases, while
// the -check gate keeps metrics off so its medians stay comparable to
// the recorded floor.
type benchCase struct {
	Name        string  `json:"name"`          // e.g. "tcp/batched/clients=16"
	Clients     int     `json:"clients"`       // concurrent writer+reader identities
	OpsPerSec   float64 `json:"ops_per_sec"`   // median end-to-end throughput
	NsPerOp     float64 `json:"ns_per_op"`     // median wall time per operation
	AllocsPerOp float64 `json:"allocs_per_op"` // median heap allocations per operation
	P50Ns       float64 `json:"p50_ns"`        // median p50 op latency across samples
	P95Ns       float64 `json:"p95_ns"`        // median p95 op latency across samples
	P99Ns       float64 `json:"p99_ns"`        // median p99 op latency across samples
}

// floorDoc is the checked-in BENCH_FLOOR.json the -check gate reads.
type floorDoc struct {
	Schema          string  `json:"schema"` // "fastreg-bench-floor/v1"
	Case            string  `json:"case"`
	FloorOpsPerSec  float64 `json:"floor_ops_per_sec"`
	AllowedDropFrac float64 `json:"allowed_drop_frac"` // e.g. 0.25
}

// gateCase is the configuration the CI regression smoke measures.
const gateCase = "tcp/batched/clients=16"

func main() {
	var (
		out     = flag.String("out", "", "write the bench document to this file (default: stdout)")
		pr      = flag.Int("pr", 7, "PR number recorded in the document")
		samples = flag.Int("samples", 3, "runs per case; the document records medians")
		check   = flag.Bool("check", false, "regression gate: run only "+gateCase+" and compare against -floor")
		floorF  = flag.String("floor", "BENCH_FLOOR.json", "floor file for -check")
	)
	diag := cliflags.RegisterDiag(flag.CommandLine)
	flag.Parse()

	stopProfiles, err := diag.StartProfiles()
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()
	stopDebug, err := diag.ServeDebug(liveHandler())
	if err != nil {
		fatal(err)
	}
	defer stopDebug()

	if *check {
		code := runGate(*floorF, *samples)
		stopDebug()
		stopProfiles()
		os.Exit(code)
	}

	doc := benchDoc{
		Schema:     "fastreg-bench/v1",
		Toolchain:  toolchainString(),
		PR:         *pr,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Samples:    *samples,
	}
	for _, c := range allCases() {
		fmt.Fprintf(os.Stderr, "benchwire: %s ...\n", c.name)
		res := measure(c, *samples)
		fmt.Fprintf(os.Stderr, "benchwire: %s: %.0f ops/sec, %.1f allocs/op\n", c.name, res.OpsPerSec, res.AllocsPerOp)
		doc.Results = append(doc.Results, res)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchwire: wrote %s\n", *out)
}

// curDebug holds the debug handler of whichever store is currently
// being measured — stores come and go per sample, the -debug-addr
// listener outlives them all.
var curDebug atomic.Value // http.Handler

// liveHandler proxies debug requests to the store of the moment.
func liveHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if h, ok := curDebug.Load().(http.Handler); ok {
			h.ServeHTTP(w, r)
			return
		}
		http.Error(w, "benchwire: no store under measurement yet", http.StatusServiceUnavailable)
	})
}

// caseSpec describes one configuration to measure.
type caseSpec struct {
	name    string
	clients int
	tcp     bool
	metrics bool // collect latency percentiles via fastreg.WithMetrics
	opts    []fastreg.Option
}

func allCases() []caseSpec {
	var cases []caseSpec
	for _, clients := range []int{8, 16} {
		cases = append(cases,
			caseSpec{name: fmt.Sprintf("inprocess/clients=%d", clients), clients: clients, metrics: true},
			caseSpec{name: fmt.Sprintf("tcp/unbatched/clients=%d", clients), clients: clients, tcp: true, metrics: true,
				opts: []fastreg.Option{fastreg.WithUnbatchedSends()}},
			caseSpec{name: fmt.Sprintf("tcp/batched/clients=%d", clients), clients: clients, tcp: true, metrics: true},
		)
	}
	cases = append(cases, caseSpec{name: "tcp/multiconn/clients=16", clients: 16, tcp: true, metrics: true,
		opts: []fastreg.Option{fastreg.WithConnsPerLink(2)}})
	return cases
}

// runGate is the CI perf-regression smoke: the gate case, -samples runs,
// exit 1 when the median drops more than the floor's margin.
func runGate(floorPath string, samples int) int {
	raw, err := os.ReadFile(floorPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchwire:", err)
		return 1
	}
	var floor floorDoc
	if err := json.Unmarshal(raw, &floor); err != nil {
		fmt.Fprintln(os.Stderr, "benchwire: floor file:", err)
		return 1
	}
	if floor.Case != gateCase || floor.FloorOpsPerSec <= 0 || floor.AllowedDropFrac <= 0 || floor.AllowedDropFrac >= 1 {
		fmt.Fprintf(os.Stderr, "benchwire: floor file must pin case %q with a positive floor and a drop fraction in (0,1)\n", gateCase)
		return 1
	}
	fmt.Fprintf(os.Stderr, "benchwire: toolchain %s\n", toolchainString())
	spec := caseSpec{name: gateCase, clients: 16, tcp: true}
	res := measure(spec, samples)
	min := floor.FloorOpsPerSec * (1 - floor.AllowedDropFrac)
	fmt.Fprintf(os.Stderr, "benchwire: %s median %.0f ops/sec (floor %.0f, minimum %.0f, %.1f allocs/op)\n",
		gateCase, res.OpsPerSec, floor.FloorOpsPerSec, min, res.AllocsPerOp)
	if res.OpsPerSec < min {
		fmt.Fprintf(os.Stderr, "benchwire: PERF REGRESSION: %.0f ops/sec is more than %.0f%% below the recorded floor\n",
			res.OpsPerSec, floor.AllowedDropFrac*100)
		return 1
	}
	fmt.Fprintln(os.Stderr, "benchwire: gate passed")
	return 0
}

// measure runs one case samples times and returns the medians.
func measure(c caseSpec, samples int) benchCase {
	var ops, nsop, allocs, p50, p95, p99 []float64
	for i := 0; i < samples; i++ {
		var st fastreg.Stats
		r := testing.Benchmark(func(b *testing.B) { runCase(b, c, &st) })
		ops = append(ops, float64(r.N)/r.T.Seconds())
		nsop = append(nsop, float64(r.NsPerOp()))
		allocs = append(allocs, float64(r.MemAllocs)/float64(r.N))
		if st.Enabled {
			p50 = append(p50, float64(st.Ops.P50))
			p95 = append(p95, float64(st.Ops.P95))
			p99 = append(p99, float64(st.Ops.P99))
		}
	}
	bc := benchCase{
		Name:        c.name,
		Clients:     c.clients,
		OpsPerSec:   median(ops),
		NsPerOp:     median(nsop),
		AllocsPerOp: median(allocs),
	}
	if len(p50) > 0 {
		bc.P50Ns, bc.P95Ns, bc.P99Ns = median(p50), median(p95), median(p99)
	}
	return bc
}

func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// runCase is the benchmark body: the same cluster shape and client mix
// as bench_test.go's benchKVStore (5 replicas, clients/2 writers +
// clients/2 readers over 64 keys), with a fresh fleet per sample. When
// the case collects metrics, the sample's final Store.Stats lands in
// *st (the 64 seed writes are in there too — noise against thousands
// of measured ops).
func runCase(b *testing.B, c caseSpec, st *fastreg.Stats) {
	cfg := fastreg.Config{Servers: 5, MaxCrashes: 1, Readers: c.clients / 2, Writers: c.clients / 2}
	opts := c.opts
	if c.metrics {
		opts = append(opts[:len(opts):len(opts)], fastreg.WithMetrics())
	}
	if c.tcp {
		qcfg := quorum.Config{S: cfg.Servers, T: cfg.MaxCrashes, R: cfg.Readers, W: cfg.Writers}
		servers := make([]*transport.Server, qcfg.S)
		addrs := make([]string, qcfg.S)
		for i := range servers {
			lis, err := transport.ListenTCP("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			servers[i], err = transport.NewServer(qcfg, mwabd.New(), i+1, lis)
			if err != nil {
				b.Fatal(err)
			}
			addrs[i] = servers[i].Addr()
		}
		defer func() {
			for _, srv := range servers {
				srv.Close()
			}
		}()
		opts = append([]fastreg.Option{fastreg.WithTCP(addrs...)}, opts...)
	}
	s, err := fastreg.Open(cfg, fastreg.W2R2, opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if c.metrics {
		curDebug.Store(s.DebugHandler())
	}
	driveStore(b, s, cfg)
	if c.metrics {
		*st = s.Stats()
	}
}

// driveStore mirrors bench_test.go's benchKVStore: seed 64 keys, then
// split b.N operations across one goroutine per writer/reader identity.
func driveStore(b *testing.B, s *fastreg.Store, cfg fastreg.Config) {
	const nKeys = 64
	key := func(i int) string { return fmt.Sprintf("key-%03d", i%nKeys) }
	ctx := b.Context()
	seedW, err := s.Writer(1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < nKeys; i++ {
		if _, err := seedW.Put(ctx, key(i), "seed"); err != nil {
			b.Fatal(err)
		}
	}
	clients := cfg.Writers + cfg.Readers
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		n := b.N / clients
		if c < b.N%clients {
			n++
		}
		if n == 0 {
			continue
		}
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			if c < cfg.Writers {
				w, err := s.Writer(c + 1)
				if err != nil {
					b.Error(err)
					return
				}
				for i := 0; i < n; i++ {
					if _, err := w.Put(ctx, key((c+1)*13+i), "v"); err != nil {
						b.Error(err)
						return
					}
				}
				return
			}
			r, err := s.Reader(c - cfg.Writers + 1)
			if err != nil {
				b.Error(err)
				return
			}
			for i := 0; i < n; i++ {
				if _, _, _, err := r.Get(ctx, key(r.Index()*29+i)); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchwire:", err)
	os.Exit(1)
}
