// Command regsim runs a simulated register cluster under a closed-loop
// workload and reports latency and the atomicity verdict. It can also print
// the reproduced Table 1 and Fig 2.
//
// Usage:
//
//	regsim [-protocol W2R2|W2R1|W1R2|W1R1|ABD] [-servers 5] [-t 1]
//	       [-readers 2] [-writers 2] [-writes 10] [-reads 10]
//	       [-seed 1] [-mindelay 1] [-maxdelay 100]
//	regsim -table1 [-trials 5]
//	regsim -fig2
package main

import (
	"flag"
	"fmt"
	"os"

	"fastreg"
	"fastreg/internal/harness"
)

func main() {
	var (
		protocol = flag.String("protocol", "W2R2", "register protocol (W2R2, W2R1, W1R2, W1R1, ABD)")
		servers  = flag.Int("servers", 5, "number of servers S")
		t        = flag.Int("t", 1, "crash tolerance t")
		readers  = flag.Int("readers", 2, "number of readers R")
		writers  = flag.Int("writers", 2, "number of writers W")
		writes   = flag.Int("writes", 10, "writes per writer")
		reads    = flag.Int("reads", 10, "reads per reader")
		seed     = flag.Int64("seed", 1, "random seed")
		minDelay = flag.Int("mindelay", 1, "min one-way message delay (virtual time)")
		maxDelay = flag.Int("maxdelay", 100, "max one-way message delay (virtual time)")
		table1   = flag.Bool("table1", false, "print the reproduced Table 1 and exit")
		fig2     = flag.Bool("fig2", false, "print the reproduced Fig 2 latency table and exit")
		trials   = flag.Int("trials", 5, "adversarial trials per protocol for -table1")
		verbose  = flag.Bool("v", false, "print the execution transcript")
	)
	flag.Parse()

	if *table1 {
		fmt.Print(harness.RenderTable1(harness.Table1(*trials)))
		return
	}
	if *fig2 {
		fmt.Print(harness.RenderFig2(harness.Fig2(50)))
		return
	}

	cfg := fastreg.Config{Servers: *servers, MaxCrashes: *t, Readers: *readers, Writers: *writers}
	p := fastreg.Protocol(*protocol)
	feasible, err := cfg.Implementable(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "regsim:", err)
		os.Exit(1)
	}
	sim, err := fastreg.NewSimulation(cfg, p, fastreg.SimOptions{Seed: *seed, MinDelay: *minDelay, MaxDelay: *maxDelay})
	if err != nil {
		fmt.Fprintln(os.Stderr, "regsim:", err)
		os.Exit(1)
	}
	res := sim.Run(*writes, *reads)

	fmt.Printf("protocol %s on S=%d t=%d R=%d W=%d (paper: atomicity %s)\n",
		p, *servers, *t, *readers, *writers, verdict(feasible))
	fmt.Printf("  writes: %s\n", res.WriteLatency)
	fmt.Printf("  reads:  %s\n", res.ReadLatency)
	fmt.Printf("  checker: %s over %d operations\n", verdictCheck(res.Check), res.Check.Operations)
	fmt.Printf("  consistency: %s\n", res.Consistency)
	if *verbose {
		fmt.Println("transcript:")
		fmt.Println(sim.Transcript())
	}
	if !res.Check.Atomic {
		fmt.Println("  " + res.Check.Explanation)
		os.Exit(2)
	}
}

func verdict(ok bool) string {
	if ok {
		return "guaranteed"
	}
	return "NOT guaranteed"
}

func verdictCheck(c fastreg.CheckResult) string {
	if c.Atomic {
		return "atomic"
	}
	return "VIOLATION"
}
