package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"fastreg"
	"fastreg/internal/faultnet"
	"fastreg/internal/loadgen"
	"fastreg/internal/quorum"
)

// Spec is a declarative scenario: the whole run — fleet shape, protocol,
// workload, fault schedule, byzantine count — in one reviewable JSON file,
// so a scenario is data someone can diff rather than a shell script.
// Milliseconds everywhere a duration appears; zero fields take defaults.
type Spec struct {
	Name     string `json:"name"`
	Protocol string `json:"protocol"`
	// Backend is "tcp" (default: a real loopback fleet, the only backend
	// faults/byzantine apply to) or "inprocess" (the multiplexed in-memory
	// fleet — a workload-only baseline).
	Backend      string     `json:"backend"`
	Seed         int64      `json:"seed"`
	Fleet        FleetSpec  `json:"fleet"`
	VouchedReads int        `json:"vouched_reads"`
	Workload     WorkSpec   `json:"workload"`
	Faults       []RuleSpec `json:"faults"`

	// EpochMS arms the continuous audit: the store cuts a weight-throwing
	// epoch this often, every capture log (client and replica) gets the
	// boundary stamps, and `regaudit follow` can verify the run live.
	// Needs the tcp backend — the weight rides the wire envelopes.
	EpochMS int `json:"epoch_ms"`
	// RotateBytes caps each capture log segment; rotation exercises the
	// .trlog.N segment families the streaming follower tails.
	RotateBytes int64 `json:"rotate_bytes"`
}

// FleetSpec is the cluster shape plus how the client fans out to it.
type FleetSpec struct {
	Servers int `json:"servers"`
	T       int `json:"t"`
	Writers int `json:"writers"`
	Readers int `json:"readers"`
	// Byzantine marks the LAST N replicas as liars (internal/byzantine's
	// LyingServer on the wire) — last, so s1 stays honest and log names
	// alone tell who lied.
	Byzantine    int `json:"byzantine"`
	ConnsPerLink int `json:"conns_per_link"`
}

// WorkSpec parameterizes the open-loop generator (internal/loadgen).
type WorkSpec struct {
	DurationMS int     `json:"duration_ms"`
	Rate       float64 `json:"rate"`
	EndRate    float64 `json:"end_rate"`
	Keys       int     `json:"keys"`
	ZipfS      float64 `json:"zipf_s"`
	WriteFrac  float64 `json:"write_frac"`
	ValueSize  int     `json:"value_size"`
	TimeoutMS  int     `json:"timeout_ms"`
}

// RuleSpec is one fault schedule entry. Endpoints are the scenario's
// fixed names: "c" (the client), "s1".."sS", or "*".
type RuleSpec struct {
	From        string  `json:"from"`
	To          string  `json:"to"`
	StartMS     int     `json:"start_ms"`
	EndMS       int     `json:"end_ms"` // 0 = open-ended
	Fault       string  `json:"fault"`  // faultnet palette name: drop, delay, ...
	DelayMS     int     `json:"delay_ms"`
	JitterMS    int     `json:"jitter_ms"`
	BytesPerSec int     `json:"bytes_per_sec"`
	Prob        float64 `json:"prob"`
}

// LoadSpec reads and validates a scenario file.
func LoadSpec(path string) (*Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields() // a typoed field must not silently become a default
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := s.validate(); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &s, nil
}

func (s *Spec) validate() error {
	if s.Name == "" {
		return fmt.Errorf("spec needs a name")
	}
	switch s.Backend {
	case "":
		s.Backend = "tcp"
	case "tcp", "inprocess":
	default:
		return fmt.Errorf("backend %q: want tcp or inprocess", s.Backend)
	}
	known := false
	for _, p := range fastreg.Protocols() {
		if string(p) == s.Protocol {
			known = true
		}
	}
	if !known {
		return fmt.Errorf("unknown protocol %q (have %v)", s.Protocol, fastreg.Protocols())
	}
	if _, err := s.QuorumConfig(); err != nil {
		return fmt.Errorf("fleet: %v", err)
	}
	if s.Fleet.Byzantine < 0 || s.Fleet.Byzantine > s.Fleet.Servers {
		return fmt.Errorf("byzantine count %d out of [0,%d]", s.Fleet.Byzantine, s.Fleet.Servers)
	}
	if s.Backend != "tcp" {
		if s.Fleet.Byzantine > 0 {
			return fmt.Errorf("byzantine replicas need the tcp backend (the liar wraps the wire server)")
		}
		if len(s.Faults) > 0 {
			return fmt.Errorf("fault schedules need the tcp backend (faults inject at the framing layer)")
		}
		if s.VouchedReads > 0 {
			return fmt.Errorf("vouched reads need the tcp backend")
		}
	}
	if s.VouchedReads < 0 {
		return fmt.Errorf("vouched_reads must be >= 0")
	}
	if s.EpochMS < 0 {
		return fmt.Errorf("epoch_ms must be >= 0")
	}
	if s.EpochMS > 0 && s.Backend != "tcp" {
		return fmt.Errorf("epoch_ms needs the tcp backend (epoch weight rides the wire envelopes)")
	}
	if s.RotateBytes < 0 {
		return fmt.Errorf("rotate_bytes must be >= 0")
	}
	if s.Workload.DurationMS <= 0 {
		return fmt.Errorf("workload: duration_ms must be positive")
	}
	for i := range s.Faults {
		if err := s.validateRule(&s.Faults[i]); err != nil {
			return fmt.Errorf("faults[%d]: %v", i, err)
		}
	}
	return nil
}

func (s *Spec) validateRule(r *RuleSpec) error {
	if _, ok := faultnet.ParseFaultKind(r.Fault); !ok {
		return fmt.Errorf("unknown fault %q", r.Fault)
	}
	for _, ep := range []string{r.From, r.To} {
		if !s.validEndpoint(ep) {
			return fmt.Errorf("endpoint %q: want \"c\", \"s1\"..\"s%d\" or \"*\"", ep, s.Fleet.Servers)
		}
	}
	if r.EndMS != 0 && r.EndMS <= r.StartMS {
		return fmt.Errorf("window [%d,%d)ms is empty", r.StartMS, r.EndMS)
	}
	return nil
}

func (s *Spec) validEndpoint(ep string) bool {
	if ep == "c" || ep == "*" {
		return true
	}
	for i := 1; i <= s.Fleet.Servers; i++ {
		if ep == fmt.Sprintf("s%d", i) {
			return true
		}
	}
	return false
}

// QuorumConfig derives the validated wire-layer shape.
func (s *Spec) QuorumConfig() (quorum.Config, error) {
	cfg := quorum.Config{S: s.Fleet.Servers, T: s.Fleet.T, R: s.Fleet.Readers, W: s.Fleet.Writers}
	if err := cfg.Validate(); err != nil {
		return quorum.Config{}, err
	}
	return cfg, nil
}

// Rules lowers the schedule to faultnet rules.
func (s *Spec) Rules() []faultnet.Rule {
	out := make([]faultnet.Rule, 0, len(s.Faults))
	for _, r := range s.Faults {
		kind, _ := faultnet.ParseFaultKind(r.Fault)
		out = append(out, faultnet.Rule{
			From:   r.From,
			To:     r.To,
			Window: faultnet.Window{Start: ms(r.StartMS), End: ms(r.EndMS)},
			Fault: faultnet.Fault{
				Kind:        kind,
				Delay:       ms(r.DelayMS),
				Jitter:      ms(r.JitterMS),
				BytesPerSec: r.BytesPerSec,
				Prob:        r.Prob,
			},
		})
	}
	return out
}

// LoadConfig lowers the workload to a loadgen config (seed applied by
// the caller, which owns the -seed override).
func (s *Spec) LoadConfig(seed int64) loadgen.Config {
	w := s.Workload
	return loadgen.Config{
		Seed:      seed,
		Writers:   s.Fleet.Writers,
		Readers:   s.Fleet.Readers,
		Keys:      w.Keys,
		ZipfS:     w.ZipfS,
		Rate:      w.Rate,
		EndRate:   w.EndRate,
		Duration:  ms(w.DurationMS),
		WriteFrac: w.WriteFrac,
		ValueSize: w.ValueSize,
		OpTimeout: ms(w.TimeoutMS),
	}
}

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }
