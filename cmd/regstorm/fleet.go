package main

import (
	"fmt"

	"fastreg/internal/audit"
	"fastreg/internal/byzantine"
	"fastreg/internal/faultnet"
	"fastreg/internal/protocols"
	"fastreg/internal/quorum"
	"fastreg/internal/transport"
)

// fleet is a scenario's server side: S wire replicas hosted in this
// process behind fault-injecting listeners, each appending its own
// capture log exactly as a deployed regserver -capture would — so the
// run leaves the same evidence a real fleet does and regaudit's merge
// applies unchanged.
type fleet struct {
	addrs    []string
	servers  []*transport.Server
	captures []*audit.Writer
}

// startFleet binds every replica on a loopback port behind plan's
// listener wrapper. Replica i is named "s<i>" in the fault schedule; the
// last spec.Fleet.Byzantine replicas get their server logic wrapped in
// the lying server. Capture headers carry the CLEAN protocol name — a
// liar does not announce itself, and the merge needs one protocol across
// logs.
func startFleet(spec *Spec, cfg quorum.Config, plan *faultnet.Plan, captureDir string) (*fleet, error) {
	base, err := protocols.New(spec.Protocol)
	if err != nil {
		return nil, err
	}
	f := &fleet{}
	for i := 1; i <= cfg.S; i++ {
		impl := base
		if i > cfg.S-spec.Fleet.Byzantine {
			impl = byzantine.Liars(base, i)
		}
		cap, err := audit.NewFileWriter(
			fmt.Sprintf("%s/s%d%s", captureDir, i, audit.TraceExt),
			audit.ServerHeader(i, base.Name(), cfg))
		if err != nil {
			f.Close()
			return nil, err
		}
		if spec.RotateBytes > 0 {
			cap.RotateAt(spec.RotateBytes)
		}
		f.captures = append(f.captures, cap)
		lis, err := plan.Listen("127.0.0.1:0", fmt.Sprintf("s%d", i), "c")
		if err != nil {
			f.Close()
			return nil, err
		}
		srv, err := transport.NewServer(cfg, impl, i, lis, transport.WithServerCapture(cap.Handle))
		if err != nil {
			lis.Close()
			f.Close()
			return nil, err
		}
		f.servers = append(f.servers, srv)
		f.addrs = append(f.addrs, srv.Addr())
	}
	return f, nil
}

// StampEpoch appends a closed audit epoch's boundary record to every
// replica log — the co-hosted fleet's half of the weight-throwing
// cutover, registered via Store.OnAuditEpoch. Sound because a replica's
// capture record is appended before its reply ships: by the time the
// epoch's weight is all home (which is what fires this), every handle
// record of the epoch is already behind the boundary.
func (f *fleet) StampEpoch(n uint64) {
	for _, c := range f.captures {
		c.Epoch(n)
	}
}

// Close stops the replicas and flushes their logs; capture errors are
// returned because a truncated log silently downgrades the verdict from
// binding to advisory.
func (f *fleet) Close() error {
	var firstErr error
	for _, s := range f.servers {
		s.Close()
	}
	for _, c := range f.captures {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
