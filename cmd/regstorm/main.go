// Command regstorm runs one declarative storm scenario end to end:
// it hosts a replica fleet (real loopback TCP behind internal/faultnet's
// fault-injecting listeners, or the in-process backend as a clean
// baseline), drives it with internal/loadgen's open-loop workload, and
// finishes by merging every capture log and replaying the atomicity
// checker over the joint history — the process exit code IS the
// atomicity verdict, so a scenario run is a pass/fail test of the store
// under the scenario's faults.
//
// Usage:
//
//	regstorm -spec scenarios/storm-smoke.json [-seed N] [-capture DIR]
//	         [-bench-out BENCH.json] [diagnostics flags]
//
// Exit codes follow regaudit check: 0 when every key's merged history
// checks atomic, 2 on a violation, 1 on any operational error. The spec
// format is cmd/regstorm's Spec (see spec.go and scenarios/*.json);
// -seed overrides the spec's seed, and everything random — workload
// keys, arrival times, fault jitter and probability draws — flows from
// that one value, so a run prints its schedule and a same-seed rerun
// reproduces it line for line.
//
// Byzantine scenarios put internal/byzantine on the wire: the spec's
// byzantine count wraps that many replicas in the lying server, and
// vouched_reads arms the client-side filter (fastreg.WithVouchedReads).
// Within the filter's budget (liars <= vouched_reads <= t) the verdict
// stays CLEAN; past it the forged value reaches a reader and the merged
// history indicts the run — the checker's read-from-nowhere violation —
// with exit 2.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"

	"fastreg"
	"fastreg/internal/audit"
	"fastreg/internal/cliflags"
	"fastreg/internal/faultnet"
	"fastreg/internal/lint"
	"fastreg/internal/loadgen"
	"fastreg/internal/obs"
)

func main() {
	os.Exit(run())
}

// run is main minus os.Exit, so defers fire before the code is decided.
func run() int {
	var (
		specPath = flag.String("spec", "", "scenario spec file (required; see scenarios/*.json)")
		benchOut = flag.String("bench-out", "", "also write a fastreg-bench/v1 document for the workload's throughput/latency")
		capDir   = flag.String("capture", "", "directory for the run's trace logs (default: a temp dir, removed after a clean verdict)")
		pr       = flag.Int("pr", 10, "PR number recorded in the -bench-out document")
	)
	seedFlag := cliflags.RegisterSeed(flag.CommandLine)
	diag := cliflags.RegisterDiag(flag.CommandLine)
	flag.Parse()
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "regstorm: -spec is required")
		return 1
	}
	spec, err := LoadSpec(*specPath)
	if err != nil {
		return fail(err)
	}
	// The spec's seed is the default; an explicit -seed wins so one
	// scenario file covers a whole family of reproducible runs.
	seed := spec.Seed
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seed = *seedFlag
		}
	})
	if seed == 0 {
		seed = 1
	}

	stopProfiles, err := diag.StartProfiles()
	if err != nil {
		return fail(err)
	}
	defer stopProfiles()
	reg := diag.Registry()
	stopDebug, err := diag.ServeDebug(obs.Handler(reg, nil))
	if err != nil {
		return fail(err)
	}
	defer stopDebug()

	cfg, err := spec.QuorumConfig()
	if err != nil {
		return fail(err)
	}
	dir := *capDir
	ephemeral := dir == ""
	if ephemeral {
		if dir, err = os.MkdirTemp("", "regstorm-"+spec.Name+"-*"); err != nil {
			return fail(err)
		}
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return fail(err)
	}

	plan := faultnet.NewPlan(seed, spec.Rules()...)
	printSchedule(spec, cfg, plan, seed)

	opts := []fastreg.Option{fastreg.WithCapture(dir)}
	var flt *fleet
	if spec.Backend == "tcp" {
		if flt, err = startFleet(spec, cfg, plan, dir); err != nil {
			return fail(err)
		}
		opts = append(opts, fastreg.WithTCP(flt.addrs...))
		if spec.Fleet.ConnsPerLink > 1 {
			opts = append(opts, fastreg.WithConnsPerLink(spec.Fleet.ConnsPerLink))
		}
		if spec.VouchedReads > 0 {
			opts = append(opts, fastreg.WithVouchedReads(spec.VouchedReads))
		}
		if spec.EpochMS > 0 {
			opts = append(opts, fastreg.WithAuditEpochs(ms(spec.EpochMS)))
		}
	}
	if spec.RotateBytes > 0 {
		opts = append(opts, fastreg.WithCaptureRotation(spec.RotateBytes))
	}
	if reg != nil {
		opts = append(opts, fastreg.WithMetrics())
	}
	fcfg := fastreg.Config{Servers: cfg.S, MaxCrashes: cfg.T, Readers: cfg.R, Writers: cfg.W}
	store, err := fastreg.Open(fcfg, fastreg.Protocol(spec.Protocol), opts...)
	if err != nil {
		if flt != nil {
			flt.Close()
		}
		return fail(err)
	}
	if spec.EpochMS > 0 && flt != nil {
		// The replica logs live in this process, so the coordinator can
		// stamp them directly when each epoch's weight comes home.
		if err := store.OnAuditEpoch(flt.StampEpoch); err != nil {
			store.Close()
			flt.Close()
			return fail(err)
		}
	}

	// Clock zero is now: fault windows are offsets into the workload,
	// not into connection setup.
	plan.Start()
	rep, err := loadgen.Run(context.Background(), store, spec.LoadConfig(seed), reg)
	store.Close()
	if flt != nil {
		if cerr := flt.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		return fail(err)
	}
	fmt.Printf("regstorm: workload %s\n", rep)

	if *benchOut != "" {
		if err := writeBench(*benchOut, spec, *pr, rep); err != nil {
			return fail(err)
		}
	}

	code, err := verdict(dir)
	if err != nil {
		return fail(err)
	}
	if code == 0 && ephemeral {
		os.RemoveAll(dir)
	} else {
		fmt.Printf("regstorm: trace logs kept in %s\n", dir)
	}
	return code
}

// printSchedule emits the run's deterministic preamble: everything a
// same-seed rerun must reproduce byte for byte (rules, windows, and the
// derived per-direction seeds), so two runs can be diffed on their
// "schedule:" lines alone.
func printSchedule(spec *Spec, cfg interface{ String() string }, plan *faultnet.Plan, seed int64) {
	fmt.Printf("regstorm: spec %s — %s %s over %s, seed %d\n",
		spec.Name, spec.Protocol, cfg, spec.Backend, seed)
	if spec.Fleet.Byzantine > 0 {
		fmt.Printf("regstorm: %d byzantine replica(s) (the last of s1..s%d), vouched reads budget %d\n",
			spec.Fleet.Byzantine, spec.Fleet.Servers, spec.VouchedReads)
	}
	dirs := map[string]bool{}
	for i, r := range plan.Rules() {
		end := "∞"
		if r.Window.End != 0 {
			end = r.Window.End.String()
		}
		f := r.Fault
		detail := ""
		switch {
		case f.Delay != 0 || f.Jitter != 0:
			detail = fmt.Sprintf(" %v+[0,%v)", f.Delay, f.Jitter)
		case f.BytesPerSec != 0:
			detail = fmt.Sprintf(" %dB/s", f.BytesPerSec)
		}
		if f.Prob != 0 {
			detail += fmt.Sprintf(" p=%g", f.Prob)
		}
		fmt.Printf("schedule: rule %d: %s->%s [%v,%s) %s%s\n", i+1, r.From, r.To, r.Window.Start, end, f.Kind, detail)
		if r.From != "*" && r.To != "*" {
			dirs[r.From+"->"+r.To] = true
		}
	}
	var keys []string
	for d := range dirs {
		keys = append(keys, d)
	}
	sort.Strings(keys)
	for _, d := range keys {
		parts := splitDir(d)
		fmt.Printf("schedule: dirseed %s#0 = %d\n", d, plan.DirSeed(parts[0], parts[1], 0))
	}
}

func splitDir(d string) [2]string {
	for i := 0; i+1 < len(d); i++ {
		if d[i] == '-' && d[i+1] == '>' {
			return [2]string{d[:i], d[i+2:]}
		}
	}
	return [2]string{d, ""}
}

// verdict merges every trace log the run left and replays the checker —
// regaudit check's machinery and exit convention, in process.
func verdict(dir string) (int, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*"+audit.TraceExt))
	if err != nil {
		return 1, err
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return 1, fmt.Errorf("no trace logs in %s", dir)
	}
	m, err := audit.MergeFiles(paths...)
	if err != nil {
		return 1, err
	}
	intact := 0
	for _, files := range m.Replicas {
		good := true
		for _, f := range files {
			if f.Truncated {
				good = false
			}
		}
		if good {
			intact++
		}
	}
	coverage := "FULL — verdicts binding"
	if !m.FullCoverage {
		coverage = "PARTIAL — verdicts advisory"
	}
	fmt.Printf("regstorm: merged %d logs (%d client, %d/%d replicas), coverage %s\n",
		len(m.Files), len(m.Clients), intact, m.Shape.S, coverage)
	for _, w := range m.Warnings {
		fmt.Printf("regstorm: warning: %s\n", w)
	}
	rep := m.Check()
	fmt.Print(rep.Summary())
	if !rep.Clean {
		return 2, nil
	}
	return 0, nil
}

// writeBench emits the workload's numbers as a fastreg-bench/v1 document
// — the same schema benchwire writes, so storm runs land in the repo's
// perf record the same way wire benchmarks do.
func writeBench(path string, spec *Spec, pr int, rep *loadgen.Report) error {
	type benchCase struct {
		Name        string  `json:"name"`
		Clients     int     `json:"clients"`
		OpsPerSec   float64 `json:"ops_per_sec"`
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp float64 `json:"allocs_per_op"`
		P50Ns       float64 `json:"p50_ns"`
		P95Ns       float64 `json:"p95_ns"`
		P99Ns       float64 `json:"p99_ns"`
	}
	doc := struct {
		Schema     string      `json:"schema"`
		Toolchain  string      `json:"toolchain"`
		PR         int         `json:"pr"`
		GoMaxProcs int         `json:"go_maxprocs"`
		Samples    int         `json:"samples"`
		Results    []benchCase `json:"results"`
	}{
		Schema:     "fastreg-bench/v1",
		Toolchain:  fmt.Sprintf("%s fastreglint/%s", runtime.Version(), lint.Version),
		PR:         pr,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Samples:    1,
	}
	c := benchCase{
		Name:        "storm/" + spec.Name,
		Clients:     spec.Fleet.Writers + spec.Fleet.Readers,
		OpsPerSec:   rep.OpsPerSec(),
		AllocsPerOp: rep.AllocsPerOp,
		P50Ns:       float64(rep.Merged.P50),
		P95Ns:       float64(rep.Merged.P95),
		P99Ns:       float64(rep.Merged.P99),
	}
	if rep.Completed > 0 {
		c.NsPerOp = float64(rep.Elapsed.Nanoseconds()) / float64(rep.Completed)
	}
	doc.Results = append(doc.Results, c)
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		return err
	}
	fmt.Printf("regstorm: wrote %s\n", path)
	return nil
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "regstorm:", err)
	return 1
}
