// Command chaincheck runs the executable impossibility argument of
// Theorem 1 (Sections 3–4) against a fast-write candidate and prints the
// chain construction summary and the violating execution it exhibits.
//
// Usage:
//
//	chaincheck [-protocol FullInfo|W1R2] [-servers 5] [-history]
package main

import (
	"flag"
	"fmt"
	"os"

	"fastreg"
	"fastreg/internal/atomicity"
	"fastreg/internal/chains"
	"fastreg/internal/crucialinfo"
	"fastreg/internal/register"
	"fastreg/internal/w1r2"
)

func main() {
	var (
		protocol = flag.String("protocol", "FullInfo", "fast-write candidate: FullInfo or W1R2")
		servers  = flag.Int("servers", 5, "number of servers S (t=1, W=2, R=2 fixed)")
		history  = flag.Bool("history", false, "print the violating execution's history")
	)
	flag.Parse()

	var p register.Protocol
	switch fastreg.Protocol(*protocol) {
	case fastreg.FullInfo:
		p = crucialinfo.New()
	case fastreg.W1R2:
		p = w1r2.New()
	default:
		fmt.Fprintf(os.Stderr, "chaincheck: unsupported candidate %q (want FullInfo or W1R2)\n", *protocol)
		os.Exit(1)
	}

	rep, err := chains.FindViolation(p, *servers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaincheck:", err)
		os.Exit(1)
	}
	fmt.Print(rep.String())
	if v := rep.First(); v != nil {
		fmt.Printf("\nexhibit (%s/%s):\n", v.Phase, v.Execution)
		fmt.Printf("  %s\n", v.Result)
		if *history {
			fmt.Println("  full history:")
			for _, line := range splitLines(v.Outcome.History.String()) {
				fmt.Println("    " + line)
			}
			small := atomicity.Shrink(v.Outcome.History)
			fmt.Printf("  minimal violating core (%d of %d operations):\n", len(small.Ops), len(v.Outcome.History.Ops))
			for _, line := range splitLines(small.String()) {
				fmt.Println("    " + line)
			}
		}
	} else {
		fmt.Println("no violation found — unexpected for a fast-write candidate (Theorem 1)")
		os.Exit(2)
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
