package fastreg_test

import (
	"context"
	"fmt"
	"log"

	"fastreg"
	"fastreg/internal/mwabd"
	"fastreg/internal/quorum"
	"fastreg/internal/transport"
)

// ExampleOpen runs a replicated KV store on the default in-process
// backend: one multiplexed fleet of 5 server goroutines serves every
// key, and clients are session handles bound to one identity each.
func ExampleOpen() {
	cfg := fastreg.DefaultConfig() // S=5, t=1, R=2, W=2 — the paper's shape
	store, err := fastreg.Open(cfg, fastreg.W2R2)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	ctx := context.Background()

	w, err := store.Writer(1) // identity bound once, range-checked here
	if err != nil {
		log.Fatal(err)
	}
	r, err := store.Reader(1)
	if err != nil {
		log.Fatal(err)
	}

	if _, err := w.Put(ctx, "users:alice", "hello"); err != nil {
		log.Fatal(err)
	}
	v, ver, ok, err := r.Get(ctx, "users:alice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s %v %s\n", v, ok, ver)

	store.CrashServer(3) // within t=1: everything keeps completing
	v, _, _, err = r.Get(ctx, "users:alice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(v, store.Check().Atomic)
	// Output:
	// hello true (1,w1)
	// hello true
}

// ExampleOpen_tcp drives the same store code against replicas behind
// real TCP: three transport.Servers on loopback stand in for three
// cmd/regserver processes — only the Open options change.
func ExampleOpen_tcp() {
	qcfg := quorum.Config{S: 3, T: 1, R: 2, W: 2}
	servers := make([]*transport.Server, qcfg.S)
	addrs := make([]string, qcfg.S)
	for i := range servers {
		lis, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		servers[i], err = transport.NewServer(qcfg, mwabd.New(), i+1, lis)
		if err != nil {
			log.Fatal(err)
		}
		addrs[i] = servers[i].Addr()
		defer servers[i].Close()
	}

	cfg := fastreg.Config{Servers: 3, MaxCrashes: 1, Readers: 2, Writers: 2}
	store, err := fastreg.Open(cfg, fastreg.W2R2, fastreg.WithTCP(addrs...))
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	ctx := context.Background()

	w, _ := store.Writer(1)
	r, _ := store.Reader(1)
	if _, err := w.Put(ctx, "config:flags", "on"); err != nil {
		log.Fatal(err)
	}
	v, _, ok, err := r.Get(ctx, "config:flags")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(v, ok, store.Check().Atomic)
	// Output:
	// on true true
}

// ExampleStore_Writer shows the handle misuse guards: out-of-range
// identities fail at creation, and a handle rejects overlapping calls
// instead of corrupting protocol state.
func ExampleStore_Writer() {
	store, err := fastreg.Open(fastreg.DefaultConfig(), fastreg.W2R2)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	if _, err := store.Writer(99); err != nil {
		fmt.Println(err)
	}
	w, _ := store.Writer(2)
	fmt.Println(w.Index())
	// Output:
	// fastreg: writer 99 out of range [1,2]
	// 2
}
