// Backend conformance: one table-driven suite executed against all three
// Open backends through identical code — the point of the Backend seam.
// Every backend must serve puts and gets through session handles, reject
// out-of-range identities at handle creation, honor context deadlines,
// survive ≤ t crashes, pass the atomicity checker over a concurrent
// workload, and (where supported) evict idle keys on sweep. CI runs this
// under -race.
package fastreg_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fastreg"
	"fastreg/internal/mwabd"
	"fastreg/internal/quorum"
	"fastreg/internal/transport"
)

// sweeper is the optional capability eviction-supporting backends expose
// (netsim.MultiLive and transport.Client both do).
type sweeper interface{ Sweep() int }

// backendCase describes one Open backend under conformance test. open
// boots whatever the backend needs (replica servers for TCP), registers
// cleanup, and returns the store plus a sweep hook that advances every
// eviction epoch the deployment has (client and servers) and reports
// whether NO key state remains anywhere — client registry and every
// replica; sweep is nil when the backend does not support eviction.
type backendCase struct {
	name string
	open func(t *testing.T, cfg fastreg.Config) (s *fastreg.Store, sweep func() bool)
}

// bootTCPFleet starts qcfg.S loopback replica servers (closed on test
// cleanup) and returns them with their dial addresses — the stand-in for
// a cmd/regserver fleet every TCP-backend test shares.
func bootTCPFleet(tb testing.TB, qcfg quorum.Config, sopts ...transport.ServerOption) ([]*transport.Server, []string) {
	tb.Helper()
	servers := make([]*transport.Server, qcfg.S)
	addrs := make([]string, qcfg.S)
	for i := range servers {
		lis, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			tb.Fatal(err)
		}
		servers[i], err = transport.NewServer(qcfg, mwabd.New(), i+1, lis, sopts...)
		if err != nil {
			tb.Fatal(err)
		}
		addrs[i] = servers[i].Addr()
		tb.Cleanup(servers[i].Close)
	}
	return servers, addrs
}

func backendCases() []backendCase {
	return []backendCase{
		{
			name: "inprocess",
			open: func(t *testing.T, cfg fastreg.Config) (*fastreg.Store, func() bool) {
				t.Helper()
				s, err := fastreg.Open(cfg, fastreg.W2R2, fastreg.WithInProcess())
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(s.Close)
				// MultiLive drops client and server state together, so an
				// empty client registry means the servers are clean too.
				return s, func() bool {
					s.Backend().(sweeper).Sweep()
					return len(s.Keys()) == 0
				}
			},
		},
		{
			name: "perkey",
			open: func(t *testing.T, cfg fastreg.Config) (*fastreg.Store, func() bool) {
				t.Helper()
				s, err := fastreg.Open(cfg, fastreg.W2R2, fastreg.WithPerKey())
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(s.Close)
				return s, nil // the per-key backend has no eviction
			},
		},
		{
			name: "tcp",
			open: func(t *testing.T, cfg fastreg.Config) (*fastreg.Store, func() bool) {
				t.Helper()
				qcfg := quorum.Config{S: cfg.Servers, T: cfg.MaxCrashes, R: cfg.Readers, W: cfg.Writers}
				servers, addrs := bootTCPFleet(t, qcfg)
				s, err := fastreg.Open(cfg, fastreg.W2R2, fastreg.WithTCP(addrs...))
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(s.Close)
				// A full deployment sweep: the client registry plus every
				// replica's (eviction is server state AND client state in
				// separate processes on this backend). Eviction converges
				// only when no replica holds the key either — a straggler
				// request can land at the slow S−t'th server after its
				// sweeps started and keep it alive for extra epochs.
				return s, func() bool {
					s.Backend().(sweeper).Sweep()
					empty := len(s.Keys()) == 0
					for _, srv := range servers {
						srv.Sweep()
						if srv.KeyCount() != 0 {
							empty = false
						}
					}
					return empty
				}
			},
		},
		{
			// The TCP backend with both wire knobs turned up: 4 client
			// connections per replica (round-robin steering, replies
			// correlated by opID across sockets) against replicas running a
			// 4-worker shard-affine pool. The whole conformance surface —
			// handles, deadlines, crashes, eviction, atomicity — must be
			// indistinguishable from the default tcp case.
			name: "tcp-multiconn",
			open: func(t *testing.T, cfg fastreg.Config) (*fastreg.Store, func() bool) {
				t.Helper()
				qcfg := quorum.Config{S: cfg.Servers, T: cfg.MaxCrashes, R: cfg.Readers, W: cfg.Writers}
				servers, addrs := bootTCPFleet(t, qcfg, transport.WithServerWorkers(4))
				s, err := fastreg.Open(cfg, fastreg.W2R2, fastreg.WithTCP(addrs...), fastreg.WithConnsPerLink(4))
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(s.Close)
				return s, func() bool {
					s.Backend().(sweeper).Sweep()
					empty := len(s.Keys()) == 0
					for _, srv := range servers {
						srv.Sweep()
						if srv.KeyCount() != 0 {
							empty = false
						}
					}
					return empty
				}
			},
		},
	}
}

func conformanceCfg() fastreg.Config {
	return fastreg.Config{Servers: 5, MaxCrashes: 1, Readers: 3, Writers: 3}
}

func TestBackendConformance(t *testing.T) {
	for _, bc := range backendCases() {
		bc := bc
		t.Run(bc.name, func(t *testing.T) {
			t.Run("PutGet", func(t *testing.T) {
				s, _ := bc.open(t, conformanceCfg())
				ctx := context.Background()
				w, err := s.Writer(1)
				if err != nil {
					t.Fatal(err)
				}
				r, err := s.Reader(1)
				if err != nil {
					t.Fatal(err)
				}
				ver, err := w.Put(ctx, "k", "hello")
				if err != nil {
					t.Fatal(err)
				}
				if ver.TS < 1 || ver.Writer != 1 {
					t.Fatalf("put version = %v", ver)
				}
				v, rver, ok, err := r.Get(ctx, "k")
				if err != nil || !ok || v != "hello" {
					t.Fatalf("Get = %q ok=%v err=%v", v, ok, err)
				}
				if rver != ver {
					t.Fatalf("read version %v != written %v", rver, ver)
				}
				if _, _, ok, err := r.Get(ctx, "never-written"); err != nil || ok {
					t.Fatalf("missing key: ok=%v err=%v", ok, err)
				}
			})

			t.Run("HandleRange", func(t *testing.T) {
				s, _ := bc.open(t, conformanceCfg())
				cfg := s.Config()
				for _, i := range []int{0, -1, cfg.Writers + 1} {
					if _, err := s.Writer(i); err == nil {
						t.Fatalf("Writer(%d) must fail", i)
					}
				}
				for _, i := range []int{0, -1, cfg.Readers + 1} {
					if _, err := s.Reader(i); err == nil {
						t.Fatalf("Reader(%d) must fail", i)
					}
				}
			})

			t.Run("CtxTimeout", func(t *testing.T) {
				s, _ := bc.open(t, conformanceCfg())
				w, _ := s.Writer(1)
				r, _ := s.Reader(1)
				ctx, cancel := context.WithCancel(context.Background())
				cancel() // already expired: expiry must win deterministically
				if _, err := w.Put(ctx, "k", "v"); !fastreg.IsTimeout(err) {
					t.Fatalf("Put with cancelled ctx = %v, want ErrTimeout", err)
				}
				if _, _, _, err := r.Get(ctx, "k"); !fastreg.IsTimeout(err) {
					t.Fatalf("Get with cancelled ctx = %v, want ErrTimeout", err)
				}
				// The timed-out ops are recorded as failed (optional for the
				// checker); the store must still check clean.
				if res := s.Check(); !res.Atomic {
					t.Fatalf("after timeouts: %s", res.Explanation)
				}
			})

			t.Run("CrashAndCheck", func(t *testing.T) {
				s, _ := bc.open(t, conformanceCfg())
				cfg := s.Config()
				ctx := context.Background()
				keys := []string{"users:a", "users:b", "cfg:c"}
				var wg sync.WaitGroup
				for i := 1; i <= cfg.Writers; i++ {
					w, err := s.Writer(i)
					if err != nil {
						t.Fatal(err)
					}
					wg.Add(1)
					go func(i int, w *fastreg.Writer) {
						defer wg.Done()
						for n := 0; n < 8; n++ {
							if _, err := w.Put(ctx, keys[(i+n)%len(keys)], fmt.Sprintf("w%d#%d", i, n)); err != nil {
								t.Errorf("put: %v", err)
								return
							}
							if i == 1 && n == 3 {
								// ≤ t crashes: operations must keep completing.
								s.CrashServer(cfg.Servers)
							}
						}
					}(i, w)
				}
				for i := 1; i <= cfg.Readers; i++ {
					r, err := s.Reader(i)
					if err != nil {
						t.Fatal(err)
					}
					wg.Add(1)
					go func(i int, r *fastreg.Reader) {
						defer wg.Done()
						for n := 0; n < 8; n++ {
							if _, _, _, err := r.Get(ctx, keys[(i+n)%len(keys)]); err != nil {
								t.Errorf("get: %v", err)
								return
							}
						}
					}(i, r)
				}
				wg.Wait()
				if t.Failed() {
					return
				}
				res := s.Check()
				if !res.Atomic {
					t.Fatalf("atomicity violated: %s", res.Explanation)
				}
				if res.Operations == 0 {
					t.Fatal("checker saw no operations")
				}
				if got := len(s.Keys()); got != len(keys) {
					t.Fatalf("Keys() = %d, want %d", got, len(keys))
				}
			})

			t.Run("Eviction", func(t *testing.T) {
				s, sweep := bc.open(t, conformanceCfg())
				if sweep == nil {
					t.Skipf("backend %s does not support eviction", bc.name)
				}
				ctx := context.Background()
				w, _ := s.Writer(1)
				r, _ := s.Reader(1)
				if _, err := w.Put(ctx, "idle", "v"); err != nil {
					t.Fatal(err)
				}
				// Repeated sweeps with no touches in between: once the key's
				// straggler messages drain (a completed op only needed S−t
				// replies), it is idle for a full epoch and must be evicted
				// from every component of the deployment.
				deadline := time.Now().Add(5 * time.Second)
				for !sweep() {
					if time.Now().After(deadline) {
						t.Fatal("sweeps never drained the key state")
					}
					time.Sleep(time.Millisecond)
				}
				v, _, ok, err := r.Get(ctx, "idle")
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					t.Fatalf("evicted key reads as written: %q", v)
				}
				// The key must be writable again after expiry.
				if _, err := w.Put(ctx, "idle", "again"); err != nil {
					t.Fatal(err)
				}
				if v, _, ok, err := r.Get(ctx, "idle"); err != nil || !ok || v != "again" {
					t.Fatalf("after re-write: %q ok=%v err=%v", v, ok, err)
				}
			})
		})
	}
}

// TestBackendConformanceDeadline exercises a real (ticking) deadline
// against an unreachable quorum on the TCP backend: with every replica
// gone, an operation must block exactly until ctx expires, then surface
// ErrTimeout.
func TestBackendConformanceDeadline(t *testing.T) {
	cfg := conformanceCfg()
	qcfg := quorum.Config{S: cfg.Servers, T: cfg.MaxCrashes, R: cfg.Readers, W: cfg.Writers}
	servers, addrs := bootTCPFleet(t, qcfg)
	s, err := fastreg.Open(cfg, fastreg.W2R2, fastreg.WithTCP(addrs...))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w, _ := s.Writer(1)
	if _, err := w.Put(context.Background(), "k", "v"); err != nil {
		t.Fatal(err)
	}
	for _, srv := range servers {
		srv.Close() // the whole fleet dies: no quorum can form
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = w.Put(ctx, "k", "v2")
	if !errors.Is(err, fastreg.ErrTimeout) {
		t.Fatalf("Put against dead fleet = %v, want ErrTimeout", err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("returned after %v — before the deadline", d)
	}
}
