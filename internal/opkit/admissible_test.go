package opkit

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fastreg/internal/proto"
	"fastreg/internal/types"
)

// ack builds a FastReadAck carrying v with the given updated clients.
func ack(v types.Value, updated ...types.ProcID) proto.FastReadAck {
	return proto.FastReadAck{Vector: []proto.VectorEntry{{Val: v, Updated: updated}}}
}

func TestAdmissibleDegree1NeedsFullQuorum(t *testing.T) {
	cfg := AdmissibleConfig{S: 5, T: 1, MaxDegree: 3}
	v := val(1, 1, "v")
	r1 := types.Reader(1)
	// Degree 1 needs S - t = 4 messages carrying v with a shared client.
	msgs := []proto.FastReadAck{ack(v, r1), ack(v, r1), ack(v, r1), ack(v, r1)}
	if !Admissible(v, msgs, 1, cfg) {
		t.Error("4 matching messages with shared client must be admissible at degree 1")
	}
	if Admissible(v, msgs[:3], 1, cfg) {
		t.Error("3 messages cannot meet the S-t=4 quorum")
	}
}

func TestAdmissibleDegree2SmallerQuorumBiggerIntersection(t *testing.T) {
	cfg := AdmissibleConfig{S: 5, T: 1, MaxDegree: 3}
	v := val(1, 1, "v")
	w1, r1 := types.Writer(1), types.Reader(1)
	// Degree 2 needs S - 2t = 3 messages whose updated sets share 2 clients.
	msgs := []proto.FastReadAck{ack(v, w1, r1), ack(v, w1, r1), ack(v, w1, r1)}
	if !Admissible(v, msgs, 2, cfg) {
		t.Error("3 messages sharing {w1,r1} must be admissible at degree 2")
	}
	if Admissible(v, msgs, 1, cfg) {
		t.Error("3 messages cannot be admissible at degree 1 (needs 4)")
	}
	// Intersection of only one client cannot reach degree 2.
	single := []proto.FastReadAck{ack(v, w1), ack(v, w1), ack(v, w1)}
	if Admissible(v, single, 2, cfg) {
		t.Error("intersection {w1} has size 1, degree 2 must fail")
	}
}

func TestAdmissibleWitnessSubsetNotWholeSet(t *testing.T) {
	cfg := AdmissibleConfig{S: 5, T: 1, MaxDegree: 3}
	v := val(1, 1, "v")
	w1, r1, r2 := types.Writer(1), types.Reader(1), types.Reader(2)
	// Four messages carry v, but only three share {w1, r1}. The witness µ
	// must be chosen as a subset — the full set's intersection is just {w1}.
	msgs := []proto.FastReadAck{
		ack(v, w1, r1), ack(v, w1, r1), ack(v, w1, r1), ack(v, w1, r2),
	}
	if !Admissible(v, msgs, 2, cfg) {
		t.Error("a 3-message sub-quorum sharing {w1,r1} exists; degree 2 must hold")
	}
}

func TestAdmissibleValueAbsent(t *testing.T) {
	cfg := AdmissibleConfig{S: 3, T: 1, MaxDegree: 2}
	v := val(1, 1, "v")
	other := val(2, 2, "o")
	msgs := []proto.FastReadAck{ack(other, types.Writer(2)), ack(other, types.Writer(2))}
	if Admissible(v, msgs, 1, cfg) {
		t.Error("value absent from all messages cannot be admissible")
	}
}

func TestAdmissibleNonPositiveQuorumIsNotVacuous(t *testing.T) {
	// S=3, t=1, a=3 gives S-at=0; the predicate must still require a real
	// witness rather than an empty µ.
	cfg := AdmissibleConfig{S: 3, T: 1, MaxDegree: 4}
	v := val(1, 1, "v")
	if Admissible(v, nil, 3, cfg) {
		t.Error("no messages: nothing can be admissible")
	}
	msgs := []proto.FastReadAck{ack(v, types.Writer(1), types.Reader(1), types.Reader(2))}
	if !Admissible(v, msgs, 3, cfg) {
		t.Error("one message with 3 shared clients satisfies the clamped quorum of 1")
	}
}

func TestSelectAdmissiblePicksLargest(t *testing.T) {
	cfg := AdmissibleConfig{S: 5, T: 1, MaxDegree: 3}
	lo, hi := val(1, 1, "old"), val(2, 2, "new")
	w1, w2, r1 := types.Writer(1), types.Writer(2), types.Reader(1)
	mk := func(vals ...proto.VectorEntry) proto.FastReadAck { return proto.FastReadAck{Vector: vals} }
	// Both values admissible; hi must win.
	msgs := []proto.FastReadAck{
		mk(proto.VectorEntry{Val: lo, Updated: []types.ProcID{w1, r1}}, proto.VectorEntry{Val: hi, Updated: []types.ProcID{w2, r1}}),
		mk(proto.VectorEntry{Val: lo, Updated: []types.ProcID{w1, r1}}, proto.VectorEntry{Val: hi, Updated: []types.ProcID{w2, r1}}),
		mk(proto.VectorEntry{Val: lo, Updated: []types.ProcID{w1, r1}}, proto.VectorEntry{Val: hi, Updated: []types.ProcID{w2, r1}}),
		mk(proto.VectorEntry{Val: lo, Updated: []types.ProcID{w1, r1}}),
	}
	got, err := SelectAdmissible(msgs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != hi {
		t.Errorf("SelectAdmissible = %v, want %v", got, hi)
	}
	// Remove hi's support below every quorum: lo must be selected instead.
	msgs2 := []proto.FastReadAck{
		mk(proto.VectorEntry{Val: lo, Updated: []types.ProcID{w1, r1}}, proto.VectorEntry{Val: hi, Updated: []types.ProcID{w2}}),
		mk(proto.VectorEntry{Val: lo, Updated: []types.ProcID{w1, r1}}, proto.VectorEntry{Val: hi, Updated: []types.ProcID{w2}}),
		mk(proto.VectorEntry{Val: lo, Updated: []types.ProcID{w1, r1}}),
		mk(proto.VectorEntry{Val: lo, Updated: []types.ProcID{w1, r1}}),
	}
	got2, err := SelectAdmissible(msgs2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got2 != lo {
		t.Errorf("SelectAdmissible = %v, want %v (hi has no witness)", got2, lo)
	}
}

func TestSelectAdmissibleNoCandidate(t *testing.T) {
	cfg := AdmissibleConfig{S: 5, T: 1, MaxDegree: 3}
	v := val(1, 1, "v")
	// One lone message carrying v with an empty updated set: no witness at
	// any degree.
	msgs := []proto.FastReadAck{ack(v)}
	if _, err := SelectAdmissible(msgs, cfg); err == nil {
		t.Error("expected an error when nothing is admissible")
	}
}

func randAckSet(r *rand.Rand, v types.Value) []proto.FastReadAck {
	n := 1 + r.Intn(6)
	msgs := make([]proto.FastReadAck, 0, n)
	for i := 0; i < n; i++ {
		if r.Intn(4) == 0 {
			msgs = append(msgs, proto.FastReadAck{}) // message without v
			continue
		}
		var ups []types.ProcID
		for c := 1; c <= 4; c++ {
			if r.Intn(2) == 0 {
				ups = append(ups, types.Reader(c))
			}
		}
		msgs = append(msgs, ack(v, ups...))
	}
	return msgs
}

// Property: the greedy check never accepts what the exact check rejects
// (greedy witnesses are genuine witnesses).
func TestGreedyImpliesExactProperty(t *testing.T) {
	v := val(1, 1, "v")
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := AdmissibleConfig{S: 3 + r.Intn(5), T: 1, MaxDegree: 3}
		msgs := randAckSet(r, v)
		for a := 1; a <= cfg.MaxDegree; a++ {
			if AdmissibleGreedy(v, msgs, a, cfg) && !Admissible(v, msgs, a, cfg) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: admissibility is monotone in the message set — adding a message
// carrying v with a superset updated set never breaks it.
func TestAdmissibleMonotoneProperty(t *testing.T) {
	v := val(1, 1, "v")
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := AdmissibleConfig{S: 3 + r.Intn(5), T: 1, MaxDegree: 3}
		msgs := randAckSet(r, v)
		a := 1 + r.Intn(cfg.MaxDegree)
		before := Admissible(v, msgs, a, cfg)
		// Add a maximally-supportive message.
		extra := ack(v, types.Reader(1), types.Reader(2), types.Reader(3), types.Reader(4))
		after := Admissible(v, append(msgs, extra), a, cfg)
		if before && !after {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Exhaustive cross-check of exact admissibility against a brute-force
// reference that enumerates all message subsets, on small instances.
func TestAdmissibleAgainstBruteForce(t *testing.T) {
	v := val(1, 1, "v")
	bruteForce := func(msgs []proto.FastReadAck, a int, cfg AdmissibleConfig) bool {
		need := cfg.S - a*cfg.T
		if need < 1 {
			need = 1
		}
		n := len(msgs)
		for mask := 1; mask < 1<<n; mask++ {
			var sel []proto.FastReadAck
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					sel = append(sel, msgs[i])
				}
			}
			if len(sel) < need {
				continue
			}
			// All must carry v; intersect updated sets.
			okAll := true
			inter := map[types.ProcID]int{}
			for _, m := range sel {
				ent, ok := m.Entry(v)
				if !ok {
					okAll = false
					break
				}
				for _, p := range ent.Updated {
					inter[p]++
				}
			}
			if !okAll {
				continue
			}
			common := 0
			for _, c := range inter {
				if c == len(sel) {
					common++
				}
			}
			if common >= a {
				return true
			}
		}
		return false
	}
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		cfg := AdmissibleConfig{S: 3 + r.Intn(4), T: 1, MaxDegree: 3}
		msgs := randAckSet(r, v)
		for a := 1; a <= cfg.MaxDegree; a++ {
			want := bruteForce(msgs, a, cfg)
			got := Admissible(v, msgs, a, cfg)
			if got != want {
				t.Fatalf("trial %d a=%d cfg=%+v: exact=%v brute=%v msgs=%v", trial, a, cfg, got, want, msgs)
			}
		}
	}
}
