// Package opkit provides the building blocks the protocol packages compose:
// the two server state machines of the literature (max-value store and
// valuevector store) and the client-side round state machines (two-phase
// writes, read-with-write-back, and the fast read of Algorithm 1).
//
// Keeping these in one place makes each protocol package a thin, auditable
// composition and guarantees that, e.g., the W2R1 and W1R1 readers share the
// exact same admissibility machinery, as they do in the paper (the W2R1
// algorithm is derived from the W1R1 single-writer algorithm of Dutta et
// al.).
package opkit

import (
	"sort"

	"fastreg/internal/proto"
	"fastreg/internal/types"
)

// StoreServer is the classic ABD/LS97 server: it stores the maximal value
// received so far, answers Query with it, and monotonically merges Update.
type StoreServer struct {
	id  types.ProcID
	cur types.Value
}

// NewStoreServer creates a StoreServer holding the initial value (0, ⊥).
func NewStoreServer(id types.ProcID) *StoreServer {
	return &StoreServer{id: id, cur: types.InitialValue()}
}

// ID implements register.ServerLogic.
func (s *StoreServer) ID() types.ProcID { return s.id }

// CurrentValue implements register.ServerLogic.
func (s *StoreServer) CurrentValue() types.Value { return s.cur }

// Handle implements register.ServerLogic.
func (s *StoreServer) Handle(_ types.ProcID, m proto.Message) proto.Message {
	switch msg := m.(type) {
	case proto.Query:
		return proto.QueryAck{Val: s.cur}
	case proto.Update:
		if s.cur.Less(msg.Val) {
			s.cur = msg.Val
		}
		return proto.UpdateAck{}
	default:
		// Unknown request: a real server would drop it; replying nil models
		// that (the client's quorum logic tolerates it like a slow server).
		return nil
	}
}

// VectorServer is the Algorithm 2 server. Besides the maximal value vali it
// keeps a valuevector: for every value ever received, the set of clients
// known to have updated (proposed or relayed) it. FastRead requests both
// merge the reader's valQueue and return the whole vector.
type VectorServer struct {
	id     types.ProcID
	cur    types.Value
	vector map[types.Value]map[types.ProcID]bool
	order  []types.Value // insertion order for deterministic replies
}

// NewVectorServer creates a VectorServer initialized per Algorithm 2 lines
// 3–6: vali = (0,⊥) with an empty updated set.
func NewVectorServer(id types.ProcID) *VectorServer {
	s := &VectorServer{
		id:     id,
		cur:    types.InitialValue(),
		vector: make(map[types.Value]map[types.ProcID]bool),
	}
	s.ensure(types.InitialValue())
	return s
}

// ID implements register.ServerLogic.
func (s *VectorServer) ID() types.ProcID { return s.id }

// CurrentValue implements register.ServerLogic.
func (s *VectorServer) CurrentValue() types.Value { return s.cur }

func (s *VectorServer) ensure(v types.Value) map[types.ProcID]bool {
	set, ok := s.vector[v]
	if !ok {
		set = make(map[types.ProcID]bool)
		s.vector[v] = set
		s.order = append(s.order, v)
	}
	return set
}

// update is Algorithm 2's update(val, c) procedure: record that client c
// holds val, and raise vali if val is newer.
func (s *VectorServer) update(val types.Value, c types.ProcID) {
	set := s.ensure(val)
	set[c] = true
	if s.cur.Less(val) {
		s.cur = val
	}
}

// Handle implements register.ServerLogic.
//
//   - Query       → QueryAck{vali}           (writer's first round)
//   - Update      → update(val, c); WRITEACK (writer's second round)
//   - FastRead    → update every valQueue entry for the reader, then reply
//     with the full valuevector (READACK)
func (s *VectorServer) Handle(from types.ProcID, m proto.Message) proto.Message {
	switch msg := m.(type) {
	case proto.Query:
		return proto.QueryAck{Val: s.cur}
	case proto.Update:
		s.update(msg.Val, from)
		return proto.UpdateAck{}
	case proto.FastRead:
		for _, v := range msg.ValQueue {
			s.update(v, from)
		}
		// The reader witnesses every value in the reply, so it joins every
		// updated set before the reply is built. Lemma 8's proof relies on
		// this: "every server which replies to r2 in rd2 adds r2 to its
		// updated set before replying". (With a single stored value, as in
		// Dutta et al., this is the original algorithm's behaviour; the
		// valuevector generalizes it per value.)
		for _, set := range s.vector {
			set[from] = true
		}
		return proto.FastReadAck{Vector: s.snapshotVector()}
	default:
		return nil
	}
}

// snapshotVector deep-copies the valuevector in insertion order with
// normalized updated sets so replies are deterministic and unaliased.
func (s *VectorServer) snapshotVector() []proto.VectorEntry {
	out := make([]proto.VectorEntry, 0, len(s.order))
	for _, v := range s.order {
		set := s.vector[v]
		ids := make([]types.ProcID, 0, len(set))
		for p := range set {
			ids = append(ids, p)
		}
		ids = proto.NormalizeUpdated(ids)
		out = append(out, proto.VectorEntry{Val: v, Updated: ids})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Val.Less(out[j].Val) })
	return out
}

// VectorSnapshot exposes the vector for tests and the crucial-info analysis.
func (s *VectorServer) VectorSnapshot() []proto.VectorEntry { return s.snapshotVector() }
