package opkit

import (
	"testing"

	"fastreg/internal/proto"
	"fastreg/internal/register"
	"fastreg/internal/types"
)

func storeServers(n int) []register.ServerLogic {
	out := make([]register.ServerLogic, n)
	for i := range out {
		out[i] = NewStoreServer(types.Server(i + 1))
	}
	return out
}

func vectorServers(n int) []register.ServerLogic {
	out := make([]register.ServerLogic, n)
	for i := range out {
		out[i] = NewVectorServer(types.Server(i + 1))
	}
	return out
}

func TestQueryThenUpdateWriteBasics(t *testing.T) {
	servers := storeServers(3)
	op := NewQueryThenUpdateWrite(types.Writer(1), "a", 2)
	if op.Kind() != types.OpWrite || op.Client() != types.Writer(1) {
		t.Fatal("op metadata wrong")
	}
	if op.Arg().Data != "a" {
		t.Fatalf("Arg = %v", op.Arg())
	}
	rounds, res, err := register.CountRounds(op, servers)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 2 {
		t.Errorf("write took %d rounds, want 2", rounds)
	}
	want := types.Value{Tag: types.Tag{TS: 1, WID: types.Writer(1)}, Data: "a"}
	if res != want {
		t.Errorf("result = %v, want %v", res, want)
	}
	for _, s := range servers {
		if s.CurrentValue() != want {
			t.Errorf("server %v holds %v", s.ID(), s.CurrentValue())
		}
	}
}

func TestSequentialWritersGetIncreasingTags(t *testing.T) {
	servers := storeServers(3)
	_, v1, err := register.CountRounds(NewQueryThenUpdateWrite(types.Writer(2), "x", 2), servers)
	if err != nil {
		t.Fatal(err)
	}
	_, v2, err := register.CountRounds(NewQueryThenUpdateWrite(types.Writer(1), "y", 2), servers)
	if err != nil {
		t.Fatal(err)
	}
	if !v1.Less(v2) {
		t.Errorf("sequential writes misordered: %v then %v", v1, v2)
	}
	if v2.Tag.TS != v1.Tag.TS+1 {
		t.Errorf("second write ts = %d, want %d", v2.Tag.TS, v1.Tag.TS+1)
	}
}

func TestDirectWriteOneRound(t *testing.T) {
	servers := storeServers(3)
	v := val(1, 1, "fast")
	op := NewDirectWrite(types.Writer(1), v, 2)
	if op.Arg() != v {
		t.Fatalf("Arg = %v", op.Arg())
	}
	rounds, res, err := register.CountRounds(op, servers)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 1 {
		t.Errorf("fast write took %d rounds, want 1", rounds)
	}
	if res != v {
		t.Errorf("result = %v", res)
	}
}

func TestReadWriteBack(t *testing.T) {
	servers := storeServers(3)
	v := val(5, 1, "v")
	// Only one server knows the value; the read must find it and propagate.
	servers[0].Handle(types.Writer(1), proto.Update{Val: v})
	op := NewReadWriteBack(types.Reader(1), 3)
	if op.Kind() != types.OpRead || !op.Arg().IsInitial() {
		t.Fatal("op metadata wrong")
	}
	rounds, res, err := register.CountRounds(op, servers)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 2 {
		t.Errorf("read took %d rounds, want 2", rounds)
	}
	if res != v {
		t.Errorf("read returned %v, want %v", res, v)
	}
	for _, s := range servers {
		if s.CurrentValue() != v {
			t.Errorf("write-back did not reach %v (holds %v)", s.ID(), s.CurrentValue())
		}
	}
}

func TestReadNoWriteBackOneRound(t *testing.T) {
	servers := storeServers(3)
	v := val(5, 1, "v")
	servers[0].Handle(types.Writer(1), proto.Update{Val: v})
	op := NewReadNoWriteBack(types.Reader(1), 3)
	rounds, res, err := register.CountRounds(op, servers)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 1 || res != v {
		t.Errorf("rounds=%d res=%v", rounds, res)
	}
	// No propagation: the other servers still hold the initial value.
	if !servers[1].CurrentValue().IsInitial() {
		t.Error("no-write-back read must not propagate")
	}
}

func TestFastReadReturnsWrittenValue(t *testing.T) {
	servers := vectorServers(5)
	cfg := AdmissibleConfig{S: 5, T: 1, MaxDegree: 3} // R=2: 2 < 5/1-2 boundary is 2<3 ✓
	_, v, err := register.CountRounds(NewQueryThenUpdateWrite(types.Writer(1), "hello", 4), servers)
	if err != nil {
		t.Fatal(err)
	}
	state := NewReaderState()
	op := NewFastReadOp(types.Reader(1), state, cfg, 4)
	if op.Kind() != types.OpRead {
		t.Fatal("kind wrong")
	}
	rounds, res, err := register.CountRounds(op, servers)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 1 {
		t.Errorf("fast read took %d rounds, want 1", rounds)
	}
	if res != v {
		t.Errorf("fast read returned %v, want %v", res, v)
	}
	// The reader's valQueue must now contain the value (line 22).
	found := false
	for _, q := range state.Queue() {
		if q == v {
			found = true
		}
	}
	if !found {
		t.Error("valQueue missing the read value")
	}
}

func TestFastReadSequenceMonotone(t *testing.T) {
	servers := vectorServers(5)
	cfg := AdmissibleConfig{S: 5, T: 1, MaxDegree: 3}
	state := NewReaderState()
	// Initial read returns the initial value.
	_, r0, err := register.CountRounds(NewFastReadOp(types.Reader(1), state, cfg, 4), servers)
	if err != nil {
		t.Fatal(err)
	}
	if !r0.IsInitial() {
		t.Errorf("first read = %v, want initial", r0)
	}
	var prev types.Value
	for i := 1; i <= 5; i++ {
		_, w, err := register.CountRounds(NewQueryThenUpdateWrite(types.Writer(1+i%2), "d", 4), servers)
		if err != nil {
			t.Fatal(err)
		}
		_, r, err := register.CountRounds(NewFastReadOp(types.Reader(1), state, cfg, 4), servers)
		if err != nil {
			t.Fatal(err)
		}
		if r != w {
			t.Fatalf("iteration %d: read %v after write %v", i, r, w)
		}
		if r.Less(prev) {
			t.Fatalf("reads went backwards: %v then %v", prev, r)
		}
		prev = r
	}
}

func TestReaderStateQueueSortedDeduped(t *testing.T) {
	s := NewReaderState()
	v1, v2 := val(2, 1, "b"), val(1, 1, "a")
	s.Merge(v1, v2, v1)
	q := s.Queue()
	if len(q) != 3 { // initial + two
		t.Fatalf("queue len = %d, want 3", len(q))
	}
	for i := 1; i < len(q); i++ {
		if q[i].Less(q[i-1]) {
			t.Fatal("queue not sorted")
		}
	}
}

func TestWriteBadReplyKinds(t *testing.T) {
	op := NewQueryThenUpdateWrite(types.Writer(1), "a", 1)
	op.Begin()
	if _, _, _, err := op.Next([]register.Reply{{From: types.Server(1), Msg: proto.UpdateAck{}}}); err == nil {
		t.Error("query phase accepted an UpdateAck")
	}
	op2 := NewQueryThenUpdateWrite(types.Writer(1), "a", 1)
	op2.Begin()
	next, _, _, err := op2.Next([]register.Reply{{From: types.Server(1), Msg: proto.QueryAck{Val: types.InitialValue()}}})
	if err != nil || next == nil {
		t.Fatalf("phase 1 failed: %v", err)
	}
	if _, _, _, err := op2.Next([]register.Reply{{From: types.Server(1), Msg: proto.QueryAck{}}}); err == nil {
		t.Error("update phase accepted a QueryAck")
	}
}

func TestReadBadReplyKinds(t *testing.T) {
	op := NewReadWriteBack(types.Reader(1), 1)
	op.Begin()
	if _, _, _, err := op.Next([]register.Reply{{From: types.Server(1), Msg: proto.UpdateAck{}}}); err == nil {
		t.Error("read query accepted an UpdateAck")
	}
	fr := NewFastReadOp(types.Reader(1), NewReaderState(), AdmissibleConfig{S: 1, T: 0, MaxDegree: 2}, 1)
	fr.Begin()
	if _, _, _, err := fr.Next([]register.Reply{{From: types.Server(1), Msg: proto.QueryAck{}}}); err == nil {
		t.Error("fast read accepted a QueryAck")
	}
	dw := NewDirectWrite(types.Writer(1), val(1, 1, "x"), 1)
	dw.Begin()
	if _, _, _, err := dw.Next([]register.Reply{{From: types.Server(1), Msg: proto.QueryAck{}}}); err == nil {
		t.Error("direct write accepted a QueryAck")
	}
	nb := NewReadNoWriteBack(types.Reader(1), 1)
	nb.Begin()
	if _, _, _, err := nb.Next([]register.Reply{{From: types.Server(1), Msg: proto.UpdateAck{}}}); err == nil {
		t.Error("no-write-back read accepted an UpdateAck")
	}
}

func TestWriteBackBadSecondRound(t *testing.T) {
	servers := storeServers(1)
	op := NewReadWriteBack(types.Reader(1), 1)
	r := op.Begin()
	reply := servers[0].Handle(op.Client(), r.Payload)
	next, _, _, err := op.Next([]register.Reply{{From: types.Server(1), Msg: reply}})
	if err != nil || next == nil {
		t.Fatalf("phase 1: %v", err)
	}
	if _, _, _, err := op.Next([]register.Reply{{From: types.Server(1), Msg: proto.QueryAck{}}}); err == nil {
		t.Error("write-back accepted a QueryAck")
	}
}
