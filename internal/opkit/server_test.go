package opkit

import (
	"testing"

	"fastreg/internal/proto"
	"fastreg/internal/types"
)

func val(ts int64, w int, data string) types.Value {
	return types.Value{Tag: types.Tag{TS: ts, WID: types.Writer(w)}, Data: data}
}

func TestStoreServerInitial(t *testing.T) {
	s := NewStoreServer(types.Server(1))
	if s.ID() != types.Server(1) {
		t.Errorf("ID = %v", s.ID())
	}
	ack := s.Handle(types.Reader(1), proto.Query{})
	qa, ok := ack.(proto.QueryAck)
	if !ok || !qa.Val.IsInitial() {
		t.Errorf("initial query ack = %v", ack)
	}
}

func TestStoreServerUpdateMonotone(t *testing.T) {
	s := NewStoreServer(types.Server(1))
	v1 := val(2, 1, "new")
	if _, ok := s.Handle(types.Writer(1), proto.Update{Val: v1}).(proto.UpdateAck); !ok {
		t.Fatal("update not acked")
	}
	if s.CurrentValue() != v1 {
		t.Fatalf("cur = %v, want %v", s.CurrentValue(), v1)
	}
	// A stale update must be acked but ignored.
	stale := val(1, 2, "old")
	if _, ok := s.Handle(types.Writer(2), proto.Update{Val: stale}).(proto.UpdateAck); !ok {
		t.Fatal("stale update not acked")
	}
	if s.CurrentValue() != v1 {
		t.Fatalf("stale update changed cur to %v", s.CurrentValue())
	}
	// Equal ts, higher writer ID wins.
	tie := val(2, 2, "tie")
	s.Handle(types.Writer(2), proto.Update{Val: tie})
	if s.CurrentValue() != tie {
		t.Fatalf("cur = %v, want %v", s.CurrentValue(), tie)
	}
}

func TestStoreServerUnknownMessage(t *testing.T) {
	s := NewStoreServer(types.Server(1))
	if got := s.Handle(types.Reader(1), proto.FastRead{}); got != nil {
		t.Errorf("unknown message reply = %v, want nil", got)
	}
}

func TestVectorServerInitial(t *testing.T) {
	s := NewVectorServer(types.Server(2))
	if s.ID() != types.Server(2) {
		t.Errorf("ID = %v", s.ID())
	}
	if !s.CurrentValue().IsInitial() {
		t.Errorf("cur = %v", s.CurrentValue())
	}
	vec := s.VectorSnapshot()
	if len(vec) != 1 || !vec[0].Val.IsInitial() || len(vec[0].Updated) != 0 {
		t.Errorf("initial vector = %v", vec)
	}
}

func TestVectorServerWritePath(t *testing.T) {
	s := NewVectorServer(types.Server(1))
	// Writer's query round.
	if qa, ok := s.Handle(types.Writer(1), proto.Query{}).(proto.QueryAck); !ok || !qa.Val.IsInitial() {
		t.Fatalf("query ack = %v", qa)
	}
	// Writer's update round.
	v := val(1, 1, "a")
	if _, ok := s.Handle(types.Writer(1), proto.Update{Val: v}).(proto.UpdateAck); !ok {
		t.Fatal("update not acked")
	}
	if s.CurrentValue() != v {
		t.Fatalf("cur = %v", s.CurrentValue())
	}
	vec := s.VectorSnapshot()
	if len(vec) != 2 {
		t.Fatalf("vector size = %d, want 2", len(vec))
	}
	// Entries are sorted by tag: initial first, then v with updated {w1}.
	if vec[1].Val != v || len(vec[1].Updated) != 1 || vec[1].Updated[0] != types.Writer(1) {
		t.Errorf("vector entry = %v", vec[1])
	}
}

func TestVectorServerFastReadMergesQueueAndRecordsReader(t *testing.T) {
	s := NewVectorServer(types.Server(1))
	v := val(3, 2, "x")
	// Reader disseminates v via its valQueue; the server must learn it.
	ackMsg := s.Handle(types.Reader(1), proto.FastRead{ValQueue: []types.Value{types.InitialValue(), v}})
	ack, ok := ackMsg.(proto.FastReadAck)
	if !ok {
		t.Fatalf("reply = %T", ackMsg)
	}
	if s.CurrentValue() != v {
		t.Fatalf("cur = %v, want %v (queue merge must raise vali)", s.CurrentValue(), v)
	}
	ent, ok := ack.Entry(v)
	if !ok {
		t.Fatal("reply missing disseminated value")
	}
	if !ent.HasUpdated(types.Reader(1)) {
		t.Error("reader not recorded on disseminated value")
	}
	// The reader must also be recorded on values it merely witnesses.
	ini, ok := ack.Entry(types.InitialValue())
	if !ok || !ini.HasUpdated(types.Reader(1)) {
		t.Error("reader not recorded on witnessed initial value")
	}
}

func TestVectorServerReaderJoinsAllEntriesOnReply(t *testing.T) {
	s := NewVectorServer(types.Server(1))
	v1, v2 := val(1, 1, "a"), val(2, 2, "b")
	s.Handle(types.Writer(1), proto.Update{Val: v1})
	s.Handle(types.Writer(2), proto.Update{Val: v2})
	ack := s.Handle(types.Reader(2), proto.FastRead{ValQueue: nil}).(proto.FastReadAck)
	for _, want := range []types.Value{v1, v2} {
		ent, ok := ack.Entry(want)
		if !ok {
			t.Fatalf("missing entry for %v", want)
		}
		if !ent.HasUpdated(types.Reader(2)) {
			t.Errorf("reader not in updated set of %v (Lemma 8 requirement)", want)
		}
	}
}

func TestVectorServerRepeatedUpdateAccumulates(t *testing.T) {
	s := NewVectorServer(types.Server(1))
	v := val(1, 1, "a")
	s.Handle(types.Writer(1), proto.Update{Val: v})
	s.Handle(types.Reader(1), proto.FastRead{ValQueue: []types.Value{v}})
	s.Handle(types.Reader(2), proto.FastRead{ValQueue: []types.Value{v}})
	ent, _ := proto.FastReadAck{Vector: s.VectorSnapshot()}.Entry(v)
	for _, p := range []types.ProcID{types.Writer(1), types.Reader(1), types.Reader(2)} {
		if !ent.HasUpdated(p) {
			t.Errorf("updated set missing %v: %v", p, ent)
		}
	}
}

func TestVectorServerUnknownMessage(t *testing.T) {
	s := NewVectorServer(types.Server(1))
	if got := s.Handle(types.Reader(1), proto.FastReadAck{}); got != nil {
		t.Errorf("unknown message reply = %v, want nil", got)
	}
}

func TestVectorServerSnapshotIsUnaliased(t *testing.T) {
	s := NewVectorServer(types.Server(1))
	v := val(1, 1, "a")
	s.Handle(types.Writer(1), proto.Update{Val: v})
	snap := s.VectorSnapshot()
	for i := range snap {
		for j := range snap[i].Updated {
			snap[i].Updated[j] = types.Reader(99)
		}
	}
	ent, _ := proto.FastReadAck{Vector: s.VectorSnapshot()}.Entry(v)
	if ent.HasUpdated(types.Reader(99)) {
		t.Error("mutating a snapshot leaked into server state")
	}
}
