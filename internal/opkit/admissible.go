package opkit

import (
	"fmt"
	"sort"

	"fastreg/internal/proto"
	"fastreg/internal/register"
	"fastreg/internal/types"
)

// AdmissibleConfig carries the cluster parameters the admissibility test
// needs: S, t, and the maximum degree R+1.
type AdmissibleConfig struct {
	S         int
	T         int
	MaxDegree int // R + 1
	// Greedy selects the approximate witness search (ablation only).
	Greedy bool
}

// Admissible evaluates the predicate of Algorithm 1, line 32:
//
//	admissible(v, Msg, a) ≡ ∃µ ⊆ Msg ∀m ∈ µ:
//	    (m has v) ∧ (|µ| ≥ S − a·t) ∧ (|∩_{m'∈µ} m'.updated| ≥ a)
//
// The check is exact. It uses the observation that such a µ exists iff
// there is a set C of a clients with C ⊆ m.updated(v) for at least S − a·t
// of the messages containing v: given µ, any a members of its common
// intersection form C; given C, the messages containing v whose updated set
// includes C form µ. Client universes are small (≤ W + R + 1), so
// enumerating a-subsets of the candidate clients is cheap and exact —
// DESIGN.md §5 benchmarks this against the greedy approximation below.
func Admissible(v types.Value, msgs []proto.FastReadAck, a int, cfg AdmissibleConfig) bool {
	need := cfg.S - a*cfg.T
	if need < 1 {
		// A non-positive quorum would make the predicate vacuous; the
		// algorithm never tests such degrees under its feasibility
		// condition, and treating them as satisfied would be unsound.
		need = 1
	}
	// Collect the updated sets of the messages that carry v.
	var sets []map[types.ProcID]bool
	counts := make(map[types.ProcID]int)
	for _, m := range msgs {
		ent, ok := m.Entry(v)
		if !ok {
			continue
		}
		set := make(map[types.ProcID]bool, len(ent.Updated))
		for _, p := range ent.Updated {
			set[p] = true
			counts[p]++
		}
		sets = append(sets, set)
	}
	if len(sets) < need {
		return false
	}
	// Candidate clients must appear in at least `need` of the sets.
	var cands []types.ProcID
	for p, n := range counts {
		if n >= need {
			cands = append(cands, p)
		}
	}
	if len(cands) < a {
		return false
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Less(cands[j]) })
	// Enumerate a-subsets of candidates; accept if one is contained in the
	// updated sets of at least `need` messages.
	chosen := make([]types.ProcID, 0, a)
	var dfs func(start int) bool
	dfs = func(start int) bool {
		if len(chosen) == a {
			n := 0
			for _, set := range sets {
				ok := true
				for _, c := range chosen {
					if !set[c] {
						ok = false
						break
					}
				}
				if ok {
					n++
				}
			}
			return n >= need
		}
		for i := start; i <= len(cands)-(a-len(chosen)); i++ {
			chosen = append(chosen, cands[i])
			if dfs(i + 1) {
				return true
			}
			chosen = chosen[:len(chosen)-1]
		}
		return false
	}
	return dfs(0)
}

// AdmissibleGreedy is the approximate variant used by the ablation
// benchmark: instead of enumerating client subsets it keeps the a clients
// with the highest message coverage and checks only that single candidate
// set. It can report false negatives; it must never report a false positive
// (the candidate it checks is a genuine witness).
func AdmissibleGreedy(v types.Value, msgs []proto.FastReadAck, a int, cfg AdmissibleConfig) bool {
	need := cfg.S - a*cfg.T
	if need < 1 {
		need = 1
	}
	var sets []map[types.ProcID]bool
	counts := make(map[types.ProcID]int)
	for _, m := range msgs {
		ent, ok := m.Entry(v)
		if !ok {
			continue
		}
		set := make(map[types.ProcID]bool, len(ent.Updated))
		for _, p := range ent.Updated {
			set[p] = true
			counts[p]++
		}
		sets = append(sets, set)
	}
	if len(sets) < need {
		return false
	}
	cands := make([]types.ProcID, 0, len(counts))
	for p, n := range counts {
		if n >= need {
			cands = append(cands, p)
		}
	}
	if len(cands) < a {
		return false
	}
	sort.Slice(cands, func(i, j int) bool {
		if counts[cands[i]] != counts[cands[j]] {
			return counts[cands[i]] > counts[cands[j]]
		}
		return cands[i].Less(cands[j])
	})
	chosen := cands[:a]
	n := 0
	for _, set := range sets {
		ok := true
		for _, c := range chosen {
			if !set[c] {
				ok = false
				break
			}
		}
		if ok {
			n++
		}
	}
	return n >= need
}

// SelectAdmissible runs the selection loop of Algorithm 1, lines 23–31:
// take the maximal value present in the replies; if it is admissible with
// some degree a ∈ [1, MaxDegree], return it; otherwise remove it from every
// message and retry with the next maximal value.
//
// Termination is Lemma 3: the maximal value of the valQueue the reader just
// disseminated is admissible with degree 1, because every replying server
// recorded the reader on it before replying.
func SelectAdmissible(msgs []proto.FastReadAck, cfg AdmissibleConfig) (types.Value, error) {
	// Gather candidate values in descending tag order.
	seen := make(map[types.Value]bool)
	var cands []types.Value
	for _, m := range msgs {
		for _, v := range m.Values() {
			if !seen[v] {
				seen[v] = true
				cands = append(cands, v)
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[j].Less(cands[i]) })
	test := Admissible
	if cfg.Greedy {
		test = AdmissibleGreedy
	}
	for _, v := range cands {
		for a := 1; a <= cfg.MaxDegree; a++ {
			if test(v, msgs, a, cfg) {
				return v, nil
			}
		}
	}
	return types.Value{}, fmt.Errorf("%w: no admissible value among %d candidates", register.ErrProtocol, len(cands))
}
