package opkit

import (
	"fmt"
	"sort"

	"fastreg/internal/proto"
	"fastreg/internal/register"
	"fastreg/internal/types"
)

// QueryThenUpdateWrite is the two-round multi-writer write of LS97 and of
// Algorithm 1 (lines 5–13): round 1 queries all servers for the maximal
// timestamp; round 2 updates all servers with (maxTS+1, wid).
type QueryThenUpdateWrite struct {
	client types.ProcID
	data   string
	need   int
	phase  int
	val    types.Value
}

// NewQueryThenUpdateWrite builds the write operation for the given writer.
// need is the per-round reply quorum (S − t).
func NewQueryThenUpdateWrite(client types.ProcID, data string, need int) *QueryThenUpdateWrite {
	return &QueryThenUpdateWrite{client: client, data: data, need: need}
}

// Client implements register.Operation.
func (w *QueryThenUpdateWrite) Client() types.ProcID { return w.client }

// Kind implements register.Operation.
func (w *QueryThenUpdateWrite) Kind() types.OpKind { return types.OpWrite }

// Arg implements register.Operation. The tag is only known after round 1;
// until then the argument is reported untagged. History recorders re-query
// Arg for pending writes so the checker can match reads of an in-flight
// write's value.
func (w *QueryThenUpdateWrite) Arg() types.Value {
	if w.val != (types.Value{}) {
		return w.val
	}
	return types.Value{Data: w.data}
}

// Begin implements register.Operation.
func (w *QueryThenUpdateWrite) Begin() register.Round {
	w.phase = 1
	return register.Round{Payload: proto.Query{}, Need: w.need}
}

// Next implements register.Operation.
func (w *QueryThenUpdateWrite) Next(replies []register.Reply) (*register.Round, types.Value, bool, error) {
	switch w.phase {
	case 1:
		var maxTS int64
		for _, r := range replies {
			ack, ok := r.Msg.(proto.QueryAck)
			if !ok {
				return nil, types.Value{}, false, register.BadReply("write query", r.Msg)
			}
			if ack.Val.Tag.TS > maxTS {
				maxTS = ack.Val.Tag.TS
			}
		}
		w.val = types.Value{Tag: types.Tag{TS: maxTS + 1, WID: w.client}, Data: w.data}
		w.phase = 2
		return &register.Round{Payload: proto.Update{Val: w.val}, Need: w.need}, types.Value{}, false, nil
	case 2:
		for _, r := range replies {
			if _, ok := r.Msg.(proto.UpdateAck); !ok {
				return nil, types.Value{}, false, register.BadReply("write update", r.Msg)
			}
		}
		return nil, w.val, true, nil
	default:
		return nil, types.Value{}, false, fmt.Errorf("%w: write in phase %d", register.ErrProtocol, w.phase)
	}
}

// DirectWrite is a one-round ("fast") write: the value, tag included, is
// fixed before the round starts. It is the write of ABD in the single-writer
// case — and of the naive fast-write protocols whose non-atomicity the
// impossibility machinery exhibits in the multi-writer case.
type DirectWrite struct {
	client types.ProcID
	val    types.Value
	need   int
}

// NewDirectWrite builds the one-round write.
func NewDirectWrite(client types.ProcID, val types.Value, need int) *DirectWrite {
	return &DirectWrite{client: client, val: val, need: need}
}

// Client implements register.Operation.
func (w *DirectWrite) Client() types.ProcID { return w.client }

// Kind implements register.Operation.
func (w *DirectWrite) Kind() types.OpKind { return types.OpWrite }

// Arg implements register.Operation.
func (w *DirectWrite) Arg() types.Value { return w.val }

// Begin implements register.Operation.
func (w *DirectWrite) Begin() register.Round {
	return register.Round{Payload: proto.Update{Val: w.val}, Need: w.need}
}

// Next implements register.Operation.
func (w *DirectWrite) Next(replies []register.Reply) (*register.Round, types.Value, bool, error) {
	for _, r := range replies {
		if _, ok := r.Msg.(proto.UpdateAck); !ok {
			return nil, types.Value{}, false, register.BadReply("fast write", r.Msg)
		}
	}
	return nil, w.val, true, nil
}

// ReadWriteBack is the two-round read of ABD/LS97: round 1 queries all
// servers and picks the maximal value; round 2 writes that value back so
// that later reads cannot observe an older one (the fix for the new-old
// inversion).
type ReadWriteBack struct {
	client types.ProcID
	need   int
	phase  int
	maxV   types.Value
}

// NewReadWriteBack builds the two-round read.
func NewReadWriteBack(client types.ProcID, need int) *ReadWriteBack {
	return &ReadWriteBack{client: client, need: need}
}

// Client implements register.Operation.
func (r *ReadWriteBack) Client() types.ProcID { return r.client }

// Kind implements register.Operation.
func (r *ReadWriteBack) Kind() types.OpKind { return types.OpRead }

// Arg implements register.Operation.
func (r *ReadWriteBack) Arg() types.Value { return types.Value{} }

// Begin implements register.Operation.
func (r *ReadWriteBack) Begin() register.Round {
	r.phase = 1
	return register.Round{Payload: proto.Query{}, Need: r.need}
}

// Next implements register.Operation.
func (r *ReadWriteBack) Next(replies []register.Reply) (*register.Round, types.Value, bool, error) {
	switch r.phase {
	case 1:
		r.maxV = types.InitialValue()
		for _, rep := range replies {
			ack, ok := rep.Msg.(proto.QueryAck)
			if !ok {
				return nil, types.Value{}, false, register.BadReply("read query", rep.Msg)
			}
			if r.maxV.Less(ack.Val) {
				r.maxV = ack.Val
			}
		}
		r.phase = 2
		return &register.Round{Payload: proto.Update{Val: r.maxV}, Need: r.need}, types.Value{}, false, nil
	case 2:
		for _, rep := range replies {
			if _, ok := rep.Msg.(proto.UpdateAck); !ok {
				return nil, types.Value{}, false, register.BadReply("read write-back", rep.Msg)
			}
		}
		return nil, r.maxV, true, nil
	default:
		return nil, types.Value{}, false, fmt.Errorf("%w: read in phase %d", register.ErrProtocol, r.phase)
	}
}

// ReadNoWriteBack is the ablation variant of ReadWriteBack with the second
// round removed: a one-round "read max" that is NOT atomic (it exhibits
// new-old inversions). It exists so the ablation benchmark can measure what
// the write-back buys (DESIGN.md §5).
type ReadNoWriteBack struct {
	client types.ProcID
	need   int
}

// NewReadNoWriteBack builds the one-round non-atomic read.
func NewReadNoWriteBack(client types.ProcID, need int) *ReadNoWriteBack {
	return &ReadNoWriteBack{client: client, need: need}
}

// Client implements register.Operation.
func (r *ReadNoWriteBack) Client() types.ProcID { return r.client }

// Kind implements register.Operation.
func (r *ReadNoWriteBack) Kind() types.OpKind { return types.OpRead }

// Arg implements register.Operation.
func (r *ReadNoWriteBack) Arg() types.Value { return types.Value{} }

// Begin implements register.Operation.
func (r *ReadNoWriteBack) Begin() register.Round {
	return register.Round{Payload: proto.Query{}, Need: r.need}
}

// Next implements register.Operation.
func (r *ReadNoWriteBack) Next(replies []register.Reply) (*register.Round, types.Value, bool, error) {
	maxV := types.InitialValue()
	for _, rep := range replies {
		ack, ok := rep.Msg.(proto.QueryAck)
		if !ok {
			return nil, types.Value{}, false, register.BadReply("read query", rep.Msg)
		}
		if maxV.Less(ack.Val) {
			maxV = ack.Val
		}
	}
	return nil, maxV, true, nil
}

// ReaderState is the persistent local state of an Algorithm 1 reader: its
// valQueue, initialized to {(0,⊥)} (line 17).
type ReaderState struct {
	queue map[types.Value]bool
}

// NewReaderState initializes the valQueue with the initial value.
func NewReaderState() *ReaderState {
	return &ReaderState{queue: map[types.Value]bool{types.InitialValue(): true}}
}

// Queue returns the valQueue in ascending tag order.
func (s *ReaderState) Queue() []types.Value {
	out := make([]types.Value, 0, len(s.queue))
	for v := range s.queue {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Merge adds values to the valQueue (line 22).
func (s *ReaderState) Merge(vs ...types.Value) {
	for _, v := range vs {
		s.queue[v] = true
	}
}

// FastReadOp is the one-round read of Algorithm 1 (lines 18–31), shared by
// the W2R1 protocol (the paper's contribution) and the W1R1 protocol it is
// derived from. One round both disseminates the reader's valQueue and
// collects every server's valuevector; the return value is the largest
// admissible value.
type FastReadOp struct {
	client types.ProcID
	state  *ReaderState
	cfg    AdmissibleConfig
	need   int
}

// NewFastReadOp builds the fast read for the given reader.
func NewFastReadOp(client types.ProcID, state *ReaderState, cfg AdmissibleConfig, need int) *FastReadOp {
	return &FastReadOp{client: client, state: state, cfg: cfg, need: need}
}

// Client implements register.Operation.
func (r *FastReadOp) Client() types.ProcID { return r.client }

// Kind implements register.Operation.
func (r *FastReadOp) Kind() types.OpKind { return types.OpRead }

// Arg implements register.Operation.
func (r *FastReadOp) Arg() types.Value { return types.Value{} }

// Begin implements register.Operation.
func (r *FastReadOp) Begin() register.Round {
	return register.Round{Payload: proto.FastRead{ValQueue: r.state.Queue()}, Need: r.need}
}

// Next implements register.Operation.
func (r *FastReadOp) Next(replies []register.Reply) (*register.Round, types.Value, bool, error) {
	acks := make([]proto.FastReadAck, 0, len(replies))
	for _, rep := range replies {
		ack, ok := rep.Msg.(proto.FastReadAck)
		if !ok {
			return nil, types.Value{}, false, register.BadReply("fast read", rep.Msg)
		}
		acks = append(acks, ack)
	}
	// Line 22: merge every received value into the valQueue.
	for _, ack := range acks {
		r.state.Merge(ack.Values()...)
	}
	val, err := SelectAdmissible(acks, r.cfg)
	if err != nil {
		return nil, types.Value{}, false, err
	}
	return nil, val, true, nil
}
