package transport

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"fastreg/internal/proto"
	"fastreg/internal/types"
)

func testEnvelope(i int) proto.Envelope {
	return proto.Envelope{
		From:    types.Writer(1),
		To:      types.Server(2),
		Key:     "k",
		OpID:    uint64(i),
		Round:   1,
		Payload: proto.Update{Val: types.Value{Tag: types.Tag{TS: int64(i), WID: types.Writer(1)}, Data: "v"}},
	}
}

// exerciseConn pushes n envelopes in both directions and checks order and
// content survive the trip.
func exerciseConn(t *testing.T, a, b Conn, n int) {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := a.Send(testEnvelope(i)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < n; i++ {
		env, err := b.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if want := testEnvelope(i); !reflect.DeepEqual(env, want) {
			t.Fatalf("recv %d: got %+v want %+v", i, env, want)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("send: %v", err)
	}
	// Replies flow the other way on the same connection.
	reply := proto.Envelope{From: types.Server(2), To: types.Writer(1), Key: "k", OpID: 7, Round: 1, IsReply: true, Payload: proto.UpdateAck{}}
	if err := b.Send(reply); err != nil {
		t.Fatalf("reply send: %v", err)
	}
	env, err := a.Recv()
	if err != nil {
		t.Fatalf("reply recv: %v", err)
	}
	if !reflect.DeepEqual(env, reply) {
		t.Fatalf("reply: got %+v want %+v", env, reply)
	}
}

func TestChanConnRoundTrip(t *testing.T) {
	net := NewChanNetwork()
	lis, err := net.Listen("s1")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		accepted <- c
	}()
	client, err := net.Dial("s1")
	if err != nil {
		t.Fatal(err)
	}
	server := <-accepted
	exerciseConn(t, client, server, 200)
	client.Close()
	if _, err := server.Recv(); err == nil {
		t.Fatal("Recv on closed connection should fail")
	}
}

func TestChanDialRefused(t *testing.T) {
	net := NewChanNetwork()
	if _, err := net.Dial("nobody"); err == nil {
		t.Fatal("dialing an unbound address should fail")
	}
	lis, _ := net.Listen("s1")
	lis.Close()
	if _, err := net.Dial("s1"); err == nil {
		t.Fatal("dialing a closed listener should fail")
	}
}

func TestTCPConnRoundTrip(t *testing.T) {
	lis, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	if strings.HasSuffix(lis.Addr(), ":0") {
		t.Fatalf("Addr %q did not resolve the port", lis.Addr())
	}
	accepted := make(chan Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		accepted <- c
	}()
	client, err := DialTCP(lis.Addr())
	if err != nil {
		t.Fatal(err)
	}
	server := <-accepted
	defer server.Close()
	defer client.Close()
	exerciseConn(t, client, server, 500)

	// A payload near MaxFrame crosses intact; one over it is rejected at
	// Send (the codec refuses to build the frame).
	big := testEnvelope(0)
	big.Payload = proto.Update{Val: types.Value{Data: strings.Repeat("x", 1<<19)}}
	if err := client.Send(big); err != nil {
		t.Fatalf("big send: %v", err)
	}
	if env, err := server.Recv(); err != nil || len(env.Payload.(proto.Update).Val.Data) != 1<<19 {
		t.Fatalf("big recv: %v", err)
	}
	big.Payload = proto.Update{Val: types.Value{Data: strings.Repeat("x", proto.MaxFrame+1)}}
	if err := client.Send(big); !errors.Is(err, proto.ErrOversize) {
		t.Fatalf("oversize send: got %v, want ErrOversize", err)
	}
}

func TestTCPConnPeerClose(t *testing.T) {
	lis, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		accepted <- c
	}()
	client, err := DialTCP(lis.Addr())
	if err != nil {
		t.Fatal(err)
	}
	server := <-accepted
	server.Close()
	if _, err := client.Recv(); err == nil {
		t.Fatal("Recv after peer close should fail")
	}
	// Sends eventually fail too (the writer goroutine notices the dead
	// socket once the kernel does).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := client.Send(testEnvelope(1)); err != nil {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("Send never failed after peer close")
}
