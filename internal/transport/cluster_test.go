package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fastreg/internal/atomicity"
	"fastreg/internal/mwabd"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/types"
)

// startTCPCluster boots S replica servers on loopback TCP and returns
// them with their dial addresses.
func startTCPCluster(t testing.TB, cfg quorum.Config, p register.Protocol, sopts ...ServerOption) ([]*Server, []string) {
	t.Helper()
	servers := make([]*Server, cfg.S)
	addrs := make([]string, cfg.S)
	for i := 0; i < cfg.S; i++ {
		lis, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewServer(cfg, p, i+1, lis, sopts...)
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		addrs[i] = srv.Addr()
		t.Cleanup(srv.Close)
	}
	return servers, addrs
}

// runClusterWorkload drives nClients concurrent client processes (each
// its own Client — its own connections — hosting writer i and reader i)
// through a mixed read/write workload over several keys, with an optional
// barrier action in the middle. All Clients share one Registry so the
// combined per-key histories live in one clock domain for the checker.
func runClusterWorkload(t *testing.T, cfg quorum.Config, addrs []string, dial DialFunc, nClients, opsPerHalf int, atBarrier func(), copts ...ClientOption) *Registry {
	t.Helper()
	reg := NewRegistry(0)
	p := mwabd.New()
	keys := []string{"alpha", "beta", "gamma"}
	clients := make([]*Client, nClients)
	for i := range clients {
		c, err := NewClient(cfg, p, addrs, dial, append([]ClientOption{WithRegistry(reg)}, copts...)...)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		t.Cleanup(c.Close)
	}

	half := func(c *Client, id, from, to int) error {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for i := from; i < to; i++ {
			key := keys[(id+i)%len(keys)]
			if i%2 == 0 {
				if _, err := c.Write(ctx, key, id, fmt.Sprintf("c%d-%d", id, i)); err != nil {
					return fmt.Errorf("client %d write %d: %w", id, i, err)
				}
			} else {
				if _, err := c.Read(ctx, key, id); err != nil {
					return fmt.Errorf("client %d read %d: %w", id, i, err)
				}
			}
		}
		return nil
	}

	runHalf := func(from, to int) {
		t.Helper()
		var wg sync.WaitGroup
		errs := make(chan error, nClients)
		for i, c := range clients {
			wg.Add(1)
			go func(c *Client, id int) {
				defer wg.Done()
				if err := half(c, id, from, to); err != nil {
					errs <- err
				}
			}(c, i+1)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}

	runHalf(0, opsPerHalf)
	if atBarrier != nil {
		atBarrier()
	}
	runHalf(opsPerHalf, 2*opsPerHalf)
	return reg
}

func checkAtomic(t *testing.T, reg *Registry, wantOps int) {
	t.Helper()
	total := 0
	for _, key := range reg.Keys() {
		h := reg.History(key)
		if err := h.WellFormed(); err != nil {
			t.Fatalf("key %s: malformed history: %v", key, err)
		}
		res := atomicity.Check(h)
		if !res.Atomic {
			t.Fatalf("key %s: atomicity violated: %s", key, res)
		}
		total += len(h.Completed())
	}
	if total != wantOps {
		t.Fatalf("completed %d operations, want %d", total, wantOps)
	}
}

// TestClusterTCPAtomic is the headline integration test: a 3-server
// loopback TCP cluster driven by 4 concurrent client processes (8 client
// identities) completes a mixed workload whose per-key histories pass the
// atomicity checker.
func TestClusterTCPAtomic(t *testing.T) {
	cfg := quorum.Config{S: 3, T: 1, R: 4, W: 4}
	_, addrs := startTCPCluster(t, cfg, mwabd.New())
	const nClients, opsPerHalf = 4, 10
	reg := runClusterWorkload(t, cfg, addrs, DialTCP, nClients, opsPerHalf, nil)
	checkAtomic(t, reg, nClients*2*opsPerHalf)
}

// TestClusterTCPCrash kills one replica at the workload's midpoint: the
// remaining S−t quorum must keep completing every operation and the
// combined history must stay atomic.
func TestClusterTCPCrash(t *testing.T) {
	cfg := quorum.Config{S: 3, T: 1, R: 4, W: 4}
	servers, addrs := startTCPCluster(t, cfg, mwabd.New())
	const nClients, opsPerHalf = 4, 10
	reg := runClusterWorkload(t, cfg, addrs, DialTCP, nClients, opsPerHalf, func() {
		servers[2].Close() // kill s3 mid-workload
	})
	checkAtomic(t, reg, nClients*2*opsPerHalf)
}

// TestClusterTCPMultiConnAtomic runs the headline workload with every
// wire knob turned up at once: 4 connections per link (sends steered
// round-robin, replies landing on whichever connection's receive loop
// gets them) against replicas running a 4-worker shard-affine pool. The
// combined history must be exactly as atomic as the single-conn,
// inline-serving default — the knobs move work between goroutines and
// sockets, never between protocol states.
func TestClusterTCPMultiConnAtomic(t *testing.T) {
	cfg := quorum.Config{S: 3, T: 1, R: 4, W: 4}
	_, addrs := startTCPCluster(t, cfg, mwabd.New(), WithServerWorkers(4))
	const nClients, opsPerHalf = 4, 10
	reg := runClusterWorkload(t, cfg, addrs, DialTCP, nClients, opsPerHalf, nil, WithConnsPerLink(4))
	checkAtomic(t, reg, nClients*2*opsPerHalf)
}

// TestClusterTCPMultiConnCrash kills a replica mid-workload under the
// same multi-connection + worker-pool configuration: dial backoff and
// reply steering must degrade exactly like the single-connection path
// (operations complete against the surviving quorum, history atomic).
func TestClusterTCPMultiConnCrash(t *testing.T) {
	cfg := quorum.Config{S: 3, T: 1, R: 4, W: 4}
	servers, addrs := startTCPCluster(t, cfg, mwabd.New(), WithServerWorkers(4))
	const nClients, opsPerHalf = 4, 10
	reg := runClusterWorkload(t, cfg, addrs, DialTCP, nClients, opsPerHalf, func() {
		servers[2].Close() // kill s3 mid-workload
	}, WithConnsPerLink(4))
	checkAtomic(t, reg, nClients*2*opsPerHalf)
}

// TestClusterChanWorkersAtomic runs the shard-affine worker pool over the
// in-process channel transport: worker handoff and reply coalescing must
// be transport-independent.
func TestClusterChanWorkersAtomic(t *testing.T) {
	cfg := quorum.Config{S: 3, T: 1, R: 4, W: 4}
	net := NewChanNetwork()
	addrs := make([]string, cfg.S)
	for i := 0; i < cfg.S; i++ {
		addrs[i] = fmt.Sprintf("s%d", i+1)
		lis, err := net.Listen(addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewServer(cfg, mwabd.New(), i+1, lis, WithServerWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
	}
	const nClients, opsPerHalf = 4, 10
	reg := runClusterWorkload(t, cfg, addrs, net.Dial, nClients, opsPerHalf, nil, WithConnsPerLink(2))
	checkAtomic(t, reg, nClients*2*opsPerHalf)
}

// TestClientAbandonMultiConn severs a multi-connection link client-side:
// every one of the link's connections must go down and stay down.
func TestClientAbandonMultiConn(t *testing.T) {
	cfg := quorum.Config{S: 3, T: 1, R: 1, W: 1}
	_, addrs := startTCPCluster(t, cfg, mwabd.New())
	c, err := NewClient(cfg, mwabd.New(), addrs, DialTCP, WithConnsPerLink(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	c.Abandon(2)
	if n := c.Connect(); n != cfg.S-1 {
		t.Fatalf("Connect() = %d after Abandon, want %d", n, cfg.S-1)
	}
	if _, err := c.Write(ctx, "k", 1, "v"); err != nil {
		t.Fatal(err)
	}
	v, err := c.Read(ctx, "k", 1)
	if err != nil || v.Data != "v" {
		t.Fatalf("read: %v %v", v, err)
	}
}

// TestClusterChanAtomic runs the same cluster shape over the in-process
// channel transport — the two backends must be behaviorally identical.
func TestClusterChanAtomic(t *testing.T) {
	cfg := quorum.Config{S: 3, T: 1, R: 4, W: 4}
	net := NewChanNetwork()
	addrs := make([]string, cfg.S)
	for i := 0; i < cfg.S; i++ {
		addrs[i] = fmt.Sprintf("s%d", i+1)
		lis, err := net.Listen(addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewServer(cfg, mwabd.New(), i+1, lis)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
	}
	const nClients, opsPerHalf = 4, 10
	reg := runClusterWorkload(t, cfg, addrs, net.Dial, nClients, opsPerHalf, nil)
	checkAtomic(t, reg, nClients*2*opsPerHalf)
}

// TestClientReconnect restarts a dead replica on the same port and checks
// the client's backoff dialer finds it again.
func TestClientReconnect(t *testing.T) {
	cfg := quorum.Config{S: 3, T: 1, R: 1, W: 1}
	servers, addrs := startTCPCluster(t, cfg, mwabd.New())
	c, err := NewClient(cfg, mwabd.New(), addrs, DialTCP)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if _, err := c.Write(ctx, "k", 1, "before"); err != nil {
		t.Fatal(err)
	}

	servers[0].Close()
	// Operations keep completing against the surviving quorum while s1 is
	// down (sends to it fail fast into backoff).
	if _, err := c.Write(ctx, "k", 1, "during"); err != nil {
		t.Fatal(err)
	}

	lis, err := ListenTCP(addrs[0]) // same port: the replica "restarts"
	if err != nil {
		t.Skipf("could not rebind %s: %v", addrs[0], err)
	}
	srv, err := NewServer(cfg, mwabd.New(), 1, lis)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	deadline := time.Now().Add(10 * time.Second)
	for c.Connect() < cfg.S {
		if time.Now().After(deadline) {
			t.Fatal("client never reconnected to the restarted replica")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := c.Write(ctx, "k", 1, "after"); err != nil {
		t.Fatal(err)
	}
	// The restarted (empty) replica catches up through normal protocol
	// traffic: a read's write-back round re-populates it.
	if v, err := c.Read(ctx, "k", 1); err != nil || v.Data != "after" {
		t.Fatalf("read after restart: %v %v", v, err)
	}
	res := atomicity.Check(c.History("k"))
	if !res.Atomic {
		t.Fatalf("atomicity violated across restart: %s", res)
	}
}

// TestClientTimeout points a client at servers that accept connections
// but never reply: operations must end in register.ErrTimeout when their
// context expires instead of blocking forever.
func TestClientTimeout(t *testing.T) {
	cfg := quorum.Config{S: 3, T: 1, R: 1, W: 1}
	addrs := make([]string, cfg.S)
	for i := range addrs {
		lis, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { lis.Close() })
		addrs[i] = lis.Addr()
		go func() {
			for {
				conn, err := lis.Accept()
				if err != nil {
					return
				}
				go func() {
					for {
						if _, err := conn.Recv(); err != nil {
							return
						}
					}
				}()
			}
		}()
	}
	c, err := NewClient(cfg, mwabd.New(), addrs, DialTCP)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Write(ctx, "k", 1, "v")
	if !errors.Is(err, register.ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
	// The op is recorded as failed, not completed — its effect is unknown.
	h := c.History("k")
	if n := len(h.Completed()); n != 0 {
		t.Fatalf("%d completed ops after timeout, want 0", n)
	}
	if n := len(h.Failed()); n != 1 {
		t.Fatalf("%d failed ops after timeout, want 1", n)
	}
}

// TestClientColdStartConcurrent hits a fresh client (no eager Connect)
// with many concurrent first operations: the racing lazy dials must be
// shared, not treated as per-caller failures — the regression was losers
// of the dial race seeing every link as "dial in progress" and erroring
// with 0 reachable servers.
func TestClientColdStartConcurrent(t *testing.T) {
	cfg := quorum.Config{S: 3, T: 1, R: 4, W: 4}
	_, addrs := startTCPCluster(t, cfg, mwabd.New())
	c, err := NewClient(cfg, mwabd.New(), addrs, DialTCP)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	errs := make(chan error, cfg.W+cfg.R)
	for w := 1; w <= cfg.W; w++ {
		go func(w int) {
			_, err := c.Write(ctx, "cold", w, "v")
			errs <- err
		}(w)
	}
	for r := 1; r <= cfg.R; r++ {
		go func(r int) {
			_, err := c.Read(ctx, "cold", r)
			errs <- err
		}(r)
	}
	for i := 0; i < cfg.W+cfg.R; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestClientAbandon severs one link client-side; the remaining quorum
// carries operations.
func TestClientAbandon(t *testing.T) {
	cfg := quorum.Config{S: 3, T: 1, R: 1, W: 1}
	_, addrs := startTCPCluster(t, cfg, mwabd.New())
	c, err := NewClient(cfg, mwabd.New(), addrs, DialTCP)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	c.Abandon(2)
	if _, err := c.Write(ctx, "k", 1, "v"); err != nil {
		t.Fatal(err)
	}
	v, err := c.Read(ctx, "k", 1)
	if err != nil || v.Data != "v" {
		t.Fatalf("read: %v %v", v, err)
	}
	if v.Tag.WID != types.Writer(1) {
		t.Fatalf("tag %v", v.Tag)
	}
}
