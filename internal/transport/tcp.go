package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"fastreg/internal/proto"
)

// tcpSendBuf bounds the per-connection outbound queue (frames, not
// bytes). Senders briefly block when the writer goroutine falls this far
// behind — normal for bursts — but give up after tcpSendTimeout: a peer
// that hasn't drained a full queue in seconds is dead, and a quorum
// client must fail the connection rather than wedge forever behind it.
const (
	tcpSendBuf     = 256
	tcpSendTimeout = 5 * time.Second
)

// tcpDialTimeout bounds DialTCP: a black-holed address (firewalled, dead
// host — no RST) must fail in bounded time, not the OS's multi-minute
// connect timeout.
const tcpDialTimeout = 3 * time.Second

// Adaptive flush deferral: after the writer goroutine drains its queue,
// senders that are runnable RIGHT NOW may be one scheduler slot away
// from enqueueing more frames — flushing immediately would pay one
// write(2) for them and another for us. The writer therefore yields up
// to maxFlushDefers times before flushing, as long as the accumulated
// buffer stays under flushDeferBudget (past that, latency and memory say
// ship it) and each yield actually produced more frames (an empty queue
// after a yield means nobody was waiting — flush at once, so a lonely
// request pays one yield, not a timer). This is the syscall-bound tail
// the profile left after message batching: the same accumulation the
// client's flusher gets from its Gosched, applied at the connection.
const (
	flushDeferBudget = 32 << 10
	maxFlushDefers   = 2
)

// ListenTCP binds a TCP listener at addr ("host:port"; ":0" picks a free
// port, readable back via Addr).
func ListenTCP(addr string) (Listener, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{nl: nl}, nil
}

// DialTCP opens one TCP connection to addr, failing after a bounded
// timeout. It implements DialFunc; reconnection policy lives in Client,
// not here.
func DialTCP(addr string) (Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, tcpDialTimeout)
	if err != nil {
		return nil, err
	}
	return newTCPConn(nc), nil
}

// WrapNetConn frames envelopes over an arbitrary net.Conn with the same
// codec, queueing and batching behavior DialTCP's connections get — the
// seam that lets middleboxes (internal/faultnet's fault-injecting shim)
// sit between the framing layer and the socket.
func WrapNetConn(nc net.Conn) Conn { return newTCPConn(nc) }

type tcpListener struct {
	nl net.Listener
}

func (l *tcpListener) Accept() (Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		return nil, err
	}
	return newTCPConn(nc), nil
}

func (l *tcpListener) Addr() string { return l.nl.Addr().String() }
func (l *tcpListener) Close() error { return l.nl.Close() }

// tcpConn frames envelopes onto a TCP stream with the proto codec. Reads
// happen on the caller's goroutine (Client and Server each run one
// receive loop per connection); writes go through an outbound queue
// drained by a single writer goroutine that coalesces every queued frame
// into one buffered flush — concurrent operations multiplexed over the
// same connection share syscalls instead of issuing one write(2) each.
// SendBatch additionally coalesces at the message level: the whole batch
// becomes one proto batch frame, sharing a single header and one encode
// buffer, and RecvBatch hands the peer the decoded batch in one pass.
// Frame buffers are pooled (proto.GetBuf/PutBuf), so a steady stream
// stops allocating per message.
type tcpConn struct {
	nc net.Conn
	br *bufio.Reader

	out    chan []byte
	closed chan struct{}
	once   sync.Once

	errMu  sync.Mutex
	wrErr  error // first writer-goroutine error, reported by later Sends
	wrIdle sync.WaitGroup

	// recvMu serializes frame reads; pending holds the undelivered tail
	// of the last batch frame so Recv yields one envelope at a time;
	// rdErr remembers a decode failure hit while draining buffered frames.
	recvMu  sync.Mutex
	pending []proto.Envelope
	rdErr   error
}

func newTCPConn(nc net.Conn) *tcpConn {
	c := &tcpConn{
		nc:     nc,
		br:     bufio.NewReaderSize(nc, 64<<10),
		out:    make(chan []byte, tcpSendBuf),
		closed: make(chan struct{}),
	}
	c.wrIdle.Add(1)
	go c.writeLoop()
	return c
}

// writeLoop drains the outbound queue, writing every frame already
// queued — plus, via the adaptive deferral, the frames concurrent
// senders are about to queue — before flushing once: N concurrent ops
// cost ~1 flush, not N.
func (c *tcpConn) writeLoop() {
	defer c.wrIdle.Done()
	bw := bufio.NewWriterSize(c.nc, 64<<10)
	// writeFrame buffers one frame, recycling its pooled buffer; false
	// means the connection failed and the loop must exit.
	writeFrame := func(b []byte) bool {
		_, err := bw.Write(b)
		proto.PutBuf(b)
		if err != nil {
			c.fail(err)
			return false
		}
		return true
	}
	// c.out is never closed; teardown is signalled via c.closed only, so
	// Send never races a channel close.
	for {
		select {
		case <-c.closed:
			return
		case b := <-c.out:
			if !writeFrame(b) {
				return
			}
			for defers := 0; ; {
			coalesce:
				for {
					select {
					case b := <-c.out:
						if !writeFrame(b) {
							return
						}
					default:
						break coalesce
					}
				}
				// Queue empty. Defer the flush while the accumulation is
				// small and yields keep producing frames (see the
				// flushDeferBudget comment).
				if bw.Buffered() >= flushDeferBudget || defers >= maxFlushDefers {
					break
				}
				defers++
				runtime.Gosched()
				if len(c.out) == 0 {
					break // nobody was waiting; don't add latency
				}
			}
			if err := bw.Flush(); err != nil {
				c.fail(err)
				return
			}
		}
	}
}

// fail records the writer's error and tears the connection down so the
// peer and any blocked Recv notice.
func (c *tcpConn) fail(err error) {
	c.errMu.Lock()
	if c.wrErr == nil {
		c.wrErr = err
	}
	c.errMu.Unlock()
	c.Close()
}

// Send queues the frame, blocking briefly for backpressure but never
// indefinitely: if the outbound queue stays full past tcpSendTimeout the
// writer goroutine is wedged behind a dead socket the kernel hasn't
// noticed, and the caller should treat the connection as failed — the
// correct reading for a quorum system, where a server that stopped
// draining is indistinguishable from a crashed one.
func (c *tcpConn) Send(e proto.Envelope) error {
	b, err := proto.AppendEnvelope(proto.GetBuf(), e)
	if err != nil {
		return err
	}
	return c.enqueue(b)
}

// SendBatch encodes the whole batch as one multi-envelope frame sharing a
// single header and one pooled buffer. A batch of one stays a plain
// single frame (the canonical minimal encoding); a batch too large for
// one frame is split by count, and a batch whose bytes overflow the frame
// bound degrades to per-envelope sends.
//
// Ownership of envs transfers here (the Conn contract) and the encode
// consumes it synchronously, so the slab is recycled on return — the
// sender-side half of the envelope-slab cycle (GetEnvs queues in, encoded
// bytes out).
func (c *tcpConn) SendBatch(envs []proto.Envelope) error {
	err := c.sendBatch(envs)
	proto.PutEnvs(envs)
	return err
}

func (c *tcpConn) sendBatch(envs []proto.Envelope) error {
	for len(envs) > proto.MaxBatchEnvelopes {
		if err := c.sendBatch(envs[:proto.MaxBatchEnvelopes]); err != nil {
			return err
		}
		envs = envs[proto.MaxBatchEnvelopes:]
	}
	switch len(envs) {
	case 0:
		return nil
	case 1:
		return c.Send(envs[0])
	}
	b, err := proto.AppendBatch(proto.GetBuf(), envs)
	if errors.Is(err, proto.ErrOversize) {
		for _, e := range envs {
			if err := c.Send(e); err != nil {
				return err
			}
		}
		return nil
	}
	if err != nil {
		return err
	}
	return c.enqueue(b)
}

// enqueue hands one encoded frame to the writer goroutine, applying the
// bounded backpressure policy below.
func (c *tcpConn) enqueue(b []byte) error {
	select {
	case <-c.closed:
		proto.PutBuf(b)
		return c.sendErr()
	default:
	}
	select {
	case c.out <- b:
		return nil
	case <-c.closed:
		proto.PutBuf(b)
		return c.sendErr()
	default:
	}
	// Slow path: queue full. Wait bounded for the writer to drain.
	timer := time.NewTimer(tcpSendTimeout)
	defer timer.Stop()
	select {
	case c.out <- b:
		return nil
	case <-c.closed:
		proto.PutBuf(b)
		return c.sendErr()
	case <-timer.C:
		proto.PutBuf(b)
		return fmt.Errorf("transport: %d frames queued and peer not draining", tcpSendBuf)
	}
}

func (c *tcpConn) sendErr() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	if c.wrErr != nil {
		return c.wrErr
	}
	return ErrClosed
}

func (c *tcpConn) Recv() (proto.Envelope, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	if len(c.pending) == 0 {
		if err := c.rdErr; err != nil {
			return proto.Envelope{}, err
		}
		envs, err := proto.ReadFrames(c.br)
		if err != nil {
			return proto.Envelope{}, err
		}
		c.pending = envs
	}
	e := c.pending[0]
	c.pending = c.pending[1:]
	return e, nil
}

// RecvBatch returns the next frame's envelopes plus — opportunistically —
// those of every further frame already sitting complete in the read
// buffer. Only the first frame may block; the drain consumes bytes the
// kernel has already delivered, so a loaded connection hands the caller
// one large batch per wake-up (the receive-side analogue of
// netsim.MultiLive's inbox drain) at no added latency.
//
// The returned slice is a pooled slab (proto.GetEnvs) filled via the
// appending decoders: ownership passes to the caller, who should recycle
// it with proto.PutEnvs once every envelope is consumed — the receive
// loops of Client and Server do, closing the zero-alloc decode cycle.
func (c *tcpConn) RecvBatch() ([]proto.Envelope, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	if len(c.pending) > 0 {
		envs := c.pending
		c.pending = nil
		return envs, nil
	}
	if err := c.rdErr; err != nil {
		return nil, err
	}
	envs, err := proto.ReadFramesInto(c.br, proto.GetEnvs())
	if err != nil {
		proto.PutEnvs(envs)
		return nil, err
	}
	for len(envs) < proto.MaxBatchEnvelopes {
		if !c.frameBuffered() {
			break
		}
		more, err := proto.ReadFramesInto(c.br, envs)
		if err != nil {
			// The stream is already broken mid-buffer; deliver what was
			// drained and surface the error on the next call.
			c.rdErr = err
			break
		}
		envs = more
	}
	return envs, nil
}

// frameBuffered reports whether the read buffer already holds one
// complete frame. Oversize or corrupt headers return false and are left
// for the blocking path to turn into a proper error.
func (c *tcpConn) frameBuffered() bool {
	if c.br.Buffered() < 4 {
		return false
	}
	hdr, err := c.br.Peek(4)
	if err != nil {
		return false
	}
	body := binary.BigEndian.Uint32(hdr)
	if body > proto.MaxBatchFrame {
		return false
	}
	return c.br.Buffered() >= 4+int(body)
}

func (c *tcpConn) Close() error {
	var err error
	c.once.Do(func() {
		close(c.closed)
		err = c.nc.Close()
	})
	return err
}
