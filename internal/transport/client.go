package transport

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fastreg/internal/byzantine"
	"fastreg/internal/epoch"
	"fastreg/internal/history"
	"fastreg/internal/keyreg"
	"fastreg/internal/obs"
	"fastreg/internal/proto"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/shard"
	"fastreg/internal/types"
)

// Reconnect backoff bounds: after a failed dial the link waits
// dialBackoffMin, doubling per consecutive failure up to dialBackoffMax,
// before the next attempt. Operations meanwhile proceed against the
// reachable servers (any S−t quorum suffices).
const (
	dialBackoffMin = 10 * time.Millisecond
	dialBackoffMax = 1 * time.Second
)

// resendInterval is how often an operation re-attempts the current
// round's unsent messages while waiting for its reply quorum — the knob
// that turns transient link failures into added latency instead of
// failed operations.
const resendInterval = 20 * time.Millisecond

// Client drives register operations against a fleet of replica servers
// over any transport — the client half of a deployed cluster, and the
// network-facing counterpart of netsim.MultiLive's in-process round
// engine.
//
// One Client hosts all of a process's reader/writer identities and
// multiplexes every key's operations over a single connection per server.
// Links reconnect with exponential backoff when a server dies and comes
// back; while a server is down, operations complete against any S−t of
// the fleet, exactly the wait-freedom the protocols promise. Replies are
// correlated back to their operation by (client, key, opID) and filtered
// by round, so stragglers from an earlier round can never satisfy a later
// one.
//
// Delivery is at-least-once: a round whose send failed is re-attempted
// until the reply quorum is in, so a server can Handle the same message
// twice (replies are deduplicated per server client-side). The protocol
// servers all tolerate this — their handlers are max-merge/set-insert
// idempotent, and the FullInfo log server's crucial-info extraction
// dedups by value.
//
// As in the simulators, each (key, writer) and (key, reader) pair must be
// used sequentially; everything else may run concurrently. Per-key
// histories are recorded client-side for the atomicity checker.
//
// Client satisfies kv.Backend: Write and Read are context-first, and
// Crash/Histories/Keys/Close complete the store seam.
type Client struct {
	cfg      quorum.Config
	protocol register.Protocol

	links        []*serverLink
	reg          *Registry
	unbatched    bool
	connsPerLink int
	vouchT       int
	evictTTL     time.Duration
	capture      func(key string, op history.Op)
	coord        *epoch.Coordinator

	// Observability, all nil when disabled (the nil members ARE the off
	// switch — see internal/obs): om records per-operation latency/rounds/
	// retries under "client.<protocol>", flushBatch the coalesced frame
	// sizes, tracer the slow-op round timelines.
	obsReg     *obs.Registry
	om         *obs.OpMetrics
	flushBatch *obs.Histogram
	tracer     *obs.Tracer

	// pending is sharded by key (same partition as everything else) so
	// the S receive loops and the concurrent operations' round turnover
	// don't serialize on one lock.
	pending []*pendShard

	// scratch pools per-operation round state (reply channel, vote set,
	// replies slice, retry ticker) so the steady-state hot path allocates
	// nothing per round.
	scratch sync.Pool

	closed chan struct{}
	once   sync.Once
}

type pendShard struct {
	mu sync.Mutex
	m  map[pendKey]*pendingRound // guardedby: mu
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithRegistry makes the client record into an existing Registry instead
// of a private one. Several Clients in one process — e.g. a test running
// one Client per simulated client process so every server sees multiple
// connections — then share per-key recorders and one clock domain, which
// is what lets the atomicity checker reason about their combined history.
// Identities (writer/reader indices) must not be used through two Clients
// concurrently.
func WithRegistry(r *Registry) ClientOption {
	return func(c *Client) { c.reg = r }
}

// WithUnbatchedSends disables the per-link message coalescing: every send
// goes out as its own frame, one Conn.Send per envelope, the pre-batching
// wire behavior. Benchmarks use it to measure what coalescing buys;
// production clients should leave batching on.
func WithUnbatchedSends() ClientOption {
	return func(c *Client) { c.unbatched = true }
}

// WithConnsPerLink opens n connections to each server instead of one
// (default 1, today's behavior — n ≤ 0 is treated as 1). Each connection
// gets its own outbound queue, flusher goroutine and receive loop; sends
// are steered round-robin across the link's connections and replies land
// on the client's shared pending table correlated by operation ID, so a
// reply may return on a different connection's receive loop than the one
// that carried the request — the protocols only require the reply to
// reach the operation, not the socket. At high client counts this removes
// the single flusher goroutine (and the single TCP stream's writer) as
// the per-server throughput ceiling; it multiplies sockets and dilutes
// per-connection batching, so keep the default unless a profile shows a
// link-side bottleneck.
func WithConnsPerLink(n int) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.connsPerLink = n
		}
	}
}

// WithOpCapture streams every operation this client completes (or fails)
// into fn, keyed by the register it ran against — the client half of the
// audit subsystem's capture layer, typically an audit.Writer appending
// TraceClientOp records to the process's trace log. The sink is wired
// into the registry's per-key recorders, so with WithRegistry the
// capture covers every Client sharing that registry. fn runs under the
// recorder's lock; keep it brief and never call back into the client.
// Do not combine with WithClientEviction: evicting a key resets its
// history clock, which corrupts the trace log's time domain (fastreg.
// Open rejects the combination at the public surface).
func WithOpCapture(fn func(key string, op history.Op)) ClientOption {
	return func(c *Client) { c.capture = fn }
}

// WithEpochCoordinator attaches the continuous-audit epoch coordinator
// (internal/epoch): every operation borrows a weight ticket at invoke,
// spreads dyadic shares of it onto its request frames (retaining at
// least one atom until it completes), harvests shares the servers echo
// back on replies, and returns the remainder after its capture record is
// written — so when an epoch's weight is whole again, every op charged
// to it is both finished and logged, and the coordinator can stamp the
// boundary. co may be nil (epochs off, zero per-op cost beyond a branch).
func WithEpochCoordinator(co *epoch.Coordinator) ClientOption {
	return func(c *Client) { c.coord = co }
}

// WithClientObs wires the client into an observability registry (and,
// optionally, a slow-op tracer — tr may be nil). The client records
// per-operation latency histograms split by kind, rounds per operation
// and retry counts under "client.<protocol>.*", coalesced flush batch
// sizes under "client.flush_batch", and registers pull gauges for the
// outbound queue depth and in-flight operation count. With a tracer,
// every operation carries a round timeline (queued→sent→quorum→done)
// and operations over the tracer's threshold are retained for
// /debug/slowops. Both may be nil; a nil registry disables everything
// here at the cost of one branch per would-be record.
func WithClientObs(reg *obs.Registry, tr *obs.Tracer) ClientOption {
	return func(c *Client) {
		c.obsReg = reg
		c.tracer = tr
	}
}

// WithVouchedReads wraps the client's read path with the Byzantine
// value-authenticity filter (internal/byzantine): before a fast read's
// admissibility selection runs, every value reported by at most t
// servers is discarded — a fabrication budget ≤ t Byzantine replicas
// cannot beat, while genuine admissible values always carry more than t
// honest reports under the fast-read feasibility condition. Soundness is
// protocol-specific: the filter defends the vector-based fast read
// (W2R1) only, so fastreg.Open rejects the option on other protocols
// rather than sell unearned safety. t must be at least 1.
func WithVouchedReads(t int) ClientOption {
	return func(c *Client) { c.vouchT = t }
}

// WithClientEviction enables the client-side idle-key sweep: every ttl,
// keys with no operation running that went untouched for at least one
// full ttl window (and at most two) are dropped from the client's
// registry — protocol state machines, op counters AND the key's recorded
// history — so a long-lived client working through a churning key
// population stops growing without bound. This is the client-half
// counterpart of the replica-side WithServerEviction (regserver
// -evict-ttl); the server state lives in other processes and is not
// touched. Because evicted histories are gone, don't combine it with an
// atomicity check unless every checked key stays hotter than the TTL.
// Choose a ttl far above operation latency; ttl must be positive.
func WithClientEviction(ttl time.Duration) ClientOption {
	return func(c *Client) {
		if ttl > 0 {
			c.evictTTL = ttl
		}
	}
}

// pendKey names one in-flight operation. opID is scoped per (key, client),
// so the triple is unique process-wide.
type pendKey struct {
	client types.ProcID
	key    string
	opID   uint64
}

// pendingRound is the live round of one operation: replies for exactly
// this round number are delivered on ch (buffered to S, so dispatch never
// blocks).
type pendingRound struct {
	round uint8
	ch    chan register.Reply
	// credited accumulates the epoch weight harvested off this op's reply
	// envelopes (guardedby: the pending shard's mu while an entry points
	// here; exec reads it only after clearPending, the same barrier that
	// protects ch reuse). The op's completion returns Budget−credited, so
	// weight on frames the network ate still comes home.
	credited uint64
}

// Registry is the sharded per-key client-side state — protocol state
// machines, op counters and history recorders — backed by the shared
// keyreg.ClientRegistry, the same registry netsim.MultiLive uses
// in-process. Each Client owns one by default; WithRegistry shares one
// across Clients.
type Registry struct {
	r *keyreg.ClientRegistry
}

// NewRegistry creates an empty registry with n shards (n ≤ 0 picks the
// default).
func NewRegistry(n int) *Registry {
	if n <= 0 {
		n = DefaultServerShards
	}
	return &Registry{r: keyreg.NewClientRegistry(n)}
}

// History returns the execution recorded so far for one key.
func (r *Registry) History(key string) history.History { return r.r.History(key) }

// Histories returns a snapshot of every key's recorded execution.
func (r *Registry) Histories() map[string]history.History { return r.r.Histories() }

// Keys returns the keys touched so far, sorted.
func (r *Registry) Keys() []string { return r.r.Keys() }

// execScratch is the pooled per-operation state: one reply channel, vote
// set, replies slice, retry ticker and pending-table entry serve every
// round of an operation and are recycled across operations. Safe reuse of
// ch (and of the pendingRound struct the table points at) rests on two
// invariants: dispatch only ever sends while holding the pending-shard
// lock, and exec drains ch after clearing the pending entry — so once an
// operation (or round) retires its entry, no stale reply can reach a
// later user of the channel.
type execScratch struct {
	ch      chan register.Reply
	seen    map[types.ProcID]bool
	replies []register.Reply
	retry   *time.Ticker
	pr      pendingRound // the table entry, reused across rounds and ops
	held    uint64       // epoch weight atoms not yet attached to a frame
}

// serverLink is the client's link to one replica: connsPerLink
// connections (one by default), each with its own lazy dial/backoff
// state, outbound queue, flusher goroutine and receive loop. Sends are
// steered round-robin across the connections; replies correlate back to
// operations through the client's shared pending table regardless of
// which connection carried them.
//
// Outbound envelopes pass through a per-connection queue drained by that
// connection's flusher goroutine: a send is just append-and-wake, so an
// operation's fan-out to all S servers costs S queue appends, while
// everything that accumulated between flusher wake-ups — the sends of
// concurrent rounds headed to this server over this connection — leaves
// as one multi-envelope SendBatch frame, sharing a single header, encode
// buffer and flush instead of paying per-message wire overhead.
type serverLink struct {
	c     *Client
	id    types.ProcID
	addr  string
	dial  DialFunc
	conns []*linkConn
	next  atomic.Uint32 // round-robin steering cursor
}

// linkConn is one of a link's connections: the dial/backoff state machine
// plus the batched outbound queue. A nil conn means "down, retry after
// nextDial".
type linkConn struct {
	l *serverLink

	mu       sync.Mutex
	conn     Conn          // guardedby: mu
	down     bool          // guardedby: mu — abandoned or client closed: never dial again
	dialDone chan struct{} // guardedby: mu — non-nil while a dial is in flight (the dial itself runs outside the mutex); closed when it settles
	fails    int           // guardedby: mu
	nextDial time.Time     // guardedby: mu

	qmu   sync.Mutex
	queue []proto.Envelope // guardedby: qmu
	wake  chan struct{}    // buffered(1): at most one pending flusher wake-up
}

// NewClient creates a client for a cfg-shaped cluster whose replicas
// s_1..s_S listen at addrs[0..S-1], reachable through dial (DialTCP, or a
// ChanNetwork's Dial). Connections are established lazily on first use
// and re-established with backoff after failures.
func NewClient(cfg quorum.Config, p register.Protocol, addrs []string, dial DialFunc, opts ...ClientOption) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(addrs) != cfg.S {
		return nil, fmt.Errorf("transport: %d addresses for %d servers", len(addrs), cfg.S)
	}
	c := &Client{
		cfg:      cfg,
		protocol: p,
		pending:  make([]*pendShard, shard.Default),
		closed:   make(chan struct{}),
	}
	for i := range c.pending {
		c.pending[i] = &pendShard{m: make(map[pendKey]*pendingRound)}
	}
	for _, o := range opts {
		o(c)
	}
	if c.vouchT > 0 {
		c.protocol = byzantine.NewVouched(c.protocol, c.vouchT)
	}
	if c.reg == nil {
		c.reg = NewRegistry(0)
	}
	if c.capture != nil {
		c.reg.r.SetCapture(c.capture)
	}
	if c.connsPerLink < 1 {
		c.connsPerLink = 1
	}
	c.links = make([]*serverLink, cfg.S)
	for i := range c.links {
		l := &serverLink{c: c, id: types.Server(i + 1), addr: addrs[i], dial: dial}
		l.conns = make([]*linkConn, c.connsPerLink)
		for j := range l.conns {
			lc := &linkConn{l: l, wake: make(chan struct{}, 1)}
			l.conns[j] = lc
			if !c.unbatched {
				go lc.flushLoop() // exits when the client closes
			}
		}
		c.links[i] = l
	}
	if c.obsReg != nil {
		c.om = obs.NewOpMetrics(c.obsReg, "client."+p.Name())
		c.flushBatch = c.obsReg.Histogram("client.flush_batch")
		c.obsReg.GaugeFunc("client.queue_depth", c.queueDepth)
		c.obsReg.GaugeFunc("client.pending_ops", c.pendingOps)
	}
	if c.evictTTL > 0 {
		go c.sweeper()
	}
	return c, nil
}

// queueDepth sums the envelopes sitting in the links' outbound queues —
// evaluated at snapshot time only (pull gauge).
func (c *Client) queueDepth() int64 {
	var n int64
	for _, l := range c.links {
		for _, lc := range l.conns {
			lc.qmu.Lock()
			n += int64(len(lc.queue))
			lc.qmu.Unlock()
		}
	}
	return n
}

// pendingOps counts operations with a live round in the pending table.
func (c *Client) pendingOps() int64 {
	var n int64
	for _, ps := range c.pending {
		ps.mu.Lock()
		n += int64(len(ps.m))
		ps.mu.Unlock()
	}
	return n
}

// sweeper ticks the client registry's eviction epoch every TTL and drops
// what went idle.
func (c *Client) sweeper() {
	t := time.NewTicker(c.evictTTL)
	defer t.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-t.C:
			c.Sweep()
		}
	}
}

// Sweep advances the client registry's eviction epoch and evicts every
// key with no operation running that was untouched for a full epoch,
// returning the number of keys dropped. The TTL sweeper calls this on its
// tick; tests and tooling may call it directly (meaningful even without
// WithClientEviction).
func (c *Client) Sweep() int { return c.reg.r.Sweep(nil) }

// Connect eagerly dials every server (waiting for the dials to settle)
// and reports how many are reachable right now. Purely advisory —
// operations dial lazily anyway.
func (c *Client) Connect() int {
	n := 0
	for _, l := range c.links {
		if l.connect() {
			n++
		}
	}
	return n
}

// Config returns the cluster shape.
func (c *Client) Config() quorum.Config { return c.cfg }

// Write stores data under key as writer w_i (1-based), blocking until the
// protocol's write completes, ctx expires (register.ErrTimeout), or the
// client closes.
func (c *Client) Write(ctx context.Context, key string, writer int, data string) (types.Value, error) {
	if writer < 1 || writer > c.cfg.W {
		return types.Value{}, fmt.Errorf("transport: writer %d out of range [1,%d]", writer, c.cfg.W)
	}
	st := c.reg.r.Acquire(key)
	return c.exec(ctx, key, st, st.Writer(types.Writer(writer), c.protocol, c.cfg).WriteOp(data))
}

// Read reads key as reader r_i (1-based).
func (c *Client) Read(ctx context.Context, key string, reader int) (types.Value, error) {
	if reader < 1 || reader > c.cfg.R {
		return types.Value{}, fmt.Errorf("transport: reader %d out of range [1,%d]", reader, c.cfg.R)
	}
	st := c.reg.r.Acquire(key)
	return c.exec(ctx, key, st, st.Reader(types.Reader(reader), c.protocol, c.cfg).ReadOp())
}

// getScratch checks a scratch set out of the pool (or builds one), with
// the retry ticker running and no stale tick pending.
func (c *Client) getScratch() *execScratch {
	if v := c.scratch.Get(); v != nil {
		sc := v.(*execScratch)
		sc.retry.Reset(resendInterval)
		select { // a tick may have been buffered before the previous Stop
		case <-sc.retry.C:
		default:
		}
		return sc
	}
	sc := &execScratch{
		ch:      make(chan register.Reply, c.cfg.S),
		seen:    make(map[types.ProcID]bool, c.cfg.S),
		replies: make([]register.Reply, 0, c.cfg.S),
		retry:   time.NewTicker(resendInterval),
	}
	sc.pr.ch = sc.ch
	return sc
}

// putScratch returns a scratch set to the pool. The caller must already
// have cleared the operation's pending entry and drained ch.
func (c *Client) putScratch(sc *execScratch) {
	sc.retry.Stop()
	clear(sc.seen)
	sc.replies = sc.replies[:0]
	c.scratch.Put(sc)
}

// drainCh empties buffered (stale) replies. Safe only after the pending
// entry pointing at ch has been cleared: dispatch sends under the
// pending-shard lock, so clearing the entry is a barrier after which no
// new reply can land in ch.
func drainCh(ch chan register.Reply) {
	for {
		select {
		case <-ch:
		default:
			return
		}
	}
}

// exec is the round engine: broadcast the round's payload to every
// server, wait for Need correlated replies, feed them to the operation,
// repeat until done. The network analogue of netsim.MultiLive.exec.
func (c *Client) exec(ctx context.Context, key string, st *keyreg.ClientState, op register.Operation) (types.Value, error) {
	defer c.reg.r.Release(st)
	select {
	case <-c.closed:
		return types.Value{}, ErrClosed
	default:
	}
	opID := st.NextOpID(op.Client())
	pk := pendKey{client: op.Client(), key: key, opID: opID}
	rec := st.Recorder()
	hkey := rec.Invoke(op.Client(), opID, op.Kind(), op.Arg())
	// Epoch cutover (Huang weight throwing): borrow the op's weight from
	// the open epoch before any frame leaves, and tag the recorded op so
	// its capture record lands in the right audit window.
	tk := c.coord.Borrow()
	if tk.Epoch != 0 {
		rec.SetEpoch(hkey, tk.Epoch)
	}
	isWrite := op.Kind() == types.OpWrite
	// Observability entry: time.Now only when something will consume it.
	// With metrics and tracing off, t0 stays zero and tr nil — the whole
	// block below costs one branch.
	var t0 time.Time
	var otr *obs.OpTrace
	if c.om != nil || c.tracer != nil {
		t0 = time.Now()
		otr = c.tracer.Start(key, op.Kind().String(), op.Client().String())
	}
	sc := c.getScratch()
	// No table entry points at pr yet, so these resets race with nothing.
	sc.pr.credited = 0
	sc.held = tk.Budget
	round := op.Begin()
	roundNo := uint8(1)
	var res types.Value
	var opErr error
loop:
	for {
		sc.pr.round = roundNo
		c.setPending(pk, &sc.pr)
		env := proto.Envelope{
			From:    op.Client(),
			Key:     key,
			OpID:    opID,
			Round:   roundNo,
			Epoch:   tk.Epoch,
			Payload: round.Payload,
		}
		// Broadcast the round, and keep re-sending to every server whose
		// reply hasn't arrived: over a real network a send can fail
		// transiently (conn just died, dial in backoff) or succeed into a
		// queue whose connection dies before flushing — unlike netsim,
		// where a failed send means a permanently crashed server. Only a
		// recorded reply proves delivery; re-sends are safe because the
		// reply loop below counts one vote per server. The operation
		// blocks until Need distinct servers reply or ctx expires — the
		// wait-free contract the protocols' model promises.
		c.trySends(ctx, sc, &env)
		otr.Mark("sent", roundNo)
		for len(sc.replies) < round.Need {
			// Expiry wins deterministically over ready replies: an
			// already-cancelled ctx never completes the operation.
			if ctx.Err() != nil {
				opErr = fmt.Errorf("%w: %v", register.ErrTimeout, ctx.Err())
				break loop
			}
			select {
			case rep := <-sc.ch:
				// One vote per server: re-sent rounds can draw duplicate
				// replies, and quorum intersection needs distinct servers.
				if !sc.seen[rep.From] {
					sc.seen[rep.From] = true
					sc.replies = append(sc.replies, rep)
				}
			case <-sc.retry.C:
				c.om.Retry()
				c.trySends(ctx, sc, &env)
			case <-ctx.Done():
				opErr = fmt.Errorf("%w: %v", register.ErrTimeout, ctx.Err())
				break loop
			case <-c.closed:
				opErr = ErrClosed
				break loop
			}
		}
		otr.Mark("quorum", roundNo)
		next, r, done, err := op.Next(sc.replies)
		switch {
		case err != nil:
			opErr = err
			break loop
		case done:
			res = r
			break loop
		default:
			// Round turnover, reusing the scratch: clear the entry (after
			// which dispatch can't reach ch), flush stragglers of the old
			// round out of the buffer, reset the vote set, then re-arm the
			// entry for the next round.
			c.clearPending(pk)
			drainCh(sc.ch)
			clear(sc.seen)
			sc.replies = sc.replies[:0]
			round = *next
			roundNo++
		}
	}
	c.clearPending(pk)
	drainCh(sc.ch) // stragglers sent before the entry was cleared
	credited := sc.pr.credited
	c.putScratch(sc)
	// Per-key workload counters are always on (one uncontended atomic add);
	// the adaptive-protocol signals must not depend on metrics being up.
	if isWrite {
		st.WriteOps.Add(1)
	} else {
		st.ReadOps.Add(1)
	}
	if c.om != nil {
		c.om.Op(isWrite, int64(time.Since(t0)), int(roundNo), opErr != nil)
	}
	c.tracer.Finish(otr)
	if opErr != nil {
		rec.RespondFailed(hkey, op.Kind(), op.Arg(), opErr)
	} else {
		rec.Respond(hkey, res, nil)
	}
	// Return the weight remainder only after Respond put the op's record
	// in the capture log: the epoch's last return triggers the boundary
	// stamp, so this order is what keeps every record above its boundary.
	// credited covers shares harvested off replies (already returned by
	// dispatch); attached weight the network ate is neither, so it comes
	// home here — the ledger never leaks over lossy links.
	if tk.Epoch != 0 {
		c.coord.Return(tk.Epoch, tk.Budget-credited)
	}
	if opErr != nil {
		return types.Value{}, opErr
	}
	return res, nil
}

// trySends broadcasts the current round's envelope to every server whose
// reply hasn't arrived yet, best-effort; unanswered servers are retried
// on the next tick.
func (c *Client) trySends(ctx context.Context, sc *execScratch, env *proto.Envelope) {
	for _, l := range c.links {
		if sc.seen[l.id] || ctx.Err() != nil {
			continue
		}
		env.To = l.id
		// Throw a dyadic share of the op's weight with the frame (Huang's
		// Half), always retaining at least one atom so the epoch cannot
		// close while this op is live. Re-sends split what remains.
		env.Weight = 0
		if sc.held > 1 {
			w := sc.held / 2
			sc.held -= w
			env.Weight = w
		}
		l.send(*env)
	}
}

func (c *Client) pendShardOf(key string) *pendShard {
	return c.pending[shard.Index(key, len(c.pending))]
}

// setPending installs the operation's (pooled, reused) pendingRound in
// the table. The round engine mutates pr only while no table entry points
// at it — clearPending is the barrier — so dispatch always reads a
// consistent (round, ch) under the shard lock.
func (c *Client) setPending(pk pendKey, pr *pendingRound) {
	ps := c.pendShardOf(pk.key)
	ps.mu.Lock()
	ps.m[pk] = pr
	ps.mu.Unlock()
}

func (c *Client) clearPending(pk pendKey) {
	ps := c.pendShardOf(pk.key)
	ps.mu.Lock()
	delete(ps.m, pk)
	ps.mu.Unlock()
}

// dispatch routes one reply envelope to its operation's current round.
// Replies for finished operations or superseded rounds are dropped — a
// slow server's round-1 straggler must never count toward round 2. The
// channel send happens under the shard lock (non-blocking: ch is buffered
// to S and overflow can only be protocol abuse, dropped like a lost
// message); that makes clearPending a barrier the round engine relies on
// to recycle channels safely.
func (c *Client) dispatch(env proto.Envelope) {
	if !env.IsReply || env.Payload == nil {
		return
	}
	pk := pendKey{client: env.To, key: env.Key, opID: env.OpID}
	ps := c.pendShardOf(env.Key)
	var harvest uint64
	ps.mu.Lock()
	p, ok := ps.m[pk]
	if ok && p.round == env.Round {
		// Harvest the weight the server echoed back: record it against the
		// op (so completion returns only the remainder) and send it home
		// below, off the shard lock. Stragglers of dead rounds are NOT
		// harvested — their weight comes home via the op's remainder.
		if env.Weight != 0 {
			p.credited += env.Weight
			harvest = env.Weight
		}
		select {
		case p.ch <- register.Reply{From: env.From, Msg: env.Payload}:
		default: // >S replies for one round can only be protocol abuse; drop
		}
	}
	ps.mu.Unlock()
	if harvest != 0 {
		c.coord.Return(env.Epoch, harvest)
	}
}

// Abandon severs the client's link to server s_i (1-based) permanently —
// the client-side view of a crashed replica. Other clients are
// unaffected; to kill the replica itself, close its Server.
func (c *Client) Abandon(i int) {
	if i < 1 || i > len(c.links) {
		return
	}
	for _, lc := range c.links[i-1].conns {
		lc.shutdown()
	}
}

// shutdown marks the connection permanently down and closes any live
// socket.
func (lc *linkConn) shutdown() {
	lc.mu.Lock()
	lc.down = true
	conn := lc.conn
	lc.conn = nil
	lc.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// Crash is Abandon under the name the kv.Backend seam uses: on a network
// client, "crashing" s_i can only mean abandoning this client's link to
// it — the replica lives in another process and keeps serving others.
func (c *Client) Crash(i int) { c.Abandon(i) }

// Metrics returns the client's operation metric set, nil when the client
// was built without WithClientObs. The store layer reaches it through a
// type assertion (the same optional-capability pattern as Connect).
func (c *Client) Metrics() *obs.OpMetrics { return c.om }

// Tracer returns the client's slow-op tracer (nil when not installed).
func (c *Client) Tracer() *obs.Tracer { return c.tracer }

// KeyStats returns the per-key workload profiles (read/write mix,
// contention) the client registry maintains unconditionally.
func (c *Client) KeyStats() []keyreg.KeyStats { return c.reg.r.KeyStats() }

// History returns the execution recorded so far for one key.
func (c *Client) History(key string) history.History { return c.reg.History(key) }

// Histories returns a snapshot of every key's recorded execution.
func (c *Client) Histories() map[string]history.History { return c.reg.Histories() }

// Keys returns the keys this client's registry has touched, sorted.
func (c *Client) Keys() []string { return c.reg.Keys() }

// Close tears down every link; blocked operations return ErrClosed.
func (c *Client) Close() {
	c.once.Do(func() {
		close(c.closed)
		for _, l := range c.links {
			for _, lc := range l.conns {
				lc.shutdown()
			}
		}
	})
}

// send queues one envelope for the link, (re)dialing if needed. With
// several connections per link the envelope is steered round-robin, so
// concurrent operations spread across the link's sockets while each
// individual envelope still travels one ordered stream. Delivery is
// best-effort either way — a dropped envelope is re-attempted by its
// round's retry ticker; only a recorded reply proves delivery.
func (l *serverLink) send(env proto.Envelope) {
	lc := l.conns[0]
	if len(l.conns) > 1 {
		lc = l.conns[int(l.next.Add(1))%len(l.conns)]
	}
	lc.send(env)
}

// send queues one envelope on this connection (unbatched mode sends it
// as its own frame immediately).
func (lc *linkConn) send(env proto.Envelope) {
	if lc.l.c.unbatched {
		conn, err := lc.get()
		if err != nil {
			return
		}
		if err := conn.Send(env); err != nil {
			lc.drop(conn)
		}
		return
	}
	lc.qmu.Lock()
	if lc.queue == nil {
		lc.queue = proto.GetEnvs()
	}
	lc.queue = append(lc.queue, env)
	lc.qmu.Unlock()
	select {
	case lc.wake <- struct{}{}:
	default: // a wake-up is already pending; the flusher will see this envelope
	}
}

// flushLoop is the connection's flusher goroutine: woken by send, it
// drains the outbound queue to empty, shipping each drained batch as one
// multi-envelope frame. Keeping it off the operations' goroutines keeps
// an op's S-server fan-out non-blocking — the op never flushes other
// ops' traffic on its own critical path — while everything enqueued
// between wake-ups coalesces. Queue slabs come from the proto pool and
// return to it through SendBatch's ownership transfer, so steady-state
// queuing allocates nothing.
func (lc *linkConn) flushLoop() {
	for {
		select {
		case <-lc.l.c.closed:
			return
		case <-lc.wake:
		}
		// Yield once before draining: operations runnable right now get
		// to enqueue their sends first, so the drain below ships them all
		// in one frame instead of chasing them one frame at a time — a
		// scheduler-granularity accumulation window, not a timer.
		runtime.Gosched()
		for {
			lc.qmu.Lock()
			batch := lc.queue
			lc.queue = nil
			lc.qmu.Unlock()
			if len(batch) == 0 {
				if batch != nil {
					proto.PutEnvs(batch)
				}
				break
			}
			conn, err := lc.get()
			if err != nil {
				// Link down: drop the batch, rounds re-send on their tick.
				proto.PutEnvs(batch)
				continue
			}
			lc.l.c.flushBatch.Observe(int64(len(batch)))
			if err := conn.SendBatch(batch); err != nil {
				lc.drop(conn)
			}
		}
	}
}

// get returns the live connection if there is one; with none, it kicks
// off an asynchronous (re)dial — respecting the backoff window — and
// reports the connection as down. Senders therefore never stall behind a
// black-holed replica: the round's retry ticker re-attempts once the
// dial settles. Abandon and Close are likewise never blocked (the dial
// runs outside the mutex, in its own goroutine).
func (lc *linkConn) get() (Conn, error) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.down {
		return nil, ErrClosed
	}
	if lc.conn != nil {
		return lc.conn, nil
	}
	if lc.dialDone == nil && !time.Now().Before(lc.nextDial) {
		done := make(chan struct{})
		lc.dialDone = done
		go lc.redial(done)
	}
	return nil, fmt.Errorf("transport: %s down", lc.l.addr)
}

// redial performs one dial attempt and settles the connection's state;
// done is closed when the outcome (success, failure + backoff) is
// visible.
func (lc *linkConn) redial(done chan struct{}) {
	conn, err := lc.l.dial(lc.l.addr)

	lc.mu.Lock()
	lc.dialDone = nil
	close(done)
	if lc.down {
		lc.mu.Unlock()
		if err == nil {
			conn.Close()
		}
		return
	}
	if err != nil {
		lc.fails++
		backoff := dialBackoffMin << (lc.fails - 1)
		if backoff > dialBackoffMax || backoff <= 0 {
			backoff = dialBackoffMax
		}
		lc.nextDial = time.Now().Add(backoff)
		lc.mu.Unlock()
		return
	}
	lc.fails = 0
	lc.conn = conn
	lc.mu.Unlock()
	go lc.recvLoop(conn)
}

// connect resolves the link to a definite "live or not right now": every
// connection triggers a dial if one is due and waits for in-flight dials
// to settle (each bounded by the dialer's own timeout). The link counts
// as reachable if at least one connection is live.
func (l *serverLink) connect() bool {
	live := false
	for _, lc := range l.conns {
		if lc.connect() {
			live = true
		}
	}
	return live
}

func (lc *linkConn) connect() bool {
	for {
		lc.mu.Lock()
		if lc.down {
			lc.mu.Unlock()
			return false
		}
		if lc.conn != nil {
			lc.mu.Unlock()
			return true
		}
		if done := lc.dialDone; done != nil {
			lc.mu.Unlock()
			<-done
			continue
		}
		if time.Now().Before(lc.nextDial) {
			lc.mu.Unlock()
			return false
		}
		done := make(chan struct{})
		lc.dialDone = done
		go lc.redial(done)
		lc.mu.Unlock()
	}
}

// drop forgets a failed connection so the next send redials.
func (lc *linkConn) drop(conn Conn) {
	lc.mu.Lock()
	if lc.conn == conn {
		lc.conn = nil
	}
	lc.mu.Unlock()
	conn.Close()
}

// recvLoop pumps one connection's replies into the dispatcher until the
// connection dies. Batched replies are drained frame-at-a-time, so a
// server's coalesced answers cost one read here too; the drained slab is
// recycled once every envelope has been dispatched (dispatch copies
// nothing out that outlives the call — the reply payload is a decoded
// message owned by the envelope, handed on by pointer).
func (lc *linkConn) recvLoop(conn Conn) {
	for {
		envs, err := conn.RecvBatch()
		if err != nil {
			lc.drop(conn)
			return
		}
		for _, env := range envs {
			lc.l.c.dispatch(env)
		}
		proto.PutEnvs(envs)
	}
}
