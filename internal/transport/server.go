package transport

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fastreg/internal/keyreg"
	"fastreg/internal/obs"
	"fastreg/internal/proto"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/shard"
	"fastreg/internal/types"
)

// DefaultServerShards partitions a replica's key space to bound lock
// contention between keys that arrive on different connections — the same
// default as netsim.MultiLive.
const DefaultServerShards = shard.Default

// Server hosts ONE replica (server s_i) of a register cluster behind a
// Listener — the process cmd/regserver runs. Every key's protocol state
// lives in a sharded, lazily-created keyreg.ServerRegistry, the same
// registry netsim.MultiLive gives each of its in-process replicas; the
// servers of the paper's protocols never talk to each other, so a replica
// is complete with just client-facing connections.
//
// Each accepted connection gets one receive-loop goroutine that drains
// whole frames — a client's coalesced batch arrives as one multi-envelope
// frame — groups the batch by key shard, runs each group under a single
// acquisition of its shard lock (which serializes Handle per key across
// connections, the protocol's server-state requirement), and replies in
// kind: every reply the batch produced rides back in one batched frame on
// the connection's coalescing writer.
type Server struct {
	id       types.ProcID
	cfg      quorum.Config
	protocol register.Protocol

	reg       *keyreg.ServerRegistry
	nshards   int
	maxRounds int // longest operation (in rounds) the protocol promises

	// nworkers configures the shard-affine worker pool (WithServerWorkers):
	// > 0 runs that many shard-owned workers, < 0 forces the inline
	// per-connection path, 0 picks the default (a GOMAXPROCS-sized pool on
	// multicore, inline on a single CPU where handoffs cost more than the
	// affinity buys). workers[i] is worker i's inbox.
	nworkers int
	workers  []chan workItem

	// evictTTL (off unless WithServerEviction) drives the sweeper; the
	// eviction epoch itself lives in the registry.
	evictTTL time.Duration

	// capture (off unless WithServerCapture) observes every handled
	// request together with the reply it produced — the audit trace hook.
	capture func(env proto.Envelope, reply proto.Message, seq uint64)

	// staleAfter (off unless WithStaleReadFault) makes the replica serve
	// reads the initial value once a key has seen that many requests.
	staleAfter int64

	// Observability (all zero/nil when disabled — WithServerObs): request
	// throughput, batch fan-in and reply coalescing histograms, a
	// slow-batch counter past slowBatch, and per-worker busy flags that
	// back the occupancy gauges.
	obsReg     *obs.Registry
	requests   *obs.Counter
	batchFanin *obs.Histogram
	replyBatch *obs.Histogram
	slowCount  *obs.Counter
	slowBatch  time.Duration
	busy       []atomic.Int64 // 1 while worker i is inside handleReqs

	lis Listener

	mu     sync.Mutex
	conns  map[Conn]struct{} // guardedby: mu
	closed bool              // guardedby: mu
	stop   chan struct{}

	wg sync.WaitGroup
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithServerShards sets the key-space shard count (default
// DefaultServerShards).
func WithServerShards(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.nshards = n
		}
	}
}

// WithServerWorkers configures the shard-affine worker pool: n > 0 runs a
// fixed pool of n workers, each owning an interleaved stripe of the key
// shards (shard i belongs to worker i mod n); n < 0 forces the inline
// per-connection serving path; n = 0 (the default) sizes the pool to
// GOMAXPROCS on multicore machines and serves inline on a single CPU.
//
// With a pool, each connection's receive loop only decodes and partitions:
// the requests of a drained batch are handed, shard group by shard group,
// to the worker that owns the shard, so one key's protocol state is only
// ever touched from one goroutine — the shard lock stays uncontended and
// the state stays cache-local — while the batch's replies flow back
// through the connection's reply collector, which coalesces everything
// its inbox holds into one batched frame (one syscall) per drain. The
// observable contract is identical to inline serving: requests of one
// connection are handled in arrival order per key, and replies are
// correlated by operation, not by position.
func WithServerWorkers(n int) ServerOption {
	return func(s *Server) { s.nworkers = n }
}

// WithServerEviction enables the idle-key sweep, the network replica's
// counterpart of netsim's WithMultiEviction: every ttl, keys untouched
// for at least one full ttl window (and at most two) are evicted from the
// replica's sharded state maps, so a long-running regserver facing a
// churning key population stops growing without bound.
//
// Eviction gives keys TTL-expiry semantics (Redis EXPIRE, Cassandra TTL),
// and the expiry is effectively CLUSTER-wide: a fleet deployed with the
// same ttl evicts a cluster-idle key at every replica, so its committed
// value is gone and later reads return never-written. That is the
// feature's contract — expiry, not caching — so enable it only for
// workloads whose idle keys are disposable, and keep it off (the
// default) for durable registers; S−t durable eviction needs the
// state-transfer story the ROADMAP tracks. Two further caveats versus
// MultiLive's variant: client-side protocol state lives in other
// processes and is NOT dropped with the key, and client-side histories
// likewise outlive the expiry — an atomicity check over a history that
// spans an eviction will (correctly, from its point of view) flag the
// expired write, so don't mix -check with keys that idle past the TTL.
//
// Keys with an operation mid-flight (a query-then-update operation whose
// final round has not arrived) are never evicted; mid-flight records
// left behind by crashed clients age out after one full window. Choose a
// ttl far above operation latency; ttl must be positive.
func WithServerEviction(ttl time.Duration) ServerOption {
	return func(s *Server) {
		if ttl > 0 {
			s.evictTTL = ttl
		}
	}
}

// WithServerCapture streams the replica's handled requests into fn — one
// call per request, with the reply the protocol logic produced (nil when
// it stayed silent). This is the replica half of the audit subsystem's
// capture layer: fn is typically an audit.Writer appending
// TraceServerHandle records to the replica's trace log (regserver
// -capture). fn runs on the serving goroutines after the shard lock is
// released but BEFORE the batch's replies are sent — paired with the
// audit writer's per-record flush on replica logs, that gives
// durable-before-visible capture: a value no client has observed yet
// cannot be missing from the log, even across kill -9. Calls for one key
// arrive in handle order within a batch but may interleave across
// batches — seq restores the true order: it is the key's handled counter
// read under the shard lock, a per-(replica,key) total order the
// served-value cross-check sorts by, which log position cannot give.
func WithServerCapture(fn func(env proto.Envelope, reply proto.Message, seq uint64)) ServerOption {
	return func(s *Server) { s.capture = fn }
}

// WithServerObs wires the replica into an observability registry: request
// throughput ("server.requests"), batch fan-in and reply-coalesce size
// histograms, the live key count and per-worker occupancy as pull
// gauges, and — with slowBatch > 0 — a counter of shard batches whose
// handling exceeded that duration. A nil registry disables everything
// here at the cost of one branch per would-be record.
func WithServerObs(reg *obs.Registry, slowBatch time.Duration) ServerOption {
	return func(s *Server) {
		s.obsReg = reg
		s.slowBatch = slowBatch
	}
}

// WithStaleReadFault injects a deterministic replica fault for the audit
// pipeline's negative tests (regserver -fault-stale-after): once a key
// has seen n requests at this replica, the replica answers that key's
// queries and fast reads with the INITIAL value while still
// acknowledging writes it no longer applies — a frozen, lying replica.
// Run a whole fleet with the same n and a read that lands after the
// poison point returns stale data, which the capture/merge/check
// pipeline must flag as an atomicity violation. Never enable this
// outside fault-injection testing; n must be positive.
func WithStaleReadFault(n int64) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.staleAfter = n
		}
	}
}

// NewServer starts replica s_replica (1-based) of a cfg-shaped cluster on
// lis. It returns immediately; Close stops accepting, drops live
// connections and waits for the serving goroutines.
func NewServer(cfg quorum.Config, p register.Protocol, replica int, lis Listener, opts ...ServerOption) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		id:       types.Server(replica),
		cfg:      cfg,
		protocol: p,
		nshards:  DefaultServerShards,
		lis:      lis,
		conns:    make(map[Conn]struct{}),
		stop:     make(chan struct{}),
	}
	s.maxRounds = p.WriteRounds()
	if r := p.ReadRounds(); r > s.maxRounds {
		s.maxRounds = r
	}
	for _, o := range opts {
		o(s)
	}
	s.reg = keyreg.NewServerRegistry(s.nshards, func() register.ServerLogic {
		return p.NewServer(s.id, cfg)
	})
	if s.nworkers == 0 {
		// Auto: affinity pays for its two handoffs only when workers can
		// actually run in parallel with the connection loops.
		if n := runtime.GOMAXPROCS(0); n > 1 {
			s.nworkers = n
		}
	}
	if s.nworkers > s.nshards {
		s.nworkers = s.nshards
	}
	// Metrics wire up before any serving goroutine starts, so the workers
	// see a settled busy slice and the gauges never race construction.
	if s.obsReg != nil {
		s.requests = s.obsReg.Counter("server.requests")
		s.batchFanin = s.obsReg.Histogram("server.batch_fanin")
		s.replyBatch = s.obsReg.Histogram("server.reply_batch")
		s.slowCount = s.obsReg.Counter("server.slow_batches")
		s.obsReg.GaugeFunc("server.keys", func() int64 { return int64(s.reg.KeyCount()) })
		if s.nworkers > 0 {
			s.busy = make([]atomic.Int64, s.nworkers)
			for i := range s.busy {
				s.obsReg.GaugeFunc(fmt.Sprintf("server.worker.%d.busy", i), s.busy[i].Load)
			}
			s.obsReg.GaugeFunc("server.workers.busy", func() int64 {
				var n int64
				for i := range s.busy {
					n += s.busy[i].Load()
				}
				return n
			})
		}
	}
	if s.nworkers > 0 {
		s.workers = make([]chan workItem, s.nworkers)
		for i := range s.workers {
			s.workers[i] = make(chan workItem, workerInboxBuf)
			s.wg.Add(1)
			go s.workerLoop(i, s.workers[i])
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	if s.evictTTL > 0 {
		s.wg.Add(1)
		go s.sweeper()
	}
	return s, nil
}

// ID returns the replica's process identity.
func (s *Server) ID() types.ProcID { return s.id }

// Addr returns the listener's bound address.
func (s *Server) Addr() string { return s.lis.Addr() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// connReq is one request of a drained batch with its precomputed shard.
type connReq struct {
	env   proto.Envelope
	shard int
}

// workerInboxBuf bounds a shard worker's inbox (work items, i.e. shard
// groups); connection loops briefly block when a worker falls this far
// behind, the same backpressure a busy inline handler applies.
const workerInboxBuf = 64

// collectorInboxBuf bounds a connection's reply-collector inbox (reply
// groups). Workers block on a full inbox only while the collector is
// stuck writing to a dead peer, which tcpSendTimeout bounds.
const collectorInboxBuf = 64

// reqsPool recycles the per-worker shard-group slices the connection
// loops partition batches into.
var reqsPool = sync.Pool{New: func() any { return new([]connReq) }}

func getReqs() []connReq { return (*reqsPool.Get().(*[]connReq))[:0] }

func putReqs(reqs []connReq) {
	clear(reqs[:cap(reqs)]) // drop payload/key references before pooling
	reqsPool.Put(&reqs)
}

// workItem is one connection's shard group handed to the owning worker:
// the requests (all mapping to shards the worker owns) plus the reply
// collector of the connection they arrived on.
type workItem struct {
	reqs []connReq
	rc   *replyCollector
}

// replyCollector is one connection's reply path in worker-pool mode:
// workers deliver each group's replies to its inbox, and the collector
// goroutine coalesces everything the inbox holds into one batched frame —
// one syscall per drain, no matter how many workers contributed.
type replyCollector struct {
	conn Conn
	in   chan []proto.Envelope
	done chan struct{} // closed when the connection's serve loop exits
}

// deliver hands one reply group to the collector, dropping it if the
// connection or server is shutting down (the client re-sends on its retry
// tick; replies are best-effort like any other message). Ownership of
// replies transfers here on every path: enqueued slabs are recycled by
// the collector loop, dropped ones immediately.
//
//lint:consumes replies
func (rc *replyCollector) deliver(replies []proto.Envelope, stop <-chan struct{}) {
	select {
	case rc.in <- replies:
	case <-rc.done:
		proto.PutEnvs(replies)
	case <-stop:
		proto.PutEnvs(replies)
	}
}

func (rc *replyCollector) loop(s *Server) {
	defer s.wg.Done()
	for {
		select {
		case <-rc.done:
			return
		case out := <-rc.in:
		drain:
			for {
				select {
				case more := <-rc.in:
					out = append(out, more...)
					proto.PutEnvs(more)
				default:
					break drain
				}
			}
			// A send error means the connection died; keep draining (and
			// failing fast) until the serve loop notices and closes done,
			// so workers never wedge behind this connection.
			s.replyBatch.Observe(int64(len(out)))
			_ = rc.conn.SendBatch(out)
		}
	}
}

// workerLoop is one shard-affine worker: it owns an interleaved stripe of
// the key shards and is the only goroutine that handles requests for
// them, so the shard lock it takes is never contended by other handlers
// and a shard's protocol state stays on one core.
func (s *Server) workerLoop(idx int, inbox chan workItem) {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case it := <-inbox:
			if s.busy != nil {
				s.busy[idx].Store(1)
			}
			replies := s.handleReqs(it.reqs, proto.GetEnvs())
			if s.busy != nil {
				s.busy[idx].Store(0)
			}
			putReqs(it.reqs)
			if len(replies) == 0 {
				proto.PutEnvs(replies)
				continue
			}
			it.rc.deliver(replies, s.stop)
		}
	}
}

// serveConn is one connection's receive loop. Inline (no worker pool):
// drain the next frame's whole batch, run it shard group by shard group,
// send every reply back in one batched frame. With the shard-affine pool:
// decode and partition only — each shard group goes to the worker owning
// that shard, and replies return through the connection's collector.
func (s *Server) serveConn(conn Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	if s.nworkers > 0 {
		s.serveConnWorkers(conn)
		return
	}
	var reqs []connReq // reused across frames
	for {
		envs, err := conn.RecvBatch()
		if err != nil {
			return // peer gone or we closed
		}
		reqs = reqs[:0]
		for _, env := range envs {
			if env.Payload == nil || env.IsReply {
				continue // not a request; drop like a corrupt frame
			}
			reqs = append(reqs, connReq{env: env, shard: s.reg.ShardIndex(env.Key)})
		}
		proto.PutEnvs(envs)
		if len(reqs) == 0 {
			continue
		}
		replies := s.handleReqs(reqs, proto.GetEnvs())
		if len(replies) == 0 {
			proto.PutEnvs(replies)
			continue
		}
		s.replyBatch.Observe(int64(len(replies)))
		if err := conn.SendBatch(replies); err != nil {
			return
		}
	}
}

// serveConnWorkers is the worker-pool serve loop: decode, partition by
// owning worker, hand off, repeat. Groups reach each worker in arrival
// order (one channel per worker, pushed in order), so per-key handle
// order within a connection is preserved exactly as inline serving
// preserves it.
func (s *Server) serveConnWorkers(conn Conn) {
	rc := &replyCollector{
		conn: conn,
		in:   make(chan []proto.Envelope, collectorInboxBuf),
		done: make(chan struct{}),
	}
	defer close(rc.done)
	s.wg.Add(1)
	go rc.loop(s)
	byWorker := make([][]connReq, s.nworkers)
	touched := make([]int, 0, s.nworkers)
	for {
		envs, err := conn.RecvBatch()
		if err != nil {
			return // peer gone or we closed
		}
		for _, env := range envs {
			if env.Payload == nil || env.IsReply {
				continue // not a request; drop like a corrupt frame
			}
			shard := s.reg.ShardIndex(env.Key)
			w := shard % s.nworkers
			if byWorker[w] == nil {
				byWorker[w] = getReqs()
				touched = append(touched, w)
			}
			byWorker[w] = append(byWorker[w], connReq{env: env, shard: shard})
		}
		proto.PutEnvs(envs)
		for _, w := range touched {
			it := workItem{reqs: byWorker[w], rc: rc}
			byWorker[w] = nil
			select {
			case s.workers[w] <- it:
			case <-s.stop:
				putReqs(it.reqs)
				return
			}
		}
		touched = touched[:0]
	}
}

// handleReqs sorts the requests into runs of equal shard (stable, so
// per-key arrival order is preserved) and handles each run under one
// acquisition of its shard lock — the same batching payoff as
// netsim.MultiLive's inbox drain. Correlated replies are appended to out
// (typically a pooled slab) in request order per shard run.
//
//lint:captureflush
func (s *Server) handleReqs(reqs []connReq, out []proto.Envelope) []proto.Envelope {
	s.requests.Add(int64(len(reqs)))
	s.batchFanin.Observe(int64(len(reqs)))
	var t0 time.Time
	if s.slowBatch > 0 {
		t0 = time.Now()
	}
	if len(reqs) > 1 {
		sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].shard < reqs[j].shard })
	}
	epoch := s.reg.Epoch()
	var caps []capturedHandle // only allocated when capture is on
	for start := 0; start < len(reqs); {
		end := start + 1
		for end < len(reqs) && reqs[end].shard == reqs[start].shard {
			end++
		}
		sh := s.reg.Shard(reqs[start].shard)
		sh.Lock()
		for _, r := range reqs[start:end] {
			sk := sh.GetLocked(r.env.Key)
			sk.Touch(r.env, epoch, s.maxRounds)
			reply := sk.Logic.Handle(r.env.From, r.env.Payload)
			if s.staleAfter > 0 && sk.Handled() > s.staleAfter {
				reply = staleReply(reply)
			}
			if s.capture != nil {
				caps = append(caps, capturedHandle{env: r.env, reply: reply, seq: uint64(sk.Handled())})
			}
			if reply == nil {
				continue
			}
			// The reply echoes the request's epoch tag and carries its
			// weight home (Huang's weight forwarding): the client harvests
			// it on dispatch, so most of an op's weight returns with the
			// quorum instead of waiting for op completion.
			out = append(out, proto.Envelope{
				From:    s.id,
				To:      r.env.From,
				Key:     r.env.Key,
				OpID:    r.env.OpID,
				Round:   r.env.Round,
				IsReply: true,
				Epoch:   r.env.Epoch,
				Weight:  r.env.Weight,
				Payload: reply,
			})
		}
		sh.Unlock()
		start = end
	}
	// Emit capture records outside the shard locks (the trace writer does
	// its own locking and file I/O, which must not extend the protocol's
	// critical section) but BEFORE the replies ship — the collector or
	// caller sends them only after this returns, preserving the audit
	// layer's durable-before-visible contract in both serve modes.
	for _, c := range caps {
		s.capture(c.env, c.reply, c.seq)
	}
	if s.slowBatch > 0 && time.Since(t0) >= s.slowBatch {
		s.slowCount.Add(1)
	}
	return out
}

// capturedHandle is one (request, reply) pair queued for the capture
// callback while the shard lock is held.
type capturedHandle struct {
	env   proto.Envelope
	reply proto.Message
	seq   uint64
}

// staleReply is the WithStaleReadFault corruption: replies that carry
// values are frozen to the initial value; acks pass through, so writes
// still "succeed" while silently not taking effect.
func staleReply(reply proto.Message) proto.Message {
	switch reply.(type) {
	case proto.QueryAck:
		return proto.QueryAck{Val: types.InitialValue()}
	case proto.FastReadAck:
		return proto.FastReadAck{Vector: []proto.VectorEntry{{Val: types.InitialValue()}}}
	default:
		return reply
	}
}

// sweeper ticks the eviction epoch every TTL and evicts what went idle.
func (s *Server) sweeper() {
	defer s.wg.Done()
	t := time.NewTicker(s.evictTTL)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.Sweep()
		}
	}
}

// Sweep advances the eviction epoch and evicts every key untouched for a
// full epoch that has no operation mid-flight, deleting its protocol
// state under the shard lock (so no Handle can interleave). Mid-flight
// records older than the idle window are dropped as abandoned (their
// client crashed or timed out). Returns the number of keys evicted. The
// TTL sweeper calls this on its tick; tests and tooling may call it
// directly.
func (s *Server) Sweep() int { return s.reg.Sweep() }

// Value inspects the replica's stored value for key (tests and tooling;
// protocol code never calls it). ok is false when the key was never
// touched here.
func (s *Server) Value(key string) (types.Value, bool) { return s.reg.Value(key) }

// KeyCount reports how many keys the replica holds state for.
func (s *Server) KeyCount() int { return s.reg.KeyCount() }

// Close stops the replica: the listener closes, every live connection is
// dropped (clients see a dead socket, as if the process was killed), and
// all goroutines are joined. Safe to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.stop)
	conns := make([]Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.lis.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}
