package transport

import (
	"sync"

	"fastreg/internal/proto"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/shard"
	"fastreg/internal/types"
)

// DefaultServerShards partitions a replica's key space to bound lock
// contention between keys that arrive on different connections — the same
// default as netsim.MultiLive.
const DefaultServerShards = shard.Default

// Server hosts ONE replica (server s_i) of a register cluster behind a
// Listener — the process cmd/regserver runs. Every key's protocol state
// lives in sharded, lazily-created maps, exactly like one replica's slice
// of netsim.MultiLive; the servers of the paper's protocols never talk to
// each other, so a replica is complete with just client-facing
// connections.
//
// Each accepted connection gets one receive-loop goroutine; replies ride
// the connection's coalescing writer. The shard mutex serializes Handle
// per key across connections, which is the protocol's server-state
// requirement.
type Server struct {
	id       types.ProcID
	cfg      quorum.Config
	protocol register.Protocol

	nshards int
	shards  []*serverShard

	lis Listener

	mu     sync.Mutex
	conns  map[Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

type serverShard struct {
	mu   sync.Mutex
	regs map[string]register.ServerLogic
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithServerShards sets the key-space shard count (default
// DefaultServerShards).
func WithServerShards(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.nshards = n
		}
	}
}

// NewServer starts replica s_replica (1-based) of a cfg-shaped cluster on
// lis. It returns immediately; Close stops accepting, drops live
// connections and waits for the serving goroutines.
func NewServer(cfg quorum.Config, p register.Protocol, replica int, lis Listener, opts ...ServerOption) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		id:       types.Server(replica),
		cfg:      cfg,
		protocol: p,
		nshards:  DefaultServerShards,
		lis:      lis,
		conns:    make(map[Conn]struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	s.shards = make([]*serverShard, s.nshards)
	for i := range s.shards {
		s.shards[i] = &serverShard{regs: make(map[string]register.ServerLogic)}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// ID returns the replica's process identity.
func (s *Server) ID() types.ProcID { return s.id }

// Addr returns the listener's bound address.
func (s *Server) Addr() string { return s.lis.Addr() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn is one connection's receive loop: decode (done by the Conn),
// route by key to the shard, run the per-key protocol state machine under
// the shard lock, queue the correlated reply.
func (s *Server) serveConn(conn Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		env, err := conn.Recv()
		if err != nil {
			return // peer gone or we closed
		}
		if env.Payload == nil || env.IsReply {
			continue // not a request; drop like a corrupt frame
		}
		sh := s.shards[shard.Index(env.Key, s.nshards)]
		sh.mu.Lock()
		logic, ok := sh.regs[env.Key]
		if !ok {
			logic = s.protocol.NewServer(s.id, s.cfg)
			sh.regs[env.Key] = logic
		}
		reply := logic.Handle(env.From, env.Payload)
		sh.mu.Unlock()
		if reply == nil {
			continue
		}
		err = conn.Send(proto.Envelope{
			From:    s.id,
			To:      env.From,
			Key:     env.Key,
			OpID:    env.OpID,
			Round:   env.Round,
			IsReply: true,
			Payload: reply,
		})
		if err != nil {
			return
		}
	}
}

// Value inspects the replica's stored value for key (tests and tooling;
// protocol code never calls it). ok is false when the key was never
// touched here.
func (s *Server) Value(key string) (types.Value, bool) {
	sh := s.shards[shard.Index(key, s.nshards)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	logic, ok := sh.regs[key]
	if !ok {
		return types.Value{}, false
	}
	return logic.CurrentValue(), true
}

// KeyCount reports how many keys the replica holds state for.
func (s *Server) KeyCount() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.regs)
		sh.mu.Unlock()
	}
	return n
}

// Close stops the replica: the listener closes, every live connection is
// dropped (clients see a dead socket, as if the process was killed), and
// all goroutines are joined. Safe to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	conns := make([]Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.lis.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}
