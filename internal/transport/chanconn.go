package transport

import (
	"fmt"
	"sync"

	"fastreg/internal/proto"
)

// chanConnBuf bounds each direction of an in-process connection. Sends
// block when the peer is this far behind — the same backpressure a TCP
// socket buffer applies.
const chanConnBuf = 256

// ChanNetwork is the in-process transport: a namespace of listeners whose
// connections are paired envelope channels. It gives tests and examples
// the exact deployment shape of a TCP cluster — separate Server and
// Client values wired only through Conn — without any sockets.
type ChanNetwork struct {
	mu        sync.Mutex
	listeners map[string]*chanListener
}

// NewChanNetwork creates an empty in-process network.
func NewChanNetwork() *ChanNetwork {
	return &ChanNetwork{listeners: make(map[string]*chanListener)}
}

// Listen binds a listener at addr (any non-empty string).
func (n *ChanNetwork) Listen(addr string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("transport: address %q already bound", addr)
	}
	l := &chanListener{
		net:    n,
		addr:   addr,
		accept: make(chan *chanConn),
		closed: make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects to the listener bound at addr. It implements DialFunc.
func (n *ChanNetwork) Dial(addr string) (Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: dial %q: connection refused", addr)
	}
	client, server := chanPipe()
	select {
	case l.accept <- server:
		return client, nil
	case <-l.closed:
		return nil, fmt.Errorf("transport: dial %q: connection refused", addr)
	}
}

type chanListener struct {
	net    *ChanNetwork
	addr   string
	accept chan *chanConn
	closed chan struct{}
	once   sync.Once
}

func (l *chanListener) Accept() (Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.closed:
		return nil, ErrClosed
	}
}

func (l *chanListener) Addr() string { return l.addr }

func (l *chanListener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		l.net.mu.Lock()
		if l.net.listeners[l.addr] == l {
			delete(l.net.listeners, l.addr)
		}
		l.net.mu.Unlock()
	})
	return nil
}

// chanConn is one endpoint of an in-process connection: it sends on out
// and receives on in; its peer holds the channels swapped. closed is
// shared so either side's Close kills both directions at once, like a
// socket teardown.
type chanConn struct {
	in     <-chan proto.Envelope
	out    chan<- proto.Envelope
	closed chan struct{}
	once   *sync.Once
}

func chanPipe() (a, b *chanConn) {
	ab := make(chan proto.Envelope, chanConnBuf)
	ba := make(chan proto.Envelope, chanConnBuf)
	closed := make(chan struct{})
	once := &sync.Once{}
	a = &chanConn{in: ba, out: ab, closed: closed, once: once}
	b = &chanConn{in: ab, out: ba, closed: closed, once: once}
	return a, b
}

func (c *chanConn) Send(e proto.Envelope) error {
	select {
	case <-c.closed:
		return ErrClosed
	default:
	}
	select {
	case c.out <- e:
		return nil
	case <-c.closed:
		return ErrClosed
	}
}

func (c *chanConn) Recv() (proto.Envelope, error) {
	// Drain envelopes that arrived before the close: a real socket
	// delivers bytes already in its receive buffer.
	select {
	case e := <-c.in:
		return e, nil
	default:
	}
	select {
	case e := <-c.in:
		return e, nil
	case <-c.closed:
		return proto.Envelope{}, ErrClosed
	}
}

func (c *chanConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}
