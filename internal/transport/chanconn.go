package transport

import (
	"fmt"
	"sync"

	"fastreg/internal/proto"
)

// chanConnBuf bounds each direction of an in-process connection. Sends
// block when the peer is this far behind — the same backpressure a TCP
// socket buffer applies.
const chanConnBuf = 256

// ChanNetwork is the in-process transport: a namespace of listeners whose
// connections are paired envelope channels. It gives tests and examples
// the exact deployment shape of a TCP cluster — separate Server and
// Client values wired only through Conn — without any sockets.
type ChanNetwork struct {
	mu        sync.Mutex
	listeners map[string]*chanListener // guardedby: mu
}

// NewChanNetwork creates an empty in-process network.
func NewChanNetwork() *ChanNetwork {
	return &ChanNetwork{listeners: make(map[string]*chanListener)}
}

// Listen binds a listener at addr (any non-empty string).
func (n *ChanNetwork) Listen(addr string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("transport: address %q already bound", addr)
	}
	l := &chanListener{
		net:    n,
		addr:   addr,
		accept: make(chan *chanConn),
		closed: make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects to the listener bound at addr. It implements DialFunc.
func (n *ChanNetwork) Dial(addr string) (Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: dial %q: connection refused", addr)
	}
	client, server := chanPipe()
	select {
	case l.accept <- server:
		return client, nil
	case <-l.closed:
		return nil, fmt.Errorf("transport: dial %q: connection refused", addr)
	}
}

type chanListener struct {
	net    *ChanNetwork
	addr   string
	accept chan *chanConn
	closed chan struct{}
	once   sync.Once
}

func (l *chanListener) Accept() (Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.closed:
		return nil, ErrClosed
	}
}

func (l *chanListener) Addr() string { return l.addr }

func (l *chanListener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		l.net.mu.Lock()
		if l.net.listeners[l.addr] == l {
			delete(l.net.listeners, l.addr)
		}
		l.net.mu.Unlock()
	})
	return nil
}

// chanConn is one endpoint of an in-process connection: it sends on out
// and receives on in; its peer holds the channels swapped. The channels
// carry whole batches — a Send is a batch of one — so the in-process
// transport pays the same per-batch (not per-envelope) channel cost the
// TCP transport pays in frames, keeping netsim-vs-TCP benchmarks
// comparable. closed is shared so either side's Close kills both
// directions at once, like a socket teardown.
type chanConn struct {
	in     <-chan []proto.Envelope
	out    chan<- []proto.Envelope
	closed chan struct{}
	once   *sync.Once

	// pending holds the undelivered tail of the last batch received, so
	// Recv can hand out one envelope at a time.
	pendMu  sync.Mutex
	pending []proto.Envelope // guardedby: pendMu
}

func chanPipe() (a, b *chanConn) {
	ab := make(chan []proto.Envelope, chanConnBuf)
	ba := make(chan []proto.Envelope, chanConnBuf)
	closed := make(chan struct{})
	once := &sync.Once{}
	a = &chanConn{in: ba, out: ab, closed: closed, once: once}
	b = &chanConn{in: ab, out: ba, closed: closed, once: once}
	return a, b
}

func (c *chanConn) Send(e proto.Envelope) error {
	return c.SendBatch([]proto.Envelope{e})
}

// SendBatch hands the batch to the peer over the pipe. Ownership of the
// slice transfers here (the Conn contract): on delivery it moves to the
// receiving side, and on a closed connection the slab is recycled — the
// same always-consumes behaviour as tcpConn.SendBatch, so callers can
// treat both transports identically.
func (c *chanConn) SendBatch(envs []proto.Envelope) error {
	if len(envs) == 0 {
		return nil
	}
	select {
	case <-c.closed:
		proto.PutEnvs(envs)
		return ErrClosed
	default:
	}
	select {
	case c.out <- envs:
		return nil
	case <-c.closed:
		proto.PutEnvs(envs)
		return ErrClosed
	}
}

func (c *chanConn) Recv() (proto.Envelope, error) {
	c.pendMu.Lock()
	defer c.pendMu.Unlock()
	if len(c.pending) == 0 {
		batch, err := c.recvBatchLocked()
		if err != nil {
			return proto.Envelope{}, err
		}
		c.pending = batch
	}
	e := c.pending[0]
	c.pending = c.pending[1:]
	return e, nil
}

func (c *chanConn) RecvBatch() ([]proto.Envelope, error) {
	c.pendMu.Lock()
	defer c.pendMu.Unlock()
	if len(c.pending) > 0 {
		batch := c.pending
		c.pending = nil
		return batch, nil
	}
	batch, err := c.recvBatchLocked()
	if err != nil {
		return nil, err
	}
	// Opportunistically drain batches already queued behind the first —
	// the same receive-side coalescing the TCP conn gets from its read
	// buffer, so both transports hand servers comparably sized batches.
	for len(batch) < proto.MaxBatchEnvelopes {
		select {
		case more := <-c.in:
			batch = append(batch, more...)
			proto.PutEnvs(more) // contents copied into batch; recycle the slab
		default:
			return batch, nil
		}
	}
	return batch, nil
}

func (c *chanConn) recvBatchLocked() ([]proto.Envelope, error) {
	// Drain batches that arrived before the close: a real socket delivers
	// bytes already in its receive buffer.
	select {
	case b := <-c.in:
		return b, nil
	default:
	}
	select {
	case b := <-c.in:
		return b, nil
	case <-c.closed:
		return nil, ErrClosed
	}
}

func (c *chanConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}
