// Package transport runs the register protocols over real connections.
//
// The simulators in internal/netsim exercise the protocols over in-process
// channels; this package supplies the missing network layer: a small
// Conn/Listener abstraction with two implementations —
//
//   - in-process (NewChanNetwork): connections are paired channels, the
//     same reliable-link model netsim uses, behind the transport
//     interfaces. Tests and examples run whole "clusters" in one process
//     with zero sockets.
//   - TCP (ListenTCP/DialTCP): length-prefixed frames via the proto codec,
//     one goroutine pair per connection (reader + coalescing writer), so
//     replicas and clients can be separate processes on a real network.
//
// On top of the abstraction sit Server — one replica of a register fleet
// serving every key from sharded per-key protocol state, the process
// cmd/regserver hosts — and Client, which drives the round-based client
// operations against the fleet with reconnect-and-backoff and
// context-based deadlines.
//
// The unit moved is always a proto.Envelope: key-tagged, operation- and
// round-correlated, exactly what netsim.MultiLive passes in process. A
// register cluster therefore behaves identically over channels and over
// TCP; the loopback tests in this package prove the composition atomic
// with the internal/atomicity checker.
package transport

import (
	"errors"

	"fastreg/internal/proto"
)

// ErrClosed is returned by operations on a closed connection, listener,
// client or server.
var ErrClosed = errors.New("transport: closed")

// Conn is one bidirectional, ordered, reliable envelope stream — the link
// abstraction of the system model (Fig 1). Send and Recv are safe for
// concurrent use; envelopes sent on one side arrive on the other in order
// until either side closes, after which both return ErrClosed (or the
// underlying transport error).
type Conn interface {
	// Send queues the envelope for delivery. It may block for
	// backpressure but never for delivery acknowledgement.
	Send(proto.Envelope) error
	// SendBatch queues every envelope for delivery as one multi-envelope
	// frame — the message-level coalescing that lets concurrent rounds
	// share framing, encoding and flushes. Ownership of the slice
	// transfers to the connection; the caller must not reuse it. Envelope
	// order within the batch is preserved.
	SendBatch([]proto.Envelope) error
	// Recv blocks until the next envelope arrives or the connection dies.
	// Envelopes from a batch frame are delivered one at a time, in order.
	Recv() (proto.Envelope, error)
	// RecvBatch blocks like Recv but returns every envelope of the next
	// arriving frame at once (len ≥ 1), so a server can drain a client's
	// coalesced sends in one pass. Ownership of the returned slice passes
	// to the caller; receive loops that are done with every envelope may
	// recycle it via proto.PutEnvs (implementations fill pooled slabs, so
	// steady streams then stop allocating envelope storage per frame).
	RecvBatch() ([]proto.Envelope, error)
	// Close tears the connection down; pending Sends/Recvs unblock with
	// errors.
	Close() error
}

// Listener accepts inbound connections at an address.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr is the bound address in dialable form (resolves ":0" binds).
	Addr() string
}

// DialFunc opens one connection to an address. Implementations:
// DialTCP, and (*ChanNetwork).Dial for in-process clusters.
type DialFunc func(addr string) (Conn, error)
