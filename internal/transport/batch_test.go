package transport

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"fastreg/internal/atomicity"
	"fastreg/internal/crucialinfo"
	"fastreg/internal/mwabd"
	"fastreg/internal/proto"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/types"
	"fastreg/internal/w2r1"
)

// exerciseBatchConn sends mixed single and batched envelopes one way and
// checks both RecvBatch (which may merge frames already buffered — the
// opportunistic drain) and Recv (envelope at a time) deliver everything
// in order with nothing lost or duplicated.
func exerciseBatchConn(t *testing.T, a, b Conn) {
	t.Helper()
	mk := func(i int) proto.Envelope { return testEnvelope(i) }
	// One batch, then a single, then another batch.
	if err := a.SendBatch([]proto.Envelope{mk(0), mk(1), mk(2)}); err != nil {
		t.Fatalf("SendBatch: %v", err)
	}
	if err := a.Send(mk(3)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := a.SendBatch([]proto.Envelope{mk(4), mk(5)}); err != nil {
		t.Fatalf("SendBatch: %v", err)
	}
	const total = 6
	// Drain one RecvBatch (≥1 envelope, possibly several frames merged),
	// then take the rest one Recv at a time: order must be exact.
	got, err := b.RecvBatch()
	if err != nil {
		t.Fatalf("RecvBatch: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("RecvBatch returned an empty batch")
	}
	for len(got) < total {
		env, err := b.Recv()
		if err != nil {
			t.Fatalf("Recv after %d envelopes: %v", len(got), err)
		}
		got = append(got, env)
	}
	want := make([]proto.Envelope, total)
	for i := range want {
		want[i] = mk(i)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("delivery mismatch:\n got  %v\n want %v", got, want)
	}
}

func TestChanConnBatch(t *testing.T) {
	net := NewChanNetwork()
	lis, err := net.Listen("s1")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		accepted <- c
	}()
	client, err := net.Dial("s1")
	if err != nil {
		t.Fatal(err)
	}
	exerciseBatchConn(t, client, <-accepted)
}

func TestTCPConnBatch(t *testing.T) {
	lis, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		accepted <- c
	}()
	client, err := DialTCP(lis.Addr())
	if err != nil {
		t.Fatal(err)
	}
	server := <-accepted
	defer server.Close()
	defer client.Close()
	exerciseBatchConn(t, client, server)
}

// TestClusterSharedLinksBatching is the batching stress: ONE Client — so
// every identity shares the same S serverLinks and their coalescing
// queues — hosts 4 writers and 4 readers issuing concurrent operations
// over TCP. Concurrent rounds to the same server coalesce into batch
// frames; the combined per-key histories must still pass the atomicity
// checker. CI runs this under -race (the TestCluster prefix).
func TestClusterSharedLinksBatching(t *testing.T) {
	cfg := quorum.Config{S: 3, T: 1, R: 4, W: 4}
	_, addrs := startTCPCluster(t, cfg, mwabd.New())
	c, err := NewClient(cfg, mwabd.New(), addrs, DialTCP)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const opsPerClient = 25
	keys := []string{"alpha", "beta", "gamma"}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, cfg.W+cfg.R)
	for w := 1; w <= cfg.W; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerClient; i++ {
				if _, err := c.Write(ctx, keys[(w+i)%len(keys)], w, fmt.Sprintf("w%d-%d", w, i)); err != nil {
					errs <- fmt.Errorf("writer %d op %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	for r := 1; r <= cfg.R; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < opsPerClient; i++ {
				if _, err := c.Read(ctx, keys[(r+i)%len(keys)], r); err != nil {
					errs <- fmt.Errorf("reader %d op %d: %w", r, i, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	total := 0
	for _, key := range c.Keys() {
		h := c.History(key)
		if err := h.WellFormed(); err != nil {
			t.Fatalf("key %s: malformed history: %v", key, err)
		}
		res := atomicity.Check(h)
		if !res.Atomic {
			t.Fatalf("key %s: atomicity violated under batching: %s", key, res)
		}
		total += len(h.Completed())
	}
	if want := (cfg.W + cfg.R) * opsPerClient; total != want {
		t.Fatalf("completed %d operations, want %d", total, want)
	}
}

// TestClusterUnbatchedRegression pins the WithUnbatchedSends escape hatch
// to the same correctness bar as the batched default.
func TestClusterUnbatchedRegression(t *testing.T) {
	cfg := quorum.Config{S: 3, T: 1, R: 2, W: 2}
	_, addrs := startTCPCluster(t, cfg, mwabd.New())
	c, err := NewClient(cfg, mwabd.New(), addrs, DialTCP, WithUnbatchedSends())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 10; i++ {
		if _, err := c.Write(ctx, "k", 1+i%cfg.W, fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Read(ctx, "k", 1+i%cfg.R); err != nil {
			t.Fatal(err)
		}
	}
	if res := atomicity.Check(c.History("k")); !res.Atomic {
		t.Fatalf("unbatched run not atomic: %s", res)
	}
}

// TestTimedOutWriteRecordsTag pins the history side of the "trust the
// checker on timeouts" fix: a two-round write that times out AFTER its
// query round has already assigned its tag (and possibly landed updates
// on some servers). The failed op must be recorded with that tagged
// value — not the untagged invoke-time argument — or a later read of the
// value would be flagged read-from-nowhere. Servers here ack queries and
// swallow updates, forcing exactly that timeout.
func TestTimedOutWriteRecordsTag(t *testing.T) {
	cfg := quorum.Config{S: 3, T: 1, R: 1, W: 1}
	net := NewChanNetwork()
	addrs := make([]string, cfg.S)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("s%d", i+1)
		lis, err := net.Listen(addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { lis.Close() })
		id := types.Server(i + 1)
		go func() {
			for {
				conn, err := lis.Accept()
				if err != nil {
					return
				}
				go func() {
					for {
						envs, err := conn.RecvBatch()
						if err != nil {
							return
						}
						for _, env := range envs {
							if _, ok := env.Payload.(proto.Query); !ok {
								continue // swallow round-2 updates
							}
							conn.Send(proto.Envelope{
								From: id, To: env.From, Key: env.Key, OpID: env.OpID,
								Round: env.Round, IsReply: true,
								Payload: proto.QueryAck{Val: types.Value{}},
							})
						}
					}
				}()
			}
		}()
	}
	c, err := NewClient(cfg, mwabd.New(), addrs, net.Dial)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if _, err := c.Write(ctx, "k", 1, "v"); !errors.Is(err, register.ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	failed := c.History("k").Failed()
	if len(failed) != 1 {
		t.Fatalf("failed ops = %d, want 1", len(failed))
	}
	want := types.Value{Tag: types.Tag{TS: 1, WID: types.Writer(1)}, Data: "v"}
	if failed[0].Value != want {
		t.Fatalf("timed-out write recorded as %v, want %v", failed[0].Value, want)
	}
}

// TestServerEvictionMixedRounds checks protocols whose operations take
// fewer rounds than the protocol's max never leak or pin eviction
// records: a key whose last operations were such reads still evicts once
// idle. W2R1 has 1-round FastRead reads; FullInfo's reads START with a
// FastRead and END with a Query (the inverse of the query-then-update
// shape). The regressions were (a) keying "open" on the max round count,
// leaving every shorter op permanently open, and (b) keying on the
// payload kind alone, leaving every FullInfo read's final Query open.
func TestServerEvictionMixedRounds(t *testing.T) {
	for _, p := range []register.Protocol{w2r1.New(), crucialinfo.New()} {
		t.Run(p.Name(), func(t *testing.T) {
			cfg := quorum.Config{S: 5, T: 1, R: 2, W: 2}
			net := NewChanNetwork()
			servers := make([]*Server, cfg.S)
			addrs := make([]string, cfg.S)
			for i := 0; i < cfg.S; i++ {
				addrs[i] = fmt.Sprintf("s%d", i+1)
				lis, err := net.Listen(addrs[i])
				if err != nil {
					t.Fatal(err)
				}
				srv, err := NewServer(cfg, p, i+1, lis, WithServerEviction(time.Hour))
				if err != nil {
					t.Fatal(err)
				}
				servers[i] = srv
				t.Cleanup(srv.Close)
			}
			c, err := NewClient(cfg, p, addrs, net.Dial)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			ctx := context.Background()
			if _, err := c.Write(ctx, "k", 1, "v"); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				if _, err := c.Read(ctx, "k", 1); err != nil {
					t.Fatalf("read %d: %v", i, err)
				}
			}
			waitForValue(t, servers[0], "k", "v")
			servers[0].Sweep()
			if n := servers[0].Sweep(); n != 1 {
				t.Fatalf("idle %s key not evicted (swept %d); short-round ops may be leaking open records", p.Name(), n)
			}
		})
	}
}

// waitForValue polls until the replica stores data under key — i.e. the
// write's final round has been handled there, not just at a quorum.
func waitForValue(t *testing.T, s *Server, key, data string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if v, ok := s.Value(key); ok && v.Data == data {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica %s never stored %q under %q", s.ID(), data, key)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServerEviction drives keys through a replica, sweeps them idle, and
// checks (a) idle keys go, (b) keys with a mid-flight multi-round
// operation stay, (c) an evicted key is repopulated by normal protocol
// traffic.
func TestServerEviction(t *testing.T) {
	cfg := quorum.Config{S: 3, T: 1, R: 1, W: 1}
	net := NewChanNetwork()
	servers := make([]*Server, cfg.S)
	addrs := make([]string, cfg.S)
	for i := 0; i < cfg.S; i++ {
		addrs[i] = fmt.Sprintf("s%d", i+1)
		lis, err := net.Listen(addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		// Enormous TTL: the ticking sweeper never fires, the test drives
		// Sweep() by hand.
		srv, err := NewServer(cfg, mwabd.New(), i+1, lis, WithServerEviction(time.Hour))
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		t.Cleanup(srv.Close)
	}
	c, err := NewClient(cfg, mwabd.New(), addrs, net.Dial)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	if _, err := c.Write(ctx, "idle", 1, "v1"); err != nil {
		t.Fatal(err)
	}
	// The write returns on a 2-of-3 quorum; wait for its final round to
	// land on s1 too, or the sweep would (correctly) hold the key as
	// mid-flight.
	waitForValue(t, servers[0], "idle", "v1")
	if n := servers[0].KeyCount(); n != 1 {
		t.Fatalf("KeyCount = %d, want 1", n)
	}
	// Two sweeps pass a full idle window: the key must be evicted.
	if n := servers[0].Sweep(); n != 0 {
		t.Fatalf("first sweep evicted %d keys, want 0 (not yet a full window idle)", n)
	}
	if n := servers[0].Sweep(); n != 1 {
		t.Fatalf("second sweep evicted %d keys, want 1", n)
	}
	if n := servers[0].KeyCount(); n != 0 {
		t.Fatalf("KeyCount after eviction = %d, want 0", n)
	}

	// Mid-flight guard: deliver only round 1 of a write directly, then
	// sweep twice — the key must survive while the op is open.
	conn, err := net.Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(proto.Envelope{
		From: types.Writer(1), To: servers[0].ID(), Key: "inflight", OpID: 99, Round: 1,
		Payload: proto.Query{},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); err != nil { // round-1 reply proves it was handled
		t.Fatal(err)
	}
	servers[0].Sweep()
	if n := servers[0].Sweep(); n != 0 {
		t.Fatalf("sweep evicted %d keys, want 0 (operation mid-flight)", n)
	}
	if n := servers[0].KeyCount(); n != 1 {
		t.Fatalf("mid-flight key evicted (KeyCount %d)", n)
	}
	// The final round closes the op; after a fresh idle window it goes.
	if err := conn.Send(proto.Envelope{
		From: types.Writer(1), To: servers[0].ID(), Key: "inflight", OpID: 99, Round: 2,
		Payload: proto.Update{Val: types.Value{Tag: types.Tag{TS: 1, WID: types.Writer(1)}, Data: "x"}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); err != nil {
		t.Fatal(err)
	}
	servers[0].Sweep()
	if n := servers[0].Sweep(); n != 1 {
		t.Fatalf("sweep after final round evicted %d keys, want 1", n)
	}

	// Evicted state is repopulated by normal traffic, like a restarted
	// replica: a write and read of the evicted key still work and agree.
	for i := range servers {
		for servers[i].Sweep() > 0 {
		}
	}
	if _, err := c.Write(ctx, "idle", 1, "v2"); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Read(ctx, "idle", 1); err != nil || v.Data != "v2" {
		t.Fatalf("read after eviction: %v %v", v, err)
	}
}
