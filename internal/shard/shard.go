// Package shard is the single definition of the key → shard partition
// used on both sides of the system: netsim.MultiLive's in-process fleet
// and the transport layer's Server/Client. One definition keeps the
// cross-stack invariant — a key lives at the same shard index everywhere
// — true by construction.
package shard

// Default is the shard count runtimes use unless configured otherwise.
const Default = 16

// Index maps a key to a shard in [0, shards). FNV-1a, inlined to keep
// the hot path allocation-free.
func Index(key string, shards int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return int(h % uint32(shards))
}
