package integration_test

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestMultiProcessAudit is the audit subsystem's acceptance scenario as
// real processes: a 3-replica regserver fleet and two regclient
// processes, all capturing trace logs, verified offline by regaudit —
// then the same topology with fault-injected (frozen, lying) replicas,
// which regaudit must flag as VIOLATED. This is the deployment shape the
// in-process tests cannot cover: multiple OS processes with no shared
// clock, joined only by their logs.
func TestMultiProcessAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives real binaries; skipped with -short")
	}
	bins := buildBinaries(t)

	t.Run("CleanRunChecksClean", func(t *testing.T) {
		dir := t.TempDir()
		cluster, stop := startFleet(t, bins, dir, nil)
		defer stop()

		// Two client processes contend on the SAME keys (shared
		// -keyprefix) with partitioned identities — the multi-client
		// history only the merged check can verify. Each regclient runs
		// the merged check itself (-capture + -check) and must exit 0.
		runClient(t, bins, cluster, dir, 0,
			"-wbase", "0", "-wn", "2", "-rbase", "0", "-rn", "2")
		runClient(t, bins, cluster, dir, 0,
			"-wbase", "2", "-rbase", "2")

		stop() // SIGTERM closes the replicas' trace logs

		out, code := runAudit(t, bins, dir)
		if code != 0 {
			t.Fatalf("regaudit check exit %d:\n%s", code, out)
		}
		if !strings.Contains(out, "verdict: CLEAN") {
			t.Fatalf("no clean verdict:\n%s", out)
		}
		if !strings.Contains(out, "3/3 replicas") {
			t.Fatalf("expected full replica coverage:\n%s", out)
		}
	})

	t.Run("StaleReadFaultFlaggedViolated", func(t *testing.T) {
		dir := t.TempDir()
		// Every replica freezes each key after 4 handled requests: the
		// scripted workload's write and first read pass, the second read
		// is served the initial value — a deterministic stale read.
		cluster, stop := startFleet(t, bins, dir, []string{"-fault-stale-after", "4"})
		defer stop()

		runClient(t, bins, cluster, dir, 0,
			"-wn", "1", "-rn", "1", "-writes", "1", "-reads", "2",
			"-keys", "1", "-sequential", "-check=false")

		stop()

		out, code := runAudit(t, bins, dir)
		if code != 2 {
			t.Fatalf("regaudit check exit %d, want 2 (VIOLATED):\n%s", code, out)
		}
		if !strings.Contains(out, "VIOLATED") || !strings.Contains(out, "(binding)") {
			t.Fatalf("expected a binding VIOLATED verdict:\n%s", out)
		}
	})
}

// buildBinaries compiles regserver, regclient and regaudit (with the
// race detector, so the multi-process path gets the same scrutiny the
// in-process tests do) into a temp dir shared by the subtests.
func buildBinaries(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cmd := exec.Command("go", "build", "-race", "-o", dir,
		"fastreg/cmd/regserver", "fastreg/cmd/regclient", "fastreg/cmd/regaudit")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return dir
}

// shapeArgs is the cluster shape every process must agree on.
func shapeArgs(cluster string) []string {
	return []string{"-cluster", cluster, "-t", "1", "-writers", "4", "-readers", "4"}
}

// startFleet launches 3 regservers capturing into dir and waits until
// all listen. stop (idempotent) SIGTERMs them and waits, so their trace
// logs are flushed and closed.
func startFleet(t *testing.T, bins, dir string, extra []string) (cluster string, stop func()) {
	t.Helper()
	addrs := make([]string, 3)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", freePort(t))
	}
	cluster = strings.Join(addrs, ",")
	procs := make([]*exec.Cmd, len(addrs))
	for i := range addrs {
		args := append(shapeArgs(cluster), "-replica", fmt.Sprint(i+1), "-capture", dir)
		args = append(args, extra...)
		cmd := exec.Command(filepath.Join(bins, "regserver"), args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		procs[i] = cmd
	}
	stopped := false
	stop = func() {
		if stopped {
			return
		}
		stopped = true
		for _, p := range procs {
			p.Process.Signal(syscall.SIGTERM)
		}
		for _, p := range procs {
			p.Wait()
		}
	}
	// Wait for every replica to accept connections.
	for _, a := range addrs {
		deadline := time.Now().Add(10 * time.Second)
		for {
			c, err := net.DialTimeout("tcp", a, time.Second)
			if err == nil {
				c.Close()
				break
			}
			if time.Now().After(deadline) {
				stop()
				t.Fatalf("replica %s never came up", a)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	return cluster, stop
}

// runClient runs one regclient process to completion, asserting its exit
// code. The shared -keyprefix puts every client process on the same keys.
func runClient(t *testing.T, bins, cluster, dir string, wantExit int, extra ...string) {
	t.Helper()
	args := append(shapeArgs(cluster),
		"-capture", dir, "-keyprefix", "ci", "-writes", "30", "-reads", "30",
		"-keys", "6", "-timeout", "30s")
	args = append(args, extra...)
	cmd := exec.Command(filepath.Join(bins, "regclient"), args...)
	out, err := cmd.CombinedOutput()
	if code := exitCode(err); code != wantExit {
		t.Fatalf("regclient exit %d, want %d:\n%s", code, wantExit, out)
	}
}

// runAudit runs `regaudit check dir` and returns its output + exit code.
func runAudit(t *testing.T, bins, dir string) (string, int) {
	t.Helper()
	cmd := exec.Command(filepath.Join(bins, "regaudit"), "check", dir)
	out, err := cmd.CombinedOutput()
	return string(out), exitCode(err)
}

func exitCode(err error) int {
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	return -1
}

// freePort grabs an ephemeral port. The listener is closed before the
// server binds it — a tiny window another process could steal it, which
// a test rerun absorbs.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}
