package integration_test

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestFleetMetricsEndpoint boots a real 3-replica fleet with -debug-addr
// on every process, drives a long regclient workload, and scrapes every
// /metrics endpoint MID-WORKLOAD — the observability acceptance scenario:
// per-protocol op counters and latency percentiles on the client, request
// counters and per-shard worker-occupancy gauges on the replicas, all
// over plain HTTP with no shared process state.
func TestFleetMetricsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives real binaries; skipped with -short")
	}
	bins := buildBinaries(t)

	// 3 replicas, each with its own debug address and an explicit
	// 2-worker pool (auto would fall back to inline handling on a
	// single-CPU runner, and inline mode has no worker gauges).
	addrs := make([]string, 3)
	debugAddrs := make([]string, 3)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", freePort(t))
		debugAddrs[i] = fmt.Sprintf("127.0.0.1:%d", freePort(t))
	}
	cluster := strings.Join(addrs, ",")
	procs := make([]*exec.Cmd, len(addrs))
	for i := range addrs {
		args := append(shapeArgs(cluster),
			"-replica", fmt.Sprint(i+1),
			"-debug-addr", debugAddrs[i],
			"-workers", "2")
		cmd := exec.Command(filepath.Join(bins, "regserver"), args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		procs[i] = cmd
	}
	defer func() {
		for _, p := range procs {
			p.Process.Signal(syscall.SIGTERM)
		}
		for _, p := range procs {
			p.Wait()
		}
	}()
	for _, a := range append(append([]string{}, addrs...), debugAddrs...) {
		waitListening(t, a)
	}

	// A workload long enough that the client is guaranteed to still be
	// mid-flight when we scrape it (race-built binary, real TCP).
	clientDebug := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	clientArgs := append(shapeArgs(cluster),
		"-debug-addr", clientDebug, "-slow-op", "1h",
		"-writes", "3000", "-reads", "3000", "-keys", "8",
		"-timeout", "120s", "-check=false")
	client := exec.Command(filepath.Join(bins, "regclient"), clientArgs...)
	client.Stdout = os.Stderr
	client.Stderr = os.Stderr
	if err := client.Start(); err != nil {
		t.Fatal(err)
	}
	clientDone := false
	defer func() {
		if !clientDone {
			client.Process.Kill()
			client.Wait()
		}
	}()
	waitListening(t, clientDebug)

	// Client mid-workload: per-protocol op counter climbing and a write
	// latency histogram with a live p99.
	var clientSnap metricsSnap
	deadline := time.Now().Add(60 * time.Second)
	for {
		clientSnap = scrape(t, clientDebug)
		if clientSnap.Counters["client.W2R2.ops"] > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client op counter never moved: %+v", clientSnap.Counters)
		}
		time.Sleep(50 * time.Millisecond)
	}
	wlat, ok := clientSnap.Histograms["client.W2R2.write.latency_ns"]
	if !ok {
		t.Fatalf("no write latency histogram; histograms: %v", histNames(clientSnap))
	}
	if wlat.Count > 0 && wlat.P99 <= 0 {
		t.Fatalf("write latency p99 not populated: %+v", wlat)
	}

	// Every replica mid-workload: requests flowing, batch fan-in
	// recorded, and the 2-worker pool's occupancy gauges present.
	for i, da := range debugAddrs {
		snap := scrape(t, da)
		if snap.Counters["server.requests"] == 0 {
			t.Fatalf("replica %d: no requests counted: %+v", i+1, snap.Counters)
		}
		if h, ok := snap.Histograms["server.batch_fanin"]; !ok || h.Count == 0 {
			t.Fatalf("replica %d: batch fan-in histogram empty", i+1)
		}
		for _, g := range []string{"server.worker.0.busy", "server.worker.1.busy", "server.workers.busy"} {
			if _, ok := snap.Gauges[g]; !ok {
				t.Fatalf("replica %d: gauge %q missing; gauges: %v", i+1, g, snap.Gauges)
			}
		}
		if _, ok := snap.Gauges["server.keys"]; !ok {
			t.Fatalf("replica %d: server.keys gauge missing", i+1)
		}
	}

	// /healthz answers on every process.
	for _, da := range append([]string{clientDebug}, debugAddrs...) {
		resp, err := http.Get("http://" + da + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s/healthz: %d", da, resp.StatusCode)
		}
	}

	// The workload itself must still finish clean.
	if err := client.Wait(); err != nil {
		t.Fatalf("regclient: %v", err)
	}
	clientDone = true
}

// metricsSnap mirrors obs.Snapshot's JSON shape, with just the
// histogram fields the assertions need.
type metricsSnap struct {
	Counters   map[string]int64 `json:"counters"`
	Gauges     map[string]int64 `json:"gauges"`
	Histograms map[string]struct {
		Count uint64  `json:"count"`
		P50   float64 `json:"p50"`
		P99   float64 `json:"p99"`
	} `json:"histograms"`
}

func histNames(s metricsSnap) []string {
	var out []string
	for k := range s.Histograms {
		out = append(out, k)
	}
	return out
}

// scrape GETs and decodes one /metrics endpoint.
func scrape(t *testing.T, addr string) metricsSnap {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap metricsSnap
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode %s/metrics: %v", addr, err)
	}
	return snap
}

// waitListening polls until addr accepts TCP connections.
func waitListening(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			c.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never came up", addr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
