package integration_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestStormScenarios drives the regstorm binary — built with the race
// detector, so the whole in-process fleet, fault layer and generator run
// under -race — through the checked-in scenarios: the partition+jitter
// smoke must come back binding CLEAN with exit 0, the same seed must
// reproduce the identical fault schedule, and the over-budget byzantine
// scenario must be caught as a binding VIOLATED with exit 2.
func TestStormScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives the regstorm binary; skipped with -short")
	}
	bins := t.TempDir()
	build := exec.Command("go", "build", "-race", "-o", bins, "fastreg/cmd/regstorm")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	regstorm := filepath.Join(bins, "regstorm")
	spec := func(name string) string { return filepath.Join("..", "..", "scenarios", name) }

	runStorm := func(t *testing.T, args ...string) (string, int) {
		t.Helper()
		cmd := exec.Command(regstorm, args...)
		out, err := cmd.CombinedOutput()
		return string(out), exitCode(err)
	}

	t.Run("PartitionJitterChecksClean", func(t *testing.T) {
		out, code := runStorm(t, "-spec", spec("storm-smoke.json"), "-capture", t.TempDir())
		if code != 0 {
			t.Fatalf("exit %d:\n%s", code, out)
		}
		if !strings.Contains(out, "verdict: CLEAN") {
			t.Fatalf("no clean verdict:\n%s", out)
		}
		if !strings.Contains(out, "3/3 replicas") || !strings.Contains(out, "FULL — verdicts binding") {
			t.Fatalf("verdict not binding (partial coverage):\n%s", out)
		}
	})

	t.Run("SameSeedSameSchedule", func(t *testing.T) {
		schedule := func(out string) []string {
			var lines []string
			for _, l := range strings.Split(out, "\n") {
				if strings.HasPrefix(l, "schedule:") {
					lines = append(lines, l)
				}
			}
			return lines
		}
		out1, code1 := runStorm(t, "-spec", spec("storm-smoke.json"), "-seed", "99", "-capture", t.TempDir())
		out2, code2 := runStorm(t, "-spec", spec("storm-smoke.json"), "-seed", "99", "-capture", t.TempDir())
		if code1 != 0 || code2 != 0 {
			t.Fatalf("exits %d/%d:\n%s\n---\n%s", code1, code2, out1, out2)
		}
		s1, s2 := schedule(out1), schedule(out2)
		if len(s1) == 0 {
			t.Fatalf("no schedule lines:\n%s", out1)
		}
		if strings.Join(s1, "\n") != strings.Join(s2, "\n") {
			t.Fatalf("same seed, different schedules:\n%v\nvs\n%v", s1, s2)
		}
		out3, _ := runStorm(t, "-spec", spec("storm-smoke.json"), "-seed", "100", "-capture", t.TempDir())
		if strings.Join(s1, "\n") == strings.Join(schedule(out3), "\n") {
			t.Fatal("seeds 99 and 100 produced identical dirseeds")
		}
	})

	t.Run("ByzantineOverBudgetViolated", func(t *testing.T) {
		out, code := runStorm(t, "-spec", spec("byz-overbudget.json"), "-capture", t.TempDir())
		if code != 2 {
			t.Fatalf("exit %d, want 2 (VIOLATED):\n%s", code, out)
		}
		if !strings.Contains(out, "VIOLATED") || !strings.Contains(out, "(binding)") {
			t.Fatalf("expected a binding VIOLATED verdict:\n%s", out)
		}
		if !strings.Contains(out, "FORGED") {
			t.Fatalf("violation does not trace to the forged value:\n%s", out)
		}
	})
}
