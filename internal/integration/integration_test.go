// Package integration_test runs cross-module scenarios: every protocol of
// the design space through both execution environments (discrete-event and
// live goroutines), with crash and skip adversaries, every history checked
// for atomicity where the protocol promises it, and consistency metrics
// where it does not.
package integration_test

import (
	"fmt"
	"sync"
	"testing"

	"fastreg/internal/abd"
	"fastreg/internal/atomicity"
	"fastreg/internal/consistency"
	"fastreg/internal/mwabd"
	"fastreg/internal/netsim"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/types"
	"fastreg/internal/w1r1"
	"fastreg/internal/w1r2"
	"fastreg/internal/w2r1"
	"fastreg/internal/workload"
)

type protoCase struct {
	name string
	p    register.Protocol
	cfg  quorum.Config
}

// matrix returns every protocol on a configuration where it promises
// atomicity.
func matrix() []protoCase {
	return []protoCase{
		{"W2R2/majority", mwabd.New(), quorum.Config{S: 5, T: 2, R: 3, W: 3}},
		{"W2R1/feasible", w2r1.New(), quorum.Config{S: 7, T: 1, R: 3, W: 2}},
		{"ABD/single-writer", abd.New(), quorum.Config{S: 5, T: 2, R: 3, W: 1}},
		{"W1R1/single-writer-fast", w1r1.New(), quorum.Config{S: 7, T: 1, R: 2, W: 1}},
		{"W1R2/single-writer-degenerate", w1r2.New(), quorum.Config{S: 5, T: 1, R: 2, W: 1}},
	}
}

func TestMatrixSimAtomicUnderAdversaries(t *testing.T) {
	for _, tc := range matrix() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if !tc.p.Implementable(tc.cfg) {
				t.Fatalf("%s should be implementable on %v", tc.p.Name(), tc.cfg)
			}
			for seed := int64(1); seed <= 8; seed++ {
				delay := netsim.DelayFn(netsim.UniformDelay(1, 150))
				// The failure budget is t per client: with t ≥ 2 each
				// reader misses a rotating server AND one server crashes;
				// with t = 1 only the crash is injected.
				if tc.cfg.T >= 2 {
					for r := 1; r <= tc.cfg.R; r++ {
						delay = netsim.Skip(delay, types.Reader(r), types.Server(int(seed+int64(r))%tc.cfg.S+1))
					}
				}
				sim := netsim.MustNew(tc.cfg, tc.p, netsim.WithSeed(seed), netsim.WithDelay(delay))
				if tc.cfg.T >= 1 {
					sim.CrashServer(types.Server(int(seed)%tc.cfg.S+1), 600)
				}
				h := workload.Run(sim, workload.Mix{WritesPerWriter: 4, ReadsPerReader: 4})
				want := tc.cfg.W*4 + tc.cfg.R*4
				if got := len(h.Completed()); got != want {
					t.Fatalf("seed %d: completed %d/%d", seed, got, want)
				}
				if err := h.WellFormed(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if res := atomicity.Check(h); !res.Atomic {
					t.Fatalf("seed %d: %v\n%s", seed, res, h)
				}
				if rep := consistency.Analyze(h); rep.KAtomicity != 1 {
					t.Fatalf("seed %d: atomic history scored k=%d", seed, rep.KAtomicity)
				}
			}
		})
	}
}

func TestMatrixLiveConcurrent(t *testing.T) {
	for _, tc := range matrix() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			l, err := netsim.NewLive(tc.cfg, tc.p, netsim.WithWireEncoding())
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			var wg sync.WaitGroup
			for w := 1; w <= tc.cfg.W; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 6; i++ {
						if _, err := l.Exec(l.Writer(w).WriteOp(fmt.Sprintf("w%d-%d", w, i))); err != nil {
							t.Errorf("write: %v", err)
							return
						}
					}
				}()
			}
			for r := 1; r <= tc.cfg.R; r++ {
				r := r
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 6; i++ {
						if _, err := l.Exec(l.Reader(r).ReadOp()); err != nil {
							t.Errorf("read: %v", err)
							return
						}
					}
				}()
			}
			wg.Wait()
			h := l.History()
			if err := h.WellFormed(); err != nil {
				t.Fatal(err)
			}
			if res := atomicity.Check(h); !res.Atomic {
				t.Fatalf("%v\n%s", res, h)
			}
		})
	}
}

// TestSimAndLiveAgreeOnSequentialSemantics: the two environments implement
// the same protocols; a fully sequential script must produce identical
// value sequences.
func TestSimAndLiveAgreeOnSequentialSemantics(t *testing.T) {
	cfg := quorum.Config{S: 5, T: 1, R: 2, W: 2}
	script := []struct {
		write  bool
		client int
		data   string
	}{
		{true, 1, "a"}, {false, 1, ""}, {true, 2, "b"},
		{false, 2, ""}, {true, 1, "c"}, {false, 1, ""}, {false, 2, ""},
	}

	runSim := func() []string {
		sim := netsim.MustNew(cfg, mwabd.New(), netsim.WithSeed(1))
		var out []string
		var step func(i int)
		step = func(i int) {
			if i == len(script) {
				return
			}
			s := script[i]
			var op register.Operation
			if s.write {
				op = sim.Writer(s.client).WriteOp(s.data)
			} else {
				op = sim.Reader(s.client).ReadOp()
			}
			sim.InvokeAt(sim.Now()+1, op, func(v types.Value, err error) {
				if err != nil {
					t.Errorf("sim op %d: %v", i, err)
				}
				if !s.write {
					out = append(out, v.Data)
				}
				step(i + 1)
			})
		}
		step(0)
		sim.Run()
		return out
	}

	runLive := func() []string {
		l, err := netsim.NewLive(cfg, mwabd.New())
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		var out []string
		for i, s := range script {
			var v types.Value
			var err error
			if s.write {
				_, err = l.Exec(l.Writer(s.client).WriteOp(s.data))
			} else {
				v, err = l.Exec(l.Reader(s.client).ReadOp())
				out = append(out, v.Data)
			}
			if err != nil {
				t.Fatalf("live op %d: %v", i, err)
			}
		}
		return out
	}

	simOut, liveOut := runSim(), runLive()
	if len(simOut) != len(liveOut) {
		t.Fatalf("lengths differ: %v vs %v", simOut, liveOut)
	}
	for i := range simOut {
		if simOut[i] != liveOut[i] {
			t.Fatalf("read %d: sim %q, live %q", i, simOut[i], liveOut[i])
		}
	}
	want := []string{"a", "b", "c", "c"}
	for i := range want {
		if simOut[i] != want[i] {
			t.Fatalf("sequential semantics wrong: %v, want %v", simOut, want)
		}
	}
}

// TestImpossibleQuadrantsDegradeGracefully: the non-atomic protocols stay
// 2-atomic on the violating schedules this suite can construct.
func TestImpossibleQuadrantsDegradeGracefully(t *testing.T) {
	cfg := quorum.Config{S: 5, T: 1, R: 2, W: 2}
	for _, p := range []register.Protocol{w1r2.New(), w1r1.New()} {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			worstK := 1
			sawViolation := false
			for seed := int64(1); seed <= 30; seed++ {
				// The directed sequential cross-writer probe, alone: W2
				// then W1 then a read — the naive tags order them wrongly.
				probe := netsim.MustNew(cfg, p, netsim.WithSeed(seed))
				probe.InvokeAt(0, probe.Writer(2).WriteOp("x"), func(types.Value, error) {
					probe.InvokeAt(probe.Now()+1, probe.Writer(1).WriteOp("y"), func(types.Value, error) {
						probe.InvokeAt(probe.Now()+1, probe.Reader(1).ReadOp(), nil)
					})
				})
				probe.Run()
				ph := probe.History()
				if !atomicity.Check(ph).Atomic {
					sawViolation = true
				}
				if rep := consistency.Analyze(ph); rep.KAtomicity > worstK {
					worstK = rep.KAtomicity
				}
				// A separate randomized workload contributes staleness
				// statistics.
				sim := netsim.MustNew(cfg, p, netsim.WithSeed(seed), netsim.WithDelay(netsim.UniformDelay(1, 300)))
				h := workload.Run(sim, workload.Mix{WritesPerWriter: 3, ReadsPerReader: 3})
				if rep := consistency.Analyze(h); rep.KAtomicity > worstK {
					worstK = rep.KAtomicity
				}
			}
			if !sawViolation {
				t.Fatal("expected at least one violating schedule")
			}
			if worstK > 2 {
				t.Fatalf("staleness exceeded 2-atomicity: k=%d", worstK)
			}
		})
	}
}
