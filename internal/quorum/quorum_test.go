package quorum

import (
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{S: 3, T: 1, R: 2, W: 2}, true},
		{Config{S: 1, T: 0, R: 0, W: 0}, true},
		{Config{S: 0, T: 0, R: 1, W: 1}, false},
		{Config{S: 3, T: 3, R: 1, W: 1}, false},
		{Config{S: 3, T: -1, R: 1, W: 1}, false},
		{Config{S: 3, T: 1, R: -1, W: 1}, false},
		{Config{S: 3, T: 1, R: 1, W: -1}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%v) = %v, want ok=%v", c.cfg, err, c.ok)
		}
	}
}

func TestReplyQuorum(t *testing.T) {
	c := Config{S: 5, T: 2}
	if got := c.ReplyQuorum(); got != 3 {
		t.Errorf("ReplyQuorum = %d, want 3", got)
	}
}

func TestMajorityOK(t *testing.T) {
	cases := []struct {
		s, tt int
		want  bool
	}{
		{3, 1, true},
		{2, 1, false},
		{5, 2, true},
		{4, 2, false},
		{5, 0, true},
	}
	for _, c := range cases {
		cfg := Config{S: c.s, T: c.tt}
		if got := cfg.MajorityOK(); got != c.want {
			t.Errorf("MajorityOK(S=%d,t=%d) = %v, want %v", c.s, c.tt, got, c.want)
		}
	}
}

// Table straight from Section 5: W2R1 exists iff R < S/t − 2.
func TestFastReadBoundary(t *testing.T) {
	cases := []struct {
		s, tt, r int
		want     bool
	}{
		// t=1: need R < S - 2.
		{5, 1, 2, true},   // 2 < 3
		{5, 1, 3, false},  // 3 ≮ 3
		{4, 1, 1, true},   // 1 < 2
		{4, 1, 2, false},  // 2 ≮ 2
		{10, 1, 7, true},  // 7 < 8
		{10, 1, 8, false}, // 8 ≮ 8
		// t=2: need R < S/2 - 2.
		{10, 2, 2, true},  // 2 < 3
		{10, 2, 3, false}, // 3 ≮ 3
		{9, 2, 2, true},   // 2 < 2.5
		{9, 2, 3, false},  // 3 ≮ 2.5
		{11, 2, 3, true},  // 3 < 3.5
		// t=0: always implementable.
		{3, 0, 100, true},
	}
	for _, c := range cases {
		cfg := Config{S: c.s, T: c.tt, R: c.r}
		if got := cfg.FastReadOK(); got != c.want {
			t.Errorf("FastReadOK(S=%d,t=%d,R=%d) = %v, want %v", c.s, c.tt, c.r, got, c.want)
		}
		if got := cfg.FastReadImpossible(); got == c.want {
			t.Errorf("FastReadImpossible must be the negation at %v", cfg)
		}
	}
}

// Property: FastReadOK agrees with the rational inequality R < S/t - 2
// evaluated exactly (via cross-multiplication), for all small configs.
func TestFastReadMatchesRationalForm(t *testing.T) {
	for s := 1; s <= 30; s++ {
		for tt := 1; tt < s; tt++ {
			for r := 0; r <= 30; r++ {
				cfg := Config{S: s, T: tt, R: r}
				want := r*tt < s-2*tt
				if got := cfg.FastReadOK(); got != want {
					t.Fatalf("FastReadOK(S=%d,t=%d,R=%d) = %v, want %v", s, tt, r, got, want)
				}
			}
		}
	}
}

// Property: MaxFastReaders is the exact threshold — OK at that R, not OK at
// R+1.
func TestMaxFastReadersIsTight(t *testing.T) {
	for s := 1; s <= 40; s++ {
		for tt := 1; tt < s; tt++ {
			m := Config{S: s, T: tt}.MaxFastReaders()
			if m < 0 {
				t.Fatalf("MaxFastReaders(S=%d,t=%d) negative", s, tt)
			}
			if m > 0 {
				at := Config{S: s, T: tt, R: m}
				if !at.FastReadOK() {
					t.Fatalf("R=%d should be feasible at S=%d t=%d", m, s, tt)
				}
			}
			above := Config{S: s, T: tt, R: m + 1}
			if above.FastReadOK() {
				t.Fatalf("R=%d should be infeasible at S=%d t=%d", m+1, s, tt)
			}
		}
	}
}

func TestMaxFastReadersNoCrash(t *testing.T) {
	if got := (Config{S: 3, T: 0}).MaxFastReaders(); got != -1 {
		t.Errorf("MaxFastReaders with t=0 = %d, want -1 (unbounded)", got)
	}
}

func TestAdmissibleQuorumAndMaxDegree(t *testing.T) {
	c := Config{S: 9, T: 2, R: 1}
	if got := c.AdmissibleQuorum(1); got != 7 {
		t.Errorf("AdmissibleQuorum(1) = %d, want 7", got)
	}
	if got := c.AdmissibleQuorum(2); got != 5 {
		t.Errorf("AdmissibleQuorum(2) = %d, want 5", got)
	}
	if got := c.MaxDegree(); got != 2 {
		t.Errorf("MaxDegree = %d, want 2", got)
	}
}

// Lemma 9's arithmetic: if R < S/t − 2 then for every degree a ≤ R+1 the
// admissible quorum S − a·t still exceeds t (so it survives any t crashes).
func TestAdmissibleQuorumExceedsTWhenFeasible(t *testing.T) {
	for s := 3; s <= 25; s++ {
		for tt := 1; tt < s; tt++ {
			for r := 1; r <= 10; r++ {
				cfg := Config{S: s, T: tt, R: r}
				if !cfg.FastReadOK() {
					continue
				}
				for a := 1; a <= cfg.MaxDegree(); a++ {
					if q := cfg.AdmissibleQuorum(a); q <= tt {
						t.Fatalf("S=%d t=%d R=%d a=%d: quorum %d ≤ t", s, tt, r, a, q)
					}
				}
			}
		}
	}
}

// Lemma 10's arithmetic: under feasibility, an admissible quorum of degree a
// and a reply quorum intersect in ≥ S − (a+1)t ≥ 1 servers.
func TestAdmissibleIntersectsReplyQuorum(t *testing.T) {
	for s := 3; s <= 25; s++ {
		for tt := 1; tt < s; tt++ {
			for r := 1; r <= 10; r++ {
				cfg := Config{S: s, T: tt, R: r}
				if !cfg.FastReadOK() {
					continue
				}
				for a := 1; a <= cfg.MaxDegree(); a++ {
					n := cfg.Intersect(cfg.AdmissibleQuorum(a), cfg.ReplyQuorum())
					if n < 1 {
						t.Fatalf("S=%d t=%d R=%d a=%d: intersection %d < 1", s, tt, r, a, n)
					}
					if want := s - (a+1)*tt; n != want && want >= 0 {
						t.Fatalf("S=%d t=%d a=%d: intersection %d, want %d", s, tt, a, n, want)
					}
				}
			}
		}
	}
}

func TestIntersectClamp(t *testing.T) {
	c := Config{S: 10}
	if got := c.Intersect(3, 4); got != 0 {
		t.Errorf("Intersect(3,4) = %d, want 0", got)
	}
	if got := c.Intersect(7, 8); got != 5 {
		t.Errorf("Intersect(7,8) = %d, want 5", got)
	}
}

func TestStringer(t *testing.T) {
	c := Config{S: 5, T: 1, R: 2, W: 2}
	if got := c.String(); got != "S=5 t=1 R=2 W=2" {
		t.Errorf("String = %q", got)
	}
}

// Property: Intersect is symmetric and never negative.
func TestIntersectProperties(t *testing.T) {
	f := func(s, a, b uint8) bool {
		c := Config{S: int(s%20) + 1}
		n1, n2 := int(a%25), int(b%25)
		x, y := c.Intersect(n1, n2), c.Intersect(n2, n1)
		return x == y && x >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
