// Package quorum collects the quorum arithmetic the paper's protocols and
// bounds rely on:
//
//   - majority correctness for W2R2: t < S/2 (Lynch & Shvartsman);
//   - the fast-read bound: a W2R1 implementation exists iff R < S/t − 2
//     (Section 5);
//   - the admissibility quorum sizes S − a·t for degree a ∈ [1, R+1]
//     (Appendix A, Definition 4).
//
// Keeping this arithmetic in one place lets the protocols, the sweep harness
// and the tests all agree on where the feasibility boundary falls, including
// the integer-division subtleties of "R ≥ S/t − 2" for non-divisible S/t.
package quorum

import "fmt"

// Config fixes the cluster shape: S servers of which at most T may crash,
// R readers and W writers.
type Config struct {
	S int // number of servers (≥ 2 in a replicated system)
	T int // crash tolerance t (≥ 0)
	R int // number of readers
	W int // number of writers
}

// Validate reports whether the configuration is structurally sound (not
// whether any particular protocol is implementable on it).
func (c Config) Validate() error {
	if c.S < 1 {
		return fmt.Errorf("quorum: S = %d, need at least one server", c.S)
	}
	if c.T < 0 || c.T >= c.S {
		return fmt.Errorf("quorum: t = %d out of range [0, S) with S = %d", c.T, c.S)
	}
	if c.R < 0 || c.W < 0 {
		return fmt.Errorf("quorum: negative client count R=%d W=%d", c.R, c.W)
	}
	return nil
}

// ReplyQuorum is the number of server replies a client round waits for:
// S − t. Waiting for more could block forever when t servers crash.
func (c Config) ReplyQuorum() int { return c.S - c.T }

// MajorityOK reports the W2R2 implementability condition t < S/2, i.e.
// 2t < S: any two (S−t)-quorums intersect.
func (c Config) MajorityOK() bool { return 2*c.T < c.S }

// FastReadOK reports the paper's necessary and sufficient condition for a
// W2R1 implementation: R < S/t − 2, equivalently R·t + 2t < S (integer-exact
// form; for t = 0 any R works because nothing can crash).
func (c Config) FastReadOK() bool {
	if c.T == 0 {
		return true
	}
	return c.R*c.T+2*c.T < c.S
}

// FastReadImpossible reports the impossibility side R ≥ S/t − 2. It is the
// exact negation of FastReadOK for t ≥ 1, kept explicit because Table 1
// states the two sides separately.
func (c Config) FastReadImpossible() bool { return !c.FastReadOK() }

// MaxFastReaders returns the largest R for which FastReadOK holds at this
// S and t, i.e. ⌈S/t⌉ − 3 rounded per the exact inequality R·t + 2t < S.
// For t = 0 there is no bound and the function returns -1.
func (c Config) MaxFastReaders() int {
	if c.T == 0 {
		return -1
	}
	// Largest R with R*t < S - 2t  ⇒  R = ceil((S-2t)/t) - 1 when divisible
	// care is needed; derive directly.
	r := (c.S - 2*c.T - 1) / c.T
	if r < 0 {
		return 0
	}
	return r
}

// AdmissibleQuorum is the quorum size S − a·t required for a value to be
// admissible with degree a (Appendix A, Definition 4(a)).
func (c Config) AdmissibleQuorum(a int) int { return c.S - a*c.T }

// MaxDegree is the largest admissibility degree the reader ever tests:
// R + 1 (Algorithm 1, line 25).
func (c Config) MaxDegree() int { return c.R + 1 }

// Intersect returns the guaranteed intersection size of two reply sets of
// sizes n1 and n2 out of S servers: n1 + n2 − S (clamped at 0).
func (c Config) Intersect(n1, n2 int) int {
	n := n1 + n2 - c.S
	if n < 0 {
		return 0
	}
	return n
}

// String renders the configuration compactly.
func (c Config) String() string {
	return fmt.Sprintf("S=%d t=%d R=%d W=%d", c.S, c.T, c.R, c.W)
}
