package w1r1

import (
	"testing"

	"fastreg/internal/atomicity"
	"fastreg/internal/netsim"
	"fastreg/internal/quorum"
	"fastreg/internal/types"
)

func TestMetadata(t *testing.T) {
	p := New()
	if p.Name() != "W1R1" || p.WriteRounds() != 1 || p.ReadRounds() != 1 {
		t.Fatalf("metadata: %s W%d R%d", p.Name(), p.WriteRounds(), p.ReadRounds())
	}
}

func TestImplementableBound(t *testing.T) {
	cases := []struct {
		cfg  quorum.Config
		want bool
	}{
		{quorum.Config{S: 5, T: 1, R: 2, W: 1}, true},  // 2 < 3, single writer
		{quorum.Config{S: 5, T: 1, R: 3, W: 1}, false}, // R ≥ S/t-2
		{quorum.Config{S: 5, T: 1, R: 2, W: 2}, false}, // multi-writer: [12]
		{quorum.Config{S: 4, T: 2, R: 1, W: 1}, false}, // no majority... R*t+2t=6 ≥ 4
	}
	for _, c := range cases {
		if got := New().Implementable(c.cfg); got != c.want {
			t.Errorf("Implementable(%v) = %v, want %v", c.cfg, got, c.want)
		}
	}
}

// TestBothOperationsOneRound: the whole point of W1R1 — every operation is
// a single round trip.
func TestBothOperationsOneRound(t *testing.T) {
	const d = 50
	cfg := quorum.Config{S: 5, T: 1, R: 2, W: 1}
	sim := netsim.MustNew(cfg, New(), netsim.WithDelay(netsim.ConstDelay(d)))
	sim.InvokeAt(0, sim.Writer(1).WriteOp("x"), func(types.Value, error) {
		sim.InvokeAt(sim.Now()+1, sim.Reader(1).ReadOp(), nil)
	})
	sim.Run()
	for _, o := range sim.History().Completed() {
		lat := o.Response.Sub(o.Invoke)
		if lat < 2*d || lat > 2*d+4 {
			t.Errorf("%s latency = %d, want ≈ %d (one round)", o.Kind, lat, 2*d)
		}
	}
}

// TestSingleWriterFeasibleAtomic: the Dutta et al. configuration
// (W=1, R < S/t − 2) stays atomic under randomized adversaries.
func TestSingleWriterFeasibleAtomic(t *testing.T) {
	cfg := quorum.Config{S: 6, T: 1, R: 2, W: 1}
	for seed := int64(1); seed <= 20; seed++ {
		delay := netsim.DelayFn(netsim.UniformDelay(1, 120))
		delay = netsim.Skip(delay, types.Reader(1), types.Server(int(seed)%6+1))
		sim := netsim.MustNew(cfg, New(), netsim.WithSeed(seed), netsim.WithDelay(delay))
		var spawn func(c int, write bool, n int)
		spawn = func(c int, write bool, n int) {
			if n == 0 {
				return
			}
			op := sim.Reader(c).ReadOp()
			if write {
				op = sim.Writer(1).WriteOp("d")
			}
			sim.InvokeAt(sim.Now()+1, op, func(types.Value, error) { spawn(c, write, n-1) })
		}
		spawn(1, true, 5)
		spawn(1, false, 5)
		spawn(2, false, 5)
		sim.Run()
		h := sim.History()
		if len(h.Completed()) != 15 {
			t.Fatalf("seed %d: completed %d", seed, len(h.Completed()))
		}
		if res := atomicity.Check(h); !res.Atomic {
			t.Fatalf("seed %d: %v\n%s", seed, res, h)
		}
	}
}

// TestMultiWriterViolation: with two writers the fast protocol loses
// sequential cross-writer writes, exactly like naive W1R2 — Table 1 row 4.
func TestMultiWriterViolation(t *testing.T) {
	cfg := quorum.Config{S: 5, T: 1, R: 2, W: 2}
	sim := netsim.MustNew(cfg, New(), netsim.WithSeed(1))
	sim.InvokeAt(0, sim.Writer(2).WriteOp("w2-first"), func(types.Value, error) {
		sim.InvokeAt(sim.Now()+1, sim.Writer(1).WriteOp("w1-second"), func(types.Value, error) {
			sim.InvokeAt(sim.Now()+1, sim.Reader(1).ReadOp(), nil)
		})
	})
	sim.Run()
	res := atomicity.Check(sim.History())
	if res.Atomic {
		t.Fatal("multi-writer W1R1 judged atomic on sequential cross-writer writes")
	}
}
