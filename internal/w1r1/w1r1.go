// Package w1r1 implements the fast (one-round write, one-round read)
// register of Dutta, Guerraoui, Levy & Vukolić (SIAM J. Comput. 2010),
// reference [12] of the paper.
//
// In the single-writer case it is atomic iff R < S/t − 2 — the result the
// paper's W2R1 algorithm extends to multiple writers. In the multi-writer
// case (W ≥ 2) it is never atomic (Table 1, row 4, proved in [12]); the
// protocol still runs so the harness can exhibit its violations.
//
// Write: the writer bumps a private timestamp and updates all servers in
// one round. Read: the one-round valQueue/admissible read shared with the
// W2R1 protocol (internal/opkit).
package w1r1

import (
	"fastreg/internal/opkit"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/types"
)

// Protocol is the fast read-write implementation.
type Protocol struct{}

// New returns the W1R1 protocol.
func New() *Protocol { return &Protocol{} }

// Name implements register.Protocol.
func (*Protocol) Name() string { return "W1R1" }

// WriteRounds implements register.Protocol.
func (*Protocol) WriteRounds() int { return 1 }

// ReadRounds implements register.Protocol.
func (*Protocol) ReadRounds() int { return 1 }

// Implementable implements register.Protocol: single writer and the fast
// bound R < S/t − 2 ([12]).
func (*Protocol) Implementable(cfg quorum.Config) bool {
	return cfg.W == 1 && cfg.FastReadOK() && cfg.MajorityOK()
}

// NewServer implements register.Protocol.
func (*Protocol) NewServer(id types.ProcID, _ quorum.Config) register.ServerLogic {
	return opkit.NewVectorServer(id)
}

type writer struct {
	id   types.ProcID
	need int
	ts   int64
}

// NewWriter implements register.Protocol.
func (*Protocol) NewWriter(id types.ProcID, cfg quorum.Config) register.Writer {
	return &writer{id: id, need: cfg.ReplyQuorum()}
}

func (w *writer) ID() types.ProcID { return w.id }

func (w *writer) WriteOp(data string) register.Operation {
	w.ts++
	val := types.Value{Tag: types.Tag{TS: w.ts, WID: w.id}, Data: data}
	return opkit.NewDirectWrite(w.id, val, w.need)
}

type reader struct {
	id    types.ProcID
	need  int
	state *opkit.ReaderState
	cfg   opkit.AdmissibleConfig
}

// NewReader implements register.Protocol.
func (*Protocol) NewReader(id types.ProcID, cfg quorum.Config) register.Reader {
	return &reader{
		id:    id,
		need:  cfg.ReplyQuorum(),
		state: opkit.NewReaderState(),
		cfg:   opkit.AdmissibleConfig{S: cfg.S, T: cfg.T, MaxDegree: cfg.MaxDegree()},
	}
}

func (r *reader) ID() types.ProcID { return r.id }

func (r *reader) ReadOp() register.Operation {
	return opkit.NewFastReadOp(r.id, r.state, r.cfg, r.need)
}
