// Package sweep maps the fast-read feasibility boundary of Section 5:
// a W2R1 implementation exists iff R < S/t − 2 (Fig 9 illustrates the
// impossibility side).
//
// For every (S, t, R) cell the sweep reports:
//
//   - the paper's verdict (the formula, via quorum.Config.FastReadOK);
//   - an empirical verdict from randomized adversarial executions of the
//     W2R1 implementation (random delays, per-client server skips, up to t
//     crashes), every history checked for atomicity;
//   - on the impossible side, a directed construction: a pending write
//     lodged on exactly S−2t servers, a first reader that admits it at
//     degree 2, and a second reader that skips every witness — a forced
//     new-old inversion whenever S ≤ 3t (for larger S the witness set
//     cannot be fully avoided by one reader; the worst case there requires
//     the full lower-bound machinery of Dutta et al. [12], which is out of
//     scope — EXPERIMENTS.md discusses this).
package sweep

import (
	"fmt"
	"strings"

	"fastreg/internal/atomicity"
	"fastreg/internal/chains"
	"fastreg/internal/netsim"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/types"
	"fastreg/internal/vclock"
	"fastreg/internal/w2r1"
)

// Cell is one point of the boundary sweep.
type Cell struct {
	S, T, R int
	// Feasible is the paper's formula R < S/t − 2.
	Feasible bool
	// RandomTrials ran with all histories atomic iff RandomAtomic.
	RandomTrials int
	RandomAtomic bool
	// FirstBadSeed is the first seed whose history violated atomicity
	// (0 when none).
	FirstBadSeed int64
	// Directed reports the directed inversion attempt (infeasible cells
	// with S ≤ 3t only).
	DirectedAttempted bool
	DirectedViolation bool
}

// String renders one row of the Fig 9-style table.
func (c Cell) String() string {
	verdict := "atomic"
	if !c.RandomAtomic {
		verdict = fmt.Sprintf("VIOLATION(seed=%d)", c.FirstBadSeed)
	}
	directed := "-"
	if c.DirectedAttempted {
		directed = "no"
		if c.DirectedViolation {
			directed = "VIOLATION"
		}
	}
	formula := "R<S/t-2"
	if !c.Feasible {
		formula = "R≥S/t-2"
	}
	return fmt.Sprintf("S=%-3d t=%-2d R=%-3d %-9s random:%-20s directed:%s", c.S, c.T, c.R, formula, verdict, directed)
}

// RunCell evaluates one (S, t, R) cell with the given number of randomized
// trials.
func RunCell(s, t, r, trials int) Cell {
	cfg := quorum.Config{S: s, T: t, R: r, W: 2}
	cell := Cell{S: s, T: t, R: r, Feasible: cfg.FastReadOK(), RandomTrials: trials, RandomAtomic: true}
	for seed := int64(1); seed <= int64(trials); seed++ {
		if !runRandomTrial(cfg, seed) {
			cell.RandomAtomic = false
			cell.FirstBadSeed = seed
			break
		}
	}
	if !cell.Feasible && r >= 2 && s <= 3*t && s-2*t >= 1 {
		cell.DirectedAttempted = true
		out, err := DirectedInversion(s, t)
		if err == nil {
			cell.DirectedViolation = !atomicity.Check(out.History).Atomic
		}
	}
	return cell
}

// runRandomTrial executes one adversarial randomized schedule and reports
// whether the history was atomic.
func runRandomTrial(cfg quorum.Config, seed int64) bool {
	delay := netsim.DelayFn(netsim.UniformDelay(1, 200))
	// Each reader permanently misses one server (rotating by seed); the
	// writers miss another. Never more than t skips per client.
	if cfg.T >= 1 {
		for i := 1; i <= cfg.R; i++ {
			srv := int((seed+int64(i)))%cfg.S + 1
			delay = netsim.Skip(delay, types.Reader(i), types.Server(srv))
		}
		delay = netsim.Skip(delay, types.Writer(1), types.Server(int(seed)%cfg.S+1))
	}
	sim := netsim.MustNew(cfg, w2r1.New(), netsim.WithSeed(seed), netsim.WithDelay(delay))
	// Crash up to t servers mid-run.
	for i := 0; i < cfg.T; i++ {
		sim.CrashServer(types.Server((int(seed)+i*2)%cfg.S+1), vclock.Time(400+100*i))
	}
	var spawn func(c int, write bool, n int)
	spawn = func(c int, write bool, n int) {
		if n == 0 {
			return
		}
		var op register.Operation
		if write {
			op = sim.Writer(1 + (c-1)%cfg.W).WriteOp(fmt.Sprintf("d%d", n))
		} else {
			op = sim.Reader(1 + (c-1)%cfg.R).ReadOp()
		}
		sim.InvokeAt(sim.Now()+1, op, func(types.Value, error) { spawn(c, write, n-1) })
	}
	for c := 1; c <= 2; c++ {
		spawn(c, true, 4)
		spawn(c, false, 4)
	}
	sim.Run()
	return atomicity.Check(sim.History()).Atomic
}

// DirectedInversion builds the forced new-old inversion for an infeasible
// cell with S ≤ 3t: the write's second round reaches only the witness set
// A = {s_1 … s_{S−2t}} (the write stays pending); reader r1 hears all of A
// and admits the value at degree 2; reader r2 skips all of A — legal, since
// |A| ≤ t — and must return an older value although it follows r1.
func DirectedInversion(s, t int) (*chains.Outcome, error) {
	if s-2*t < 1 || s > 3*t {
		return nil, fmt.Errorf("sweep: directed inversion needs 2t < S ≤ 3t, got S=%d t=%d", s, t)
	}
	cfg := quorum.Config{S: s, T: t, R: 2, W: 2}
	p := w2r1.New()
	ops := []chains.OpMaker{
		{Name: "W1", Rounds: 2, Make: func() register.Operation {
			return p.NewWriter(types.Writer(1), cfg).WriteOp("v")
		}},
		{Name: "R1", Rounds: 1, Make: func() register.Operation {
			return p.NewReader(types.Reader(1), cfg).ReadOp()
		}},
		{Name: "R2", Rounds: 1, Make: func() register.Operation {
			return p.NewReader(types.Reader(2), cfg).ReadOp()
		}},
	}
	global := []chains.RT{{Op: 0, Round: 1}, {Op: 0, Round: 2}, {Op: 1, Round: 1}, {Op: 2, Round: 1}}
	spec := chains.NewSpec(fmt.Sprintf("fig9-inversion-S%d-t%d", s, t), s, ops, global)
	witnesses := s - 2*t
	// The write's update round reaches only the witnesses.
	for srv := witnesses + 1; srv <= s; srv++ {
		spec.SkipAt(srv, chains.RT{Op: 0, Round: 2})
	}
	// r1 skips t non-witness servers (it hears all witnesses).
	for srv := s - t + 1; srv <= s; srv++ {
		spec.SkipAt(srv, chains.RT{Op: 1, Round: 1})
	}
	// r2 skips every witness (|A| = S−2t ≤ t).
	for srv := 1; srv <= witnesses; srv++ {
		spec.SkipAt(srv, chains.RT{Op: 2, Round: 1})
	}
	return spec.Run(func(id types.ProcID) register.ServerLogic { return p.NewServer(id, cfg) })
}

// Boundary sweeps R around the threshold for each (S, t) and returns the
// table of cells — the Fig 9 series.
func Boundary(configs [][2]int, trials int) []Cell {
	var cells []Cell
	for _, st := range configs {
		s, t := st[0], st[1]
		maxR := quorum.Config{S: s, T: t}.MaxFastReaders()
		if maxR < 1 {
			maxR = 1
		}
		for r := max(1, maxR-1); r <= maxR+2; r++ {
			cells = append(cells, RunCell(s, t, r, trials))
		}
	}
	return cells
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Render formats the cells as the Fig 9 table.
func Render(cells []Cell) string {
	var b strings.Builder
	b.WriteString("Fig 9 / Section 5 — fast read feasibility boundary (W2R1, Algorithm 1&2)\n")
	for _, c := range cells {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}
