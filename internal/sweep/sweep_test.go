package sweep

import (
	"strings"
	"testing"

	"fastreg/internal/atomicity"
	"fastreg/internal/types"
)

// TestDirectedInversionS3T1 is the concrete infeasible-side exhibit for
// Fig 9: S=3, t=1, R=2 (R ≥ S/t − 2). The scripted execution forces a
// new-old inversion.
func TestDirectedInversionS3T1(t *testing.T) {
	out, err := DirectedInversion(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	r1 := out.Result("R1")
	r2 := out.Result("R2")
	if !r1.Done || !r2.Done {
		t.Fatalf("reads did not complete: R1=%v R2=%v", r1.Done, r2.Done)
	}
	if r1.Value.Data != "v" {
		t.Fatalf("R1 = %v, want the pending write's value", r1.Value)
	}
	if !r2.Value.IsInitial() {
		t.Fatalf("R2 = %v, want the initial value (it skipped every witness)", r2.Value)
	}
	res := atomicity.Check(out.History)
	if res.Atomic {
		t.Fatalf("inversion history judged atomic:\n%s", out.History)
	}
}

// TestDirectedInversionScales: the construction works for every 2t < S ≤ 3t.
func TestDirectedInversionScales(t *testing.T) {
	for _, st := range [][2]int{{3, 1}, {5, 2}, {6, 2}, {8, 3}, {9, 3}} {
		out, err := DirectedInversion(st[0], st[1])
		if err != nil {
			t.Fatalf("S=%d t=%d: %v", st[0], st[1], err)
		}
		if atomicity.Check(out.History).Atomic {
			t.Errorf("S=%d t=%d: no violation", st[0], st[1])
		}
	}
}

func TestDirectedInversionRejectsBadShape(t *testing.T) {
	if _, err := DirectedInversion(7, 2); err == nil { // S > 3t
		t.Error("S>3t accepted")
	}
	if _, err := DirectedInversion(2, 1); err == nil { // S-2t < 1
		t.Error("S-2t<1 accepted")
	}
}

// TestFeasibleCellsAtomic: on the feasible side the randomized adversary
// never finds a violation.
func TestFeasibleCellsAtomic(t *testing.T) {
	for _, cell := range []struct{ s, tt, r int }{
		{5, 1, 2}, {6, 1, 3}, {9, 2, 2},
	} {
		c := RunCell(cell.s, cell.tt, cell.r, 8)
		if !c.Feasible {
			t.Fatalf("cell (%d,%d,%d) should be feasible", cell.s, cell.tt, cell.r)
		}
		if !c.RandomAtomic {
			t.Errorf("feasible cell (%d,%d,%d) violated at seed %d", cell.s, cell.tt, cell.r, c.FirstBadSeed)
		}
	}
}

// TestInfeasibleCellDirected: the S≤3t infeasible cells get the directed
// violation.
func TestInfeasibleCellDirected(t *testing.T) {
	c := RunCell(3, 1, 2, 3)
	if c.Feasible {
		t.Fatal("S=3 t=1 R=2 should be infeasible")
	}
	if !c.DirectedAttempted || !c.DirectedViolation {
		t.Fatalf("directed inversion missing: %+v", c)
	}
	if !strings.Contains(c.String(), "directed:VIOLATION") {
		t.Errorf("cell row = %q", c.String())
	}
}

func TestBoundaryTable(t *testing.T) {
	cells := Boundary([][2]int{{5, 1}, {9, 2}}, 2)
	if len(cells) == 0 {
		t.Fatal("empty boundary")
	}
	// Cells must be monotone: feasible exactly below the threshold.
	for _, c := range cells {
		want := c.R*c.T+2*c.T < c.S
		if c.Feasible != want {
			t.Errorf("cell %+v: formula mismatch", c)
		}
	}
	table := Render(cells)
	if !strings.Contains(table, "Fig 9") {
		t.Errorf("table header missing:\n%s", table)
	}
	_ = types.Server(1)
}
