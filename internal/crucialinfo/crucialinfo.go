// Package crucialinfo implements the full-info and crucial-info models of
// Section 4.1.
//
// In the full-info model a server is an append-only log: it appends
// everything it receives (written values and the markers left by the first
// round-trip of reads) and replies with the entire log. No implementation
// can use fewer round-trips than a full-info implementation, so the
// impossibility argument only needs to defeat protocols of this form.
//
// The crucial information of a server, for two tracked writes, is the order
// in which it received them — "12" or "21". The package provides:
//
//   - LogServer: the append-only-log server;
//   - Protocol: a best-effort full-info W1R2 candidate (one-round writes,
//     two-round reads deciding by majority over log orders) — the strawman
//     the chain argument of internal/chains defeats;
//   - FlippingServer: an adversarial server whose crucial info is changed
//     by a reader's first round-trip, driving the sieve analysis of
//     Section 4.2 (Fig 8);
//   - Crucial: extraction of the "12"/"21" string from a log.
package crucialinfo

import (
	"fastreg/internal/proto"
	"fastreg/internal/types"
)

// LogServer is the full-info server: an append-only log.
type LogServer struct {
	id  types.ProcID
	log []proto.LogEvent
}

// NewLogServer creates an empty-log server.
func NewLogServer(id types.ProcID) *LogServer { return &LogServer{id: id} }

// ID implements register.ServerLogic.
func (s *LogServer) ID() types.ProcID { return s.id }

// CurrentValue implements register.ServerLogic: the maximal written value
// in the log (by tag), used only for inspection.
func (s *LogServer) CurrentValue() types.Value {
	cur := types.InitialValue()
	for _, e := range s.log {
		if !e.IsReadMark() && cur.Less(e.Val) {
			cur = e.Val
		}
	}
	return cur
}

// Log returns a snapshot of the append-only log.
func (s *LogServer) Log() []proto.LogEvent {
	out := make([]proto.LogEvent, len(s.log))
	copy(out, s.log)
	return out
}

// Handle implements register.ServerLogic.
//
//   - Update   → append (client, value), WRITEACK;
//   - FastRead → append a read marker (the blind effect of a reader's first
//     round-trip), reply with the full log;
//   - Query    → reply with the full log without appending (a pure query).
func (s *LogServer) Handle(from types.ProcID, m proto.Message) proto.Message {
	switch msg := m.(type) {
	case proto.Update:
		s.log = append(s.log, proto.LogEvent{Client: from, Val: msg.Val})
		return proto.UpdateAck{}
	case proto.FastRead:
		s.log = append(s.log, proto.LogEvent{Client: from})
		return proto.LogAck{Events: s.Log()}
	case proto.Query:
		return proto.LogAck{Events: s.Log()}
	default:
		return nil
	}
}

// Crucial extracts the server's crucial information for two tracked values:
// "12" if v1 was received before v2, "21" for the converse, "1"/"2" if only
// one is present, "" if neither.
func Crucial(log []proto.LogEvent, v1, v2 types.Value) string {
	out := ""
	for _, e := range log {
		switch {
		case e.IsReadMark():
		case e.Val == v1 && !contains(out, '1'):
			out += "1"
		case e.Val == v2 && !contains(out, '2'):
			out += "2"
		}
	}
	return out
}

func contains(s string, c byte) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return true
		}
	}
	return false
}

// FlippingServer wraps a LogServer with the adversarial behaviour Section
// 4.2 sieves out: when the designated reader's first round-trip (FastRead)
// arrives, the server swaps the receipt order of the first two distinct
// written values in its log — its crucial info flips from "12" to "21".
// This is the only effect a blind first round-trip can have on crucial
// information, per the crucial-info model.
type FlippingServer struct {
	LogServer
	trigger types.ProcID
	flipped bool
}

// NewFlippingServer creates a flipping server triggered by the given
// reader.
func NewFlippingServer(id, trigger types.ProcID) *FlippingServer {
	return &FlippingServer{LogServer: LogServer{id: id}, trigger: trigger}
}

// Flipped reports whether the flip has occurred.
func (s *FlippingServer) Flipped() bool { return s.flipped }

// Handle implements register.ServerLogic.
func (s *FlippingServer) Handle(from types.ProcID, m proto.Message) proto.Message {
	if _, isRead := m.(proto.FastRead); isRead && from == s.trigger && !s.flipped {
		s.flipWrites()
		s.flipped = true
	}
	return s.LogServer.Handle(from, m)
}

// flipWrites swaps the first two distinct written values in the log.
func (s *FlippingServer) flipWrites() {
	first, second := -1, -1
	for i, e := range s.log {
		if e.IsReadMark() {
			continue
		}
		if first == -1 {
			first = i
		} else if s.log[first].Val != e.Val {
			second = i
			break
		}
	}
	if first >= 0 && second >= 0 {
		s.log[first], s.log[second] = s.log[second], s.log[first]
	}
}
