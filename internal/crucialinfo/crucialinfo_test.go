package crucialinfo

import (
	"testing"

	"fastreg/internal/proto"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/types"
)

func val(ts int64, w int, data string) types.Value {
	return types.Value{Tag: types.Tag{TS: ts, WID: types.Writer(w)}, Data: data}
}

func TestLogServerAppendsEverything(t *testing.T) {
	s := NewLogServer(types.Server(1))
	v := val(1, 1, "a")
	if _, ok := s.Handle(types.Writer(1), proto.Update{Val: v}).(proto.UpdateAck); !ok {
		t.Fatal("update not acked")
	}
	ack, ok := s.Handle(types.Reader(1), proto.FastRead{}).(proto.LogAck)
	if !ok {
		t.Fatal("fast read must return the log")
	}
	// The log at reply time contains the write and the reader's own mark.
	if len(ack.Events) != 2 || ack.Events[0].Val != v || !ack.Events[1].IsReadMark() {
		t.Fatalf("log = %v", ack.Events)
	}
	// A Query does not append.
	q := s.Handle(types.Reader(2), proto.Query{}).(proto.LogAck)
	if len(q.Events) != 2 {
		t.Fatalf("query appended: %v", q.Events)
	}
	if s.CurrentValue() != v {
		t.Errorf("CurrentValue = %v", s.CurrentValue())
	}
	if s.Handle(types.Reader(1), proto.UpdateAck{}) != nil {
		t.Error("unknown message must get no reply")
	}
}

func TestLogSnapshotUnaliased(t *testing.T) {
	s := NewLogServer(types.Server(1))
	s.Handle(types.Writer(1), proto.Update{Val: val(1, 1, "a")})
	log := s.Log()
	log[0] = proto.LogEvent{Client: types.Reader(9)}
	if s.Log()[0].Client != types.Writer(1) {
		t.Error("Log snapshot aliased server state")
	}
}

func TestCrucialExtraction(t *testing.T) {
	v1, v2 := val(1, 1, "1"), val(1, 2, "2")
	mk := func(vals ...types.Value) []proto.LogEvent {
		var out []proto.LogEvent
		for _, v := range vals {
			out = append(out, proto.LogEvent{Client: v.Tag.WID, Val: v})
		}
		return out
	}
	cases := []struct {
		log  []proto.LogEvent
		want string
	}{
		{mk(v1, v2), "12"},
		{mk(v2, v1), "21"},
		{mk(v1), "1"},
		{mk(v2), "2"},
		{nil, ""},
		{append([]proto.LogEvent{{Client: types.Reader(1)}}, mk(v1, v2)...), "12"}, // marks ignored
		{mk(v1, v2, v1), "12"}, // duplicates ignored
	}
	for i, c := range cases {
		if got := Crucial(c.log, v1, v2); got != c.want {
			t.Errorf("case %d: Crucial = %q, want %q", i, got, c.want)
		}
	}
}

func TestFlippingServerFlipsOnceOnTrigger(t *testing.T) {
	v1, v2 := val(1, 1, "1"), val(1, 2, "2")
	s := NewFlippingServer(types.Server(1), types.Reader(2))
	s.Handle(types.Writer(1), proto.Update{Val: v1})
	s.Handle(types.Writer(2), proto.Update{Val: v2})
	if got := Crucial(s.Log(), v1, v2); got != "12" {
		t.Fatalf("before trigger: %q", got)
	}
	// A non-trigger reader does not flip.
	s.Handle(types.Reader(1), proto.FastRead{})
	if got := Crucial(s.Log(), v1, v2); got != "12" {
		t.Fatalf("non-trigger flipped: %q", got)
	}
	// The trigger flips, exactly once.
	s.Handle(types.Reader(2), proto.FastRead{})
	if !s.Flipped() {
		t.Fatal("not flipped")
	}
	if got := Crucial(s.Log(), v1, v2); got != "21" {
		t.Fatalf("after trigger: %q", got)
	}
	s.Handle(types.Reader(2), proto.FastRead{})
	if got := Crucial(s.Log(), v1, v2); got != "21" {
		t.Fatalf("second trigger changed info again: %q", got)
	}
}

func TestFlippingServerWithOneWriteIsNoop(t *testing.T) {
	v1 := val(1, 1, "1")
	s := NewFlippingServer(types.Server(1), types.Reader(2))
	s.Handle(types.Writer(1), proto.Update{Val: v1})
	s.Handle(types.Reader(2), proto.FastRead{})
	if got := Crucial(s.Log(), v1, val(1, 2, "2")); got != "1" {
		t.Fatalf("crucial = %q", got)
	}
}

func TestDecideMajority(t *testing.T) {
	v1, v2 := val(1, 1, "1"), val(1, 2, "2")
	log12 := proto.LogAck{Events: []proto.LogEvent{{Client: types.Writer(1), Val: v1}, {Client: types.Writer(2), Val: v2}}}
	log21 := proto.LogAck{Events: []proto.LogEvent{{Client: types.Writer(2), Val: v2}, {Client: types.Writer(1), Val: v1}}}
	empty := proto.LogAck{}
	cases := []struct {
		acks []proto.LogAck
		want types.Value
	}{
		{[]proto.LogAck{log12, log12, log12}, v2},
		{[]proto.LogAck{log21, log21, log21}, v1},
		{[]proto.LogAck{log21, log21, log12}, v1},
		{[]proto.LogAck{log12, log21}, v2}, // tie → larger tag
		{[]proto.LogAck{empty, empty}, types.InitialValue()},
		{nil, types.InitialValue()},
	}
	for i, c := range cases {
		if got := DecideMajority(c.acks); got != c.want {
			t.Errorf("case %d: DecideMajority = %v, want %v", i, got, c.want)
		}
	}
}

func newServers(p *Protocol, n int, cfg quorum.Config) []register.ServerLogic {
	out := make([]register.ServerLogic, n)
	for i := range out {
		out[i] = p.NewServer(types.Server(i+1), cfg)
	}
	return out
}

func TestProtocolSequentialRun(t *testing.T) {
	p := New()
	cfg := quorum.Config{S: 3, T: 1, R: 2, W: 2}
	if p.Implementable(cfg) {
		t.Fatal("the full-info strawman must not claim implementability")
	}
	if p.WriteRounds() != 1 || p.ReadRounds() != 2 {
		t.Fatal("round counts wrong")
	}
	servers := newServers(p, 3, cfg)
	w1 := p.NewWriter(types.Writer(1), cfg)
	rounds, v, err := register.CountRounds(w1.WriteOp("1"), servers)
	if err != nil || rounds != 1 {
		t.Fatalf("write: rounds=%d err=%v", rounds, err)
	}
	r1 := p.NewReader(types.Reader(1), cfg)
	rounds, got, err := register.CountRounds(r1.ReadOp(), servers)
	if err != nil || rounds != 2 {
		t.Fatalf("read: rounds=%d err=%v", rounds, err)
	}
	if got != v {
		t.Fatalf("read %v, wrote %v", got, v)
	}
}

func TestProtocolSequentialWritesLastWins(t *testing.T) {
	p := New()
	cfg := quorum.Config{S: 3, T: 1, R: 2, W: 2}
	servers := newServers(p, 3, cfg)
	if _, _, err := register.CountRounds(p.NewWriter(types.Writer(1), cfg).WriteOp("1"), servers); err != nil {
		t.Fatal(err)
	}
	_, v2, err := register.CountRounds(p.NewWriter(types.Writer(2), cfg).WriteOp("2"), servers)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := register.CountRounds(p.NewReader(types.Reader(1), cfg).ReadOp(), servers)
	if err != nil {
		t.Fatal(err)
	}
	if got != v2 {
		t.Fatalf("read %v after sequential writes, want %v", got, v2)
	}
}

func TestNewWithFlipsBuildsFlippingServers(t *testing.T) {
	p := NewWithFlips(types.Reader(2), []types.ProcID{types.Server(2)})
	cfg := quorum.Config{S: 3, T: 1, R: 2, W: 2}
	if _, ok := p.NewServer(types.Server(2), cfg).(*FlippingServer); !ok {
		t.Error("server 2 should flip")
	}
	if _, ok := p.NewServer(types.Server(1), cfg).(*LogServer); !ok {
		t.Error("server 1 should be plain")
	}
}

func TestReadBadReplies(t *testing.T) {
	p := New()
	cfg := quorum.Config{S: 3, T: 1, R: 2, W: 2}
	op := p.NewReader(types.Reader(1), cfg).ReadOp()
	op.Begin()
	if _, _, _, err := op.Next([]register.Reply{{From: types.Server(1), Msg: proto.UpdateAck{}}}); err == nil {
		t.Error("round 1 accepted an UpdateAck")
	}
	wop := p.NewWriter(types.Writer(1), cfg).WriteOp("x")
	wop.Begin()
	if _, _, _, err := wop.Next([]register.Reply{{From: types.Server(1), Msg: proto.Query{}}}); err == nil {
		t.Error("write accepted a Query")
	}
}
