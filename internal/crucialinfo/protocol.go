package crucialinfo

import (
	"fmt"
	"sort"

	"fastreg/internal/proto"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/types"
)

// Protocol is the best-effort full-info fast-write candidate: one-round
// writes, two-round reads over append-only-log servers. The read decides by
// majority vote over the per-server receipt orders — the strongest decision
// rule the crucial-info model allows. Theorem 1 says no such protocol can
// be atomic; the chain engine (internal/chains) exhibits the violating
// executions.
type Protocol struct {
	// FlipTrigger, when non-zero, builds FlippingServers for the servers in
	// FlipServers, triggered by that reader's first round-trip — the
	// adversary of the sieve analysis (Section 4.2).
	FlipTrigger types.ProcID
	// FlipServers is the set Σ1 of servers whose crucial info the trigger
	// affects.
	FlipServers map[types.ProcID]bool
	// ReadRoundTrips is the read's round count k ≥ 2 (default 2). Rounds
	// 2…k are pure queries; the paper's Section 3 note says the W1Rk
	// impossibility reduces to W1R2 by treating rounds 2…k as one — the
	// chain engine exercises exactly that.
	ReadRoundTrips int
}

// New returns the plain full-info W1R2 candidate.
func New() *Protocol { return &Protocol{} }

// NewKRound returns the W1Rk candidate whose reads take k ≥ 2 round trips.
func NewKRound(k int) *Protocol {
	if k < 2 {
		panic("crucialinfo: NewKRound needs k ≥ 2")
	}
	return &Protocol{ReadRoundTrips: k}
}

// NewWithFlips returns the adversarial variant: the servers in sigma1 flip
// their crucial info when trigger's first read round-trip arrives.
func NewWithFlips(trigger types.ProcID, sigma1 []types.ProcID) *Protocol {
	set := make(map[types.ProcID]bool, len(sigma1))
	for _, s := range sigma1 {
		set[s] = true
	}
	return &Protocol{FlipTrigger: trigger, FlipServers: set}
}

// Name implements register.Protocol.
func (p *Protocol) Name() string {
	return fmt.Sprintf("W1R%d-fullinfo", p.ReadRounds())
}

// WriteRounds implements register.Protocol.
func (p *Protocol) WriteRounds() int { return 1 }

// ReadRounds implements register.Protocol.
func (p *Protocol) ReadRounds() int {
	if p.ReadRoundTrips < 2 {
		return 2
	}
	return p.ReadRoundTrips
}

// Implementable implements register.Protocol: never — this is the Theorem 1
// strawman (and even in degenerate configurations it makes no atomicity
// promise).
func (p *Protocol) Implementable(quorum.Config) bool { return false }

// NewServer implements register.Protocol.
func (p *Protocol) NewServer(id types.ProcID, _ quorum.Config) register.ServerLogic {
	if p.FlipServers[id] {
		return NewFlippingServer(id, p.FlipTrigger)
	}
	return NewLogServer(id)
}

type writer struct {
	id   types.ProcID
	need int
	ts   int64
}

// NewWriter implements register.Protocol.
func (p *Protocol) NewWriter(id types.ProcID, cfg quorum.Config) register.Writer {
	return &writer{id: id, need: cfg.ReplyQuorum()}
}

func (w *writer) ID() types.ProcID { return w.id }

func (w *writer) WriteOp(data string) register.Operation {
	w.ts++
	val := types.Value{Tag: types.Tag{TS: w.ts, WID: w.id}, Data: data}
	return &fastWrite{client: w.id, val: val, need: w.need}
}

// fastWrite is the one-round full-info write.
type fastWrite struct {
	client types.ProcID
	val    types.Value
	need   int
}

func (w *fastWrite) Client() types.ProcID { return w.client }
func (w *fastWrite) Kind() types.OpKind   { return types.OpWrite }
func (w *fastWrite) Arg() types.Value     { return w.val }

func (w *fastWrite) Begin() register.Round {
	return register.Round{Payload: proto.Update{Val: w.val}, Need: w.need}
}

func (w *fastWrite) Next(replies []register.Reply) (*register.Round, types.Value, bool, error) {
	for _, r := range replies {
		if _, ok := r.Msg.(proto.UpdateAck); !ok {
			return nil, types.Value{}, false, register.BadReply("full-info write", r.Msg)
		}
	}
	return nil, w.val, true, nil
}

type reader struct {
	id     types.ProcID
	need   int
	rounds int
}

// NewReader implements register.Protocol.
func (p *Protocol) NewReader(id types.ProcID, cfg quorum.Config) register.Reader {
	return &reader{id: id, need: cfg.ReplyQuorum(), rounds: p.ReadRounds()}
}

func (r *reader) ID() types.ProcID { return r.id }

func (r *reader) ReadOp() register.Operation {
	return &fullInfoRead{client: r.id, need: r.need, rounds: r.rounds}
}

// fullInfoRead is the k-round full-info read (k ≥ 2): round 1 leaves a
// marker and collects logs (the blind round whose effect Section 4.2
// sieves); rounds 2…k query again and the decision uses the final round's
// logs.
type fullInfoRead struct {
	client types.ProcID
	need   int
	rounds int
	phase  int
}

func (r *fullInfoRead) Client() types.ProcID { return r.client }
func (r *fullInfoRead) Kind() types.OpKind   { return types.OpRead }
func (r *fullInfoRead) Arg() types.Value     { return types.Value{} }

func (r *fullInfoRead) Begin() register.Round {
	r.phase = 1
	return register.Round{Payload: proto.FastRead{}, Need: r.need}
}

func (r *fullInfoRead) Next(replies []register.Reply) (*register.Round, types.Value, bool, error) {
	if r.phase < 1 || r.phase > r.rounds {
		return nil, types.Value{}, false, fmt.Errorf("%w: full-info read in phase %d of %d", register.ErrProtocol, r.phase, r.rounds)
	}
	acks := make([]proto.LogAck, 0, len(replies))
	for _, rep := range replies {
		ack, ok := rep.Msg.(proto.LogAck)
		if !ok {
			return nil, types.Value{}, false, register.BadReply(fmt.Sprintf("full-info read round %d", r.phase), rep.Msg)
		}
		acks = append(acks, ack)
	}
	if r.phase < r.rounds {
		r.phase++
		return &register.Round{Payload: proto.Query{}, Need: r.need}, types.Value{}, false, nil
	}
	return nil, DecideMajority(acks), true, nil
}

// DecideMajority is the full-info read's decision rule: each log votes for
// the last distinct written value it received ("the write that overwrote
// the others"); the value with most votes wins, ties broken by tag order.
// With all logs agreeing ("12" everywhere or "21" everywhere) this matches
// what atomicity forces; under mixed orders it is one consistent guess —
// and no guess can be right in every execution, which is the theorem.
func DecideMajority(acks []proto.LogAck) types.Value {
	votes := make(map[types.Value]int)
	for _, ack := range acks {
		vals := ack.WrittenValues()
		var last types.Value
		if len(vals) > 0 {
			last = vals[len(vals)-1]
		} else {
			last = types.InitialValue()
		}
		votes[last]++
	}
	if len(votes) == 0 {
		return types.InitialValue()
	}
	cands := make([]types.Value, 0, len(votes))
	for v := range votes {
		cands = append(cands, v)
	}
	sort.Slice(cands, func(i, j int) bool {
		if votes[cands[i]] != votes[cands[j]] {
			return votes[cands[i]] > votes[cands[j]]
		}
		return cands[j].Less(cands[i]) // tie: larger tag first
	})
	return cands[0]
}
