package harness

import (
	"strings"
	"testing"
)

// TestTable1MatchesPaper is the headline reproduction of Table 1: the
// empirical verdict of every quadrant must match the paper's claim at
// S=5, t=1, W=2, R=2.
func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1(5)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	want := map[string]bool{
		"W2R2": true,  // t < S/2
		"W1R2": false, // Theorem 1 (this paper)
		"W2R1": true,  // R < S/t − 2 holds at (5,1,2)
		"W1R1": false, // [12] multi-writer
	}
	for _, r := range rows {
		claim, ok := want[r.Design]
		if !ok {
			t.Fatalf("unexpected design %q", r.Design)
		}
		if r.Claim != claim {
			t.Errorf("%s: paper claim rendered as %v, want %v", r.Design, r.Claim, claim)
		}
		if r.Empirical != claim {
			t.Errorf("%s: empirical verdict %v (%s) disagrees with the paper's %v",
				r.Design, r.Empirical, r.Evidence, claim)
		}
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "W2R1") {
		t.Errorf("render:\n%s", out)
	}
}

// TestFig2LatencyShape: the Hasse diagram's latency ordering — fast
// operations take 1 RTT, slow ones 2.
func TestFig2LatencyShape(t *testing.T) {
	rows := Fig2(50)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	wantRTT := map[string][2]float64{
		"W2R2": {2, 2},
		"W1R2": {1, 2},
		"W2R1": {2, 1},
		"W1R1": {1, 1},
	}
	for _, r := range rows {
		want := wantRTT[r.Design]
		if !approx(r.WriteRTT, want[0]) || !approx(r.ReadRTT, want[1]) {
			t.Errorf("%s: measured (%.2f, %.2f) RTTs, want (%.0f, %.0f)",
				r.Design, r.WriteRTT, r.ReadRTT, want[0], want[1])
		}
	}
	// The trade-off: only W2R2 and W2R1 are atomic at this config, and
	// W2R1's read is strictly faster than W2R2's.
	byName := map[string]Fig2Row{}
	for _, r := range rows {
		byName[r.Design] = r
	}
	if !byName["W2R2"].ConsistencyAtomic || !byName["W2R1"].ConsistencyAtomic {
		t.Error("atomic quadrants misclassified")
	}
	if byName["W1R2"].ConsistencyAtomic || byName["W1R1"].ConsistencyAtomic {
		t.Error("impossible quadrants misclassified")
	}
	if byName["W2R1"].ReadLat.Mean >= byName["W2R2"].ReadLat.Mean {
		t.Errorf("fast read not faster: W2R1 %.1f vs W2R2 %.1f",
			byName["W2R1"].ReadLat.Mean, byName["W2R2"].ReadLat.Mean)
	}
	out := RenderFig2(rows)
	if !strings.Contains(out, "Fig 2") {
		t.Errorf("render:\n%s", out)
	}
}

func approx(got, want float64) bool {
	return got > want*0.95 && got < want*1.1
}

func TestDesignSpaceOrder(t *testing.T) {
	names := []string{}
	for _, p := range DesignSpace() {
		names = append(names, p.Name())
	}
	want := []string{"W2R2", "W1R2", "W2R1", "W1R1"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("order %v, want %v", names, want)
		}
	}
}
