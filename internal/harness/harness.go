// Package harness regenerates the paper's summary artifacts:
//
//   - Table1 — the design-space verdict table (Table 1): for each quadrant
//     of Fig 2, the theoretical verdict, this repository's empirical
//     verdict (randomized adversarial runs checked for atomicity, plus the
//     executable chain argument for fast writes), and the round-trip
//     counts;
//   - Fig2 — the latency/consistency Hasse diagram as numbers: read and
//     write latency of each protocol at a fixed RTT.
package harness

import (
	"fmt"
	"strings"

	"fastreg/internal/atomicity"
	"fastreg/internal/chains"
	"fastreg/internal/mwabd"
	"fastreg/internal/netsim"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/types"
	"fastreg/internal/vclock"
	"fastreg/internal/w1r1"
	"fastreg/internal/w1r2"
	"fastreg/internal/w2r1"
	"fastreg/internal/workload"
)

// DesignSpace returns the four protocols of Fig 2 in Table 1 order.
func DesignSpace() []register.Protocol {
	return []register.Protocol{mwabd.New(), w1r2.New(), w2r1.New(), w1r1.New()}
}

// Table1Row is one row of the reproduced Table 1.
type Table1Row struct {
	Design      string // "W2R2", "W1R2", "W2R1", "W1R1"
	WriteRounds int
	ReadRounds  int
	// Claim is the paper's verdict for the row's configuration.
	Claim bool
	// Empirical is this run's verdict: true = all adversarial histories
	// atomic, false = a violation was exhibited.
	Empirical bool
	// Evidence describes how the verdict was obtained.
	Evidence string
}

// String renders the row.
func (r Table1Row) String() string {
	claim := "impossible"
	if r.Claim {
		claim = "atomic"
	}
	emp := "VIOLATION"
	if r.Empirical {
		emp = "atomic"
	}
	return fmt.Sprintf("%-6s W%dR%d  paper:%-10s measured:%-9s  %s",
		r.Design, r.WriteRounds, r.ReadRounds, claim, emp, r.Evidence)
}

// Table1 reproduces Table 1 on the canonical configuration S=5, t=1, W=2,
// R=2 (each quadrant's verdict at that point of the parameter space).
func Table1(trialsPerProtocol int) []Table1Row {
	cfg := quorum.Config{S: 5, T: 1, R: 2, W: 2}
	var rows []Table1Row
	for _, p := range DesignSpace() {
		row := Table1Row{
			Design:      p.Name(),
			WriteRounds: p.WriteRounds(),
			ReadRounds:  p.ReadRounds(),
			Claim:       p.Implementable(cfg),
		}
		row.Empirical, row.Evidence = judge(p, cfg, trialsPerProtocol)
		rows = append(rows, row)
	}
	return rows
}

// judge gathers the empirical verdict for one protocol: randomized
// adversarial workloads, then — for fast-write candidates — the executable
// chain argument, which is guaranteed to find the violation when one is
// forced.
func judge(p register.Protocol, cfg quorum.Config, trials int) (atomic bool, evidence string) {
	for seed := int64(1); seed <= int64(trials); seed++ {
		sim := netsim.MustNew(cfg, p, netsim.WithSeed(seed), netsim.WithDelay(netsim.UniformDelay(1, 150)))
		h := workload.Run(sim, workload.Mix{WritesPerWriter: 4, ReadsPerReader: 4})
		if res := atomicity.Check(h); !res.Atomic {
			return false, fmt.Sprintf("random schedule seed=%d: %s", seed, res.Violation.Code)
		}
	}
	// Sequential cross-writer probe (the simplest adversary for fast
	// writes).
	sim := netsim.MustNew(cfg, p, netsim.WithSeed(99))
	sim.InvokeAt(0, sim.Writer(2).WriteOp("a"), func(types.Value, error) {
		sim.InvokeAt(sim.Now()+1, sim.Writer(1).WriteOp("b"), func(types.Value, error) {
			sim.InvokeAt(sim.Now()+1, sim.Reader(1).ReadOp(), nil)
		})
	})
	sim.Run()
	if res := atomicity.Check(sim.History()); !res.Atomic {
		return false, "sequential cross-writer writes: " + res.Violation.Code.String()
	}
	// Executable Theorem 1 argument for fast-write candidates.
	if p.WriteRounds() == 1 && p.ReadRounds() == 2 {
		rep, err := chains.FindViolation(p, cfg.S)
		if err == nil && len(rep.Violations) > 0 {
			v := rep.First()
			return false, fmt.Sprintf("chain argument: %s/%s %s", v.Phase, v.Execution, v.Result.Violation.Code)
		}
	}
	return true, fmt.Sprintf("%d adversarial schedules atomic", trials+1)
}

// RenderTable1 formats the rows with the Table 1 header.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1 — design space of fast MWMR atomic register implementations (S=5 t=1 W=2 R=2)\n")
	for _, r := range rows {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig2Row is one protocol's latency point in the Hasse diagram.
type Fig2Row struct {
	Design            string
	WriteRTT, ReadRTT float64 // latency in round trips (derived from virtual time)
	WriteLat, ReadLat workload.LatencyStats
	ConsistencyAtomic bool // whether the protocol is atomic on the config
}

// String renders the row.
func (r Fig2Row) String() string {
	cons := "weak"
	if r.ConsistencyAtomic {
		cons = "atomic"
	}
	return fmt.Sprintf("%-6s write=%.1f RTT read=%.1f RTT consistency=%-6s (write %s | read %s)",
		r.Design, r.WriteRTT, r.ReadRTT, cons, r.WriteLat, r.ReadLat)
}

// Fig2 measures the latency shape of the Hasse diagram: each protocol's
// write/read latency at a constant one-way delay, expressed in RTTs.
func Fig2(oneWay vclock.Duration) []Fig2Row {
	cfg := quorum.Config{S: 5, T: 1, R: 2, W: 2}
	rtt := float64(2 * oneWay)
	var rows []Fig2Row
	for _, p := range DesignSpace() {
		sim := netsim.MustNew(cfg, p, netsim.WithDelay(netsim.ConstDelay(oneWay)))
		h := workload.Run(sim, workload.Mix{WritesPerWriter: 5, ReadsPerReader: 5})
		stats := workload.Measure(h)
		rows = append(rows, Fig2Row{
			Design:            p.Name(),
			WriteLat:          stats[types.OpWrite],
			ReadLat:           stats[types.OpRead],
			WriteRTT:          stats[types.OpWrite].Mean / rtt,
			ReadRTT:           stats[types.OpRead].Mean / rtt,
			ConsistencyAtomic: p.Implementable(cfg),
		})
	}
	return rows
}

// RenderFig2 formats the rows with the Fig 2 header.
func RenderFig2(rows []Fig2Row) string {
	var b strings.Builder
	b.WriteString("Fig 2 — latency/consistency trade-off (constant one-way delay; latency in RTTs)\n")
	for _, r := range rows {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}
