package audit

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"fastreg/internal/mwabd"
	"fastreg/internal/netsim"
	"fastreg/internal/proto"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/transport"
	"fastreg/internal/types"
)

// clusterEnv is a captured multi-process-shaped deployment: S replicas
// over the in-process transport, each with its own trace log, plus
// helpers to run client "processes" (one transport.Client + one client
// log each) against it.
type clusterEnv struct {
	t       *testing.T
	dir     string
	cfg     quorum.Config
	p       register.Protocol
	net     *transport.ChanNetwork
	servers []*transport.Server
	writers []*Writer
	addrs   []string
	paths   []string
	nclient int
}

func newClusterEnv(t *testing.T, cfg quorum.Config, p register.Protocol, sopts ...transport.ServerOption) *clusterEnv {
	t.Helper()
	env := &clusterEnv{t: t, dir: t.TempDir(), cfg: cfg, p: p, net: transport.NewChanNetwork()}
	for i := 1; i <= cfg.S; i++ {
		path := filepath.Join(env.dir, fmt.Sprintf("s%d.trlog", i))
		w, err := NewFileWriter(path, ServerHeader(i, p.Name(), cfg))
		if err != nil {
			t.Fatal(err)
		}
		addr := fmt.Sprintf("srv-%d", i)
		lis, err := env.net.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		opts := append([]transport.ServerOption{transport.WithServerCapture(w.Handle)}, sopts...)
		srv, err := transport.NewServer(cfg, p, i, lis, opts...)
		if err != nil {
			t.Fatal(err)
		}
		env.servers = append(env.servers, srv)
		env.writers = append(env.writers, w)
		env.addrs = append(env.addrs, addr)
		env.paths = append(env.paths, path)
	}
	t.Cleanup(env.close)
	return env
}

func (env *clusterEnv) close() {
	for _, s := range env.servers {
		s.Close()
	}
	for _, w := range env.writers {
		w.Close()
	}
}

// client starts one captured client "process" and returns it with its
// log path registered for the merge.
func (env *clusterEnv) client(t *testing.T) (*transport.Client, *Writer) {
	t.Helper()
	env.nclient++
	label := fmt.Sprintf("client-%d", env.nclient)
	path := filepath.Join(env.dir, label+".trlog")
	w, err := NewFileWriter(path, ClientHeader(label, env.p.Name(), env.cfg))
	if err != nil {
		t.Fatal(err)
	}
	c, err := transport.NewClient(env.cfg, env.p, env.addrs, env.net.Dial, transport.WithOpCapture(w.Op))
	if err != nil {
		t.Fatal(err)
	}
	env.paths = append(env.paths, path)
	return c, w
}

// mergeNow closes all logs and merges them (the servers stay up).
func (env *clusterEnv) mergeNow(t *testing.T, paths ...string) *Merge {
	t.Helper()
	for _, w := range env.writers {
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if paths == nil {
		paths = env.paths
	}
	m, err := MergeFiles(paths...)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

var w2r2Shape = quorum.Config{S: 3, T: 1, R: 4, W: 4}

// TestCaptureMergeCheckClean is the subsystem's happy path: two client
// processes hammer interleaved keys on one fleet; the merged trace logs
// check clean, with full coverage, and the per-process histories land in
// distinct clock domains.
func TestCaptureMergeCheckClean(t *testing.T) {
	env := newClusterEnv(t, w2r2Shape, mwabd.New())
	c1, w1 := env.client(t)
	c2, w2 := env.client(t)
	defer c1.Close()
	defer c2.Close()

	ctx := context.Background()
	keys := []string{"alpha", "beta", "gamma"}
	var wg sync.WaitGroup
	// Process 1 drives w1/w2 and r1/r2; process 2 drives w3/w4 and r3/r4
	// — the identity partition a real multi-process run must use.
	for proc, c := range []*transport.Client{c1, c2} {
		proc, c := proc, c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				k := keys[i%len(keys)]
				wid := proc*2 + i%2 + 1
				if _, err := c.Write(ctx, k, wid, fmt.Sprintf("p%d-%d", proc, i)); err != nil {
					t.Error(err)
				}
				rid := proc*2 + i%2 + 1
				if _, err := c.Read(ctx, k, rid); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	c1.Close()
	c2.Close()
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	m := env.mergeNow(t)
	if len(m.Clients) != 2 || len(m.Replicas) != env.cfg.S {
		t.Fatalf("merge saw %d clients, %d replicas", len(m.Clients), len(m.Replicas))
	}
	if !m.FullCoverage {
		t.Fatalf("full deployment should have full coverage; warnings: %v", m.Warnings)
	}
	if len(m.Keys) != len(keys) {
		t.Fatalf("merged %d keys, want %d", len(m.Keys), len(keys))
	}
	// Ops from the two processes must sit in different domains.
	kh := m.Keys["alpha"]
	doms := map[int]bool{}
	for _, op := range kh.Ops {
		doms[kh.DomainOf(op)] = true
	}
	if len(doms) != 2 {
		t.Fatalf("alpha ops span %d domains, want 2", len(doms))
	}

	rep := m.Check()
	if !rep.Clean {
		t.Fatalf("clean run flagged:\n%s", rep.Summary())
	}
	if rep.Operations != 48 {
		t.Fatalf("checked %d ops, want 48", rep.Operations)
	}
}

// TestMergeSynthesizesCrashedClientWrite: a write that only exists in
// replica logs (its client "crashed" before logging — here: its log is
// simply excluded from the merge) is synthesized as an optional write,
// so another process's read of the value checks clean instead of
// reading from nowhere.
func TestMergeSynthesizesCrashedClientWrite(t *testing.T) {
	env := newClusterEnv(t, w2r2Shape, mwabd.New())
	crashed, _ := env.client(t) // its log is never merged
	healthy, hw := env.client(t)
	defer crashed.Close()
	defer healthy.Close()

	ctx := context.Background()
	if _, err := crashed.Write(ctx, "k", 1, "doomed"); err != nil {
		t.Fatal(err)
	}
	v, err := healthy.Read(ctx, "k", 3)
	if err != nil {
		t.Fatal(err)
	}
	if v.Data != "doomed" {
		t.Fatalf("read %q", v.Data)
	}
	healthy.Close()
	if err := hw.Close(); err != nil {
		t.Fatal(err)
	}

	// Merge replica logs + the healthy client only.
	paths := append([]string{}, env.paths[:env.cfg.S]...)
	paths = append(paths, filepath.Join(env.dir, "client-2.trlog"))
	m := env.mergeNow(t, paths...)
	if m.Synthesized != 1 {
		t.Fatalf("synthesized %d writes, want 1 (warnings: %v)", m.Synthesized, m.Warnings)
	}
	rep := m.Check()
	if !rep.Clean {
		t.Fatalf("read of crashed client's write flagged:\n%s", rep.Summary())
	}
}

// TestMergePartialReplicaLogs covers the degraded-coverage paths: a
// replica log missing entirely and another truncated mid-record. The
// merge still works (S−t logs suffice to see every committed write) but
// the coverage flag drops and the warning names the gap.
func TestMergePartialReplicaLogs(t *testing.T) {
	env := newClusterEnv(t, w2r2Shape, mwabd.New())
	c, cw := env.client(t)
	defer c.Close()
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		if _, err := c.Write(ctx, "k", 1+i%2, fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Read(ctx, "k", 1); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	for _, w := range env.writers {
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Drop s1's log entirely and tear s2's mid-record.
	s2 := env.paths[1]
	b, err := os.ReadFile(s2)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s2, b[:len(b)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	paths := append([]string{}, env.paths[1:]...) // skip s1
	m, err := MergeFiles(paths...)
	if err != nil {
		t.Fatal(err)
	}
	if m.FullCoverage {
		t.Fatal("partial logs reported full coverage")
	}
	found := false
	for _, f := range m.Files {
		if f.Path == s2 && f.Truncated {
			found = true
		}
	}
	if !found {
		t.Fatalf("torn log not marked truncated; warnings: %v", m.Warnings)
	}
	rep := m.Check()
	if !rep.Clean {
		t.Fatalf("clean run flagged under partial logs:\n%s", rep.Summary())
	}
}

// TestMergeDedupsRetriedRounds builds replica logs with the duplicate
// records an at-least-once transport produces (the same write handled
// twice at one replica) and checks they collapse to one candidate.
func TestMergeDedupsRetriedRounds(t *testing.T) {
	dir := t.TempDir()
	cfg := quorum.Config{S: 3, T: 1, R: 1, W: 1}
	val := types.Value{Tag: types.Tag{TS: 1, WID: types.Writer(1)}, Data: "x"}
	var paths []string
	for i := 1; i <= 2; i++ { // only 2 of 3 replicas logged
		path := filepath.Join(dir, fmt.Sprintf("s%d.trlog", i))
		w, err := NewFileWriter(path, ServerHeader(i, "W2R2", cfg))
		if err != nil {
			t.Fatal(err)
		}
		env := proto.Envelope{From: types.Writer(1), To: types.Server(i), Key: "k", OpID: 1, Round: 2, Payload: proto.Update{Val: val}}
		w.Handle(env, proto.UpdateAck{}, 1)
		w.Handle(env, proto.UpdateAck{}, 2) // retried round: exact duplicate
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}
	m, err := MergeFiles(paths...)
	if err != nil {
		t.Fatal(err)
	}
	if m.DuplicateHandles != 2 {
		t.Fatalf("dropped %d duplicates, want 2", m.DuplicateHandles)
	}
	if m.Synthesized != 1 {
		t.Fatalf("synthesized %d, want exactly 1 despite retries and two replicas", m.Synthesized)
	}
	if rep := m.Check(); !rep.Clean {
		t.Fatalf("lone optional write flagged:\n%s", rep.Summary())
	}
}

// TestStaleReadFaultDetected drives the full negative path: a fleet of
// frozen, lying replicas (WithStaleReadFault) serves a reader the
// initial value after the same reader saw a real write — the merged
// trace logs must produce a VIOLATED, binding verdict.
func TestStaleReadFaultDetected(t *testing.T) {
	// Every replica freezes a key after 4 handled requests: one write
	// (2 requests) plus one read (2 requests) pass, the next read lies.
	env := newClusterEnv(t, w2r2Shape, mwabd.New(), transport.WithStaleReadFault(4))
	c, cw := env.client(t)
	defer c.Close()

	ctx := context.Background()
	if _, err := c.Write(ctx, "k", 1, "real"); err != nil {
		t.Fatal(err)
	}
	v, err := c.Read(ctx, "k", 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Data != "real" {
		t.Fatalf("pre-poison read got %q", v.Data)
	}
	v, err = c.Read(ctx, "k", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsInitial() {
		t.Fatalf("post-poison read got %v, fault not triggered", v)
	}
	c.Close()
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}

	rep := env.mergeNow(t).Check()
	if rep.Clean {
		t.Fatalf("stale read not detected:\n%s", rep.Summary())
	}
	if !rep.Binding {
		t.Fatalf("full-coverage violation should be binding:\n%s", rep.Summary())
	}
}

// TestMergeIdentityCollision: two client logs driving the same writer
// identity merge with a warning, re-homed identities, and a non-binding
// result — and without tag collisions the verdict itself stays clean.
func TestMergeIdentityCollision(t *testing.T) {
	env := newClusterEnv(t, w2r2Shape, mwabd.New())
	c1, w1 := env.client(t)
	c2, w2 := env.client(t)
	defer c1.Close()
	defer c2.Close()
	ctx := context.Background()
	// Both processes use writer 1 — on DIFFERENT keys, so the protocols
	// stay correct but the identity precondition is violated.
	if _, err := c1.Write(ctx, "k1", 1, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Write(ctx, "k2", 1, "b"); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	c2.Close()
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	m := env.mergeNow(t)
	if m.FullCoverage {
		t.Fatal("identity collision should drop coverage")
	}
	warned := false
	for _, w := range m.Warnings {
		if strings.Contains(w, "appears in both") {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("no collision warning: %v", m.Warnings)
	}
	if rep := m.Check(); !rep.Clean {
		t.Fatalf("collision on disjoint keys should still check clean:\n%s", rep.Summary())
	}
}

// TestMultiLiveCaptureMatchesTransport: the in-process backend's capture
// hooks produce logs the same merge consumes — one Open-shaped store,
// full coverage, clean verdict.
func TestMultiLiveCapture(t *testing.T) {
	dir := t.TempDir()
	cfg := w2r2Shape
	p := mwabd.New()
	var paths []string
	var sw []*Writer
	cw, err := NewFileWriter(filepath.Join(dir, "client.trlog"), ClientHeader("client-1", p.Name(), cfg))
	if err != nil {
		t.Fatal(err)
	}
	paths = append(paths, filepath.Join(dir, "client.trlog"))
	for i := 1; i <= cfg.S; i++ {
		path := filepath.Join(dir, fmt.Sprintf("s%d.trlog", i))
		w, err := NewFileWriter(path, ServerHeader(i, p.Name(), cfg))
		if err != nil {
			t.Fatal(err)
		}
		sw = append(sw, w)
		paths = append(paths, path)
	}
	handleAt := func(server types.ProcID, env proto.Envelope, reply proto.Message, seq uint64) {
		sw[server.Index-1].HandleAt(server, env, reply, seq)
	}
	ml, err := netsim.NewMultiLive(cfg, p,
		netsim.WithMultiOpCapture(cw.Op),
		netsim.WithMultiServerCapture(handleAt))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("k%d", i%2)
		if _, err := ml.Write(ctx, k, 1+i%cfg.W, fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
		if _, err := ml.Read(ctx, k, 1+i%cfg.R); err != nil {
			t.Fatal(err)
		}
	}
	ml.Close()
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	for _, w := range sw {
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	m, err := MergeFiles(paths...)
	if err != nil {
		t.Fatal(err)
	}
	if !m.FullCoverage {
		t.Fatalf("in-process capture should be fully covered: %v", m.Warnings)
	}
	if rep := m.Check(); !rep.Clean {
		t.Fatalf("MultiLive capture flagged:\n%s", rep.Summary())
	}
}
