// Package audit is the capture/replay subsystem: it turns the atomicity
// checker — until now limited to the operations one process observed —
// into a tool that verifies real multi-process deployments.
//
// # The problem
//
// regclient can check its own history because it holds one clock: every
// invocation and response it recorded is totally ordered. Two regclient
// processes hammering the same fleet have NO shared clock, and real-time
// order across them is not observable — so their histories were
// "individually, not jointly, checkable". Capture-and-offline-check is
// the standard answer: every process appends what it observed to a trace
// log, and an offline merge reconstructs one multi-client history.
//
// # The model, and why the verdict is binding
//
// Each capture log is one CLOCK DOMAIN. Client logs record completed
// operations with their intervals in the recording process's own
// (per-key vclock) time; replica logs record every request a server
// handled and what it replied. The merge joins them per key:
//
//   - operations from one client log keep their intervals and share a
//     domain — within a process, real-time order IS observable and is
//     preserved in full;
//   - operations from different logs are never real-time ordered: the
//     offline checker (atomicity.CheckDomains) treats every cross-domain
//     pair as concurrent. This is not a shortcut but the truth of the
//     model — without a shared clock, "A finished before B started" is
//     fundamentally unobservable across processes, and imposing any such
//     edge could manufacture violations that never happened;
//   - writes observed at replicas but missing from every client log (a
//     client crashed before logging, or ran without -capture) are
//     synthesized as OPTIONAL pending writes — exactly the checker's
//     completion semantics for crashed operations — so other processes'
//     reads of those values check cleanly instead of reading "from
//     nowhere". Tags make this sound: a value's (ts, wid) tag names its
//     write uniquely, so the read-from relation survives the merge even
//     though no clock does.
//
// Everything the merged checker DOES assume is evidence in the logs:
// same-domain interval order, the read-from relation over tagged values,
// and per-key locality. A VIOLATED verdict therefore indicts the store,
// not the harness — it exhibits a key whose observed operations admit no
// legal linearization under assumptions strictly weaker than the
// single-process checker's. The one caveat is coverage: if replica logs
// are missing or truncated, a write may exist that no surviving log
// shows, and a read of it would look like a violation. Report.Binding
// tracks exactly this — with all S replica logs intact, every value any
// replica ever served has a visible origin, and verdicts are binding.
//
// # The pieces
//
//   - Writer appends proto.TraceRecord frames to a per-process .trlog
//     file: TraceClientOp records via the history recorder's capture
//     sink (fastreg.WithCapture, regclient -capture), TraceServerHandle
//     records via the server hooks (regserver -capture,
//     netsim.WithMultiServerCapture);
//   - MergeFiles parses any set of logs — S−t of S replica logs and a
//     partial client log are still useful, just annotated — and joins
//     them into per-key histories with domain maps;
//   - Merge.Check replays the merged history through the atomicity
//     checker and produces per-key verdicts with binding notes;
//   - cmd/regaudit is the operator surface over both.
package audit

import (
	"bufio"
	"fmt"
	"os"
	"sync"

	"fastreg/internal/history"
	"fastreg/internal/proto"
	"fastreg/internal/quorum"
	"fastreg/internal/types"
)

// TraceExt is the conventional file extension for capture logs.
const TraceExt = ".trlog"

// flushEvery bounds how many records may sit in the write buffer: a
// killed process loses at most this many trailing records (the merge
// tolerates the torn frame a kill can leave mid-flush).
const flushEvery = 64

// Writer appends trace records to one capture log. It is safe for
// concurrent use — operation sinks and server hooks fire from many
// goroutines — and latches the first I/O error rather than failing the
// traced process: capture is an observer, never a participant.
//
// Replica logs are DURABLE-BEFORE-VISIBLE: a server-log Writer flushes
// every record, and both server runtimes emit the capture record before
// the request's reply is sent — so any value a client ever observed has
// its write's record on disk, even if the replica is later killed -9 or
// its log is merged while the fleet is live. That property is what makes
// a mid-run or post-crash merge free of spurious read-from-nowhere
// verdicts: a read's value can always be traced to a write record.
// Client logs stay buffered (flushEvery): losing a client's own tail
// records only drops constraints — the writes among them resurface from
// replica evidence as optional operations — and never manufactures a
// violation.
type Writer struct {
	mu      sync.Mutex
	f       *os.File // guardedby: mu
	bw      *bufio.Writer
	n       int
	err     error
	durable bool

	// Rotation state (RotateAt): when the current segment reaches maxBytes
	// the writer seals it and continues in "<path>.<seg>", re-writing the
	// header so every segment is independently parseable. Segments are
	// never renamed — once a successor exists, a segment is immutable,
	// which is what lets the streaming follower tail by offset.
	path     string
	header   proto.TraceRecord
	maxBytes int64 // guardedby: mu — 0 = rotation off
	written  int64 // guardedby: mu — bytes appended to the current segment
	seg      int   // guardedby: mu — 0 for the base file, N for "<path>.N"
}

// ClientHeader builds the header record for a client process's log.
// label names the process (unique per capture directory by convention,
// e.g. "client-<pid>-<n>").
func ClientHeader(label, protocol string, cfg quorum.Config) proto.TraceRecord {
	return proto.TraceRecord{
		Kind: proto.TraceHeader, Origin: label, Protocol: protocol,
		S: cfg.S, T: cfg.T, R: cfg.R, W: cfg.W,
	}
}

// ServerHeader builds the header record for replica s_i's log. The
// replica's identity travels in the record's Server field — that is how
// the merge tells replica logs from client logs.
func ServerHeader(replica int, protocol string, cfg quorum.Config) proto.TraceRecord {
	return proto.TraceRecord{
		Kind: proto.TraceHeader, Origin: types.Server(replica).String(), Protocol: protocol,
		S: cfg.S, T: cfg.T, R: cfg.R, W: cfg.W,
		Server: types.Server(replica),
	}
}

// NewFileWriter creates (truncating) the capture log at path and writes
// its header record. A ServerHeader makes the log durable-before-visible
// (per-record flush, see Writer); a ClientHeader keeps it buffered.
func NewFileWriter(path string, header proto.TraceRecord) (*Writer, error) {
	if header.Kind != proto.TraceHeader {
		return nil, fmt.Errorf("audit: log must open with a header record, got %v", header.Kind)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &Writer{
		f: f, bw: bufio.NewWriterSize(f, 64<<10),
		durable: header.Server.Role == types.RoleServer,
		path:    path, header: header,
	}
	if err := proto.WriteTraceRecord(w.bw, header); err != nil {
		f.Close()
		return nil, err
	}
	if err := w.bw.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	if st, err := f.Stat(); err == nil {
		w.mu.Lock()
		w.written = st.Size()
		w.mu.Unlock()
	}
	return w, nil
}

// RotateAt enables size-based log rotation: once the current segment
// holds at least maxBytes, it is sealed and writing continues in
// "<path>.1", "<path>.2", … — each opening with a fresh copy of the
// header. Long-running captures stay mergeable piecewise (Segments
// collects a base path's family; MergeFiles groups them back into one
// logical log). maxBytes ≤ 0 turns rotation off.
func (w *Writer) RotateAt(maxBytes int64) {
	w.mu.Lock()
	w.maxBytes = maxBytes
	w.mu.Unlock()
}

// SegmentPath names rotated segment n of a base log path (n = 0 is the
// base path itself).
func SegmentPath(path string, n int) string {
	if n == 0 {
		return path
	}
	return fmt.Sprintf("%s.%d", path, n)
}

// Segments returns the existing on-disk segment family of a base log
// path, in write order: path, path.1, path.2, … up to the first gap.
func Segments(path string) []string {
	segs := []string{path}
	for n := 1; ; n++ {
		p := SegmentPath(path, n)
		if _, err := os.Stat(p); err != nil {
			return segs
		}
		segs = append(segs, p)
	}
}

// rotateLocked seals the current segment and opens the next one with a
// fresh header. Called with mu held. Errors latch like any append error.
func (w *Writer) rotateLocked() {
	if err := w.bw.Flush(); err != nil {
		w.err = err
		return
	}
	if err := w.f.Close(); err != nil {
		w.err = err
		return
	}
	w.seg++
	f, err := os.Create(SegmentPath(w.path, w.seg))
	if err != nil {
		w.err = err
		w.f = nil
		return
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 64<<10)
	w.n = 0
	w.written = 0
	hdr, err := proto.EncodeTraceRecord(w.header)
	if err != nil {
		w.err = err
		return
	}
	if _, err := w.bw.Write(hdr); err != nil {
		w.err = err
		return
	}
	w.written = int64(len(hdr))
	w.err = w.bw.Flush()
}

// append writes one record under the lock — flushed immediately on
// durable (replica) logs, periodically on client logs, so a crash loses
// at most a bounded tail of a client's own operations.
func (w *Writer) append(rec proto.TraceRecord) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil || w.f == nil {
		return
	}
	buf, err := proto.AppendTraceRecord(proto.GetBuf(), rec)
	if err != nil {
		w.err = err
		return
	}
	_, err = w.bw.Write(buf)
	w.written += int64(len(buf))
	proto.PutBuf(buf)
	if err != nil {
		w.err = err
		return
	}
	if w.n++; w.durable || w.n >= flushEvery {
		w.n = 0
		w.err = w.bw.Flush()
	}
	if w.maxBytes > 0 && w.written >= w.maxBytes && w.err == nil {
		w.rotateLocked()
	}
}

// Epoch stamps an epoch-boundary record — the coordinator's Stamp hook
// (internal/epoch). Always flushed, on client logs too: the streaming
// follower treats a boundary's presence as "this log's view of the epoch
// is complete", so it must never sit in a buffer behind the records it
// fences.
func (w *Writer) Epoch(n uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil || w.f == nil {
		return
	}
	buf, err := proto.AppendTraceRecord(proto.GetBuf(), proto.TraceRecord{Kind: proto.TraceEpoch, Epoch: n})
	if err != nil {
		w.err = err
		return
	}
	_, err = w.bw.Write(buf)
	w.written += int64(len(buf))
	proto.PutBuf(buf)
	if err != nil {
		w.err = err
		return
	}
	w.n = 0
	w.err = w.bw.Flush()
	if w.maxBytes > 0 && w.written >= w.maxBytes && w.err == nil {
		w.rotateLocked()
	}
}

// Op is the client-capture sink (history recorder signature): it appends
// one TraceClientOp record per responded operation. Wire it via
// transport.WithOpCapture / netsim.WithMultiOpCapture, or let
// fastreg.WithCapture do so.
func (w *Writer) Op(key string, op history.Op) {
	rec := proto.TraceRecord{
		Kind:     proto.TraceClientOp,
		Key:      key,
		Client:   op.Client,
		OpID:     op.OpID,
		Op:       op.Kind,
		Val:      op.Value,
		Invoke:   int64(op.Invoke),
		Response: int64(op.Response),
		Epoch:    op.Epoch,
	}
	if op.Err != nil {
		rec.Failed = true
		rec.Err = op.Err.Error()
	}
	w.append(rec)
}

// Handle is the replica-capture hook for transport.WithServerCapture:
// one TraceServerHandle record per handled request, with the value the
// request carried and the maximal value the reply served. seq is the
// key's handled counter read under the shard lock (zero when the hook
// has none) — the per-(replica,key) total order the served-value
// cross-check relies on.
func (w *Writer) Handle(env proto.Envelope, reply proto.Message, seq uint64) {
	w.HandleAt(env.To, env, reply, seq)
}

// HandleAt is Handle with an explicit replica identity, for hooks whose
// envelopes don't carry the destination (netsim.WithMultiServerCapture).
func (w *Writer) HandleAt(server types.ProcID, env proto.Envelope, reply proto.Message, seq uint64) {
	rec := proto.TraceRecord{
		Kind:    proto.TraceServerHandle,
		Key:     env.Key,
		Client:  env.From,
		OpID:    env.OpID,
		Server:  server,
		Round:   env.Round,
		Payload: env.Payload.Kind(),
		Epoch:   env.Epoch,
		Seq:     seq,
	}
	if up, ok := env.Payload.(proto.Update); ok {
		rec.Val = up.Val
	}
	switch m := reply.(type) {
	case proto.QueryAck:
		rec.ReplyVal = m.Val
	case proto.FastReadAck:
		for _, e := range m.Vector {
			rec.ReplyVal = types.MaxValue(rec.ReplyVal, e.Val)
		}
	}
	w.append(rec)
}

// MultiServerHook adapts a slice of per-replica writers (index i−1 for
// replica s_i) to netsim.WithMultiServerCapture's callback shape, so an
// in-process fleet writes the same per-replica logs a deployed one does.
func MultiServerHook(replicas []*Writer) func(types.ProcID, proto.Envelope, proto.Message, uint64) {
	return func(server types.ProcID, env proto.Envelope, reply proto.Message, seq uint64) {
		if i := server.Index - 1; i >= 0 && i < len(replicas) {
			replicas[i].HandleAt(server, env, reply, seq)
		}
	}
}

// Err reports the first latched I/O error.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Flush forces buffered records to disk.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return w.err
	}
	if err := w.bw.Flush(); err != nil && w.err == nil {
		w.err = err
	}
	return w.err
}

// Close flushes and closes the log. Safe to call more than once; later
// appends are dropped.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return w.err
	}
	if err := w.bw.Flush(); err != nil && w.err == nil {
		w.err = err
	}
	if err := w.f.Close(); err != nil && w.err == nil {
		w.err = err
	}
	w.f = nil
	return w.err
}
