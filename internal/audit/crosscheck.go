package audit

import (
	"fmt"
	"sort"

	"fastreg/internal/proto"
	"fastreg/internal/types"
)

// StaleServe is one served-value cross-check finding: a replica's reply
// carried a tag OLDER than a value the same replica had already
// acknowledged (an applied Update) or itself served earlier. Register
// semantics make a replica's stored tag monotone per key, so a stale
// serve is replica-local evidence of lost or forged state — it indicts
// the replica directly, independent of any client's history, and is
// binding on its own log alone.
type StaleServe struct {
	Replica int
	Key     string
	Seq     uint64      // handled-counter position of the stale reply
	Served  types.Value // what the reply carried
	Known   types.Value // the newer value the replica had already committed to
}

// String renders the finding.
func (s StaleServe) String() string {
	return fmt.Sprintf("replica s%d served %s for key %q at seq %d after committing to %s",
		s.Replica, s.Served, s.Key, s.Seq, s.Known)
}

// serveMonitor replays one replica's handle records through the
// monotonicity check. Records must be fed per key in Seq order —
// capture emission happens outside the shard lock, so a log's append
// order can transpose neighbours; Feed holds out-of-order records back
// and processes contiguous runs, and ForceAdvance drains past gaps when
// no more records can arrive (log end, or the record's epoch retired).
type serveMonitor struct {
	replica int
	keys    map[string]*serveKey
}

type serveKey struct {
	next  uint64 // next handled-counter value expected (Seq starts at 1)
	hold  map[uint64]handleObs
	known types.Value // max tag acked or served so far
}

// handleObs is the slice of a handle record the cross-check needs.
type handleObs struct {
	payload  proto.Kind
	val      types.Value
	replyVal types.Value
}

func newServeMonitor(replica int) *serveMonitor {
	return &serveMonitor{replica: replica, keys: make(map[string]*serveKey)}
}

// Feed consumes one handle record (Seq > 0 required; callers skip
// unordered records) and returns any findings the newly contiguous run
// produced.
func (m *serveMonitor) Feed(rec proto.TraceRecord) []StaleServe {
	sk, ok := m.keys[rec.Key]
	if !ok {
		sk = &serveKey{next: 1, hold: make(map[uint64]handleObs)}
		m.keys[rec.Key] = sk
	}
	if rec.Seq < sk.next {
		return nil // duplicate (retried capture); already processed
	}
	sk.hold[rec.Seq] = handleObs{payload: rec.Payload, val: rec.Val, replyVal: rec.ReplyVal}
	return m.drain(rec.Key, sk, false)
}

// ForceAdvance processes every held-back record in Seq order, skipping
// gaps — for when the stream is known complete (file end; the records'
// epochs retired, after which stragglers are dropped upstream anyway).
func (m *serveMonitor) ForceAdvance() []StaleServe {
	var out []StaleServe
	keys := make([]string, 0, len(m.keys))
	for k := range m.keys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, m.drain(k, m.keys[k], true)...)
	}
	return out
}

func (m *serveMonitor) drain(key string, sk *serveKey, skipGaps bool) []StaleServe {
	var out []StaleServe
	for len(sk.hold) > 0 {
		obs, ok := sk.hold[sk.next]
		if !ok {
			if !skipGaps {
				return out
			}
			// Jump to the smallest held Seq past the gap.
			min := uint64(0)
			for s := range sk.hold {
				if min == 0 || s < min {
					min = s
				}
			}
			sk.next = min
			obs = sk.hold[min]
		}
		delete(sk.hold, sk.next)
		sk.next++
		if obs.payload == proto.KindUpdate && !obs.val.IsInitial() {
			// An applied write: the replica's stored tag is now ≥ this.
			sk.known = types.MaxValue(sk.known, obs.val)
		}
		if !obs.replyVal.IsInitial() {
			if obs.replyVal.Tag.Less(sk.known.Tag) {
				out = append(out, StaleServe{
					Replica: m.replica, Key: key, Seq: sk.next - 1,
					Served: obs.replyVal, Known: sk.known,
				})
			}
			sk.known = types.MaxValue(sk.known, obs.replyVal)
		}
	}
	return out
}

// crossCheckFile runs the served-value cross-check over one replica
// log's records. Each file gets a fresh monitor: a restarted replica
// legitimately restarts its handled counters (and its state), so
// monotonicity is only claimed within one process lifetime. Records
// with Seq 0 predate the counter (or come from the in-process runtime)
// and are skipped.
func crossCheckFile(replica int, recs []proto.TraceRecord) []StaleServe {
	m := newServeMonitor(replica)
	var out []StaleServe
	for _, rec := range recs {
		if rec.Kind != proto.TraceServerHandle || rec.Seq == 0 {
			continue
		}
		out = append(out, m.Feed(rec)...)
	}
	return append(out, m.ForceAdvance()...)
}
