package audit

import (
	"errors"
	"fmt"
	"os"
	"sort"

	"fastreg/internal/history"
	"fastreg/internal/obs"
	"fastreg/internal/proto"
	"fastreg/internal/types"
	"fastreg/internal/vclock"
)

// This file is the streaming half of the continuous audit: a Follower
// tails a capture directory's rotating trace logs WHILE the fleet is
// live, groups records into per-epoch buckets by their explicit epoch
// tags, and — every time the weight-throwing coordinator's boundary
// stamp lands in every log — hands a closed window to the windowed
// checker and emits one EpochVerdict. Memory is O(window): at most
// three epoch buckets are live, retired epochs survive only as the
// frontier, and log bytes are consumed incrementally (never re-read,
// never held).
//
// Epoch attribution is by record tag, not log position: an op of epoch
// N+1 can respond (and append) before epoch N's boundary is stamped.
// The boundary record is a per-log completeness signal — "every epoch-N
// record this log will ever hold is above this line". Client records
// always respect it (an op's record is appended before its weight
// returns); replica records can straggle when a client gave up on a
// request that a replica later handled. Stragglers are dropped and
// counted — sound, because replica records are optional evidence only.

// EpochVerdict is one closed epoch's verdict from the streaming
// checker: the windowed equivalent of a Report, emitted live.
type EpochVerdict struct {
	Epoch uint64
	Clean bool

	// Ops counts completed client operations attributed to the epoch
	// itself; Keys the keys its window touched; Synthesized the
	// replica-evidence writes added to the epoch's bucket.
	Ops         int
	Keys        int
	Synthesized int

	// Violations holds the keys whose window admits no linearization
	// under any frontier base; Stale the served-value cross-check
	// findings surfaced since the previous verdict.
	Violations []KeyVerdict
	Stale      []StaleServe

	// Stragglers counts records dropped since the previous verdict
	// because their epoch had already been sealed in their log.
	Stragglers int
}

// String renders the one-line live verdict regaudit prints per epoch.
func (v EpochVerdict) String() string {
	status := "CLEAN"
	if !v.Clean {
		status = fmt.Sprintf("VIOLATED (%d keys, %d stale serves)", len(v.Violations), len(v.Stale))
	}
	s := fmt.Sprintf("epoch %d: %s — %d ops, %d keys", v.Epoch, status, v.Ops, v.Keys)
	if v.Synthesized > 0 {
		s += fmt.Sprintf(", %d synthesized", v.Synthesized)
	}
	if v.Stragglers > 0 {
		s += fmt.Sprintf(", %d stragglers dropped", v.Stragglers)
	}
	return s
}

// FollowOptions configures a Follower. The zero value works: no
// metrics, verdicts collected via the OnVerdict callback only.
type FollowOptions struct {
	// Obs registers the follower's gauges and counters (nil disables).
	Obs *obs.Registry
	// OnVerdict fires once per finalized epoch, in epoch order, from
	// the Poll/Drain goroutine.
	OnVerdict func(EpochVerdict)
}

// tailLog is one capture log being followed: a rotation family read
// segment by segment, byte by byte.
type tailLog struct {
	base    string
	seg     int
	f       *os.File
	buf     []byte // undecoded tail of the current read position
	started bool   // header parsed
	done    bool   // corrupt or unreadable; no further reads

	header   proto.TraceRecord
	isServer bool
	replica  int
	dom      int // clock domain (client logs)

	mon         *serveMonitor // served-value cross-check (replica logs)
	sawBoundary uint64        // highest epoch boundary stamped, per-log
}

// followBucket is one epoch's accumulating state before finalization.
type followBucket struct {
	ops        *EpochOps
	clientRefs map[writeRef]bool
	evidence   map[writeRef]types.Value
	evSeen     map[seenHandle]bool
	evOrder    []writeRef
	synthDone  bool
	synthCount int
}

// Follower tails a set of capture logs and emits per-epoch verdicts.
// All methods must be called from one goroutine.
type Follower struct {
	logs   map[string]*tailLog // confined to the single driving goroutine
	order  []*tailLog
	nclien int // client logs seen, for domain numbering

	wc        *WindowChecker
	buckets   map[uint64]*followBucket
	finalized uint64 // highest epoch with an emitted verdict
	synthDom  int    // next fresh domain for synthesized writes

	staleBuf   []StaleServe
	stragglers int

	// Warnings accumulate follow anomalies; callers drain them.
	Warnings []string

	onVerdict func(EpochVerdict)

	// Totals across the run.
	CleanEpochs    int
	ViolatedEpochs int
	TotalOps       int

	epochsClosed, verdictBad, straggler, unepoched *obs.Counter
	lagBytes, windowOps, carriedOps                *obs.Gauge
}

// NewFollower creates an empty follower; add logs with AddLog as they
// appear on disk.
func NewFollower(opts FollowOptions) *Follower {
	f := &Follower{
		logs:      make(map[string]*tailLog),
		wc:        NewWindowChecker(),
		buckets:   make(map[uint64]*followBucket),
		synthDom:  1 << 20, // far above any client-log domain index
		onVerdict: opts.OnVerdict,
	}
	if reg := opts.Obs; reg != nil {
		f.epochsClosed = reg.Counter("audit.follow.epochs_finalized")
		f.verdictBad = reg.Counter("audit.follow.epochs_violated")
		f.straggler = reg.Counter("audit.follow.stragglers_dropped")
		f.unepoched = reg.Counter("audit.follow.unepoched_dropped")
		f.lagBytes = reg.Gauge("audit.follow.merge_lag_bytes")
		f.windowOps = reg.Gauge("audit.follow.window_ops")
		f.carriedOps = reg.Gauge("audit.follow.carried_writes")
	}
	return f
}

// AddLog starts following a base log path (its rotation family).
// Idempotent: known paths are ignored.
func (f *Follower) AddLog(path string) error {
	if _, ok := f.logs[path]; ok {
		return nil
	}
	fh, err := os.Open(path)
	if err != nil {
		return err
	}
	l := &tailLog{base: path, f: fh}
	f.logs[path] = l
	f.order = append(f.order, l)
	return nil
}

// Finalized returns the highest epoch a verdict has been emitted for.
func (f *Follower) Finalized() uint64 { return f.finalized }

// Poll consumes newly appended bytes from every followed log, then
// finalizes every epoch whose window has closed in all logs, emitting
// verdicts in epoch order. Returns the number of verdicts emitted.
func (f *Follower) Poll() int {
	for _, l := range f.order {
		f.readLog(l)
	}
	f.updateGauges()
	n := 0
	for len(f.order) > 0 && f.complete(f.finalized+2) {
		f.finalizeEpoch(f.finalized + 1)
		n++
	}
	return n
}

// Drain finalizes the trailing epochs whose boundaries have landed in
// every log but whose successor never closed (the tail of a finished
// run). Call after the producers have exited and a final Poll made no
// progress; the trailing windows then hold every record they ever
// will. Returns the number of verdicts emitted.
func (f *Follower) Drain() int {
	n := 0
	for len(f.order) > 0 && f.complete(f.finalized+1) {
		f.finalizeEpoch(f.finalized + 1)
		n++
	}
	// Cross-check holdbacks past torn-tail gaps still deserve a verdict.
	for _, l := range f.order {
		if l.mon != nil {
			f.staleBuf = append(f.staleBuf, l.mon.ForceAdvance()...)
		}
	}
	f.updateGauges()
	return n
}

// PendingStale reports cross-check findings not yet attached to a
// verdict (Drain can surface findings after the last epoch finalizes).
func (f *Follower) PendingStale() []StaleServe { return f.staleBuf }

// Close releases the followed file handles.
func (f *Follower) Close() {
	for _, l := range f.order {
		if l.f != nil {
			l.f.Close()
			l.f = nil
		}
	}
}

// complete reports whether every followed log has stamped epoch n's
// boundary — the per-log signal that no more epoch-n records can
// legitimately appear.
func (f *Follower) complete(n uint64) bool {
	for _, l := range f.order {
		if l.sawBoundary < n {
			return false
		}
	}
	return true
}

// readLog consumes available bytes from one log, following rotation.
func (f *Follower) readLog(l *tailLog) {
	if l.done || l.f == nil {
		return
	}
	for {
		chunk := make([]byte, 64<<10)
		n, err := l.f.Read(chunk)
		if n > 0 {
			l.buf = append(l.buf, chunk[:n]...)
			f.decodeLog(l)
			if l.done {
				return
			}
		}
		if err != nil || n == 0 {
			// At the current segment's end: if a successor segment
			// exists, this segment is sealed (rotation never appends to
			// a sealed segment) — move on. Leftover undecoded bytes in
			// a sealed segment are corruption.
			next := SegmentPath(l.base, l.seg+1)
			if _, serr := os.Stat(next); serr != nil {
				return // still the live segment; more bytes may come
			}
			if len(l.buf) > 0 {
				f.warnf("%s: %d undecodable bytes at end of sealed segment %d", l.base, len(l.buf), l.seg)
				l.buf = nil
			}
			l.f.Close()
			nf, oerr := os.Open(next)
			if oerr != nil {
				f.warnf("%s: cannot open segment: %v", next, oerr)
				l.f, l.done = nil, true
				return
			}
			l.f = nf
			l.seg++
			l.started = false // each segment re-opens with a header
		}
	}
}

// decodeLog decodes complete frames from the log's buffer.
func (f *Follower) decodeLog(l *tailLog) {
	for {
		rec, n, err := proto.DecodeTraceRecord(l.buf)
		if err != nil {
			if errors.Is(err, proto.ErrTruncated) {
				return // incomplete frame: wait for more bytes
			}
			f.warnf("%s: corrupt frame, abandoning log: %v", l.base, err)
			l.done = true
			return
		}
		l.buf = l.buf[n:]
		f.consume(l, rec)
		if l.done {
			return
		}
	}
}

// consume routes one decoded record.
func (f *Follower) consume(l *tailLog, rec proto.TraceRecord) {
	if !l.started {
		if rec.Kind != proto.TraceHeader {
			f.warnf("%s: segment %d does not open with a header", l.base, l.seg)
			l.done = true
			return
		}
		l.started = true
		if l.seg == 0 {
			l.header = rec
			if rec.Server.Role == types.RoleServer {
				l.isServer = true
				l.replica = rec.Server.Index
				l.mon = newServeMonitor(l.replica)
			} else {
				l.dom = f.nclien
				f.nclien++
			}
		}
		return
	}
	switch rec.Kind {
	case proto.TraceHeader:
		f.warnf("%s: header mid-segment — corruption, abandoning log", l.base)
		l.done = true
	case proto.TraceEpoch:
		if rec.Epoch > l.sawBoundary {
			l.sawBoundary = rec.Epoch
		}
	case proto.TraceClientOp:
		if !f.admit(l, rec.Epoch) {
			return
		}
		b := f.bucket(rec.Epoch)
		op := history.Op{
			Client:   rec.Client,
			OpID:     rec.OpID,
			Kind:     rec.Op,
			Invoke:   vclock.Time(rec.Invoke),
			Response: vclock.Time(rec.Response),
			Value:    rec.Val,
			Epoch:    rec.Epoch,
		}
		if rec.Failed {
			op.Err = &capturedError{msg: rec.Err}
		}
		b.ops.Add(rec.Key, op, l.dom)
		b.clientRefs[writeRef{rec.Key, rec.Client, rec.OpID}] = true
	case proto.TraceServerHandle:
		// The cross-check consumes every ordered handle record, even
		// epoch stragglers — replica monotonicity has no epochs.
		if l.mon != nil && rec.Seq > 0 {
			f.staleBuf = append(f.staleBuf, l.mon.Feed(rec)...)
		}
		if rec.Payload != proto.KindUpdate || rec.Client.Role != types.RoleWriter || rec.Val.IsInitial() {
			return
		}
		if !f.admit(l, rec.Epoch) {
			return
		}
		b := f.bucket(rec.Epoch)
		ref := writeRef{rec.Key, rec.Client, rec.OpID}
		sh := seenHandle{ref: ref, replica: l.replica, round: rec.Round}
		if b.evSeen[sh] {
			return // retried round
		}
		b.evSeen[sh] = true
		if _, ok := b.evidence[ref]; !ok {
			b.evidence[ref] = rec.Val
			b.evOrder = append(b.evOrder, ref)
		}
	}
}

// admit decides whether a record with the given epoch tag may still
// enter a bucket: it must be tagged at all, must not postdate its own
// log's boundary for that epoch, and its bucket must not have been
// retired already.
func (f *Follower) admit(l *tailLog, epoch uint64) bool {
	if epoch == 0 {
		f.unepoched.Add(1)
		return false
	}
	if epoch <= l.sawBoundary || epoch <= f.finalized {
		if !l.isServer {
			// Client records must precede their boundary (the op's record
			// is appended before its weight returns); one arriving late
			// means a completed op is missing from its window and the
			// verdicts cannot be trusted.
			f.warnf("%s: client record for epoch %d arrived after its boundary — verdicts incomplete", l.base, epoch)
		}
		f.stragglers++
		f.straggler.Add(1)
		return false
	}
	return true
}

func (f *Follower) bucket(n uint64) *followBucket {
	b, ok := f.buckets[n]
	if !ok {
		b = &followBucket{
			ops:        NewEpochOps(n),
			clientRefs: make(map[writeRef]bool),
			evidence:   make(map[writeRef]types.Value),
			evSeen:     make(map[seenHandle]bool),
		}
		f.buckets[n] = b
	}
	return b
}

// ensureSynth adds the epoch's replica-evidence-only writes to its
// bucket as optional pending ops, once, in deterministic order.
func (f *Follower) ensureSynth(n uint64) {
	b, ok := f.buckets[n]
	if !ok || b.synthDone {
		return
	}
	b.synthDone = true
	sort.Slice(b.evOrder, func(i, j int) bool {
		a, c := b.evOrder[i], b.evOrder[j]
		if a.key != c.key {
			return a.key < c.key
		}
		if a.client != c.client {
			return a.client.Less(c.client)
		}
		return a.opID < c.opID
	})
	for _, ref := range b.evOrder {
		if b.clientRefs[ref] {
			continue
		}
		op := history.Op{
			Client: ref.client,
			OpID:   ref.opID,
			Kind:   types.OpWrite,
			Invoke: 1, // pending: interval unconstrained
			Value:  b.evidence[ref],
			Epoch:  n,
		}
		b.ops.Add(ref.key, op, f.synthDom)
		f.synthDom++
		b.synthCount++
	}
}

func (f *Follower) opsOf(n uint64) *EpochOps {
	if b, ok := f.buckets[n]; ok {
		return b.ops
	}
	return nil
}

// finalizeEpoch runs the three-epoch window for epoch m, emits its
// verdict, and retires the oldest bucket into the frontier.
func (f *Follower) finalizeEpoch(m uint64) {
	f.ensureSynth(m - 1)
	f.ensureSynth(m)
	f.ensureSynth(m + 1)
	window := []*EpochOps{f.opsOf(m - 1), f.opsOf(m), f.opsOf(m + 1)}
	bad := f.wc.Check(window)

	v := EpochVerdict{Epoch: m, Violations: bad, Stale: f.staleBuf, Stragglers: f.stragglers}
	f.staleBuf = nil
	f.stragglers = 0
	v.Clean = len(v.Violations) == 0 && len(v.Stale) == 0
	keySet := make(map[string]bool)
	for _, b := range window {
		if b == nil {
			continue
		}
		for k := range b.Keys {
			keySet[k] = true
		}
	}
	v.Keys = len(keySet)
	if b, ok := f.buckets[m]; ok {
		v.Synthesized = b.synthCount
		for _, ops := range b.ops.Keys {
			for _, o := range ops {
				if o.Done() && o.Err == nil {
					v.Ops++
				}
			}
		}
	}
	f.TotalOps += v.Ops
	if v.Clean {
		f.CleanEpochs++
	} else {
		f.ViolatedEpochs++
		f.verdictBad.Add(1)
	}
	f.epochsClosed.Add(1)

	f.wc.Retire(f.opsOf(m - 1))
	delete(f.buckets, m-1)
	f.finalized = m
	if f.onVerdict != nil {
		f.onVerdict(v)
	}
}

// updateGauges refreshes merge lag (bytes on disk not yet consumed) and
// window size.
func (f *Follower) updateGauges() {
	if f.lagBytes != nil {
		var lag int64
		for _, l := range f.order {
			if l.f == nil {
				continue
			}
			if pos, err := l.f.Seek(0, 1); err == nil {
				if st, err := os.Stat(SegmentPath(l.base, l.seg)); err == nil {
					lag += st.Size() - pos
				}
			}
			for n := l.seg + 1; ; n++ {
				st, err := os.Stat(SegmentPath(l.base, n))
				if err != nil {
					break
				}
				lag += st.Size()
			}
			lag += int64(len(l.buf))
		}
		f.lagBytes.Set(lag)
	}
	if f.windowOps != nil {
		n := 0
		for _, b := range f.buckets {
			for _, ops := range b.ops.Keys {
				n += len(ops)
			}
		}
		f.windowOps.Set(int64(n))
	}
	if f.carriedOps != nil {
		f.carriedOps.Set(int64(f.wc.CarriedOps()))
	}
}

func (f *Follower) warnf(format string, args ...any) {
	f.Warnings = append(f.Warnings, fmt.Sprintf(format, args...))
}
