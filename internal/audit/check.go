package audit

import (
	"fmt"
	"sort"
	"strings"

	"fastreg/internal/atomicity"
)

// KeyVerdict is the replay checker's decision for one key.
type KeyVerdict struct {
	Key    string
	Result atomicity.Result

	// Completed counts the operations the verdict is over; Optional the
	// failed/synthesized writes the checker may linearize or drop,
	// split as Pending (in flight when a log ended, or known only from
	// replica evidence) + Failed (the client saw the operation fail).
	Completed int
	Optional  int
	Pending   int
	Failed    int

	// Domains counts the distinct clock domains (originating processes)
	// the key's operations span.
	Domains int

	// Binding reports whether a violation on this key indicts the store
	// outright. Clean keys are always binding (a witness linearization is
	// a proof given the logs); a violated key is binding when coverage
	// guarantees no write is invisible — see Merge.FullCoverage. Notes
	// explains a non-binding verdict.
	Binding bool
	Notes   []string
}

// Report is the replay checker's decision over a whole merge.
type Report struct {
	Verdicts []KeyVerdict

	// Stale carries the served-value cross-check findings (replica
	// replies older than the replica's own committed state); any finding
	// makes the report non-clean, and is always binding — the replica's
	// own log convicts it.
	Stale []StaleServe

	// Clean is true when every key checked atomic.
	Clean bool

	// Binding is true when every violated key's verdict is binding.
	Binding bool

	// Operations is the total completed operation count checked.
	Operations int
}

// Violated returns the verdicts of non-atomic keys.
func (r *Report) Violated() []KeyVerdict {
	var out []KeyVerdict
	for _, v := range r.Verdicts {
		if !v.Result.Atomic {
			out = append(out, v)
		}
	}
	return out
}

// Check replays every merged key's history through the atomicity checker
// under the clock-domain model and reports per-key verdicts.
func (m *Merge) Check() *Report {
	rep := &Report{Clean: true, Binding: true, Stale: m.Stale}
	if len(rep.Stale) > 0 {
		rep.Clean = false
	}
	for _, k := range m.KeyNames() {
		kh := m.Keys[k]
		h := kh.History()
		v := KeyVerdict{
			Key:       k,
			Result:    atomicity.CheckDomains(h, kh.DomainOf),
			Completed: len(h.Completed()),
			Pending:   len(h.Pending()),
			Failed:    len(h.Failed()),
			Domains:   kh.NumDomains(),
			Binding:   true,
		}
		v.Optional = v.Pending + v.Failed
		rep.Operations += v.Completed
		if !v.Result.Atomic {
			rep.Clean = false
			// Name the clock domains of the implicated operations — with
			// per-process logs, "which process saw this" is the first
			// thing an operator needs. A no-linearization verdict
			// implicates every op, so cap the listing.
			ops := v.Result.Violation.Ops
			if len(ops) > 8 {
				v.Notes = append(v.Notes, fmt.Sprintf("%d operations implicated; first 8:", len(ops)))
				ops = ops[:8]
			}
			for _, op := range ops {
				v.Notes = append(v.Notes, fmt.Sprintf("%s observed by %s", op.Key(), kh.DomainLabel(kh.DomainOf(op))))
			}
			if !m.FullCoverage {
				v.Binding = false
				rep.Binding = false
				v.Notes = append(v.Notes,
					"NOT BINDING: replica logs are incomplete or identities collided, so a write may exist that no log shows — rerun with every replica capturing to make the verdict binding")
			}
		}
		rep.Verdicts = append(rep.Verdicts, v)
	}
	sort.Slice(rep.Verdicts, func(i, j int) bool { return rep.Verdicts[i].Key < rep.Verdicts[j].Key })
	return rep
}

// Summary renders the report compactly, one key per line plus a final
// verdict line — the shape regaudit prints.
func (r *Report) Summary() string {
	var b strings.Builder
	for _, v := range r.Verdicts {
		status := "ATOMIC"
		if !v.Result.Atomic {
			status = "VIOLATED — " + v.Result.String()
		}
		fmt.Fprintf(&b, "key %q: %s (%d ops", v.Key, status, v.Completed)
		if v.Optional > 0 {
			fmt.Fprintf(&b, ", %d optional", v.Optional)
		}
		b.WriteString(")\n")
		for _, n := range v.Notes {
			fmt.Fprintf(&b, "  note: %s\n", n)
		}
	}
	for _, s := range r.Stale {
		fmt.Fprintf(&b, "replica-stale: %s\n", s)
	}
	switch {
	case r.Clean:
		fmt.Fprintf(&b, "verdict: CLEAN — %d keys atomic over %d operations\n", len(r.Verdicts), r.Operations)
	case len(r.Violated()) == 0:
		// Every key linearizes, but a replica served stale state: the
		// cross-check convicts the replica even when clients never
		// observed the lie end to end.
		fmt.Fprintf(&b, "verdict: VIOLATED — %d stale replica serve(s) (binding)\n", len(r.Stale))
	default:
		n := len(r.Violated())
		binding := "binding"
		if !r.Binding {
			binding = "not binding (incomplete coverage)"
		}
		fmt.Fprintf(&b, "verdict: VIOLATED — %d of %d keys non-atomic (%s)\n", n, len(r.Verdicts), binding)
	}
	return b.String()
}
