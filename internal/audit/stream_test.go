package audit

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fastreg/internal/epoch"
	"fastreg/internal/history"
	"fastreg/internal/mwabd"
	"fastreg/internal/proto"
	"fastreg/internal/quorum"
	"fastreg/internal/transport"
	"fastreg/internal/types"
	"fastreg/internal/vclock"
)

// TestWriterRotationMerge: a size-capped writer splits its log into a
// .trlog.N segment family, and MergeFiles given only the base path
// reassembles the whole history across segments.
func TestWriterRotationMerge(t *testing.T) {
	dir := t.TempDir()
	cfg := quorum.Config{S: 3, T: 1, R: 1, W: 1}
	path := filepath.Join(dir, "client.trlog")
	w, err := NewFileWriter(path, ClientHeader("client-1", "W2R2", cfg))
	if err != nil {
		t.Fatal(err)
	}
	w.RotateAt(512)
	const n = 40
	for i := 1; i <= n; i++ {
		v := types.Value{Tag: types.Tag{TS: int64(i), WID: types.Writer(1)}, Data: fmt.Sprintf("v%02d", i)}
		w.Op("k", history.Op{
			Client: types.Writer(1), OpID: uint64(i), Kind: types.OpWrite,
			Invoke: vclock.Time(2*i - 1), Response: vclock.Time(2 * i), Value: v,
		})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs := Segments(path)
	if len(segs) < 3 {
		t.Fatalf("512-byte cap over %d records made %d segment(s), want >= 3", n, len(segs))
	}
	m, err := MergeFiles(path)
	if err != nil {
		t.Fatal(err)
	}
	rep := m.Check()
	if !rep.Clean {
		t.Fatalf("rotated clean history flagged:\n%s", rep.Summary())
	}
	if rep.Operations != n {
		t.Fatalf("merged %d ops across segments, want %d", rep.Operations, n)
	}
	// Listing every segment explicitly must not double the history.
	m2, err := MergeFiles(segs...)
	if err != nil {
		t.Fatal(err)
	}
	if rep2 := m2.Check(); rep2.Operations != n {
		t.Fatalf("explicit segment list merged %d ops, want %d", rep2.Operations, n)
	}
}

// forgeStaleReplicaLog writes a replica log whose own records convict
// it: an applied update committed tag 5, then a later reply served tag
// 2 — stale by the replica's own committed state.
func forgeStaleReplicaLog(t *testing.T, dir string) string {
	t.Helper()
	cfg := quorum.Config{S: 3, T: 1, R: 1, W: 1}
	path := filepath.Join(dir, "s1.trlog")
	w, err := NewFileWriter(path, ServerHeader(1, "W2R2", cfg))
	if err != nil {
		t.Fatal(err)
	}
	v5 := types.Value{Tag: types.Tag{TS: 5, WID: types.Writer(1)}, Data: "new"}
	v2 := types.Value{Tag: types.Tag{TS: 2, WID: types.Writer(1)}, Data: "old"}
	up := proto.Envelope{From: types.Writer(1), To: types.Server(1), Key: "k", OpID: 1, Round: 1, Payload: proto.Update{Val: v5}}
	w.Handle(up, proto.UpdateAck{}, 1)
	rd := proto.Envelope{From: types.Reader(1), To: types.Server(1), Key: "k", OpID: 2, Round: 1, Payload: proto.Query{}}
	w.Handle(rd, proto.QueryAck{Val: v2}, 2)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCrossCheckStaleServe: the offline merge surfaces a served-value
// regression as a binding violation even when no client log exists to
// catch it end to end.
func TestCrossCheckStaleServe(t *testing.T) {
	path := forgeStaleReplicaLog(t, t.TempDir())
	m, err := MergeFiles(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Stale) != 1 {
		t.Fatalf("cross-check found %d stale serves, want 1: %+v", len(m.Stale), m.Stale)
	}
	s := m.Stale[0]
	if s.Replica != 1 || s.Key != "k" {
		t.Fatalf("finding misattributed: %+v", s)
	}
	rep := m.Check()
	if rep.Clean {
		t.Fatal("stale serve did not flip the verdict")
	}
	if !strings.Contains(rep.Summary(), "stale replica serve") {
		t.Fatalf("summary does not name the stale serve:\n%s", rep.Summary())
	}
}

// TestFollowerCrossCheck: the streaming path surfaces the same
// replica-side finding, via Drain's holdback flush when no epoch ever
// closes.
func TestFollowerCrossCheck(t *testing.T) {
	path := forgeStaleReplicaLog(t, t.TempDir())
	f := NewFollower(FollowOptions{})
	defer f.Close()
	if err := f.AddLog(path); err != nil {
		t.Fatal(err)
	}
	f.Poll()
	f.Drain()
	if got := f.PendingStale(); len(got) != 1 {
		t.Fatalf("follower found %d stale serves, want 1 (warnings: %v)", len(got), f.Warnings)
	}
}

// epochCluster runs a captured cluster whose client borrows from a live
// weight-throwing coordinator, cutting an epoch after every batch of
// operations. Returns the follower (already drained) and the offline
// report over the same logs.
func mustCut(t *testing.T, co *epoch.Coordinator) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if co.Cut() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("cutover never accepted — weight leaked?")
}

// TestWindowEquivalenceClean: the streaming windowed checker and the
// offline merge agree on a clean multi-epoch run — same op count, every
// epoch CLEAN — with rotation forcing the follower across segment
// boundaries and incremental polls exercising live tailing.
func TestWindowEquivalenceClean(t *testing.T) {
	env := newClusterEnv(t, w2r2Shape, mwabd.New())
	for _, w := range env.writers {
		w.RotateAt(2048)
	}
	coord := epoch.New(nil)
	for _, w := range env.writers {
		coord.Stamp(w.Epoch)
	}
	label := "client-1"
	cpath := filepath.Join(env.dir, label+".trlog")
	cw, err := NewFileWriter(cpath, ClientHeader(label, env.p.Name(), env.cfg))
	if err != nil {
		t.Fatal(err)
	}
	cw.RotateAt(2048)
	coord.Stamp(cw.Epoch)
	env.paths = append(env.paths, cpath)
	c, err := transport.NewClient(env.cfg, env.p, env.addrs, env.net.Dial,
		transport.WithOpCapture(cw.Op), transport.WithEpochCoordinator(coord))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	f := NewFollower(FollowOptions{})
	defer f.Close()
	addLogs := func() {
		for _, p := range env.paths {
			if err := f.AddLog(p); err != nil {
				t.Fatal(err)
			}
		}
	}

	ctx := context.Background()
	const epochs, opsPer = 4, 10
	for e := 0; e < epochs; e++ {
		for i := 0; i < opsPer; i++ {
			k := fmt.Sprintf("k%d", i%3)
			if _, err := c.Write(ctx, k, 1+i%env.cfg.W, fmt.Sprintf("e%d-%d", e, i)); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Read(ctx, k, 1+i%env.cfg.R); err != nil {
				t.Fatal(err)
			}
		}
		mustCut(t, coord)
		// Tail what's on disk so far: flushes lag the appends (client
		// logs buffer), which is exactly what a live follower sees.
		for _, w := range env.writers {
			w.Flush()
		}
		cw.Flush()
		addLogs()
		f.Poll()
	}
	c.Close()
	mustCut(t, coord) // close the last traffic-bearing epoch
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if f.Finalized() == 0 {
		t.Fatal("no epoch finalized during live polling")
	}

	rep := env.mergeNow(t).Check()
	if !rep.Clean {
		t.Fatalf("offline verdict not clean:\n%s", rep.Summary())
	}

	f.Poll()
	f.Drain()
	for _, w := range f.Warnings {
		if strings.Contains(w, "client record") {
			t.Fatalf("client record straggled: %v", f.Warnings)
		}
	}
	if f.ViolatedEpochs != 0 {
		t.Fatalf("windowed checker violated %d epoch(s) on a clean run", f.ViolatedEpochs)
	}
	if f.CleanEpochs < epochs {
		t.Fatalf("finalized %d clean epochs, want >= %d", f.CleanEpochs, epochs)
	}
	if f.TotalOps != rep.Operations {
		t.Fatalf("windowed saw %d completed ops, offline saw %d", f.TotalOps, rep.Operations)
	}
}

// TestWindowEquivalenceViolated: a replica that serves a stale read
// mid-run is flagged by BOTH paths — the offline merge and the windowed
// verdict stream — so going streaming gives up no detection power.
func TestWindowEquivalenceViolated(t *testing.T) {
	env := newClusterEnv(t, w2r2Shape, mwabd.New(), transport.WithStaleReadFault(4))
	coord := epoch.New(nil)
	for _, w := range env.writers {
		coord.Stamp(w.Epoch)
	}
	label := "client-1"
	cpath := filepath.Join(env.dir, label+".trlog")
	cw, err := NewFileWriter(cpath, ClientHeader(label, env.p.Name(), env.cfg))
	if err != nil {
		t.Fatal(err)
	}
	coord.Stamp(cw.Epoch)
	env.paths = append(env.paths, cpath)
	c, err := transport.NewClient(env.cfg, env.p, env.addrs, env.net.Dial,
		transport.WithOpCapture(cw.Op), transport.WithEpochCoordinator(coord))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	if _, err := c.Write(ctx, "k", 1, "real"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(ctx, "k", 1); err != nil {
		t.Fatal(err)
	}
	mustCut(t, coord)
	// Every replica is poisoned now: this read returns the initial value
	// after "real" was both written and read — non-atomic.
	v, err := c.Read(ctx, "k", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsInitial() {
		t.Fatalf("post-poison read got %v, fault not triggered", v)
	}
	mustCut(t, coord)
	c.Close()
	mustCut(t, coord)
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}

	rep := env.mergeNow(t).Check()
	if rep.Clean {
		t.Fatalf("offline check missed the stale read:\n%s", rep.Summary())
	}

	f := NewFollower(FollowOptions{})
	defer f.Close()
	for _, p := range env.paths {
		if err := f.AddLog(p); err != nil {
			t.Fatal(err)
		}
	}
	f.Poll()
	f.Drain()
	if f.ViolatedEpochs == 0 {
		t.Fatalf("windowed checker missed the violation the offline check caught (clean=%d, warnings=%v)",
			f.CleanEpochs, f.Warnings)
	}
}
