package audit

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"strings"

	"fastreg/internal/history"
	"fastreg/internal/proto"
	"fastreg/internal/quorum"
	"fastreg/internal/types"
	"fastreg/internal/vclock"
)

// TraceFile is one parsed capture log.
type TraceFile struct {
	Path    string
	Header  proto.TraceRecord
	Records []proto.TraceRecord

	// Truncated marks a log that ended mid-frame or in garbage — the
	// expected shape of a process killed with records still buffered. The
	// intact prefix is used; the flag feeds the coverage accounting.
	Truncated bool
}

// IsServer reports whether the log was written by a replica, and which.
func (f *TraceFile) IsServer() (replica int, ok bool) {
	if f.Header.Server.Role == types.RoleServer {
		return f.Header.Server.Index, true
	}
	return 0, false
}

// Origin names the recording process.
func (f *TraceFile) Origin() string { return f.Header.Origin }

// ReadTraceFile parses one capture log, tolerating a truncated tail.
func ReadTraceFile(path string) (*TraceFile, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	br := bufio.NewReaderSize(fh, 64<<10)
	first, err := proto.ReadTraceRecord(br)
	if err != nil {
		return nil, fmt.Errorf("audit: %s: not a capture log: %w", path, err)
	}
	if first.Kind != proto.TraceHeader {
		return nil, fmt.Errorf("audit: %s: log does not open with a header record", path)
	}
	f := &TraceFile{Path: path, Header: first}
	for {
		rec, err := proto.ReadTraceRecord(br)
		if err != nil {
			if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				return f, nil // clean end
			}
			f.Truncated = true // torn tail: keep the intact prefix
			return f, nil
		}
		if rec.Kind == proto.TraceHeader {
			f.Truncated = true // a header mid-file is corruption; stop here
			return f, nil
		}
		f.Records = append(f.Records, rec)
	}
}

// ReadSegments reads a base path's whole on-disk segment family
// (Writer.RotateAt) as one logical log: every segment's records
// concatenated in write order under the base segment's header. A log
// that never rotated reads identically to ReadTraceFile.
func ReadSegments(path string) (*TraceFile, error) {
	segs := Segments(path)
	out, err := ReadTraceFile(segs[0])
	if err != nil {
		return nil, err
	}
	for _, p := range segs[1:] {
		if out.Truncated {
			break // a torn segment ends the usable prefix
		}
		f, err := ReadTraceFile(p)
		if err != nil {
			return nil, err
		}
		out.Records = append(out.Records, f.Records...)
		out.Truncated = f.Truncated
	}
	return out, nil
}

// segmentBase recognizes a rotated segment path "<base>.<N>" and
// returns its base, so a caller listing both a base log and its
// segments doesn't merge the family twice.
func segmentBase(p string) (string, bool) {
	i := strings.LastIndexByte(p, '.')
	if i <= 0 || i == len(p)-1 {
		return "", false
	}
	for _, c := range p[i+1:] {
		if c < '0' || c > '9' {
			return "", false
		}
	}
	return p[:i], true
}

// KeyHistory is one key's merged multi-process execution with its clock
// domain map.
type KeyHistory struct {
	Key string
	Ops []history.Op

	domains map[string]int // op.Key() → clock domain
	labels  []string       // shared across keys: domain → origin label
}

// History returns the merged execution as a checkable history.
func (kh *KeyHistory) History() history.History {
	ops := make([]history.Op, len(kh.Ops))
	copy(ops, kh.Ops)
	return history.History{Ops: ops}
}

// DomainOf is the clock-domain function for atomicity.CheckDomains.
func (kh *KeyHistory) DomainOf(op history.Op) int { return kh.domains[op.Key()] }

// NumDomains counts the distinct clock domains this key's operations
// span — how many independent processes touched the key.
func (kh *KeyHistory) NumDomains() int {
	seen := make(map[int]struct{}, len(kh.labels))
	for _, op := range kh.Ops {
		seen[kh.domains[op.Key()]] = struct{}{}
	}
	return len(seen)
}

// DomainLabel names a domain for diagnostics.
func (kh *KeyHistory) DomainLabel(d int) string {
	if d >= 0 && d < len(kh.labels) {
		return kh.labels[d]
	}
	return fmt.Sprintf("domain-%d", d)
}

// Merge is the joined view of a set of capture logs: per-key multi-client
// histories plus the coverage bookkeeping that decides how binding the
// verdicts are.
type Merge struct {
	Shape    quorum.Config
	Protocol string

	Files    []*TraceFile
	Clients  []*TraceFile
	Replicas map[int][]*TraceFile

	Keys map[string]*KeyHistory

	// Warnings are human-readable merge anomalies (truncated logs,
	// identity collisions, shape mismatches survived, …).
	Warnings []string

	// Synthesized counts writes reconstructed from replica evidence
	// alone; DuplicateHandles counts replica records dropped as
	// retried-round duplicates.
	Synthesized      int
	DuplicateHandles int

	// Stale holds served-value cross-check findings: replies in which a
	// replica served a tag older than a value it had already committed
	// to — replica-local evidence of lost or forged state, binding on
	// the replica's own log alone (see StaleServe).
	Stale []StaleServe

	// FullCoverage is true when every one of the shape's S replicas
	// contributed an untruncated log and no client identity collided —
	// the condition under which every value the fleet ever served has a
	// visible origin, making VIOLATED verdicts binding (see package doc).
	FullCoverage bool
}

// writeRef names one write operation as replicas saw it.
type writeRef struct {
	key    string
	client types.ProcID
	opID   uint64
}

// seenHandle identifies one (replica, round) observation of a write, for
// retry deduplication.
type seenHandle struct {
	ref     writeRef
	replica int
	round   uint8
}

// MergeFiles reads and joins a set of capture logs. Any mix works — all
// S replica logs plus every client's (the binding configuration), a
// subset after crashes, or client logs alone — with degraded coverage
// reported in Warnings and FullCoverage. Each path is read as a whole
// rotation family (path, path.1, path.2, …); explicitly listed segment
// paths whose base is also listed are skipped rather than double-read.
func MergeFiles(paths ...string) (*Merge, error) {
	if len(paths) == 0 {
		return nil, errors.New("audit: no trace logs to merge")
	}
	m := &Merge{
		Replicas: make(map[int][]*TraceFile),
		Keys:     make(map[string]*KeyHistory),
	}
	given := make(map[string]bool, len(paths))
	for _, p := range paths {
		given[p] = true
	}
	for _, p := range paths {
		if base, ok := segmentBase(p); ok && given[base] {
			continue // covered by the base path's family read
		}
		f, err := ReadSegments(p)
		if err != nil {
			return nil, err
		}
		m.Files = append(m.Files, f)
		if f.Truncated {
			m.warnf("%s: log truncated mid-record (process killed?); using the intact prefix", f.Origin())
		}
	}
	// All logs must describe one deployment.
	h0 := m.Files[0].Header
	m.Shape = quorum.Config{S: h0.S, T: h0.T, R: h0.R, W: h0.W}
	m.Protocol = h0.Protocol
	for _, f := range m.Files[1:] {
		h := f.Header
		if h.Protocol != m.Protocol || h.S != h0.S || h.T != h0.T || h.R != h0.R || h.W != h0.W {
			return nil, fmt.Errorf("audit: %s (%s %s) does not match %s (%s %s) — logs from different deployments",
				f.Origin(), h.Protocol, shapeStr(h),
				m.Files[0].Origin(), m.Protocol, shapeStr(h0))
		}
	}
	for _, f := range m.Files {
		if i, ok := f.IsServer(); ok {
			m.Replicas[i] = append(m.Replicas[i], f)
			if len(m.Replicas[i]) == 2 {
				m.warnf("multiple logs for replica s%d — a restarted replica or mixed runs; all are used", i)
			}
		} else {
			m.Clients = append(m.Clients, f)
		}
	}

	// Identity ownership: each reader/writer identity must live in one
	// client process. A collision (two logs driving w1 — concurrent
	// processes misconfigured, or the same identity across merged runs)
	// is survivable for the checker: the later file's ops are re-homed to
	// a fresh identity of the same role, which keeps per-op keys unique
	// while the clock-domain map still separates the two processes. But
	// replica evidence for a collided identity is ambiguous, so synthesis
	// skips it, and FullCoverage is off — concurrently reused identities
	// can also collide on tags, which nothing downstream can repair.
	owner := make(map[types.ProcID]int) // identity → client file index
	collided := make(map[types.ProcID]bool)
	alias := make(map[int]map[types.ProcID]types.ProcID) // client file → re-homing map
	nextIdx := map[types.Role]int{types.RoleReader: m.Shape.R, types.RoleWriter: m.Shape.W}
	aliasFor := func(fi int, id types.ProcID) types.ProcID {
		am := alias[fi]
		if am == nil {
			am = make(map[types.ProcID]types.ProcID)
			alias[fi] = am
		}
		a, ok := am[id]
		if !ok {
			nextIdx[id.Role]++
			a = types.ProcID{Role: id.Role, Index: nextIdx[id.Role]}
			am[id] = a
		}
		return a
	}
	for fi, f := range m.Clients {
		seen := make(map[types.ProcID]bool)
		for _, rec := range f.Records {
			if rec.Kind != proto.TraceClientOp || seen[rec.Client] {
				continue
			}
			seen[rec.Client] = true
			if prev, ok := owner[rec.Client]; ok && prev != fi {
				if !collided[rec.Client] {
					m.warnf("identity %s appears in both %s and %s — identities must be partitioned across processes (regclient -wbase/-rbase); later logs re-homed to a fresh identity and replica evidence for %s ignored",
						rec.Client, m.Clients[prev].Origin(), f.Origin(), rec.Client)
				}
				collided[rec.Client] = true
			} else {
				owner[rec.Client] = fi
			}
		}
	}

	// Domain labels: one per client log, then one per synthesized op.
	labels := make([]string, len(m.Clients))
	for i, f := range m.Clients {
		labels[i] = f.Origin()
	}

	// Pass 1: client operations, re-homed where identities collided.
	logged := make(map[writeRef]bool) // original identities, all op kinds
	for fi, f := range m.Clients {
		for _, rec := range f.Records {
			if rec.Kind != proto.TraceClientOp {
				continue
			}
			logged[writeRef{rec.Key, rec.Client, rec.OpID}] = true
			client := rec.Client
			if collided[client] && owner[client] != fi {
				client = aliasFor(fi, client)
			}
			op := history.Op{
				Client:   client,
				OpID:     rec.OpID,
				Kind:     rec.Op,
				Invoke:   vclock.Time(rec.Invoke),
				Response: vclock.Time(rec.Response),
				Value:    rec.Val,
			}
			if rec.Failed {
				op.Err = &capturedError{msg: rec.Err}
			}
			kh := m.key(rec.Key)
			kh.Ops = append(kh.Ops, op)
			kh.domains[op.Key()] = fi
		}
	}

	// Pass 2: replica evidence. Collect each write the fleet saw (an
	// Update from a writer identity), dedup retried rounds, and
	// synthesize the ones no client logged as optional pending writes in
	// fresh domains — the checker may linearize them where reads demand
	// or drop them, which is all a crashed client's write can claim.
	type candidate struct {
		val      types.Value
		replicas map[int]bool
	}
	cands := make(map[writeRef]*candidate)
	handleSeen := make(map[seenHandle]bool)
	order := []writeRef{} // deterministic synthesis order
	for ri, files := range m.Replicas {
		for _, f := range files {
			for _, rec := range f.Records {
				if rec.Kind != proto.TraceServerHandle || rec.Payload != proto.KindUpdate {
					continue
				}
				if rec.Client.Role != types.RoleWriter || rec.Val.IsInitial() {
					continue // read write-backs relay values; only writer updates originate them
				}
				if collided[rec.Client] {
					continue // ambiguous: two processes share this identity
				}
				ref := writeRef{rec.Key, rec.Client, rec.OpID}
				sh := seenHandle{ref: ref, replica: ri, round: rec.Round}
				if handleSeen[sh] {
					m.DuplicateHandles++ // retried round, at-least-once delivery
					continue
				}
				handleSeen[sh] = true
				c, ok := cands[ref]
				if !ok {
					c = &candidate{val: rec.Val, replicas: make(map[int]bool)}
					cands[ref] = c
					order = append(order, ref)
				}
				c.replicas[ri] = true
				if c.val != rec.Val {
					m.warnf("replicas disagree on the value of %s#%d on key %q (%s vs %s)",
						ref.client, ref.opID, ref.key, c.val, rec.Val)
				}
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.key != b.key {
			return a.key < b.key
		}
		if a.client != b.client {
			return a.client.Less(b.client)
		}
		return a.opID < b.opID
	})
	for _, ref := range order {
		if logged[ref] {
			continue // the client's own record is authoritative
		}
		kh := m.key(ref.key)
		op := history.Op{
			Client: ref.client,
			OpID:   ref.opID,
			Kind:   types.OpWrite,
			Invoke: 1, // pending: no response, interval unconstrained
			Value:  cands[ref].val,
		}
		dom := len(labels)
		labels = append(labels, fmt.Sprintf("replica-evidence(%s#%d)", ref.client, ref.opID))
		kh.Ops = append(kh.Ops, op)
		kh.domains[op.Key()] = dom
		m.Synthesized++
	}
	for _, kh := range m.Keys {
		kh.labels = labels
	}

	// Pass 3: served-value cross-check, per replica log (a restarted
	// replica restarts its counters, so each file stands alone).
	var replicaIdx []int
	for ri := range m.Replicas {
		replicaIdx = append(replicaIdx, ri)
	}
	sort.Ints(replicaIdx)
	for _, ri := range replicaIdx {
		for _, f := range m.Replicas[ri] {
			m.Stale = append(m.Stale, crossCheckFile(ri, f.Records)...)
		}
	}

	// Coverage: with all S replica logs intact and identities partitioned
	// every served value has a visible origin — see the package doc.
	m.FullCoverage = len(collided) == 0
	intact := 0
	for i := 1; i <= m.Shape.S; i++ {
		files, ok := m.Replicas[i]
		if !ok {
			continue
		}
		good := true
		for _, f := range files {
			if f.Truncated {
				good = false
			}
		}
		if good {
			intact++
		}
	}
	if intact < m.Shape.S {
		m.FullCoverage = false
		m.warnf("replica coverage %d/%d intact logs — writes seen only by unlogged replicas are invisible, so read-from-nowhere verdicts are not binding", intact, m.Shape.S)
	}
	return m, nil
}

// key returns (creating) the key's merged history. Domain labels are
// shared across keys and stamped onto every KeyHistory once the merge
// completes.
func (m *Merge) key(k string) *KeyHistory {
	kh, ok := m.Keys[k]
	if !ok {
		kh = &KeyHistory{Key: k, domains: make(map[string]int)}
		m.Keys[k] = kh
	}
	return kh
}

// KeyNames returns the merged keys, sorted.
func (m *Merge) KeyNames() []string {
	out := make([]string, 0, len(m.Keys))
	for k := range m.Keys {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (m *Merge) warnf(format string, args ...any) {
	m.Warnings = append(m.Warnings, fmt.Sprintf(format, args...))
}

// capturedError carries a failed operation's error text across the
// capture boundary (the checker only needs non-nil-ness; operators get
// the original message).
type capturedError struct{ msg string }

func (e *capturedError) Error() string {
	if e.msg == "" {
		return "operation failed (captured)"
	}
	return e.msg
}

func shapeStr(h proto.TraceRecord) string {
	return fmt.Sprintf("S=%d t=%d R=%d W=%d", h.S, h.T, h.R, h.W)
}
