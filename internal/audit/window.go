package audit

import (
	"fmt"
	"sort"

	"fastreg/internal/atomicity"
	"fastreg/internal/history"
	"fastreg/internal/types"
	"fastreg/internal/vclock"
)

// This file is the windowed half of the continuous audit: an atomicity
// checker that consumes an execution one closed epoch at a time and
// carries O(window) state between verdicts instead of the full history.
//
// # Why a three-epoch window is enough — and necessary
//
// The weight-throwing coordinator (internal/epoch) keeps at most two
// phases live and refuses a new cutover until the draining epoch's
// weight is whole. Operations of epoch N can therefore overlap, in real
// time, only operations of epochs N−1, N and N+1: every op of epoch
// ≤ N−2 responded before epoch N even opened. The checker exploits the
// fence in both directions:
//
//   - the verdict for epoch N is computed over the ops of {N−1, N, N+1}
//     once N+1 is complete — any op concurrent with an epoch-N op is in
//     that window, so no real-time edge the offline checker would see is
//     missing. Checking N against N−1 alone would be UNSOUND the other
//     way: an epoch-N+1 read concurrent with an epoch-N write may
//     legally return the older value, and a narrower window would flag
//     it;
//   - after the verdict for N, epoch N−1's completed ops RETIRE into the
//     frontier — a compressed summary that future windows check against
//     without ever revisiting the ops themselves.
//
// # The frontier
//
// The retired prefix constrains the future through exactly one
// question: what may the register still contain? The frontier keeps the
// CANDIDATE set — values of retired completed writes (and values
// retired reads witnessed) that some linearization of the prefix can
// leave as the register's final content. A candidate dies when a
// retired completed op that real-time-follows its anchor observed or
// wrote a different value. A window checks atomic if it linearizes
// under AT LEAST ONE candidate base (atomicity.Options.Base); in the
// steady state the set has one element, so the common cost is one
// check. Optional writes (failed, or synthesized from replica
// evidence) never respond, so they never retire: they are CARRIED as
// linearize-anytime ops until a retired read anchors their value into
// the candidate set. The carried set grows only with failures — the
// window-size gauge watches it.

// EpochOps is one epoch's operations grouped per key, plus the clock
// domain of each op (keyed by op.Key()) — the unit the streaming
// follower hands the windowed checker. Pending write entries are
// replica-evidence synthesis, exactly like the offline merge's.
type EpochOps struct {
	Epoch uint64
	Keys  map[string][]history.Op
	Dom   map[string]int
}

// NewEpochOps returns an empty bucket for epoch n.
func NewEpochOps(n uint64) *EpochOps {
	return &EpochOps{Epoch: n, Keys: make(map[string][]history.Op), Dom: make(map[string]int)}
}

// Add records one op under its key with its clock domain.
func (b *EpochOps) Add(key string, op history.Op, dom int) {
	b.Keys[key] = append(b.Keys[key], op)
	b.Dom[op.Key()] = dom
}

// frontCand is one possible final register value of the retired prefix.
// resp/dom anchor the last retired op that witnessed the value, so a
// later differing retired op can invalidate it.
type frontCand struct {
	val  types.Value
	resp vclock.Time
	dom  int
}

// carriedOp is an optional write that outlived its epoch.
type carriedOp struct {
	op  history.Op
	dom int
}

// keyFrontier is one key's compressed retired prefix.
type keyFrontier struct {
	cands   []frontCand
	carried []carriedOp
}

func (fr *keyFrontier) addCand(v types.Value, resp vclock.Time, dom int) {
	for i := range fr.cands {
		if fr.cands[i].val == v {
			if fr.cands[i].resp < resp {
				fr.cands[i].resp = resp
				fr.cands[i].dom = dom
			}
			return
		}
	}
	fr.cands = append(fr.cands, frontCand{val: v, resp: resp, dom: dom})
}

// WindowChecker carries the frontier between per-epoch windows. It is
// driven from one goroutine (the follower's); it holds no locks.
type WindowChecker struct {
	frontiers map[string]*keyFrontier
}

// NewWindowChecker returns a checker with an empty frontier: the
// register starts at InitialValue for every key.
func NewWindowChecker() *WindowChecker {
	return &WindowChecker{frontiers: make(map[string]*keyFrontier)}
}

// CarriedOps counts optional writes currently carried across windows —
// the component of the checker's state that can grow (with failures).
func (wc *WindowChecker) CarriedOps() int {
	n := 0
	for _, fr := range wc.frontiers {
		n += len(fr.carried)
	}
	return n
}

// Check decides the verdict for one epoch over its window (the epoch's
// bucket plus its still-concurrent neighbours; nil entries are fine)
// and returns the per-key verdicts of keys that fail. It does not
// mutate the frontier — call Retire with the oldest bucket afterwards.
func (wc *WindowChecker) Check(window []*EpochOps) []KeyVerdict {
	keySet := make(map[string]bool)
	for _, b := range window {
		if b == nil {
			continue
		}
		for k := range b.Keys {
			keySet[k] = true
		}
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var bad []KeyVerdict
	for _, k := range keys {
		fr := wc.frontiers[k]
		var ops []history.Op
		dom := make(map[string]int)
		if fr != nil {
			for _, c := range fr.carried {
				ops = append(ops, c.op)
				dom[c.op.Key()] = c.dom
			}
		}
		for _, b := range window {
			if b == nil {
				continue
			}
			for _, o := range b.Keys[k] {
				ops = append(ops, o)
				dom[o.Key()] = b.Dom[o.Key()]
			}
		}
		h := history.History{Ops: ops}
		domainOf := func(o history.Op) int { return dom[o.Key()] }
		var bases []types.Value
		if fr != nil {
			for _, c := range fr.cands {
				bases = append(bases, c.val)
			}
		}
		if len(bases) == 0 {
			bases = []types.Value{types.InitialValue()}
		}
		var res atomicity.Result
		ok := false
		for _, base := range bases {
			res = atomicity.CheckOpt(h, atomicity.Options{DomainOf: domainOf, Base: base})
			if res.Atomic {
				ok = true
				break
			}
		}
		if ok {
			continue
		}
		v := KeyVerdict{
			Key:       k,
			Result:    res,
			Completed: len(h.Completed()),
			Pending:   len(h.Pending()),
			Failed:    len(h.Failed()),
			Binding:   true,
		}
		v.Optional = v.Pending + v.Failed
		if len(bases) > 1 || !bases[0].IsInitial() {
			v.Notes = append(v.Notes,
				fmt.Sprintf("no linearization under any of %d frontier base value(s)", len(bases)))
		}
		bad = append(bad, v)
	}
	return bad
}

// Retire folds a bucket — the oldest epoch of a just-checked window —
// into the frontier. Completed writes (and values completed reads
// witnessed) join the candidate set; completed ops invalidate
// candidates they real-time-follow with a different value; optional
// writes move to the carried set.
func (wc *WindowChecker) Retire(b *EpochOps) {
	if b == nil {
		return
	}
	for key, ops := range b.Keys {
		fr := wc.frontiers[key]
		if fr == nil {
			fr = &keyFrontier{}
			wc.frontiers[key] = fr
		}
		// 1. New candidates: completed writes, and completed reads
		// anchoring a value (a carried optional write's, or refreshing
		// an existing candidate's anchor).
		for _, o := range ops {
			if !o.Done() || o.Err != nil {
				continue
			}
			dom := b.Dom[o.Key()]
			if o.Kind == types.OpWrite {
				fr.addCand(o.Value, o.Response, dom)
				continue
			}
			if o.Value.IsInitial() {
				continue
			}
			// A read's witness: its value is a possible final register
			// content as of the read. If a carried optional write
			// supplied it, the write is now consumed — every
			// linearization placed it before this read.
			for i, c := range fr.carried {
				if c.op.Value == o.Value {
					fr.carried = append(fr.carried[:i], fr.carried[i+1:]...)
					break
				}
			}
			fr.addCand(o.Value, o.Response, dom)
		}
		// 2. Invalidation: a completed op kills every candidate whose
		// anchor real-time-precedes it and whose value differs — the
		// register provably moved past that value.
		for _, o := range ops {
			if !o.Done() || o.Err != nil {
				continue
			}
			dom := b.Dom[o.Key()]
			kept := fr.cands[:0]
			for _, c := range fr.cands {
				if c.dom == dom && c.resp < o.Invoke && c.val != o.Value {
					continue
				}
				kept = append(kept, c)
			}
			fr.cands = kept
		}
		// 3. Optional writes outlive the window: they may legally
		// linearize (be read) arbitrarily late.
		for _, o := range ops {
			if o.Kind != types.OpWrite || (o.Done() && o.Err == nil) {
				continue
			}
			if o.Value.Tag == types.ZeroTag() {
				continue // no tag was ever assigned: unmatchable, droppable
			}
			dup := false
			for _, c := range fr.carried {
				if c.op.Key() == o.Key() {
					dup = true
					break
				}
			}
			if !dup {
				fr.carried = append(fr.carried, carriedOp{op: o, dom: b.Dom[o.Key()]})
			}
		}
	}
}
