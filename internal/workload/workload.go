// Package workload drives clusters with closed-loop client sessions and
// measures operation latency in virtual time. It is the engine behind the
// Table 1 and Fig 2 harnesses: latency in this model is exactly
// (#round-trips) × RTT plus delay jitter, which is the quantity the paper
// reasons about.
package workload

import (
	"fmt"
	"math"
	"sort"

	"fastreg/internal/history"
	"fastreg/internal/netsim"
	"fastreg/internal/types"
	"fastreg/internal/vclock"
)

// Mix describes a closed-loop workload: every writer issues WritesPerWriter
// writes and every reader ReadsPerReader reads, back to back, all sessions
// starting staggered by Stagger.
type Mix struct {
	WritesPerWriter int
	ReadsPerReader  int
	// Data generates write payloads (default "v<i>").
	Data func(i int) string
	// Stagger separates session starts (default 1 tick).
	Stagger vclock.Duration
}

func (m Mix) data(i int) string {
	if m.Data != nil {
		return m.Data(i)
	}
	return fmt.Sprintf("v%d", i)
}

func (m Mix) stagger() vclock.Duration {
	if m.Stagger <= 0 {
		return 1
	}
	return m.Stagger
}

// Run drives the mix on the simulator to completion and returns the
// resulting history. Operations that cannot complete (quorum loss) stay
// pending in the history.
func Run(sim *netsim.Sim, mix Mix) history.History {
	cfg := sim.Config()
	start := sim.Now()
	session := 0
	var spawn func(client int, write bool, n, i int)
	spawn = func(client int, write bool, n, i int) {
		if n == 0 {
			return
		}
		op := sim.Reader(client).ReadOp()
		if write {
			op = sim.Writer(client).WriteOp(mix.data(i))
		}
		at := sim.Now() + 1
		if sim.Now() == start {
			at = start + vclock.Time(session)*vclock.Time(mix.stagger())
		}
		sim.InvokeAt(at, op, func(types.Value, error) { spawn(client, write, n-1, i+1) })
	}
	for w := 1; w <= cfg.W; w++ {
		spawn(w, true, mix.WritesPerWriter, w*1000)
		session++
	}
	for r := 1; r <= cfg.R; r++ {
		spawn(r, false, mix.ReadsPerReader, 0)
		session++
	}
	sim.Run()
	return sim.History()
}

// LatencyStats summarizes operation latencies (virtual time units).
type LatencyStats struct {
	Count          int
	Min, Max, Mean float64
	P50, P99       float64
}

// String renders the stats compactly.
func (s LatencyStats) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%.1f p99=%.1f min=%.1f max=%.1f",
		s.Count, s.Mean, s.P50, s.P99, s.Min, s.Max)
}

// Throughput returns completed operations per 1000 virtual time units —
// comparable across protocols at a fixed delay model (fast reads double
// read throughput in closed-loop sessions).
func Throughput(h history.History) float64 {
	ops := h.Completed()
	if len(ops) == 0 {
		return 0
	}
	var first, last vclock.Time
	first = ops[0].Invoke
	for _, o := range ops {
		if o.Invoke < first {
			first = o.Invoke
		}
		if o.Response > last {
			last = o.Response
		}
	}
	span := float64(last - first)
	if span <= 0 {
		return 0
	}
	return float64(len(ops)) / span * 1000
}

// Measure computes per-kind latency statistics over the completed
// operations of a history.
func Measure(h history.History) map[types.OpKind]LatencyStats {
	samples := make(map[types.OpKind][]float64)
	for _, o := range h.Completed() {
		samples[o.Kind] = append(samples[o.Kind], float64(o.Response-o.Invoke))
	}
	out := make(map[types.OpKind]LatencyStats, len(samples))
	for k, xs := range samples {
		out[k] = summarize(xs)
	}
	return out
}

func summarize(xs []float64) LatencyStats {
	if len(xs) == 0 {
		return LatencyStats{}
	}
	sort.Float64s(xs)
	s := LatencyStats{
		Count: len(xs),
		Min:   xs[0],
		Max:   xs[len(xs)-1],
		P50:   percentile(xs, 0.50),
		P99:   percentile(xs, 0.99),
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	return s
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
