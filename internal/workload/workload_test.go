package workload

import (
	"testing"

	"fastreg/internal/atomicity"
	"fastreg/internal/mwabd"
	"fastreg/internal/netsim"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/types"
	"fastreg/internal/w2r1"
)

func TestRunCompletesAllOps(t *testing.T) {
	cfg := quorum.Config{S: 5, T: 1, R: 2, W: 2}
	sim := netsim.MustNew(cfg, mwabd.New(), netsim.WithSeed(3), netsim.WithDelay(netsim.UniformDelay(1, 60)))
	h := Run(sim, Mix{WritesPerWriter: 5, ReadsPerReader: 5})
	want := cfg.W*5 + cfg.R*5
	if got := len(h.Completed()); got != want {
		t.Fatalf("completed = %d, want %d", got, want)
	}
	if err := h.WellFormed(); err != nil {
		t.Fatal(err)
	}
	if res := atomicity.Check(h); !res.Atomic {
		t.Fatalf("workload history not atomic: %v", res)
	}
}

func TestMeasureSeparatesKinds(t *testing.T) {
	cfg := quorum.Config{S: 5, T: 1, R: 2, W: 2}
	const d = 100
	sim := netsim.MustNew(cfg, w2r1.New(), netsim.WithDelay(netsim.ConstDelay(d)))
	h := Run(sim, Mix{WritesPerWriter: 3, ReadsPerReader: 3})
	stats := Measure(h)
	w, ok := stats[types.OpWrite]
	if !ok || w.Count != 6 {
		t.Fatalf("write stats: %+v", w)
	}
	r, ok := stats[types.OpRead]
	if !ok || r.Count != 6 {
		t.Fatalf("read stats: %+v", r)
	}
	// W2R1: writes are 2 rounds (≈4d), reads 1 round (≈2d).
	// Recorder ticks introduce ±few-unit jitter around k rounds × 2d.
	if w.Mean < 4*d-5 || w.Mean > 4*d+10 {
		t.Errorf("write mean = %.1f, want ≈ %d", w.Mean, 4*d)
	}
	if r.Mean < 2*d-5 || r.Mean > 2*d+10 {
		t.Errorf("read mean = %.1f, want ≈ %d", r.Mean, 2*d)
	}
	if r.Min > r.P50 || r.P50 > r.P99 || r.P99 > r.Max {
		t.Errorf("percentile ordering broken: %+v", r)
	}
	if s := r.String(); s == "" {
		t.Error("empty stats string")
	}
}

func TestMeasureEmptyHistory(t *testing.T) {
	cfg := quorum.Config{S: 3, T: 1, R: 2, W: 2}
	sim := netsim.MustNew(cfg, mwabd.New())
	stats := Measure(sim.History())
	if len(stats) != 0 {
		t.Fatalf("stats of empty history: %v", stats)
	}
}

func TestMixDefaults(t *testing.T) {
	m := Mix{}
	if m.data(3) != "v3" {
		t.Errorf("default data = %q", m.data(3))
	}
	if m.stagger() != 1 {
		t.Errorf("default stagger = %d", m.stagger())
	}
	m2 := Mix{Data: func(i int) string { return "x" }, Stagger: 7}
	if m2.data(1) != "x" || m2.stagger() != 7 {
		t.Error("custom mix ignored")
	}
}

func TestThroughputFastReadsWin(t *testing.T) {
	run := func(p register.Protocol) float64 {
		cfg := quorum.Config{S: 5, T: 1, R: 2, W: 1}
		sim := netsim.MustNew(cfg, p, netsim.WithDelay(netsim.ConstDelay(50)))
		h := Run(sim, Mix{WritesPerWriter: 2, ReadsPerReader: 10})
		return Throughput(h)
	}
	slow := run(mwabd.New())
	fast := run(w2r1.New())
	if fast <= slow {
		t.Fatalf("fast-read throughput %.2f not above slow-read %.2f", fast, slow)
	}
}

func TestThroughputEmpty(t *testing.T) {
	cfg := quorum.Config{S: 3, T: 1, R: 1, W: 1}
	sim := netsim.MustNew(cfg, mwabd.New())
	if got := Throughput(sim.History()); got != 0 {
		t.Fatalf("throughput of empty history = %f", got)
	}
}
