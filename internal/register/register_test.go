package register_test

import (
	"errors"
	"strings"
	"testing"

	"fastreg/internal/opkit"
	"fastreg/internal/proto"
	"fastreg/internal/register"
	"fastreg/internal/types"
)

func servers(n int) []register.ServerLogic {
	out := make([]register.ServerLogic, n)
	for i := range out {
		out[i] = opkit.NewStoreServer(types.Server(i + 1))
	}
	return out
}

func TestCountRoundsTwoPhase(t *testing.T) {
	op := opkit.NewQueryThenUpdateWrite(types.Writer(1), "x", 2)
	rounds, res, err := register.CountRounds(op, servers(3))
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 2 {
		t.Errorf("rounds = %d", rounds)
	}
	if res.Data != "x" || res.Tag.TS != 1 {
		t.Errorf("result = %v", res)
	}
}

func TestCountRoundsQuorumTooLarge(t *testing.T) {
	op := opkit.NewQueryThenUpdateWrite(types.Writer(1), "x", 5)
	_, _, err := register.CountRounds(op, servers(3))
	if !errors.Is(err, register.ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

// silentServer never replies, modelling a crashed replica inside
// CountRounds.
type silentServer struct{ id types.ProcID }

func (s silentServer) ID() types.ProcID                                 { return s.id }
func (s silentServer) CurrentValue() types.Value                        { return types.Value{} }
func (s silentServer) Handle(types.ProcID, proto.Message) proto.Message { return nil }

func TestCountRoundsQuorumNotReached(t *testing.T) {
	logics := []register.ServerLogic{
		opkit.NewStoreServer(types.Server(1)),
		silentServer{types.Server(2)},
		silentServer{types.Server(3)},
	}
	op := opkit.NewQueryThenUpdateWrite(types.Writer(1), "x", 2)
	_, _, err := register.CountRounds(op, logics)
	if !errors.Is(err, register.ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

// stuckOp neither finishes nor continues — CountRounds must reject it
// instead of looping.
type stuckOp struct{}

func (stuckOp) Client() types.ProcID { return types.Reader(1) }
func (stuckOp) Kind() types.OpKind   { return types.OpRead }
func (stuckOp) Arg() types.Value     { return types.Value{} }
func (stuckOp) Begin() register.Round {
	return register.Round{Payload: proto.Query{}, Need: 1}
}
func (stuckOp) Next([]register.Reply) (*register.Round, types.Value, bool, error) {
	return nil, types.Value{}, false, nil
}

func TestCountRoundsStuckOperation(t *testing.T) {
	_, _, err := register.CountRounds(stuckOp{}, servers(1))
	if !errors.Is(err, register.ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

func TestBadReplyMentionsTypeAndOp(t *testing.T) {
	err := register.BadReply("my-op", proto.UpdateAck{})
	if !errors.Is(err, register.ErrProtocol) {
		t.Fatal("BadReply must wrap ErrProtocol")
	}
	msg := err.Error()
	for _, frag := range []string{"my-op", "UpdateAck"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("error %q missing %q", msg, frag)
		}
	}
}
