// Package register defines the abstractions every protocol in the design
// space implements: passive server state machines and round-based client
// operations.
//
// The split mirrors the algorithm schema of Section 2.2: "In each round-trip,
// the client can query all the servers [...] The client can also update all
// the servers." A client operation is therefore a short sequence of rounds;
// each round broadcasts one message to all servers and waits for a quorum of
// replies. Servers are purely reactive: they receive a message, mutate local
// state, and reply.
//
// Because both halves are deterministic reactions, the same protocol code
// runs unchanged under the discrete-event simulator (internal/netsim), the
// goroutine-per-node live network (internal/netsim live mode), and the
// chain-argument interpreter (internal/chains) that rebuilds the proof's
// executions.
package register

import (
	"errors"
	"fmt"

	"fastreg/internal/proto"
	"fastreg/internal/quorum"
	"fastreg/internal/types"
)

// ErrProtocol reports a protocol-level violation (unexpected reply kind,
// malformed state). Operations wrap it with detail.
var ErrProtocol = errors.New("register: protocol error")

// ErrTimeout reports a client operation abandoned because its
// context.Context expired or was cancelled before a reply quorum arrived —
// e.g. more than t servers are unreachable. The operation's outcome is
// indeterminate: its messages may still take effect at the servers. The
// history records it as failed, and the atomicity checker models failed
// writes as OPTIONAL operations (linearized if some read observed their
// value, dropped otherwise — the standard completion semantics for
// crashed operations), so checker verdicts remain binding for runs that
// contain timeouts.
var ErrTimeout = errors.New("register: operation timed out")

// Round is one broadcast round-trip: the payload goes to every server; the
// operation proceeds once Need replies have arrived. Need is almost always
// S − t (the reply quorum), the most a wait-free client may wait for when t
// servers can crash.
type Round struct {
	Payload proto.Message
	Need    int
}

// Reply is one server's answer within a round.
type Reply struct {
	From types.ProcID
	Msg  proto.Message
}

// Operation is a client-side state machine executing one read or write.
// The engine drives it: Begin returns the first round; each time the round's
// quorum of replies is in, the engine calls Next, which either returns the
// following round or the final result.
//
// Implementations must be deterministic functions of the replies they are
// fed; they must not retain the reply slice.
type Operation interface {
	// Client is the invoking process (a reader or writer ProcID).
	Client() types.ProcID
	// Kind reports read or write.
	Kind() types.OpKind
	// Arg is the value a write stores; zero Value for reads.
	Arg() types.Value
	// Begin returns the first round.
	Begin() Round
	// Next consumes the current round's replies. It returns the next round,
	// or done=true with the operation's result: for a read, the value read;
	// for a write, the tagged value written.
	Next(replies []Reply) (next *Round, result types.Value, done bool, err error)
}

// ServerLogic is one server replica's protocol state machine. Handle is
// called once per delivered message and returns the reply (nil for none —
// used only by crashed/byzantine-free variants; all protocols here always
// reply).
type ServerLogic interface {
	ID() types.ProcID
	Handle(from types.ProcID, m proto.Message) proto.Message
	// CurrentValue exposes the server's maximal stored value for inspection
	// by tests, traces and the crucial-info analysis. Protocol code never
	// calls it.
	CurrentValue() types.Value
}

// Writer creates write operations for one writer client, carrying its
// persistent local state (e.g. the ABD writer's timestamp counter) across
// operations.
type Writer interface {
	ID() types.ProcID
	WriteOp(data string) Operation
}

// Reader creates read operations for one reader client, carrying its
// persistent local state (e.g. Algorithm 1's valQueue) across operations.
type Reader interface {
	ID() types.ProcID
	ReadOp() Operation
}

// Protocol is a factory for one point of the design space (Fig 2).
type Protocol interface {
	// Name is the design-space label: "W2R2", "W1R2", "W2R1", "W1R1".
	Name() string
	// WriteRounds and ReadRounds are the round-trip counts the protocol
	// promises — the quantity the whole paper is about.
	WriteRounds() int
	ReadRounds() int
	// Implementable reports whether the protocol guarantees atomicity on
	// this configuration (the Table 1 condition for its quadrant).
	Implementable(cfg quorum.Config) bool
	NewServer(id types.ProcID, cfg quorum.Config) ServerLogic
	NewWriter(id types.ProcID, cfg quorum.Config) Writer
	NewReader(id types.ProcID, cfg quorum.Config) Reader
}

// BadReply builds the standard error for an unexpected reply kind.
func BadReply(op string, got proto.Message) error {
	return fmt.Errorf("%w: %s received unexpected %T", ErrProtocol, op, got)
}

// CountRounds walks an Operation against a fixed set of server logics,
// delivering every round to every server in ID order and feeding all replies
// back. It returns the number of rounds the operation took and its result.
// It is a convenience for unit tests of protocol packages (failure-free,
// sequential world); the simulators provide the real execution environments.
func CountRounds(op Operation, servers []ServerLogic) (rounds int, result types.Value, err error) {
	r := op.Begin()
	for {
		rounds++
		if r.Need > len(servers) {
			return rounds, types.Value{}, fmt.Errorf("%w: round needs %d replies, only %d servers", ErrProtocol, r.Need, len(servers))
		}
		replies := make([]Reply, 0, len(servers))
		for _, s := range servers {
			if m := s.Handle(op.Client(), r.Payload); m != nil {
				replies = append(replies, Reply{From: s.ID(), Msg: m})
			}
		}
		if len(replies) < r.Need {
			return rounds, types.Value{}, fmt.Errorf("%w: quorum not reached (%d < %d)", ErrProtocol, len(replies), r.Need)
		}
		next, res, done, err := op.Next(replies[:r.Need])
		if err != nil {
			return rounds, types.Value{}, err
		}
		if done {
			return rounds, res, nil
		}
		if next == nil {
			return rounds, types.Value{}, fmt.Errorf("%w: operation neither done nor continuing", ErrProtocol)
		}
		r = *next
	}
}
