package consistency

import (
	"strings"
	"testing"

	"fastreg/internal/atomicity"
	"fastreg/internal/history"
	"fastreg/internal/mwabd"
	"fastreg/internal/netsim"
	"fastreg/internal/quorum"
	"fastreg/internal/types"
	"fastreg/internal/w1r2"
	"fastreg/internal/workload"
)

func wv(ts int64, w int, data string) types.Value {
	return types.Value{Tag: types.Tag{TS: ts, WID: types.Writer(w)}, Data: data}
}

func TestAtomicHistoryIsClean(t *testing.T) {
	v1, v2 := wv(1, 1, "a"), wv(2, 2, "b")
	h := history.NewBuilder().
		Seq(types.Writer(1), types.OpWrite, v1).
		Seq(types.Reader(1), types.OpRead, v1).
		Seq(types.Writer(2), types.OpWrite, v2).
		Seq(types.Reader(2), types.OpRead, v2).
		History()
	rep := Analyze(h)
	if rep.StaleReads != 0 || rep.MaxStaleness != 0 || rep.KAtomicity != 1 || rep.Inversions != 0 {
		t.Fatalf("clean history scored %+v", rep)
	}
	if rep.Reads != 2 || rep.Writes != 2 {
		t.Fatalf("counts: %+v", rep)
	}
}

func TestStaleReadScoring(t *testing.T) {
	v1, v2, v3 := wv(1, 1, "a"), wv(2, 1, "b"), wv(3, 1, "c")
	// Three completed writes, then a read returning the oldest: staleness 2
	// → 3-atomic.
	h := history.NewBuilder().
		Seq(types.Writer(1), types.OpWrite, v1).
		Seq(types.Writer(1), types.OpWrite, v2).
		Seq(types.Writer(1), types.OpWrite, v3).
		Seq(types.Reader(1), types.OpRead, v1).
		History()
	rep := Analyze(h)
	if rep.StaleReads != 1 || rep.MaxStaleness != 2 || rep.KAtomicity != 3 {
		t.Fatalf("%+v", rep)
	}
	if rep.StaleRate != 1.0 {
		t.Fatalf("rate = %f", rep.StaleRate)
	}
}

func TestInversionCounting(t *testing.T) {
	v1, v2 := wv(1, 1, "a"), wv(2, 2, "b")
	h := history.NewBuilder().
		Seq(types.Writer(1), types.OpWrite, v1).
		Seq(types.Writer(2), types.OpWrite, v2).
		Seq(types.Reader(1), types.OpRead, v2).
		Seq(types.Reader(2), types.OpRead, v1). // goes backwards
		History()
	rep := Analyze(h)
	if rep.Inversions != 1 {
		t.Fatalf("inversions = %d", rep.Inversions)
	}
}

func TestPendingWriteNotCountedStale(t *testing.T) {
	v1, v2 := wv(1, 1, "a"), wv(2, 1, "b")
	h := history.NewBuilder().
		Seq(types.Writer(1), types.OpWrite, v1).
		AddPending(types.Writer(1), types.OpWrite, v2, 100).
		Add(types.Reader(1), types.OpRead, v1, 200, 201).
		History()
	rep := Analyze(h)
	if rep.StaleReads != 0 {
		t.Fatalf("pending write made a read stale: %+v", rep)
	}
}

func TestConcurrentWriteNotCountedStale(t *testing.T) {
	v1, v2 := wv(1, 1, "a"), wv(2, 2, "b")
	h := history.NewBuilder().
		Seq(types.Writer(1), types.OpWrite, v1).
		Add(types.Writer(2), types.OpWrite, v2, 100, 300).
		Add(types.Reader(1), types.OpRead, v1, 200, 250). // concurrent with w2
		History()
	if rep := Analyze(h); rep.StaleReads != 0 {
		t.Fatalf("concurrent write made a read stale: %+v", rep)
	}
}

// The future-work claim made concrete: atomic protocols score k=1; the
// naive fast-write protocol deviates but only boundedly (the quantified
// inconsistency of Section 7 / [28]).
func TestQuantifyFastWriteInconsistency(t *testing.T) {
	cfg := quorum.Config{S: 5, T: 1, R: 2, W: 2}
	// Atomic baseline.
	sim := netsim.MustNew(cfg, mwabd.New(), netsim.WithSeed(1), netsim.WithDelay(netsim.UniformDelay(1, 120)))
	h := workload.Run(sim, workload.Mix{WritesPerWriter: 6, ReadsPerReader: 6})
	if rep := Analyze(h); rep.KAtomicity != 1 {
		t.Fatalf("W2R2 scored k=%d", rep.KAtomicity)
	}
	// Fast-write strawman: run the cross-writer schedule that loses a
	// write; the loss shows up as bounded staleness, not arbitrary decay.
	sim2 := netsim.MustNew(cfg, w1r2.New(), netsim.WithSeed(2))
	sim2.InvokeAt(0, sim2.Writer(2).WriteOp("a"), func(types.Value, error) {
		sim2.InvokeAt(sim2.Now()+1, sim2.Writer(1).WriteOp("b"), func(types.Value, error) {
			sim2.InvokeAt(sim2.Now()+1, sim2.Reader(1).ReadOp(), nil)
		})
	})
	sim2.Run()
	h2 := sim2.History()
	if atomicity.Check(h2).Atomic {
		t.Fatal("expected the fast-write schedule to violate atomicity")
	}
	rep := Analyze(h2)
	if rep.StaleReads == 0 {
		t.Fatalf("violation not visible as staleness: %+v", rep)
	}
	if rep.KAtomicity != 2 {
		t.Fatalf("naive fast write should be 2-atomic here, got k=%d", rep.KAtomicity)
	}
}

func TestFreshest(t *testing.T) {
	h := history.NewBuilder().
		Seq(types.Writer(1), types.OpWrite, wv(1, 1, "a")).
		Seq(types.Writer(1), types.OpWrite, wv(3, 1, "c")).
		Seq(types.Writer(1), types.OpWrite, wv(2, 1, "b")).
		History()
	top := Freshest(h, 2)
	if len(top) != 2 || top[0].Tag.TS != 3 || top[1].Tag.TS != 2 {
		t.Fatalf("Freshest = %v", top)
	}
	if got := Freshest(h, 10); len(got) != 3 {
		t.Fatalf("clamp failed: %v", got)
	}
}

func TestReportString(t *testing.T) {
	s := Report{Reads: 4, Writes: 2, StaleReads: 1, MaxStaleness: 1, KAtomicity: 2, StaleRate: 0.25}.String()
	for _, frag := range []string{"reads=4", "k-atomicity=2", "25.0%"} {
		if !strings.Contains(s, frag) {
			t.Errorf("report %q missing %q", s, frag)
		}
	}
}

func TestEmptyHistory(t *testing.T) {
	rep := Analyze(history.History{})
	if rep.KAtomicity != 1 || rep.StaleRate != 0 {
		t.Fatalf("%+v", rep)
	}
}
