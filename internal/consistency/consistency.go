// Package consistency quantifies how much atomicity a history misses — the
// paper's stated future work (Section 7: "we will fix fast implementations
// in the first place, and then quantify how much data inconsistency will be
// introduced"), in the spirit of the authors' prior work on
// probabilistically-atomic 2-atomicity [28] and almost strong consistency
// [25].
//
// The metrics are defined over the (ts, wid) tag order, which is the
// intended write order of every protocol in this repository:
//
//   - staleness of a read: how many writes that completed before the read
//     was invoked carry a larger tag than the value returned. Atomic
//     histories have staleness 0 everywhere (MWA2).
//   - k-atomicity: the smallest k such that every read returns one of the
//     k freshest completed values (k = max staleness + 1). 2-atomicity is
//     the property studied in [28].
//   - inversions: ordered read pairs r1 ≺ r2 whose returned values appear
//     in the opposite tag order — the new-old inversions the write-back
//     round of W2R2 exists to prevent.
package consistency

import (
	"fmt"
	"sort"

	"fastreg/internal/history"
	"fastreg/internal/types"
)

// Report quantifies a history's deviation from atomicity.
type Report struct {
	Reads  int
	Writes int

	// StaleReads counts reads with staleness ≥ 1; MaxStaleness is the
	// worst case.
	StaleReads   int
	MaxStaleness int

	// KAtomicity is max staleness + 1: every read returned one of the
	// KAtomicity freshest completed values. 1 means no read was stale.
	KAtomicity int

	// Inversions counts ordered read pairs observing writes out of order.
	Inversions int

	// StaleRate is StaleReads / Reads (0 when no reads).
	StaleRate float64
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf("reads=%d writes=%d stale=%d (%.1f%%) max-staleness=%d k-atomicity=%d inversions=%d",
		r.Reads, r.Writes, r.StaleReads, 100*r.StaleRate, r.MaxStaleness, r.KAtomicity, r.Inversions)
}

// Analyze computes the report over the completed operations of a history.
// Pending writes are treated as not-yet-required (a read missing them is
// not stale), matching the optional-linearization semantics of the
// atomicity checker.
func Analyze(h history.History) Report {
	writes := h.Writes()
	reads := h.Reads()
	rep := Report{Reads: len(reads), Writes: len(writes), KAtomicity: 1}

	for _, rd := range reads {
		st := staleness(rd, writes)
		if st > 0 {
			rep.StaleReads++
		}
		if st > rep.MaxStaleness {
			rep.MaxStaleness = st
		}
	}
	rep.KAtomicity = rep.MaxStaleness + 1
	if rep.Reads > 0 {
		rep.StaleRate = float64(rep.StaleReads) / float64(rep.Reads)
	}

	// Inversions: r1 ≺ r2 with distinct written values in reversed tag
	// order.
	for i, r1 := range reads {
		for j, r2 := range reads {
			if i == j || !r1.Precedes(r2) {
				continue
			}
			if r1.Value.Tag != r2.Value.Tag && r2.Value.Tag.Less(r1.Value.Tag) {
				rep.Inversions++
			}
		}
	}
	return rep
}

// staleness counts completed writes that finished before rd started yet
// are strictly newer than the write rd returned. "Newer" follows real time
// where the two writes are ordered (O1 ≺σ O2), and the tag order only for
// concurrent writes — so a protocol whose tags contradict real time (the
// naive fast write) is charged for it.
func staleness(rd history.Op, writes []history.Op) int {
	// Locate the write rd read from; reads of the initial value rank below
	// every write.
	var src *history.Op
	for i := range writes {
		if writes[i].Value == rd.Value {
			src = &writes[i]
			break
		}
	}
	n := 0
	for i := range writes {
		w := &writes[i]
		if !w.Precedes(rd) {
			continue
		}
		if src == nil {
			n++ // rd returned the initial value; any completed prior write is newer
			continue
		}
		if w == src {
			continue
		}
		if newerThan(w, src) {
			n++
		}
	}
	return n
}

// newerThan reports whether write a is strictly newer than write b:
// real-time order when determined, tag order for concurrent writes.
func newerThan(a, b *history.Op) bool {
	switch {
	case b.Precedes(*a):
		return true
	case a.Precedes(*b):
		return false
	default:
		return b.Value.Tag.Less(a.Value.Tag)
	}
}

// Freshest returns the m largest-tag completed writes (for diagnostics).
func Freshest(h history.History, m int) []types.Value {
	writes := h.Writes()
	vals := make([]types.Value, 0, len(writes))
	for _, w := range writes {
		vals = append(vals, w.Value)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[j].Less(vals[i]) })
	if m > len(vals) {
		m = len(vals)
	}
	return vals[:m]
}
