// Package history records executions of clients accessing the shared
// register, in the sense of Section 2.1: a sequence of invocation and
// response events, each tagged with a unique timestamp from the discrete
// global clock.
//
// The recorded history is the input to the atomicity checker
// (internal/atomicity) and to the latency harnesses.
package history

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"fastreg/internal/types"
	"fastreg/internal/vclock"
)

// Op is one completed (or still pending) operation in an execution.
type Op struct {
	Client types.ProcID
	OpID   uint64 // client-local sequence number
	Kind   types.OpKind

	Invoke   vclock.Time
	Response vclock.Time // zero while pending

	// Value is the write's argument (tagged) for writes, and the returned
	// value for reads.
	Value types.Value

	// Err records a failed operation (e.g. quorum unreachable); failed ops
	// are excluded from atomicity checking but kept for diagnosis.
	Err error

	// Epoch is the continuous-audit epoch the op borrowed weight from
	// (internal/epoch); zero when no coordinator is attached. It rides the
	// sink snapshot into capture records so the streaming checker can
	// attribute the op to its window.
	Epoch uint64
}

// Done reports whether the operation has responded.
func (o Op) Done() bool { return o.Response != 0 }

// Precedes reports the real-time order O1 ≺σ O2: O1.f < O2.s.
func (o Op) Precedes(p Op) bool {
	return o.Done() && o.Response < p.Invoke
}

// Concurrent reports O1 || O2: neither precedes the other.
func (o Op) Concurrent(p Op) bool {
	return !o.Precedes(p) && !p.Precedes(o)
}

// Key identifies the operation uniquely within a history.
func (o Op) Key() string { return fmt.Sprintf("%s#%d", o.Client, o.OpID) }

// String renders "r1#3 read ⇒ (2,w1):"x" [10,25]".
func (o Op) String() string {
	arrow := "⇒"
	if o.Kind == types.OpWrite {
		arrow = "⇐"
	}
	end := "…"
	if o.Done() {
		end = fmt.Sprintf("%d", o.Response)
	}
	return fmt.Sprintf("%s %s %s %s [%d,%s]", o.Key(), o.Kind, arrow, o.Value, o.Invoke, end)
}

// Recorder accumulates an execution concurrently. It is safe for use from
// multiple goroutines (the live network) as well as the single-threaded
// simulator.
type Recorder struct {
	mu    sync.Mutex
	clock *vclock.Clock
	ops   map[string]*Op
	order []string // insertion order for stable output
	sink  func(Op)
}

// NewRecorder creates a Recorder stamping events with clock.
func NewRecorder(clock *vclock.Clock) *Recorder {
	return &Recorder{clock: clock, ops: make(map[string]*Op)}
}

// SetSink installs a callback invoked with a snapshot of every operation
// the moment it responds (successfully or not) — the hook the audit
// capture layer appends trace records from. The callback runs under the
// recorder's lock, in response order; it must not call back into the
// recorder. Install the sink before recording begins — installation is
// safe against concurrent operations, but ops that respond before it
// lands are not re-delivered.
func (r *Recorder) SetSink(fn func(Op)) {
	r.mu.Lock()
	r.sink = fn
	r.mu.Unlock()
}

// Invoke records the invocation event of an operation and returns its key.
// For writes, val is the argument being written (its tag may still be unset;
// RecordWriteTag can fill it in later).
func (r *Recorder) Invoke(client types.ProcID, opID uint64, kind types.OpKind, val types.Value) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	op := &Op{Client: client, OpID: opID, Kind: kind, Invoke: r.clock.Tick(), Value: val}
	k := op.Key()
	r.ops[k] = op
	r.order = append(r.order, k)
	return k
}

// InvokeAt records an invocation at an explicit time (used by the scripted
// chain interpreter, which owns its own notion of time). The clock is
// advanced so later ticks stay unique.
func (r *Recorder) InvokeAt(t vclock.Time, client types.ProcID, opID uint64, kind types.OpKind, val types.Value) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clock.AdvanceTo(t)
	op := &Op{Client: client, OpID: opID, Kind: kind, Invoke: t, Value: val}
	k := op.Key()
	r.ops[k] = op
	r.order = append(r.order, k)
	return k
}

// Respond records the response event with its result value.
func (r *Recorder) Respond(key string, val types.Value, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	op, ok := r.ops[key]
	if !ok {
		panic("history: Respond for unknown op " + key)
	}
	op.Response = r.clock.Tick()
	op.Err = err
	if err == nil {
		op.Value = val
	}
	if r.sink != nil {
		r.sink(*op)
	}
}

// RespondAt records the response at an explicit time.
func (r *Recorder) RespondAt(t vclock.Time, key string, val types.Value, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	op, ok := r.ops[key]
	if !ok {
		panic("history: RespondAt for unknown op " + key)
	}
	r.clock.AdvanceTo(t)
	op.Response = t
	op.Err = err
	if err == nil {
		op.Value = val
	}
	if r.sink != nil {
		r.sink(*op)
	}
}

// RespondFailed records an operation that ended in an error (timeout,
// unreachable quorum, protocol violation). A failed write's effect is
// indeterminate — it may still have landed at the servers — so its
// recorded argument is refreshed to arg first: callers pass the
// operation's current Arg(), which for two-round writes carries the tag
// assigned after round 1, keeping reads of the (possibly landed) value
// matchable when the checker linearizes the failed write as optional.
// Every runtime's failure path must go through this helper so their
// recorded histories stay equivalent.
func (r *Recorder) RespondFailed(key string, kind types.OpKind, arg types.Value, err error) {
	if kind == types.OpWrite {
		r.UpdateValue(key, arg)
	}
	r.Respond(key, types.Value{}, err)
}

// SetEpoch tags a still-pending operation with its audit epoch (the
// phase its weight ticket was borrowed from). Called by the transport
// right after Invoke, so the tag is in place before the sink snapshot
// fires at Respond.
func (r *Recorder) SetEpoch(key string, epoch uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	op, ok := r.ops[key]
	if ok && op.Response == 0 {
		op.Epoch = epoch
	}
}

// UpdateValue refreshes a still-pending operation's value — used for
// two-round writes whose tag is only assigned after their first round, so
// that reads of an in-flight write's value remain matchable.
func (r *Recorder) UpdateValue(key string, val types.Value) {
	r.mu.Lock()
	defer r.mu.Unlock()
	op, ok := r.ops[key]
	if ok && op.Response == 0 {
		op.Value = val
	}
}

// History returns a snapshot of all recorded operations.
func (r *Recorder) History() History {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := History{Ops: make([]Op, 0, len(r.order))}
	for _, k := range r.order {
		h.Ops = append(h.Ops, *r.ops[k])
	}
	return h
}

// History is an immutable snapshot of an execution.
type History struct {
	Ops []Op
}

// Completed returns the successfully completed operations, sorted by
// invocation time.
func (h History) Completed() []Op {
	out := make([]Op, 0, len(h.Ops))
	for _, o := range h.Ops {
		if o.Done() && o.Err == nil {
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Invoke < out[j].Invoke })
	return out
}

// Pending returns operations that never responded (e.g. blocked on an
// unreachable quorum).
func (h History) Pending() []Op {
	var out []Op
	for _, o := range h.Ops {
		if !o.Done() {
			out = append(out, o)
		}
	}
	return out
}

// Failed returns completed operations that reported an error.
func (h History) Failed() []Op {
	var out []Op
	for _, o := range h.Ops {
		if o.Done() && o.Err != nil {
			out = append(out, o)
		}
	}
	return out
}

// WellFormed verifies that the execution restricted to each client is
// sequential (Section 2.1): a client invokes a new operation only after the
// previous one responded.
func (h History) WellFormed() error {
	byClient := make(map[types.ProcID][]Op)
	for _, o := range h.Ops {
		byClient[o.Client] = append(byClient[o.Client], o)
	}
	for c, ops := range byClient {
		sort.Slice(ops, func(i, j int) bool { return ops[i].Invoke < ops[j].Invoke })
		for i := 1; i < len(ops); i++ {
			prev := ops[i-1]
			if !prev.Done() || prev.Response > ops[i].Invoke {
				return fmt.Errorf("history: client %s overlaps %s and %s", c, prev.Key(), ops[i].Key())
			}
		}
	}
	return nil
}

// Writes returns the completed writes, sorted by invocation.
func (h History) Writes() []Op {
	var out []Op
	for _, o := range h.Completed() {
		if o.Kind == types.OpWrite {
			out = append(out, o)
		}
	}
	return out
}

// Reads returns the completed reads, sorted by invocation.
func (h History) Reads() []Op {
	var out []Op
	for _, o := range h.Completed() {
		if o.Kind == types.OpRead {
			out = append(out, o)
		}
	}
	return out
}

// String renders the history one operation per line.
func (h History) String() string {
	var b strings.Builder
	for _, o := range h.Ops {
		b.WriteString(o.String())
		b.WriteByte('\n')
	}
	return b.String()
}
