package history

import (
	"fastreg/internal/types"
	"fastreg/internal/vclock"
)

// Builder constructs histories with explicit event times, for tests and for
// the chain-argument engine, which owns its own notion of time.
type Builder struct {
	ops   []Op
	seq   map[types.ProcID]uint64
	clock vclock.Time
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{seq: make(map[types.ProcID]uint64)}
}

// Add records a completed operation with explicit invoke/response times and
// returns the builder for chaining.
func (b *Builder) Add(client types.ProcID, kind types.OpKind, val types.Value, invoke, response vclock.Time) *Builder {
	b.seq[client]++
	b.ops = append(b.ops, Op{
		Client:   client,
		OpID:     b.seq[client],
		Kind:     kind,
		Invoke:   invoke,
		Response: response,
		Value:    val,
	})
	return b
}

// AddPending records an operation that never responded.
func (b *Builder) AddPending(client types.ProcID, kind types.OpKind, val types.Value, invoke vclock.Time) *Builder {
	b.seq[client]++
	b.ops = append(b.ops, Op{
		Client: client,
		OpID:   b.seq[client],
		Kind:   kind,
		Invoke: invoke,
		Value:  val,
	})
	return b
}

// Seq appends a completed operation immediately after the previous one
// (non-concurrent), allocating times automatically.
func (b *Builder) Seq(client types.ProcID, kind types.OpKind, val types.Value) *Builder {
	b.clock += 2
	return b.Add(client, kind, val, b.clock-1, b.clock)
}

// History returns the built history.
func (b *Builder) History() History {
	out := make([]Op, len(b.ops))
	copy(out, b.ops)
	return History{Ops: out}
}
