package history

import (
	"errors"
	"strings"
	"testing"

	"fastreg/internal/types"
	"fastreg/internal/vclock"
)

func wv(ts int64, w int, data string) types.Value {
	return types.Value{Tag: types.Tag{TS: ts, WID: types.Writer(w)}, Data: data}
}

func TestRecorderBasics(t *testing.T) {
	clock := &vclock.Clock{}
	rec := NewRecorder(clock)
	k1 := rec.Invoke(types.Writer(1), 1, types.OpWrite, wv(1, 1, "a"))
	k2 := rec.Invoke(types.Reader(1), 1, types.OpRead, types.Value{})
	rec.Respond(k1, wv(1, 1, "a"), nil)
	rec.Respond(k2, wv(1, 1, "a"), nil)
	h := rec.History()
	if len(h.Ops) != 2 {
		t.Fatalf("ops = %d", len(h.Ops))
	}
	if len(h.Completed()) != 2 || len(h.Pending()) != 0 || len(h.Failed()) != 0 {
		t.Fatal("completion classification wrong")
	}
	for _, o := range h.Ops {
		if !o.Done() || o.Invoke >= o.Response {
			t.Errorf("bad times: %v", o)
		}
	}
}

func TestRecorderErrorAndPending(t *testing.T) {
	clock := &vclock.Clock{}
	rec := NewRecorder(clock)
	k1 := rec.Invoke(types.Writer(1), 1, types.OpWrite, wv(1, 1, "a"))
	rec.Invoke(types.Reader(1), 1, types.OpRead, types.Value{})
	rec.Respond(k1, types.Value{}, errors.New("quorum unreachable"))
	h := rec.History()
	if len(h.Failed()) != 1 {
		t.Errorf("failed = %d", len(h.Failed()))
	}
	if len(h.Pending()) != 1 {
		t.Errorf("pending = %d", len(h.Pending()))
	}
	if len(h.Completed()) != 0 {
		t.Errorf("completed = %d", len(h.Completed()))
	}
}

func TestRecorderRespondUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Respond on unknown key must panic")
		}
	}()
	NewRecorder(&vclock.Clock{}).Respond("nope", types.Value{}, nil)
}

func TestPrecedesAndConcurrent(t *testing.T) {
	a := Op{Invoke: 1, Response: 5}
	b := Op{Invoke: 6, Response: 8}
	c := Op{Invoke: 4, Response: 7}
	if !a.Precedes(b) {
		t.Error("a must precede b")
	}
	if b.Precedes(a) {
		t.Error("b must not precede a")
	}
	if !a.Concurrent(c) || !c.Concurrent(a) {
		t.Error("a and c overlap")
	}
	pending := Op{Invoke: 1}
	if pending.Precedes(b) {
		t.Error("pending op precedes nothing")
	}
}

func TestWellFormed(t *testing.T) {
	ok := NewBuilder().
		Add(types.Reader(1), types.OpRead, types.Value{}, 1, 3).
		Add(types.Reader(1), types.OpRead, types.Value{}, 4, 6).
		Add(types.Reader(2), types.OpRead, types.Value{}, 2, 5).
		History()
	if err := ok.WellFormed(); err != nil {
		t.Errorf("well-formed history rejected: %v", err)
	}
	bad := NewBuilder().
		Add(types.Reader(1), types.OpRead, types.Value{}, 1, 5).
		Add(types.Reader(1), types.OpRead, types.Value{}, 3, 8).
		History()
	if err := bad.WellFormed(); err == nil {
		t.Error("overlapping ops of one client accepted")
	}
}

func TestReadsWritesSplit(t *testing.T) {
	h := NewBuilder().
		Seq(types.Writer(1), types.OpWrite, wv(1, 1, "a")).
		Seq(types.Reader(1), types.OpRead, wv(1, 1, "a")).
		Seq(types.Writer(2), types.OpWrite, wv(2, 2, "b")).
		History()
	if len(h.Writes()) != 2 || len(h.Reads()) != 1 {
		t.Errorf("writes=%d reads=%d", len(h.Writes()), len(h.Reads()))
	}
}

func TestBuilderSeqIsSequential(t *testing.T) {
	h := NewBuilder().
		Seq(types.Writer(1), types.OpWrite, wv(1, 1, "a")).
		Seq(types.Writer(2), types.OpWrite, wv(1, 2, "b")).
		History()
	if !h.Ops[0].Precedes(h.Ops[1]) {
		t.Error("Seq ops must be non-concurrent in order")
	}
}

func TestOpStringAndHistoryString(t *testing.T) {
	h := NewBuilder().
		Seq(types.Writer(1), types.OpWrite, wv(1, 1, "a")).
		AddPending(types.Reader(1), types.OpRead, types.Value{}, 9).
		History()
	s := h.String()
	if !strings.Contains(s, "w1#1") || !strings.Contains(s, "…") {
		t.Errorf("history string = %q", s)
	}
}

func TestInvokeAtRespondAt(t *testing.T) {
	clock := &vclock.Clock{}
	rec := NewRecorder(clock)
	k := rec.InvokeAt(100, types.Reader(1), 1, types.OpRead, types.Value{})
	rec.RespondAt(200, k, wv(1, 1, "x"), nil)
	h := rec.History()
	o := h.Ops[0]
	if o.Invoke != 100 || o.Response != 200 {
		t.Errorf("times = [%d,%d]", o.Invoke, o.Response)
	}
	if clock.Now() < 200 {
		t.Error("explicit times must advance the clock")
	}
}
