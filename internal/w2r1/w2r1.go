// Package w2r1 implements the paper's contribution: the fast-read
// multi-writer atomic register of Algorithms 1 & 2 (Appendix A), atomic iff
// R < S/t − 2 (Section 5).
//
// Write (two rounds): query all servers for the maximal timestamp, then
// update all servers with (maxTS+1, wid) — equal timestamps therefore imply
// concurrent writes, so the lexicographic tie-break by writer ID is safe
// (Section 5.2).
//
// Read (one round): send the reader's valQueue to all servers; each server
// merges it into its valuevector, recording the reader in the updated set of
// every queued value, and replies with the full vector. The reader returns
// the largest value admissible with some degree a ∈ [1, R+1], where
// admissible(v, Msg, a) requires at least S − a·t replies carrying v whose
// updated sets share ≥ a clients (Algorithm 1, line 32). Properties
// MWA0–MWA4 (Appendix A.1) make this atomic; the tests verify each.
package w2r1

import (
	"fastreg/internal/opkit"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/types"
)

// Protocol is the W2R1 fast-read implementation.
type Protocol struct {
	// Greedy switches the admissibility test to the approximate greedy
	// variant (ablation only; can return stale-but-admissible values more
	// often by missing witnesses).
	Greedy bool
}

// New returns the W2R1 protocol.
func New() *Protocol { return &Protocol{} }

// Name implements register.Protocol.
func (p *Protocol) Name() string { return "W2R1" }

// WriteRounds implements register.Protocol.
func (p *Protocol) WriteRounds() int { return 2 }

// ReadRounds implements register.Protocol.
func (p *Protocol) ReadRounds() int { return 1 }

// Implementable implements register.Protocol: the paper's necessary and
// sufficient condition R < S/t − 2.
func (p *Protocol) Implementable(cfg quorum.Config) bool {
	return cfg.FastReadOK() && cfg.MajorityOK()
}

// NewServer implements register.Protocol: the Algorithm 2 valuevector
// server.
func (p *Protocol) NewServer(id types.ProcID, _ quorum.Config) register.ServerLogic {
	return opkit.NewVectorServer(id)
}

type writer struct {
	id   types.ProcID
	need int
}

// NewWriter implements register.Protocol.
func (p *Protocol) NewWriter(id types.ProcID, cfg quorum.Config) register.Writer {
	return &writer{id: id, need: cfg.ReplyQuorum()}
}

func (w *writer) ID() types.ProcID { return w.id }

func (w *writer) WriteOp(data string) register.Operation {
	return opkit.NewQueryThenUpdateWrite(w.id, data, w.need)
}

type reader struct {
	id    types.ProcID
	need  int
	state *opkit.ReaderState
	cfg   opkit.AdmissibleConfig
}

// NewReader implements register.Protocol. The reader's valQueue persists
// across its operations (Algorithm 1, lines 16–17).
func (p *Protocol) NewReader(id types.ProcID, cfg quorum.Config) register.Reader {
	return &reader{
		id:    id,
		need:  cfg.ReplyQuorum(),
		state: opkit.NewReaderState(),
		cfg:   opkit.AdmissibleConfig{S: cfg.S, T: cfg.T, MaxDegree: cfg.MaxDegree(), Greedy: p.Greedy},
	}
}

func (r *reader) ID() types.ProcID { return r.id }

func (r *reader) ReadOp() register.Operation {
	return opkit.NewFastReadOp(r.id, r.state, r.cfg, r.need)
}
