package w2r1

import (
	"testing"

	"fastreg/internal/atomicity"
	"fastreg/internal/history"
	"fastreg/internal/netsim"
	"fastreg/internal/quorum"
	"fastreg/internal/types"
	"fastreg/internal/vclock"
)

func cfg(s, t, r, w int) quorum.Config { return quorum.Config{S: s, T: t, R: r, W: w} }

// feasible is the reference configuration: S=5, t=1, R=2 < 5/1-2.
func feasible() quorum.Config { return cfg(5, 1, 2, 2) }

func TestMetadata(t *testing.T) {
	p := New()
	if p.Name() != "W2R1" || p.WriteRounds() != 2 || p.ReadRounds() != 1 {
		t.Fatalf("metadata: %s W%d R%d", p.Name(), p.WriteRounds(), p.ReadRounds())
	}
}

func TestImplementableIsTheFastReadBound(t *testing.T) {
	cases := []struct {
		s, tt, r int
		want     bool
	}{
		{5, 1, 2, true},
		{5, 1, 3, false},
		{9, 2, 2, true},
		{9, 2, 3, false},
		{4, 1, 1, true},
		{4, 1, 2, false},
	}
	for _, c := range cases {
		if got := New().Implementable(cfg(c.s, c.tt, c.r, 2)); got != c.want {
			t.Errorf("Implementable(S=%d,t=%d,R=%d) = %v, want %v", c.s, c.tt, c.r, got, c.want)
		}
	}
}

// mwaScan checks the MWA properties of Appendix A.1 directly on a history.
func mwaScan(t *testing.T, h history.History) {
	t.Helper()
	writes := make(map[types.Value]history.Op)
	for _, w := range h.Writes() {
		writes[w.Value] = w
	}
	reads := h.Reads()
	for _, rd := range reads {
		// MWA1: nonnegative timestamp (with a writer id unless initial).
		if rd.Value.Tag.TS < 0 {
			t.Errorf("MWA1: %s returned negative ts", rd.Key())
		}
		// MWA3: the read does not precede the write of the value it
		// returns.
		if !rd.Value.IsInitial() {
			w, ok := writes[rd.Value]
			if !ok {
				t.Errorf("read %s returned unwritten %v", rd.Key(), rd.Value)
				continue
			}
			if rd.Precedes(w) {
				t.Errorf("MWA3: %s precedes its write %s", rd.Key(), w.Key())
			}
		}
		// MWA2: a read following a write returns at least that write.
		for _, w := range h.Writes() {
			if w.Precedes(rd) && rd.Value.Less(w.Value) {
				t.Errorf("MWA2: %s returned %v older than preceding write %v", rd.Key(), rd.Value, w.Value)
			}
		}
	}
	// MWA4: sequential reads return monotone values.
	for i, r1 := range reads {
		for j, r2 := range reads {
			if i != j && r1.Precedes(r2) && r2.Value.Less(r1.Value) {
				t.Errorf("MWA4: %s=%v then %s=%v", r1.Key(), r1.Value, r2.Key(), r2.Value)
			}
		}
	}
	// MWA0 is by construction: sequential writes get increasing tags —
	// checked via the atomicity checker elsewhere.
}

func TestSequentialSemantics(t *testing.T) {
	sim := netsim.MustNew(feasible(), New(), netsim.WithSeed(2))
	var reads []types.Value
	step3 := func(types.Value, error) {}
	step2 := func(types.Value, error) {
		sim.InvokeAt(sim.Now()+1, sim.Reader(2).ReadOp(), func(v types.Value, err error) {
			if err != nil {
				t.Errorf("read2: %v", err)
			}
			reads = append(reads, v)
			step3(v, nil)
		})
	}
	sim.InvokeAt(0, sim.Writer(1).WriteOp("first"), func(types.Value, error) {
		sim.InvokeAt(sim.Now()+1, sim.Reader(1).ReadOp(), func(v types.Value, err error) {
			if err != nil {
				t.Errorf("read1: %v", err)
			}
			reads = append(reads, v)
			step2(v, nil)
		})
	})
	sim.Run()
	if len(reads) != 2 {
		t.Fatalf("reads = %d", len(reads))
	}
	for _, v := range reads {
		if v.Data != "first" {
			t.Fatalf("read %v", v)
		}
	}
	mwaScan(t, sim.History())
	if res := atomicity.Check(sim.History()); !res.Atomic {
		t.Fatalf("%v", res)
	}
}

func TestFastReadIsOneRound(t *testing.T) {
	// With constant delay d, the fast read must take exactly 2d (one round
	// trip) — half of the W2R2 read. This is the Fig 2 latency claim.
	const d = 100
	sim := netsim.MustNew(feasible(), New(), netsim.WithDelay(netsim.ConstDelay(d)))
	sim.InvokeAt(0, sim.Writer(1).WriteOp("x"), func(types.Value, error) {
		sim.InvokeAt(sim.Now()+1, sim.Reader(1).ReadOp(), nil)
	})
	sim.Run()
	var readLat vclock.Duration
	for _, o := range sim.History().Completed() {
		if o.Kind == types.OpRead {
			readLat = o.Response.Sub(o.Invoke)
		}
	}
	if readLat < 2*d || readLat > 2*d+4 {
		t.Fatalf("fast read latency = %d, want ≈ %d", readLat, 2*d)
	}
}

func TestRandomizedSchedulesStayAtomicWhenFeasible(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		sim := netsim.MustNew(feasible(), New(), netsim.WithSeed(seed), netsim.WithDelay(netsim.UniformDelay(1, 150)))
		var spawn func(c int, write bool, n int)
		spawn = func(c int, write bool, n int) {
			if n == 0 {
				return
			}
			op := sim.Reader(c).ReadOp()
			if write {
				op = sim.Writer(c).WriteOp("x")
			}
			sim.InvokeAt(sim.Now()+1, op, func(types.Value, error) { spawn(c, write, n-1) })
		}
		for c := 1; c <= 2; c++ {
			spawn(c, true, 5)
			spawn(c, false, 5)
		}
		sim.Run()
		h := sim.History()
		if len(h.Completed()) != 20 {
			t.Fatalf("seed %d: completed %d", seed, len(h.Completed()))
		}
		mwaScan(t, h)
		if res := atomicity.Check(h); !res.Atomic {
			t.Fatalf("seed %d: %v\n%s", seed, res, h)
		}
	}
}

func TestCrashToleranceWithinT(t *testing.T) {
	c := cfg(9, 2, 2, 2) // 2 < 9/2-2 = 2.5 ✓ feasible
	sim := netsim.MustNew(c, New(), netsim.WithSeed(3))
	sim.InvokeAt(0, sim.Writer(1).WriteOp("durable"), nil)
	sim.RunUntil(200)
	sim.CrashServer(types.Server(1), sim.Now())
	sim.CrashServer(types.Server(5), sim.Now())
	var got types.Value
	sim.InvokeAt(sim.Now()+1, sim.Reader(1).ReadOp(), func(v types.Value, err error) {
		if err != nil {
			t.Errorf("read: %v", err)
		}
		got = v
	})
	sim.Run()
	if got.Data != "durable" {
		t.Fatalf("read %v", got)
	}
}

// TestSkipPatternsStayAtomicWhenFeasible drives skip-based adversaries:
// every reader permanently misses a (different) server.
func TestSkipPatternsStayAtomicWhenFeasible(t *testing.T) {
	c := feasible()
	for seed := int64(1); seed <= 10; seed++ {
		delay := netsim.UniformDelay(1, 100)
		delay = netsim.Skip(delay, types.Reader(1), types.Server(1))
		delay = netsim.Skip(delay, types.Reader(2), types.Server(2))
		delay = netsim.Skip(delay, types.Writer(1), types.Server(3))
		sim := netsim.MustNew(c, New(), netsim.WithSeed(seed), netsim.WithDelay(delay))
		var spawn func(c int, write bool, n int)
		spawn = func(cl int, write bool, n int) {
			if n == 0 {
				return
			}
			op := sim.Reader(cl).ReadOp()
			if write {
				op = sim.Writer(cl).WriteOp("y")
			}
			sim.InvokeAt(sim.Now()+1, op, func(types.Value, error) { spawn(cl, write, n-1) })
		}
		spawn(1, true, 4)
		spawn(2, true, 4)
		spawn(1, false, 4)
		spawn(2, false, 4)
		sim.Run()
		h := sim.History()
		if len(h.Completed()) != 16 {
			t.Fatalf("seed %d: completed %d", seed, len(h.Completed()))
		}
		mwaScan(t, h)
		if res := atomicity.Check(h); !res.Atomic {
			t.Fatalf("seed %d: %v\n%s", seed, res, h)
		}
	}
}

// The infeasible side of the Section 5 boundary (R ≥ S/t − 2) is exhibited
// by the directed construction in internal/sweep, which uses the scripted
// interpreter to skip individual round-trips.
