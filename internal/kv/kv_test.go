package kv

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"

	"fastreg/internal/atomicity"
	"fastreg/internal/mwabd"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/w2r1"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := New(quorum.Config{S: 5, T: 1, R: 2, W: 2}, mwabd.New())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestPutGet(t *testing.T) {
	s := newStore(t)
	if err := s.Put(1, "k", "hello"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get(1, "k")
	if err != nil || !ok || v != "hello" {
		t.Fatalf("Get = %q ok=%v err=%v", v, ok, err)
	}
}

func TestGetMissingKey(t *testing.T) {
	s := newStore(t)
	v, ok, err := s.Get(1, "nope")
	if err != nil {
		t.Fatal(err)
	}
	if ok || v != "" {
		t.Fatalf("missing key = %q ok=%v", v, ok)
	}
}

func TestKeysAreIndependentRegisters(t *testing.T) {
	s := newStore(t)
	if err := s.Put(1, "a", "1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(2, "b", "2"); err != nil {
		t.Fatal(err)
	}
	va, _, _ := s.Get(1, "a")
	vb, _, _ := s.Get(2, "b")
	if va != "1" || vb != "2" {
		t.Fatalf("a=%q b=%q", va, vb)
	}
	if len(s.Keys()) != 2 {
		t.Fatalf("keys = %v", s.Keys())
	}
}

func TestClientRangeValidation(t *testing.T) {
	s := newStore(t)
	if err := s.Put(0, "k", "v"); err == nil {
		t.Error("writer 0 accepted")
	}
	if err := s.Put(3, "k", "v"); err == nil {
		t.Error("writer out of range accepted")
	}
	if _, _, err := s.Get(9, "k"); err == nil {
		t.Error("reader out of range accepted")
	}
}

func TestCrashToleratedAcrossKeys(t *testing.T) {
	s := newStore(t)
	if err := s.Put(1, "pre", "x"); err != nil {
		t.Fatal(err)
	}
	s.CrashServer(2)
	// Existing key still readable; new key's register starts with the
	// crash replayed.
	if v, _, err := s.Get(1, "pre"); err != nil || v != "x" {
		t.Fatalf("pre = %q err=%v", v, err)
	}
	if err := s.Put(1, "post", "y"); err != nil {
		t.Fatal(err)
	}
	if v, _, err := s.Get(2, "post"); err != nil || v != "y" {
		t.Fatalf("post = %q err=%v", v, err)
	}
}

// runtimes names both Store constructors so behavioral tests can assert
// the multiplexed runtime is indistinguishable from the per-key reference.
var runtimes = []struct {
	name string
	mk   func(quorum.Config, register.Protocol) (*Store, error)
}{
	{"multiplexed", New},
	{"per-key", NewPerKey},
}

// TestRuntimeRegression runs one deterministic script of puts, gets and a
// crash on both runtimes and requires identical observable behavior:
// same values, same ok flags, same key set, and atomic per-key histories
// with the same operation counts.
func TestRuntimeRegression(t *testing.T) {
	cfg := quorum.Config{S: 5, T: 1, R: 2, W: 2}
	type obs struct {
		vals   map[string]string
		ok     map[string]bool
		keys   []string
		opsPer map[string]int
	}
	run := func(t *testing.T, mk func(quorum.Config, register.Protocol) (*Store, error)) obs {
		t.Helper()
		s, err := mk(cfg, mwabd.New())
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		keys := []string{"users:alice", "users:bob", "config:flags", "queue:jobs"}
		for i := 0; i < 12; i++ {
			k := keys[i%len(keys)]
			if err := s.Put(1+i%cfg.W, k, fmt.Sprintf("v%d", i)); err != nil {
				t.Fatalf("put %d: %v", i, err)
			}
			if i == 6 {
				s.CrashServer(2)
			}
		}
		o := obs{vals: map[string]string{}, ok: map[string]bool{}, opsPer: map[string]int{}}
		for _, k := range append(keys, "never-written") {
			v, ok, err := s.Get(1, k)
			if err != nil {
				t.Fatalf("get %q: %v", k, err)
			}
			o.vals[k] = v
			o.ok[k] = ok
		}
		o.keys = s.Keys()
		sort.Strings(o.keys)
		for k, h := range s.Histories() {
			if res := atomicity.Check(h); !res.Atomic {
				t.Fatalf("key %q non-atomic: %v", k, res)
			}
			o.opsPer[k] = len(h.Completed())
		}
		return o
	}
	got := run(t, New)
	want := run(t, NewPerKey)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("runtimes diverge:\nmultiplexed: %+v\nper-key:     %+v", got, want)
	}
}

func TestConcurrentClientsPerKeyAtomic(t *testing.T) {
	for _, rt := range runtimes {
		rt := rt
		t.Run(rt.name, func(t *testing.T) {
			testConcurrentClientsPerKeyAtomic(t, rt.mk)
		})
	}
}

func testConcurrentClientsPerKeyAtomic(t *testing.T, mk func(quorum.Config, register.Protocol) (*Store, error)) {
	s, err := mk(quorum.Config{S: 7, T: 1, R: 2, W: 2}, w2r1.New())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for c := 1; c <= 2; c++ {
		c := c
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				key := fmt.Sprintf("k%d", i%3)
				if err := s.Put(c, key, fmt.Sprintf("w%d-%d", c, i)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				key := fmt.Sprintf("k%d", i%3)
				if _, _, err := s.Get(c, key); err != nil {
					t.Errorf("get: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Locality: every per-key history must be atomic.
	for key, h := range s.Histories() {
		if res := atomicity.Check(h); !res.Atomic {
			t.Fatalf("key %q: %v\n%s", key, res, h)
		}
	}
}

func TestOperationsAfterCloseFail(t *testing.T) {
	s := newStore(t)
	s.Close()
	if err := s.Put(1, "k", "v"); err == nil {
		t.Error("Put after Close succeeded")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	for _, rt := range runtimes {
		if _, err := rt.mk(quorum.Config{S: 0}, mwabd.New()); err == nil {
			t.Errorf("%s: bad config accepted", rt.name)
		}
	}
}
