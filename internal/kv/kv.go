// Package kv is a replicated key-value store built on atomic registers —
// the classic application the paper's introduction motivates. Each key is
// one multi-writer atomic register; by the locality property of atomicity
// (Section 2.1, citing Herlihy & Wing), the composition is atomic as a
// whole, so the store inherits the register protocol's guarantees and
// latency profile.
//
// Three runtimes back the store:
//
//   - multiplexed (New, the default): one netsim.MultiLive cluster serves
//     every key. A fixed fleet of server goroutines routes key-tagged
//     messages to per-key protocol state held in sharded maps, so the
//     goroutine count is O(servers) regardless of how many keys exist —
//     the production shape (Cassandra/Redis/Riak run one server process
//     for all keys, not one per key).
//   - per-key (NewPerKey, legacy): one full netsim.Live cluster per key,
//     created lazily. O(keys × servers) goroutines; kept as the reference
//     implementation the multiplexed runtime is regression-tested against.
//   - remote (NewRemote): the replicas are reached over the transport
//     layer (real TCP via transport.DialTCP, or in-process channel
//     connections) — the store is then a network client of a deployed
//     cmd/regserver fleet.
//
// All three present blocking Put/Get clients (with ctx-bounded variants)
// and per-key atomic histories. CrashServer(i) fails replica s_i for
// every key on the in-process runtimes; on the remote runtime it only
// severs this client's link to the replica — the replica itself lives in
// another process and keeps serving other clients.
package kv

import (
	"context"
	"fmt"
	"sync"

	"fastreg/internal/history"
	"fastreg/internal/netsim"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/transport"
	"fastreg/internal/types"
)

// runtime is the backend contract all runtimes implement. It only moves
// tagged values: Get's string/ok decoding lives in Store, as does the
// client-range validation the per-key runtime depends on (netsim.Live
// panics on unknown clients; netsim.MultiLive validates independently for
// its direct callers, so those checks overlap by design).
type runtime interface {
	write(ctx context.Context, key string, writer int, data string) (types.Value, error)
	read(ctx context.Context, key string, reader int) (types.Value, error)
	crash(i int)
	histories() map[string]history.History
	keys() []string
	close()
}

// Store is a replicated KV store over one of the two register runtimes.
type Store struct {
	cfg quorum.Config
	rt  runtime
}

// New creates a store on the multiplexed runtime: one shared server fleet
// serving every key.
func New(cfg quorum.Config, p register.Protocol) (*Store, error) {
	ml, err := netsim.NewMultiLive(cfg, p)
	if err != nil {
		return nil, err
	}
	return &Store{cfg: cfg, rt: &multiRuntime{ml: ml}}, nil
}

// NewPerKey creates a store on the legacy per-key runtime: one full
// cluster per key, created lazily.
func NewPerKey(cfg quorum.Config, p register.Protocol) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Store{cfg: cfg, rt: &perKeyRuntime{
		cfg:      cfg,
		protocol: p,
		clusters: make(map[string]*netsim.Live),
	}}, nil
}

// NewRemote creates a store whose replicas live behind a network: a
// transport.Client drives the register protocols against servers
// reachable at addrs (s_1..s_S, in order) through dial —
// transport.DialTCP for a real cluster, a ChanNetwork's Dial for an
// in-process one. Semantics match the local runtimes with two
// network-facing differences: operations can time out (use PutCtx/GetCtx;
// a blocked quorum returns register.ErrTimeout once ctx expires), and
// CrashServer only severs this client's link to the replica — killing the
// replica itself means stopping its server process. Extra opts (e.g.
// transport.WithUnbatchedSends for benchmarking) pass through to the
// underlying transport.Client.
func NewRemote(cfg quorum.Config, p register.Protocol, addrs []string, dial transport.DialFunc, opts ...transport.ClientOption) (*Store, error) {
	c, err := transport.NewClient(cfg, p, addrs, dial, opts...)
	if err != nil {
		return nil, err
	}
	return &Store{cfg: cfg, rt: &remoteRuntime{c: c}}, nil
}

// Put writes value under key as writer w_i (1-based).
func (s *Store) Put(writer int, key, value string) error {
	return s.PutCtx(context.Background(), writer, key, value)
}

// PutCtx is Put with a deadline: when ctx expires before the operation's
// reply quorums arrive (more than t servers unreachable), it returns an
// error wrapping register.ErrTimeout instead of blocking forever. The
// write's effect is then indeterminate — it may still land at the servers.
func (s *Store) PutCtx(ctx context.Context, writer int, key, value string) error {
	if writer < 1 || writer > s.cfg.W {
		return fmt.Errorf("kv: writer %d out of range [1,%d]", writer, s.cfg.W)
	}
	_, err := s.rt.write(ctx, key, writer, value)
	return err
}

// Get reads key as reader r_i (1-based). A key never written reads as the
// empty string with ok=false.
func (s *Store) Get(reader int, key string) (value string, ok bool, err error) {
	return s.GetCtx(context.Background(), reader, key)
}

// GetCtx is Get with a deadline; see PutCtx.
func (s *Store) GetCtx(ctx context.Context, reader int, key string) (value string, ok bool, err error) {
	if reader < 1 || reader > s.cfg.R {
		return "", false, fmt.Errorf("kv: reader %d out of range [1,%d]", reader, s.cfg.R)
	}
	v, err := s.rt.read(ctx, key, reader)
	if err != nil {
		return "", false, err
	}
	return v.Data, !v.IsInitial(), nil
}

// CrashServer crashes server s_i for every key's register (current and
// future).
func (s *Store) CrashServer(i int) { s.rt.crash(i) }

// Histories returns the per-key execution histories (for checking).
func (s *Store) Histories() map[string]history.History { return s.rt.histories() }

// Keys returns the keys touched so far.
func (s *Store) Keys() []string { return s.rt.keys() }

// Close shuts the runtime down.
func (s *Store) Close() { s.rt.close() }

// Config returns the cluster shape.
func (s *Store) Config() quorum.Config { return s.cfg }

// multiRuntime adapts netsim.MultiLive — already multi-key — directly.
type multiRuntime struct {
	ml *netsim.MultiLive
}

func (r *multiRuntime) write(ctx context.Context, key string, writer int, data string) (types.Value, error) {
	return r.ml.WriteCtx(ctx, key, writer, data)
}

func (r *multiRuntime) read(ctx context.Context, key string, reader int) (types.Value, error) {
	return r.ml.ReadCtx(ctx, key, reader)
}

func (r *multiRuntime) crash(i int)                           { r.ml.Crash(i) }
func (r *multiRuntime) histories() map[string]history.History { return r.ml.Histories() }
func (r *multiRuntime) keys() []string                        { return r.ml.Keys() }
func (r *multiRuntime) close()                                { r.ml.Close() }

// remoteRuntime adapts transport.Client: the replicas are other processes
// (or in-process transport.Servers), reached over connections.
type remoteRuntime struct {
	c *transport.Client
}

func (r *remoteRuntime) write(ctx context.Context, key string, writer int, data string) (types.Value, error) {
	return r.c.Write(ctx, key, writer, data)
}

func (r *remoteRuntime) read(ctx context.Context, key string, reader int) (types.Value, error) {
	return r.c.Read(ctx, key, reader)
}

func (r *remoteRuntime) crash(i int)                           { r.c.Abandon(i) }
func (r *remoteRuntime) histories() map[string]history.History { return r.c.Histories() }
func (r *remoteRuntime) keys() []string                        { return r.c.Keys() }
func (r *remoteRuntime) close()                                { r.c.Close() }

// perKeyRuntime is the original implementation: one live register cluster
// per key, all with the same shape and protocol.
type perKeyRuntime struct {
	cfg      quorum.Config
	protocol register.Protocol

	mu       sync.Mutex
	clusters map[string]*netsim.Live
	crashed  []int
	closed   bool
}

func (r *perKeyRuntime) cluster(key string) (*netsim.Live, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, netsim.ErrLiveClosed
	}
	l, ok := r.clusters[key]
	if !ok {
		var err error
		l, err = netsim.NewLive(r.cfg, r.protocol)
		if err != nil {
			return nil, fmt.Errorf("kv: creating register for %q: %w", key, err)
		}
		// Replay crashes so every key's register sees the same failures.
		for _, srv := range r.crashed {
			l.Crash(srv)
		}
		r.clusters[key] = l
	}
	return l, nil
}

func (r *perKeyRuntime) write(ctx context.Context, key string, writer int, data string) (types.Value, error) {
	l, err := r.cluster(key)
	if err != nil {
		return types.Value{}, err
	}
	return l.ExecCtx(ctx, l.Writer(writer).WriteOp(data))
}

func (r *perKeyRuntime) read(ctx context.Context, key string, reader int) (types.Value, error) {
	l, err := r.cluster(key)
	if err != nil {
		return types.Value{}, err
	}
	return l.ExecCtx(ctx, l.Reader(reader).ReadOp())
}

func (r *perKeyRuntime) crash(i int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.crashed = append(r.crashed, i)
	for _, l := range r.clusters {
		l.Crash(i)
	}
}

func (r *perKeyRuntime) histories() map[string]history.History {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]history.History, len(r.clusters))
	for k, l := range r.clusters {
		out[k] = l.History()
	}
	return out
}

func (r *perKeyRuntime) keys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.clusters))
	for k := range r.clusters {
		out = append(out, k)
	}
	return out
}

func (r *perKeyRuntime) close() {
	r.mu.Lock()
	clusters := make([]*netsim.Live, 0, len(r.clusters))
	for _, l := range r.clusters {
		clusters = append(clusters, l)
	}
	r.closed = true
	r.mu.Unlock()
	for _, l := range clusters {
		l.Close()
	}
}
