// Package kv is a small replicated key-value store built on atomic
// registers — the classic application the paper's introduction motivates.
// Each key is one multi-writer atomic register; by the locality property of
// atomicity (Section 2.1, citing Herlihy & Wing), the composition is
// atomic as a whole, so the store inherits the register protocol's
// guarantees and latency profile.
//
// The store runs over the live (goroutine-per-server) network so that
// clients are ordinary blocking calls.
package kv

import (
	"fmt"
	"sync"

	"fastreg/internal/history"
	"fastreg/internal/netsim"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
)

// Store is a replicated KV store: one live register cluster per key,
// created lazily, all with the same shape and protocol.
type Store struct {
	cfg      quorum.Config
	protocol register.Protocol

	mu       sync.Mutex
	clusters map[string]*netsim.Live
	crashed  []int
	closed   bool
}

// New creates a store with the given cluster shape and register protocol.
func New(cfg quorum.Config, p register.Protocol) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Store{cfg: cfg, protocol: p, clusters: make(map[string]*netsim.Live)}, nil
}

func (s *Store) cluster(key string) (*netsim.Live, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, netsim.ErrLiveClosed
	}
	l, ok := s.clusters[key]
	if !ok {
		var err error
		l, err = netsim.NewLive(s.cfg, s.protocol)
		if err != nil {
			return nil, fmt.Errorf("kv: creating register for %q: %w", key, err)
		}
		// Replay crashes so every key's register sees the same failures.
		for _, srv := range s.crashed {
			l.Crash(srv)
		}
		s.clusters[key] = l
	}
	return l, nil
}

// Put writes value under key as writer w_i (1-based).
func (s *Store) Put(writer int, key, value string) error {
	if writer < 1 || writer > s.cfg.W {
		return fmt.Errorf("kv: writer %d out of range [1,%d]", writer, s.cfg.W)
	}
	l, err := s.cluster(key)
	if err != nil {
		return err
	}
	_, err = l.Exec(l.Writer(writer).WriteOp(value))
	return err
}

// Get reads key as reader r_i (1-based). A key never written reads as the
// empty string with ok=false.
func (s *Store) Get(reader int, key string) (value string, ok bool, err error) {
	if reader < 1 || reader > s.cfg.R {
		return "", false, fmt.Errorf("kv: reader %d out of range [1,%d]", reader, s.cfg.R)
	}
	l, err := s.cluster(key)
	if err != nil {
		return "", false, err
	}
	v, err := l.Exec(l.Reader(reader).ReadOp())
	if err != nil {
		return "", false, err
	}
	return v.Data, !v.IsInitial(), nil
}

// CrashServer crashes server s_i for every key's register (current and
// future).
func (s *Store) CrashServer(i int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashed = append(s.crashed, i)
	for _, l := range s.clusters {
		l.Crash(i)
	}
}

// Histories returns the per-key execution histories (for checking).
func (s *Store) Histories() map[string]history.History {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]history.History, len(s.clusters))
	for k, l := range s.clusters {
		out[k] = l.History()
	}
	return out
}

// Keys returns the keys touched so far.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.clusters))
	for k := range s.clusters {
		out = append(out, k)
	}
	return out
}

// Close shuts down every register cluster.
func (s *Store) Close() {
	s.mu.Lock()
	clusters := make([]*netsim.Live, 0, len(s.clusters))
	for _, l := range s.clusters {
		clusters = append(clusters, l)
	}
	s.closed = true
	s.mu.Unlock()
	for _, l := range clusters {
		l.Close()
	}
}

// Config returns the cluster shape.
func (s *Store) Config() quorum.Config { return s.cfg }
