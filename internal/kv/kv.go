// Package kv is a replicated key-value store built on atomic registers —
// the classic application the paper's introduction motivates. Each key is
// one multi-writer atomic register; by the locality property of atomicity
// (Section 2.1, citing Herlihy & Wing), the composition is atomic as a
// whole, so the store inherits the register protocol's guarantees and
// latency profile.
//
// The store is a thin layer over the Backend seam — the one interface
// every register runtime satisfies:
//
//   - multiplexed (New, the default): one netsim.MultiLive cluster serves
//     every key. A fixed fleet of server goroutines routes key-tagged
//     messages to per-key protocol state held in sharded maps, so the
//     goroutine count is O(servers) regardless of how many keys exist —
//     the production shape (Cassandra/Redis/Riak run one server process
//     for all keys, not one per key).
//   - per-key (NewPerKey, legacy): one full netsim.Live cluster per key,
//     created lazily. O(keys × servers) goroutines; kept as the reference
//     implementation the multiplexed runtime is regression-tested against.
//   - remote (NewRemote): the replicas are reached over the transport
//     layer (real TCP via transport.DialTCP, or in-process channel
//     connections) — the store is then a network client of a deployed
//     cmd/regserver fleet.
//
// All three present blocking Put/Get clients (with ctx-bounded variants)
// and per-key atomic histories. CrashServer(i) fails replica s_i for
// every key on the in-process runtimes; on the remote runtime it only
// severs this client's link to the replica — the replica itself lives in
// another process and keeps serving other clients.
package kv

import (
	"context"
	"fmt"
	"sync"

	"fastreg/internal/history"
	"fastreg/internal/netsim"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/transport"
	"fastreg/internal/types"
)

// Backend is the seam between the store and the register runtimes: one
// multi-key, context-first contract that netsim.MultiLive (in-process
// multiplexed fleet), *PerKey (one netsim.Live cluster per key) and
// transport.Client (replicas behind a network) all satisfy, so backend
// choice is configuration rather than API shape. A Backend only moves
// tagged values: Get's string/ok decoding lives in Store, as does the
// client-range validation the per-key runtime depends on (netsim.Live
// panics on unknown clients; the other backends validate independently
// for their direct callers, so those checks overlap by design).
//
// Write and Read block until the protocol's operation completes, ctx
// expires (an error wrapping register.ErrTimeout) or the backend closes;
// each (key, writer) and (key, reader) pair must be used sequentially.
// Crash fails replica s_i — for every key at once on in-process
// backends, as a client-side link severance on remote ones. Histories
// exposes the per-key executions for the atomicity checker.
type Backend interface {
	Write(ctx context.Context, key string, writer int, data string) (types.Value, error)
	Read(ctx context.Context, key string, reader int) (types.Value, error)
	Crash(i int)
	Histories() map[string]history.History
	Keys() []string
	Close()
}

// The three runtimes all satisfy the seam.
var (
	_ Backend = (*netsim.MultiLive)(nil)
	_ Backend = (*transport.Client)(nil)
	_ Backend = (*PerKey)(nil)
)

// Store is a replicated KV store over any register Backend.
type Store struct {
	cfg quorum.Config
	b   Backend
}

// New creates a store on the multiplexed runtime: one shared server fleet
// serving every key.
func New(cfg quorum.Config, p register.Protocol) (*Store, error) {
	ml, err := netsim.NewMultiLive(cfg, p)
	if err != nil {
		return nil, err
	}
	return &Store{cfg: cfg, b: ml}, nil
}

// NewPerKey creates a store on the legacy per-key runtime: one full
// cluster per key, created lazily.
func NewPerKey(cfg quorum.Config, p register.Protocol) (*Store, error) {
	b, err := NewPerKeyBackend(cfg, p)
	if err != nil {
		return nil, err
	}
	return &Store{cfg: cfg, b: b}, nil
}

// NewRemote creates a store whose replicas live behind a network: a
// transport.Client drives the register protocols against servers
// reachable at addrs (s_1..s_S, in order) through dial —
// transport.DialTCP for a real cluster, a ChanNetwork's Dial for an
// in-process one. Semantics match the local runtimes with two
// network-facing differences: operations can time out (use PutCtx/GetCtx;
// a blocked quorum returns register.ErrTimeout once ctx expires), and
// CrashServer only severs this client's link to the replica — killing the
// replica itself means stopping its server process. Extra opts (e.g.
// transport.WithUnbatchedSends for benchmarking) pass through to the
// underlying transport.Client.
func NewRemote(cfg quorum.Config, p register.Protocol, addrs []string, dial transport.DialFunc, opts ...transport.ClientOption) (*Store, error) {
	c, err := transport.NewClient(cfg, p, addrs, dial, opts...)
	if err != nil {
		return nil, err
	}
	return &Store{cfg: cfg, b: c}, nil
}

// NewFromBackend wraps an already-constructed Backend in a Store — the
// hook fastreg.Open uses after resolving its options to a runtime. The
// Store takes ownership: Close closes the backend.
func NewFromBackend(cfg quorum.Config, b Backend) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Store{cfg: cfg, b: b}, nil
}

// Backend returns the runtime behind the store — the seam conformance
// tests and checkers drive directly.
func (s *Store) Backend() Backend { return s.b }

// Put writes value under key as writer w_i (1-based).
func (s *Store) Put(writer int, key, value string) error {
	return s.PutCtx(context.Background(), writer, key, value)
}

// PutCtx is Put with a deadline: when ctx expires before the operation's
// reply quorums arrive (more than t servers unreachable), it returns an
// error wrapping register.ErrTimeout instead of blocking forever. The
// write's effect is then indeterminate — it may still land at the servers.
func (s *Store) PutCtx(ctx context.Context, writer int, key, value string) error {
	if writer < 1 || writer > s.cfg.W {
		return fmt.Errorf("kv: writer %d out of range [1,%d]", writer, s.cfg.W)
	}
	_, err := s.b.Write(ctx, key, writer, value)
	return err
}

// Get reads key as reader r_i (1-based). A key never written reads as the
// empty string with ok=false.
func (s *Store) Get(reader int, key string) (value string, ok bool, err error) {
	return s.GetCtx(context.Background(), reader, key)
}

// GetCtx is Get with a deadline; see PutCtx.
func (s *Store) GetCtx(ctx context.Context, reader int, key string) (value string, ok bool, err error) {
	if reader < 1 || reader > s.cfg.R {
		return "", false, fmt.Errorf("kv: reader %d out of range [1,%d]", reader, s.cfg.R)
	}
	v, err := s.b.Read(ctx, key, reader)
	if err != nil {
		return "", false, err
	}
	return v.Data, !v.IsInitial(), nil
}

// CrashServer crashes server s_i for every key's register (current and
// future).
func (s *Store) CrashServer(i int) { s.b.Crash(i) }

// Histories returns the per-key execution histories (for checking).
func (s *Store) Histories() map[string]history.History { return s.b.Histories() }

// Keys returns the keys touched so far.
func (s *Store) Keys() []string { return s.b.Keys() }

// Close shuts the backend down.
func (s *Store) Close() { s.b.Close() }

// Config returns the cluster shape.
func (s *Store) Config() quorum.Config { return s.cfg }

// PerKey is the original runtime as a Backend: one live register cluster
// per key, created lazily, all with the same shape and protocol.
type PerKey struct {
	cfg      quorum.Config
	protocol register.Protocol

	mu       sync.Mutex
	clusters map[string]*netsim.Live
	crashed  []int
	closed   bool
}

// NewPerKeyBackend creates the legacy per-key runtime behind the Backend
// seam.
func NewPerKeyBackend(cfg quorum.Config, p register.Protocol) (*PerKey, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &PerKey{
		cfg:      cfg,
		protocol: p,
		clusters: make(map[string]*netsim.Live),
	}, nil
}

func (r *PerKey) cluster(key string) (*netsim.Live, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, netsim.ErrLiveClosed
	}
	l, ok := r.clusters[key]
	if !ok {
		var err error
		l, err = netsim.NewLive(r.cfg, r.protocol)
		if err != nil {
			return nil, fmt.Errorf("kv: creating register for %q: %w", key, err)
		}
		// Replay crashes so every key's register sees the same failures.
		for _, srv := range r.crashed {
			l.Crash(srv)
		}
		r.clusters[key] = l
	}
	return l, nil
}

// Write implements Backend.
func (r *PerKey) Write(ctx context.Context, key string, writer int, data string) (types.Value, error) {
	l, err := r.cluster(key)
	if err != nil {
		return types.Value{}, err
	}
	return l.ExecCtx(ctx, l.Writer(writer).WriteOp(data))
}

// Read implements Backend.
func (r *PerKey) Read(ctx context.Context, key string, reader int) (types.Value, error) {
	l, err := r.cluster(key)
	if err != nil {
		return types.Value{}, err
	}
	return l.ExecCtx(ctx, l.Reader(reader).ReadOp())
}

// Crash implements Backend: it crashes s_i in every existing per-key
// cluster and replays the crash into clusters created later.
func (r *PerKey) Crash(i int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.crashed = append(r.crashed, i)
	for _, l := range r.clusters {
		l.Crash(i)
	}
}

// Histories implements Backend.
func (r *PerKey) Histories() map[string]history.History {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]history.History, len(r.clusters))
	for k, l := range r.clusters {
		out[k] = l.History()
	}
	return out
}

// Keys implements Backend.
func (r *PerKey) Keys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.clusters))
	for k := range r.clusters {
		out = append(out, k)
	}
	return out
}

// Close implements Backend.
func (r *PerKey) Close() {
	r.mu.Lock()
	clusters := make([]*netsim.Live, 0, len(r.clusters))
	for _, l := range r.clusters {
		clusters = append(clusters, l)
	}
	r.closed = true
	r.mu.Unlock()
	for _, l := range clusters {
		l.Close()
	}
}
