// Package keyreg is the single implementation of the sharded per-key
// state registries every multi-key runtime needs. Before it existed the
// same two structures were written out three times, nearly line for line:
//
//   - client side: netsim.MultiLive's keyShard/keyState and
//     transport.Registry's clientShard/keyClients both kept, per key, the
//     protocol's writer/reader state machines, per-client operation
//     counters and the key's history recorder, lazily created under a
//     shard lock;
//   - server side: netsim's regShard and transport's serverShard both
//     kept one replica's lazily-instantiated register.ServerLogic per
//     key, with the shard mutex doubling as the per-key Handle serializer
//     the protocols' model requires.
//
// keyreg extracts both, the way shard.Index was extracted for the hash:
// ClientRegistry and ServerRegistry are the shared sharded maps, with the
// eviction bookkeeping (epochs, in-flight counts, mid-flight operation
// records) that the TTL sweeps of both stacks need. The partition is
// always shard.Index, so a key lives at the same shard index in every
// registry of a deployment — the cross-stack invariant the batching paths
// rely on.
package keyreg

import (
	"sort"
	"sync"
	"sync/atomic"

	"fastreg/internal/history"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/shard"
	"fastreg/internal/types"
	"fastreg/internal/vclock"
)

// ClientState is everything client-side that exists once per key: the
// writer/reader protocol state machines (they carry persistent local
// state across operations, e.g. the ABD timestamp counter or Algorithm
// 1's valQueue), per-client operation counters, and the key's history
// recorder with its own clock domain.
//
// The exported atomic counters are the eviction bookkeeping the owning
// runtime maintains: Active counts operations between acquire and
// release; Inflight counts the key's messages sitting in server inboxes
// (an operation can complete with a quorum while its request to a slow
// server is still queued — evicting then would let the straggler
// resurrect pre-eviction server state). A key is evictable only when
// both are zero and its last acquire is a full epoch old.
type ClientState struct {
	mu      sync.Mutex
	writers map[types.ProcID]register.Writer // guardedby: mu
	readers map[types.ProcID]register.Reader // guardedby: mu
	opSeq   map[types.ProcID]uint64          // guardedby: mu
	rec     *history.Recorder

	Active   atomic.Int64
	Inflight atomic.Int64

	// Per-key workload counters, maintained always (two uncontended atomic
	// adds per operation — cheaper than gating them): the read/write mix
	// and how often operations overlapped on the key. These are the
	// signals the planned adaptive protocol selection needs, surfaced
	// today through ClientRegistry.KeyStats and Store.Stats.
	ReadOps   atomic.Int64
	WriteOps  atomic.Int64
	Contended atomic.Int64

	// lastEpoch is the sweep epoch of the most recent Acquire; guarded by
	// the owning shard's lock.
	lastEpoch int64
}

// Recorder returns the key's history recorder.
func (st *ClientState) Recorder() *history.Recorder { return st.rec }

// Writer returns the key's writer state machine for id, creating it from
// the protocol on first use.
func (st *ClientState) Writer(id types.ProcID, p register.Protocol, cfg quorum.Config) register.Writer {
	st.mu.Lock()
	defer st.mu.Unlock()
	w, ok := st.writers[id]
	if !ok {
		w = p.NewWriter(id, cfg)
		st.writers[id] = w
	}
	return w
}

// Reader returns the key's reader state machine for id, creating it from
// the protocol on first use.
func (st *ClientState) Reader(id types.ProcID, p register.Protocol, cfg quorum.Config) register.Reader {
	st.mu.Lock()
	defer st.mu.Unlock()
	r, ok := st.readers[id]
	if !ok {
		r = p.NewReader(id, cfg)
		st.readers[id] = r
	}
	return r
}

// NextOpID issues the client's next per-key operation sequence number.
// Each client is sequential per key (well-formed histories), so the lock
// only arbitrates cross-client access.
func (st *ClientState) NextOpID(client types.ProcID) uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.opSeq[client]++
	return st.opSeq[client]
}

// clientShard is one shard of the client registry.
type clientShard struct {
	mu sync.Mutex
	m  map[string]*ClientState // guardedby: mu
}

// ClientRegistry is the sharded per-key client-side registry. It owns the
// eviction epoch: Sweep advances it, Acquire stamps it.
type ClientRegistry struct {
	nshards int
	epoch   atomic.Int64
	shards  []*clientShard

	// capture, when set, is installed as the sink of every key's history
	// recorder: it observes each operation the moment it responds, keyed
	// by the register it ran against. Atomic so SetCapture is safe even
	// against a registry already serving operations (ops that respond
	// before installation are simply not captured).
	capture atomic.Pointer[func(key string, op history.Op)]
}

// NewClientRegistry creates an empty registry with n shards (n ≤ 0 picks
// shard.Default).
func NewClientRegistry(n int) *ClientRegistry {
	if n <= 0 {
		n = shard.Default
	}
	r := &ClientRegistry{nshards: n, shards: make([]*clientShard, n)}
	for i := range r.shards {
		r.shards[i] = &clientShard{m: make(map[string]*ClientState)}
	}
	return r
}

// SetCapture installs an operation-capture sink: fn observes every
// operation of every key the moment it responds (see
// history.Recorder.SetSink for the callback contract). The audit layer
// uses it to stream completed ops into a trace log. The hook is wired
// into each key's recorder as the key is first acquired; existing keys'
// recorders are updated here under their shard lock. Installation is
// safe against a registry already in use, but call it before the first
// operation for complete logs — ops that respond first are not
// re-delivered.
func (r *ClientRegistry) SetCapture(fn func(key string, op history.Op)) {
	r.capture.Store(&fn)
	for _, sh := range r.shards {
		sh.mu.Lock()
		for key, st := range sh.m {
			key := key
			st.rec.SetSink(func(op history.Op) { fn(key, op) })
		}
		sh.mu.Unlock()
	}
}

// NumShards returns the shard count.
func (r *ClientRegistry) NumShards() int { return r.nshards }

// ShardIndex maps a key to its shard (the shared shard.Index partition).
func (r *ClientRegistry) ShardIndex(key string) int { return shard.Index(key, r.nshards) }

// Acquire returns the key's state, creating it on first touch, with the
// key stamped into the current eviction epoch and one in-flight operation
// registered — the caller must Release when the operation finishes.
// Holding the shard lock for the lookup+register makes acquisition atomic
// against Sweep.
func (r *ClientRegistry) Acquire(key string) *ClientState {
	sh := r.shards[r.ShardIndex(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.m[key]
	if !ok {
		st = &ClientState{
			writers: make(map[types.ProcID]register.Writer),
			readers: make(map[types.ProcID]register.Reader),
			opSeq:   make(map[types.ProcID]uint64),
			rec:     history.NewRecorder(&vclock.Clock{}),
		}
		if fnp := r.capture.Load(); fnp != nil {
			fn := *fnp
			st.rec.SetSink(func(op history.Op) { fn(key, op) })
		}
		sh.m[key] = st
	}
	st.lastEpoch = r.epoch.Load()
	if st.Active.Add(1) > 1 {
		// Another operation is already live on this key: record the
		// overlap. Counted once per joining operation, which makes the
		// counter a lower bound on pairwise overlaps — sufficient as a
		// contention signal.
		st.Contended.Add(1)
	}
	return st
}

// Release retires the in-flight operation Acquire registered.
func (r *ClientRegistry) Release(st *ClientState) { st.Active.Add(-1) }

// History returns the execution recorded so far for one key.
func (r *ClientRegistry) History(key string) history.History {
	sh := r.shards[r.ShardIndex(key)]
	sh.mu.Lock()
	st, ok := sh.m[key]
	sh.mu.Unlock()
	if !ok {
		return history.History{}
	}
	return st.rec.History()
}

// Histories returns a snapshot of every key's recorded execution.
func (r *ClientRegistry) Histories() map[string]history.History {
	out := make(map[string]history.History)
	for _, sh := range r.shards {
		sh.mu.Lock()
		states := make(map[string]*ClientState, len(sh.m))
		for k, st := range sh.m {
			states[k] = st
		}
		sh.mu.Unlock()
		for k, st := range states {
			out[k] = st.rec.History()
		}
	}
	return out
}

// Keys returns the keys touched so far, sorted.
func (r *ClientRegistry) Keys() []string {
	var out []string
	for _, sh := range r.shards {
		sh.mu.Lock()
		for k := range sh.m {
			out = append(out, k)
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// KeyStats is one key's workload profile: completed operation counts by
// kind and the number of operations that found another already live on
// the key when they started.
type KeyStats struct {
	Key       string
	Reads     int64
	Writes    int64
	Contended int64
}

// KeyStats returns every live key's workload profile, sorted by key.
func (r *ClientRegistry) KeyStats() []KeyStats {
	var out []KeyStats
	for _, sh := range r.shards {
		sh.mu.Lock()
		for k, st := range sh.m {
			out = append(out, KeyStats{
				Key:       k,
				Reads:     st.ReadOps.Load(),
				Writes:    st.WriteOps.Load(),
				Contended: st.Contended.Load(),
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// PendingInflight sums the Inflight counters across all keys (tests and
// diagnostics: it is the number of already-sent messages not yet retired
// by a server worker).
func (r *ClientRegistry) PendingInflight() int64 {
	var n int64
	for _, sh := range r.shards {
		sh.mu.Lock()
		for _, st := range sh.m {
			n += st.Inflight.Load()
		}
		sh.mu.Unlock()
	}
	return n
}

// Sweep advances the eviction epoch and evicts every key that has no
// operation in flight, no message pending at a server, and was untouched
// for a full epoch. onEvict (may be nil) runs for each victim while the
// key's shard lock is held — the owning runtime uses it to drop the
// matching server-side state atomically, so no new operation can slip in
// between (Acquire needs the same lock). Returns the number of keys
// evicted.
func (r *ClientRegistry) Sweep(onEvict func(shardIdx int, key string)) int {
	cutoff := r.epoch.Add(1) - 2
	evicted := 0
	for si, sh := range r.shards {
		sh.mu.Lock()
		for key, st := range sh.m {
			if st.Active.Load() != 0 || st.Inflight.Load() != 0 || st.lastEpoch > cutoff {
				continue
			}
			if onEvict != nil {
				onEvict(si, key)
			}
			delete(sh.m, key)
			evicted++
		}
		sh.mu.Unlock()
	}
	return evicted
}
