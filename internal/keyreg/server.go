package keyreg

import (
	"sync"
	"sync/atomic"

	"fastreg/internal/proto"
	"fastreg/internal/register"
	"fastreg/internal/shard"
	"fastreg/internal/types"
)

// ServerState is one key's state at one replica: the protocol's server
// logic plus the eviction bookkeeping a TTL sweep needs — the epoch of
// the key's most recent request, and the operations observed mid-flight
// (an operation between its query and its follow-up round; evicting then
// would reset server state under a live operation).
type ServerState struct {
	Logic     register.ServerLogic
	lastEpoch int64
	handled   int64            // requests Touch has seen for this key
	open      map[openOp]int64 // mid-flight op → epoch last seen (nil until first Query)
}

// Handled reports how many requests this replica has handled for the key
// (maintained by Touch; callers hold the shard lock). Fault-injection
// harnesses key deterministic misbehavior off it.
func (sk *ServerState) Handled() int64 { return sk.handled }

// openOp names one client operation from the replica's point of view.
type openOp struct {
	client types.ProcID
	opID   uint64
}

// Touch stamps the key into the current epoch and maintains the
// mid-flight set. An operation is provably mid-flight only after a Query
// below the protocol's final round: every protocol follows such a query
// with another round (a write's update, a read's write-back or next
// query), so the entry is guaranteed a closing request — any later round
// at the protocol's max, or an update, closes it. Requests that may
// already be an operation's only round (FastReads, direct updates,
// final-round queries like FullInfo's) never open records, so
// mixed-round protocols (W2R1's one-round reads, FullInfo's
// FastRead-then-query reads) cannot leak per-operation state; for their
// multi-round shapes the TTL's two-full-windows idle requirement is the
// safety margin. Only crashed clients leave entries behind; Sweep ages
// those out. Callers hold the shard lock.
func (sk *ServerState) Touch(env proto.Envelope, epoch int64, maxRounds int) {
	sk.lastEpoch = epoch
	sk.handled++
	if maxRounds <= 1 {
		return
	}
	ref := openOp{client: env.From, opID: env.OpID}
	if env.Payload.Kind() == proto.KindQuery && int(env.Round) < maxRounds {
		if sk.open == nil {
			sk.open = make(map[openOp]int64)
		}
		sk.open[ref] = epoch
	} else if len(sk.open) > 0 {
		delete(sk.open, ref)
	}
}

// ServerShard is one shard of a replica's key space. Its mutex both
// guards the map and serializes Handle per key — a key lives in exactly
// one shard, so holding the lock across a batch run gives the
// single-threaded server state the protocols' model requires while
// letting distinct shards proceed in parallel. Callers take Lock, run
// GetLocked/DeleteLocked and the protocol Handles, then Unlock.
type ServerShard struct {
	reg *ServerRegistry

	mu sync.Mutex
	m  map[string]*ServerState // guardedby: mu
}

// Lock acquires the shard.
func (sh *ServerShard) Lock() { sh.mu.Lock() }

// Unlock releases the shard.
func (sh *ServerShard) Unlock() { sh.mu.Unlock() }

// GetLocked returns the key's state, instantiating the protocol's server
// logic on first touch. The caller holds the shard lock.
func (sh *ServerShard) GetLocked(key string) *ServerState {
	st, ok := sh.m[key]
	if !ok {
		st = &ServerState{Logic: sh.reg.mk()}
		sh.m[key] = st
	}
	return st
}

// DeleteLocked drops the key's state. The caller holds the shard lock.
func (sh *ServerShard) DeleteLocked(key string) { delete(sh.m, key) }

// ServerRegistry is one replica's sharded key → server-logic map — the
// state behind netsim.MultiLive's per-replica shards and
// transport.Server's, created lazily from the protocol factory.
type ServerRegistry struct {
	nshards int
	mk      func() register.ServerLogic
	epoch   atomic.Int64
	shards  []*ServerShard
}

// NewServerRegistry creates an empty registry with n shards (n ≤ 0 picks
// shard.Default); mk instantiates the protocol's server logic for a new
// key (it closes over the replica's identity and cluster shape).
func NewServerRegistry(n int, mk func() register.ServerLogic) *ServerRegistry {
	if n <= 0 {
		n = shard.Default
	}
	r := &ServerRegistry{nshards: n, mk: mk, shards: make([]*ServerShard, n)}
	for i := range r.shards {
		r.shards[i] = &ServerShard{reg: r, m: make(map[string]*ServerState)}
	}
	return r
}

// NumShards returns the shard count.
func (r *ServerRegistry) NumShards() int { return r.nshards }

// ShardIndex maps a key to its shard (the shared shard.Index partition).
func (r *ServerRegistry) ShardIndex(key string) int { return shard.Index(key, r.nshards) }

// Shard returns shard i for locked batch processing.
func (r *ServerRegistry) Shard(i int) *ServerShard { return r.shards[i] }

// Epoch returns the current eviction epoch (Sweep advances it); handlers
// pass it to Touch.
func (r *ServerRegistry) Epoch() int64 { return r.epoch.Load() }

// Value inspects the replica's stored value for key (tests and tooling;
// protocol code never calls it). ok is false when the key was never
// touched here.
func (r *ServerRegistry) Value(key string) (types.Value, bool) {
	sh := r.shards[r.ShardIndex(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.m[key]
	if !ok {
		return types.Value{}, false
	}
	return st.Logic.CurrentValue(), true
}

// KeyCount reports how many keys the replica holds state for.
func (r *ServerRegistry) KeyCount() int {
	n := 0
	for _, sh := range r.shards {
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// Sweep advances the eviction epoch and evicts every key untouched for a
// full epoch that has no operation mid-flight, deleting its protocol
// state under the shard lock (so no Handle can interleave). Mid-flight
// records older than the idle window are dropped as abandoned (their
// client crashed or timed out). Returns the number of keys evicted.
func (r *ServerRegistry) Sweep() int {
	cutoff := r.epoch.Add(1) - 2
	evicted := 0
	for _, sh := range r.shards {
		sh.mu.Lock()
		for key, sk := range sh.m {
			// Prune abandoned mid-flight records on every sweep — hot keys
			// included — so crashed clients can't pin entries forever.
			// Records get one window beyond the key's own idle eviction
			// point before being written off as crashed: a live
			// multi-round operation must never lose server state between
			// its rounds.
			inflight := false
			for ref, ep := range sk.open {
				if ep >= cutoff {
					inflight = true
				} else {
					delete(sk.open, ref)
				}
			}
			if inflight || sk.lastEpoch > cutoff {
				continue
			}
			delete(sh.m, key)
			evicted++
		}
		sh.mu.Unlock()
	}
	return evicted
}
