// Package atomicity decides whether an execution satisfies Definition 2.1
// of the paper: there is a sequential permutation π of all operations that
// respects real-time order (O1 ≺σ O2 ⇒ O1 before O2 in π) and in which
// every read returns the value of the latest preceding write.
//
// This is linearizability of a single register (Herlihy & Wing). The main
// decision procedure is the Wing–Gong–Lowe search with memoization: states
// are (set of linearized operations, last linearized write); an operation
// may be appended when no unlinearized operation real-time-precedes it, and
// a read may be appended only if it returns the current register value.
// With the bounded client concurrency of this repository's executions the
// reachable state space is small, so the search is effectively linear.
//
// Fast necessary-condition checks (reads from nowhere, reads from the
// future, new-old inversions) run first to produce precise violation
// messages; a brute-force permutation checker cross-validates the search on
// tiny histories in the tests.
package atomicity

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"fastreg/internal/history"
	"fastreg/internal/types"
	"fastreg/internal/vclock"
)

// Violation describes why a history is not atomic.
type Violation struct {
	// Code classifies the violation.
	Code Code
	// Detail is a human-readable explanation naming the operations.
	Detail string
	// Ops are the operations implicated (best effort).
	Ops []history.Op
}

// Code classifies violations.
type Code int

// Violation codes, from cheap structural checks to the full search.
const (
	// ReadFromNowhere: a read returned a value no write wrote.
	ReadFromNowhere Code = iota + 1
	// ReadFromFuture: a read returned a value whose write it precedes.
	ReadFromFuture
	// NewOldInversion: two sequential reads observed two writes in the
	// wrong order.
	NewOldInversion
	// NoLinearization: the exhaustive search found no valid permutation.
	NoLinearization
)

// String names the code.
func (c Code) String() string {
	switch c {
	case ReadFromNowhere:
		return "read-from-nowhere"
	case ReadFromFuture:
		return "read-from-future"
	case NewOldInversion:
		return "new-old-inversion"
	case NoLinearization:
		return "no-linearization"
	default:
		return "unknown"
	}
}

// Result is the checker's verdict.
type Result struct {
	Atomic bool
	// Linearization is a witness permutation when Atomic (operation keys in
	// π order).
	Linearization []history.Op
	// Violation explains the failure when !Atomic.
	Violation *Violation
}

// String renders the verdict compactly.
func (r Result) String() string {
	if r.Atomic {
		keys := make([]string, len(r.Linearization))
		for i, o := range r.Linearization {
			keys[i] = o.Key()
		}
		return "ATOMIC π=[" + strings.Join(keys, " ") + "]"
	}
	return fmt.Sprintf("VIOLATION %s: %s", r.Violation.Code, r.Violation.Detail)
}

const pendingResponse = vclock.Time(math.MaxInt64)

type node struct {
	op       history.Op
	invoke   vclock.Time
	response vclock.Time
	optional bool // pending/failed write: may or may not have taken effect
	dom      int  // clock domain; timestamps compare only within a domain
}

// Options tunes the checker. The zero value is the default configuration.
type Options struct {
	// DisableMemo turns off state memoization in the WGL search (ablation
	// only; exponential blow-up on concurrent histories).
	DisableMemo bool

	// DomainOf maps each operation to its clock domain. Within a domain
	// the invoke/response timestamps are real-time comparable; across
	// domains they are not, and the checker treats every cross-domain
	// pair of operations as concurrent. This is the model for histories
	// merged from several processes' capture logs (internal/audit): each
	// process stamps its own operations with its own clock, and no
	// cross-process real-time order is observable without a shared clock
	// — so none may be imposed, on pain of false violations. nil means
	// one shared domain: the classic single-process checker.
	DomainOf func(history.Op) int

	// Base, when set, is the register's value BEFORE the history begins —
	// the windowed checker's frontier (internal/audit): the final value of
	// the retired prefix of a streaming execution. Reads may return it
	// until the first linearized write overwrites it, exactly as they may
	// return InitialValue in a full history. The zero value means the
	// register starts at InitialValue (the full-history checker).
	Base types.Value
}

// Check decides atomicity of the history. Completed reads and writes are
// required; writes that never completed (pending or failed) are optional —
// the checker may linearize them or drop them, the standard completion
// semantics for crashed operations. Pending reads are ignored.
func Check(h history.History) Result { return CheckOpt(h, Options{}) }

// CheckDomains is Check for multi-process histories: domainOf assigns
// each operation its clock domain (see Options.DomainOf). A verdict is as
// binding as Check's, under strictly weaker assumptions — the checker
// only trusts timestamp comparisons within a domain.
func CheckDomains(h history.History, domainOf func(history.Op) int) Result {
	return CheckOpt(h, Options{DomainOf: domainOf})
}

// CheckOpt is Check with explicit Options.
func CheckOpt(h history.History, opts Options) Result {
	domainOf := opts.DomainOf
	if domainOf == nil {
		domainOf = func(history.Op) int { return 0 }
	}
	// Normalize domains to dense 0..D-1 indices so the search can keep
	// per-domain state in a slice.
	dense := make(map[int]int)
	dom := func(o history.Op) int {
		d := domainOf(o)
		idx, ok := dense[d]
		if !ok {
			idx = len(dense)
			dense[d] = idx
		}
		return idx
	}
	var nodes []node
	for _, o := range h.Completed() {
		nodes = append(nodes, node{op: o, invoke: o.Invoke, response: o.Response, dom: dom(o)})
	}
	for _, o := range append(h.Pending(), h.Failed()...) {
		if o.Kind == types.OpWrite {
			nodes = append(nodes, node{op: o, invoke: o.Invoke, response: pendingResponse, optional: true, dom: dom(o)})
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].invoke < nodes[j].invoke })

	base := opts.Base
	if base == (types.Value{}) {
		base = types.InitialValue()
	}
	if v := structuralChecks(nodes, base); v != nil {
		return Result{Violation: v}
	}
	lin, ok := search(nodes, len(dense), base, !opts.DisableMemo)
	if !ok {
		return Result{Violation: &Violation{
			Code:   NoLinearization,
			Detail: "no permutation satisfies real-time and read-from requirements",
			Ops:    opsOf(nodes),
		}}
	}
	return Result{Atomic: true, Linearization: lin}
}

func opsOf(nodes []node) []history.Op {
	out := make([]history.Op, len(nodes))
	for i, n := range nodes {
		out[i] = n.op
	}
	return out
}

// structuralChecks runs the linear-time necessary conditions so violations
// get precise messages. Returning nil means "no cheap violation found" —
// the search still decides. Every real-time comparison is gated on the
// two operations sharing a clock domain; with one domain (the default)
// the gate is always open.
func structuralChecks(nodes []node, base types.Value) *Violation {
	writes := make(map[types.Value]node)
	for _, n := range nodes {
		if n.op.Kind == types.OpWrite {
			if _, dup := writes[n.op.Value]; dup {
				// Duplicate write values make the read-from relation
				// ambiguous; the cheap checks would be unsound. Let the
				// exhaustive search decide alone.
				return nil
			}
			writes[n.op.Value] = n
		}
	}
	for _, n := range nodes {
		if n.op.Kind != types.OpRead || n.optional {
			continue
		}
		v := n.op.Value
		if v.IsInitial() || v == base {
			continue
		}
		w, ok := writes[v]
		if !ok {
			return &Violation{
				Code:   ReadFromNowhere,
				Detail: fmt.Sprintf("%s returned %s which no write wrote", n.op.Key(), v),
				Ops:    []history.Op{n.op},
			}
		}
		if n.dom == w.dom && n.response < w.invoke {
			return &Violation{
				Code:   ReadFromFuture,
				Detail: fmt.Sprintf("%s returned %s but precedes its write %s", n.op.Key(), v, w.op.Key()),
				Ops:    []history.Op{n.op, w.op},
			}
		}
	}
	// New-old inversion: r1 ≺ r2, r1 returns v1, r2 returns v2 ≠ v1, and
	// write(v1) really precedes... the precise condition: write(v2) ≺
	// write(v1) forces v2 to be overwritten before r1 read v1, so r2 (after
	// r1) can no longer read v2.
	var reads []node
	for _, n := range nodes {
		if n.op.Kind == types.OpRead && !n.optional {
			reads = append(reads, n)
		}
	}
	precedes := func(a, b node) bool { return a.dom == b.dom && a.response < b.invoke }
	for i, r1 := range reads {
		for j, r2 := range reads {
			if i == j || !precedes(r1, r2) {
				continue
			}
			v1, v2 := r1.op.Value, r2.op.Value
			if v1 == v2 {
				continue
			}
			w1, ok1 := writes[v1]
			w2, ok2 := writes[v2]
			// Treat the initial value as written before everything.
			switch {
			case ok1 && ok2 && precedes(w2, w1):
				return &Violation{
					Code: NewOldInversion,
					Detail: fmt.Sprintf("%s read %s then %s read %s, but %s ≺ %s",
						r1.op.Key(), v1, r2.op.Key(), v2, w2.op.Key(), w1.op.Key()),
					Ops: []history.Op{r1.op, r2.op, w1.op, w2.op},
				}
			case !ok1 && v1.IsInitial() && ok2:
				// fine: v2 written later
			case ok1 && v2.IsInitial():
				// r2 read the initial value after r1 read a written one:
				// inversion iff write(v1) completed before r2 started? Not
				// necessarily — w1 could be concurrent with both reads. Only
				// flag the forced case: w1 ≺ r1 (so the overwrite of initial
				// is fixed before r1).
				if precedes(w1, r1) {
					return &Violation{
						Code: NewOldInversion,
						Detail: fmt.Sprintf("%s read %s (write completed) but later %s read the initial value",
							r1.op.Key(), v1, r2.op.Key()),
						Ops: []history.Op{r1.op, r2.op, w1.op},
					}
				}
			}
		}
	}
	return nil
}

// search is the memoized WGL decision procedure. It returns a witness
// linearization when one exists. ndoms is the number of clock domains;
// an operation is eligible when no unlinearized operation of ITS OWN
// domain strictly precedes it (cross-domain pairs are concurrent by
// construction, so they never block each other). base is the register's
// content before any write linearizes.
func search(nodes []node, ndoms int, base types.Value, memoize bool) ([]history.Op, bool) {
	n := len(nodes)
	if n == 0 {
		return nil, true
	}
	words := (n + 63) / 64
	type maskT = string // packed bitmask bytes + last-write index

	requiredCount := 0
	for _, nd := range nodes {
		if !nd.optional {
			requiredCount++
		}
	}

	mask := make([]uint64, words)
	memo := make(map[maskT]bool) // states proven fruitless
	var lin []history.Op

	keyOf := func(lastWrite int) maskT {
		b := make([]byte, words*8+4)
		for i, w := range mask {
			for j := 0; j < 8; j++ {
				b[i*8+j] = byte(w >> (8 * j))
			}
		}
		b[words*8] = byte(lastWrite)
		b[words*8+1] = byte(lastWrite >> 8)
		b[words*8+2] = byte(lastWrite >> 16)
		b[words*8+3] = byte(lastWrite >> 24)
		return string(b)
	}
	inMask := func(i int) bool { return mask[i/64]&(1<<(i%64)) != 0 }
	setMask := func(i int) { mask[i/64] |= 1 << (i % 64) }
	clearMask := func(i int) { mask[i/64] &^= 1 << (i % 64) }

	curValue := func(lastWrite int) types.Value {
		if lastWrite < 0 {
			return base
		}
		return nodes[lastWrite].op.Value
	}

	var linearized int // count of required ops linearized

	// minResponse is per clock domain and per recursion depth: the
	// recursion mutates the mask, so a call's scratch would go stale
	// across its subcalls — but depth (= ops linearized so far) names a
	// disjoint slice of one preallocated buffer, keeping the hot search
	// loop allocation-free.
	minRespBuf := make([]vclock.Time, (n+1)*ndoms)

	var dfs func(lastWrite int) bool
	dfs = func(lastWrite int) bool {
		if linearized == requiredCount {
			return true
		}
		var key maskT
		if memoize {
			key = keyOf(lastWrite)
			if memo[key] {
				return false
			}
		}
		// An op is eligible if unlinearized and no unlinearized op of its
		// own domain strictly precedes it.
		minResponse := minRespBuf[len(lin)*ndoms : (len(lin)+1)*ndoms]
		for d := range minResponse {
			minResponse[d] = pendingResponse
		}
		for i := 0; i < n; i++ {
			if !inMask(i) && nodes[i].response < minResponse[nodes[i].dom] {
				minResponse[nodes[i].dom] = nodes[i].response
			}
		}
		for i := 0; i < n; i++ {
			if inMask(i) {
				continue
			}
			if nodes[i].invoke > minResponse[nodes[i].dom] {
				continue // some unlinearized op in i's domain precedes i
			}
			nd := nodes[i]
			if nd.op.Kind == types.OpRead {
				if nd.op.Value != curValue(lastWrite) {
					continue
				}
				setMask(i)
				if !nd.optional {
					linearized++
				}
				lin = append(lin, nd.op)
				if dfs(lastWrite) {
					return true
				}
				lin = lin[:len(lin)-1]
				if !nd.optional {
					linearized--
				}
				clearMask(i)
			} else {
				setMask(i)
				if !nd.optional {
					linearized++
				}
				lin = append(lin, nd.op)
				if dfs(i) {
					return true
				}
				lin = lin[:len(lin)-1]
				if !nd.optional {
					linearized--
				}
				clearMask(i)
			}
		}
		// Optional (pending) ops may also be dropped entirely: that case is
		// covered implicitly because they never become required and never
		// block minimality (their response is +∞). Nothing worked here.
		if memoize {
			memo[key] = true
		}
		return false
	}
	ok := dfs(-1)
	if !ok {
		return nil, false
	}
	out := make([]history.Op, len(lin))
	copy(out, lin)
	return out, true
}

// CheckPermutations is a brute-force reference: it tries every permutation
// of the completed operations (pending ops dropped). Exponential — only for
// cross-validating Check on tiny histories in tests.
func CheckPermutations(h history.History) bool {
	ops := h.Completed()
	n := len(ops)
	if n > 9 {
		panic("atomicity: CheckPermutations limited to 9 operations")
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	valid := func(perm []int) bool {
		// Real-time requirement.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if ops[perm[j]].Precedes(ops[perm[i]]) {
					return false
				}
			}
		}
		// Read-from requirement.
		cur := types.InitialValue()
		for _, k := range perm {
			o := ops[k]
			if o.Kind == types.OpWrite {
				cur = o.Value
			} else if o.Value != cur {
				return false
			}
		}
		return true
	}
	var permute func(k int) bool
	permute = func(k int) bool {
		if k == n {
			return valid(idx)
		}
		for i := k; i < n; i++ {
			idx[k], idx[i] = idx[i], idx[k]
			if permute(k + 1) {
				idx[k], idx[i] = idx[i], idx[k]
				return true
			}
			idx[k], idx[i] = idx[i], idx[k]
		}
		return false
	}
	return permute(0)
}
