package atomicity

import (
	"math/rand"
	"testing"

	"fastreg/internal/history"
	"fastreg/internal/types"
	"fastreg/internal/vclock"
)

// genAtomicHistory builds a history that is atomic BY CONSTRUCTION: it
// first fixes a linearization (alternating writes and reads of the current
// value), then assigns each operation a real-time interval containing its
// linearization point, with random overlap. Any correct checker must
// accept it.
func genAtomicHistory(r *rand.Rand, n int) history.History {
	b := history.NewBuilder()
	cur := types.InitialValue()
	point := vclock.Time(10)
	nextTS := int64(1)
	client := 0
	for i := 0; i < n; i++ {
		client++
		// Linearization point for this op.
		point += vclock.Time(1 + r.Intn(10))
		// The interval contains the point, with random slack both ways —
		// creating overlap with neighbours.
		slackL := vclock.Time(r.Intn(8))
		slackR := vclock.Time(r.Intn(8))
		inv := point - slackL
		resp := point + slackR
		if inv < 1 {
			inv = 1
		}
		if r.Intn(2) == 0 {
			v := types.Value{Tag: types.Tag{TS: nextTS, WID: types.Writer(1 + r.Intn(3))}, Data: "d"}
			nextTS++
			b.Add(types.Writer(100+client), types.OpWrite, v, inv, resp)
			cur = v
		} else {
			b.Add(types.Reader(100+client), types.OpRead, cur, inv, resp)
		}
	}
	return b.History()
}

// Property: histories atomic by construction are accepted.
func TestCheckAcceptsConstructedAtomicHistories(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		r := rand.New(rand.NewSource(seed))
		h := genAtomicHistory(r, 4+r.Intn(14))
		if res := Check(h); !res.Atomic {
			t.Fatalf("seed %d: constructed-atomic history rejected: %v\n%s", seed, res, h)
		}
	}
}

// Property: corrupting one strictly-sequential read in a strictly
// sequential history (making it return a stale value) is always detected.
func TestCheckDetectsMutatedSequentialHistories(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		r := rand.New(rand.NewSource(seed))
		b := history.NewBuilder()
		var vals []types.Value
		cur := types.InitialValue()
		nReads := 0
		for i := 0; i < 8; i++ {
			if r.Intn(2) == 0 || len(vals) == 0 {
				v := types.Value{Tag: types.Tag{TS: int64(i + 1), WID: types.Writer(1)}, Data: "d"}
				b.Seq(types.Writer(1), types.OpWrite, v)
				vals = append(vals, cur) // remember the OLD value: a stale candidate
				cur = v
			} else {
				b.Seq(types.Reader(1+nReads%3), types.OpRead, cur)
				nReads++
			}
		}
		if nReads == 0 || len(vals) < 2 {
			continue
		}
		h := b.History()
		// Corrupt the last read: give it a value that was already
		// overwritten before the read began.
		for i := len(h.Ops) - 1; i >= 0; i-- {
			if h.Ops[i].Kind == types.OpRead {
				stale := vals[len(vals)-1]
				if stale == h.Ops[i].Value {
					break // the current value happens to equal the stale one
				}
				h.Ops[i].Value = stale
				if res := Check(h); res.Atomic {
					t.Fatalf("seed %d: stale sequential read accepted:\n%s", seed, h)
				}
				break
			}
		}
	}
}

// Property: the verdict is insensitive to operation recording order.
func TestCheckOrderInsensitive(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		h := genAtomicHistory(r, 8)
		want := Check(h).Atomic
		for trial := 0; trial < 5; trial++ {
			shuffled := history.History{Ops: append([]history.Op(nil), h.Ops...)}
			r.Shuffle(len(shuffled.Ops), func(i, j int) {
				shuffled.Ops[i], shuffled.Ops[j] = shuffled.Ops[j], shuffled.Ops[i]
			})
			if got := Check(shuffled).Atomic; got != want {
				t.Fatalf("seed %d: verdict changed under shuffle: %v vs %v", seed, got, want)
			}
		}
	}
}

// Property: memoization does not change verdicts.
func TestMemoizationVerdictInvariant(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		h := genAtomicHistory(r, 6+r.Intn(6))
		// Sometimes corrupt a read to get both verdict classes.
		if r.Intn(2) == 0 {
			for i := range h.Ops {
				if h.Ops[i].Kind == types.OpRead {
					h.Ops[i].Value = types.Value{Tag: types.Tag{TS: 999, WID: types.Writer(9)}, Data: "ghost"}
					break
				}
			}
		}
		a := CheckOpt(h, Options{}).Atomic
		b := CheckOpt(h, Options{DisableMemo: true}).Atomic
		if a != b {
			t.Fatalf("seed %d: memo %v vs no-memo %v", seed, a, b)
		}
	}
}

// Property: a linearization witness returned by Check is actually valid —
// it respects real time and register semantics.
func TestWitnessLinearizationIsValid(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		r := rand.New(rand.NewSource(seed))
		h := genAtomicHistory(r, 10)
		res := Check(h)
		if !res.Atomic {
			t.Fatalf("seed %d: rejected", seed)
		}
		// Real-time requirement.
		for i := 0; i < len(res.Linearization); i++ {
			for j := i + 1; j < len(res.Linearization); j++ {
				if res.Linearization[j].Precedes(res.Linearization[i]) {
					t.Fatalf("seed %d: witness violates real time: %s before %s",
						seed, res.Linearization[i].Key(), res.Linearization[j].Key())
				}
			}
		}
		// Read-from requirement.
		cur := types.InitialValue()
		for _, o := range res.Linearization {
			if o.Kind == types.OpWrite {
				cur = o.Value
			} else if o.Value != cur {
				t.Fatalf("seed %d: witness read %s returned %v, register holds %v",
					seed, o.Key(), o.Value, cur)
			}
		}
	}
}
