package atomicity

import (
	"testing"

	"fastreg/internal/history"
	"fastreg/internal/types"
)

// domainByClient maps every operation to a domain by its client identity
// — the usual shape for tests where each simulated process drives one
// identity.
func domainByClient(doms map[types.ProcID]int) func(history.Op) int {
	return func(o history.Op) int { return doms[o.Client] }
}

func val(ts int64, w int, data string) types.Value {
	return types.Value{Tag: types.Tag{TS: ts, WID: types.Writer(w)}, Data: data}
}

// TestDomainsCrossProcessStaleReadIsConcurrent pins the model's central
// property: a read that returns the old value AFTER another process's
// write completed (by the processes' own clocks) is NOT a violation,
// because without a shared clock the two clock axes are incomparable —
// the read may really have happened first. A single-domain checker over
// the same numbers flags it; the two-domain checker must not.
func TestDomainsCrossProcessStaleReadIsConcurrent(t *testing.T) {
	v1 := val(1, 1, "x")
	h := history.NewBuilder().
		Add(types.Writer(1), types.OpWrite, v1, 1, 2).                  // process A: write v1 in [1,2]
		Add(types.Reader(1), types.OpRead, types.InitialValue(), 5, 6). // process B: read ⊥ at "later" local times
		History()

	if res := Check(h); res.Atomic {
		t.Fatalf("single-domain check should flag the stale read, got %v", res)
	}
	doms := domainByClient(map[types.ProcID]int{types.Writer(1): 0, types.Reader(1): 1})
	if res := CheckDomains(h, doms); !res.Atomic {
		t.Fatalf("two-domain check must treat the pair as concurrent, got %v", res)
	}
}

// TestDomainsSameDomainViolationStillBinding: a new-old inversion inside
// ONE process's session stays a violation no matter how many other
// domains exist — that is what makes merged verdicts binding.
func TestDomainsSameDomainViolationStillBinding(t *testing.T) {
	v1 := val(1, 1, "x")
	h := history.NewBuilder().
		Add(types.Writer(1), types.OpWrite, v1, 1, 2).                  // domain 0
		Add(types.Reader(1), types.OpRead, v1, 3, 4).                   // domain 0: saw v1
		Add(types.Reader(1), types.OpRead, types.InitialValue(), 5, 6). // domain 0: then saw ⊥
		Add(types.Writer(2), types.OpWrite, val(2, 2, "y"), 1, 2).      // domain 1: unrelated
		History()
	doms := domainByClient(map[types.ProcID]int{
		types.Writer(1): 0, types.Reader(1): 0, types.Writer(2): 1,
	})
	res := CheckDomains(h, doms)
	if res.Atomic {
		t.Fatal("same-domain new-old inversion not flagged")
	}
	if res.Violation.Code != NewOldInversion {
		t.Fatalf("want new-old-inversion, got %v", res.Violation.Code)
	}
}

// TestDomainsReadFromNowhereIsDomainless: a value no write wrote is a
// violation regardless of domains.
func TestDomainsReadFromNowhereIsDomainless(t *testing.T) {
	h := history.NewBuilder().
		Add(types.Reader(1), types.OpRead, val(9, 9, "ghost"), 1, 2).
		History()
	doms := domainByClient(map[types.ProcID]int{types.Reader(1): 3})
	res := CheckDomains(h, doms)
	if res.Atomic || res.Violation.Code != ReadFromNowhere {
		t.Fatalf("want read-from-nowhere, got %v", res)
	}
}

// TestDomainsTwoChains exercises the partial order the interval model
// cannot express (a 2+2): two processes, each with two sequential ops,
// no cross order. Every interleaving consistent with both sessions must
// be explored; here only w1,w2,r-a,r-b works.
func TestDomainsTwoChains(t *testing.T) {
	v1, v2 := val(1, 1, "a"), val(2, 1, "b")
	// Process A writes v1 then v2; process B reads v1 then v2. B's local
	// times are all BELOW A's, so a single-domain checker would demand
	// the reads linearize before the writes and fail.
	h := history.NewBuilder().
		Add(types.Writer(1), types.OpWrite, v1, 10, 11).
		Add(types.Writer(1), types.OpWrite, v2, 12, 13).
		Add(types.Reader(1), types.OpRead, v1, 1, 2).
		Add(types.Reader(1), types.OpRead, v2, 3, 4).
		History()
	doms := domainByClient(map[types.ProcID]int{types.Writer(1): 0, types.Reader(1): 1})
	if res := CheckDomains(h, doms); !res.Atomic {
		t.Fatalf("valid two-chain interleaving rejected: %v", res)
	}

	// Flip B's session: v2 then v1 — now no interleaving works (B's own
	// order is binding evidence of a new-old inversion).
	h2 := history.NewBuilder().
		Add(types.Writer(1), types.OpWrite, v1, 10, 11).
		Add(types.Writer(1), types.OpWrite, v2, 12, 13).
		Add(types.Reader(1), types.OpRead, v2, 1, 2).
		Add(types.Reader(1), types.OpRead, v1, 3, 4).
		History()
	if res := CheckDomains(h2, doms); res.Atomic {
		t.Fatal("inverted two-chain reads accepted")
	}
}

// TestDomainsOptionalWriteAcrossDomains: a crashed process's write
// (synthesized from replica logs, pending, own domain) may be linearized
// to explain another process's read — or dropped when nobody read it.
func TestDomainsOptionalWriteAcrossDomains(t *testing.T) {
	v1 := val(1, 1, "x")
	h := history.NewBuilder().
		AddPending(types.Writer(1), types.OpWrite, v1, 1). // domain 0: crashed write
		Add(types.Reader(1), types.OpRead, v1, 1, 2).      // domain 1: read it
		Add(types.Reader(2), types.OpRead, v1, 3, 4).      // domain 2
		History()
	doms := domainByClient(map[types.ProcID]int{
		types.Writer(1): 0, types.Reader(1): 1, types.Reader(2): 2,
	})
	if res := CheckDomains(h, doms); !res.Atomic {
		t.Fatalf("crashed write not linearized for its readers: %v", res)
	}
}

// TestDomainsSingleDomainMatchesCheck: with one domain CheckDomains is
// exactly Check — cross-validated on a mixed history.
func TestDomainsSingleDomainMatchesCheck(t *testing.T) {
	v1, v2 := val(1, 1, "a"), val(2, 2, "b")
	h := history.NewBuilder().
		Add(types.Writer(1), types.OpWrite, v1, 1, 4).
		Add(types.Writer(2), types.OpWrite, v2, 2, 5).
		Add(types.Reader(1), types.OpRead, v2, 6, 7).
		Add(types.Reader(2), types.OpRead, v1, 8, 9).
		History()
	want := Check(h)
	got := CheckDomains(h, func(history.Op) int { return 42 })
	if want.Atomic != got.Atomic {
		t.Fatalf("single-domain divergence: Check=%v CheckDomains=%v", want, got)
	}
}
