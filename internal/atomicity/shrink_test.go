package atomicity

import (
	"math/rand"
	"testing"

	"fastreg/internal/history"
	"fastreg/internal/types"
	"fastreg/internal/vclock"
)

func TestShrinkKeepsViolation(t *testing.T) {
	v1, v2 := wv(1, 1, "new"), wv(2, 2, "old")
	// A new-old inversion padded with unrelated atomic traffic.
	b := history.NewBuilder().
		Add(types.Writer(2), types.OpWrite, v2, 1, 2).
		Add(types.Writer(1), types.OpWrite, v1, 3, 4).
		Add(types.Reader(1), types.OpRead, v1, 5, 6).
		Add(types.Reader(2), types.OpRead, v2, 7, 8)
	for i := 0; i < 10; i++ {
		v := wv(int64(10+i), 1, "pad")
		b.Add(types.Writer(1), types.OpWrite, v, vtime(100+10*i), vtime(105+10*i))
		b.Add(types.Reader(1), types.OpRead, v, vtime(106+10*i), vtime(109+10*i))
	}
	h := b.History()
	if Check(h).Atomic {
		t.Fatal("padded history should violate")
	}
	small := Shrink(h)
	if Check(small).Atomic {
		t.Fatal("shrunk history no longer violates")
	}
	if len(small.Ops) >= len(h.Ops) {
		t.Fatalf("no shrinking happened: %d ops", len(small.Ops))
	}
	// The core inversion needs at most 4 operations.
	if len(small.Ops) > 4 {
		t.Errorf("shrunk to %d ops, expected ≤ 4:\n%s", len(small.Ops), small)
	}
}

func TestShrinkAtomicHistoryUnchanged(t *testing.T) {
	h := history.NewBuilder().
		Seq(types.Writer(1), types.OpWrite, wv(1, 1, "a")).
		Seq(types.Reader(1), types.OpRead, wv(1, 1, "a")).
		History()
	out := Shrink(h)
	if len(out.Ops) != len(h.Ops) {
		t.Fatalf("atomic history was shrunk: %d ops", len(out.Ops))
	}
}

// Property: shrinking random violating histories always preserves the
// violation and never grows the history.
func TestShrinkProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	found := 0
	for trial := 0; trial < 200 && found < 30; trial++ {
		h := genAtomicHistory(r, 8)
		// Corrupt one read.
		mutated := false
		for i := range h.Ops {
			if h.Ops[i].Kind == types.OpRead {
				h.Ops[i].Value = wv(900+int64(trial), 3, "ghost")
				mutated = true
				break
			}
		}
		if !mutated || Check(h).Atomic {
			continue
		}
		found++
		small := Shrink(h)
		if Check(small).Atomic {
			t.Fatalf("trial %d: violation lost", trial)
		}
		if len(small.Ops) > len(h.Ops) {
			t.Fatalf("trial %d: history grew", trial)
		}
	}
	if found == 0 {
		t.Fatal("generator produced no violating histories")
	}
}

func vtime(i int) vclock.Time { return vclock.Time(i) }
