package atomicity

import (
	"math/rand"
	"strings"
	"testing"

	"fastreg/internal/history"
	"fastreg/internal/register"
	"fastreg/internal/types"
	"fastreg/internal/vclock"
)

func wv(ts int64, w int, data string) types.Value {
	return types.Value{Tag: types.Tag{TS: ts, WID: types.Writer(w)}, Data: data}
}

func TestEmptyHistoryAtomic(t *testing.T) {
	res := Check(history.History{})
	if !res.Atomic {
		t.Error("empty history must be atomic")
	}
}

func TestSequentialHistoryAtomic(t *testing.T) {
	v1, v2 := wv(1, 1, "a"), wv(2, 2, "b")
	h := history.NewBuilder().
		Seq(types.Writer(1), types.OpWrite, v1).
		Seq(types.Reader(1), types.OpRead, v1).
		Seq(types.Writer(2), types.OpWrite, v2).
		Seq(types.Reader(2), types.OpRead, v2).
		History()
	res := Check(h)
	if !res.Atomic {
		t.Fatalf("sequential history rejected: %v", res)
	}
	if len(res.Linearization) != 4 {
		t.Errorf("linearization length = %d", len(res.Linearization))
	}
}

func TestReadInitialValue(t *testing.T) {
	h := history.NewBuilder().
		Seq(types.Reader(1), types.OpRead, types.InitialValue()).
		History()
	if res := Check(h); !res.Atomic {
		t.Errorf("read of initial value rejected: %v", res)
	}
}

func TestStaleSequentialReadRejected(t *testing.T) {
	v1, v2 := wv(1, 1, "a"), wv(2, 2, "b")
	h := history.NewBuilder().
		Seq(types.Writer(1), types.OpWrite, v1).
		Seq(types.Writer(2), types.OpWrite, v2).
		Seq(types.Reader(1), types.OpRead, v1). // stale: must return v2
		History()
	res := Check(h)
	if res.Atomic {
		t.Fatal("stale read accepted")
	}
}

func TestConcurrentWriteEitherOrderOK(t *testing.T) {
	v1, v2 := wv(1, 1, "a"), wv(1, 2, "b")
	// W1 || W2, then two sequential reads both return v1: fine (W2 ordered
	// first in π).
	h := history.NewBuilder().
		Add(types.Writer(1), types.OpWrite, v1, 1, 10).
		Add(types.Writer(2), types.OpWrite, v2, 2, 9).
		Add(types.Reader(1), types.OpRead, v1, 11, 12).
		Add(types.Reader(2), types.OpRead, v1, 13, 14).
		History()
	if res := Check(h); !res.Atomic {
		t.Errorf("concurrent writes order should be free: %v", res)
	}
	// But the two readers must agree: v1 then v2 with reads sequential is a
	// violation (register cannot go back to v2 ... unless writes allow it —
	// here both writes finished before the reads).
	h2 := history.NewBuilder().
		Add(types.Writer(1), types.OpWrite, v1, 1, 10).
		Add(types.Writer(2), types.OpWrite, v2, 2, 9).
		Add(types.Reader(1), types.OpRead, v1, 11, 12).
		Add(types.Reader(2), types.OpRead, v2, 13, 14).
		History()
	if res := Check(h2); res.Atomic {
		t.Error("disagreeing sequential reads after both writes completed must be rejected")
	}
}

func TestReadConcurrentWithWriteMayReturnEither(t *testing.T) {
	v1 := wv(1, 1, "a")
	old := history.NewBuilder().
		Add(types.Writer(1), types.OpWrite, v1, 5, 15).
		Add(types.Reader(1), types.OpRead, types.InitialValue(), 6, 14).
		History()
	if res := Check(old); !res.Atomic {
		t.Errorf("concurrent read returning old value rejected: %v", res)
	}
	neu := history.NewBuilder().
		Add(types.Writer(1), types.OpWrite, v1, 5, 15).
		Add(types.Reader(1), types.OpRead, v1, 6, 14).
		History()
	if res := Check(neu); !res.Atomic {
		t.Errorf("concurrent read returning new value rejected: %v", res)
	}
}

func TestReadFromNowhere(t *testing.T) {
	h := history.NewBuilder().
		Seq(types.Reader(1), types.OpRead, wv(7, 1, "ghost")).
		History()
	res := Check(h)
	if res.Atomic {
		t.Fatal("read from nowhere accepted")
	}
	if res.Violation.Code != ReadFromNowhere {
		t.Errorf("code = %v", res.Violation.Code)
	}
}

func TestReadFromFuture(t *testing.T) {
	v := wv(1, 1, "a")
	h := history.NewBuilder().
		Add(types.Reader(1), types.OpRead, v, 1, 2).
		Add(types.Writer(1), types.OpWrite, v, 5, 6).
		History()
	res := Check(h)
	if res.Atomic {
		t.Fatal("read from the future accepted")
	}
	if res.Violation.Code != ReadFromFuture {
		t.Errorf("code = %v", res.Violation.Code)
	}
}

func TestNewOldInversion(t *testing.T) {
	v1, v2 := wv(1, 1, "new"), wv(2, 2, "old")
	// w2 writes v2, then w1 writes v1 (sequential). r1 reads v1, then r2
	// reads v2: inversion.
	h := history.NewBuilder().
		Add(types.Writer(2), types.OpWrite, v2, 1, 2).
		Add(types.Writer(1), types.OpWrite, v1, 3, 4).
		Add(types.Reader(1), types.OpRead, v1, 5, 6).
		Add(types.Reader(2), types.OpRead, v2, 7, 8).
		History()
	res := Check(h)
	if res.Atomic {
		t.Fatal("new-old inversion accepted")
	}
	if res.Violation.Code != NewOldInversion {
		t.Errorf("code = %v, want new-old-inversion", res.Violation.Code)
	}
	if !strings.Contains(res.String(), "VIOLATION") {
		t.Errorf("String = %q", res.String())
	}
}

func TestInversionAgainstInitialValue(t *testing.T) {
	v1 := wv(1, 1, "a")
	h := history.NewBuilder().
		Add(types.Writer(1), types.OpWrite, v1, 1, 2).
		Add(types.Reader(1), types.OpRead, v1, 3, 4).
		Add(types.Reader(2), types.OpRead, types.InitialValue(), 5, 6).
		History()
	res := Check(h)
	if res.Atomic {
		t.Fatal("regression to initial value accepted")
	}
}

func TestPendingWriteMayBeRead(t *testing.T) {
	v := wv(1, 1, "a")
	// The write never completes (writer crashed mid-flight), but a read
	// returns its value: must be accepted (the write is linearized).
	h := history.NewBuilder().
		AddPending(types.Writer(1), types.OpWrite, v, 1).
		Add(types.Reader(1), types.OpRead, v, 5, 6).
		History()
	if res := Check(h); !res.Atomic {
		t.Errorf("read of pending write rejected: %v", res)
	}
}

func TestPendingWriteMayBeDropped(t *testing.T) {
	v := wv(1, 1, "a")
	h := history.NewBuilder().
		AddPending(types.Writer(1), types.OpWrite, v, 1).
		Add(types.Reader(1), types.OpRead, types.InitialValue(), 5, 6).
		Add(types.Reader(1), types.OpRead, types.InitialValue(), 7, 8).
		History()
	if res := Check(h); !res.Atomic {
		t.Errorf("history with dropped pending write rejected: %v", res)
	}
}

func TestPendingWriteCannotFlipFlop(t *testing.T) {
	v := wv(1, 1, "a")
	// r1 reads v, r2 (after r1) reads initial: the pending write must be
	// both linearized (for r1) and not (for r2) — violation.
	h := history.NewBuilder().
		AddPending(types.Writer(1), types.OpWrite, v, 1).
		Add(types.Reader(1), types.OpRead, v, 5, 6).
		Add(types.Reader(2), types.OpRead, types.InitialValue(), 7, 8).
		History()
	if res := Check(h); res.Atomic {
		t.Error("flip-flop around pending write accepted")
	}
}

func TestTimedOutWriteValueMayBeRead(t *testing.T) {
	// A write that timed out is recorded as FAILED (not merely pending),
	// but its Update may still have landed at the servers. The checker
	// models failed writes as optional ops, so a later read returning the
	// timed-out value must pass — the case cmd/regclient used to paper
	// over by downgrading every violated verdict to advisory whenever any
	// op timed out.
	v := wv(1, 1, "a")
	rec := history.NewRecorder(&vclock.Clock{})
	wk := rec.Invoke(types.Writer(1), 1, types.OpWrite, v)
	rec.Respond(wk, types.Value{}, register.ErrTimeout)
	rk := rec.Invoke(types.Reader(1), 1, types.OpRead, types.Value{})
	rec.Respond(rk, v, nil)
	h := rec.History()
	if n := len(h.Failed()); n != 1 {
		t.Fatalf("failed ops = %d, want 1", n)
	}
	if res := Check(h); !res.Atomic {
		t.Errorf("read of timed-out write's value rejected: %v", res)
	}

	// The converse also holds — the timed-out write may equally have
	// never landed.
	rec = history.NewRecorder(&vclock.Clock{})
	wk = rec.Invoke(types.Writer(1), 1, types.OpWrite, v)
	rec.Respond(wk, types.Value{}, register.ErrTimeout)
	rk = rec.Invoke(types.Reader(1), 1, types.OpRead, types.Value{})
	rec.Respond(rk, types.InitialValue(), nil)
	if res := Check(rec.History()); !res.Atomic {
		t.Errorf("dropped timed-out write rejected: %v", res)
	}

	// And the checker keeps its teeth: a read of a value NO write (not
	// even a timed-out one) produced is still a violation.
	rec = history.NewRecorder(&vclock.Clock{})
	wk = rec.Invoke(types.Writer(1), 1, types.OpWrite, v)
	rec.Respond(wk, types.Value{}, register.ErrTimeout)
	rk = rec.Invoke(types.Reader(1), 1, types.OpRead, types.Value{})
	rec.Respond(rk, wv(9, 2, "ghost"), nil)
	if res := Check(rec.History()); res.Atomic {
		t.Error("read-from-nowhere accepted in a run with timeouts")
	}
}

func TestWriteOrderForcedByReads(t *testing.T) {
	v1, v2 := wv(1, 1, "a"), wv(1, 2, "b")
	// Writes concurrent; r1 reads v1 then r2 reads v2 (sequential reads):
	// consistent — π = W1 R1 W2 R2.
	h := history.NewBuilder().
		Add(types.Writer(1), types.OpWrite, v1, 1, 20).
		Add(types.Writer(2), types.OpWrite, v2, 2, 19).
		Add(types.Reader(1), types.OpRead, v1, 3, 4).
		Add(types.Reader(2), types.OpRead, v2, 5, 6).
		History()
	if res := Check(h); !res.Atomic {
		t.Errorf("rejected: %v", res)
	}
	// But v1, v2, then v1 again is impossible.
	h2 := history.NewBuilder().
		Add(types.Writer(1), types.OpWrite, v1, 1, 20).
		Add(types.Writer(2), types.OpWrite, v2, 2, 19).
		Add(types.Reader(1), types.OpRead, v1, 3, 4).
		Add(types.Reader(2), types.OpRead, v2, 5, 6).
		Add(types.Reader(1), types.OpRead, v1, 7, 8).
		History()
	if res := Check(h2); res.Atomic {
		t.Error("value flip-flop accepted")
	}
}

func TestDuplicateWriteValuesHandledBySearch(t *testing.T) {
	v := wv(1, 1, "same")
	// Two writes of the identical value; reads of it are fine anywhere
	// after the first write.
	h := history.NewBuilder().
		Seq(types.Writer(1), types.OpWrite, v).
		Seq(types.Reader(1), types.OpRead, v).
		Seq(types.Writer(1), types.OpWrite, v).
		Seq(types.Reader(1), types.OpRead, v).
		History()
	if res := Check(h); !res.Atomic {
		t.Errorf("duplicate write values rejected: %v", res)
	}
}

// Cross-validate the search against brute-force permutations on random
// small histories.
func TestCheckAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	vals := []types.Value{wv(1, 1, "a"), wv(1, 2, "b"), wv(2, 1, "c"), types.InitialValue()}
	for trial := 0; trial < 400; trial++ {
		b := history.NewBuilder()
		n := 2 + r.Intn(5)
		var tmax vclock.Time = 1
		for i := 0; i < n; i++ {
			client := types.Writer(1 + i) // distinct clients: free interleaving
			kind := types.OpWrite
			v := vals[r.Intn(3)]
			if r.Intn(2) == 0 {
				kind = types.OpRead
				v = vals[r.Intn(4)]
			}
			inv := tmax + vclock.Time(r.Intn(3))
			resp := inv + 1 + vclock.Time(r.Intn(6))
			if r.Intn(3) > 0 {
				tmax = resp // mostly sequential, sometimes overlapping
			}
			b.Add(client, kind, v, inv, resp)
		}
		h := b.History()
		want := CheckPermutations(h)
		got := Check(h).Atomic
		if got != want {
			t.Fatalf("trial %d: Check=%v brute=%v\n%s", trial, got, want, h)
		}
	}
}

func TestResultStringAtomic(t *testing.T) {
	h := history.NewBuilder().Seq(types.Reader(1), types.OpRead, types.InitialValue()).History()
	res := Check(h)
	if !strings.Contains(res.String(), "ATOMIC") {
		t.Errorf("String = %q", res.String())
	}
}

func TestCodeString(t *testing.T) {
	codes := map[Code]string{
		ReadFromNowhere: "read-from-nowhere",
		ReadFromFuture:  "read-from-future",
		NewOldInversion: "new-old-inversion",
		NoLinearization: "no-linearization",
		Code(0):         "unknown",
	}
	for c, want := range codes {
		if c.String() != want {
			t.Errorf("Code(%d) = %q, want %q", c, c.String(), want)
		}
	}
}

func TestLongSequentialHistoryFast(t *testing.T) {
	// 200 operations, strictly sequential: must check instantly (memoized
	// search degenerates to a single path).
	b := history.NewBuilder()
	last := types.InitialValue()
	for i := 0; i < 100; i++ {
		v := wv(int64(i+1), 1+i%2, "d")
		b.Seq(types.Writer(1+i%2), types.OpWrite, v)
		last = v
		b.Seq(types.Reader(1+i%2), types.OpRead, last)
	}
	if res := Check(b.History()); !res.Atomic {
		t.Errorf("long sequential history rejected: %v", res)
	}
}
