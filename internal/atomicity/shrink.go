package atomicity

import (
	"fastreg/internal/history"
	"fastreg/internal/types"
)

// Shrink minimizes a non-atomic history: it greedily removes operations
// while the remainder still violates atomicity, yielding a small
// counterexample for human inspection (the chain engine's exhibits can
// contain dozens of operations of which typically 3–4 matter).
//
// Soundness: removing a read, or a write no remaining read returns, only
// relaxes the checker's constraints, so the violating subset is a genuine
// violation of the original execution. A write that some remaining read
// still returns is never removed — deleting it would manufacture a
// read-from-nowhere that the original execution does not contain.
// Shrinking an atomic history returns it unchanged.
func Shrink(h history.History) history.History {
	if Check(h).Atomic {
		return h
	}
	ops := append([]history.Op(nil), h.Ops...)
	// removable reports whether dropping ops[i] keeps the remainder a
	// faithful sub-history.
	removable := func(i int) bool {
		if ops[i].Kind != types.OpWrite {
			return true
		}
		for j, o := range ops {
			if j != i && o.Kind == types.OpRead && o.Value == ops[i].Value {
				return false
			}
		}
		return true
	}
	// Greedy deletion passes until a fixed point: removal candidates are
	// retried because deleting one op can enable deleting another.
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(ops); i++ {
			if !removable(i) {
				continue
			}
			candidate := make([]history.Op, 0, len(ops)-1)
			candidate = append(candidate, ops[:i]...)
			candidate = append(candidate, ops[i+1:]...)
			if !Check(history.History{Ops: candidate}).Atomic {
				ops = candidate
				changed = true
				i--
			}
		}
	}
	return history.History{Ops: ops}
}
