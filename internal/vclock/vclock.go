// Package vclock provides the discrete global clock of the system model
// (Section 2.1 of the paper) and the virtual-time arithmetic used by the
// network simulator.
//
// The paper assumes "the existence of a discrete global clock, but the
// processes cannot access the global clock". Accordingly, the clock here is
// owned by the simulator and the history recorder: protocol code never sees
// it. Every invocation/response event and every message delivery is tagged
// with a unique, strictly increasing Time.
package vclock

import "sync/atomic"

// Time is a point on the discrete global clock. Values are nanosecond-like
// but unitless: only order and differences matter.
type Time int64

// Duration is a span of virtual time.
type Duration int64

// Never is a duration so large it means "not delivered within the execution".
// It models the paper's skip: "the messages between the client and the server
// are delayed a sufficiently long period of time (e.g. until the rest of the
// execution has finished)".
const Never Duration = 1 << 60

// Add returns t advanced by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the span from o to t.
func (t Time) Sub(o Time) Duration { return Duration(t - o) }

// Clock is a strictly monotonic discrete global clock. The zero value is
// ready to use and starts just before time 1.
type Clock struct {
	now atomic.Int64
}

// Tick advances the clock by one step and returns the new time. Ticks are
// unique across goroutines, giving every event a distinct timestamp as the
// model requires.
func (c *Clock) Tick() Time { return Time(c.now.Add(1)) }

// Now returns the current time without advancing.
func (c *Clock) Now() Time { return Time(c.now.Load()) }

// AdvanceTo moves the clock forward to at least t. Used by the discrete-event
// simulator when it pops an event scheduled in the future. Moving backwards
// is a no-op, preserving monotonicity.
func (c *Clock) AdvanceTo(t Time) {
	for {
		cur := c.now.Load()
		if int64(t) <= cur {
			return
		}
		if c.now.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}
