package vclock

import (
	"sync"
	"testing"
)

func TestTickMonotonic(t *testing.T) {
	var c Clock
	prev := c.Now()
	for i := 0; i < 1000; i++ {
		cur := c.Tick()
		if cur <= prev {
			t.Fatalf("tick %d: %d not greater than %d", i, cur, prev)
		}
		prev = cur
	}
}

func TestTickUniqueAcrossGoroutines(t *testing.T) {
	var c Clock
	const workers, perWorker = 8, 500
	var mu sync.Mutex
	seen := make(map[Time]bool, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]Time, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				local = append(local, c.Tick())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, ts := range local {
				if seen[ts] {
					t.Errorf("duplicate timestamp %d", ts)
				}
				seen[ts] = true
			}
		}()
	}
	wg.Wait()
	if len(seen) != workers*perWorker {
		t.Fatalf("got %d unique timestamps, want %d", len(seen), workers*perWorker)
	}
}

func TestAdvanceTo(t *testing.T) {
	var c Clock
	c.AdvanceTo(100)
	if c.Now() != 100 {
		t.Fatalf("Now = %d, want 100", c.Now())
	}
	c.AdvanceTo(50) // backwards: no-op
	if c.Now() != 100 {
		t.Fatalf("Now after backwards AdvanceTo = %d, want 100", c.Now())
	}
	if got := c.Tick(); got != 101 {
		t.Fatalf("Tick after AdvanceTo = %d, want 101", got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	var t0 Time = 10
	t1 := t0.Add(5)
	if t1 != 15 {
		t.Fatalf("Add = %d, want 15", t1)
	}
	if d := t1.Sub(t0); d != 5 {
		t.Fatalf("Sub = %d, want 5", d)
	}
}

func TestNeverIsHuge(t *testing.T) {
	// Never must exceed any plausible execution span.
	if Never < 1<<40 {
		t.Fatal("Never too small to model a skip")
	}
}
