// Package protocols resolves protocol names to implementations — the one
// switch shared by the public fastreg API and the deployable binaries
// (cmd/regserver, cmd/regclient), so every entry point accepts exactly
// the same names.
package protocols

import (
	"errors"
	"fmt"

	"fastreg/internal/abd"
	"fastreg/internal/crucialinfo"
	"fastreg/internal/mwabd"
	"fastreg/internal/register"
	"fastreg/internal/w1r1"
	"fastreg/internal/w1r2"
	"fastreg/internal/w2r1"
)

// ErrUnknown reports an unrecognized protocol name.
var ErrUnknown = errors.New("protocols: unknown protocol")

// registry is the single source of truth: one ordered table drives both
// New and Names, so adding a protocol is one entry — not three hand-kept
// lists.
var registry = []struct {
	name string
	mk   func() register.Protocol
}{
	{"W2R2", func() register.Protocol { return mwabd.New() }},
	{"W2R1", func() register.Protocol { return w2r1.New() }},
	{"W1R2", func() register.Protocol { return w1r2.New() }},
	{"W1R1", func() register.Protocol { return w1r1.New() }},
	{"ABD", func() register.Protocol { return abd.New() }},
	{"FullInfo", func() register.Protocol { return crucialinfo.New() }},
}

// New resolves a design-space label ("W2R2", "W2R1", "W1R2", "W1R1",
// "ABD", "FullInfo") to a fresh implementation.
func New(name string) (register.Protocol, error) {
	for _, e := range registry {
		if e.name == name {
			return e.mk(), nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknown, name)
}

// Names lists the resolvable protocol names, in design-space order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.name
	}
	return out
}
