// Package abd implements the classic single-writer multi-reader atomic
// register of Attiya, Bar-Noy & Dolev (JACM 1995) — the ancestral substrate
// of every protocol in the design space.
//
// With one writer the write is fast (one round): the writer owns the
// timestamp sequence, bumps a local counter and updates all servers. The
// read takes two rounds (query, then write-back). In the paper's notation
// this is a W1R2 implementation that is correct only because W = 1; the
// paper proves its multi-writer analogue (internal/w1r2) cannot be atomic.
package abd

import (
	"fastreg/internal/opkit"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/types"
)

// Protocol is the SWMR ABD implementation.
type Protocol struct{}

// New returns the ABD protocol.
func New() *Protocol { return &Protocol{} }

// Name implements register.Protocol.
func (*Protocol) Name() string { return "ABD" }

// WriteRounds implements register.Protocol.
func (*Protocol) WriteRounds() int { return 1 }

// ReadRounds implements register.Protocol.
func (*Protocol) ReadRounds() int { return 2 }

// Implementable implements register.Protocol: single writer and majority
// quorums.
func (*Protocol) Implementable(cfg quorum.Config) bool {
	return cfg.W == 1 && cfg.MajorityOK()
}

// NewServer implements register.Protocol.
func (*Protocol) NewServer(id types.ProcID, _ quorum.Config) register.ServerLogic {
	return opkit.NewStoreServer(id)
}

type writer struct {
	id   types.ProcID
	need int
	ts   int64
}

// NewWriter implements register.Protocol.
func (*Protocol) NewWriter(id types.ProcID, cfg quorum.Config) register.Writer {
	return &writer{id: id, need: cfg.ReplyQuorum()}
}

func (w *writer) ID() types.ProcID { return w.id }

// WriteOp bumps the writer-local timestamp — sound only because the single
// writer is the sole source of timestamps.
func (w *writer) WriteOp(data string) register.Operation {
	w.ts++
	val := types.Value{Tag: types.Tag{TS: w.ts, WID: w.id}, Data: data}
	return opkit.NewDirectWrite(w.id, val, w.need)
}

type reader struct {
	id   types.ProcID
	need int
}

// NewReader implements register.Protocol.
func (*Protocol) NewReader(id types.ProcID, cfg quorum.Config) register.Reader {
	return &reader{id: id, need: cfg.ReplyQuorum()}
}

func (r *reader) ID() types.ProcID { return r.id }

func (r *reader) ReadOp() register.Operation {
	return opkit.NewReadWriteBack(r.id, r.need)
}
