package abd

import (
	"testing"

	"fastreg/internal/atomicity"
	"fastreg/internal/netsim"
	"fastreg/internal/quorum"
	"fastreg/internal/types"
)

func TestMetadata(t *testing.T) {
	p := New()
	if p.Name() != "ABD" || p.WriteRounds() != 1 || p.ReadRounds() != 2 {
		t.Fatalf("metadata: %s W%d R%d", p.Name(), p.WriteRounds(), p.ReadRounds())
	}
}

func TestImplementableSingleWriterMajority(t *testing.T) {
	cases := []struct {
		cfg  quorum.Config
		want bool
	}{
		{quorum.Config{S: 3, T: 1, R: 5, W: 1}, true},
		{quorum.Config{S: 3, T: 1, R: 2, W: 2}, false}, // multi-writer
		{quorum.Config{S: 2, T: 1, R: 2, W: 1}, false}, // no majority
	}
	for _, c := range cases {
		if got := New().Implementable(c.cfg); got != c.want {
			t.Errorf("Implementable(%v) = %v, want %v", c.cfg, got, c.want)
		}
	}
}

func TestWriterTimestampsIncrease(t *testing.T) {
	cfg := quorum.Config{S: 3, T: 1, R: 2, W: 1}
	sim := netsim.MustNew(cfg, New(), netsim.WithSeed(1))
	var tags []types.Tag
	var chainWrites func(n int)
	chainWrites = func(n int) {
		if n == 0 {
			return
		}
		sim.InvokeAt(sim.Now()+1, sim.Writer(1).WriteOp("x"), func(v types.Value, err error) {
			if err != nil {
				t.Errorf("write: %v", err)
				return
			}
			tags = append(tags, v.Tag)
			chainWrites(n - 1)
		})
	}
	chainWrites(5)
	sim.Run()
	if len(tags) != 5 {
		t.Fatalf("writes completed: %d", len(tags))
	}
	for i := 1; i < len(tags); i++ {
		if tags[i].TS != tags[i-1].TS+1 {
			t.Errorf("timestamps not consecutive: %v then %v", tags[i-1], tags[i])
		}
	}
}

func TestSingleWriterHistoriesAtomic(t *testing.T) {
	cfg := quorum.Config{S: 5, T: 2, R: 3, W: 1}
	for seed := int64(1); seed <= 20; seed++ {
		sim := netsim.MustNew(cfg, New(), netsim.WithSeed(seed), netsim.WithDelay(netsim.UniformDelay(1, 100)))
		var spawn func(c int, write bool, n int)
		spawn = func(c int, write bool, n int) {
			if n == 0 {
				return
			}
			op := sim.Reader(c).ReadOp()
			if write {
				op = sim.Writer(1).WriteOp("d")
			}
			sim.InvokeAt(sim.Now()+1, op, func(types.Value, error) { spawn(c, write, n-1) })
		}
		spawn(1, true, 5)
		for c := 1; c <= 3; c++ {
			spawn(c, false, 4)
		}
		sim.Run()
		h := sim.History()
		if len(h.Completed()) != 17 {
			t.Fatalf("seed %d: completed %d", seed, len(h.Completed()))
		}
		if res := atomicity.Check(h); !res.Atomic {
			t.Fatalf("seed %d: ABD violated atomicity: %v\n%s", seed, res, h)
		}
	}
}

func TestCrashWithinT(t *testing.T) {
	cfg := quorum.Config{S: 5, T: 2, R: 2, W: 1}
	sim := netsim.MustNew(cfg, New(), netsim.WithSeed(4))
	sim.CrashServer(types.Server(2), 0)
	sim.CrashServer(types.Server(4), 50)
	var got types.Value
	sim.InvokeAt(0, sim.Writer(1).WriteOp("survives"), func(types.Value, error) {
		sim.InvokeAt(sim.Now()+1, sim.Reader(1).ReadOp(), func(v types.Value, err error) {
			if err != nil {
				t.Errorf("read: %v", err)
			}
			got = v
		})
	})
	sim.Run()
	if got.Data != "survives" {
		t.Fatalf("read %v", got)
	}
}
