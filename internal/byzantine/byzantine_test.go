package byzantine

import (
	"testing"

	"fastreg/internal/atomicity"
	"fastreg/internal/mwabd"
	"fastreg/internal/netsim"
	"fastreg/internal/proto"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/types"
	"fastreg/internal/w2r1"
	"fastreg/internal/workload"
)

// byzProtocol wraps a protocol so that server s1 lies.
type byzProtocol struct {
	register.Protocol
}

func (p byzProtocol) Name() string { return p.Protocol.Name() + "+byz" }

func (p byzProtocol) NewServer(id types.ProcID, cfg quorum.Config) register.ServerLogic {
	inner := p.Protocol.NewServer(id, cfg)
	if id == types.Server(1) {
		return NewLyingServer(inner)
	}
	return inner
}

func feasible() quorum.Config { return quorum.Config{S: 5, T: 1, R: 2, W: 2} }

// TestLyingServerBreaksW2R2: one Byzantine server is enough to make the
// crash-tolerant two-round read return a fabricated value — its round 1
// takes the maximum over QueryAcks, and a single forged ack wins. The
// checker flags read-from-nowhere.
func TestLyingServerBreaksW2R2(t *testing.T) {
	p := byzProtocol{mwabd.New()}
	broken := false
	for seed := int64(1); seed <= 10 && !broken; seed++ {
		sim := netsim.MustNew(feasible(), p, netsim.WithSeed(seed))
		h := workload.Run(sim, workload.Mix{WritesPerWriter: 3, ReadsPerReader: 3})
		res := atomicity.Check(h)
		if !res.Atomic && res.Violation.Code == atomicity.ReadFromNowhere {
			broken = true
		}
	}
	if !broken {
		t.Fatal("the lying server never poisoned a W2R2 read — attack model broken")
	}
}

// TestW2R1AdmissibilityResistsSingleLiar: the fast read's admissibility
// predicate demands a quorum of witnesses per value, which one Byzantine
// server cannot forge — the forged value is never returned and the
// histories stay atomic. The witness quorums of Algorithm 1 thus already
// provide value authenticity, the first ingredient of the Section 5.2
// Byzantine extension.
func TestW2R1AdmissibilityResistsSingleLiar(t *testing.T) {
	p := byzProtocol{w2r1.New()}
	for seed := int64(1); seed <= 10; seed++ {
		sim := netsim.MustNew(feasible(), p, netsim.WithSeed(seed))
		h := workload.Run(sim, workload.Mix{WritesPerWriter: 3, ReadsPerReader: 3})
		for _, rd := range h.Reads() {
			if rd.Value.Data == "FORGED" {
				t.Fatalf("seed %d: fast read returned the forged value", seed)
			}
		}
		if res := atomicity.Check(h); !res.Atomic {
			t.Fatalf("seed %d: W2R1 under a single liar: %v", seed, res)
		}
	}
}

// TestVouchingFiltersForgedValues: the t+1-vouching defense removes the
// fabricated value; reads return only genuinely written values and the
// histories are atomic again under this attack.
func TestVouchingFiltersForgedValues(t *testing.T) {
	cfg := feasible()
	p := NewVouched(byzProtocol{w2r1.New()}, cfg.T)
	for seed := int64(1); seed <= 10; seed++ {
		sim := netsim.MustNew(cfg, p, netsim.WithSeed(seed))
		h := workload.Run(sim, workload.Mix{WritesPerWriter: 3, ReadsPerReader: 3})
		for _, rd := range h.Reads() {
			if rd.Value.Data == "FORGED" {
				t.Fatalf("seed %d: vouched read returned the forged value", seed)
			}
		}
		if res := atomicity.Check(h); !res.Atomic {
			t.Fatalf("seed %d: vouched run not atomic under this attack: %v", seed, res)
		}
	}
}

// TestVouchingHarmlessWithoutByzantine: with honest servers the filter
// changes nothing — all histories stay atomic and reads see real values.
func TestVouchingHarmlessWithoutByzantine(t *testing.T) {
	cfg := feasible()
	p := NewVouched(w2r1.New(), cfg.T)
	if p.Name() != "W2R1+vouch" {
		t.Fatalf("name = %q", p.Name())
	}
	for seed := int64(1); seed <= 10; seed++ {
		sim := netsim.MustNew(cfg, p, netsim.WithSeed(seed), netsim.WithDelay(netsim.UniformDelay(1, 120)))
		h := workload.Run(sim, workload.Mix{WritesPerWriter: 4, ReadsPerReader: 4})
		if got := len(h.Completed()); got != 16 {
			t.Fatalf("seed %d: completed %d", seed, got)
		}
		if res := atomicity.Check(h); !res.Atomic {
			t.Fatalf("seed %d: %v", seed, res)
		}
	}
}

func TestFilterUnvouchedMechanics(t *testing.T) {
	forged := types.Value{Tag: types.Tag{TS: 99, WID: types.Writer(9)}, Data: "F"}
	real := types.Value{Tag: types.Tag{TS: 1, WID: types.Writer(1)}, Data: "r"}
	mk := func(vals ...types.Value) register.Reply {
		ack := proto.FastReadAck{}
		for _, v := range vals {
			ack.Vector = append(ack.Vector, proto.VectorEntry{Val: v})
		}
		return register.Reply{From: types.Server(1), Msg: ack}
	}
	replies := []register.Reply{mk(real, forged), mk(real), mk(real)}
	out := FilterUnvouched(replies, 1)
	for _, rep := range out {
		ack := rep.Msg.(proto.FastReadAck)
		for _, e := range ack.Vector {
			if e.Val == forged {
				t.Fatal("forged value (1 report ≤ t=1) survived the filter")
			}
		}
	}
	// The real value (3 reports > t) must survive everywhere it appeared.
	kept := 0
	for _, rep := range out {
		ack := rep.Msg.(proto.FastReadAck)
		for _, e := range ack.Vector {
			if e.Val == real {
				kept++
			}
		}
	}
	if kept != 3 {
		t.Fatalf("real value kept %d times, want 3", kept)
	}
}
