// Package byzantine explores the paper's Section 5.2 remark that the W2R1
// implementation "can be extended to further tolerate Byzantine failures"
// (following the single-writer treatment of Dutta et al. [12]).
//
// Two pieces are provided:
//
//   - LyingServer: a Byzantine wrapper around any server logic that
//     fabricates a maximal-tag value in its replies. The two-round W2R2
//     read falls for it immediately (its round 1 maximizes over single
//     acks), while the W2R1 fast read's admissibility predicate — which
//     demands a quorum of witnesses per value — already rejects a single
//     liar's forgery: value authenticity comes with the algorithm.
//   - Vouched fast reads: the first step of the Byzantine extension, value
//     authenticity. A reader only considers values reported by at least
//     t+1 servers, which ≤ t Byzantine servers cannot fabricate. This
//     restores "reads return only written values"; full Byzantine
//     atomicity needs the rest of [12]'s machinery (echo phases) and is
//     out of scope, as in the paper.
package byzantine

import (
	"fastreg/internal/proto"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/types"
)

// LyingServer wraps a server and injects a fabricated value with a very
// large tag into every FastReadAck and QueryAck it sends. It models a
// Byzantine replica trying to poison readers; it still processes updates
// normally so the rest of the execution proceeds.
type LyingServer struct {
	inner register.ServerLogic
	forge types.Value
}

// NewLyingServer wraps inner; the forged value claims timestamp 1<<40 from
// a writer that does not exist.
func NewLyingServer(inner register.ServerLogic) *LyingServer {
	return &LyingServer{
		inner: inner,
		forge: types.Value{
			Tag:  types.Tag{TS: 1 << 40, WID: types.Writer(999)},
			Data: "FORGED",
		},
	}
}

// ID implements register.ServerLogic.
func (s *LyingServer) ID() types.ProcID { return s.inner.ID() }

// CurrentValue implements register.ServerLogic.
func (s *LyingServer) CurrentValue() types.Value { return s.inner.CurrentValue() }

// Forged returns the value the server fabricates.
func (s *LyingServer) Forged() types.Value { return s.forge }

// Handle implements register.ServerLogic, poisoning read-path replies.
func (s *LyingServer) Handle(from types.ProcID, m proto.Message) proto.Message {
	reply := s.inner.Handle(from, m)
	switch r := reply.(type) {
	case proto.QueryAck:
		r.Val = s.forge
		return r
	case proto.FastReadAck:
		r.Vector = append(r.Vector, proto.VectorEntry{
			Val: s.forge,
			// The liar claims everyone has seen it, maximizing the chance
			// the admissibility predicate accepts it.
			Updated: allClients(from),
		})
		return r
	default:
		return reply
	}
}

func allClients(from types.ProcID) []types.ProcID {
	ids := []types.ProcID{from}
	for i := 1; i <= 4; i++ {
		ids = append(ids, types.Writer(i), types.Reader(i))
	}
	return proto.NormalizeUpdated(ids)
}

// Liars wraps p so that the named replicas (1-based indices) run their
// server logic behind a LyingServer — the deployment seam that puts the
// Byzantine model on the wire: regserver -byzantine wraps its own
// replica, and scenario runners hosting a fleet in-process wrap the
// subset a spec marks Byzantine. Clients, writers, readers and the
// protocol's name are untouched (a liar does not announce itself), so a
// mixed fleet's capture logs still merge under one protocol.
func Liars(p register.Protocol, replicas ...int) register.Protocol {
	liars := make(map[types.ProcID]bool, len(replicas))
	for _, i := range replicas {
		liars[types.Server(i)] = true
	}
	return &liarProtocol{Protocol: p, liars: liars}
}

type liarProtocol struct {
	register.Protocol
	liars map[types.ProcID]bool
}

// NewServer implements register.Protocol, wrapping the marked replicas.
func (p *liarProtocol) NewServer(id types.ProcID, cfg quorum.Config) register.ServerLogic {
	s := p.Protocol.NewServer(id, cfg)
	if p.liars[id] {
		return NewLyingServer(s)
	}
	return s
}

// VouchedProtocol wraps the W2R1 protocol with value authenticity: its
// readers drop any value reported by at most t servers before running the
// admissibility selection. With at most t Byzantine servers, a fabricated
// value can appear in at most t replies, so it never survives the filter;
// genuine values a reader might return are admissible with degree ≥ 1,
// which already requires S − a·t ≥ t+1 honest reports under the fast-read
// feasibility condition.
type VouchedProtocol struct {
	register.Protocol
	t int
}

// NewVouched wraps the protocol for a cluster tolerating t faulty servers.
func NewVouched(p register.Protocol, t int) *VouchedProtocol {
	return &VouchedProtocol{Protocol: p, t: t}
}

// Name implements register.Protocol.
func (p *VouchedProtocol) Name() string { return p.Protocol.Name() + "+vouch" }

// NewReader implements register.Protocol: the inner reader's operations are
// wrapped with the vouching filter.
func (p *VouchedProtocol) NewReader(id types.ProcID, cfg quorum.Config) register.Reader {
	return &vouchedReader{inner: p.Protocol.NewReader(id, cfg), t: p.t}
}

type vouchedReader struct {
	inner register.Reader
	t     int
}

func (r *vouchedReader) ID() types.ProcID { return r.inner.ID() }

func (r *vouchedReader) ReadOp() register.Operation {
	return &vouchedRead{inner: r.inner.ReadOp(), t: r.t}
}

// vouchedRead filters each round's replies before the inner operation sees
// them: values present in ≤ t fast-read replies are removed everywhere.
type vouchedRead struct {
	inner register.Operation
	t     int
}

func (o *vouchedRead) Client() types.ProcID  { return o.inner.Client() }
func (o *vouchedRead) Kind() types.OpKind    { return o.inner.Kind() }
func (o *vouchedRead) Arg() types.Value      { return o.inner.Arg() }
func (o *vouchedRead) Begin() register.Round { return o.inner.Begin() }

func (o *vouchedRead) Next(replies []register.Reply) (*register.Round, types.Value, bool, error) {
	return o.inner.Next(FilterUnvouched(replies, o.t))
}

// FilterUnvouched removes from FastReadAck replies every value reported by
// at most t servers. Other reply kinds pass through unchanged.
func FilterUnvouched(replies []register.Reply, t int) []register.Reply {
	counts := make(map[types.Value]int)
	for _, rep := range replies {
		if ack, ok := rep.Msg.(proto.FastReadAck); ok {
			for _, e := range ack.Vector {
				counts[e.Val]++
			}
		}
	}
	out := make([]register.Reply, 0, len(replies))
	for _, rep := range replies {
		ack, ok := rep.Msg.(proto.FastReadAck)
		if !ok {
			out = append(out, rep)
			continue
		}
		kept := make([]proto.VectorEntry, 0, len(ack.Vector))
		for _, e := range ack.Vector {
			if counts[e.Val] > t || e.Val.IsInitial() {
				kept = append(kept, e.Clone())
			}
		}
		out = append(out, register.Reply{From: rep.From, Msg: proto.FastReadAck{Vector: kept}})
	}
	return out
}

// Compile-time interface checks.
var (
	_ register.ServerLogic = (*LyingServer)(nil)
	_ register.Protocol    = (*VouchedProtocol)(nil)
	_ register.Protocol    = (*liarProtocol)(nil)
	_ register.Operation   = (*vouchedRead)(nil)
)
