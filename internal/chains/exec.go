// Package chains makes the paper's impossibility proof executable. It
// provides a scripted-execution interpreter — executions are specified by a
// global temporal order of round-trips plus a per-server arrival order with
// skips, exactly the vocabulary of Section 3 — and the three proof phases:
//
//   - Phase 1 (alpha.go): chain α, swapping the two writes one server at a
//     time to locate the critical server s_i1 (Fig 3, Section 3.2);
//   - Phase 2 (beta.go): chains β′/β″/β, appending the second read with
//     interleaved round-trips and skipping the critical server
//     (Section 3.3);
//   - Phase 3 (zigzag.go): the horizontal and diagonal links temp_k/γ_k and
//     temp′_k/γ′_k forming the zigzag chain Z (Figs 4–7, Section 3.4);
//   - the sieve of Section 4.2 (sieve.go), eliminating servers whose
//     crucial info a read's first round-trip affected (Fig 8).
//
// Running every execution of the family through the atomicity checker
// exhibits, for any concrete fast-write candidate, the violating execution
// Theorem 1 guarantees must exist.
package chains

import (
	"fmt"
	"sort"

	"fastreg/internal/history"
	"fastreg/internal/proto"
	"fastreg/internal/register"
	"fastreg/internal/types"
	"fastreg/internal/vclock"
)

// RT identifies one round-trip: round Round (1-based) of operation Op
// (index into the spec's op list).
type RT struct {
	Op    int
	Round int
}

// String renders "R1.2"-style names given the spec's op names.
func (rt RT) String() string { return fmt.Sprintf("op%d.%d", rt.Op, rt.Round) }

// OpMaker describes one operation of an execution. Make must return a fresh
// Operation (and fresh client state) every call, so a Spec can be run many
// times independently.
type OpMaker struct {
	Name   string // display name: "W1", "R2", …
	Rounds int
	Make   func() register.Operation
}

// Spec is a scripted execution: which operations run, the global temporal
// order of their round-trips (round-trips are non-concurrent, as throughout
// the proof), and each server's arrival order. A round-trip absent from a
// server's arrival list is skipped at that server (delayed past the end of
// the execution).
type Spec struct {
	Name       string
	NumServers int
	Ops        []OpMaker
	Global     []RT
	Arrival    map[int][]RT // server index (1-based) → arrival order
}

// NewSpec builds a spec whose servers all receive every round-trip in
// global order — the "skip-free, everyone in temporal order" baseline the
// chain constructions then perturb.
func NewSpec(name string, numServers int, ops []OpMaker, global []RT) *Spec {
	s := &Spec{Name: name, NumServers: numServers, Ops: ops, Global: global,
		Arrival: make(map[int][]RT, numServers)}
	for i := 1; i <= numServers; i++ {
		s.Arrival[i] = append([]RT(nil), global...)
	}
	return s
}

// Clone deep-copies the spec (same op makers).
func (s *Spec) Clone(name string) *Spec {
	c := &Spec{Name: name, NumServers: s.NumServers, Ops: s.Ops,
		Global:  append([]RT(nil), s.Global...),
		Arrival: make(map[int][]RT, len(s.Arrival))}
	for srv, order := range s.Arrival {
		c.Arrival[srv] = append([]RT(nil), order...)
	}
	return c
}

// Swap exchanges the arrival positions of two round-trips at one server.
// It panics if either is skipped there — swapping a skipped round-trip is a
// construction bug.
func (s *Spec) Swap(server int, a, b RT) {
	order := s.Arrival[server]
	ia, ib := indexOf(order, a), indexOf(order, b)
	if ia < 0 || ib < 0 {
		panic(fmt.Sprintf("chains: Swap(%d, %v, %v): round-trip not delivered there", server, a, b))
	}
	order[ia], order[ib] = order[ib], order[ia]
}

// SkipAt removes a round-trip from a server's arrival order — the paper's
// "the round-trip skips server s".
func (s *Spec) SkipAt(server int, rt RT) {
	order := s.Arrival[server]
	i := indexOf(order, rt)
	if i < 0 {
		return // already skipped
	}
	s.Arrival[server] = append(order[:i], order[i+1:]...)
}

// DeliverAfter inserts rt into a server's arrival order immediately after
// anchor (un-skipping it). Used by the link constructions that "add R2^(2)
// back on s_i1, after R1^(2)".
func (s *Spec) DeliverAfter(server int, rt, anchor RT) {
	s.SkipAt(server, rt)
	order := s.Arrival[server]
	i := indexOf(order, anchor)
	if i < 0 {
		panic(fmt.Sprintf("chains: DeliverAfter(%d, %v, %v): anchor skipped", server, rt, anchor))
	}
	order = append(order, RT{})
	copy(order[i+2:], order[i+1:])
	order[i+1] = rt
	s.Arrival[server] = order
}

// Skips reports whether rt is skipped at server.
func (s *Spec) Skips(server int, rt RT) bool { return indexOf(s.Arrival[server], rt) < 0 }

// SwapUnits exchanges two contiguous, adjacent blocks of round-trips in a
// server's arrival order. It realizes the Section 3 note for W1Rk: the
// merged rounds 2…k of each read move as one block.
func (s *Spec) SwapUnits(server int, a, b []RT) {
	if len(a) == 1 && len(b) == 1 {
		s.Swap(server, a[0], b[0])
		return
	}
	order := s.Arrival[server]
	ia := indexOf(order, a[0])
	ib := indexOf(order, b[0])
	if ia < 0 || ib < 0 {
		panic(fmt.Sprintf("chains: SwapUnits(%d): unit not delivered there", server))
	}
	if ib < ia {
		a, b = b, a
		ia, ib = ib, ia
	}
	if ia+len(a) != ib {
		panic(fmt.Sprintf("chains: SwapUnits(%d): units not adjacent (%d+%d != %d)", server, ia, len(a), ib))
	}
	for i, rt := range a {
		if order[ia+i] != rt {
			panic(fmt.Sprintf("chains: SwapUnits(%d): unit A not contiguous", server))
		}
	}
	for i, rt := range b {
		if order[ib+i] != rt {
			panic(fmt.Sprintf("chains: SwapUnits(%d): unit B not contiguous", server))
		}
	}
	merged := make([]RT, 0, len(a)+len(b))
	merged = append(merged, b...)
	merged = append(merged, a...)
	copy(order[ia:], merged)
}

// SkipUnit removes every round-trip of the unit from a server's arrival
// order.
func (s *Spec) SkipUnit(server int, unit []RT) {
	for _, rt := range unit {
		s.SkipAt(server, rt)
	}
}

// DeliverUnitAfter reinserts the unit, in order, immediately after anchor.
func (s *Spec) DeliverUnitAfter(server int, unit []RT, anchor RT) {
	prev := anchor
	for _, rt := range unit {
		s.DeliverAfter(server, rt, prev)
		prev = rt
	}
}

func indexOf(order []RT, rt RT) int {
	for i, x := range order {
		if x == rt {
			return i
		}
	}
	return -1
}

// OpResult is one operation's fate in an outcome.
type OpResult struct {
	Name    string
	Value   types.Value
	Err     error
	Done    bool
	Replies map[int][]proto.Message // round → replies in server-index order
	From    map[int][]int           // round → server indices the replies came from
}

// Outcome is the result of running a Spec.
type Outcome struct {
	Spec    *Spec
	Results []OpResult
	History history.History
	Servers []register.ServerLogic
}

// Result returns the named operation's result.
func (o *Outcome) Result(name string) OpResult {
	for _, r := range o.Results {
		if r.Name == name {
			return r
		}
	}
	return OpResult{Name: name}
}

// ReadView is the multiset of (server, reply) pairs an operation's round
// received, in server order — the information-theoretic "view" the
// indistinguishability arguments compare.
func (o *Outcome) ReadView(name string) string {
	r := o.Result(name)
	rounds := make([]int, 0, len(r.Replies))
	for round := range r.Replies {
		rounds = append(rounds, round)
	}
	sort.Ints(rounds)
	out := ""
	for _, round := range rounds {
		out += fmt.Sprintf("round%d[", round)
		for i, m := range r.Replies[round] {
			out += fmt.Sprintf("s%d:%s;", r.From[round][i], m)
		}
		out += "]"
	}
	return out
}

// opState tracks one in-flight operation during interpretation.
type opState struct {
	op          register.Operation
	maker       OpMaker
	need        int
	payloads    map[int]proto.Message // round → broadcast payload, once known
	curRound    int                   // round currently open (0 = not begun)
	roundDone   map[int]bool
	replies     map[int][]register.Reply
	replySrv    map[int][]int
	done        bool
	stalled     bool // a round could not reach its quorum; later rounds never start
	result      types.Value
	err         error
	invokePos   int
	completePos int
}

// Run interprets the spec against fresh servers from newServer. It returns
// an error only for malformed specs (round quorums unreachable, rounds out
// of order); protocol-level results, including operation errors, land in
// the Outcome.
func (s *Spec) Run(newServer func(id types.ProcID) register.ServerLogic) (*Outcome, error) {
	servers := make([]register.ServerLogic, s.NumServers+1) // 1-based
	for i := 1; i <= s.NumServers; i++ {
		servers[i] = newServer(types.Server(i))
	}
	ops := make([]*opState, len(s.Ops))
	for i, m := range s.Ops {
		ops[i] = &opState{
			op: m.Make(), maker: m,
			payloads:  make(map[int]proto.Message),
			roundDone: make(map[int]bool),
			replies:   make(map[int][]register.Reply),
			replySrv:  make(map[int][]int),
			invokePos: -1,
		}
	}
	cursor := make([]int, s.NumServers+1)
	ready := make(map[RT]bool, len(s.Global))

	clock := &vclock.Clock{}
	rec := history.NewRecorder(clock)
	keys := make([]string, len(ops))

	applyAll := func() {
		for srv := 1; srv <= s.NumServers; srv++ {
			order := s.Arrival[srv]
			for cursor[srv] < len(order) {
				rt := order[cursor[srv]]
				st := ops[rt.Op]
				if st.stalled && rt.Round > st.curRound {
					// The operation stalled before sending this round: the
					// message does not exist, so it cannot occupy a queue
					// slot — skip it and keep draining.
					cursor[srv]++
					continue
				}
				payload := st.payloads[rt.Round]
				if !ready[rt] || payload == nil {
					// Not initiated yet: the server waits; everything queued
					// behind this arrival waits too (FIFO per channel).
					break
				}
				reply := servers[srv].Handle(st.op.Client(), payload)
				if reply != nil {
					st.replies[rt.Round] = append(st.replies[rt.Round], register.Reply{From: types.Server(srv), Msg: reply})
					st.replySrv[rt.Round] = append(st.replySrv[rt.Round], srv)
				}
				cursor[srv]++
			}
		}
	}

	for pos, rt := range s.Global {
		if rt.Op < 0 || rt.Op >= len(ops) {
			return nil, fmt.Errorf("chains: %s: global[%d] references op %d of %d", s.Name, pos, rt.Op, len(ops))
		}
		st := ops[rt.Op]
		if st.done || st.err != nil {
			return nil, fmt.Errorf("chains: %s: %s initiates round %d after completion", s.Name, st.maker.Name, rt.Round)
		}
		if st.stalled {
			continue
		}
		switch {
		case rt.Round == 1:
			if st.curRound != 0 {
				return nil, fmt.Errorf("chains: %s: %s round 1 initiated twice", s.Name, st.maker.Name)
			}
			round := st.op.Begin()
			st.payloads[1], st.need, st.curRound = round.Payload, round.Need, 1
			st.invokePos = pos
			keys[rt.Op] = rec.InvokeAt(vclock.Time(pos*1000+rt.Op+1), st.op.Client(), uint64(rt.Op+1), st.op.Kind(), st.op.Arg())
		case rt.Round == st.curRound+1:
			if !st.roundDone[st.curRound] {
				// The previous round never reached its quorum (too many
				// skips): the client is still waiting, so this and every
				// later round of the operation simply never start. The
				// operation stays pending in the history.
				st.stalled = true
				continue
			}
			st.curRound = rt.Round
		default:
			return nil, fmt.Errorf("chains: %s: %s initiates round %d out of order", s.Name, st.maker.Name, rt.Round)
		}
		ready[rt] = true
		applyAll()
		// Completion pass: any open round with a quorum of applied replies
		// completes now (the earliest moment the client can respond).
		for idx, o := range ops {
			if o.done || o.err != nil || o.curRound == 0 || o.roundDone[o.curRound] {
				continue
			}
			got := o.replies[o.curRound]
			if len(got) < o.need {
				continue
			}
			o.roundDone[o.curRound] = true
			sortByServer(got, o.replySrv[o.curRound])
			next, res, done, err := o.op.Next(got)
			switch {
			case err != nil:
				o.err = err
				o.completePos = pos
				rec.RespondAt(vclock.Time(pos*1000+500+idx+1), keys[idx], types.Value{}, err)
			case done:
				o.done = true
				o.result = res
				o.completePos = pos
				rec.RespondAt(vclock.Time(pos*1000+500+idx+1), keys[idx], res, nil)
			default:
				o.payloads[o.curRound+1], o.need = next.Payload, next.Need
				// The next round opens when its global position arrives.
			}
		}
	}

	// Pending two-round writes learned their tag in round 1; refresh the
	// recorded argument so reads of in-flight values stay matchable.
	for idx, o := range ops {
		if !o.done && o.err == nil && o.invokePos >= 0 {
			rec.UpdateValue(keys[idx], o.op.Arg())
		}
	}
	out := &Outcome{Spec: s, Servers: servers[1:], History: rec.History()}
	for _, o := range ops {
		r := OpResult{Name: o.maker.Name, Value: o.result, Err: o.err, Done: o.done,
			Replies: make(map[int][]proto.Message), From: o.replySrv}
		for round, reps := range o.replies {
			ms := make([]proto.Message, len(reps))
			for i, rep := range reps {
				ms[i] = rep.Msg
			}
			r.Replies[round] = ms
		}
		out.Results = append(out.Results, r)
	}
	return out, nil
}

// sortByServer orders replies (and the parallel server-index slice) by
// server index, making client inputs deterministic regardless of drain
// order.
func sortByServer(reps []register.Reply, srv []int) {
	sort.Sort(&replySorter{reps, srv})
}

type replySorter struct {
	reps []register.Reply
	srv  []int
}

func (r *replySorter) Len() int           { return len(r.reps) }
func (r *replySorter) Less(i, j int) bool { return r.srv[i] < r.srv[j] }
func (r *replySorter) Swap(i, j int) {
	r.reps[i], r.reps[j] = r.reps[j], r.reps[i]
	r.srv[i], r.srv[j] = r.srv[j], r.srv[i]
}
