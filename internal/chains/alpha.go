package chains

import (
	"fmt"

	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/types"
)

// Family fixes the cast of the impossibility argument: a fast-write
// protocol candidate on S servers with t = 1, W = 2 writers and R = 2
// readers — "it suffices to show the impossibility in a system where S ≥ 3,
// W = 2, R = 2 and t = 1" (Section 3.1).
type Family struct {
	Protocol   register.Protocol
	S          int
	readRounds int
	cfg        quorum.Config
}

// Round-trip aliases for the fixed op layout of the proof:
// op 0 = W1 = write("1"), op 1 = W2 = write("2"), op 2 = R1, op 3 = R2.
//
// For W1Rk candidates with k > 2, the paper's Section 3 note applies: "We
// can combine the round-trips 2, 3, …, k as if they were one single
// round-trip." The engine realizes this by treating each read's rounds
// 2…k as one contiguous *unit*: units are swapped, skipped and delivered
// as blocks, so the k-round argument is literally the 2-round argument.
var (
	rtW1 = RT{Op: 0, Round: 1}
	rtW2 = RT{Op: 1, Round: 1}
	rtR1 = [3]RT{{}, {Op: 2, Round: 1}, {Op: 2, Round: 2}} // R1^(1), R1^(2)
	rtR2 = [3]RT{{}, {Op: 3, Round: 1}, {Op: 3, Round: 2}} // R2^(1), R2^(2)
)

// r1Unit and r2Unit are the merged rounds 2…k of the two reads.
func (f *Family) r1Unit() []RT { return readUnit(2, f.readRounds) }
func (f *Family) r2Unit() []RT { return readUnit(3, f.readRounds) }

func readUnit(op, rounds int) []RT {
	unit := make([]RT, 0, rounds-1)
	for r := 2; r <= rounds; r++ {
		unit = append(unit, RT{Op: op, Round: r})
	}
	return unit
}

// NewFamily validates the candidate and builds the proof family.
func NewFamily(p register.Protocol, s int) (*Family, error) {
	if p.WriteRounds() != 1 {
		return nil, fmt.Errorf("chains: %s has %d-round writes; the W1R2 argument needs fast writes", p.Name(), p.WriteRounds())
	}
	if p.ReadRounds() < 2 {
		return nil, fmt.Errorf("chains: %s has %d-round reads; the W1R2/W1Rk argument needs k ≥ 2", p.Name(), p.ReadRounds())
	}
	if s < 3 {
		return nil, fmt.Errorf("chains: need S ≥ 3, got %d", s)
	}
	return &Family{Protocol: p, S: s, readRounds: p.ReadRounds(),
		cfg: quorum.Config{S: s, T: 1, R: 2, W: 2}}, nil
}

// ops builds the op makers for the four cast members. Writers and readers
// are created fresh per execution (Make), so per-client state never leaks
// between executions of the chain.
func (f *Family) ops(withR2 bool) []OpMaker {
	makers := []OpMaker{
		{Name: "W1", Rounds: 1, Make: func() register.Operation {
			return f.Protocol.NewWriter(types.Writer(1), f.cfg).WriteOp("1")
		}},
		{Name: "W2", Rounds: 1, Make: func() register.Operation {
			return f.Protocol.NewWriter(types.Writer(2), f.cfg).WriteOp("2")
		}},
		{Name: "R1", Rounds: f.readRounds, Make: func() register.Operation {
			return f.Protocol.NewReader(types.Reader(1), f.cfg).ReadOp()
		}},
	}
	if withR2 {
		makers = append(makers, OpMaker{Name: "R2", Rounds: f.readRounds, Make: func() register.Operation {
			return f.Protocol.NewReader(types.Reader(2), f.cfg).ReadOp()
		}})
	}
	return makers
}

// NewServerFn returns the server factory for executions of this family.
func (f *Family) NewServerFn() func(types.ProcID) register.ServerLogic {
	return func(id types.ProcID) register.ServerLogic { return f.Protocol.NewServer(id, f.cfg) }
}

// AlphaChain is the Phase 1 result.
type AlphaChain struct {
	// Specs are α_0 … α_S (index = number of swapped servers).
	Specs []*Spec
	// Outcomes are the corresponding runs.
	Outcomes []*Outcome
	// Tail is the genuine reversed execution α_tail (temporal order W2, W1,
	// R1) that pins α_S's required return value.
	Tail *Outcome
	// Critical is the paper's i1: the first index with
	// R1(α_{i1-1}) ≠ R1(α_{i1}); 0 if R1 never flips.
	Critical int
}

// BuildAlpha constructs and runs chain α (Section 3.2): the head execution
// has three non-concurrent skip-free operations W1 ≺ W2 ≺ R1; execution α_i
// swaps the two writes' arrival order on servers s_1…s_i.
func (f *Family) BuildAlpha() (*AlphaChain, error) {
	global := append([]RT{rtW1, rtW2, rtR1[1]}, f.r1Unit()...)
	base := NewSpec("α0", f.S, f.ops(false), global)

	chain := &AlphaChain{}
	for i := 0; i <= f.S; i++ {
		spec := base.Clone(fmt.Sprintf("α%d", i))
		for srv := 1; srv <= i; srv++ {
			spec.Swap(srv, rtW1, rtW2)
		}
		out, err := spec.Run(f.NewServerFn())
		if err != nil {
			return nil, fmt.Errorf("chains: running %s: %w", spec.Name, err)
		}
		chain.Specs = append(chain.Specs, spec)
		chain.Outcomes = append(chain.Outcomes, out)
	}

	// α_tail: same three operations, genuinely in the order W2, W1, R1.
	tailSpec := NewSpec("α_tail", f.S, f.ops(false), append([]RT{rtW2, rtW1, rtR1[1]}, f.r1Unit()...))
	tail, err := tailSpec.Run(f.NewServerFn())
	if err != nil {
		return nil, fmt.Errorf("chains: running α_tail: %w", err)
	}
	chain.Tail = tail

	for i := 1; i <= f.S; i++ {
		a, b := chain.Outcomes[i-1].Result("R1"), chain.Outcomes[i].Result("R1")
		if a.Done && b.Done && a.Value != b.Value {
			chain.Critical = i
			break
		}
	}
	return chain, nil
}

// IndistinguishableTail verifies the keystone of Phase 1: R1's view in α_S
// equals its view in α_tail, so a correct protocol must return the same
// value in both. Engine sanity — it holds for any deterministic protocol.
func (c *AlphaChain) IndistinguishableTail() bool {
	return c.Outcomes[len(c.Outcomes)-1].ReadView("R1") == c.Tail.ReadView("R1")
}
