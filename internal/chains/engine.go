package chains

import (
	"fmt"
	"strings"

	"fastreg/internal/atomicity"
	"fastreg/internal/register"
)

// Verdict is the atomicity checker's verdict on one execution of the proof
// family.
type Verdict struct {
	Phase     string // "alpha", "beta", "zigzag"
	Execution string // e.g. "α3", "β′S+skip", "γ2"
	Result    atomicity.Result
	Outcome   *Outcome
}

// Report is the full output of the executable impossibility argument.
type Report struct {
	Protocol string
	S        int

	Alpha  *AlphaChain
	Beta   *BetaChain
	Zigzag *ZigzagChain

	// Verdicts covers every execution run, in proof order.
	Verdicts []Verdict
	// Violations are the non-atomic ones — Theorem 1 guarantees at least
	// one for any fast-write candidate.
	Violations []Verdict
	// LinksHold records whether every constructed indistinguishability held
	// (an engine invariant for in-model protocols).
	LinksHold bool
}

// First returns the first violation found, or nil.
func (r *Report) First() *Verdict {
	if len(r.Violations) == 0 {
		return nil
	}
	return &r.Violations[0]
}

// String summarizes the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "W1R2 impossibility argument: protocol=%s S=%d t=1 W=2 R=2\n", r.Protocol, r.S)
	if r.Alpha != nil {
		fmt.Fprintf(&b, "  phase 1: chain α of %d executions, critical server s%d\n", len(r.Alpha.Outcomes), r.Alpha.Critical)
	}
	if r.Beta != nil {
		chosen := "β″"
		if r.Beta.ChosePrime {
			chosen = "β′"
		}
		fmt.Fprintf(&b, "  phase 2: chains β′/β″ built, chose %s; tails indistinguishable to R2: %v\n", chosen, r.Beta.TailsIndistinguishable())
	}
	if r.Zigzag != nil {
		fmt.Fprintf(&b, "  phase 3: %d zigzag links, all indistinguishabilities hold: %v\n", len(r.Zigzag.Links), r.LinksHold)
	}
	fmt.Fprintf(&b, "  executions checked: %d, atomicity violations: %d\n", len(r.Verdicts), len(r.Violations))
	if v := r.First(); v != nil {
		fmt.Fprintf(&b, "  first violation: %s/%s — %s\n", v.Phase, v.Execution, v.Result)
	}
	return b.String()
}

// FindViolation runs the complete three-phase argument of Sections 3.2–3.4
// against a fast-write candidate on S servers (t = 1, W = 2, R = 2) and
// checks every constructed execution for atomicity. For any protocol in the
// model, at least one execution must violate (Theorem 1); the report names
// it and carries the full history as the exhibit.
func FindViolation(p register.Protocol, s int) (*Report, error) {
	f, err := NewFamily(p, s)
	if err != nil {
		return nil, err
	}
	rep := &Report{Protocol: p.Name(), S: s, LinksHold: true}

	judge := func(phase, name string, out *Outcome) {
		res := atomicity.Check(out.History)
		v := Verdict{Phase: phase, Execution: name, Result: res, Outcome: out}
		rep.Verdicts = append(rep.Verdicts, v)
		if !res.Atomic {
			rep.Violations = append(rep.Violations, v)
		}
	}

	// Phase 1.
	alpha, err := f.BuildAlpha()
	if err != nil {
		return nil, err
	}
	rep.Alpha = alpha
	for i, out := range alpha.Outcomes {
		judge("alpha", fmt.Sprintf("α%d", i), out)
	}
	judge("alpha", "α_tail", alpha.Tail)

	if alpha.Critical == 0 {
		// No flip along the chain: then α_0 and α_S return the same value,
		// yet α_0 forces "2" and α_S (≡ α_tail) forces "1" — one of the
		// ends must already have been flagged above.
		return rep, nil
	}

	// Phase 2.
	beta, err := f.BuildBeta(alpha)
	if err != nil {
		return nil, err
	}
	rep.Beta = beta
	for i := range beta.Prime {
		judge("beta", fmt.Sprintf("β′%d", i), beta.Prime[i])
		judge("beta", fmt.Sprintf("β″%d", i), beta.DoublePrime[i])
	}
	judge("beta", "β′S+skip", beta.PrimeTail)
	judge("beta", "β″S+skip", beta.DoublePrimeTail)
	for i, out := range beta.Outcomes {
		judge("beta", fmt.Sprintf("β%d", i), out)
	}

	// Phase 3.
	zig, err := f.BuildZigzag(beta)
	if err != nil {
		return nil, err
	}
	rep.Zigzag = zig
	rep.LinksHold = zig.AllLinksHold()
	for _, l := range zig.Links {
		if l.Temp != nil {
			judge("zigzag", fmt.Sprintf("temp%d", l.K), l.Temp)
		}
		judge("zigzag", fmt.Sprintf("γ%d", l.K), l.Gamma)
		if l.TempPrime != nil {
			judge("zigzag", fmt.Sprintf("temp′%d", l.K), l.TempPrime)
		}
		judge("zigzag", fmt.Sprintf("γ′%d", l.K), l.GammaPrime)
	}
	return rep, nil
}
