package chains

import (
	"testing"

	"fastreg/internal/crucialinfo"
)

// TestW1RkReducesToW1R2 executes the Section 3 note: "the impossibility
// proof of W1R2 implementations also applies for W1Rk implementations for
// k ≥ 3. We can combine the round-trips 2, 3, …, k as if they were one
// single round-trip." The engine runs the full three-phase argument against
// W1R3 and W1R4 full-info candidates, moving each read's rounds 2…k as one
// block, and must find the forced violation just as for k = 2.
func TestW1RkReducesToW1R2(t *testing.T) {
	for _, k := range []int{3, 4} {
		for _, s := range []int{3, 5} {
			rep, err := FindViolation(crucialinfo.NewKRound(k), s)
			if err != nil {
				t.Fatalf("k=%d S=%d: %v", k, s, err)
			}
			if len(rep.Violations) == 0 {
				t.Fatalf("k=%d S=%d: no violation found — the W1Rk argument failed", k, s)
			}
			if !rep.LinksHold {
				t.Errorf("k=%d S=%d: an indistinguishability link failed", k, s)
			}
			if rep.Alpha.Critical == 0 {
				t.Errorf("k=%d S=%d: no critical server (the merged-unit chain α did not flip)", k, s)
			}
		}
	}
}

// TestW1RkAlphaMatchesW1R2 checks the reduction at the chain level: since
// rounds 2…k are pure queries delivered contiguously, the k-round read's
// return values along chain α coincide with the 2-round read's.
func TestW1RkAlphaMatchesW1R2(t *testing.T) {
	base, err := NewFamily(crucialinfo.New(), 5)
	if err != nil {
		t.Fatal(err)
	}
	alpha2, err := base.BuildAlpha()
	if err != nil {
		t.Fatal(err)
	}
	f3, err := NewFamily(crucialinfo.NewKRound(3), 5)
	if err != nil {
		t.Fatal(err)
	}
	alpha3, err := f3.BuildAlpha()
	if err != nil {
		t.Fatal(err)
	}
	if alpha2.Critical != alpha3.Critical {
		t.Fatalf("critical servers differ: k=2 → s%d, k=3 → s%d", alpha2.Critical, alpha3.Critical)
	}
	for i := range alpha2.Outcomes {
		v2 := alpha2.Outcomes[i].Result("R1").Value
		v3 := alpha3.Outcomes[i].Result("R1").Value
		if v2 != v3 {
			t.Errorf("α%d: k=2 read %v, k=3 read %v", i, v2, v3)
		}
	}
}

// TestKRoundReadLatency: the W1Rk candidate's read really costs k round
// trips (metadata honesty for the latency harness).
func TestKRoundReadMetadata(t *testing.T) {
	p := crucialinfo.NewKRound(4)
	if p.ReadRounds() != 4 || p.WriteRounds() != 1 {
		t.Fatalf("rounds: W%d R%d", p.WriteRounds(), p.ReadRounds())
	}
	if p.Name() != "W1R4-fullinfo" {
		t.Fatalf("name = %q", p.Name())
	}
}

func TestNewKRoundValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewKRound(1) must panic")
		}
	}()
	crucialinfo.NewKRound(1)
}
