package chains

import (
	"strings"
	"testing"

	"fastreg/internal/crucialinfo"
	"fastreg/internal/types"
	"fastreg/internal/w1r2"
)

// TestAlphaChainFullInfo reproduces Phase 1 (Fig 3, left): along chain α
// the read's return value flips from "2" to "1", locating the critical
// server.
func TestAlphaChainFullInfo(t *testing.T) {
	for _, s := range []int{3, 4, 5, 6, 7} {
		f, err := NewFamily(crucialinfo.New(), s)
		if err != nil {
			t.Fatal(err)
		}
		alpha, err := f.BuildAlpha()
		if err != nil {
			t.Fatal(err)
		}
		if len(alpha.Outcomes) != s+1 {
			t.Fatalf("S=%d: chain length %d, want %d", s, len(alpha.Outcomes), s+1)
		}
		// Head: W1 ≺ W2 ≺ R1 all skip-free → R1 returns W2's value.
		head := alpha.Outcomes[0].Result("R1")
		if !head.Done || head.Value.Data != "2" {
			t.Fatalf("S=%d: α0 R1 = %v, want \"2\"", s, head.Value)
		}
		// End of chain: indistinguishable from the true tail.
		if !alpha.IndistinguishableTail() {
			t.Errorf("S=%d: α_S distinguishable from α_tail", s)
		}
		last := alpha.Outcomes[s].Result("R1")
		tail := alpha.Tail.Result("R1")
		if last.Value != tail.Value {
			t.Errorf("S=%d: α_S R1 = %v but α_tail R1 = %v despite identical views", s, last.Value, tail.Value)
		}
		if alpha.Critical == 0 {
			t.Fatalf("S=%d: no critical server found", s)
		}
		// The flip is exactly at the critical server.
		before := alpha.Outcomes[alpha.Critical-1].Result("R1").Value
		after := alpha.Outcomes[alpha.Critical].Result("R1").Value
		if before == after {
			t.Errorf("S=%d: no flip at reported critical server s%d", s, alpha.Critical)
		}
	}
}

// TestBetaChainFullInfo reproduces Phase 2: the modified tails are
// indistinguishable to R2, and chain β's two ends disagree.
func TestBetaChainFullInfo(t *testing.T) {
	f, err := NewFamily(crucialinfo.New(), 5)
	if err != nil {
		t.Fatal(err)
	}
	alpha, err := f.BuildAlpha()
	if err != nil {
		t.Fatal(err)
	}
	beta, err := f.BuildBeta(alpha)
	if err != nil {
		t.Fatal(err)
	}
	if !beta.TailsIndistinguishable() {
		t.Error("R2 distinguished the modified tails β′_S and β″_S")
	}
	if got := beta.PrimeTail.Result("R2").Value; got != beta.DoublePrimeTail.Result("R2").Value {
		t.Errorf("R2 returned different values in indistinguishable tails: %v vs %v",
			got, beta.DoublePrimeTail.Result("R2").Value)
	}
	if len(beta.Outcomes) != f.S+1 {
		t.Fatalf("chain β length %d", len(beta.Outcomes))
	}
	// R2 skips the critical server in every β execution.
	for i, spec := range beta.Specs {
		if !spec.Skips(beta.Critical, rtR2[1]) || !spec.Skips(beta.Critical, rtR2[2]) {
			t.Errorf("β%d: R2 does not skip the critical server s%d", i, beta.Critical)
		}
	}
	// The choice rule: the head's R1 value differs from the tail R2 value.
	headR1 := beta.Outcomes[0].Result("R1").Value
	tailR2 := beta.PrimeTail.Result("R2").Value
	if headR1 == tailR2 {
		t.Errorf("chain choice failed: head R1 %v equals tail R2 %v", headR1, tailR2)
	}
}

// TestBetaNeedsCriticalServer: Phase 2 requires a Phase 1 flip.
func TestBetaNeedsCriticalServer(t *testing.T) {
	f, err := NewFamily(crucialinfo.New(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.BuildBeta(&AlphaChain{}); err == nil {
		t.Fatal("BuildBeta accepted a chain without critical server")
	}
}

// TestZigzagLinksFullInfo reproduces Phase 3 (Figs 4–7): every horizontal
// and diagonal indistinguishability holds mechanically.
func TestZigzagLinksFullInfo(t *testing.T) {
	for _, s := range []int{3, 5} {
		f, err := NewFamily(crucialinfo.New(), s)
		if err != nil {
			t.Fatal(err)
		}
		alpha, err := f.BuildAlpha()
		if err != nil {
			t.Fatal(err)
		}
		beta, err := f.BuildBeta(alpha)
		if err != nil {
			t.Fatal(err)
		}
		zig, err := f.BuildZigzag(beta)
		if err != nil {
			t.Fatal(err)
		}
		if len(zig.Links) != s {
			t.Fatalf("S=%d: %d links, want %d", s, len(zig.Links), s)
		}
		if !zig.AllLinksHold() {
			for _, l := range zig.Links {
				t.Logf("link k=%d simple=%v h=(%v,%v) d=(%v,%v) γ≈γ′=%v",
					l.K, l.Simple, l.HorizontalR1, l.HorizontalR2, l.DiagonalR2, l.DiagonalR1, l.GammasAgree)
			}
			t.Fatalf("S=%d: an indistinguishability link failed", s)
		}
		// Exactly one link is the simple k+1 = i1 case.
		simple := 0
		for _, l := range zig.Links {
			if l.Simple {
				simple++
				if l.K+1 != zig.Critical {
					t.Errorf("simple link at k=%d but critical is s%d", l.K, zig.Critical)
				}
			}
		}
		if simple != 1 {
			t.Errorf("S=%d: %d simple links, want 1", s, simple)
		}
	}
}

// TestFindViolationFullInfo is the headline: the executable argument
// exhibits a concrete atomicity violation for the full-info fast-write
// candidate, with every constructed indistinguishability intact — i.e. the
// violation is forced by fast writes, not by a protocol quirk.
func TestFindViolationFullInfo(t *testing.T) {
	for _, s := range []int{3, 4, 5, 6} {
		rep, err := FindViolation(crucialinfo.New(), s)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Violations) == 0 {
			t.Fatalf("S=%d: no violation found — Theorem 1 says one must exist", s)
		}
		if !rep.LinksHold {
			t.Errorf("S=%d: indistinguishability links failed", s)
		}
		v := rep.First()
		if v.Result.Atomic {
			t.Fatal("first violation marked atomic")
		}
		if v.Outcome == nil || len(v.Outcome.History.Completed()) == 0 {
			t.Error("violation lacks its exhibit history")
		}
	}
}

// TestFindViolationNaive: the tag-based naive fast write already fails at
// the chain ends (its reads cannot respect the real-time write order).
func TestFindViolationNaive(t *testing.T) {
	rep, err := FindViolation(w1r2.New(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("naive W1R2 passed the argument")
	}
	if got := rep.First().Phase; got != "alpha" {
		t.Errorf("naive protocol should fail already in phase 1, failed in %s", got)
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}

// TestSieveFullInfo reproduces Fig 8: with an adversary that lets R2's
// first round-trip flip crucial info on Σ1, the sieve isolates Σ2 and the
// shortened chain α̂ still flips.
func TestSieveFullInfo(t *testing.T) {
	sigma1 := []types.ProcID{types.Server(4), types.Server(5)}
	p := crucialinfo.NewWithFlips(types.Reader(2), sigma1)
	f, err := NewFamily(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Sieve()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sigma1) != 2 || res.Sigma1[0] != 4 || res.Sigma1[1] != 5 {
		t.Fatalf("Σ1 = %v, want [4 5]", res.Sigma1)
	}
	if len(res.Sigma2) != 3 {
		t.Fatalf("Σ2 = %v", res.Sigma2)
	}
	// Fig 8: affected servers flipped "12" → "21"; unaffected kept "12".
	for _, srv := range res.Sigma1 {
		if res.CrucialRef[srv] != "12" || res.CrucialHat[srv] != "21" {
			t.Errorf("s%d: crucial %q → %q, want 12 → 21", srv, res.CrucialRef[srv], res.CrucialHat[srv])
		}
	}
	for _, srv := range res.Sigma2 {
		if res.CrucialHat[srv] != "12" {
			t.Errorf("s%d: unaffected server has crucial %q", srv, res.CrucialHat[srv])
		}
	}
	// The shortened chain still flips R1's return.
	if res.Critical == 0 {
		t.Fatal("shortened chain α̂ did not flip")
	}
	head := res.AlphaHat[0].Result("R1").Value
	tail := res.AlphaHat[len(res.AlphaHat)-1].Result("R1").Value
	if head == tail {
		t.Errorf("α̂ ends agree: %v", head)
	}
	if len(res.Verdicts) != len(res.AlphaHat) {
		t.Error("verdict bookkeeping wrong")
	}
}

// TestSieveNoAdversary: with the plain full-info protocol a blind first
// round-trip cannot change crucial info, so Σ1 is empty and the full chain
// survives the sieve.
func TestSieveNoAdversary(t *testing.T) {
	f, err := NewFamily(crucialinfo.New(), 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Sieve()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sigma1) != 0 {
		t.Fatalf("Σ1 = %v, want empty (append-only logs cannot flip)", res.Sigma1)
	}
	if len(res.Sigma2) != 5 {
		t.Fatalf("Σ2 = %v", res.Sigma2)
	}
	if res.Critical == 0 {
		t.Fatal("full-length α̂ did not flip")
	}
}

// TestSieveRejectsNonFullInfo: the sieve reads server logs, which concrete
// protocols don't expose.
func TestSieveRejectsNonFullInfo(t *testing.T) {
	f, err := NewFamily(w1r2.New(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Sieve(); err == nil {
		t.Fatal("sieve accepted a non-full-info protocol")
	}
}

// TestReportStringMentionsPhases sanity-checks the report rendering.
func TestReportStringMentionsPhases(t *testing.T) {
	rep, err := FindViolation(crucialinfo.New(), 3)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, frag := range []string{"phase 1", "phase 2", "phase 3", "first violation"} {
		if !strings.Contains(s, frag) {
			t.Errorf("report missing %q:\n%s", frag, s)
		}
	}
}
