package chains

import (
	"fmt"
	"sort"

	"fastreg/internal/atomicity"
	"fastreg/internal/crucialinfo"
	"fastreg/internal/proto"
)

// logHolder is implemented by full-info servers (crucialinfo.LogServer and
// its adversarial wrapper): the sieve needs to read crucial information,
// which only exists in the full-info model.
type logHolder interface {
	Log() []proto.LogEvent
}

// SieveResult is the outcome of the Section 4.2 analysis (Fig 8): the
// partition of servers into Σ1 (crucial info affected by R2's first
// round-trip) and Σ2 (unaffected), and the shortened chain α̂ conducted on
// Σ2 alone.
type SieveResult struct {
	// Sigma1 and Sigma2 partition the servers (1-based indices).
	Sigma1, Sigma2 []int
	// CrucialRef and CrucialHat are each server's crucial info ("12"/"21")
	// without and with R2's first round-trip, respectively.
	CrucialRef, CrucialHat map[int]string
	// AlphaHat are the runs of the shortened chain α̂_0 … α̂_x (x = |Σ2|):
	// α̂_i swaps the writes on the first i servers of Σ2 only.
	AlphaHat []*Outcome
	// Critical is the position in Σ2 (1-based) where R1's return flips; 0
	// if it never flips.
	Critical int
	// Verdicts holds the atomicity verdicts of the α̂ runs.
	Verdicts []Verdict
}

// Sigma2Server returns the i-th (1-based) server of Σ2.
func (s *SieveResult) Sigma2Server(i int) int { return s.Sigma2[i-1] }

// Sieve runs the server-elimination analysis of Section 4.2 against a
// full-info fast-write candidate: append R2 to α_0, find which servers'
// crucial information R2's first round-trip changed (Σ1), restrict the
// chain argument to the unaffected servers Σ2, and verify that R1's return
// value still flips along the shortened chain — so the chain argument of
// Section 3 goes through on Σ2 alone.
//
// The protocol's servers must expose their append-only logs (full-info
// model); other protocols are rejected.
func (f *Family) Sieve() (*SieveResult, error) {
	// Reference execution: α_0 without R2.
	refSpec := NewSpec("α0-noR2", f.S, f.ops(false), append([]RT{rtW1, rtW2, rtR1[1]}, f.r1Unit()...))
	ref, err := refSpec.Run(f.NewServerFn())
	if err != nil {
		return nil, fmt.Errorf("chains: sieve reference: %w", err)
	}
	// α̂_0: α_0 with R2 appended, round-trips interleaved as in Phase 2.
	hatGlobal := append([]RT{rtW1, rtW2, rtR1[1], rtR2[1]}, f.r1Unit()...)
	hatGlobal = append(hatGlobal, f.r2Unit()...)
	hatSpec := NewSpec("α̂0", f.S, f.ops(true), hatGlobal)
	hat, err := hatSpec.Run(f.NewServerFn())
	if err != nil {
		return nil, fmt.Errorf("chains: sieve α̂0: %w", err)
	}

	v1 := ref.Result("W1").Value
	v2 := ref.Result("W2").Value
	res := &SieveResult{CrucialRef: make(map[int]string), CrucialHat: make(map[int]string)}
	for i := 1; i <= f.S; i++ {
		refLog, ok1 := ref.Servers[i-1].(logHolder)
		hatLog, ok2 := hat.Servers[i-1].(logHolder)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("chains: sieve needs full-info servers; %T does not expose a log", ref.Servers[i-1])
		}
		cr := crucialinfo.Crucial(refLog.Log(), v1, v2)
		ch := crucialinfo.Crucial(hatLog.Log(), v1, v2)
		res.CrucialRef[i] = cr
		res.CrucialHat[i] = ch
		if cr != ch {
			res.Sigma1 = append(res.Sigma1, i)
		} else {
			res.Sigma2 = append(res.Sigma2, i)
		}
	}
	sort.Ints(res.Sigma1)
	sort.Ints(res.Sigma2)

	// Shortened chain α̂ over Σ2: α̂_i swaps the writes on the first i
	// servers of Σ2; servers in Σ1 keep their (affected) behaviour
	// unchanged in every execution.
	for i := 0; i <= len(res.Sigma2); i++ {
		spec := NewSpec(fmt.Sprintf("α̂%d", i), f.S, f.ops(true), hatGlobal)
		for j := 0; j < i; j++ {
			spec.Swap(res.Sigma2[j], rtW1, rtW2)
		}
		out, err := spec.Run(f.NewServerFn())
		if err != nil {
			return nil, fmt.Errorf("chains: sieve α̂%d: %w", i, err)
		}
		res.AlphaHat = append(res.AlphaHat, out)
		res.Verdicts = append(res.Verdicts, Verdict{
			Phase:     "sieve",
			Execution: spec.Name,
			Result:    atomicity.Check(out.History),
			Outcome:   out,
		})
	}
	for i := 1; i < len(res.AlphaHat); i++ {
		a, b := res.AlphaHat[i-1].Result("R1"), res.AlphaHat[i].Result("R1")
		if a.Done && b.Done && a.Value != b.Value {
			res.Critical = i
			break
		}
	}
	return res, nil
}
