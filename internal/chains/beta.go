package chains

import "fmt"

// BetaChain is the Phase 2 result (Section 3.3).
type BetaChain struct {
	// Critical is the critical server s_i1 inherited from Phase 1.
	Critical int
	// Prime and DoublePrime are the candidate chains β′ (stemming from
	// α_{i1-1}) and β″ (stemming from α_{i1}), unmodified.
	Prime, DoublePrime []*Outcome
	// PrimeTail and DoublePrimeTail are the modified tails in which R2
	// (both round-trips) skips the critical server.
	PrimeTail, DoublePrimeTail *Outcome
	// ChosePrime reports which candidate became chain β.
	ChosePrime bool
	// Specs and Outcomes are chain β itself: the chosen candidate with R2
	// skipping s_i1 in every execution.
	Specs    []*Spec
	Outcomes []*Outcome
}

// betaSpec builds the six-round-trip execution of Phase 2: the α execution
// with `swaps` write-swapped servers, extended with R2, round-trips
// interleaved in the temporal order R1^(1), R2^(1), R1^(2), R2^(2), with
// R1^(2)/R2^(2) swapped on servers s_1…s_rswaps, and R2 optionally skipping
// the critical server.
func (f *Family) betaSpec(name string, swaps, rswaps int, skipCritical bool, critical int) *Spec {
	global := append([]RT{rtW1, rtW2, rtR1[1], rtR2[1]}, f.r1Unit()...)
	global = append(global, f.r2Unit()...)
	spec := NewSpec(name, f.S, f.ops(true), global)
	for srv := 1; srv <= swaps; srv++ {
		spec.Swap(srv, rtW1, rtW2)
	}
	for srv := 1; srv <= rswaps; srv++ {
		spec.SwapUnits(srv, f.r1Unit(), f.r2Unit())
	}
	if skipCritical {
		spec.SkipAt(critical, rtR2[1])
		spec.SkipUnit(critical, f.r2Unit())
	}
	return spec
}

// BuildBeta runs Phase 2 on top of a Phase 1 result. It requires a critical
// server (alpha.Critical > 0).
func (f *Family) BuildBeta(alpha *AlphaChain) (*BetaChain, error) {
	if alpha.Critical == 0 {
		return nil, fmt.Errorf("chains: Phase 2 needs a critical server; chain α did not flip")
	}
	i1 := alpha.Critical
	b := &BetaChain{Critical: i1}

	run := func(spec *Spec) (*Outcome, error) {
		out, err := spec.Run(f.NewServerFn())
		if err != nil {
			return nil, fmt.Errorf("chains: running %s: %w", spec.Name, err)
		}
		return out, nil
	}

	// Candidate chains β′ (from α_{i1-1}) and β″ (from α_{i1}).
	for i := 0; i <= f.S; i++ {
		p, err := run(f.betaSpec(fmt.Sprintf("β′%d", i), i1-1, i, false, i1))
		if err != nil {
			return nil, err
		}
		b.Prime = append(b.Prime, p)
		q, err := run(f.betaSpec(fmt.Sprintf("β″%d", i), i1, i, false, i1))
		if err != nil {
			return nil, err
		}
		b.DoublePrime = append(b.DoublePrime, q)
	}

	// Modified tails: R2 skips the critical server.
	var err error
	b.PrimeTail, err = run(f.betaSpec("β′S+skip", i1-1, f.S, true, i1))
	if err != nil {
		return nil, err
	}
	b.DoublePrimeTail, err = run(f.betaSpec("β″S+skip", i1, f.S, true, i1))
	if err != nil {
		return nil, err
	}

	// R2 skips the critical server in every β execution (its first
	// round-trip and the whole rounds-2…k unit). R2 cannot distinguish the
	// two modified tails (the only differing server is skipped), so it
	// returns the same value in both; choose the candidate whose head
	// return (R1's value, inherited from α) differs from that tail value,
	// so the two ends of chain β disagree.
	tailR2 := b.PrimeTail.Result("R2").Value
	headPrime := b.Prime[0].Result("R1").Value
	b.ChosePrime = headPrime != tailR2

	swaps := i1 // β″ stems from α_{i1}
	if b.ChosePrime {
		swaps = i1 - 1
	}
	for i := 0; i <= f.S; i++ {
		spec := f.betaSpec(fmt.Sprintf("β%d", i), swaps, i, true, i1)
		out, err := run(spec)
		if err != nil {
			return nil, err
		}
		b.Specs = append(b.Specs, spec)
		b.Outcomes = append(b.Outcomes, out)
	}
	return b, nil
}

// TailsIndistinguishable verifies the Phase 2 keystone: R2's view is
// identical in the two modified tails, forcing equal returns.
func (b *BetaChain) TailsIndistinguishable() bool {
	return b.PrimeTail.ReadView("R2") == b.DoublePrimeTail.ReadView("R2")
}
