package chains

import "fmt"

// Link is one rung of the zigzag chain Z (Section 3.4): the horizontal link
// β_k ≈ temp_k ≈ γ_k and the diagonal link β_{k+1} ≈ temp′_k ≈ γ′_k, with
// γ_k ≈ γ′_k tying them together.
type Link struct {
	K int
	// Simple marks the k+1 = i1 special case, where the temp executions are
	// unnecessary (Sections 3.4.1/3.4.2, final paragraphs).
	Simple bool

	Temp, Gamma           *Outcome // horizontal: nil Temp when Simple
	TempPrime, GammaPrime *Outcome // diagonal: nil TempPrime when Simple

	// View-equality verdicts — the indistinguishability sources of Figs 4–7.
	HorizontalR1, HorizontalR2 bool // R1: β_k vs temp_k; R2: temp_k vs γ_k
	DiagonalR2, DiagonalR1     bool // R2: β_{k+1} vs temp′_k; R1: temp′_k vs γ′_k
	GammasAgree                bool // γ_k vs γ′_k, both readers
}

// ZigzagChain is the Phase 3 result.
type ZigzagChain struct {
	Critical int
	Links    []Link
}

// BuildZigzag constructs and runs the horizontal and diagonal links for
// every k ∈ [0, S-1], on top of a Phase 2 result.
func (f *Family) BuildZigzag(beta *BetaChain) (*ZigzagChain, error) {
	i1 := beta.Critical
	swaps := i1 // chain β inherited β″'s write swaps
	if beta.ChosePrime {
		swaps = i1 - 1
	}
	z := &ZigzagChain{Critical: i1}

	run := func(spec *Spec) (*Outcome, error) {
		out, err := spec.Run(f.NewServerFn())
		if err != nil {
			return nil, fmt.Errorf("chains: running %s: %w", spec.Name, err)
		}
		return out, nil
	}

	r1u, r2u := f.r1Unit(), f.r2Unit()
	lastR1 := r1u[len(r1u)-1]
	for k := 0; k <= f.S-1; k++ {
		link := Link{K: k, Simple: k+1 == i1}
		betaK := beta.Outcomes[k]
		betaK1 := beta.Outcomes[k+1]

		if link.Simple {
			// k+1 = i1: s_{k+1} already misses R2^(2); just let R1^(2) skip
			// it too.
			gSpec := f.betaSpec(fmt.Sprintf("γ%d", k), swaps, k, true, i1)
			gSpec.SkipUnit(k+1, r1u)
			g, err := run(gSpec)
			if err != nil {
				return nil, err
			}
			link.Gamma = g
			// R2 skips s_{k+1} in both β_k and γ_k, so it cannot see the
			// change to R1^(2).
			link.HorizontalR1 = true // no temp step in this case
			link.HorizontalR2 = betaK.ReadView("R2") == g.ReadView("R2")

			gpSpec := f.betaSpec(fmt.Sprintf("γ′%d", k), swaps, k+1, true, i1)
			gpSpec.SkipUnit(k+1, r1u)
			gp, err := run(gpSpec)
			if err != nil {
				return nil, err
			}
			link.GammaPrime = gp
			link.DiagonalR1 = true
			link.DiagonalR2 = betaK1.ReadView("R2") == gp.ReadView("R2")
			link.GammasAgree = g.ReadView("R1") == gp.ReadView("R1") &&
				g.ReadView("R2") == gp.ReadView("R2")
			z.Links = append(z.Links, link)
			continue
		}

		// Horizontal link: temp_k = β_k except R2^(2) skips s_{k+1} and is
		// delivered on s_i1 right after R1^(2) (Fig 5).
		tSpec := f.betaSpec(fmt.Sprintf("temp%d", k), swaps, k, true, i1)
		tSpec.SkipUnit(k+1, r2u)
		tSpec.DeliverUnitAfter(i1, r2u, lastR1)
		tOut, err := run(tSpec)
		if err != nil {
			return nil, err
		}
		link.Temp = tOut
		link.HorizontalR1 = betaK.ReadView("R1") == tOut.ReadView("R1")

		// γ_k = temp_k except R1^(2) skips s_{k+1}.
		gSpec := tSpec.Clone(fmt.Sprintf("γ%d", k))
		gSpec.SkipUnit(k+1, r1u)
		g, err := run(gSpec)
		if err != nil {
			return nil, err
		}
		link.Gamma = g
		link.HorizontalR2 = tOut.ReadView("R2") == g.ReadView("R2")

		// Diagonal link: temp′_k = β_{k+1} except R1^(2) skips s_{k+1}
		// (Fig 7). R2^(2) finishes first on s_{k+1} there, so R2 cannot
		// tell.
		tpSpec := f.betaSpec(fmt.Sprintf("temp′%d", k), swaps, k+1, true, i1)
		tpSpec.SkipUnit(k+1, r1u)
		tpOut, err := run(tpSpec)
		if err != nil {
			return nil, err
		}
		link.TempPrime = tpOut
		link.DiagonalR2 = betaK1.ReadView("R2") == tpOut.ReadView("R2")

		// γ′_k = temp′_k except R2^(2) skips s_{k+1} and is delivered on
		// s_i1 after R1^(2).
		gpSpec := tpSpec.Clone(fmt.Sprintf("γ′%d", k))
		gpSpec.SkipUnit(k+1, r2u)
		gpSpec.DeliverUnitAfter(i1, r2u, lastR1)
		gp, err := run(gpSpec)
		if err != nil {
			return nil, err
		}
		link.GammaPrime = gp
		link.DiagonalR1 = tpOut.ReadView("R1") == gp.ReadView("R1")

		link.GammasAgree = g.ReadView("R1") == gp.ReadView("R1") &&
			g.ReadView("R2") == gp.ReadView("R2")
		z.Links = append(z.Links, link)
	}
	return z, nil
}

// AllLinksHold reports whether every indistinguishability the proof
// constructs actually held in the runs — true for any protocol that only
// reacts to the messages it receives (i.e., anything in the model).
func (z *ZigzagChain) AllLinksHold() bool {
	for _, l := range z.Links {
		if !l.HorizontalR1 || !l.HorizontalR2 || !l.DiagonalR2 || !l.DiagonalR1 || !l.GammasAgree {
			return false
		}
	}
	return true
}
