package chains

import (
	"strings"
	"testing"

	"fastreg/internal/crucialinfo"
	"fastreg/internal/opkit"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/types"
)

// storeFactory builds max-value servers for interpreter tests.
func storeFactory(id types.ProcID) register.ServerLogic { return opkit.NewStoreServer(id) }

func writeMaker(name string, w, ts int, data string, need int) OpMaker {
	return OpMaker{Name: name, Rounds: 1, Make: func() register.Operation {
		v := types.Value{Tag: types.Tag{TS: int64(ts), WID: types.Writer(w)}, Data: data}
		return opkit.NewDirectWrite(types.Writer(w), v, need)
	}}
}

func readMaker(name string, r, need int) OpMaker {
	return OpMaker{Name: name, Rounds: 2, Make: func() register.Operation {
		return opkit.NewReadWriteBack(types.Reader(r), need)
	}}
}

func TestSpecRunSequentialBaseline(t *testing.T) {
	ops := []OpMaker{
		writeMaker("W1", 1, 1, "a", 2),
		readMaker("R1", 1, 2),
	}
	spec := NewSpec("base", 3, ops, []RT{{0, 1}, {1, 1}, {1, 2}})
	out, err := spec.Run(storeFactory)
	if err != nil {
		t.Fatal(err)
	}
	w := out.Result("W1")
	r := out.Result("R1")
	if !w.Done || !r.Done {
		t.Fatalf("not done: W1=%v R1=%v", w.Done, r.Done)
	}
	if r.Value.Data != "a" {
		t.Fatalf("R1 = %v", r.Value)
	}
	// All three servers replied to the skip-free read's first round.
	if len(r.Replies[1]) != 3 {
		t.Fatalf("R1 round-1 replies = %d", len(r.Replies[1]))
	}
	if len(out.History.Completed()) != 2 {
		t.Fatalf("history completed = %d", len(out.History.Completed()))
	}
}

func TestSpecSkipHidesServerFromClient(t *testing.T) {
	ops := []OpMaker{
		writeMaker("W1", 1, 1, "a", 2),
		readMaker("R1", 1, 2),
	}
	spec := NewSpec("skip", 3, ops, []RT{{0, 1}, {1, 1}, {1, 2}})
	spec.SkipAt(3, RT{1, 1})
	spec.SkipAt(3, RT{1, 2})
	out, err := spec.Run(storeFactory)
	if err != nil {
		t.Fatal(err)
	}
	r := out.Result("R1")
	if len(r.Replies[1]) != 2 {
		t.Fatalf("skipped server still replied: %d replies", len(r.Replies[1]))
	}
	for _, srv := range r.From[1] {
		if srv == 3 {
			t.Fatal("reply from skipped server")
		}
	}
	if !spec.Skips(3, RT{1, 1}) || spec.Skips(2, RT{1, 1}) {
		t.Error("Skips bookkeeping wrong")
	}
}

func TestSpecSwapDelaysWriteBehindLaterOp(t *testing.T) {
	// Swap W1/W2 at server 1 while W1 needs all three acks: its ack from s1
	// only arrives after W2's, so W1 completes late and the two writes
	// overlap in the recorded history.
	ops := []OpMaker{
		writeMaker("W1", 1, 5, "first", 3), // higher ts, needs every server
		writeMaker("W2", 2, 1, "second", 2),
	}
	spec := NewSpec("swap", 3, ops, []RT{{0, 1}, {1, 1}})
	spec.Swap(1, RT{0, 1}, RT{1, 1})
	out, err := spec.Run(storeFactory)
	if err != nil {
		t.Fatal(err)
	}
	h := out.History.Completed()
	if len(h) != 2 {
		t.Fatalf("completed = %d", len(h))
	}
	var w1, w2 = h[0], h[1]
	if w1.Client != types.Writer(1) {
		w1, w2 = w2, w1
	}
	if w1.Precedes(w2) {
		t.Error("swapped W1 must not real-time-precede W2 (it completed late)")
	}
}

func TestSpecDeliverAfterReinserts(t *testing.T) {
	ops := []OpMaker{
		writeMaker("W1", 1, 1, "a", 2),
		readMaker("R1", 1, 2),
	}
	spec := NewSpec("da", 3, ops, []RT{{0, 1}, {1, 1}, {1, 2}})
	spec.SkipAt(2, RT{1, 2})
	if !spec.Skips(2, RT{1, 2}) {
		t.Fatal("skip lost")
	}
	spec.DeliverAfter(2, RT{1, 2}, RT{1, 1})
	if spec.Skips(2, RT{1, 2}) {
		t.Fatal("DeliverAfter did not reinsert")
	}
	if _, err := spec.Run(storeFactory); err != nil {
		t.Fatal(err)
	}
}

func TestSpecSwapPanicsOnSkipped(t *testing.T) {
	ops := []OpMaker{writeMaker("W1", 1, 1, "a", 1), writeMaker("W2", 2, 1, "b", 1)}
	spec := NewSpec("x", 2, ops, []RT{{0, 1}, {1, 1}})
	spec.SkipAt(1, RT{0, 1})
	defer func() {
		if recover() == nil {
			t.Error("Swap of skipped round-trip must panic")
		}
	}()
	spec.Swap(1, RT{0, 1}, RT{1, 1})
}

func TestSpecRoundOutOfOrderRejected(t *testing.T) {
	ops := []OpMaker{readMaker("R1", 1, 2)}
	// Round 2 before round 1.
	spec := NewSpec("bad", 3, ops, []RT{{0, 2}, {0, 1}})
	if _, err := spec.Run(storeFactory); err == nil {
		t.Fatal("out-of-order rounds accepted")
	}
}

func TestSpecUnknownOpRejected(t *testing.T) {
	ops := []OpMaker{writeMaker("W1", 1, 1, "a", 1)}
	spec := NewSpec("bad", 2, ops, []RT{{5, 1}})
	if _, err := spec.Run(storeFactory); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestSpecDoubleBeginRejected(t *testing.T) {
	ops := []OpMaker{writeMaker("W1", 1, 1, "a", 1)}
	spec := NewSpec("bad", 2, ops, []RT{{0, 1}, {0, 1}})
	if _, err := spec.Run(storeFactory); err == nil {
		t.Fatal("double round-1 accepted")
	}
}

func TestSpecPendingWhenQuorumSkipped(t *testing.T) {
	// The write needs 2 replies but both servers skip it: it stays pending.
	ops := []OpMaker{writeMaker("W1", 1, 1, "a", 2)}
	spec := NewSpec("pend", 2, ops, []RT{{0, 1}})
	spec.SkipAt(1, RT{0, 1})
	spec.SkipAt(2, RT{0, 1})
	out, err := spec.Run(storeFactory)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result("W1").Done {
		t.Fatal("write completed without quorum")
	}
	if len(out.History.Pending()) != 1 {
		t.Fatalf("pending = %d", len(out.History.Pending()))
	}
}

func TestCloneIsDeep(t *testing.T) {
	ops := []OpMaker{writeMaker("W1", 1, 1, "a", 1), writeMaker("W2", 2, 1, "b", 1)}
	spec := NewSpec("orig", 2, ops, []RT{{0, 1}, {1, 1}})
	c := spec.Clone("copy")
	c.Swap(1, RT{0, 1}, RT{1, 1})
	if spec.Arrival[1][0] != (RT{0, 1}) {
		t.Fatal("Clone aliased arrival orders")
	}
	if c.Name != "copy" {
		t.Fatal("name not set")
	}
}

func TestReadViewStableAndDistinguishing(t *testing.T) {
	f, err := NewFamily(crucialinfo.New(), 3)
	if err != nil {
		t.Fatal(err)
	}
	spec1 := NewSpec("a", 3, f.ops(false), []RT{rtW1, rtW2, rtR1[1], rtR1[2]})
	out1, err := spec1.Run(f.NewServerFn())
	if err != nil {
		t.Fatal(err)
	}
	out1b, err := spec1.Run(f.NewServerFn())
	if err != nil {
		t.Fatal(err)
	}
	if out1.ReadView("R1") != out1b.ReadView("R1") {
		t.Error("same spec produced different views (nondeterminism)")
	}
	spec2 := spec1.Clone("b")
	spec2.Swap(1, rtW1, rtW2)
	out2, err := spec2.Run(f.NewServerFn())
	if err != nil {
		t.Fatal(err)
	}
	if out1.ReadView("R1") == out2.ReadView("R1") {
		t.Error("views must differ when a server's arrival order differs")
	}
	if !strings.Contains(out1.ReadView("R1"), "round1[") {
		t.Errorf("view format: %q", out1.ReadView("R1"))
	}
}

func TestFamilyValidation(t *testing.T) {
	if _, err := NewFamily(crucialinfo.New(), 2); err == nil {
		t.Error("S=2 accepted")
	}
	cfg := quorum.Config{S: 3, T: 1, R: 2, W: 2}
	_ = cfg
	// A two-round-write protocol is not a fast-write candidate.
	if _, err := NewFamily(twoRoundWriteProtocol{}, 3); err == nil {
		t.Error("W2 protocol accepted by the W1R2 argument")
	}
}

// twoRoundWriteProtocol is a stub failing the family validation.
type twoRoundWriteProtocol struct{}

func (twoRoundWriteProtocol) Name() string                       { return "stub" }
func (twoRoundWriteProtocol) WriteRounds() int                   { return 2 }
func (twoRoundWriteProtocol) ReadRounds() int                    { return 2 }
func (twoRoundWriteProtocol) Implementable(q quorum.Config) bool { return false }
func (twoRoundWriteProtocol) NewServer(id types.ProcID, _ quorum.Config) register.ServerLogic {
	return opkit.NewStoreServer(id)
}
func (twoRoundWriteProtocol) NewWriter(id types.ProcID, _ quorum.Config) register.Writer { return nil }
func (twoRoundWriteProtocol) NewReader(id types.ProcID, _ quorum.Config) register.Reader { return nil }
