package types

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestRoleString(t *testing.T) {
	cases := []struct {
		role Role
		want string
	}{
		{RoleServer, "s"},
		{RoleReader, "r"},
		{RoleWriter, "w"},
		{RoleInvalid, "?"},
		{Role(99), "?"},
	}
	for _, c := range cases {
		if got := c.role.String(); got != c.want {
			t.Errorf("Role(%d).String() = %q, want %q", c.role, got, c.want)
		}
	}
}

func TestProcIDString(t *testing.T) {
	cases := []struct {
		p    ProcID
		want string
	}{
		{Server(1), "s1"},
		{Reader(2), "r2"},
		{Writer(10), "w10"},
		{ProcID{}, "⊥"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.p, got, c.want)
		}
	}
}

func TestProcIDIsZero(t *testing.T) {
	if !(ProcID{}).IsZero() {
		t.Error("zero ProcID should report IsZero")
	}
	if Server(1).IsZero() {
		t.Error("Server(1) should not report IsZero")
	}
}

func TestProcIDLess(t *testing.T) {
	ordered := []ProcID{{}, Server(1), Server(2), Reader(1), Reader(3), Writer(1), Writer(2)}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Less(ordered[j])
			want := i < j
			if got != want {
				t.Errorf("%v.Less(%v) = %v, want %v", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestTagOrderBasics(t *testing.T) {
	a := Tag{TS: 1, WID: Writer(1)}
	b := Tag{TS: 1, WID: Writer(2)}
	c := Tag{TS: 2, WID: Writer(1)}
	if !a.Less(b) {
		t.Error("equal ts must break ties by writer ID")
	}
	if !b.Less(c) {
		t.Error("higher ts must dominate writer ID")
	}
	if a.Less(a) {
		t.Error("Less must be irreflexive")
	}
	if ZeroTag().Less(ZeroTag()) {
		t.Error("zero tag must not be less than itself")
	}
	if !ZeroTag().Less(a) {
		t.Error("zero tag must precede any written tag")
	}
}

func TestTagCompare(t *testing.T) {
	a := Tag{TS: 3, WID: Writer(1)}
	b := Tag{TS: 3, WID: Writer(2)}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Errorf("Compare inconsistent: %d %d %d", a.Compare(b), b.Compare(a), a.Compare(a))
	}
}

func randTag(r *rand.Rand) Tag {
	return Tag{TS: int64(r.Intn(5)), WID: Writer(1 + r.Intn(4))}
}

// Property: tag order is a strict total order (trichotomy + transitivity).
func TestTagOrderIsTotalProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randTag(r), randTag(r), randTag(r)
		// Trichotomy: exactly one of <, >, == holds.
		n := 0
		if a.Less(b) {
			n++
		}
		if b.Less(a) {
			n++
		}
		if a == b {
			n++
		}
		if n != 1 {
			return false
		}
		// Transitivity.
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: sorting by Less then scanning adjacent pairs never finds an
// inversion, and Compare agrees with Less.
func TestTagSortAgreesWithCompare(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tags := make([]Tag, 20)
		for i := range tags {
			tags[i] = randTag(r)
		}
		sort.Slice(tags, func(i, j int) bool { return tags[i].Less(tags[j]) })
		for i := 1; i < len(tags); i++ {
			if tags[i].Less(tags[i-1]) {
				return false
			}
			if tags[i-1].Compare(tags[i]) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueOrderAndInitial(t *testing.T) {
	init := InitialValue()
	if !init.IsInitial() {
		t.Error("InitialValue must report IsInitial")
	}
	v := Value{Tag: Tag{TS: 1, WID: Writer(1)}, Data: "x"}
	if v.IsInitial() {
		t.Error("written value must not be initial")
	}
	if !init.Less(v) {
		t.Error("initial value must precede any written value")
	}
	if v.Less(init) {
		t.Error("written value must not precede initial")
	}
}

func TestMaxValue(t *testing.T) {
	if got := MaxValue(); !got.IsInitial() {
		t.Errorf("MaxValue() = %v, want initial", got)
	}
	a := Value{Tag: Tag{TS: 1, WID: Writer(2)}, Data: "a"}
	b := Value{Tag: Tag{TS: 2, WID: Writer(1)}, Data: "b"}
	c := Value{Tag: Tag{TS: 2, WID: Writer(2)}, Data: "c"}
	if got := MaxValue(a, b, c); got != c {
		t.Errorf("MaxValue = %v, want %v", got, c)
	}
	if got := MaxValue(c, b, a); got != c {
		t.Errorf("MaxValue must be order-independent; got %v", got)
	}
}

// Property: MaxValue returns an element >= every input.
func TestMaxValueIsUpperBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vs := make([]Value, 1+r.Intn(10))
		for i := range vs {
			vs[i] = Value{Tag: randTag(r), Data: "d"}
		}
		m := MaxValue(vs...)
		for _, v := range vs {
			if m.Less(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpKindString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" || OpInvalid.String() != "invalid" {
		t.Error("OpKind.String mismatch")
	}
}

func TestValueString(t *testing.T) {
	if InitialValue().String() != "(0,⊥):∅" {
		t.Errorf("initial String = %q", InitialValue().String())
	}
	v := Value{Tag: Tag{TS: 3, WID: Writer(2)}, Data: "hello"}
	if v.String() != `(3,w2):"hello"` {
		t.Errorf("String = %q", v.String())
	}
}

func TestTagString(t *testing.T) {
	tag := Tag{TS: 7, WID: Writer(1)}
	if tag.String() != "(7,w1)" {
		t.Errorf("Tag.String = %q", tag.String())
	}
}
