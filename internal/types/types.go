// Package types defines the identifiers and timestamped values shared by all
// register protocols in this repository.
//
// The model follows Section 2.1 of Huang, Huang & Wei (PODC 2020): a system is
// three disjoint sets of processes — servers, readers and writers — and every
// written value is tagged with a pair (ts, wid) ordered lexicographically
// (Section 5.2), so that values from multiple writers are totally ordered.
package types

import (
	"fmt"
	"strconv"
)

// Role distinguishes the three disjoint process sets of the system model.
type Role uint8

// The three process roles. Servers hold replicas; readers and writers are
// clients. Roles start at 1 so the zero value is detectably invalid.
const (
	RoleInvalid Role = iota
	RoleServer
	RoleReader
	RoleWriter
)

// String returns the single-letter prefix used throughout the paper
// (s, r, w).
func (r Role) String() string {
	switch r {
	case RoleServer:
		return "s"
	case RoleReader:
		return "r"
	case RoleWriter:
		return "w"
	default:
		return "?"
	}
}

// ProcID identifies one process. It is comparable and usable as a map key.
// Index is 1-based to match the paper's s1..sS, r1..rR, w1..wW naming.
type ProcID struct {
	Role  Role
	Index int
}

// Server returns the ProcID of server s_i (1-based).
func Server(i int) ProcID { return ProcID{RoleServer, i} }

// Reader returns the ProcID of reader r_i (1-based).
func Reader(i int) ProcID { return ProcID{RoleReader, i} }

// Writer returns the ProcID of writer w_i (1-based).
func Writer(i int) ProcID { return ProcID{RoleWriter, i} }

// IsZero reports whether p is the zero ProcID (no process).
func (p ProcID) IsZero() bool { return p.Role == RoleInvalid && p.Index == 0 }

// String renders the paper's names: "s1", "r2", "w1".
func (p ProcID) String() string {
	if p.IsZero() {
		return "⊥"
	}
	return p.Role.String() + strconv.Itoa(p.Index)
}

// Less orders ProcIDs by (Role, Index). Writer IDs must be totally ordered
// for the lexicographic tag order of Section 5.2; this order also gives
// deterministic iteration elsewhere.
func (p ProcID) Less(q ProcID) bool {
	if p.Role != q.Role {
		return p.Role < q.Role
	}
	return p.Index < q.Index
}

// Tag is the version identifier (ts, wid) of a written value.
//
// Two tags are ordered by timestamp first and writer ID second:
// (ts1, w_i) < (ts2, w_j) iff ts1 < ts2 or (ts1 = ts2 and w_i < w_j).
// The two-round write of the multi-writer protocols guarantees that equal
// timestamps imply concurrent writes, so breaking ties by writer ID is safe
// (Section 5.2).
type Tag struct {
	TS  int64
	WID ProcID
}

// ZeroTag is the tag of the initial value (0, ⊥): no writer has written yet.
func ZeroTag() Tag { return Tag{TS: 0, WID: ProcID{}} }

// Less reports the strict lexicographic order on tags.
func (t Tag) Less(o Tag) bool {
	if t.TS != o.TS {
		return t.TS < o.TS
	}
	return t.WID.Less(o.WID)
}

// Equal reports tag equality.
func (t Tag) Equal(o Tag) bool { return t == o }

// Compare returns -1, 0, or +1 as t is less than, equal to, or greater
// than o.
func (t Tag) Compare(o Tag) int {
	switch {
	case t.Less(o):
		return -1
	case o.Less(t):
		return 1
	default:
		return 0
	}
}

// String renders "(ts,wid)".
func (t Tag) String() string { return fmt.Sprintf("(%d,%s)", t.TS, t.WID) }

// Value is a register value: a payload and the tag that versions it.
// Payload is a string so that values are comparable and map-keyable; the
// protocols never interpret it.
type Value struct {
	Tag  Tag
	Data string
}

// InitialValue is the register content before any write: tag (0, ⊥) and an
// empty payload.
func InitialValue() Value { return Value{Tag: ZeroTag()} }

// Less orders values by tag.
func (v Value) Less(o Value) bool { return v.Tag.Less(o.Tag) }

// Equal reports whether both tag and payload match.
func (v Value) Equal(o Value) bool { return v == o }

// IsInitial reports whether v carries the initial tag (0, ⊥).
func (v Value) IsInitial() bool { return v.Tag == ZeroTag() }

// String renders "(ts,wid):data".
func (v Value) String() string {
	if v.IsInitial() {
		return "(0,⊥):∅"
	}
	return fmt.Sprintf("%s:%q", v.Tag, v.Data)
}

// MaxValue returns the largest of vs by tag order, or the initial value if
// vs is empty.
func MaxValue(vs ...Value) Value {
	max := InitialValue()
	for _, v := range vs {
		if max.Less(v) {
			max = v
		}
	}
	return max
}

// OpKind distinguishes read and write operations in histories.
type OpKind uint8

// Operation kinds. Starting at 1 keeps the zero value invalid.
const (
	OpInvalid OpKind = iota
	OpRead
	OpWrite
)

// String returns "read" or "write".
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	default:
		return "invalid"
	}
}
