// Package netsim simulates the system model of Fig. 1: servers, readers and
// writers communicating over bidirectional reliable asynchronous channels,
// with no server-to-server communication, a discrete global clock the
// processes cannot access, and up to t server crashes.
//
// Three execution environments are provided:
//
//   - Sim: a deterministic discrete-event simulator driven by a virtual
//     clock. Message delays are arbitrary (asynchrony) but reproducible from
//     a seed; latency is measured in exact virtual time, so round-trip
//     counts — the quantity the paper reasons about — translate directly
//     into latency shapes.
//   - Live (live.go): a goroutine-per-server network exercising the same
//     protocol code under real concurrency, for race-detector coverage.
//     One Live cluster hosts exactly one register.
//   - MultiLive (multilive.go): the multiplexed production-shaped runtime.
//     One fixed fleet of server goroutines serves every key: each replica
//     owns a sharded key → server-state map (lazily populated, per-shard
//     locking), drains its inbox in batches, and routes by the key-tagged
//     proto.Envelope. Goroutine count is O(servers), not O(keys × servers);
//     crashing a server kills it for all keys at once.
package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"fastreg/internal/history"
	"fastreg/internal/proto"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/types"
	"fastreg/internal/vclock"
)

// DelayFn computes the one-way delay of a message. Returning vclock.Never
// models the paper's skip: the message is delayed past the end of the
// execution.
type DelayFn func(from, to types.ProcID, rng *rand.Rand) vclock.Duration

// ConstDelay returns a DelayFn with a fixed one-way delay.
func ConstDelay(d vclock.Duration) DelayFn {
	return func(_, _ types.ProcID, _ *rand.Rand) vclock.Duration { return d }
}

// UniformDelay returns a DelayFn drawing uniformly from [lo, hi].
func UniformDelay(lo, hi vclock.Duration) DelayFn {
	if hi < lo {
		panic("netsim: UniformDelay hi < lo")
	}
	return func(_, _ types.ProcID, rng *rand.Rand) vclock.Duration {
		return lo + vclock.Duration(rng.Int63n(int64(hi-lo)+1))
	}
}

// Skip wraps a DelayFn so that messages between client c and server s (both
// directions) are never delivered — the paper's "round-trip skips server s"
// made permanent for the pair.
func Skip(base DelayFn, c, s types.ProcID) DelayFn {
	return func(from, to types.ProcID, rng *rand.Rand) vclock.Duration {
		if (from == c && to == s) || (from == s && to == c) {
			return vclock.Never
		}
		return base(from, to, rng)
	}
}

// event is one scheduled action. Events with equal time fire in scheduling
// order (seq), keeping runs deterministic.
type event struct {
	at  vclock.Time
	seq int64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }
func (q eventQueue) peek() *event  { return q[0] }

var _ heap.Interface = (*eventQueue)(nil)

// Horizon is the virtual time beyond which events are considered
// undeliverable within the execution; skipped messages land past it.
const Horizon vclock.Time = vclock.Time(vclock.Never) / 2

// Stats summarizes a run.
type Stats struct {
	Delivered     int // messages delivered
	DroppedCrash  int // requests dropped at crashed servers
	Undeliverable int // events beyond the horizon (skips)
	Completed     int // operations that responded
}

// Sim is the deterministic discrete-event simulator.
type Sim struct {
	cfg      quorum.Config
	protocol register.Protocol

	servers map[types.ProcID]register.ServerLogic
	writers map[types.ProcID]register.Writer
	readers map[types.ProcID]register.Reader

	clock *vclock.Clock
	rec   *history.Recorder
	delay DelayFn
	rng   *rand.Rand

	queue   eventQueue
	seq     int64
	now     vclock.Time
	crashAt map[types.ProcID]vclock.Time
	opSeq   map[types.ProcID]uint64
	runs    []*opRun
	stats   Stats
	tracef  func(format string, args ...any)
}

// Option configures a Sim.
type Option func(*Sim)

// WithDelay sets the message delay model (default: constant 10).
func WithDelay(d DelayFn) Option { return func(s *Sim) { s.delay = d } }

// WithSeed seeds the simulator's RNG (default 1).
func WithSeed(seed int64) Option {
	return func(s *Sim) { s.rng = rand.New(rand.NewSource(seed)) }
}

// WithTrace installs a trace sink (e.g. t.Logf) for message-level traces.
func WithTrace(f func(format string, args ...any)) Option {
	return func(s *Sim) { s.tracef = f }
}

// New builds a cluster: cfg.S servers, cfg.W writers and cfg.R readers of
// the given protocol.
func New(cfg quorum.Config, p register.Protocol, opts ...Option) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	clock := &vclock.Clock{}
	s := &Sim{
		cfg:      cfg,
		protocol: p,
		servers:  make(map[types.ProcID]register.ServerLogic, cfg.S),
		writers:  make(map[types.ProcID]register.Writer, cfg.W),
		readers:  make(map[types.ProcID]register.Reader, cfg.R),
		clock:    clock,
		rec:      history.NewRecorder(clock),
		delay:    ConstDelay(10),
		rng:      rand.New(rand.NewSource(1)),
		crashAt:  make(map[types.ProcID]vclock.Time),
		opSeq:    make(map[types.ProcID]uint64),
	}
	for _, o := range opts {
		o(s)
	}
	for i := 1; i <= cfg.S; i++ {
		id := types.Server(i)
		s.servers[id] = p.NewServer(id, cfg)
	}
	for i := 1; i <= cfg.W; i++ {
		id := types.Writer(i)
		s.writers[id] = p.NewWriter(id, cfg)
	}
	for i := 1; i <= cfg.R; i++ {
		id := types.Reader(i)
		s.readers[id] = p.NewReader(id, cfg)
	}
	return s, nil
}

// MustNew is New that panics on error, for tests and examples.
func MustNew(cfg quorum.Config, p register.Protocol, opts ...Option) *Sim {
	s, err := New(cfg, p, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the cluster shape.
func (s *Sim) Config() quorum.Config { return s.cfg }

// Protocol returns the protocol under simulation.
func (s *Sim) Protocol() register.Protocol { return s.protocol }

// Writer returns writer w_i.
func (s *Sim) Writer(i int) register.Writer { return s.writers[types.Writer(i)] }

// Reader returns reader r_i.
func (s *Sim) Reader(i int) register.Reader { return s.readers[types.Reader(i)] }

// Server returns the logic of server s_i (for inspection in tests).
func (s *Sim) Server(i int) register.ServerLogic { return s.servers[types.Server(i)] }

// Now returns the current virtual time.
func (s *Sim) Now() vclock.Time { return s.now }

// History returns a snapshot of the execution so far. Pending two-round
// writes have their recorded argument refreshed (the tag is assigned after
// round 1), so reads of in-flight values stay matchable by the checker.
func (s *Sim) History() history.History {
	for _, run := range s.runs {
		if !run.done {
			s.rec.UpdateValue(run.key, run.op.Arg())
		}
	}
	return s.rec.History()
}

// Stats returns delivery statistics.
func (s *Sim) Stats() Stats { return s.stats }

// CrashServer makes server id stop replying from virtual time at onward.
// It models the crash-failure model of Section 2.1: a crashed server
// silently drops every subsequent request.
func (s *Sim) CrashServer(id types.ProcID, at vclock.Time) {
	if id.Role != types.RoleServer {
		panic("netsim: CrashServer on non-server " + id.String())
	}
	if old, ok := s.crashAt[id]; !ok || at < old {
		s.crashAt[id] = at
	}
}

// Crashed reports whether id is crashed at time t.
func (s *Sim) crashed(id types.ProcID, t vclock.Time) bool {
	at, ok := s.crashAt[id]
	return ok && t >= at
}

func (s *Sim) schedule(at vclock.Time, fn func()) {
	s.seq++
	heap.Push(&s.queue, &event{at: at, seq: s.seq, fn: fn})
}

func (s *Sim) trace(format string, args ...any) {
	if s.tracef != nil {
		s.tracef("[t=%d] "+format, append([]any{s.now}, args...)...)
	}
}

// opRun tracks one in-flight operation.
type opRun struct {
	op       register.Operation
	key      string
	roundSeq int
	need     int
	replies  []register.Reply
	got      map[types.ProcID]bool
	done     bool
	onDone   func(types.Value, error)
}

// InvokeAt schedules operation op to start at virtual time at. onDone (may
// be nil) fires when the operation responds; it runs inside the event loop,
// so it may invoke follow-up operations.
func (s *Sim) InvokeAt(at vclock.Time, op register.Operation, onDone func(types.Value, error)) {
	s.schedule(at, func() { s.startOp(op, onDone) })
}

func (s *Sim) nextOpID(client types.ProcID) uint64 {
	s.opSeq[client]++
	return s.opSeq[client]
}

func (s *Sim) startOp(op register.Operation, onDone func(types.Value, error)) {
	key := s.rec.Invoke(op.Client(), s.nextOpID(op.Client()), op.Kind(), op.Arg())
	run := &opRun{op: op, key: key, onDone: onDone}
	s.runs = append(s.runs, run)
	s.trace("%s invokes %s", op.Client(), key)
	s.broadcast(run, op.Begin())
}

func (s *Sim) broadcast(run *opRun, r register.Round) {
	run.roundSeq++
	run.need = r.Need
	run.replies = run.replies[:0]
	run.got = make(map[types.ProcID]bool, s.cfg.S)
	round := run.roundSeq
	client := run.op.Client()
	for i := 1; i <= s.cfg.S; i++ {
		srv := types.Server(i)
		d := s.delay(client, srv, s.rng)
		at := s.now.Add(d)
		s.schedule(at, func() { s.deliverRequest(run, round, srv, r.Payload) })
	}
}

func (s *Sim) deliverRequest(run *opRun, round int, srv types.ProcID, payload proto.Message) {
	if s.now >= Horizon {
		s.stats.Undeliverable++
		return
	}
	if s.crashed(srv, s.now) {
		s.stats.DroppedCrash++
		s.trace("%s drops %s (crashed)", srv, payload)
		return
	}
	s.stats.Delivered++
	client := run.op.Client()
	reply := s.servers[srv].Handle(client, payload)
	s.trace("%s handles %s from %s, replies %v", srv, payload, client, reply)
	if reply == nil {
		return
	}
	d := s.delay(srv, client, s.rng)
	s.schedule(s.now.Add(d), func() { s.deliverReply(run, round, srv, reply) })
}

func (s *Sim) deliverReply(run *opRun, round int, srv types.ProcID, reply proto.Message) {
	if s.now >= Horizon {
		s.stats.Undeliverable++
		return
	}
	if run.done || round != run.roundSeq || run.got[srv] {
		return // stale round, duplicate, or already-finished op
	}
	s.stats.Delivered++
	run.got[srv] = true
	run.replies = append(run.replies, register.Reply{From: srv, Msg: reply})
	if len(run.replies) < run.need {
		return
	}
	next, res, done, err := run.op.Next(run.replies)
	switch {
	case err != nil:
		run.done = true
		s.rec.Respond(run.key, types.Value{}, err)
		s.stats.Completed++
		if run.onDone != nil {
			run.onDone(types.Value{}, err)
		}
	case done:
		run.done = true
		s.rec.Respond(run.key, res, nil)
		s.stats.Completed++
		s.trace("%s responds %s = %s", run.op.Client(), run.key, res)
		if run.onDone != nil {
			run.onDone(res, nil)
		}
	default:
		s.broadcast(run, *next)
	}
}

// Run processes events until the queue is empty or only undeliverable
// (post-horizon) events remain. It returns the statistics of the run.
func (s *Sim) Run() Stats {
	for len(s.queue) > 0 {
		if s.queue.peek().at >= Horizon {
			// Everything left is a skipped message: the execution is over.
			s.stats.Undeliverable += len(s.queue)
			s.queue = s.queue[:0]
			break
		}
		e := heap.Pop(&s.queue).(*event)
		s.now = e.at
		s.clock.AdvanceTo(e.at)
		e.fn()
	}
	return s.stats
}

// RunUntil processes events with time < deadline, leaving later events
// queued. Useful for injecting crashes or new operations mid-execution.
func (s *Sim) RunUntil(deadline vclock.Time) Stats {
	for len(s.queue) > 0 && s.queue.peek().at < deadline {
		if s.queue.peek().at >= Horizon {
			break
		}
		e := heap.Pop(&s.queue).(*event)
		s.now = e.at
		s.clock.AdvanceTo(e.at)
		e.fn()
	}
	if s.now < deadline {
		s.now = deadline
		s.clock.AdvanceTo(deadline)
	}
	return s.stats
}

// QueueLen reports the number of pending events (for tests).
func (s *Sim) QueueLen() int { return len(s.queue) }

// ServerValues returns each server's current maximal value, for inspection.
func (s *Sim) ServerValues() map[types.ProcID]types.Value {
	out := make(map[types.ProcID]types.Value, len(s.servers))
	for id, logic := range s.servers {
		out[id] = logic.CurrentValue()
	}
	return out
}

// String describes the simulator state briefly.
func (s *Sim) String() string {
	return fmt.Sprintf("netsim.Sim{%s proto=%s now=%d pending=%d}", s.cfg, s.protocol.Name(), s.now, len(s.queue))
}
