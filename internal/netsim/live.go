package netsim

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"fastreg/internal/history"
	"fastreg/internal/proto"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/types"
	"fastreg/internal/vclock"
)

// ErrLiveClosed is returned by Exec after the cluster shut down.
var ErrLiveClosed = errors.New("netsim: live cluster closed")

// Live runs the same protocol code over real goroutines: one goroutine per
// server, channels as the bidirectional reliable links of Fig 1, and
// blocking client calls. It exists to exercise the protocols under genuine
// concurrency (and the race detector); latency experiments use Sim instead.
type Live struct {
	cfg      quorum.Config
	protocol register.Protocol

	writers map[types.ProcID]register.Writer
	readers map[types.ProcID]register.Reader

	inboxes map[types.ProcID]chan liveRequest
	gates   map[types.ProcID]*crashGate

	clock *vclock.Clock
	rec   *history.Recorder
	opSeq sync.Map // types.ProcID → *uint64

	wire   bool
	wg     sync.WaitGroup
	closed chan struct{}
	once   sync.Once
}

// LiveOption configures a Live cluster.
type LiveOption func(*Live)

// WithWireEncoding makes every request and reply pass through the binary
// codec (encode → decode) before delivery, exercising the wire format end
// to end exactly as a TCP transport would.
func WithWireEncoding() LiveOption { return func(l *Live) { l.wire = true } }

type liveRequest struct {
	from    types.ProcID
	payload proto.Message
	reply   chan<- register.Reply
}

// NewLive builds and starts the goroutine-per-server cluster.
func NewLive(cfg quorum.Config, p register.Protocol, opts ...LiveOption) (*Live, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	clock := &vclock.Clock{}
	l := &Live{
		cfg:      cfg,
		protocol: p,
		writers:  make(map[types.ProcID]register.Writer, cfg.W),
		readers:  make(map[types.ProcID]register.Reader, cfg.R),
		inboxes:  make(map[types.ProcID]chan liveRequest, cfg.S),
		gates:    make(map[types.ProcID]*crashGate, cfg.S),
		clock:    clock,
		rec:      history.NewRecorder(clock),
		closed:   make(chan struct{}),
	}
	for _, o := range opts {
		o(l)
	}
	for i := 1; i <= cfg.W; i++ {
		id := types.Writer(i)
		l.writers[id] = p.NewWriter(id, cfg)
	}
	for i := 1; i <= cfg.R; i++ {
		id := types.Reader(i)
		l.readers[id] = p.NewReader(id, cfg)
	}
	for i := 1; i <= cfg.S; i++ {
		id := types.Server(i)
		logic := p.NewServer(id, cfg)
		inbox := make(chan liveRequest, 64)
		l.inboxes[id] = inbox
		l.gates[id] = &crashGate{}
		l.wg.Add(1)
		go l.serve(logic, inbox)
	}
	return l, nil
}

// serve is the server goroutine: it serializes Handle calls, which keeps
// the protocol's server state single-threaded exactly as in the model.
func (l *Live) serve(logic register.ServerLogic, inbox <-chan liveRequest) {
	defer l.wg.Done()
	for {
		select {
		case <-l.closed:
			return
		case req, ok := <-inbox:
			if !ok {
				return
			}
			payload := req.payload
			if l.wire {
				var err error
				payload, err = l.codecPass(req.from, logic.ID(), payload, false)
				if err != nil {
					continue // a corrupt frame is dropped like a lost message
				}
			}
			m := logic.Handle(req.from, payload)
			if m == nil {
				continue
			}
			if l.wire {
				var err error
				m, err = l.codecPass(logic.ID(), req.from, m, true)
				if err != nil {
					continue
				}
			}
			select {
			case req.reply <- register.Reply{From: logic.ID(), Msg: m}:
			case <-l.closed:
				return
			}
		}
	}
}

// Writer returns writer w_i.
func (l *Live) Writer(i int) register.Writer { return l.writers[types.Writer(i)] }

// Reader returns reader r_i.
func (l *Live) Reader(i int) register.Reader { return l.readers[types.Reader(i)] }

// History returns the execution recorded so far.
func (l *Live) History() history.History { return l.rec.History() }

// Crash stops server s_i: every subsequent request is silently dropped,
// like a crashed process. The crash gate's write side waits out in-flight
// sends before closing the inbox, so closing never races a send; requests
// already counted as sent are still drained and answered.
func (l *Live) Crash(i int) {
	id := types.Server(i)
	g, ok := l.gates[id]
	if !ok {
		panic("netsim: Crash of unknown server " + id.String())
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.crashed {
		g.crashed = true
		close(l.inboxes[id])
	}
}

func (l *Live) nextOpID(client types.ProcID) uint64 {
	v, _ := l.opSeq.LoadOrStore(client, new(uint64))
	ctr := v.(*uint64)
	// Each client is sequential (well-formed histories), so no atomics are
	// needed per client; sync.Map handles cross-client access.
	*ctr++
	return *ctr
}

// Exec runs one operation to completion, blocking the calling goroutine.
// Each client must call Exec sequentially (well-formedness); different
// clients may call concurrently.
func (l *Live) Exec(op register.Operation) (types.Value, error) {
	return l.ExecCtx(context.Background(), op)
}

// ExecCtx is Exec with a deadline: when ctx expires before a reply quorum
// arrives (e.g. more than t servers have crashed), the operation is
// abandoned with register.ErrTimeout and recorded as failed — its effect
// at the servers is indeterminate.
func (l *Live) ExecCtx(ctx context.Context, op register.Operation) (types.Value, error) {
	select {
	case <-l.closed:
		return types.Value{}, ErrLiveClosed
	default:
	}
	key := l.rec.Invoke(op.Client(), l.nextOpID(op.Client()), op.Kind(), op.Arg())
	fail := func(err error) (types.Value, error) {
		l.rec.RespondFailed(key, op.Kind(), op.Arg(), err)
		return types.Value{}, err
	}
	round := op.Begin()
	for {
		replyCh := make(chan register.Reply, l.cfg.S)
		sent := 0
		for i := 1; i <= l.cfg.S; i++ {
			req := liveRequest{from: op.Client(), payload: round.Payload, reply: replyCh}
			sent += l.trySend(types.Server(i), req)
		}
		if sent < round.Need {
			return fail(fmt.Errorf("%w: only %d of %d required servers reachable", register.ErrProtocol, sent, round.Need))
		}
		replies := make([]register.Reply, 0, round.Need)
		for len(replies) < round.Need {
			// Expiry wins deterministically over ready replies: an
			// already-cancelled ctx never completes the operation.
			if ctx.Err() != nil {
				return fail(fmt.Errorf("%w: %v", register.ErrTimeout, ctx.Err()))
			}
			select {
			case <-l.closed:
				return fail(ErrLiveClosed)
			case <-ctx.Done():
				return fail(fmt.Errorf("%w: %v", register.ErrTimeout, ctx.Err()))
			case rep := <-replyCh:
				replies = append(replies, rep)
			}
		}
		next, res, done, err := op.Next(replies)
		switch {
		case err != nil:
			return fail(err)
		case done:
			l.rec.Respond(key, res, nil)
			return res, nil
		default:
			round = *next
		}
	}
}

// codecPass encodes the message into the wire format and decodes it back —
// the byte-level journey a real transport would give it. A Live cluster
// hosts a single register, so the envelope's key tag stays empty.
func (l *Live) codecPass(from, to types.ProcID, m proto.Message, isReply bool) (proto.Message, error) {
	return codecPass(from, to, "", m, isReply)
}

// trySend delivers the request to the server's inbox under the crash
// gate's read side. Returns 1 on success, 0 if the server is crashed or
// the cluster shut down.
func (l *Live) trySend(id types.ProcID, req liveRequest) int {
	g := l.gates[id]
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.crashed {
		return 0
	}
	select {
	case l.inboxes[id] <- req:
		return 1
	case <-l.closed:
		return 0
	}
}

// Close shuts the cluster down and waits for the server goroutines.
func (l *Live) Close() {
	l.once.Do(func() { close(l.closed) })
	l.wg.Wait()
}
