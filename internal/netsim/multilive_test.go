package netsim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"fastreg/internal/atomicity"
	"fastreg/internal/mwabd"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/w2r1"
)

func newMulti(t *testing.T, cfg quorum.Config, p register.Protocol, opts ...MultiOption) *MultiLive {
	t.Helper()
	m, err := NewMultiLive(cfg, p, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func TestMultiLiveBasic(t *testing.T) {
	m := newMulti(t, cfg521(), mwabd.New())
	w, err := m.Write(context.Background(), "k", 1, "hello")
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Read(context.Background(), "k", 1)
	if err != nil {
		t.Fatal(err)
	}
	if r != w {
		t.Fatalf("read %v, wrote %v", r, w)
	}
	if res := atomicity.Check(m.History("k")); !res.Atomic {
		t.Fatalf("non-atomic: %v", res)
	}
}

func TestMultiLiveKeysAreIndependent(t *testing.T) {
	m := newMulti(t, cfg521(), mwabd.New())
	if _, err := m.Write(context.Background(), "a", 1, "va"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Write(context.Background(), "b", 2, "vb"); err != nil {
		t.Fatal(err)
	}
	va, err := m.Read(context.Background(), "a", 1)
	if err != nil || va.Data != "va" {
		t.Fatalf("a = %v err=%v", va, err)
	}
	vb, err := m.Read(context.Background(), "b", 2)
	if err != nil || vb.Data != "vb" {
		t.Fatalf("b = %v err=%v", vb, err)
	}
	if got := m.Keys(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Keys = %v", got)
	}
	// A key never written reads the initial value.
	v, err := m.Read(context.Background(), "nope", 1)
	if err != nil || !v.IsInitial() {
		t.Fatalf("unwritten key = %v err=%v", v, err)
	}
}

func TestMultiLiveServerStateSharded(t *testing.T) {
	// Every touched key materializes protocol state on every reachable
	// server, found via the same shard partition the handlers use.
	m := newMulti(t, cfg521(), mwabd.New(), WithMultiShards(4))
	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for i, k := range keys {
		if _, err := m.Write(context.Background(), k, 1, fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	cfg := m.Config()
	for i, k := range keys {
		stored := 0
		for s := 1; s <= cfg.S; s++ {
			v, ok := m.ServerValue(k, s)
			if !ok {
				continue
			}
			if v.Data == fmt.Sprintf("v%d", i) {
				stored++
			}
		}
		// A completed write reached at least a reply quorum of servers.
		if stored < cfg.ReplyQuorum() {
			t.Fatalf("key %q stored on %d servers, want ≥ %d", k, stored, cfg.ReplyQuorum())
		}
	}
	// Untouched servers/keys report no state.
	if _, ok := m.ServerValue("never-written", 1); ok {
		t.Fatal("state materialized for an untouched key")
	}
}

func TestMultiLiveWireEncoding(t *testing.T) {
	// The key-tagged envelope must survive the full encode → decode pass
	// on every request and reply.
	m := newMulti(t, cfg521(), mwabd.New(), WithMultiWireEncoding())
	for _, k := range []string{"users:alice", "config/flags", ""} {
		if _, err := m.Write(context.Background(), k, 1, "wired-"+k); err != nil {
			t.Fatalf("key %q: %v", k, err)
		}
		v, err := m.Read(context.Background(), k, 1)
		if err != nil || v.Data != "wired-"+k {
			t.Fatalf("key %q: read %v err=%v", k, v, err)
		}
	}
}

func TestMultiLiveCrashKillsServerForAllKeys(t *testing.T) {
	cfg := quorum.Config{S: 5, T: 1, R: 2, W: 2}
	m := newMulti(t, cfg, mwabd.New())
	for i := 0; i < 5; i++ {
		if _, err := m.Write(context.Background(), fmt.Sprintf("k%d", i), 1, "pre"); err != nil {
			t.Fatal(err)
		}
	}
	m.Crash(3)
	// One crash is within t: every key (old and new) still serves.
	for i := 0; i < 5; i++ {
		if _, err := m.Read(context.Background(), fmt.Sprintf("k%d", i), 1); err != nil {
			t.Fatalf("post-crash read k%d: %v", i, err)
		}
	}
	if _, err := m.Write(context.Background(), "fresh", 2, "post"); err != nil {
		t.Fatalf("post-crash write: %v", err)
	}
	// Crashing beyond t makes quorums unreachable for every key at once.
	m.Crash(1)
	if _, err := m.Write(context.Background(), "k0", 1, "too-late"); !errors.Is(err, register.ErrProtocol) {
		t.Fatalf("write with t+1 crashes: err = %v, want ErrProtocol", err)
	}
	if _, err := m.Read(context.Background(), "another-fresh", 1); !errors.Is(err, register.ErrProtocol) {
		t.Fatalf("read with t+1 crashes: err = %v, want ErrProtocol", err)
	}
}

func TestMultiLiveClientValidationAndClose(t *testing.T) {
	m := newMulti(t, cfg521(), mwabd.New())
	if _, err := m.Write(context.Background(), "k", 0, "v"); err == nil {
		t.Error("writer 0 accepted")
	}
	if _, err := m.Write(context.Background(), "k", 99, "v"); err == nil {
		t.Error("writer out of range accepted")
	}
	if _, err := m.Read(context.Background(), "k", 99); err == nil {
		t.Error("reader out of range accepted")
	}
	m.Close()
	if _, err := m.Write(context.Background(), "k", 1, "v"); !errors.Is(err, ErrLiveClosed) {
		t.Fatalf("write after close: %v", err)
	}
	m.Close() // idempotent
}

// TestMultiLiveStressManyKeys is the -race stress test of the multiplexed
// runtime: many keys × concurrent readers and writers × a mid-run server
// crash, with every per-key history checked for atomicity afterwards.
func TestMultiLiveStressManyKeys(t *testing.T) {
	const (
		nKeys  = 24
		nOps   = 12
		server = 4 // crashed mid-run
	)
	for _, tc := range []struct {
		name string
		p    register.Protocol
		cfg  quorum.Config
	}{
		{"W2R2", mwabd.New(), quorum.Config{S: 5, T: 1, R: 3, W: 3}},
		{"W2R1", w2r1.New(), quorum.Config{S: 9, T: 1, R: 3, W: 3}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			m := newMulti(t, tc.cfg, tc.p, WithMultiShards(8))
			var wg sync.WaitGroup
			crash := make(chan struct{})
			for c := 1; c <= tc.cfg.W; c++ {
				c := c
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < nOps; i++ {
						key := fmt.Sprintf("key-%02d", (c*7+i*5)%nKeys)
						if _, err := m.Write(context.Background(), key, c, fmt.Sprintf("w%d-%d", c, i)); err != nil {
							t.Errorf("write: %v", err)
							return
						}
						if c == 1 && i == nOps/2 {
							close(crash)
						}
					}
				}()
			}
			for c := 1; c <= tc.cfg.R; c++ {
				c := c
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < nOps; i++ {
						key := fmt.Sprintf("key-%02d", (c*3+i*11)%nKeys)
						if _, err := m.Read(context.Background(), key, c); err != nil {
							t.Errorf("read: %v", err)
							return
						}
					}
				}()
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-crash
				m.Crash(server)
			}()
			wg.Wait()
			checked := 0
			for key, h := range m.Histories() {
				if err := h.WellFormed(); err != nil {
					t.Fatalf("key %q: %v", key, err)
				}
				if res := atomicity.Check(h); !res.Atomic {
					t.Fatalf("key %q non-atomic: %v\n%s", key, res, h)
				}
				checked++
			}
			if checked == 0 {
				t.Fatal("no histories recorded")
			}
		})
	}
}

// TestMultiLiveGoroutineFootprint pins the tentpole claim: the goroutine
// count of the multiplexed runtime is O(servers), independent of keys.
func TestMultiLiveGoroutineFootprint(t *testing.T) {
	cfg := quorum.Config{S: 5, T: 1, R: 1, W: 1}
	before := runtime.NumGoroutine()
	m := newMulti(t, cfg, mwabd.New(), WithMultiServerWorkers(2))
	for i := 0; i < 100; i++ {
		if _, err := m.Write(context.Background(), fmt.Sprintf("key-%03d", i), 1, "v"); err != nil {
			t.Fatal(err)
		}
	}
	during := runtime.NumGoroutine()
	fleet := cfg.S * 2 // servers × workers
	if during > before+fleet+3 {
		t.Fatalf("goroutines grew with keys: before=%d during=%d fleet=%d", before, during, fleet)
	}
	if len(m.Keys()) != 100 {
		t.Fatalf("keys = %d", len(m.Keys()))
	}
}

func TestMultiLiveSingleWorkerSerial(t *testing.T) {
	// One worker per server degenerates to Live's fully serialized loop;
	// correctness must be identical.
	m := newMulti(t, cfg521(), mwabd.New(), WithMultiServerWorkers(1), WithMultiShards(1))
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("k%d", i%2)
		if _, err := m.Write(context.Background(), k, 1+i%2, fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Read(context.Background(), k, 1); err != nil {
			t.Fatal(err)
		}
	}
	for key, h := range m.Histories() {
		if res := atomicity.Check(h); !res.Atomic {
			t.Fatalf("key %q: %v", key, res)
		}
	}
}
