package netsim

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fastreg/internal/history"
	"fastreg/internal/proto"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/shard"
	"fastreg/internal/types"
	"fastreg/internal/vclock"
)

// Multiplexed-runtime defaults. Shards bound lock contention between keys
// that hash together; workers bound how many batches one server replica
// processes concurrently; the batch cap bounds how much of the inbox one
// drain may claim.
const (
	DefaultShards        = shard.Default
	DefaultServerWorkers = 4
	maxBatch             = 32
)

// MultiLive is the multiplexed counterpart of Live: one fixed fleet of
// server goroutines serves *every* key. Where Live dedicates a full cluster
// to a single register, MultiLive gives each server replica a sharded
// key → register.ServerLogic map (lazily populated on first touch), so the
// goroutine count stays O(servers · workers) no matter how many keys exist.
//
// Requests carry their key in the key-tagged proto.Envelope; a server
// worker drains its inbox in batches, groups the batch by shard, and
// handles each group under that shard's lock — which serializes the
// protocol's per-key server state exactly as the model requires (a key
// lives in exactly one shard) while letting distinct keys proceed in
// parallel. Crashing a server closes its one inbox, killing it for every
// key at once.
//
// Per-key histories are recorded independently; atomicity is a per-key
// (per-register) property, and by locality the composition is atomic.
type MultiLive struct {
	cfg      quorum.Config
	protocol register.Protocol

	wire    bool
	shards  int
	workers int

	// Eviction (off unless WithMultiEviction): epoch counts sweep ticks;
	// key accesses stamp the current epoch, the sweeper evicts keys whose
	// stamp is two ticks old.
	evictTTL time.Duration
	epoch    atomic.Int64

	inboxes map[types.ProcID]chan multiRequest
	servers map[types.ProcID]*multiServer
	gates   map[types.ProcID]*crashGate

	keyShards []*keyShard

	wg     sync.WaitGroup
	closed chan struct{}
	once   sync.Once
}

// MultiOption configures a MultiLive cluster.
type MultiOption func(*MultiLive)

// WithMultiShards sets the number of shards each server partitions its
// key space into (default DefaultShards).
func WithMultiShards(n int) MultiOption {
	return func(m *MultiLive) {
		if n > 0 {
			m.shards = n
		}
	}
}

// WithMultiServerWorkers sets how many worker goroutines drain each
// server's inbox (default DefaultServerWorkers). One worker degenerates to
// Live's fully serialized server loop.
func WithMultiServerWorkers(n int) MultiOption {
	return func(m *MultiLive) {
		if n > 0 {
			m.workers = n
		}
	}
}

// WithMultiWireEncoding passes every request and reply through the binary
// codec — including the envelope's key tag — exactly as a TCP transport
// multiplexing all keys over one connection would.
func WithMultiWireEncoding() MultiOption { return func(m *MultiLive) { m.wire = true } }

// WithMultiEviction enables the idle-key sweep: every ttl, keys untouched
// for at least one full ttl window (and at most two) are evicted — their
// per-key protocol state is removed from every server's shard map AND the
// client-side registry in one step, so a long-running process serving a
// churning key population stops growing without bound.
//
// Eviction gives the store TTL-expiry semantics (Redis EXPIRE, Cassandra
// TTL): an evicted key reads as never-written again, and its recorded
// history is discarded (Histories no longer includes it). Keys with an
// operation in flight are never evicted, and because client and server
// state go together, the protocol invariants (e.g. timestamp monotonicity
// within a key's lifetime) are preserved across eviction epochs. Choose a
// ttl far above operation latency; ttl must be positive.
func WithMultiEviction(ttl time.Duration) MultiOption {
	return func(m *MultiLive) {
		if ttl > 0 {
			m.evictTTL = ttl
		}
	}
}

// crashGate coordinates crashing a server with in-flight sends: senders
// hold the read side while they send, Crash takes the write side to flip
// the flag and close the inbox. Closing therefore never races a send, and
// a message that was counted as sent is guaranteed to sit in the inbox
// buffer, which the workers drain before exiting — so no operation waits
// for a reply that can never come.
type crashGate struct {
	mu      sync.RWMutex
	crashed bool
}

// multiRequest is one key-tagged message in flight to a server. The shard
// index is computed once by the client, so the server path never hashes.
// st backlinks to the key's client state so the worker can retire the
// message from the eviction bookkeeping once it has been handled.
type multiRequest struct {
	key     string
	shard   int
	from    types.ProcID
	payload proto.Message
	reply   chan<- register.Reply
	st      *keyState
}

// multiServer is one replica's state: the key space partitioned into
// shards. The replica's workers all share it; the shard mutex both guards
// the map and serializes Handle per key.
type multiServer struct {
	id     types.ProcID
	shards []*regShard
}

type regShard struct {
	mu   sync.Mutex
	regs map[string]register.ServerLogic
}

// keyShard is one shard of the client-side registry: per-key clients,
// recorder and operation sequence numbers.
type keyShard struct {
	mu sync.Mutex
	m  map[string]*keyState
}

// keyState is everything client-side that exists once per key: the
// writer/reader protocol state machines (they carry persistent local state,
// e.g. the ABD timestamp counter or Algorithm 1's valQueue), the key's
// history recorder with its own clock, and per-client op counters.
type keyState struct {
	mu      sync.Mutex
	writers map[types.ProcID]register.Writer
	readers map[types.ProcID]register.Reader
	opSeq   map[types.ProcID]*uint64
	rec     *history.Recorder

	// Eviction bookkeeping. active counts in-flight operations (incremented
	// under the keyShard lock, decremented when the op finishes); inflight
	// counts the key's messages sitting in server inboxes — an operation
	// can complete with a quorum while its request to a slow server is
	// still queued, and evicting then would let the straggler resurrect
	// pre-eviction server state. lastEpoch is the sweep epoch of the most
	// recent acquire (keyShard lock).
	active    atomic.Int64
	inflight  atomic.Int64
	lastEpoch int64
}

// NewMultiLive builds and starts the shared server fleet.
func NewMultiLive(cfg quorum.Config, p register.Protocol, opts ...MultiOption) (*MultiLive, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &MultiLive{
		cfg:      cfg,
		protocol: p,
		shards:   DefaultShards,
		workers:  DefaultServerWorkers,
		inboxes:  make(map[types.ProcID]chan multiRequest, cfg.S),
		servers:  make(map[types.ProcID]*multiServer, cfg.S),
		gates:    make(map[types.ProcID]*crashGate, cfg.S),
		closed:   make(chan struct{}),
	}
	for _, o := range opts {
		o(m)
	}
	m.keyShards = make([]*keyShard, m.shards)
	for i := range m.keyShards {
		m.keyShards[i] = &keyShard{m: make(map[string]*keyState)}
	}
	for i := 1; i <= cfg.S; i++ {
		id := types.Server(i)
		sv := &multiServer{id: id, shards: make([]*regShard, m.shards)}
		for j := range sv.shards {
			sv.shards[j] = &regShard{regs: make(map[string]register.ServerLogic)}
		}
		inbox := make(chan multiRequest, 64*m.workers)
		m.servers[id] = sv
		m.inboxes[id] = inbox
		m.gates[id] = &crashGate{}
		for w := 0; w < m.workers; w++ {
			m.wg.Add(1)
			go m.serveMulti(sv, inbox)
		}
	}
	if m.evictTTL > 0 {
		m.wg.Add(1)
		go m.sweeper()
	}
	return m, nil
}

// sweeper ticks the eviction epoch every TTL and evicts what went idle.
func (m *MultiLive) sweeper() {
	defer m.wg.Done()
	t := time.NewTicker(m.evictTTL)
	defer t.Stop()
	for {
		select {
		case <-m.closed:
			return
		case <-t.C:
			m.Sweep()
		}
	}
}

// Sweep advances the eviction epoch and evicts every key that has no
// operation in flight and was untouched for a full epoch: its protocol
// state is deleted from every server shard and from the client registry
// under the key-shard lock, so no new operation can slip in between. It
// returns the number of keys evicted. The TTL sweeper calls this on its
// tick; tests and embedding servers may call it directly (it is
// meaningful even without WithMultiEviction).
func (m *MultiLive) Sweep() int {
	cutoff := m.epoch.Add(1) - 2
	evicted := 0
	for si, ks := range m.keyShards {
		ks.mu.Lock()
		for key, st := range ks.m {
			// Skip keys with an operation running, a message still queued
			// in some server inbox (a straggler from a completed op would
			// otherwise resurrect pre-eviction server state after the
			// delete), or a touch inside the idle window.
			if st.active.Load() != 0 || st.inflight.Load() != 0 || st.lastEpoch > cutoff {
				continue
			}
			// A key's server-side state lives at the same shard index on
			// every replica (same hash, same shard count); dropping it
			// together with the client state resets the key atomically —
			// the acquire path can't run concurrently (it needs ks.mu).
			for _, sv := range m.servers {
				sh := sv.shards[si]
				sh.mu.Lock()
				delete(sh.regs, key)
				sh.mu.Unlock()
			}
			delete(ks.m, key)
			evicted++
		}
		ks.mu.Unlock()
	}
	return evicted
}

// shardOf maps a key to its shard index (same partition on every server and
// in the client registry, so a key's state is always found in one place —
// and the same function the transport layer uses, via internal/shard).
func (m *MultiLive) shardOf(key string) int { return shard.Index(key, m.shards) }

// serveMulti is one server worker: it drains the replica's inbox in
// batches and hands each batch over, shard group by shard group.
func (m *MultiLive) serveMulti(sv *multiServer, inbox <-chan multiRequest) {
	defer m.wg.Done()
	batch := make([]multiRequest, 0, maxBatch)
	msgs := make([]proto.Message, maxBatch) // worker-owned reply scratch
	for {
		select {
		case <-m.closed:
			return
		case req, ok := <-inbox:
			if !ok {
				return
			}
			batch = batch[:0]
			batch = append(batch, req)
		drain:
			// Opportunistically drain what already queued up: one lock
			// acquisition then serves every request that hashed to the same
			// shard in this batch.
			for len(batch) < maxBatch {
				select {
				case r, ok := <-inbox:
					if !ok {
						break drain
					}
					batch = append(batch, r)
				default:
					break drain
				}
			}
			m.handleBatch(sv, batch, msgs)
		}
	}
}

// handleBatch sorts the drained requests into runs of equal shard (stable,
// preserving arrival order per key) and handles each run under a single
// acquisition of its shard lock — the batching payoff.
func (m *MultiLive) handleBatch(sv *multiServer, batch []multiRequest, msgs []proto.Message) {
	if len(batch) > 1 {
		sort.SliceStable(batch, func(i, j int) bool { return batch[i].shard < batch[j].shard })
	}
	for start := 0; start < len(batch); {
		end := start + 1
		for end < len(batch) && batch[end].shard == batch[start].shard {
			end++
		}
		m.handleGroup(sv, sv.shards[batch[start].shard], batch[start:end], msgs[start:end])
		start = end
	}
}

// handleGroup runs one shard's run of requests: the wire codec pass happens
// outside the lock, the per-key server logic (lazily instantiated) runs for
// the whole group under one shard-lock acquisition, and replies are sent
// after release.
func (m *MultiLive) handleGroup(sv *multiServer, sh *regShard, reqs []multiRequest, msgs []proto.Message) {
	if m.wire {
		for i := range reqs {
			p, err := codecPass(reqs[i].from, sv.id, reqs[i].key, reqs[i].payload, false)
			if err != nil {
				p = nil // a corrupt frame is dropped like a lost message
			}
			reqs[i].payload = p
		}
	}
	sh.mu.Lock()
	for i := range reqs {
		if reqs[i].payload == nil {
			msgs[i] = nil
			continue
		}
		logic, ok := sh.regs[reqs[i].key]
		if !ok {
			logic = m.protocol.NewServer(sv.id, m.cfg)
			sh.regs[reqs[i].key] = logic
		}
		msgs[i] = logic.Handle(reqs[i].from, reqs[i].payload)
	}
	sh.mu.Unlock()
	// Retire the handled messages only after releasing the shard lock: a
	// sweep that then observes inflight == 0 will re-acquire the lock and
	// so delete any state these messages just touched, never the reverse.
	for i := range reqs {
		if reqs[i].st != nil {
			reqs[i].st.inflight.Add(-1)
		}
	}
	for i := range reqs {
		msg := msgs[i]
		if msg == nil {
			continue
		}
		if m.wire {
			var err error
			msg, err = codecPass(sv.id, reqs[i].from, reqs[i].key, msg, true)
			if err != nil {
				continue
			}
		}
		select {
		case reqs[i].reply <- register.Reply{From: sv.id, Msg: msg}:
		case <-m.closed:
			return
		}
	}
}

// state returns (creating if necessary) the client-side state for key,
// stamped into the current eviction epoch with an in-flight operation
// registered — the caller (exec) releases it. Holding ks.mu for the
// lookup+register makes acquisition atomic against Sweep.
func (m *MultiLive) state(key string) *keyState {
	ks := m.keyShards[m.shardOf(key)]
	ks.mu.Lock()
	defer ks.mu.Unlock()
	st, ok := ks.m[key]
	if !ok {
		st = &keyState{
			writers: make(map[types.ProcID]register.Writer),
			readers: make(map[types.ProcID]register.Reader),
			opSeq:   make(map[types.ProcID]*uint64),
			rec:     history.NewRecorder(&vclock.Clock{}),
		}
		ks.m[key] = st
	}
	st.lastEpoch = m.epoch.Load()
	st.active.Add(1)
	return st
}

func (st *keyState) writer(m *MultiLive, id types.ProcID) register.Writer {
	st.mu.Lock()
	defer st.mu.Unlock()
	w, ok := st.writers[id]
	if !ok {
		w = m.protocol.NewWriter(id, m.cfg)
		st.writers[id] = w
	}
	return w
}

func (st *keyState) reader(m *MultiLive, id types.ProcID) register.Reader {
	st.mu.Lock()
	defer st.mu.Unlock()
	r, ok := st.readers[id]
	if !ok {
		r = m.protocol.NewReader(id, m.cfg)
		st.readers[id] = r
	}
	return r
}

func (st *keyState) nextOpID(client types.ProcID) uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	ctr, ok := st.opSeq[client]
	if !ok {
		ctr = new(uint64)
		st.opSeq[client] = ctr
	}
	// Each client is sequential per key (well-formed histories), so the
	// shared lock only arbitrates cross-client access.
	*ctr++
	return *ctr
}

// Write stores data under key as writer w_i (1-based), blocking until the
// protocol's write completes. Each (key, writer) pair must be used
// sequentially; everything else may run concurrently.
func (m *MultiLive) Write(key string, writer int, data string) (types.Value, error) {
	return m.WriteCtx(context.Background(), key, writer, data)
}

// WriteCtx is Write with a deadline: when ctx expires before a reply
// quorum arrives (e.g. more than t servers have crashed), the operation is
// abandoned with register.ErrTimeout and recorded as failed — its effect
// at the servers is indeterminate.
func (m *MultiLive) WriteCtx(ctx context.Context, key string, writer int, data string) (types.Value, error) {
	if writer < 1 || writer > m.cfg.W {
		return types.Value{}, fmt.Errorf("netsim: writer %d out of range [1,%d]", writer, m.cfg.W)
	}
	st := m.state(key)
	return m.exec(ctx, st, key, st.writer(m, types.Writer(writer)).WriteOp(data))
}

// Read reads key as reader r_i (1-based).
func (m *MultiLive) Read(key string, reader int) (types.Value, error) {
	return m.ReadCtx(context.Background(), key, reader)
}

// ReadCtx is Read with a deadline; see WriteCtx.
func (m *MultiLive) ReadCtx(ctx context.Context, key string, reader int) (types.Value, error) {
	if reader < 1 || reader > m.cfg.R {
		return types.Value{}, fmt.Errorf("netsim: reader %d out of range [1,%d]", reader, m.cfg.R)
	}
	st := m.state(key)
	return m.exec(ctx, st, key, st.reader(m, types.Reader(reader)).ReadOp())
}

// exec drives one operation over the shared fleet — the same round engine
// as Live.Exec, with every message tagged by key. It releases the
// in-flight registration state() took.
func (m *MultiLive) exec(ctx context.Context, st *keyState, key string, op register.Operation) (types.Value, error) {
	defer st.active.Add(-1)
	select {
	case <-m.closed:
		return types.Value{}, ErrLiveClosed
	default:
	}
	hkey := st.rec.Invoke(op.Client(), st.nextOpID(op.Client()), op.Kind(), op.Arg())
	fail := func(err error) (types.Value, error) {
		st.rec.RespondFailed(hkey, op.Kind(), op.Arg(), err)
		return types.Value{}, err
	}
	round := op.Begin()
	shard := m.shardOf(key)
	for {
		replyCh := make(chan register.Reply, m.cfg.S)
		sent := 0
		for i := 1; i <= m.cfg.S; i++ {
			req := multiRequest{key: key, shard: shard, from: op.Client(), payload: round.Payload, reply: replyCh, st: st}
			// Register the message before it can be consumed, un-register
			// if it was never sent — the worker retires delivered ones.
			st.inflight.Add(1)
			if m.trySend(types.Server(i), req) == 1 {
				sent++
			} else {
				st.inflight.Add(-1)
			}
		}
		if sent < round.Need {
			return fail(fmt.Errorf("%w: only %d of %d required servers reachable", register.ErrProtocol, sent, round.Need))
		}
		replies := make([]register.Reply, 0, round.Need)
		for len(replies) < round.Need {
			// Expiry wins deterministically over ready replies: an
			// already-cancelled ctx never completes the operation.
			if ctx.Err() != nil {
				return fail(fmt.Errorf("%w: %v", register.ErrTimeout, ctx.Err()))
			}
			select {
			case <-m.closed:
				return fail(ErrLiveClosed)
			case <-ctx.Done():
				return fail(fmt.Errorf("%w: %v", register.ErrTimeout, ctx.Err()))
			case rep := <-replyCh:
				replies = append(replies, rep)
			}
		}
		next, res, done, err := op.Next(replies)
		switch {
		case err != nil:
			return fail(err)
		case done:
			st.rec.Respond(hkey, res, nil)
			return res, nil
		default:
			round = *next
		}
	}
}

// trySend delivers the request to the server's inbox under the crash
// gate's read side. Returns 1 on success, 0 if the server is crashed or
// the cluster shut down. The send may block (backpressure from a full
// inbox); the workers keep draining, so it always completes.
func (m *MultiLive) trySend(id types.ProcID, req multiRequest) int {
	g := m.gates[id]
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.crashed {
		return 0
	}
	select {
	case m.inboxes[id] <- req:
		return 1
	case <-m.closed:
		return 0
	}
}

// Crash stops server s_i for every key at once — the whole point of the
// multiplexed runtime: one closed inbox fails the replica of every
// register it hosts, with no per-key bookkeeping. The gate's write side
// waits out in-flight sends, so already-counted requests are still in the
// buffer and get handled; everything after is silently dropped, like a
// crashed process.
func (m *MultiLive) Crash(i int) {
	id := types.Server(i)
	g, ok := m.gates[id]
	if !ok {
		panic("netsim: Crash of unknown server " + id.String())
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.crashed {
		g.crashed = true
		close(m.inboxes[id])
	}
}

// History returns the execution recorded so far for one key.
func (m *MultiLive) History(key string) history.History {
	ks := m.keyShards[m.shardOf(key)]
	ks.mu.Lock()
	st, ok := ks.m[key]
	ks.mu.Unlock()
	if !ok {
		return history.History{}
	}
	return st.rec.History()
}

// Histories returns a snapshot of every key's recorded execution.
func (m *MultiLive) Histories() map[string]history.History {
	out := make(map[string]history.History)
	for _, ks := range m.keyShards {
		ks.mu.Lock()
		states := make(map[string]*keyState, len(ks.m))
		for k, st := range ks.m {
			states[k] = st
		}
		ks.mu.Unlock()
		for k, st := range states {
			out[k] = st.rec.History()
		}
	}
	return out
}

// Keys returns the keys touched so far, sorted.
func (m *MultiLive) Keys() []string {
	var out []string
	for _, ks := range m.keyShards {
		ks.mu.Lock()
		for k := range ks.m {
			out = append(out, k)
		}
		ks.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// ServerValue inspects the value server s_i currently stores for key
// (tests and traces only; protocol code never calls it). ok is false when
// the server has no state for the key yet.
func (m *MultiLive) ServerValue(key string, i int) (types.Value, bool) {
	sv, found := m.servers[types.Server(i)]
	if !found {
		return types.Value{}, false
	}
	sh := sv.shards[m.shardOf(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	logic, ok := sh.regs[key]
	if !ok {
		return types.Value{}, false
	}
	return logic.CurrentValue(), true
}

// Config returns the cluster shape.
func (m *MultiLive) Config() quorum.Config { return m.cfg }

// Close shuts the fleet down and waits for all server workers.
func (m *MultiLive) Close() {
	m.once.Do(func() { close(m.closed) })
	m.wg.Wait()
}

// codecPass encodes a message into the key-tagged wire envelope and decodes
// it back — the byte-level journey a real multiplexing transport would give
// it. Shared by Live (key = "") and MultiLive.
func codecPass(from, to types.ProcID, key string, msg proto.Message, isReply bool) (proto.Message, error) {
	b, err := proto.Encode(proto.Envelope{From: from, To: to, Key: key, IsReply: isReply, Payload: msg})
	if err != nil {
		return nil, err
	}
	env, _, err := proto.Decode(b)
	if err != nil {
		return nil, err
	}
	return env.Payload, nil
}
