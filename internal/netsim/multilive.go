package netsim

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fastreg/internal/history"
	"fastreg/internal/keyreg"
	"fastreg/internal/obs"
	"fastreg/internal/proto"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/shard"
	"fastreg/internal/types"
)

// Multiplexed-runtime defaults. Shards bound lock contention between keys
// that hash together; workers bound how many batches one server replica
// processes concurrently; the batch cap bounds how much of the inbox one
// drain may claim.
const (
	DefaultShards        = shard.Default
	DefaultServerWorkers = 4
	maxBatch             = 32
)

// MultiLive is the multiplexed counterpart of Live: one fixed fleet of
// server goroutines serves *every* key. Where Live dedicates a full cluster
// to a single register, MultiLive gives each server replica a sharded
// key → register.ServerLogic map (lazily populated on first touch), so the
// goroutine count stays O(servers · workers) no matter how many keys exist.
//
// Requests carry their key in the key-tagged proto.Envelope; a server
// worker drains its inbox in batches, groups the batch by shard, and
// handles each group under that shard's lock — which serializes the
// protocol's per-key server state exactly as the model requires (a key
// lives in exactly one shard) while letting distinct keys proceed in
// parallel. Crashing a server closes its one inbox, killing it for every
// key at once.
//
// Both sharded per-key registries — the client side (writers/readers,
// op counters, recorders) and each replica's key → server-logic map —
// are the shared keyreg implementations, the same ones the transport
// layer deploys over real sockets.
//
// Per-key histories are recorded independently; atomicity is a per-key
// (per-register) property, and by locality the composition is atomic.
//
// MultiLive satisfies kv.Backend: Write and Read are context-first, and
// Crash/Histories/Keys/Close complete the store seam.
type MultiLive struct {
	cfg      quorum.Config
	protocol register.Protocol

	wire    bool
	shards  int
	workers int

	// evictTTL (off unless WithMultiEviction) drives the sweeper; the
	// eviction epoch itself lives in the client registry.
	evictTTL time.Duration

	// Audit capture hooks (both off by default): opCapture observes every
	// completed client operation, serverCapture every request a replica
	// handles — the in-process counterparts of the transport layer's
	// WithOpCapture / WithServerCapture, so a single-process store can
	// produce the same trace logs a deployed fleet does.
	opCapture     func(key string, op history.Op)
	serverCapture func(server types.ProcID, env proto.Envelope, reply proto.Message, seq uint64)

	inboxes map[types.ProcID]chan multiRequest
	servers map[types.ProcID]*multiServer
	gates   map[types.ProcID]*crashGate

	creg *keyreg.ClientRegistry

	// Observability (nil when disabled — WithMultiObs). om records under
	// the SAME "client.<protocol>.*" names the transport client uses, so
	// the in-process and TCP backends' numbers are directly comparable;
	// batchFanin mirrors the replica-side "server.batch_fanin".
	obsReg     *obs.Registry
	om         *obs.OpMetrics
	batchFanin *obs.Histogram

	wg     sync.WaitGroup
	closed chan struct{}
	once   sync.Once
}

// MultiOption configures a MultiLive cluster.
type MultiOption func(*MultiLive)

// WithMultiShards sets the number of shards each server partitions its
// key space into (default DefaultShards).
func WithMultiShards(n int) MultiOption {
	return func(m *MultiLive) {
		if n > 0 {
			m.shards = n
		}
	}
}

// WithMultiServerWorkers sets how many worker goroutines drain each
// server's inbox (default DefaultServerWorkers). One worker degenerates to
// Live's fully serialized server loop.
func WithMultiServerWorkers(n int) MultiOption {
	return func(m *MultiLive) {
		if n > 0 {
			m.workers = n
		}
	}
}

// WithMultiWireEncoding passes every request and reply through the binary
// codec — including the envelope's key tag — exactly as a TCP transport
// multiplexing all keys over one connection would.
func WithMultiWireEncoding() MultiOption { return func(m *MultiLive) { m.wire = true } }

// WithMultiEviction enables the idle-key sweep: every ttl, keys untouched
// for at least one full ttl window (and at most two) are evicted — their
// per-key protocol state is removed from every server's shard map AND the
// client-side registry in one step, so a long-running process serving a
// churning key population stops growing without bound.
//
// Eviction gives the store TTL-expiry semantics (Redis EXPIRE, Cassandra
// TTL): an evicted key reads as never-written again, and its recorded
// history is discarded (Histories no longer includes it). Keys with an
// operation in flight are never evicted, and because client and server
// state go together, the protocol invariants (e.g. timestamp monotonicity
// within a key's lifetime) are preserved across eviction epochs. Choose a
// ttl far above operation latency; ttl must be positive.
func WithMultiEviction(ttl time.Duration) MultiOption {
	return func(m *MultiLive) {
		if ttl > 0 {
			m.evictTTL = ttl
		}
	}
}

// WithMultiOpCapture streams every operation the cluster completes (or
// fails) into fn, keyed by the register it ran against — the client half
// of the audit capture layer (see internal/audit). fn runs under the
// key recorder's lock; keep it brief. Do not combine with
// WithMultiEviction: evicting a key resets its history clock, which
// corrupts the trace log's time domain (fastreg.Open rejects the
// combination at the public surface).
func WithMultiOpCapture(fn func(key string, op history.Op)) MultiOption {
	return func(m *MultiLive) { m.opCapture = fn }
}

// WithMultiServerCapture streams every request each in-process replica
// handles (with the reply it produced, nil for none) into fn — the
// replica half of the audit capture layer. fn runs on the server worker
// goroutines after the shard lock is released; per-key order within a
// batch is handle order, and the merge engine does not rely on order
// across batches. The in-process path bypasses the registry's handled
// counter, so seq is always zero here — the served-value cross-check
// skips unordered records.
func WithMultiServerCapture(fn func(server types.ProcID, env proto.Envelope, reply proto.Message, seq uint64)) MultiOption {
	return func(m *MultiLive) { m.serverCapture = fn }
}

// WithMultiObs wires the in-process fleet into an observability
// registry. Client-side operation metrics register under the same
// "client.<protocol>.*" names transport.WithClientObs uses — that name
// identity is what makes an in-process run's /metrics directly
// comparable with a deployed fleet's. Replica-side, each server gets
// pull gauges for its inbox depth and busy workers
// ("server.s<i>.inbox_depth", "server.s<i>.busy_workers") plus the
// shared "server.batch_fanin" drain-size histogram. A nil registry
// disables everything here.
func WithMultiObs(reg *obs.Registry) MultiOption {
	return func(m *MultiLive) { m.obsReg = reg }
}

// crashGate coordinates crashing a server with in-flight sends: senders
// hold the read side while they send, Crash takes the write side to flip
// the flag and close the inbox. Closing therefore never races a send, and
// a message that was counted as sent is guaranteed to sit in the inbox
// buffer, which the workers drain before exiting — so no operation waits
// for a reply that can never come.
type crashGate struct {
	mu      sync.RWMutex
	crashed bool
}

// multiRequest is one key-tagged message in flight to a server. The shard
// index is computed once by the client, so the server path never hashes.
// st backlinks to the key's client state so the worker can retire the
// message from the eviction bookkeeping once it has been handled.
type multiRequest struct {
	key     string
	shard   int
	from    types.ProcID
	opID    uint64 // client-local per-key operation number (capture metadata)
	round   uint8  // round-trip index within the operation
	payload proto.Message
	reply   chan<- register.Reply
	st      *keyreg.ClientState
}

// multiServer is one replica's state: the key space partitioned into
// shards by the shared keyreg.ServerRegistry. The replica's workers all
// share it; the shard mutex both guards the map and serializes Handle per
// key.
type multiServer struct {
	id  types.ProcID
	reg *keyreg.ServerRegistry

	// busy counts workers currently inside handleBatch; maintained only
	// when observability is on, read by the "server.s<i>.busy_workers"
	// pull gauge.
	busy atomic.Int64
}

// NewMultiLive builds and starts the shared server fleet.
func NewMultiLive(cfg quorum.Config, p register.Protocol, opts ...MultiOption) (*MultiLive, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &MultiLive{
		cfg:      cfg,
		protocol: p,
		shards:   DefaultShards,
		workers:  DefaultServerWorkers,
		inboxes:  make(map[types.ProcID]chan multiRequest, cfg.S),
		servers:  make(map[types.ProcID]*multiServer, cfg.S),
		gates:    make(map[types.ProcID]*crashGate, cfg.S),
		closed:   make(chan struct{}),
	}
	for _, o := range opts {
		o(m)
	}
	m.creg = keyreg.NewClientRegistry(m.shards)
	if m.opCapture != nil {
		m.creg.SetCapture(m.opCapture)
	}
	// Metrics settle before any worker goroutine starts (serveMulti reads
	// batchFanin), so the hot path never races construction.
	if m.obsReg != nil {
		m.om = obs.NewOpMetrics(m.obsReg, "client."+p.Name())
		m.batchFanin = m.obsReg.Histogram("server.batch_fanin")
	}
	for i := 1; i <= cfg.S; i++ {
		id := types.Server(i)
		sv := &multiServer{id: id, reg: keyreg.NewServerRegistry(m.shards, func() register.ServerLogic {
			return p.NewServer(id, cfg)
		})}
		inbox := make(chan multiRequest, 64*m.workers)
		m.servers[id] = sv
		m.inboxes[id] = inbox
		m.gates[id] = &crashGate{}
		if m.obsReg != nil {
			m.obsReg.GaugeFunc(fmt.Sprintf("server.s%d.inbox_depth", i),
				func() int64 { return int64(len(inbox)) })
			m.obsReg.GaugeFunc(fmt.Sprintf("server.s%d.busy_workers", i), sv.busy.Load)
		}
		for w := 0; w < m.workers; w++ {
			m.wg.Add(1)
			go m.serveMulti(sv, inbox)
		}
	}
	if m.evictTTL > 0 {
		m.wg.Add(1)
		go m.sweeper()
	}
	return m, nil
}

// sweeper ticks the eviction epoch every TTL and evicts what went idle.
func (m *MultiLive) sweeper() {
	defer m.wg.Done()
	t := time.NewTicker(m.evictTTL)
	defer t.Stop()
	for {
		select {
		case <-m.closed:
			return
		case <-t.C:
			m.Sweep()
		}
	}
}

// Sweep advances the eviction epoch and evicts every key that has no
// operation in flight and was untouched for a full epoch: its protocol
// state is deleted from every server shard and from the client registry
// under the key-shard lock, so no new operation can slip in between. It
// returns the number of keys evicted. The TTL sweeper calls this on its
// tick; tests and embedding servers may call it directly (it is
// meaningful even without WithMultiEviction).
func (m *MultiLive) Sweep() int {
	return m.creg.Sweep(func(si int, key string) {
		// A key's server-side state lives at the same shard index on
		// every replica (same hash, same shard count); dropping it
		// together with the client state resets the key atomically —
		// the acquire path can't run concurrently (it needs the client
		// shard's lock, which the sweep holds).
		for _, sv := range m.servers {
			sh := sv.reg.Shard(si)
			sh.Lock()
			sh.DeleteLocked(key)
			sh.Unlock()
		}
	})
}

// shardOf maps a key to its shard index (same partition on every server and
// in the client registry, so a key's state is always found in one place —
// and the same function the transport layer uses, via internal/shard).
func (m *MultiLive) shardOf(key string) int { return shard.Index(key, m.shards) }

// serveMulti is one server worker: it drains the replica's inbox in
// batches and hands each batch over, shard group by shard group.
func (m *MultiLive) serveMulti(sv *multiServer, inbox <-chan multiRequest) {
	defer m.wg.Done()
	batch := make([]multiRequest, 0, maxBatch)
	msgs := make([]proto.Message, maxBatch) // worker-owned reply scratch
	for {
		select {
		case <-m.closed:
			return
		case req, ok := <-inbox:
			if !ok {
				return
			}
			batch = batch[:0]
			batch = append(batch, req)
		drain:
			// Opportunistically drain what already queued up: one lock
			// acquisition then serves every request that hashed to the same
			// shard in this batch.
			for len(batch) < maxBatch {
				select {
				case r, ok := <-inbox:
					if !ok {
						break drain
					}
					batch = append(batch, r)
				default:
					break drain
				}
			}
			m.batchFanin.Observe(int64(len(batch)))
			if m.obsReg != nil {
				sv.busy.Add(1)
			}
			m.handleBatch(sv, batch, msgs)
			if m.obsReg != nil {
				sv.busy.Add(-1)
			}
		}
	}
}

// handleBatch sorts the drained requests into runs of equal shard (stable,
// preserving arrival order per key) and handles each run under a single
// acquisition of its shard lock — the batching payoff.
func (m *MultiLive) handleBatch(sv *multiServer, batch []multiRequest, msgs []proto.Message) {
	if len(batch) > 1 {
		sort.SliceStable(batch, func(i, j int) bool { return batch[i].shard < batch[j].shard })
	}
	for start := 0; start < len(batch); {
		end := start + 1
		for end < len(batch) && batch[end].shard == batch[start].shard {
			end++
		}
		m.handleGroup(sv, sv.reg.Shard(batch[start].shard), batch[start:end], msgs[start:end])
		start = end
	}
}

// handleGroup runs one shard's run of requests: the wire codec pass happens
// outside the lock, the per-key server logic (lazily instantiated) runs for
// the whole group under one shard-lock acquisition, and replies are sent
// after release — strictly after the capture flush, which is what keeps
// the audit layer's durable-before-visible contract.
//
//lint:captureflush
func (m *MultiLive) handleGroup(sv *multiServer, sh *keyreg.ServerShard, reqs []multiRequest, msgs []proto.Message) {
	if m.wire {
		for i := range reqs {
			p, err := codecPass(reqs[i].from, sv.id, reqs[i].key, reqs[i].payload, false)
			if err != nil {
				p = nil // a corrupt frame is dropped like a lost message
			}
			reqs[i].payload = p
		}
	}
	sh.Lock()
	for i := range reqs {
		if reqs[i].payload == nil {
			msgs[i] = nil
			continue
		}
		msgs[i] = sh.GetLocked(reqs[i].key).Logic.Handle(reqs[i].from, reqs[i].payload)
	}
	sh.Unlock()
	// Retire the handled messages only after releasing the shard lock: a
	// sweep that then observes inflight == 0 will re-acquire the lock and
	// so delete any state these messages just touched, never the reverse.
	for i := range reqs {
		if reqs[i].st != nil {
			reqs[i].st.Inflight.Add(-1)
		}
	}
	if m.serverCapture != nil {
		for i := range reqs {
			if reqs[i].payload == nil {
				continue // corrupt wire frame, dropped above
			}
			m.serverCapture(sv.id, proto.Envelope{
				From:    reqs[i].from,
				To:      sv.id,
				Key:     reqs[i].key,
				OpID:    reqs[i].opID,
				Round:   reqs[i].round,
				Payload: reqs[i].payload,
			}, msgs[i], 0)
		}
	}
	for i := range reqs {
		msg := msgs[i]
		if msg == nil {
			continue
		}
		if m.wire {
			var err error
			msg, err = codecPass(sv.id, reqs[i].from, reqs[i].key, msg, true)
			if err != nil {
				continue
			}
		}
		select {
		case reqs[i].reply <- register.Reply{From: sv.id, Msg: msg}:
		case <-m.closed:
			return
		}
	}
}

// Write stores data under key as writer w_i (1-based), blocking until the
// protocol's write completes or ctx expires — when ctx is done before a
// reply quorum arrives (e.g. more than t servers have crashed), the
// operation is abandoned with register.ErrTimeout and recorded as failed;
// its effect at the servers is indeterminate. Each (key, writer) pair
// must be used sequentially; everything else may run concurrently.
func (m *MultiLive) Write(ctx context.Context, key string, writer int, data string) (types.Value, error) {
	if writer < 1 || writer > m.cfg.W {
		return types.Value{}, fmt.Errorf("netsim: writer %d out of range [1,%d]", writer, m.cfg.W)
	}
	st := m.creg.Acquire(key)
	return m.exec(ctx, st, key, st.Writer(types.Writer(writer), m.protocol, m.cfg).WriteOp(data))
}

// Read reads key as reader r_i (1-based); see Write for the deadline
// contract.
func (m *MultiLive) Read(ctx context.Context, key string, reader int) (types.Value, error) {
	if reader < 1 || reader > m.cfg.R {
		return types.Value{}, fmt.Errorf("netsim: reader %d out of range [1,%d]", reader, m.cfg.R)
	}
	st := m.creg.Acquire(key)
	return m.exec(ctx, st, key, st.Reader(types.Reader(reader), m.protocol, m.cfg).ReadOp())
}

// exec drives one operation over the shared fleet — the same round engine
// as Live.Exec, with every message tagged by key. It releases the
// in-flight registration Acquire took.
func (m *MultiLive) exec(ctx context.Context, st *keyreg.ClientState, key string, op register.Operation) (types.Value, error) {
	defer m.creg.Release(st)
	select {
	case <-m.closed:
		return types.Value{}, ErrLiveClosed
	default:
	}
	rec := st.Recorder()
	opID := st.NextOpID(op.Client())
	hkey := rec.Invoke(op.Client(), opID, op.Kind(), op.Arg())
	isWrite := op.Kind() == types.OpWrite
	var t0 time.Time
	if m.om != nil {
		t0 = time.Now()
	}
	round := op.Begin()
	roundNo := uint8(0)
	// finish folds one operation outcome into the always-on per-key
	// workload counters and, when enabled, the op metric set — shared by
	// the fail and done paths.
	finish := func(failed bool) {
		if isWrite {
			st.WriteOps.Add(1)
		} else {
			st.ReadOps.Add(1)
		}
		if m.om != nil {
			m.om.Op(isWrite, int64(time.Since(t0)), int(roundNo), failed)
		}
	}
	fail := func(err error) (types.Value, error) {
		finish(true)
		rec.RespondFailed(hkey, op.Kind(), op.Arg(), err)
		return types.Value{}, err
	}
	shard := m.shardOf(key)
	for {
		roundNo++
		replyCh := make(chan register.Reply, m.cfg.S)
		sent := 0
		for i := 1; i <= m.cfg.S; i++ {
			req := multiRequest{key: key, shard: shard, from: op.Client(), opID: opID, round: roundNo, payload: round.Payload, reply: replyCh, st: st}
			// Register the message before it can be consumed, un-register
			// if it was never sent — the worker retires delivered ones.
			st.Inflight.Add(1)
			if m.trySend(types.Server(i), req) == 1 {
				sent++
			} else {
				st.Inflight.Add(-1)
			}
		}
		if sent < round.Need {
			return fail(fmt.Errorf("%w: only %d of %d required servers reachable", register.ErrProtocol, sent, round.Need))
		}
		replies := make([]register.Reply, 0, round.Need)
		for len(replies) < round.Need {
			// Expiry wins deterministically over ready replies: an
			// already-cancelled ctx never completes the operation.
			if ctx.Err() != nil {
				return fail(fmt.Errorf("%w: %v", register.ErrTimeout, ctx.Err()))
			}
			select {
			case <-m.closed:
				return fail(ErrLiveClosed)
			case <-ctx.Done():
				return fail(fmt.Errorf("%w: %v", register.ErrTimeout, ctx.Err()))
			case rep := <-replyCh:
				replies = append(replies, rep)
			}
		}
		next, res, done, err := op.Next(replies)
		switch {
		case err != nil:
			return fail(err)
		case done:
			finish(false)
			rec.Respond(hkey, res, nil)
			return res, nil
		default:
			round = *next
		}
	}
}

// trySend delivers the request to the server's inbox under the crash
// gate's read side. Returns 1 on success, 0 if the server is crashed or
// the cluster shut down. The send may block (backpressure from a full
// inbox); the workers keep draining, so it always completes.
func (m *MultiLive) trySend(id types.ProcID, req multiRequest) int {
	g := m.gates[id]
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.crashed {
		return 0
	}
	select {
	case m.inboxes[id] <- req:
		return 1
	case <-m.closed:
		return 0
	}
}

// Crash stops server s_i for every key at once — the whole point of the
// multiplexed runtime: one closed inbox fails the replica of every
// register it hosts, with no per-key bookkeeping. The gate's write side
// waits out in-flight sends, so already-counted requests are still in the
// buffer and get handled; everything after is silently dropped, like a
// crashed process.
func (m *MultiLive) Crash(i int) {
	id := types.Server(i)
	g, ok := m.gates[id]
	if !ok {
		panic("netsim: Crash of unknown server " + id.String())
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.crashed {
		g.crashed = true
		close(m.inboxes[id])
	}
}

// Metrics returns the fleet's operation metric set, nil when built
// without WithMultiObs (the store layer reaches it by type assertion).
func (m *MultiLive) Metrics() *obs.OpMetrics { return m.om }

// KeyStats returns the per-key workload profiles (read/write mix,
// contention) the client registry maintains unconditionally.
func (m *MultiLive) KeyStats() []keyreg.KeyStats { return m.creg.KeyStats() }

// History returns the execution recorded so far for one key.
func (m *MultiLive) History(key string) history.History { return m.creg.History(key) }

// Histories returns a snapshot of every key's recorded execution.
func (m *MultiLive) Histories() map[string]history.History { return m.creg.Histories() }

// Keys returns the keys touched so far, sorted.
func (m *MultiLive) Keys() []string { return m.creg.Keys() }

// ServerValue inspects the value server s_i currently stores for key
// (tests and traces only; protocol code never calls it). ok is false when
// the server has no state for the key yet.
func (m *MultiLive) ServerValue(key string, i int) (types.Value, bool) {
	sv, found := m.servers[types.Server(i)]
	if !found {
		return types.Value{}, false
	}
	return sv.reg.Value(key)
}

// Config returns the cluster shape.
func (m *MultiLive) Config() quorum.Config { return m.cfg }

// Close shuts the fleet down and waits for all server workers.
func (m *MultiLive) Close() {
	m.once.Do(func() { close(m.closed) })
	m.wg.Wait()
}

// codecPass encodes a message into the key-tagged wire envelope and decodes
// it back — the byte-level journey a real multiplexing transport would give
// it. Shared by Live (key = "") and MultiLive.
func codecPass(from, to types.ProcID, key string, msg proto.Message, isReply bool) (proto.Message, error) {
	b, err := proto.Encode(proto.Envelope{From: from, To: to, Key: key, IsReply: isReply, Payload: msg})
	if err != nil {
		return nil, err
	}
	env, _, err := proto.Decode(b)
	if err != nil {
		return nil, err
	}
	return env.Payload, nil
}
