package netsim

import (
	"testing"

	"fastreg/internal/atomicity"
	"fastreg/internal/mwabd"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/types"
	"fastreg/internal/vclock"
	"fastreg/internal/w2r1"
)

func cfg521() quorum.Config { return quorum.Config{S: 5, T: 1, R: 2, W: 2} }

func TestSimBasicWriteRead(t *testing.T) {
	sim := MustNew(cfg521(), mwabd.New(), WithSeed(3))
	var wrote, read types.Value
	sim.InvokeAt(0, sim.Writer(1).WriteOp("hello"), func(v types.Value, err error) {
		if err != nil {
			t.Errorf("write: %v", err)
		}
		wrote = v
		sim.InvokeAt(sim.Now()+1, sim.Reader(1).ReadOp(), func(v types.Value, err error) {
			if err != nil {
				t.Errorf("read: %v", err)
			}
			read = v
		})
	})
	stats := sim.Run()
	if stats.Completed != 2 {
		t.Fatalf("completed = %d, want 2", stats.Completed)
	}
	if read != wrote || read.Data != "hello" {
		t.Fatalf("read %v, wrote %v", read, wrote)
	}
	h := sim.History()
	if err := h.WellFormed(); err != nil {
		t.Fatal(err)
	}
	if res := atomicity.Check(h); !res.Atomic {
		t.Fatalf("history not atomic: %v", res)
	}
}

func TestSimLatencyReflectsRoundTrips(t *testing.T) {
	// With a constant one-way delay d, a k-round operation takes exactly
	// 2kd: this is the Fig 2 latency model.
	const d = 50
	sim := MustNew(cfg521(), mwabd.New(), WithDelay(ConstDelay(d)))
	sim.InvokeAt(0, sim.Writer(1).WriteOp("x"), nil)
	sim.Run()
	ops := sim.History().Completed()
	if len(ops) != 1 {
		t.Fatal("write did not complete")
	}
	lat := ops[0].Response - ops[0].Invoke
	// 2 rounds × 2d = 200, plus the recorder's ±1 tick jitter.
	if lat < 2*2*d || lat > 2*2*d+4 {
		t.Errorf("write latency = %d, want ≈ %d", lat, 4*d)
	}
}

func TestSimCrashToleratedWithinT(t *testing.T) {
	sim := MustNew(cfg521(), mwabd.New(), WithSeed(5))
	sim.CrashServer(types.Server(3), 0) // crashed from the start; t=1
	done := 0
	sim.InvokeAt(0, sim.Writer(1).WriteOp("v"), func(_ types.Value, err error) {
		if err != nil {
			t.Errorf("write failed: %v", err)
		}
		done++
		sim.InvokeAt(sim.Now()+1, sim.Reader(1).ReadOp(), func(v types.Value, err error) {
			if err != nil {
				t.Errorf("read failed: %v", err)
			}
			if v.Data != "v" {
				t.Errorf("read %v", v)
			}
			done++
		})
	})
	stats := sim.Run()
	if done != 2 {
		t.Fatalf("ops completed = %d, want 2", done)
	}
	if stats.DroppedCrash == 0 {
		t.Error("expected dropped requests at the crashed server")
	}
}

func TestSimTooManyCrashesBlocks(t *testing.T) {
	sim := MustNew(cfg521(), mwabd.New())
	sim.CrashServer(types.Server(1), 0)
	sim.CrashServer(types.Server(2), 0) // two crashes, t=1: quorum S-t=4 unreachable
	completed := false
	sim.InvokeAt(0, sim.Writer(1).WriteOp("v"), func(types.Value, error) { completed = true })
	sim.Run()
	if completed {
		t.Fatal("operation completed without a quorum")
	}
	if len(sim.History().Pending()) != 1 {
		t.Fatalf("pending = %d, want 1", len(sim.History().Pending()))
	}
}

func TestSimSkipDelaysPastHorizon(t *testing.T) {
	// Skip r1 ↔ s1: the read must still complete using the other 4 servers.
	base := ConstDelay(10)
	sim := MustNew(cfg521(), mwabd.New(), WithDelay(Skip(base, types.Reader(1), types.Server(1))))
	var got types.Value
	sim.InvokeAt(0, sim.Writer(1).WriteOp("v"), func(types.Value, error) {
		sim.InvokeAt(sim.Now()+1, sim.Reader(1).ReadOp(), func(v types.Value, err error) {
			if err != nil {
				t.Errorf("read: %v", err)
			}
			got = v
		})
	})
	stats := sim.Run()
	if got.Data != "v" {
		t.Fatalf("read %v", got)
	}
	if stats.Undeliverable == 0 {
		t.Error("skipped messages should be reported undeliverable")
	}
}

func TestSimDeterministicBySeed(t *testing.T) {
	run := func(seed int64) string {
		sim := MustNew(cfg521(), mwabd.New(), WithSeed(seed), WithDelay(UniformDelay(1, 100)))
		for i := 0; i < 3; i++ {
			sim.InvokeAt(vclock.Time(i*7), sim.Writer(1+i%2).WriteOp("v"), nil)
			sim.InvokeAt(vclock.Time(i*11+1), sim.Reader(1+i%2).ReadOp(), nil)
		}
		sim.Run()
		return sim.History().String()
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed produced different executions:\n%s\nvs\n%s", a, b)
	}
	c := run(43)
	if a == c {
		t.Log("different seeds produced identical executions (possible but suspicious)")
	}
}

func TestSimConcurrentMixedWorkloadAtomic(t *testing.T) {
	for _, p := range []register.Protocol{mwabd.New(), w2r1.New()} {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			cfg := quorum.Config{S: 7, T: 1, R: 2, W: 2}
			if !p.Implementable(cfg) {
				t.Fatalf("%s should be implementable on %v", p.Name(), cfg)
			}
			sim := MustNew(cfg, p, WithSeed(9), WithDelay(UniformDelay(5, 80)))
			// Closed-loop sessions per client with overlapping start times.
			var spawn func(client int, isWriter bool, n int)
			spawn = func(client int, isWriter bool, n int) {
				if n == 0 {
					return
				}
				var op register.Operation
				if isWriter {
					op = sim.Writer(client).WriteOp("d")
				} else {
					op = sim.Reader(client).ReadOp()
				}
				sim.InvokeAt(sim.Now()+1, op, func(types.Value, error) {
					spawn(client, isWriter, n-1)
				})
			}
			for c := 1; c <= 2; c++ {
				spawn(c, true, 6)
				spawn(c, false, 6)
			}
			sim.Run()
			h := sim.History()
			if got := len(h.Completed()); got != 24 {
				t.Fatalf("completed = %d, want 24", got)
			}
			if err := h.WellFormed(); err != nil {
				t.Fatal(err)
			}
			if res := atomicity.Check(h); !res.Atomic {
				t.Fatalf("%s produced a non-atomic history: %v\n%s", p.Name(), res, h)
			}
		})
	}
}

func TestSimRunUntil(t *testing.T) {
	sim := MustNew(cfg521(), mwabd.New(), WithDelay(ConstDelay(10)))
	sim.InvokeAt(0, sim.Writer(1).WriteOp("a"), nil)
	sim.RunUntil(15) // mid-flight: only round 1 delivered
	if len(sim.History().Completed()) != 0 {
		t.Fatal("op completed too early")
	}
	if sim.Now() < 15 {
		t.Fatalf("Now = %d", sim.Now())
	}
	sim.Run()
	if len(sim.History().Completed()) != 1 {
		t.Fatal("op never completed")
	}
}

func TestSimServerValuesInspection(t *testing.T) {
	sim := MustNew(cfg521(), mwabd.New())
	sim.InvokeAt(0, sim.Writer(1).WriteOp("z"), nil)
	sim.Run()
	vals := sim.ServerValues()
	if len(vals) != 5 {
		t.Fatalf("server count = %d", len(vals))
	}
	for id, v := range vals {
		if v.Data != "z" {
			t.Errorf("server %v holds %v", id, v)
		}
	}
}

func TestSimRejectsBadConfig(t *testing.T) {
	if _, err := New(quorum.Config{S: 0}, mwabd.New()); err == nil {
		t.Fatal("bad config accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew must panic on bad config")
		}
	}()
	MustNew(quorum.Config{S: 0}, mwabd.New())
}

func TestCrashServerValidation(t *testing.T) {
	sim := MustNew(cfg521(), mwabd.New())
	defer func() {
		if recover() == nil {
			t.Error("CrashServer must reject non-servers")
		}
	}()
	sim.CrashServer(types.Reader(1), 0)
}

func TestUniformDelayValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("UniformDelay must reject hi < lo")
		}
	}()
	UniformDelay(10, 5)
}
