package netsim

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"fastreg/internal/mwabd"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
)

// waitDrained blocks until no key has a message still queued in a server
// inbox — completed operations can leave stragglers behind (they only
// needed S−t replies), and the sweeper deliberately refuses to evict
// such keys.
func waitDrained(t *testing.T, m *MultiLive) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		pending := int64(0)
		pending = m.creg.PendingInflight()
		if pending == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d messages never drained", pending)
		}
		time.Sleep(time.Millisecond)
	}
}

// countServerKeys sums per-key server state entries across all replicas.
func countServerKeys(m *MultiLive) int {
	n := 0
	for _, sv := range m.servers {
		n += sv.reg.KeyCount()
	}
	return n
}

// TestMultiLiveSweep drives the epoch machinery directly: a key untouched
// for a full epoch is evicted from both the client registry and every
// server's shard map; a key touched each epoch survives.
func TestMultiLiveSweep(t *testing.T) {
	cfg := quorum.Config{S: 3, T: 1, R: 1, W: 1}
	m, err := NewMultiLive(cfg, mwabd.New())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	for i := 0; i < 8; i++ {
		if _, err := m.Write(context.Background(), fmt.Sprintf("idle-%d", i), 1, "v"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Write(context.Background(), "hot", 1, "v"); err != nil {
		t.Fatal(err)
	}
	if got := len(m.Keys()); got != 9 {
		t.Fatalf("%d keys before sweep, want 9", got)
	}
	if got := countServerKeys(m); got != 9*cfg.S {
		t.Fatalf("%d server entries before sweep, want %d", got, 9*cfg.S)
	}

	// Epoch 0 → 1: everything was stamped in epoch 0, nothing is a full
	// epoch old yet.
	if n := m.Sweep(); n != 0 {
		t.Fatalf("first sweep evicted %d keys, want 0", n)
	}
	// Keep "hot" alive in epoch 1.
	if _, err := m.Read(context.Background(), "hot", 1); err != nil {
		t.Fatal(err)
	}
	// Epoch 1 → 2: the idle keys (stamp 0 ≤ cutoff 0) go; "hot" (stamp 1)
	// stays. Wait for straggler messages first — ops complete on S−t
	// replies and the sweeper refuses to evict keys with one in flight.
	waitDrained(t, m)
	if n := m.Sweep(); n != 8 {
		t.Fatalf("second sweep evicted %d keys, want 8", n)
	}
	if got := m.Keys(); len(got) != 1 || got[0] != "hot" {
		t.Fatalf("keys after sweep: %v, want [hot]", got)
	}
	if got := countServerKeys(m); got != cfg.S {
		t.Fatalf("%d server entries after sweep, want %d", got, cfg.S)
	}
	if _, ok := m.ServerValue("idle-0", 1); ok {
		t.Fatal("evicted key still has server state")
	}

	// An evicted key reads as never written again (TTL-expiry semantics)
	// and is fully usable afterward.
	v, err := m.Read(context.Background(), "idle-0", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsInitial() {
		t.Fatalf("evicted key read %v, want initial", v)
	}
	if _, err := m.Write(context.Background(), "idle-0", 1, "again"); err != nil {
		t.Fatal(err)
	}
	if v, err := m.Read(context.Background(), "idle-0", 1); err != nil || v.Data != "again" {
		t.Fatalf("rewrite after eviction: %v %v", v, err)
	}
}

// TestMultiLiveEvictionTTL exercises the background sweeper end to end
// with a real (short) TTL.
func TestMultiLiveEvictionTTL(t *testing.T) {
	cfg := quorum.Config{S: 3, T: 1, R: 1, W: 1}
	m, err := NewMultiLive(cfg, mwabd.New(), WithMultiEviction(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 4; i++ {
		if _, err := m.Write(context.Background(), fmt.Sprintf("k%d", i), 1, "v"); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(m.Keys()) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("keys never evicted: %v", m.Keys())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMultiLiveEvictionUnderLoad races an aggressive sweeper against a
// concurrent workload: operations must never fail or trip the race
// detector, and every key's history that survives must stay atomic.
func TestMultiLiveEvictionUnderLoad(t *testing.T) {
	cfg := quorum.Config{S: 3, T: 1, R: 2, W: 2}
	m, err := NewMultiLive(cfg, mwabd.New(), WithMultiEviction(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	done := make(chan error, cfg.R+cfg.W)
	for w := 1; w <= cfg.W; w++ {
		go func(w int) {
			for i := 0; i < 200; i++ {
				if _, err := m.Write(context.Background(), fmt.Sprintf("k%d", i%5), w, "v"); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for r := 1; r <= cfg.R; r++ {
		go func(r int) {
			for i := 0; i < 200; i++ {
				if _, err := m.Read(context.Background(), fmt.Sprintf("k%d", i%5), r); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(r)
	}
	for i := 0; i < cfg.R+cfg.W; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestMultiLiveEvictionOffByDefault: without the option, nothing ever
// disappears (the ticker isn't even running).
func TestMultiLiveEvictionOffByDefault(t *testing.T) {
	cfg := quorum.Config{S: 3, T: 1, R: 1, W: 1}
	m, err := NewMultiLive(cfg, mwabd.New())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.evictTTL != 0 {
		t.Fatal("eviction enabled by default")
	}
	if _, err := m.Write(context.Background(), "k", 1, "v"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if len(m.Keys()) != 1 {
		t.Fatalf("keys vanished without eviction: %v", m.Keys())
	}
}

// TestMultiLiveTimeout: with more than t servers crashed, a bounded
// operation must come back with register.ErrTimeout instead of blocking
// forever (the pre-context behavior).
func TestMultiLiveTimeout(t *testing.T) {
	cfg := quorum.Config{S: 3, T: 1, R: 1, W: 1}
	m, err := NewMultiLive(cfg, mwabd.New())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Write(context.Background(), "k", 1, "v"); err != nil {
		t.Fatal(err)
	}
	m.Crash(1)
	// One crash is within t: still fine.
	if _, err := m.Read(context.Background(), "k", 1); err != nil {
		t.Fatal(err)
	}
	m.Crash(2)
	// Two crashes exceed t=1. The round still reaches S−t=2 inboxes is
	// impossible — only one server is left, so the send itself fails
	// fast; no timeout needed.
	if _, err := m.Read(context.Background(), "k", 1); !errors.Is(err, register.ErrProtocol) {
		t.Fatalf("got %v, want ErrProtocol (quorum unreachable)", err)
	}
	// A context deadline bounds the genuinely-blocking case: servers
	// reachable but replies withheld. Simulate by sending to a cluster
	// whose remaining quorum is reachable while we hold the deadline at
	// zero — the ctx expires before the replies can be consumed.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m2, err := NewMultiLive(cfg, mwabd.New())
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if _, err := m2.Write(ctx, "k", 1, "v"); !errors.Is(err, register.ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	h := m2.History("k")
	if n := len(h.Failed()); n != 1 {
		t.Fatalf("%d failed ops, want 1", n)
	}
}
