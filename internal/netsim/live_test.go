package netsim

import (
	"sync"
	"testing"

	"fastreg/internal/atomicity"
	"fastreg/internal/mwabd"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/types"
	"fastreg/internal/w2r1"
)

func TestLiveBasic(t *testing.T) {
	l, err := NewLive(cfg521(), mwabd.New())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	w, err := l.Exec(l.Writer(1).WriteOp("live"))
	if err != nil {
		t.Fatal(err)
	}
	r, err := l.Exec(l.Reader(1).ReadOp())
	if err != nil {
		t.Fatal(err)
	}
	if r != w {
		t.Fatalf("read %v, wrote %v", r, w)
	}
	if res := atomicity.Check(l.History()); !res.Atomic {
		t.Fatalf("non-atomic: %v", res)
	}
}

func TestLiveConcurrentClientsAtomic(t *testing.T) {
	for _, name := range []string{"W2R2", "W2R1"} {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := quorum.Config{S: 7, T: 1, R: 2, W: 2}
			var p interface {
				Name() string
			}
			_ = p
			var l *Live
			var err error
			if name == "W2R2" {
				l, err = NewLive(cfg, mwabd.New())
			} else {
				l, err = NewLive(cfg, w2r1.New())
			}
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			var wg sync.WaitGroup
			for c := 1; c <= 2; c++ {
				c := c
				wg.Add(2)
				go func() {
					defer wg.Done()
					for i := 0; i < 15; i++ {
						if _, err := l.Exec(l.Writer(c).WriteOp("d")); err != nil {
							t.Errorf("write: %v", err)
							return
						}
					}
				}()
				go func() {
					defer wg.Done()
					for i := 0; i < 15; i++ {
						if _, err := l.Exec(l.Reader(c).ReadOp()); err != nil {
							t.Errorf("read: %v", err)
							return
						}
					}
				}()
			}
			wg.Wait()
			h := l.History()
			if err := h.WellFormed(); err != nil {
				t.Fatal(err)
			}
			if got := len(h.Completed()); got != 60 {
				t.Fatalf("completed = %d, want 60", got)
			}
			if res := atomicity.Check(h); !res.Atomic {
				t.Fatalf("non-atomic live history: %v\n%s", res, h)
			}
		})
	}
}

func TestLiveCrashWithinT(t *testing.T) {
	l, err := NewLive(cfg521(), mwabd.New())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Exec(l.Writer(1).WriteOp("before")); err != nil {
		t.Fatal(err)
	}
	l.Crash(2)
	v, err := l.Exec(l.Reader(1).ReadOp())
	if err != nil {
		t.Fatalf("read after crash: %v", err)
	}
	if v.Data != "before" {
		t.Fatalf("read %v", v)
	}
	if _, err := l.Exec(l.Writer(2).WriteOp("after")); err != nil {
		t.Fatalf("write after crash: %v", err)
	}
}

func TestLiveCrashUnknownServerPanics(t *testing.T) {
	l, err := NewLive(cfg521(), mwabd.New())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	defer func() {
		if recover() == nil {
			t.Error("Crash of unknown server must panic")
		}
	}()
	l.Crash(99)
}

func TestLiveExecAfterClose(t *testing.T) {
	l, err := NewLive(cfg521(), mwabd.New())
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.Exec(l.Writer(1).WriteOp("x")); err == nil {
		t.Fatal("Exec after Close must fail")
	}
}

func TestLiveRejectsBadConfig(t *testing.T) {
	if _, err := NewLive(quorum.Config{S: -1}, mwabd.New()); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestLiveDoubleCloseSafe(t *testing.T) {
	l, err := NewLive(cfg521(), mwabd.New())
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	l.Close()
}

func TestLiveCrashDoubleSafe(t *testing.T) {
	l, err := NewLive(cfg521(), mwabd.New())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.Crash(1)
	l.Crash(1)
	if _, err := l.Exec(l.Reader(1).ReadOp()); err != nil {
		t.Fatalf("read with one crash: %v", err)
	}
	_ = types.Server(1)
}

func TestLiveWireEncodingEndToEnd(t *testing.T) {
	// Every message crosses the binary codec; protocols must be oblivious.
	for _, mk := range []struct {
		name string
		p    register.Protocol
	}{
		{"W2R2", mwabd.New()},
		{"W2R1", w2r1.New()},
	} {
		mk := mk
		t.Run(mk.name, func(t *testing.T) {
			cfg := quorum.Config{S: 5, T: 1, R: 2, W: 2}
			l, err := NewLive(cfg, mk.p, WithWireEncoding())
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			var wg sync.WaitGroup
			for c := 1; c <= 2; c++ {
				c := c
				wg.Add(2)
				go func() {
					defer wg.Done()
					for i := 0; i < 8; i++ {
						if _, err := l.Exec(l.Writer(c).WriteOp("wire")); err != nil {
							t.Errorf("write: %v", err)
							return
						}
					}
				}()
				go func() {
					defer wg.Done()
					for i := 0; i < 8; i++ {
						if _, err := l.Exec(l.Reader(c).ReadOp()); err != nil {
							t.Errorf("read: %v", err)
							return
						}
					}
				}()
			}
			wg.Wait()
			h := l.History()
			if got := len(h.Completed()); got != 32 {
				t.Fatalf("completed = %d", got)
			}
			if res := atomicity.Check(h); !res.Atomic {
				t.Fatalf("wire-encoded run not atomic: %v", res)
			}
		})
	}
}
