package w1r2

import (
	"testing"

	"fastreg/internal/atomicity"
	"fastreg/internal/chains"
	"fastreg/internal/netsim"
	"fastreg/internal/quorum"
	"fastreg/internal/types"
)

func TestMetadata(t *testing.T) {
	p := New()
	if p.Name() != "W1R2" || p.WriteRounds() != 1 || p.ReadRounds() != 2 {
		t.Fatalf("metadata: %s W%d R%d", p.Name(), p.WriteRounds(), p.ReadRounds())
	}
}

func TestImplementableOnlyDegenerate(t *testing.T) {
	cases := []struct {
		cfg  quorum.Config
		want bool
	}{
		{quorum.Config{S: 3, T: 1, R: 2, W: 1}, true},  // single writer: ABD
		{quorum.Config{S: 3, T: 0, R: 2, W: 2}, true},  // no crashes
		{quorum.Config{S: 3, T: 1, R: 2, W: 2}, false}, // Theorem 1
		{quorum.Config{S: 5, T: 2, R: 3, W: 3}, false},
	}
	for _, c := range cases {
		if got := New().Implementable(c.cfg); got != c.want {
			t.Errorf("Implementable(%v) = %v, want %v", c.cfg, got, c.want)
		}
	}
}

// TestSequentialCrossWriterViolation is the simplest exhibit of why fast
// writes fail: w2 writes first, then w1 (strictly after), but w1's private
// counter tags its value lower, so a subsequent read returns w2's value —
// the naive protocol loses a completed write.
func TestSequentialCrossWriterViolation(t *testing.T) {
	cfg := quorum.Config{S: 3, T: 1, R: 2, W: 2}
	sim := netsim.MustNew(cfg, New(), netsim.WithSeed(1))
	sim.InvokeAt(0, sim.Writer(2).WriteOp("from-w2"), func(types.Value, error) {
		sim.InvokeAt(sim.Now()+1, sim.Writer(1).WriteOp("from-w1"), func(types.Value, error) {
			sim.InvokeAt(sim.Now()+1, sim.Reader(1).ReadOp(), nil)
		})
	})
	sim.Run()
	h := sim.History()
	if len(h.Completed()) != 3 {
		t.Fatalf("completed %d", len(h.Completed()))
	}
	reads := h.Reads()
	if reads[0].Value.Data != "from-w2" {
		t.Fatalf("read %v — expected the naive protocol to lose w1's write", reads[0].Value)
	}
	res := atomicity.Check(h)
	if res.Atomic {
		t.Fatal("lost-write history judged atomic")
	}
}

// TestChainEngineDefeatsNaive: the executable Theorem 1 argument finds the
// violation without hand-crafting a schedule.
func TestChainEngineDefeatsNaive(t *testing.T) {
	for _, s := range []int{3, 5, 7} {
		rep, err := chains.FindViolation(New(), s)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Violations) == 0 {
			t.Fatalf("S=%d: no violation found", s)
		}
	}
}

// TestSingleWriterDegenerateIsAtomic: with W=1 the protocol is ABD and the
// randomized adversary finds nothing.
func TestSingleWriterDegenerateIsAtomic(t *testing.T) {
	cfg := quorum.Config{S: 5, T: 1, R: 2, W: 1}
	for seed := int64(1); seed <= 10; seed++ {
		sim := netsim.MustNew(cfg, New(), netsim.WithSeed(seed), netsim.WithDelay(netsim.UniformDelay(1, 80)))
		var spawn func(c int, write bool, n int)
		spawn = func(c int, write bool, n int) {
			if n == 0 {
				return
			}
			op := sim.Reader(c).ReadOp()
			if write {
				op = sim.Writer(1).WriteOp("d")
			}
			sim.InvokeAt(sim.Now()+1, op, func(types.Value, error) { spawn(c, write, n-1) })
		}
		spawn(1, true, 5)
		spawn(1, false, 5)
		spawn(2, false, 5)
		sim.Run()
		if res := atomicity.Check(sim.History()); !res.Atomic {
			t.Fatalf("seed %d: single-writer degenerate case violated: %v", seed, res)
		}
	}
}

func TestWriteIsOneRoundLatency(t *testing.T) {
	const d = 50
	cfg := quorum.Config{S: 3, T: 1, R: 2, W: 2}
	sim := netsim.MustNew(cfg, New(), netsim.WithDelay(netsim.ConstDelay(d)))
	sim.InvokeAt(0, sim.Writer(1).WriteOp("x"), nil)
	sim.Run()
	ops := sim.History().Completed()
	if len(ops) != 1 {
		t.Fatal("write did not complete")
	}
	lat := ops[0].Response - ops[0].Invoke
	if lat < 2*d || lat > 2*d+4 {
		t.Fatalf("fast write latency = %d, want ≈ %d", lat, 2*d)
	}
}
