// Package w1r2 is the naive fast-write multi-writer register: every writer
// bumps a private timestamp counter and updates all servers in one round;
// reads take two rounds with write-back.
//
// Theorem 1 of the paper proves that NO W1R2 implementation can be atomic
// when W ≥ 2, R ≥ 2 and t ≥ 1, so this protocol exists to be broken: the
// chain-argument engine (internal/chains) and the atomicity checker exhibit
// concrete violating executions on it, reproducing Table 1's W1R2 row.
//
// The flaw is structural, not an implementation bug: with one round a
// writer cannot learn other writers' timestamps, so two sequential writes
// by different writers can be tagged in the wrong order, and no read-side
// repair can recover the real-time order for all readers.
package w1r2

import (
	"fastreg/internal/opkit"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/types"
)

// Protocol is the naive fast-write implementation.
type Protocol struct{}

// New returns the naive W1R2 protocol.
func New() *Protocol { return &Protocol{} }

// Name implements register.Protocol.
func (*Protocol) Name() string { return "W1R2" }

// WriteRounds implements register.Protocol.
func (*Protocol) WriteRounds() int { return 1 }

// ReadRounds implements register.Protocol.
func (*Protocol) ReadRounds() int { return 2 }

// Implementable implements register.Protocol. Per Theorem 1 a fast write is
// atomic only in the degenerate single-writer case (where this protocol is
// exactly ABD) or with t = 0.
func (*Protocol) Implementable(cfg quorum.Config) bool {
	return (cfg.W <= 1 || cfg.T == 0) && cfg.MajorityOK()
}

// NewServer implements register.Protocol.
func (*Protocol) NewServer(id types.ProcID, _ quorum.Config) register.ServerLogic {
	return opkit.NewStoreServer(id)
}

type writer struct {
	id   types.ProcID
	need int
	ts   int64
}

// NewWriter implements register.Protocol.
func (*Protocol) NewWriter(id types.ProcID, cfg quorum.Config) register.Writer {
	return &writer{id: id, need: cfg.ReplyQuorum()}
}

func (w *writer) ID() types.ProcID { return w.id }

// WriteOp tags the value from a writer-private counter — the unsound step:
// counters of different writers are not coordinated, which a one-round
// write cannot fix.
func (w *writer) WriteOp(data string) register.Operation {
	w.ts++
	val := types.Value{Tag: types.Tag{TS: w.ts, WID: w.id}, Data: data}
	return opkit.NewDirectWrite(w.id, val, w.need)
}

type reader struct {
	id   types.ProcID
	need int
}

// NewReader implements register.Protocol.
func (*Protocol) NewReader(id types.ProcID, cfg quorum.Config) register.Reader {
	return &reader{id: id, need: cfg.ReplyQuorum()}
}

func (r *reader) ID() types.ProcID { return r.id }

func (r *reader) ReadOp() register.Operation {
	return opkit.NewReadWriteBack(r.id, r.need)
}
