package faultnet

import (
	"time"

	"fastreg/internal/proto"
	"fastreg/internal/transport"
)

// WrapTransportConn applies the plan's envelope-level faults to an
// in-process transport.Conn (a ChanNetwork pipe): sends travel
// local→remote, receives remote→local. Only the faults that exist above
// the byte layer apply — Drop, Delay, Duplicate and Reset; Corrupt and
// Truncate (which poison bytes the codec must reject, tearing the
// connection down) degrade to Reset here, and Bandwidth is expressed
// through the same pacing floor Delay uses, with the envelope's encoded
// size unknowable approximated as one frame. The TCP shim (WrapConn) is
// the full-fidelity path; this wrapper exists so in-process scenarios
// can at least partition, delay and reset without sockets.
func (p *Plan) WrapTransportConn(c transport.Conn, local, remote string) transport.Conn {
	return &envConn{
		Conn: c,
		out:  p.newDirection(local, remote),
		in:   p.newDirection(remote, local),
		p:    p,
	}
}

// WrapDial wraps a DialFunc so every connection it produces carries the
// plan's envelope-level faults. nameOf maps a dialed address to the
// remote endpoint's rule name; local names the dialing process.
func (p *Plan) WrapDial(dial transport.DialFunc, local string, nameOf func(addr string) string) transport.DialFunc {
	return func(addr string) (transport.Conn, error) {
		c, err := dial(addr)
		if err != nil {
			return nil, err
		}
		return p.WrapTransportConn(c, local, nameOf(addr)), nil
	}
}

// envConn applies per-envelope fault actions around an inner conn.
type envConn struct {
	transport.Conn
	p   *Plan
	out *direction
	in  *direction
}

// apply resolves one envelope's fate on direction d; it reports whether
// the envelope should be delivered (possibly twice) after sleeping out
// its delay. Reset (and the degraded Corrupt/Truncate) close the conn.
func (c *envConn) apply(d *direction) (deliver bool, dup bool, err error) {
	a := d.decide(c.p.Now(), 1)
	if a.drop {
		return false, false, nil
	}
	if a.reset || a.corrupt || a.truncate {
		c.Conn.Close()
		return false, false, ErrInjectedReset
	}
	if wait := a.deliverAt - c.p.Now(); wait > 0 {
		time.Sleep(wait)
	}
	return true, a.duplicate, nil
}

func (c *envConn) Send(e proto.Envelope) error {
	deliver, dup, err := c.apply(c.out)
	if err != nil || !deliver {
		return err
	}
	if err := c.Conn.Send(e); err != nil {
		return err
	}
	if dup {
		return c.Conn.Send(e)
	}
	return nil
}

// SendBatch applies the outbound decision per envelope, then forwards
// the survivors in place — the batch slab's ownership still transfers to
// the inner conn exactly once.
//
//lint:consumes envs
func (c *envConn) SendBatch(envs []proto.Envelope) error {
	kept := envs[:0]
	var dups []proto.Envelope // duplicates ride as their own sends after the batch
	for _, e := range envs {
		deliver, dup, err := c.apply(c.out)
		if err != nil {
			proto.PutEnvs(envs)
			return err
		}
		if !deliver {
			continue
		}
		kept = append(kept, e)
		if dup {
			dups = append(dups, e)
		}
	}
	if err := c.Conn.SendBatch(kept); err != nil {
		return err
	}
	for _, e := range dups {
		if err := c.Conn.Send(e); err != nil {
			return err
		}
	}
	return nil
}

func (c *envConn) Recv() (proto.Envelope, error) {
	for {
		e, err := c.Conn.Recv()
		if err != nil {
			return e, err
		}
		deliver, _, err := c.apply(c.in)
		if err != nil {
			return proto.Envelope{}, err
		}
		if deliver {
			return e, nil
		}
	}
}

// RecvBatch filters the inbound batch in place; the pooled slab still
// reaches the caller exactly once, survivors first.
func (c *envConn) RecvBatch() ([]proto.Envelope, error) {
	envs, err := c.Conn.RecvBatch()
	if err != nil {
		return envs, err
	}
	kept := envs[:0]
	for _, e := range envs {
		deliver, _, aerr := c.apply(c.in)
		if aerr != nil {
			proto.PutEnvs(envs)
			return nil, aerr
		}
		if deliver {
			kept = append(kept, e)
		}
	}
	return kept, nil
}
