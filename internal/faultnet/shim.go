package faultnet

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"fastreg/internal/proto"
	"fastreg/internal/transport"
)

// ErrInjectedReset is the error surfaced by reads/writes on a connection
// the plan reset or truncated.
var ErrInjectedReset = errors.New("faultnet: injected connection reset")

// WrapConn shims nc with the plan's faults, frame-aware in both
// directions: bytes written locally are reassembled into the transport's
// length-prefixed frames and each frame travels local→remote under the
// matching rules; bytes read are likewise reassembled and travel
// remote→local. local and remote are the endpoint names rules match
// ("s2", "c", …). The returned conn is intended to sit under
// transport.WrapNetConn (or be handed out by Plan.Listen); deadlines are
// delegated to nc and do not bound frames already captured by the shim.
func (p *Plan) WrapConn(nc net.Conn, local, remote string) net.Conn {
	s := &shimConn{nc: nc}
	s.out = newPump(p, p.newDirection(local, remote), nc, s.reset)
	s.inq = newByteQueue()
	s.in = newPump(p, p.newDirection(remote, local), s.inq, s.reset)
	go s.out.run()
	go s.in.run()
	go s.readLoop()
	return s
}

// Listen binds a TCP listener at addr whose accepted connections carry
// the plan's faults — the drop-in way to put a whole replica behind the
// fault layer without touching the dialing side. local names this
// endpoint, remote the dialing peer (all of a scenario's clients share
// one name: rules address processes, not sockets).
func (p *Plan) Listen(addr, local, remote string) (transport.Listener, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &faultListener{p: p, nl: nl, local: local, remote: remote}, nil
}

type faultListener struct {
	p      *Plan
	nl     net.Listener
	local  string
	remote string
}

func (l *faultListener) Accept() (transport.Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		return nil, err
	}
	return transport.WrapNetConn(l.p.WrapConn(nc, l.local, l.remote)), nil
}

func (l *faultListener) Addr() string { return l.nl.Addr().String() }
func (l *faultListener) Close() error { return l.nl.Close() }

// shimConn is the frame-aware net.Conn: Write feeds the outbound parser
// and pump, Read drains the inbound pump's byte queue.
type shimConn struct {
	nc net.Conn

	out *pump
	in  *pump
	inq *byteQueue

	wmu    sync.Mutex
	wparse frameParser // guardedby: wmu

	once sync.Once
}

func (s *shimConn) Write(b []byte) (int, error) {
	s.wmu.Lock()
	frames := s.wparse.feed(b)
	s.wmu.Unlock()
	for _, f := range frames {
		if err := s.out.enqueue(f); err != nil {
			return 0, err
		}
	}
	return len(b), nil
}

func (s *shimConn) Read(b []byte) (int, error) { return s.inq.Read(b) }

// readLoop pumps the raw inbound byte stream through the frame parser
// into the inbound pump. On stream end the pump finishes draining what
// is already scheduled, then fails the byte queue with the stream error.
func (s *shimConn) readLoop() {
	var parse frameParser
	buf := make([]byte, 32<<10)
	for {
		n, err := s.nc.Read(buf)
		if n > 0 {
			for _, f := range parse.feed(buf[:n]) {
				if s.in.enqueue(f) != nil {
					return
				}
			}
		}
		if err != nil {
			s.in.finish(err)
			return
		}
	}
}

// reset is the injected-fault teardown: kill the socket and fail the
// local read side, so both processes observe a dead connection and the
// client's redial path takes over.
func (s *shimConn) reset() {
	s.once.Do(func() {
		s.nc.Close()
		s.out.close()
		s.in.close()
		s.inq.fail(ErrInjectedReset)
	})
}

func (s *shimConn) Close() error {
	s.reset()
	return nil
}

func (s *shimConn) LocalAddr() net.Addr                { return s.nc.LocalAddr() }
func (s *shimConn) RemoteAddr() net.Addr               { return s.nc.RemoteAddr() }
func (s *shimConn) SetDeadline(t time.Time) error      { return s.nc.SetDeadline(t) }
func (s *shimConn) SetReadDeadline(t time.Time) error  { return s.nc.SetReadDeadline(t) }
func (s *shimConn) SetWriteDeadline(t time.Time) error { return s.nc.SetWriteDeadline(t) }

// frameParser reassembles a byte stream into the transport's frames
// (4-byte big-endian body length + body). A length beyond the codec's
// bound means the stream is not transport framing; the parser then goes
// transparent and passes bytes through unfaulted rather than buffer
// without bound.
type frameParser struct {
	buf         []byte
	passthrough bool
}

// feed appends data and returns every complete frame (each an owned
// copy — the caller's buffer is reused).
func (fp *frameParser) feed(data []byte) [][]byte {
	if fp.passthrough {
		return [][]byte{append([]byte(nil), data...)}
	}
	fp.buf = append(fp.buf, data...)
	var frames [][]byte
	for len(fp.buf) >= 4 {
		body := binary.BigEndian.Uint32(fp.buf[:4])
		if body > proto.MaxBatchFrame {
			fp.passthrough = true
			out := append([]byte(nil), fp.buf...)
			fp.buf = nil
			return append(frames, out)
		}
		total := 4 + int(body)
		if len(fp.buf) < total {
			break
		}
		frames = append(frames, append([]byte(nil), fp.buf[:total]...))
		fp.buf = fp.buf[total:]
	}
	if len(fp.buf) == 0 {
		fp.buf = nil
	}
	return frames
}

// pump is one direction's delivery engine: frames enter with their fate
// decided (drop/corrupt/…/deliverAt), a single goroutine writes them to
// the sink in order at their virtual delivery instants. Ordering within
// a direction is preserved by construction — decide's pacing floor is
// monotone — so delay and bandwidth never reorder a TCP stream, they
// stretch it.
type pump struct {
	p    *Plan
	d    *direction
	sink io.Writer
	// reset tears the whole shim down (injected Reset/Truncate faults,
	// or a sink write failure).
	reset func()

	mu     sync.Mutex
	q      []pumpFrame // guardedby: mu
	closed bool        // guardedby: mu
	fin    error       // guardedby: mu — stream end: deliver the queue, then stop
	wake   chan struct{}
}

type pumpFrame struct {
	b        []byte
	at       time.Duration // virtual delivery instant
	truncate bool
	reset    bool
}

func newPump(p *Plan, d *direction, sink io.Writer, reset func()) *pump {
	return &pump{p: p, d: d, sink: sink, reset: reset, wake: make(chan struct{}, 1)}
}

// enqueue decides one frame's fate and schedules it. Dropped frames
// vanish here; duplicated frames are scheduled twice back-to-back.
func (pm *pump) enqueue(frame []byte) error {
	a := pm.d.decide(pm.p.Now(), len(frame))
	if a.drop {
		return nil
	}
	if a.corrupt {
		frame = corruptBody(frame)
	}
	pf := pumpFrame{b: frame, at: a.deliverAt, truncate: a.truncate, reset: a.reset}
	pm.mu.Lock()
	if pm.closed {
		pm.mu.Unlock()
		return ErrInjectedReset
	}
	pm.q = append(pm.q, pf)
	if a.duplicate && !a.truncate && !a.reset {
		pm.q = append(pm.q, pumpFrame{b: frame, at: a.deliverAt})
	}
	pm.mu.Unlock()
	select {
	case pm.wake <- struct{}{}:
	default:
	}
	return nil
}

// finish marks the stream ended: the pump delivers what is queued, then
// fails the sink's reader with err (byte-queue sinks only).
func (pm *pump) finish(err error) {
	pm.mu.Lock()
	if pm.fin == nil {
		pm.fin = err
	}
	pm.mu.Unlock()
	select {
	case pm.wake <- struct{}{}:
	default:
	}
}

func (pm *pump) close() {
	pm.mu.Lock()
	pm.closed = true
	pm.q = nil
	pm.mu.Unlock()
	select {
	case pm.wake <- struct{}{}:
	default:
	}
}

// run delivers scheduled frames at their virtual instants.
func (pm *pump) run() {
	for {
		pm.mu.Lock()
		if pm.closed {
			pm.mu.Unlock()
			return
		}
		if len(pm.q) == 0 {
			fin := pm.fin
			pm.mu.Unlock()
			if fin != nil {
				if bq, ok := pm.sink.(*byteQueue); ok {
					bq.fail(fin)
				}
				return
			}
			<-pm.wake
			continue
		}
		f := pm.q[0]
		pm.q = pm.q[1:]
		pm.mu.Unlock()
		if wait := f.at - pm.p.Now(); wait > 0 {
			time.Sleep(wait)
		}
		b := f.b
		if f.truncate {
			b = b[:4+(len(b)-4)/2]
		}
		if _, err := pm.sink.Write(b); err != nil {
			pm.reset()
			return
		}
		if f.truncate || f.reset {
			pm.reset()
			return
		}
	}
}

// corruptBody copies the frame and flips every body byte, leaving the
// length header intact: the peer reads a well-framed body the codec
// cannot possibly accept.
func corruptBody(frame []byte) []byte {
	out := append([]byte(nil), frame...)
	for i := 4; i < len(out); i++ {
		out[i] ^= 0xFF
	}
	return out
}

// byteQueue is the inbound pump's sink: an unbounded buffered pipe whose
// Read blocks until bytes or a terminal error arrive.
type byteQueue struct {
	mu   sync.Mutex
	buf  []byte // guardedby: mu
	err  error  // guardedby: mu
	wake chan struct{}
}

func newByteQueue() *byteQueue { return &byteQueue{wake: make(chan struct{}, 1)} }

func (q *byteQueue) Write(b []byte) (int, error) {
	q.mu.Lock()
	if err := q.err; err != nil {
		q.mu.Unlock()
		return 0, err
	}
	q.buf = append(q.buf, b...)
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
	return len(b), nil
}

func (q *byteQueue) Read(b []byte) (int, error) {
	for {
		q.mu.Lock()
		if len(q.buf) > 0 {
			n := copy(b, q.buf)
			q.buf = q.buf[n:]
			if len(q.buf) == 0 {
				q.buf = nil
			}
			q.mu.Unlock()
			return n, nil
		}
		err := q.err
		q.mu.Unlock()
		if err != nil {
			return 0, err
		}
		<-q.wake
	}
}

func (q *byteQueue) fail(err error) {
	q.mu.Lock()
	if q.err == nil {
		q.err = err
	}
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
}
