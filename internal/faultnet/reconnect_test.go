package faultnet_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"fastreg"
	"fastreg/internal/faultnet"
	"fastreg/internal/protocols"
	"fastreg/internal/quorum"
	"fastreg/internal/transport"
)

// TestCorruptionRejectedAndRecovered is the corrupt fault's acceptance
// path end to end: every request frame is corrupted for a window, the
// servers' fuzz-hardened codec must reject the garbage (killing the
// connections), and the client's redial + resend machinery must carry
// the operation to completion once the window closes. An operation
// succeeding here proves the corruption was neither accepted nor fatal.
func TestCorruptionRejectedAndRecovered(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets and a fault window; skipped with -short")
	}
	cfg := quorum.Config{S: 3, T: 1, R: 2, W: 2}
	plan := faultnet.NewPlan(1, faultnet.Rule{
		From:   "c",
		To:     "*",
		Window: faultnet.Window{Start: 0, End: 400 * time.Millisecond},
		Fault:  faultnet.Fault{Kind: faultnet.Corrupt},
	})
	addrs := make([]string, cfg.S)
	for i := 1; i <= cfg.S; i++ {
		impl, err := protocols.New("W2R2")
		if err != nil {
			t.Fatal(err)
		}
		lis, err := plan.Listen("127.0.0.1:0", fmt.Sprintf("s%d", i), "c")
		if err != nil {
			t.Fatal(err)
		}
		srv, err := transport.NewServer(cfg, impl, i, lis)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		addrs[i-1] = srv.Addr()
	}
	store, err := fastreg.Open(
		fastreg.Config{Servers: cfg.S, MaxCrashes: cfg.T, Readers: cfg.R, Writers: cfg.W},
		fastreg.W2R2, fastreg.WithTCP(addrs...))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	w, err := store.Writer(1)
	if err != nil {
		t.Fatal(err)
	}

	// The window is open NOW: this put's request frames arrive flipped at
	// every replica until it closes, so success requires surviving codec
	// rejection and reconnecting.
	plan.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	start := time.Now()
	if _, err := w.Put(ctx, "k", "v"); err != nil {
		t.Fatalf("put never recovered from the corruption window: %v", err)
	}
	if since := time.Since(start); since < 350*time.Millisecond {
		t.Fatalf("put completed in %v — inside the corruption window, so garbage was accepted", since)
	}

	// With the window closed the fleet must be healthy again.
	r, err := store.Reader(1)
	if err != nil {
		t.Fatal(err)
	}
	v, _, ok, err := r.Get(ctx, "k")
	if err != nil || !ok || v != "v" {
		t.Fatalf("post-window read: %q, %v, %v", v, ok, err)
	}
}
