// Package faultnet is the composable fault-injection layer for the live
// fleet: a palette of schedulable network faults — asymmetric partitions,
// per-direction delay/jitter, bandwidth caps, frame corruption and
// truncation, duplicate delivery, connection resets — expressed as rules
// over named endpoints and applied to the transport's byte and envelope
// streams.
//
// The design has three layers:
//
//   - Rules: a Rule names a direction (From → To, "*" wildcards), a
//     Window on the plan's virtual clock, and a Fault. Directions are
//     independent — dropping c→s2 while s2→c flows is one rule, which is
//     what makes partitions asymmetric.
//   - Plan: the seeded schedule. Every probabilistic decision (corrupt
//     this frame? how much jitter?) draws from a per-direction RNG
//     sub-seeded from (seed, from, to, connection instance), so the same
//     seed replays the same schedule regardless of unrelated goroutine
//     interleaving, and two directions never perturb each other's draws.
//   - Wrappers: Plan.WrapConn shims a net.Conn for the TCP path — it
//     parses the transport's length-prefixed frame stream in each
//     direction and applies fault actions per frame, so a corrupted
//     frame reaches the peer's fuzz-hardened codec (which must reject
//     it, killing the connection, which the client then redials). For
//     in-process transports, Plan.WrapTransportConn applies the
//     envelope-level subset of the palette. Plan.Listen wires the shim
//     into a transport.Listener a server can bind directly.
//
// faultnet sits strictly below the protocol layer: it never inspects
// envelopes beyond the frame boundary and cannot forge values (that is
// internal/byzantine's job). Its faults are exactly the ones a lossy,
// multihop network inflicts — the regime the wChain line of work shows
// quorum systems must survive.
package faultnet

import (
	"hash/fnv"
	"math/rand"
	"sync"
	"time"
)

// FaultKind enumerates the palette.
type FaultKind int

const (
	// Drop discards every matching frame — half of an asymmetric
	// partition (pair it with the reverse direction for a full one).
	Drop FaultKind = iota
	// Delay holds each frame for Fault.Delay plus uniform jitter in
	// [0, Fault.Jitter) before delivery; per-direction ordering is
	// preserved (a delayed frame delays everything behind it).
	Delay
	// Bandwidth caps the direction at Fault.BytesPerSec: each frame's
	// delivery time advances by len/rate, modeling a thin pipe.
	Bandwidth
	// Corrupt flips the body bytes of matching frames (with probability
	// Fault.Prob) while keeping the length header intact, so the peer
	// reads a well-framed but garbage body — the fuzz-hardened codec
	// must reject it and the connection dies.
	Corrupt
	// Truncate delivers only half of a matching frame's body and then
	// resets the connection, modeling a peer dying mid-write.
	Truncate
	// Duplicate delivers matching frames twice — the at-least-once
	// delivery the protocols' idempotent handlers must absorb.
	Duplicate
	// Reset closes the underlying connection when a matching frame
	// passes, forcing the client's redial/backoff path.
	Reset
)

// String names the kind the way scenario specs spell it.
func (k FaultKind) String() string {
	switch k {
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Bandwidth:
		return "bandwidth"
	case Corrupt:
		return "corrupt"
	case Truncate:
		return "truncate"
	case Duplicate:
		return "duplicate"
	case Reset:
		return "reset"
	}
	return "unknown"
}

// ParseFaultKind is String's inverse — the one mapping scenario specs
// (cmd/regstorm) use, so spelling lives here with the palette.
func ParseFaultKind(s string) (FaultKind, bool) {
	for k := Drop; k <= Reset; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// Fault is one palette entry; which parameters apply depends on Kind.
type Fault struct {
	Kind FaultKind

	// Delay faults: fixed base plus uniform jitter in [0, Jitter).
	Delay  time.Duration
	Jitter time.Duration

	// Bandwidth faults: the direction's byte rate.
	BytesPerSec int

	// Corrupt/Truncate/Duplicate/Reset: per-frame probability; 0 means
	// every matching frame (the common case for scheduled windows).
	Prob float64
}

// Window is an interval on the plan's virtual clock (durations since
// Plan.Start). End 0 means open-ended.
type Window struct {
	Start time.Duration
	End   time.Duration
}

// Contains reports whether the virtual instant falls inside the window.
func (w Window) Contains(now time.Duration) bool {
	return now >= w.Start && (w.End == 0 || now < w.End)
}

// Rule applies one fault to one direction during one window. From and To
// are endpoint names ("c", "s2", …; "*" matches any), chosen by whoever
// builds the wrappers — the rule layer never sees addresses.
type Rule struct {
	From, To string
	Window   Window
	Fault    Fault
}

func (r Rule) matches(from, to string) bool {
	return (r.From == "*" || r.From == from) && (r.To == "*" || r.To == to)
}

// Plan is a seeded fault schedule: the rules plus the virtual clock they
// are evaluated against and the derived per-direction randomness. A Plan
// is immutable after construction except for starting its clock; one
// Plan serves every connection of a scenario.
type Plan struct {
	seed  int64
	rules []Rule

	mu      sync.Mutex
	started bool              // guardedby: mu
	start   time.Time         // guardedby: mu
	seq     map[string]int64  // guardedby: mu — per-direction connection instance counter
	clock   func() time.Duration // guardedby: mu — overridden by SetClock (tests)
}

// NewPlan builds a plan from a seed and its rules. The virtual clock
// reads zero until Start is called, so open-ended windows beginning at 0
// are active immediately and later windows arm when the scenario starts.
func NewPlan(seed int64, rules ...Rule) *Plan {
	return &Plan{seed: seed, rules: rules, seq: make(map[string]int64)}
}

// Start begins the virtual clock (idempotent). Call it when the workload
// starts so windows measure scenario time, not setup time.
func (p *Plan) Start() {
	p.mu.Lock()
	if !p.started {
		p.started = true
		p.start = time.Now()
	}
	p.mu.Unlock()
}

// SetClock replaces the virtual clock (tests drive windows manually with
// it). Must be called before any wrapper is created.
func (p *Plan) SetClock(now func() time.Duration) {
	p.mu.Lock()
	p.clock = now
	p.mu.Unlock()
}

// Now is the virtual clock: time since Start (zero before it), or the
// SetClock override.
func (p *Plan) Now() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.clock != nil {
		return p.clock()
	}
	if !p.started {
		return 0
	}
	return time.Since(p.start)
}

// Rules returns the schedule (callers must not mutate it).
func (p *Plan) Rules() []Rule { return p.rules }

// Seed returns the plan's seed.
func (p *Plan) Seed() int64 { return p.seed }

// DirSeed derives the deterministic sub-seed for the n-th connection
// instance of direction from→to — exported so scenario runners can print
// the schedule a seed implies and prove two runs drew from identical
// sources.
func (p *Plan) DirSeed(from, to string, instance int64) int64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(p.seed >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(from))
	h.Write([]byte{0})
	h.Write([]byte(to))
	h.Write([]byte{0})
	for i := 0; i < 8; i++ {
		b[i] = byte(instance >> (8 * i))
	}
	h.Write(b[:])
	return int64(h.Sum64())
}

// direction is the per-connection, per-direction decision state: the
// sub-seeded RNG and the pacing accumulator. It is owned by exactly one
// wrapper goroutine-side at a time; the mutex covers the RNG because the
// TCP shim's feed (writer side) and tests may probe concurrently.
type direction struct {
	p        *Plan
	from, to string

	mu     sync.Mutex
	rng    *rand.Rand    // guardedby: mu
	paceAt time.Duration // guardedby: mu — virtual floor the next frame may deliver at (ordering + bandwidth)
}

// newDirection allocates the decision state for one connection instance
// of from→to, bumping the plan's instance counter so reconnects draw
// from a fresh — but still seed-determined — stream.
func (p *Plan) newDirection(from, to string) *direction {
	key := from + "\x00" + to
	p.mu.Lock()
	n := p.seq[key]
	p.seq[key] = n + 1
	p.mu.Unlock()
	return &direction{
		p:    p,
		from: from,
		to:   to,
		rng:  rand.New(rand.NewSource(p.DirSeed(from, to, n))),
	}
}

// action is the resolved fate of one frame.
type action struct {
	drop      bool
	corrupt   bool
	truncate  bool
	duplicate bool
	reset     bool
	// deliverAt is the virtual instant the frame may be written out
	// (ordering-, delay- and bandwidth-adjusted).
	deliverAt time.Duration
}

// decide folds every matching rule into one action for a frame of size n
// observed now. Matching is evaluated per frame so a window opening
// mid-connection takes effect immediately.
func (d *direction) decide(now time.Duration, n int) action {
	d.mu.Lock()
	defer d.mu.Unlock()
	a := action{deliverAt: now}
	if d.paceAt > a.deliverAt {
		a.deliverAt = d.paceAt
	}
	for _, r := range d.p.rules {
		if !r.matches(d.from, d.to) || !r.Window.Contains(now) {
			continue
		}
		f := r.Fault
		switch f.Kind {
		case Drop:
			a.drop = true
		case Delay:
			delay := f.Delay
			if f.Jitter > 0 {
				delay += time.Duration(d.rng.Int63n(int64(f.Jitter)))
			}
			a.deliverAt += delay
		case Bandwidth:
			if f.BytesPerSec > 0 {
				a.deliverAt += time.Duration(int64(n) * int64(time.Second) / int64(f.BytesPerSec))
			}
		case Corrupt:
			if d.hitLocked(f.Prob) {
				a.corrupt = true
			}
		case Truncate:
			if d.hitLocked(f.Prob) {
				a.truncate = true
			}
		case Duplicate:
			if d.hitLocked(f.Prob) {
				a.duplicate = true
			}
		case Reset:
			if d.hitLocked(f.Prob) {
				a.reset = true
			}
		}
	}
	if a.drop {
		return a // dropped frames neither pace nor deliver
	}
	d.paceAt = a.deliverAt
	return a
}

// hitLocked draws one probabilistic decision under d.mu (the caller,
// decide, holds it); prob 0 means always (a scheduled
// window IS the gate), anything else is a Bernoulli trial.
func (d *direction) hitLocked(prob float64) bool {
	if prob <= 0 || prob >= 1 {
		return true
	}
	return d.rng.Float64() < prob
}
