package faultnet

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"
)

func TestParseFaultKindRoundTrip(t *testing.T) {
	for k := Drop; k <= Reset; k++ {
		got, ok := ParseFaultKind(k.String())
		if !ok || got != k {
			t.Fatalf("ParseFaultKind(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := ParseFaultKind("nope"); ok {
		t.Fatal("unknown kind parsed")
	}
}

func TestWindowContains(t *testing.T) {
	w := Window{Start: 10, End: 20}
	for now, want := range map[time.Duration]bool{9: false, 10: true, 19: true, 20: false} {
		if w.Contains(now) != want {
			t.Fatalf("Window(10,20).Contains(%d) != %v", now, want)
		}
	}
	open := Window{Start: 5}
	if !open.Contains(time.Hour) || open.Contains(4) {
		t.Fatal("open-ended window wrong")
	}
}

// An asymmetric partition is one direction dropping while the reverse
// decides deliver — the defining property of the rule model.
func TestDecideAsymmetricDrop(t *testing.T) {
	p := NewPlan(1, Rule{From: "c", To: "s2", Fault: Fault{Kind: Drop}})
	fwd := p.newDirection("c", "s2")
	rev := p.newDirection("s2", "c")
	other := p.newDirection("c", "s1")
	if !fwd.decide(0, 100).drop {
		t.Fatal("c->s2 not dropped")
	}
	if rev.decide(0, 100).drop {
		t.Fatal("s2->c dropped: partition is not asymmetric")
	}
	if other.decide(0, 100).drop {
		t.Fatal("c->s1 dropped: rule leaked across directions")
	}
}

func TestDecideWindowGates(t *testing.T) {
	p := NewPlan(1, Rule{From: "*", To: "*",
		Window: Window{Start: 100 * time.Millisecond, End: 200 * time.Millisecond},
		Fault:  Fault{Kind: Drop}})
	d := p.newDirection("c", "s1")
	if d.decide(50*time.Millisecond, 10).drop {
		t.Fatal("dropped before the window")
	}
	if !d.decide(150*time.Millisecond, 10).drop {
		t.Fatal("not dropped inside the window")
	}
	if d.decide(250*time.Millisecond, 10).drop {
		t.Fatal("dropped after the window")
	}
}

// Every jitter draw must land in [base, base+jitter), and pacing must
// keep the direction ordered (monotone delivery instants).
func TestDecideDelayJitterBounds(t *testing.T) {
	base, jit := 5*time.Millisecond, 20*time.Millisecond
	p := NewPlan(7, Rule{From: "c", To: "s1", Fault: Fault{Kind: Delay, Delay: base, Jitter: jit}})
	d := p.newDirection("c", "s1")
	var prev time.Duration
	for i := 0; i < 200; i++ {
		floor := prev // pacing: deliverAt starts at max(now=0, paceAt)
		a := d.decide(0, 64)
		got := a.deliverAt - floor
		if got < base || got >= base+jit {
			t.Fatalf("frame %d delayed %v, want [%v,%v)", i, got, base, base+jit)
		}
		if a.deliverAt < prev {
			t.Fatalf("frame %d delivery %v before predecessor %v: reordered", i, a.deliverAt, prev)
		}
		prev = a.deliverAt
	}
}

func TestDecideBandwidthPacing(t *testing.T) {
	p := NewPlan(1, Rule{From: "*", To: "*", Fault: Fault{Kind: Bandwidth, BytesPerSec: 1000}})
	d := p.newDirection("c", "s1")
	a1 := d.decide(0, 500)
	if a1.deliverAt != 500*time.Millisecond {
		t.Fatalf("first 500B frame at %v, want 500ms", a1.deliverAt)
	}
	a2 := d.decide(0, 500)
	if a2.deliverAt != time.Second {
		t.Fatalf("second 500B frame at %v, want 1s (pacing must accumulate)", a2.deliverAt)
	}
}

// Same seed, same direction, same instance → byte-identical decision
// stream; a different seed must diverge.
func TestSeedDeterminism(t *testing.T) {
	rules := []Rule{
		{From: "c", To: "s1", Fault: Fault{Kind: Delay, Jitter: 50 * time.Millisecond}},
		{From: "c", To: "s1", Fault: Fault{Kind: Corrupt, Prob: 0.3}},
		{From: "c", To: "s1", Fault: Fault{Kind: Duplicate, Prob: 0.3}},
	}
	type step struct {
		at           time.Duration
		corrupt, dup bool
	}
	trace := func(seed int64) []step {
		d := NewPlan(seed, rules...).newDirection("c", "s1")
		var out []step
		for i := 0; i < 100; i++ {
			a := d.decide(0, 128)
			out = append(out, step{a.deliverAt, a.corrupt, a.duplicate})
		}
		return out
	}
	a, b := trace(42), trace(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d: same seed diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := trace(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical 100-step traces")
	}
	// Reconnects (new instances) draw fresh — but still seed-determined —
	// streams: instance sub-seeds must differ from instance 0's.
	p := NewPlan(42)
	if p.DirSeed("c", "s1", 0) == p.DirSeed("c", "s1", 1) {
		t.Fatal("instance 0 and 1 share a sub-seed")
	}
	if p.DirSeed("c", "s1", 0) == p.DirSeed("s1", "c", 0) {
		t.Fatal("opposite directions share a sub-seed")
	}
}

func TestFrameParserReassembly(t *testing.T) {
	var fp frameParser
	f1, f2 := frame([]byte("hello")), frame([]byte("world!"))
	stream := append(append([]byte(nil), f1...), f2...)
	var got [][]byte
	// Feed byte by byte: frames must come out whole regardless of
	// delivery fragmentation.
	for _, b := range stream {
		got = append(got, fp.feed([]byte{b})...)
	}
	if len(got) != 2 || string(got[0]) != string(f1) || string(got[1]) != string(f2) {
		t.Fatalf("reassembled %d frames: %q", len(got), got)
	}
	// A length beyond the codec bound means not-our-framing: the parser
	// must go transparent instead of buffering without bound.
	var raw frameParser
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3}
	out := raw.feed(huge)
	if len(out) != 1 || string(out[0]) != string(huge) {
		t.Fatalf("passthrough gave %q", out)
	}
	if !raw.passthrough {
		t.Fatal("parser not in passthrough mode")
	}
}

// --- shim tests over net.Pipe ---

func frame(body []byte) []byte {
	out := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(out, uint32(len(body)))
	copy(out[4:], body)
	return out
}

// pipeShim wraps one end of a net.Pipe: writes through the shim travel
// local→remote, bytes written to peer travel remote→local.
func pipeShim(t *testing.T, p *Plan, local, remote string) (shim, peer net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	s := p.WrapConn(a, local, remote)
	t.Cleanup(func() { s.Close(); b.Close() })
	return s, b
}

func readFrame(t *testing.T, c net.Conn, bodyLen int) []byte {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 4+bodyLen)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("reading frame: %v", err)
	}
	return buf
}

func TestShimDeliversBothDirections(t *testing.T) {
	p := NewPlan(1)
	shim, peer := pipeShim(t, p, "c", "s1")
	if _, err := shim.Write(frame([]byte("ping"))); err != nil {
		t.Fatal(err)
	}
	if got := readFrame(t, peer, 4); string(got[4:]) != "ping" {
		t.Fatalf("peer read %q", got)
	}
	if _, err := peer.Write(frame([]byte("pong"))); err != nil {
		t.Fatal(err)
	}
	if got := readFrame(t, shim, 4); string(got[4:]) != "pong" {
		t.Fatalf("shim read %q", got)
	}
}

func TestShimDropIsAsymmetric(t *testing.T) {
	p := NewPlan(1, Rule{From: "c", To: "s1", Fault: Fault{Kind: Drop}})
	shim, peer := pipeShim(t, p, "c", "s1")
	if _, err := shim.Write(frame([]byte("lost"))); err != nil {
		t.Fatal(err)
	}
	peer.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if n, err := peer.Read(make([]byte, 16)); err == nil {
		t.Fatalf("dropped frame delivered (%d bytes)", n)
	}
	// Reverse direction still flows.
	if _, err := peer.Write(frame([]byte("back"))); err != nil {
		t.Fatal(err)
	}
	if got := readFrame(t, shim, 4); string(got[4:]) != "back" {
		t.Fatalf("reverse direction read %q", got)
	}
}

func TestShimCorruptKeepsHeaderFlipsBody(t *testing.T) {
	p := NewPlan(1, Rule{From: "c", To: "s1", Fault: Fault{Kind: Corrupt}})
	shim, peer := pipeShim(t, p, "c", "s1")
	body := []byte{1, 2, 3, 4, 5}
	if _, err := shim.Write(frame(body)); err != nil {
		t.Fatal(err)
	}
	got := readFrame(t, peer, len(body))
	if binary.BigEndian.Uint32(got) != uint32(len(body)) {
		t.Fatalf("length header corrupted: %v", got[:4])
	}
	for i, b := range body {
		if got[4+i] != b^0xFF {
			t.Fatalf("body byte %d = %x, want flipped %x", i, got[4+i], b^0xFF)
		}
	}
}

func TestShimDuplicateDeliversTwice(t *testing.T) {
	p := NewPlan(1, Rule{From: "c", To: "s1", Fault: Fault{Kind: Duplicate}})
	shim, peer := pipeShim(t, p, "c", "s1")
	if _, err := shim.Write(frame([]byte("twin"))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if got := readFrame(t, peer, 4); string(got[4:]) != "twin" {
			t.Fatalf("copy %d read %q", i, got)
		}
	}
}

func TestShimTruncateHalvesThenResets(t *testing.T) {
	p := NewPlan(1, Rule{From: "c", To: "s1", Fault: Fault{Kind: Truncate}})
	shim, peer := pipeShim(t, p, "c", "s1")
	body := []byte("0123456789") // 10-byte body → 5 delivered
	if _, err := shim.Write(frame(body)); err != nil {
		t.Fatal(err)
	}
	peer.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	n := 0
	for {
		m, err := peer.Read(buf[n:])
		n += m
		if err != nil {
			break // connection reset after the partial write
		}
	}
	if n != 4+len(body)/2 {
		t.Fatalf("peer got %d bytes, want %d (header + half body)", n, 4+len(body)/2)
	}
	// The shim is dead now: further writes surface the injected reset.
	time.Sleep(10 * time.Millisecond)
	if _, err := shim.Write(frame([]byte("x"))); err == nil {
		t.Fatal("write succeeded after injected reset")
	}
}

func TestShimResetKillsConn(t *testing.T) {
	p := NewPlan(1, Rule{From: "c", To: "s1", Fault: Fault{Kind: Reset}})
	shim, peer := pipeShim(t, p, "c", "s1")
	if _, err := shim.Write(frame([]byte("boom"))); err != nil {
		t.Fatal(err)
	}
	// The frame itself is delivered whole, then the conn dies.
	if got := readFrame(t, peer, 4); string(got[4:]) != "boom" {
		t.Fatalf("read %q", got)
	}
	peer.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := peer.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer conn still alive after reset fault")
	}
	shim.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := shim.Read(make([]byte, 1)); err == nil {
		t.Fatal("shim read still alive after reset fault")
	}
}

func TestShimDelayHoldsFrame(t *testing.T) {
	p := NewPlan(1, Rule{From: "c", To: "s1", Fault: Fault{Kind: Delay, Delay: 150 * time.Millisecond}})
	p.Start()
	shim, peer := pipeShim(t, p, "c", "s1")
	start := time.Now()
	if _, err := shim.Write(frame([]byte("slow"))); err != nil {
		t.Fatal(err)
	}
	readFrame(t, peer, 4)
	if held := time.Since(start); held < 140*time.Millisecond {
		t.Fatalf("frame delivered after %v, want >= ~150ms", held)
	}
}
