package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	c := &Counter{}
	c.Add(3)
	c.Add(4)
	if got := c.Value(); got != 7 {
		t.Fatalf("Counter.Value = %d, want 7", got)
	}
	g := &Gauge{}
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("Gauge.Value = %d, want 7", got)
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var (
		c  *Counter
		g  *Gauge
		h  *Histogram
		r  *Registry
		tr *Tracer
		m  *OpMetrics
	)
	c.Add(1)
	g.Set(1)
	h.Observe(1)
	h.ObserveSince(time.Now())
	m.Op(true, 5, 1, false)
	m.Retry()
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil metrics must read zero")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	r.GaugeFunc("x", func() int64 { return 1 })
	if s := r.Snapshot(); len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	if NewOpMetrics(r, "p") != nil {
		t.Fatal("NewOpMetrics(nil) must be nil")
	}
	op := tr.Start("k", "read", "r1")
	if op != nil {
		t.Fatal("nil tracer must return nil trace")
	}
	op.Mark("sent", 1)
	tr.Finish(op)
	if tr.SlowCount() != 0 || tr.SlowOps() != nil || tr.Threshold() != 0 {
		t.Fatal("nil tracer must read zero")
	}
}

func TestBucketMappingMonotonicAndBounded(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 9, 15, 16, 100, 1000, 1e6, 1e9, 1e12, 1e15, 1e18, 1<<63 - 1} {
		idx := bucketOf(v)
		if idx < prev {
			t.Fatalf("bucketOf(%d) = %d < previous %d: not monotonic", v, idx, prev)
		}
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, idx)
		}
		prev = idx
		// The representative must be within the bucket's relative error
		// bound (~12.5% of the value for log buckets).
		if mid := bucketMid(idx); v >= 8 {
			lo, hi := float64(v)*0.80, float64(v)*1.20
			if float64(mid) < lo || float64(mid) > hi {
				t.Fatalf("bucketMid(bucketOf(%d)) = %d, outside [%.0f, %.0f]", v, mid, lo, hi)
			}
		} else if mid != v {
			t.Fatalf("small value %d must be exact, got representative %d", v, mid)
		}
	}
	if bucketOf(-5) != 0 {
		t.Fatal("negative values must clamp to bucket 0")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// 1..1000 uniformly: p50 ≈ 500, p95 ≈ 950, p99 ≈ 990 within the
	// ~12.5% bucket error.
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("Count = %d, want 1000", s.Count)
	}
	if s.Sum != 500500 {
		t.Fatalf("Sum = %d, want 500500 (sums are exact)", s.Sum)
	}
	check := func(q float64, want int64) {
		t.Helper()
		got := s.Quantile(q)
		lo, hi := float64(want)*0.75, float64(want)*1.25
		if float64(got) < lo || float64(got) > hi {
			t.Fatalf("Quantile(%v) = %d, want within [%.0f, %.0f]", q, got, lo, hi)
		}
	}
	check(0.50, 500)
	check(0.95, 950)
	check(0.99, 990)
	if s.Max() < 900 || s.Max() > 1100 {
		t.Fatalf("Max = %d, want ≈1000", s.Max())
	}
}

func TestHistogramSnapshotMerge(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	for i := 0; i < 100; i++ {
		a.Observe(10)
		b.Observe(1000)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 200 || sa.Sum != 100*10+100*1000 {
		t.Fatalf("merged Count/Sum = %d/%d", sa.Count, sa.Sum)
	}
	if p := sa.Quantile(0.25); p < 8 || p > 12 {
		t.Fatalf("merged p25 = %d, want ≈10", p)
	}
	if p := sa.Quantile(0.75); p < 750 || p > 1250 {
		t.Fatalf("merged p75 = %d, want ≈1000", p)
	}
}

// TestStressConcurrent hammers one histogram/counter/gauge set from 32
// goroutines with snapshot reads interleaved — the -race lock-in for the
// whole recording path.
func TestStressConcurrent(t *testing.T) {
	const (
		goroutines = 32
		perG       = 2000
	)
	reg := New()
	c := reg.Counter("stress.ops")
	g := reg.Gauge("stress.depth")
	h := reg.Histogram("stress.latency_ns")
	reg.GaugeFunc("stress.pull", func() int64 { return g.Value() })

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = reg.Snapshot()
					_ = h.Snapshot()
					_ = c.Value()
				}
			}
		}()
	}

	var writers sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			for j := 0; j < perG; j++ {
				c.Add(1)
				g.Add(1)
				h.Observe(seed*100 + int64(j%100))
				g.Add(-1)
			}
		}(int64(i))
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter lost updates: %d, want %d", got, goroutines*perG)
	}
	if got := h.Snapshot().Count; got != goroutines*perG {
		t.Fatalf("histogram lost observations: %d, want %d", got, goroutines*perG)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge should settle at 0, got %d", got)
	}
}

func TestTracerRecordsSlowOps(t *testing.T) {
	var buf strings.Builder
	tr := NewTracer(0, &buf) // threshold 0: every op is "slow"
	op := tr.Start("key-1", "write", "w2")
	op.Mark("sent", 1)
	op.Mark("quorum", 1)
	op.Mark("sent", 2)
	op.Mark("quorum", 2)
	tr.Finish(op)

	if tr.SlowCount() != 1 {
		t.Fatalf("SlowCount = %d, want 1", tr.SlowCount())
	}
	ops := tr.SlowOps()
	if len(ops) != 1 {
		t.Fatalf("SlowOps len = %d, want 1", len(ops))
	}
	rec := ops[0]
	if rec.Key != "key-1" || rec.Kind != "write" || rec.Client != "w2" {
		t.Fatalf("bad record: %+v", rec)
	}
	var names []string
	for _, s := range rec.Stages {
		names = append(names, s.Name)
	}
	want := []string{"queued", "sent", "quorum", "sent", "quorum", "done"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("stages %v, want %v", names, want)
	}
	line := buf.String()
	if !strings.Contains(line, `slow write key="key-1"`) || !strings.Contains(line, "r2:quorum@") {
		t.Fatalf("dump line %q missing fields", line)
	}
	// Pool reuse must not leak the previous op's stages.
	op2 := tr.Start("key-2", "read", "r1")
	tr.Finish(op2)
	ops = tr.SlowOps()
	if got := len(ops[1].Stages); got != 2 { // queued + done
		t.Fatalf("reused trace carried %d stages, want 2", got)
	}
}

func TestTracerRingBounded(t *testing.T) {
	tr := NewTracer(0, nil)
	for i := 0; i < slowRingCap+10; i++ {
		tr.Finish(tr.Start("k", "read", "r1"))
	}
	if got := len(tr.SlowOps()); got != slowRingCap {
		t.Fatalf("ring holds %d, want %d", got, slowRingCap)
	}
	if got := tr.SlowCount(); got != slowRingCap+10 {
		t.Fatalf("SlowCount = %d, want %d", got, slowRingCap+10)
	}
}

func TestTracerThresholdFiltersFastOps(t *testing.T) {
	tr := NewTracer(time.Hour, nil)
	tr.Finish(tr.Start("k", "read", "r1"))
	if tr.SlowCount() != 0 || len(tr.SlowOps()) != 0 {
		t.Fatal("an op far under threshold must not be retained")
	}
}

func TestHandlerEndpoints(t *testing.T) {
	reg := New()
	reg.Counter("client.W2R2.ops").Add(42)
	reg.GaugeFunc("server.worker.0.busy", func() int64 { return 1 })
	reg.Histogram("client.W2R2.write.latency_ns").Observe(1500)
	tr := NewTracer(0, nil)
	tr.Finish(tr.Start("k", "write", "w1"))

	srv := httptest.NewServer(Handler(reg, tr))
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		return b.String()
	}

	if got := get("/healthz"); !strings.Contains(got, "ok") {
		t.Fatalf("/healthz = %q", got)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/metrics")), &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	if snap.Counters["client.W2R2.ops"] != 42 {
		t.Fatalf("counter missing from /metrics: %+v", snap.Counters)
	}
	if snap.Gauges["server.worker.0.busy"] != 1 {
		t.Fatalf("gauge func missing from /metrics: %+v", snap.Gauges)
	}
	if h := snap.Histograms["client.W2R2.write.latency_ns"]; h.Count != 1 || h.P99 == 0 {
		t.Fatalf("histogram missing percentiles: %+v", h)
	}
	slow := get("/debug/slowops")
	if !strings.Contains(slow, `"total": 1`) || !strings.Contains(slow, `"kind": "write"`) {
		t.Fatalf("/debug/slowops = %s", slow)
	}
	// Nil registry and tracer: same endpoints, empty bodies, no panic.
	nilSrv := httptest.NewServer(Handler(nil, nil))
	defer nilSrv.Close()
	resp, err := nilSrv.Client().Get(nilSrv.URL + "/metrics")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("nil handler /metrics: %v %v", err, resp)
	}
	resp.Body.Close()
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := New()
	if reg.Counter("a") != reg.Counter("a") {
		t.Fatal("same name must return the same counter")
	}
	if reg.Histogram("h") != reg.Histogram("h") {
		t.Fatal("same name must return the same histogram")
	}
	names := reg.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "h" {
		t.Fatalf("Names = %v", names)
	}
}
