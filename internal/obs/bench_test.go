package obs

import (
	"testing"
	"time"
)

// The benchmark pairs below lock in the disabled-state contract: a nil
// metric is the off switch, and recording into it must cost one
// predictable branch — nothing measurable against the enabled path's
// few nanoseconds, and zero allocations either way.

func BenchmarkCounterAdd(b *testing.B) {
	c := &Counter{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	c := &Counter{}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := &Histogram{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkOpMetricsOp(b *testing.B) {
	m := NewOpMetrics(New(), "client.BENCH")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Op(i&1 == 0, int64(i), 2, false)
	}
}

func BenchmarkOpMetricsOpDisabled(b *testing.B) {
	var m *OpMetrics
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Op(i&1 == 0, int64(i), 2, false)
	}
}

func BenchmarkTracerStartFinish(b *testing.B) {
	tr := NewTracer(time.Hour, nil) // nothing crosses the threshold
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		op := tr.Start("k", "write", "w1")
		op.Mark("sent", 1)
		op.Mark("quorum", 1)
		tr.Finish(op)
	}
}

func BenchmarkTracerDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		op := tr.Start("k", "write", "w1")
		op.Mark("sent", 1)
		op.Mark("quorum", 1)
		tr.Finish(op)
	}
}
