// Package obs is the fleet's observability core: sharded atomic
// counters, gauges and log-scale latency histograms with percentile
// extraction, a named-metric registry with a JSON snapshot, and a
// slow-operation round tracer — all stdlib-only and allocation-free on
// the recording path.
//
// The disabled state is structural, not a flag check deep inside: every
// constructor accepts a nil *Registry and returns nil metrics, and every
// recording method is a no-op on a nil receiver. A runtime built without
// observability therefore carries nil pointers and pays one predictable
// branch per would-be record — nothing measurable — while a runtime
// built with it pays one or two uncontended atomic adds per event.
// (internal/obs's benchmark pair locks that contract in.)
//
// Metric names are dotted paths ("client.W2R2.write.latency_ns",
// "server.worker.3.busy"). The transport backend and the in-process
// netsim backend register the same client-side names, which is what
// makes the two backends' numbers directly comparable.
package obs

import (
	"sort"
	"sync"
)

// Registry is a process's named-metric namespace: get-or-create typed
// metrics by name, snapshot them all for /metrics. A nil *Registry is
// the disabled registry — every method is safe and returns nil/zero.
//
//lint:nildisabled
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() int64
	hists      map[string]*Histogram
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() int64),
		hists:      make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use; nil on a
// nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use; nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a pull gauge: fn is evaluated at snapshot time
// only, so values derivable on demand (queue depth, key count) cost the
// hot path nothing at all. fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// Histogram returns the named histogram, creating it on first use; nil
// on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// HistogramValue is a histogram rendered for the snapshot: count, exact
// sum, and the standard percentile ladder.
type HistogramValue struct {
	Count uint64  `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

// SnapshotOf renders one histogram snapshot into its reporting form.
func SnapshotOf(s HistogramSnapshot) HistogramValue {
	return HistogramValue{
		Count: s.Count,
		Sum:   s.Sum,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
		Max:   s.Max(),
	}
}

// Snapshot is the registry's point-in-time state — what /metrics serves.
// Pull gauges are evaluated here; panics in a gauge func are the
// registrant's bug and deliberately not recovered.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters"`
	Gauges     map[string]int64          `json:"gauges"`
	Histograms map[string]HistogramValue `json:"histograms"`
}

// Snapshot captures every registered metric. Safe on a nil registry
// (returns empty maps, so the JSON shape is stable either way).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramValue),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	gaugeFuncs := make(map[string]func() int64, len(r.gaugeFuncs))
	for k, v := range r.gaugeFuncs {
		gaugeFuncs[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	// Metric reads happen outside the registry lock: gauge funcs may take
	// their own locks (queue mutexes), and nothing here needs atomicity
	// across metrics.
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, fn := range gaugeFuncs {
		s.Gauges[k] = fn()
	}
	for k, h := range hists {
		s.Histograms[k] = SnapshotOf(h.Snapshot())
	}
	return s
}

// Names returns every registered metric name, sorted (tests, tooling).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for k := range r.counters {
		out = append(out, k)
	}
	for k := range r.gauges {
		out = append(out, k)
	}
	for k := range r.gaugeFuncs {
		out = append(out, k)
	}
	for k := range r.hists {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// OpMetrics is the client-side operation metric set both round engines
// (transport.Client and netsim.MultiLive) record into under the same
// names — per-protocol operation latency split by kind, rounds per
// operation, retries, and completed/failed counters. A nil *OpMetrics is
// the disabled set; every method no-ops.
//
//lint:nildisabled
type OpMetrics struct {
	WriteLatency *Histogram // ns, successful and failed writes alike
	ReadLatency  *Histogram // ns
	Rounds       *Histogram // round trips per completed operation
	Retries      *Counter   // re-send ticks while waiting for a quorum
	Ops          *Counter   // operations completed successfully
	Failed       *Counter   // operations failed (timeout, protocol error)
}

// NewOpMetrics registers the operation metric set under prefix
// (canonically "client.<protocol>"); nil registry → nil set.
func NewOpMetrics(r *Registry, prefix string) *OpMetrics {
	if r == nil {
		return nil
	}
	return &OpMetrics{
		WriteLatency: r.Histogram(prefix + ".write.latency_ns"),
		ReadLatency:  r.Histogram(prefix + ".read.latency_ns"),
		Rounds:       r.Histogram(prefix + ".rounds"),
		Retries:      r.Counter(prefix + ".retries"),
		Ops:          r.Counter(prefix + ".ops"),
		Failed:       r.Counter(prefix + ".failed"),
	}
}

// Op records one finished operation.
func (m *OpMetrics) Op(write bool, latencyNs int64, rounds int, failed bool) {
	if m == nil {
		return
	}
	if write {
		m.WriteLatency.Observe(latencyNs)
	} else {
		m.ReadLatency.Observe(latencyNs)
	}
	m.Rounds.Observe(int64(rounds))
	if failed {
		m.Failed.Add(1)
	} else {
		m.Ops.Add(1)
	}
}

// Retry counts one re-send attempt.
func (m *OpMetrics) Retry() {
	if m == nil {
		return
	}
	m.Retries.Add(1)
}
