package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
	"unsafe"
)

// stripes is the fan-out of the sharded counters (power of two). Eight
// cache lines bound worst-case contention at the core counts this repo
// targets without bloating a metric set past a KiB.
const stripes = 8

// padded is one cache-line-sized counter stripe: the padding keeps two
// stripes from false-sharing a line, which is the whole point of
// striping.
type padded struct {
	n atomic.Int64
	_ [56]byte
}

// stripeOf picks a stripe from the address of a stack byte. Distinct
// goroutines run on distinct stack allocations, so concurrent writers
// spread across stripes without any per-goroutine registration, TLS, or
// allocation; the exact distribution is irrelevant to correctness
// because readers sum all stripes.
func stripeOf() int {
	var b byte
	return int(uintptr(unsafe.Pointer(&b))>>9) & (stripes - 1)
}

// Counter is a monotonically increasing, striped atomic counter. All
// methods are safe on a nil receiver and do nothing — a nil Counter IS
// the disabled state, so hot paths pay exactly one predictable branch
// when metrics are off.
//
//lint:nildisabled
type Counter struct {
	s [stripes]padded
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.s[stripeOf()].n.Add(n)
}

// Value sums the stripes. The sum is linearizable per stripe, not across
// them — the usual (and sufficient) counter contract.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var v int64
	for i := range c.s {
		v += c.s[i].n.Load()
	}
	return v
}

// Gauge is an instantaneous value (queue depth, busy flag). Nil-safe
// like Counter.
//
//lint:nildisabled
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the current value by n.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value reads the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the histogram's bucket count: values 0..7 get exact
// buckets, larger values land in log₂ octaves split into 4 sub-buckets,
// so any recorded value is off by at most ~12.5% of itself — tight
// enough for latency percentiles without per-observation allocation.
const histBuckets = 256

// bucketOf maps a non-negative value to its bucket (monotonic in v).
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < 8 {
		return int(u)
	}
	e := bits.Len64(u) - 1 // ≥ 3
	m := (u >> (e - 2)) & 3
	idx := (e-1)*4 + int(m)
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketMid returns the representative (midpoint) value of a bucket —
// what quantile extraction reports for observations that landed there.
func bucketMid(idx int) int64 {
	if idx < 8 {
		return int64(idx)
	}
	e := idx/4 + 1
	m := idx % 4
	lo := uint64(4+m) << (e - 2)
	width := uint64(1) << (e - 2)
	return int64(lo + width/2)
}

// Histogram is a log-scale distribution of non-negative int64 samples
// (latencies in nanoseconds, batch sizes, round counts): one atomic
// increment per observation, no allocation, nil-safe. Percentiles come
// out of Snapshot.
//
//lint:nildisabled
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	sum     [stripes]padded
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(v)].Add(1)
	h.sum[stripeOf()].n.Add(v)
}

// ObserveSince records the elapsed nanoseconds since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(int64(time.Since(t0)))
}

// Snapshot copies the current distribution for quantile extraction.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	for i := range h.sum {
		s.Sum += h.sum[i].n.Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram, closed under
// Merge so distributions from several sources (e.g. write and read
// latency) can be combined before extracting quantiles.
type HistogramSnapshot struct {
	Count   uint64
	Sum     int64
	Buckets [histBuckets]uint64
}

// Merge folds another snapshot into this one.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Quantile returns the approximate q-quantile (q in [0,1]): the
// representative value of the bucket holding the rank. Zero when empty.
func (s *HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count-1))
	var cum uint64
	for i := range s.Buckets {
		cum += s.Buckets[i]
		if cum > rank {
			return bucketMid(i)
		}
	}
	return bucketMid(histBuckets - 1)
}

// Mean returns the exact arithmetic mean (the sum is tracked exactly).
func (s *HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Max returns the representative value of the highest occupied bucket.
func (s *HistogramSnapshot) Max() int64 {
	for i := histBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] > 0 {
			return bucketMid(i)
		}
	}
	return 0
}
