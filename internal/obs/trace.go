package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// slowRingCap bounds the retained slow-op records; /debug/slowops serves
// the most recent slowRingCap of them.
const slowRingCap = 64

// Stage is one mark on an operation's round timeline: a name
// ("queued", "sent", "quorum", "done"), the round it belongs to (0 for
// op-scoped marks), and its offset from the operation's start.
type Stage struct {
	Name  string        `json:"name"`
	Round uint8         `json:"round,omitempty"`
	At    time.Duration `json:"at_ns"`
}

// SlowOp is one operation that exceeded the tracer's threshold,
// preserved with its full round timeline.
type SlowOp struct {
	Key    string        `json:"key"`
	Kind   string        `json:"kind"`
	Client string        `json:"client"`
	Start  time.Time     `json:"start"`
	Total  time.Duration `json:"total_ns"`
	Stages []Stage       `json:"stages"`
}

// String renders one human-readable trace line:
//
//	slow write key="k" client=w2 total=52ms queued@0s r1:sent@12µs r1:quorum@50ms done@52ms
func (s SlowOp) String() string {
	out := fmt.Sprintf("slow %s key=%q client=%s total=%v", s.Kind, s.Key, s.Client, s.Total)
	for _, st := range s.Stages {
		if st.Round > 0 {
			out += fmt.Sprintf(" r%d:%s@%v", st.Round, st.Name, st.At)
		} else {
			out += fmt.Sprintf(" %s@%v", st.Name, st.At)
		}
	}
	return out
}

// Tracer records per-operation round timelines and keeps (and
// optionally prints) every operation slower than its threshold. The
// recording path is pooled: a live trace is an *OpTrace checked out by
// Start and retired by Finish, and only operations that actually exceed
// the threshold allocate a retained SlowOp. A nil *Tracer is the
// disabled tracer: Start returns nil, and a nil *OpTrace swallows every
// Mark — so an untraced operation pays one nil check per would-be mark.
//
//lint:nildisabled
type Tracer struct {
	threshold time.Duration
	out       io.Writer // optional line sink for slow dumps (nil = none)

	slow atomic.Int64 // total ops over threshold since start

	mu   sync.Mutex
	ring []SlowOp
	next int

	pool sync.Pool
}

// NewTracer creates a tracer that retains (and, with a non-nil out,
// prints) every operation taking threshold or longer. threshold 0
// traces every operation — diagnostics only.
func NewTracer(threshold time.Duration, out io.Writer) *Tracer {
	return &Tracer{threshold: threshold, out: out}
}

// Threshold returns the slow-op cutoff.
func (t *Tracer) Threshold() time.Duration {
	if t == nil {
		return 0
	}
	return t.threshold
}

// OpTrace is one in-flight operation's timeline, pooled across
// operations. Not safe for concurrent use — an operation is driven by
// one goroutine, which is the contract everywhere in this repo.
//
//lint:nildisabled
type OpTrace struct {
	key, kind, client string
	start             time.Time
	stages            []Stage
}

// Start checks a trace out of the pool for one operation. Returns nil
// on a nil tracer.
func (t *Tracer) Start(key, kind, client string) *OpTrace {
	if t == nil {
		return nil
	}
	tr, _ := t.pool.Get().(*OpTrace)
	if tr == nil {
		tr = &OpTrace{stages: make([]Stage, 0, 8)}
	}
	tr.key, tr.kind, tr.client = key, kind, client
	tr.start = time.Now()
	tr.stages = append(tr.stages[:0], Stage{Name: "queued"})
	return tr
}

// Mark appends one stage at the current offset. Safe on a nil trace.
func (tr *OpTrace) Mark(name string, round uint8) {
	if tr == nil {
		return
	}
	tr.stages = append(tr.stages, Stage{Name: name, Round: round, At: time.Since(tr.start)})
}

// Finish closes the trace: the "done" mark is appended, the total
// compared against the threshold, and the trace returned to the pool.
// Safe with a nil trace (no-op), so callers can pair every Start with
// one Finish unconditionally.
func (t *Tracer) Finish(tr *OpTrace) {
	if t == nil || tr == nil {
		return
	}
	total := time.Since(tr.start)
	if total >= t.threshold {
		t.slow.Add(1)
		rec := SlowOp{
			Key:    tr.key,
			Kind:   tr.kind,
			Client: tr.client,
			Start:  tr.start,
			Total:  total,
			Stages: append(append([]Stage(nil), tr.stages...), Stage{Name: "done", At: total}),
		}
		t.mu.Lock()
		if len(t.ring) < slowRingCap {
			t.ring = append(t.ring, rec)
		} else {
			t.ring[t.next] = rec
			t.next = (t.next + 1) % slowRingCap
		}
		out := t.out
		t.mu.Unlock()
		if out != nil {
			fmt.Fprintln(out, "obs:", rec.String())
		}
	}
	t.pool.Put(tr)
}

// SlowCount reports how many operations have exceeded the threshold
// since the tracer started (including ones the ring has since dropped).
func (t *Tracer) SlowCount() int64 {
	if t == nil {
		return 0
	}
	return t.slow.Load()
}

// SlowOps returns the retained slow operations, oldest first.
func (t *Tracer) SlowOps() []SlowOp {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SlowOp, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}
