package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Handler serves a process's debug surface — what every binary mounts
// behind its -debug-addr flag:
//
//	/metrics        the registry snapshot as JSON (counters, gauges,
//	                histograms with p50/p95/p99)
//	/healthz        200 "ok" — liveness for fleet tooling
//	/debug/slowops  the tracer's retained slow operations as JSON
//	/debug/pprof/*  the standard pprof handlers
//
// Both reg and tr may be nil: the endpoints stay up with empty bodies,
// so the debug surface's shape never depends on which subsystems were
// enabled.
func Handler(reg *Registry, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, reg.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/slowops", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, struct {
			Threshold int64    `json:"threshold_ns"`
			Total     int64    `json:"total"`
			Recent    []SlowOp `json:"recent"`
		}{int64(tr.Threshold()), tr.SlowCount(), tr.SlowOps()})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
