package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NilRecv enforces the nil-disabled contract of internal/obs: for types
// annotated //lint:nildisabled, a nil pointer is a valid, "disabled"
// instance, so every exported pointer-receiver method must guard the
// receiver against nil before touching any receiver field. That is what
// lets instrumentation call sites run unconditionally with metrics off.
//
// A method with no receiver-field access (pure delegation) needs no
// guard. The guard is an if statement whose condition nil-compares the
// receiver (possibly in a || chain, e.g. `if t == nil || tr == nil`)
// and whose body terminates with a return.
var NilRecv = &Analyzer{
	Name: "nilrecv",
	Doc:  "exported methods on nil-disabled types must nil-guard the receiver before field access",
	Run:  runNilRecv,
}

func runNilRecv(pass *Pass) error {
	disabled := make(map[types.Object]bool)
	forEachType(pass, func(gd *ast.GenDecl, ts *ast.TypeSpec) {
		if _, ok := typeDirective(gd, ts, "nildisabled"); ok {
			disabled[pass.Info.Defs[ts.Name]] = true
		}
	})
	if len(disabled) == 0 {
		return nil
	}

	forEachFunc(pass, func(fd *ast.FuncDecl) {
		if fd.Recv == nil || !fd.Name.IsExported() || len(fd.Recv.List) == 0 {
			return
		}
		recvField := fd.Recv.List[0]
		star, ok := recvField.Type.(*ast.StarExpr)
		if !ok {
			return // value receiver: nil does not apply
		}
		tid, ok := baseTypeIdent(star.X)
		if !ok || !disabled[pass.ObjectOf(tid)] {
			return
		}
		if len(recvField.Names) == 0 || recvField.Names[0].Name == "_" {
			// Unnamed receiver: the method cannot touch fields.
			return
		}
		recvObj := pass.Info.Defs[recvField.Names[0]]
		checkNilGuard(pass, fd, recvObj)
	})
	return nil
}

func baseTypeIdent(e ast.Expr) (*ast.Ident, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e, true
	case *ast.IndexExpr: // generic receiver T[P]
		return baseTypeIdent(e.X)
	}
	return nil, false
}

func checkNilGuard(pass *Pass, fd *ast.FuncDecl, recv types.Object) {
	// Find the first receiver-field access and the first nil guard, by
	// source position ("must begin with the guard" is a style rule, so
	// positional order is the right notion here).
	var firstAccess *ast.SelectorExpr
	var guardPos token.Pos = token.NoPos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.IfStmt:
			if guardPos == token.NoPos && condNilChecks(pass, n.Cond, recv) && terminates(n.Body) {
				guardPos = n.Pos()
			}
		case *ast.SelectorExpr:
			if firstAccess == nil {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && pass.ObjectOf(id) == recv {
					if s, ok := pass.Info.Selections[n]; ok && s.Kind() == types.FieldVal {
						firstAccess = n
					}
				}
			}
		}
		return true
	})
	if firstAccess == nil {
		return // never dereferences the receiver
	}
	if guardPos == token.NoPos {
		pass.Reportf(fd.Name.Pos(), "exported method %s on nil-disabled type accesses receiver fields without a nil-receiver guard", fd.Name.Name)
		return
	}
	if firstAccess.Pos() < guardPos {
		pass.Reportf(firstAccess.Pos(), "receiver field %s accessed before the nil-receiver guard in exported method %s", firstAccess.Sel.Name, fd.Name.Name)
	}
}

// condNilChecks reports whether cond contains `recv == nil` as a
// disjunct (descending || chains and parens).
func condNilChecks(pass *Pass, cond ast.Expr, recv types.Object) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LOR:
			return condNilChecks(pass, e.X, recv) || condNilChecks(pass, e.Y, recv)
		case token.EQL:
			x, y := ast.Unparen(e.X), ast.Unparen(e.Y)
			if isNilIdent(pass, y) {
				if id, ok := x.(*ast.Ident); ok && pass.ObjectOf(id) == recv {
					return true
				}
			}
			if isNilIdent(pass, x) {
				if id, ok := y.(*ast.Ident); ok && pass.ObjectOf(id) == recv {
					return true
				}
			}
		}
	}
	return false
}

// terminates reports whether the block's last statement is a return.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	_, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
	return ok
}
