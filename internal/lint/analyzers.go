package lint

import (
	"go/ast"
	"go/types"
)

// All returns the full fastreg analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		PooledAlias,
		CtxFirst,
		ShardLock,
		NilRecv,
		CaptureOrder,
	}
}

// ByName resolves a comma-separated analyzer selection.
func ByName(names []string) []*Analyzer {
	var out []*Analyzer
	for _, n := range names {
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------
// shared type/AST helpers

// calleeFunc resolves the called function object of a call, if any
// (package function, method, or local func value it can see through).
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pass.ObjectOf(fun).(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := pass.ObjectOf(fun.Sel).(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isPkgFunc reports whether call invokes the package-level function
// pkgPath.name.
func isPkgFunc(pass *Pass, call *ast.CallExpr, pkgPath, name string) bool {
	f := calleeFunc(pass, call)
	return f != nil && f.Name() == name && f.Pkg() != nil &&
		f.Pkg().Path() == pkgPath && f.Type().(*types.Signature).Recv() == nil
}

// methodCallName returns the selector name of a method-style call
// ("conn.SendBatch(...)" -> "SendBatch"), or "".
func methodCallName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return ""
}

// identVar resolves a bare identifier expression to its *types.Var.
func identVar(pass *Pass, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pass.ObjectOf(id).(*types.Var)
	return v
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(pass *Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && pass.ObjectOf(id) == types.Universe.Lookup("nil")
}

// isDeferOrGo reports whether the unit is a defer or go statement
// (executed at a different time than its program point).
func isDeferOrGo(u unit) bool {
	switch u.node.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		return true
	}
	return false
}
