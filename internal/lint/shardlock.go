package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ShardLock enforces `// guardedby: <mutex>` annotations on struct
// fields (the shard maps of internal/keyreg and internal/transport):
// every access to a guarded field must happen while the named sibling
// mutex of the same base value is held on every path into the access.
//
// The analysis is a must-held forward dataflow per (base expression,
// mutex) pair: `sh.mu.Lock()` or a wrapper `sh.Lock()` sets held,
// `Unlock` clears it, a deferred Unlock keeps it held to function end.
// Functions whose name ends in "Locked" declare the caller-holds-lock
// convention and are assumed to start with the lock held.
var ShardLock = &Analyzer{
	Name: "shardlock",
	Doc:  "guarded shard fields must be accessed with their shard mutex held on every path",
	Run:  runShardLock,
}

func runShardLock(pass *Pass) error {
	guarded := collectGuarded(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, reg := range regions(pass) {
		if reg.decl != nil && strings.HasSuffix(reg.decl.Name.Name, "Locked") {
			// Caller-holds-lock convention; the call sites are checked
			// instead (they must hold the lock to reach the map).
			continue
		}
		shardLockRegion(pass, reg, guarded)
	}
	return nil
}

// collectGuarded maps each annotated struct field to the name of its
// guarding mutex field.
func collectGuarded(pass *Pass) map[*types.Var]string {
	out := make(map[*types.Var]string)
	forEachType(pass, func(_ *ast.GenDecl, ts *ast.TypeSpec) {
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return
		}
		for _, f := range st.Fields.List {
			mu, ok := fieldDirective(f, "guardedby")
			if !ok || mu == "" {
				continue
			}
			// The annotation may share the line comment with prose
			// ("guardedby: mu — details"): the mutex name is the first
			// token.
			mu = strings.Fields(mu)[0]
			for _, name := range f.Names {
				if v, ok := pass.Info.Defs[name].(*types.Var); ok {
					out[v] = mu
				}
			}
		}
	})
	return out
}

// lockKey identifies one runtime lock: the rendered base expression
// ("sh", "lc", "r.shards[i]") plus the mutex field name.
type lockKey struct {
	base string
	mu   string
}

// guardedAccess is one guarded-field access site.
type guardedAccess struct {
	sel   *ast.SelectorExpr
	field *types.Var
	key   lockKey
}

func shardLockRegion(pass *Pass, reg funcRegion, guarded map[*types.Var]string) {
	// Pass 1: find guarded accesses and the lock keys involved.
	var accesses []guardedAccess
	ast.Inspect(reg.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate region
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		v := selectedField(pass, sel)
		if v == nil {
			return true
		}
		mu, ok := guarded[v]
		if !ok {
			return true
		}
		accesses = append(accesses, guardedAccess{
			sel:   sel,
			field: v,
			key:   lockKey{base: types.ExprString(sel.X), mu: mu},
		})
		return true
	})
	if len(accesses) == 0 {
		return
	}

	g := buildCFG(reg.body)
	keys := make(map[lockKey][]guardedAccess)
	for _, a := range accesses {
		keys[a.key] = append(keys[a.key], a)
	}
	for key, accs := range keys {
		checkLockKey(pass, g, reg, key, accs)
	}
}

// selectedField resolves a selector to the struct field it reads, if
// any (both direct and promoted/embedded selections).
func selectedField(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
		return nil
	}
	// Qualified identifiers and non-field selections land here.
	if v, ok := pass.Info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// lockCall classifies a call as Lock/Unlock on key: either on the
// mutex field itself (base.mu.Lock()) or a wrapper method on the base
// (base.Lock()).
func lockCall(call *ast.CallExpr, key lockKey) (locks, unlocks bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false, false
	}
	var isLock, isUnlock bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		isLock = true
	case "Unlock", "RUnlock":
		isUnlock = true
	default:
		return false, false
	}
	recv := ast.Unparen(sel.X)
	// base.mu.Lock()
	if ms, ok := recv.(*ast.SelectorExpr); ok &&
		ms.Sel.Name == key.mu && types.ExprString(ms.X) == key.base {
		return isLock, isUnlock
	}
	// base.Lock() wrapper (e.g. keyreg.ServerShard.Lock).
	if types.ExprString(recv) == key.base {
		return isLock, isUnlock
	}
	return false, false
}

func checkLockKey(pass *Pass, g *cfg, reg funcRegion, key lockKey, accs []guardedAccess) {
	transfer := func(u unit, in bool) bool {
		if isDeferOrGo(u) {
			return in // deferred Unlock holds the lock to function end
		}
		st := in
		inspectUnit(u, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				locks, unlocks := lockCall(call, key)
				if locks {
					st = true
				}
				if unlocks {
					st = false
				}
			}
			return true
		})
		return st
	}
	entry := g.forwardFlow(false, true, transfer)

	reported := make(map[*ast.SelectorExpr]bool)
	for _, blk := range g.blocks {
		st := entry[blk.index]
		for _, u := range blk.units {
			if isDeferOrGo(u) {
				continue
			}
			// Check accesses inside this unit against the state at
			// unit entry (a Lock in the same unit precedes only the
			// accesses after it syntactically; treat in-unit Lock as
			// covering the unit's accesses only if it appears first —
			// simple statements make this ambiguity negligible, so
			// apply the transfer first and use the out-state).
			out := transfer(u, st)
			held := st || out
			inspectUnit(u, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				for _, a := range accs {
					if a.sel == sel && !held && !reported[sel] {
						reported[sel] = true
						pass.Reportf(sel.Pos(), "%s.%s accessed without holding %s.%s (guardedby) in %s",
							key.base, a.field.Name(), key.base, key.mu, reg.name())
					}
				}
				return true
			})
			st = out
		}
	}
}
