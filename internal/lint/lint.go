// Package lint is fastreg's in-tree static-analysis framework: a small,
// dependency-free reimplementation of the go/analysis idiom (Analyzer,
// Pass, Diagnostic) plus the repo-specific machinery the analyzers
// share — annotation directives, //lint:ignore suppression, and a
// statement-level control-flow graph (cfg.go) for the dataflow checks.
//
// The framework is deliberately stdlib-only: the build environment has
// no module proxy, so golang.org/x/tools is unavailable. Packages are
// loaded through `go list -export` and type-checked with go/types
// against compiler export data (load.go), which gives every pass a
// fully typed AST without any external dependency.
//
// Directives understood across the suite:
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//	    Suppresses matching diagnostics on the same line or the line
//	    below. The reason is mandatory; the driver counts suppressions.
//	// guardedby: <mutexfield>
//	    On a struct field: the field may only be accessed while the
//	    sibling mutex field is held (shardlock).
//	//lint:consumes <param>
//	    On a function: calling it transfers ownership of the named
//	    slice parameter back to the pool (pooledalias).
//	//lint:returnspooled
//	    On a function: its first result is a pooled slab (pooledalias).
//	//lint:nildisabled
//	    On a type: a nil receiver means "disabled"; exported pointer
//	    methods must nil-guard before touching fields (nilrecv).
//	//lint:captureflush
//	    On a function: every return must be dominated by the capture
//	    hook flush (captureorder, durable-before-visible).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Version identifies the analyzer suite build. It is printed by the
// driver's -V=full handshake (the `go vet -vettool` protocol requires a
// non-"devel" version token) and stamped into fastreg-bench records so
// perf results are attributable to a toolchain.
const Version = "v1.8.0"

// An Analyzer is one named check. Run inspects a single package and
// reports findings through the Pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is one finding, positioned and attributed to an analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ObjectOf resolves an identifier to its object (uses or defs).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Info.Uses[id]; o != nil {
		return o
	}
	return p.Info.Defs[id]
}

// Result is the outcome of running a set of analyzers over packages.
type Result struct {
	// Diags are the live findings, sorted by position.
	Diags []Diagnostic
	// Suppressed are findings silenced by a //lint:ignore directive.
	Suppressed []Diagnostic
	// BadIgnores are malformed //lint:ignore directives (missing
	// analyzer name or reason) — reported as findings so suppressions
	// always carry an auditable reason.
	BadIgnores []Diagnostic
}

// Run executes every analyzer over every package and applies
// //lint:ignore suppression.
func Run(pkgs []*Package, analyzers []*Analyzer) (Result, error) {
	var res Result
	var all []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &all,
			}
			if err := a.Run(pass); err != nil {
				return res, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
		ign, bad := collectIgnores(pkg)
		res.BadIgnores = append(res.BadIgnores, bad...)
		n := all[:0]
		for _, d := range all {
			if ign.matches(d) {
				res.Suppressed = append(res.Suppressed, d)
			} else {
				n = append(n, d)
			}
		}
		res.Diags = append(res.Diags, n...)
		all = all[:0]
	}
	sortDiags(res.Diags)
	sortDiags(res.Suppressed)
	sortDiags(res.BadIgnores)
	return res, nil
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i].Pos, ds[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file      string
	line      int // the line the directive is written on
	analyzers []string
}

type ignoreSet struct{ ds []ignoreDirective }

// matches reports whether d is suppressed: a directive on the same line
// or the line directly above, naming d's analyzer (or "all").
func (s ignoreSet) matches(d Diagnostic) bool {
	for _, ig := range s.ds {
		if ig.file != d.Pos.Filename {
			continue
		}
		if ig.line != d.Pos.Line && ig.line != d.Pos.Line-1 {
			continue
		}
		for _, a := range ig.analyzers {
			if a == d.Analyzer || a == "all" {
				return true
			}
		}
	}
	return false
}

var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)(\s+(.*))?$`)

// collectIgnores parses every //lint:ignore directive in the package.
// Directives without a reason are returned as BadIgnores and do not
// suppress anything.
func collectIgnores(pkg *Package) (ignoreSet, []Diagnostic) {
	var set ignoreSet
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if strings.TrimSpace(m[3]) == "" {
					bad = append(bad, Diagnostic{
						Analyzer: "lintdirective",
						Pos:      pos,
						Message:  "//lint:ignore needs a reason: //lint:ignore <analyzer> <reason>",
					})
					continue
				}
				set.ds = append(set.ds, ignoreDirective{
					file:      pos.Filename,
					line:      pos.Line,
					analyzers: strings.Split(m[1], ","),
				})
			}
		}
	}
	return set, bad
}

// directive extracts a named //lint:<name> or "// <name>:" directive
// from a comment group, returning its argument text and whether it was
// present. Both comment styles are accepted so struct-field annotations
// can read naturally (`// guardedby: mu`).
func directive(doc *ast.CommentGroup, name string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text := c.Text
		if arg, ok := strings.CutPrefix(text, "//lint:"+name); ok {
			if arg == "" || strings.HasPrefix(arg, " ") || strings.HasPrefix(arg, "\t") {
				return strings.TrimSpace(arg), true
			}
			continue
		}
		trimmed := strings.TrimSpace(strings.TrimPrefix(text, "//"))
		if arg, ok := strings.CutPrefix(trimmed, name+":"); ok {
			return strings.TrimSpace(arg), true
		}
	}
	return "", false
}

// funcDirective looks up a directive on a function declaration.
func funcDirective(fd *ast.FuncDecl, name string) (string, bool) {
	return directive(fd.Doc, name)
}

// fieldDirective looks up a directive on a struct field, checking both
// the doc comment above and the trailing line comment.
func fieldDirective(f *ast.Field, name string) (string, bool) {
	if arg, ok := directive(f.Doc, name); ok {
		return arg, true
	}
	return directive(f.Comment, name)
}

// typeDirective looks up a directive on a type declaration: the
// TypeSpec's own doc, its line comment, or the enclosing GenDecl's doc.
func typeDirective(gd *ast.GenDecl, ts *ast.TypeSpec, name string) (string, bool) {
	if arg, ok := directive(ts.Doc, name); ok {
		return arg, true
	}
	if arg, ok := directive(ts.Comment, name); ok {
		return arg, true
	}
	return directive(gd.Doc, name)
}

// forEachFunc invokes f for every function/method declaration with a
// body in the package.
func forEachFunc(pass *Pass, fn func(fd *ast.FuncDecl)) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// forEachType invokes fn for every type declaration in the package.
func forEachType(pass *Pass, fn func(gd *ast.GenDecl, ts *ast.TypeSpec)) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok {
					fn(gd, ts)
				}
			}
		}
	}
}

// funcRegion is one analysis region: a FuncDecl body or a FuncLit body.
// Closures are separate regions because they execute at a different
// time than their enclosing function (e.g. deferred pool releases).
type funcRegion struct {
	decl *ast.FuncDecl // nil for closures
	lit  *ast.FuncLit  // nil for declarations
	body *ast.BlockStmt
}

func (r funcRegion) name() string {
	if r.decl != nil {
		return r.decl.Name.Name
	}
	return "func literal"
}

// regions returns every analysis region in the package: each declared
// function plus each function literal, innermost bodies excluded from
// their parents (the CFG builder never descends into a FuncLit).
func regions(pass *Pass) []funcRegion {
	var out []funcRegion
	forEachFunc(pass, func(fd *ast.FuncDecl) {
		out = append(out, funcRegion{decl: fd, body: fd.Body})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				out = append(out, funcRegion{lit: fl, body: fl.Body})
			}
			return true
		})
	})
	return out
}
