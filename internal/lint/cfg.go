package lint

// A statement-level control-flow graph, built directly from the AST.
// It exists so the dataflow analyzers (pooledalias, shardlock,
// captureorder) are path-sensitive: "PutEnvs then continue" must not
// poison the SendBatch on the fall-through path, and "Lock on one arm
// only" must still flag the join.
//
// The graph is made of blocks of units. A unit is the smallest
// separately-executed piece of a statement: an if's init and cond are
// units of the block before the branch, a for's post statement is its
// own block, a range statement contributes one unit for the ranged-over
// expression and one per-iteration unit for the key/value assignment.
// Every expression of the function body appears in exactly one unit;
// function literal bodies are excluded (they are separate analysis
// regions, see regions()).

import (
	"go/ast"
	"go/token"
)

// unit is one atomically-executed node. For a *ast.RangeStmt node the
// unit means "the per-iteration key/value assignment", not the body;
// inspectUnit encodes the per-kind traversal rules.
type unit struct {
	node ast.Node
	// rangeIter marks the per-iteration unit of a range statement (the
	// same *ast.RangeStmt node also appears as the ranged-expression
	// unit in the pre-header block).
	rangeIter bool
	// encl lists the enclosing compound statements, outermost first,
	// at the time the unit executes. Used with cfg.follow to find the
	// blocks where control provably has passed the unit.
	encl []ast.Stmt
}

// block is a basic block: units executed in order, then a transfer to
// one of succs. A block with no successors ends the function.
type block struct {
	index int
	units []unit
	succs []*block
	preds []*block
}

type cfg struct {
	entry  *block
	blocks []*block
	// follow maps a compound statement (if/for/range/switch/select) to
	// the block where control resumes after the whole construct.
	follow map[ast.Stmt]*block
	dom    []bitset // dom[i] = set of blocks dominating block i (lazily built)
}

// ---------------------------------------------------------------------
// construction

type loopTargets struct {
	brk, cont *block
}

type cfgBuilder struct {
	g      *cfg
	cur    *block // nil after a terminating statement (return, goto onward)
	loops  []loopTargets
	labels map[string]loopTargets
	encl   []ast.Stmt
	// fallTarget is the entry block of the next case clause while a
	// clause body is being built (fallthrough's destination).
	fallTarget *block
}

func buildCFG(body *ast.BlockStmt) *cfg {
	g := &cfg{follow: make(map[ast.Stmt]*block)}
	b := &cfgBuilder{g: g, labels: make(map[string]loopTargets)}
	b.cur = b.newBlock()
	g.entry = b.cur
	b.stmtList(body.List)
	for _, blk := range g.blocks {
		for _, s := range blk.succs {
			s.preds = append(s.preds, blk)
		}
	}
	return g
}

func (b *cfgBuilder) newBlock() *block {
	blk := &block{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

// ensure makes sure there is a current block (statements after a
// terminator are dead code but still get units).
func (b *cfgBuilder) ensure() *block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) edge(from, to *block) {
	if from != nil {
		from.succs = append(from.succs, to)
	}
}

func (b *cfgBuilder) addUnit(n ast.Node, rangeIter bool) {
	blk := b.ensure()
	enc := make([]ast.Stmt, len(b.encl))
	copy(enc, b.encl)
	blk.units = append(blk.units, unit{node: n, rangeIter: rangeIter, encl: enc})
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) push(s ast.Stmt) { b.encl = append(b.encl, s) }
func (b *cfgBuilder) pop()            { b.encl = b.encl[:len(b.encl)-1] }

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		b.labeledStmt(s)

	case *ast.ReturnStmt:
		b.addUnit(s, false)
		b.cur = nil

	case *ast.BranchStmt:
		b.branchStmt(s, "")

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s, "")

	case *ast.RangeStmt:
		b.rangeStmt(s, "")

	case *ast.SwitchStmt:
		b.switchStmt(s, "")

	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, "")

	case *ast.SelectStmt:
		b.selectStmt(s, "")

	case *ast.EmptyStmt:
		// no unit

	default:
		// Simple statements: assign, expr, send, inc/dec, go, defer,
		// decl. One unit each.
		b.addUnit(s, false)
	}
}

func (b *cfgBuilder) labeledStmt(s *ast.LabeledStmt) {
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		b.forStmt(inner, s.Label.Name)
	case *ast.RangeStmt:
		b.rangeStmt(inner, s.Label.Name)
	case *ast.SwitchStmt:
		b.switchStmt(inner, s.Label.Name)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(inner, s.Label.Name)
	case *ast.SelectStmt:
		b.selectStmt(inner, s.Label.Name)
	default:
		// Label on a plain statement: only meaningful as a goto
		// target. Start a fresh block so the label has a join point.
		next := b.newBlock()
		b.edge(b.cur, next)
		b.cur = next
		b.labels[s.Label.Name] = loopTargets{brk: nil, cont: nil}
		b.stmt(s.Stmt)
	}
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt, _ string) {
	b.addUnit(s, false)
	var t loopTargets
	if s.Label != nil {
		t = b.labels[s.Label.Name]
	} else if len(b.loops) > 0 {
		t = b.loops[len(b.loops)-1]
	}
	switch s.Tok {
	case token.BREAK:
		if t.brk != nil {
			b.edge(b.cur, t.brk)
		}
		b.cur = nil
	case token.CONTINUE:
		if t.cont != nil {
			b.edge(b.cur, t.cont)
		}
		b.cur = nil
	case token.GOTO:
		// Unstructured; treat as terminating. The repo does not use
		// goto (enforced by taste, not by this tool).
		b.cur = nil
	case token.FALLTHROUGH:
		// Handled by switchStmt via the next-case edge; here we just
		// mark the block as not falling to the join.
		b.cur = nil
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.addUnit(s.Cond, false)
	cond := b.ensure()
	join := b.newBlock()
	b.g.follow[s] = join

	b.push(s)
	thenB := b.newBlock()
	b.edge(cond, thenB)
	b.cur = thenB
	b.stmt(s.Body)
	b.edge(b.cur, join)

	if s.Else != nil {
		elseB := b.newBlock()
		b.edge(cond, elseB)
		b.cur = elseB
		b.stmt(s.Else)
		b.edge(b.cur, join)
	} else {
		b.edge(cond, join)
	}
	b.pop()
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock()
	b.edge(b.ensure(), head)
	after := b.newBlock()
	b.g.follow[s] = after

	var post *block
	if s.Post != nil {
		post = b.newBlock()
	} else {
		post = head
	}

	b.cur = head
	if s.Cond != nil {
		b.addUnit(s.Cond, false)
		b.edge(head, after)
	}

	t := loopTargets{brk: after, cont: post}
	b.loops = append(b.loops, t)
	if label != "" {
		b.labels[label] = t
	}

	body := b.newBlock()
	b.edge(head, body)
	b.cur = body
	b.push(s)
	b.stmt(s.Body)
	b.pop()
	b.edge(b.cur, post)

	if s.Post != nil {
		b.cur = post
		b.stmt(s.Post)
		b.edge(b.ensure(), head)
	}

	b.loops = b.loops[:len(b.loops)-1]
	if label != "" {
		delete(b.labels, label)
	}
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	// The ranged-over expression is evaluated once, before the loop.
	b.addUnit(s, false)
	head := b.newBlock()
	b.edge(b.ensure(), head)
	after := b.newBlock()
	b.g.follow[s] = after
	b.edge(head, after) // zero iterations

	t := loopTargets{brk: after, cont: head}
	b.loops = append(b.loops, t)
	if label != "" {
		b.labels[label] = t
	}

	body := b.newBlock()
	b.edge(head, body)
	b.cur = body
	b.push(s)
	// Per-iteration key/value assignment happens on entry to the body.
	if s.Key != nil || s.Value != nil {
		b.addUnit(s, true)
	}
	b.stmt(s.Body)
	b.pop()
	b.edge(b.cur, head)

	b.loops = b.loops[:len(b.loops)-1]
	if label != "" {
		delete(b.labels, label)
	}
	b.cur = after
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	if s.Tag != nil {
		b.addUnit(s.Tag, false)
	}
	cond := b.ensure()
	after := b.newBlock()
	b.g.follow[s] = after

	t := loopTargets{brk: after, cont: b.innerCont()}
	b.loops = append(b.loops, t)
	if label != "" {
		b.labels[label] = loopTargets{brk: after}
	}

	b.caseClauses(s.Body, cond, after, s)

	b.loops = b.loops[:len(b.loops)-1]
	if label != "" {
		delete(b.labels, label)
	}
	b.cur = after
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.addUnit(s.Assign, false)
	cond := b.ensure()
	after := b.newBlock()
	b.g.follow[s] = after

	t := loopTargets{brk: after, cont: b.innerCont()}
	b.loops = append(b.loops, t)
	if label != "" {
		b.labels[label] = loopTargets{brk: after}
	}

	b.caseClauses(s.Body, cond, after, s)

	b.loops = b.loops[:len(b.loops)-1]
	if label != "" {
		delete(b.labels, label)
	}
	b.cur = after
}

// innerCont preserves the continue target across a switch/select (break
// binds to the switch, continue still binds to the enclosing loop).
func (b *cfgBuilder) innerCont() *block {
	if len(b.loops) > 0 {
		return b.loops[len(b.loops)-1].cont
	}
	return nil
}

// caseClauses builds the clause bodies of a switch. Each clause gets
// its own chain from cond; fallthrough links a body to the next one.
func (b *cfgBuilder) caseClauses(body *ast.BlockStmt, cond, after *block, sw ast.Stmt) {
	type clauseBlocks struct {
		clause *ast.CaseClause
		entry  *block
	}
	var clauses []clauseBlocks
	hasDefault := false
	for _, cs := range body.List {
		cc := cs.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		clauses = append(clauses, clauseBlocks{clause: cc, entry: b.newBlock()})
	}
	for _, cb := range clauses {
		b.edge(cond, cb.entry)
	}
	if !hasDefault {
		b.edge(cond, after)
	}
	b.push(sw)
	for i, cb := range clauses {
		b.cur = cb.entry
		if len(cb.clause.List) > 0 {
			b.addUnit(cb.clause, false)
		}
		// fallthrough in this body jumps to the next clause's entry.
		prevFall := b.fallTarget
		if i+1 < len(clauses) {
			b.fallTarget = clauses[i+1].entry
		} else {
			b.fallTarget = nil
		}
		b.stmtListWithFallthrough(cb.clause.Body)
		b.fallTarget = prevFall
		b.edge(b.cur, after)
	}
	b.pop()
}

func (b *cfgBuilder) stmtListWithFallthrough(list []ast.Stmt) {
	for _, s := range list {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
			if b.fallTarget != nil {
				b.edge(b.ensure(), b.fallTarget)
			}
			b.cur = nil
			continue
		}
		b.stmt(s)
	}
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.ensure()
	after := b.newBlock()
	b.g.follow[s] = after

	t := loopTargets{brk: after, cont: b.innerCont()}
	b.loops = append(b.loops, t)
	if label != "" {
		b.labels[label] = loopTargets{brk: after}
	}

	b.push(s)
	for _, cs := range s.Body.List {
		cc := cs.(*ast.CommClause)
		entry := b.newBlock()
		b.edge(head, entry)
		b.cur = entry
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	b.pop()

	b.loops = b.loops[:len(b.loops)-1]
	if label != "" {
		delete(b.labels, label)
	}
	b.cur = after
}

// ---------------------------------------------------------------------
// unit traversal

// inspectUnit walks the expressions a unit actually executes, without
// descending into nested statements or function literal bodies. fn
// follows the ast.Inspect contract (return false to prune).
func inspectUnit(u unit, fn func(ast.Node) bool) {
	visit := func(n ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			return fn(n)
		})
	}
	switch n := u.node.(type) {
	case *ast.RangeStmt:
		if u.rangeIter {
			visit(n.Key)
			visit(n.Value)
		} else {
			visit(n.X)
		}
	case *ast.CaseClause:
		for _, e := range n.List {
			visit(e)
		}
	default:
		visit(u.node)
	}
}

// ---------------------------------------------------------------------
// dominators

type bitset []uint64

func newBitset(n int) bitset    { return make(bitset, (n+63)/64) }
func (s bitset) set(i int)      { s[i/64] |= 1 << (i % 64) }
func (s bitset) has(i int) bool { return s[i/64]&(1<<(i%64)) != 0 }

func (s bitset) fill() {
	for i := range s {
		s[i] = ^uint64(0)
	}
}

func (s bitset) intersect(o bitset) bool {
	changed := false
	for i := range s {
		v := s[i] & o[i]
		if v != s[i] {
			s[i] = v
			changed = true
		}
	}
	return changed
}

// dominators computes, iteratively, the dominator sets of every block.
func (g *cfg) dominators() []bitset {
	if g.dom != nil {
		return g.dom
	}
	n := len(g.blocks)
	dom := make([]bitset, n)
	for i := range dom {
		dom[i] = newBitset(n)
		if i == g.entry.index {
			dom[i].set(i)
		} else {
			dom[i].fill()
		}
	}
	changed := true
	tmp := newBitset(n)
	for changed {
		changed = false
		for _, blk := range g.blocks {
			if blk == g.entry {
				continue
			}
			tmp.fill()
			reachable := false
			for _, p := range blk.preds {
				tmp.intersect(dom[p.index])
				reachable = true
			}
			if !reachable {
				// Unreachable block: dominated by everything (vacuous).
				continue
			}
			tmp.set(blk.index)
			if dom[blk.index].intersect(tmp) {
				changed = true
			}
			// intersect() only narrows; re-assert self-domination.
			dom[blk.index].set(blk.index)
		}
	}
	g.dom = dom
	return dom
}

// blockDominates reports whether a dominates b (reflexively).
func (g *cfg) blockDominates(a, b *block) bool {
	return g.dominators()[b.index].has(a.index)
}

// unitDominates reports whether unit (ab, ai) dominates unit (bb, bi):
// strictly earlier in the same block, or its block strictly dominates.
func (g *cfg) unitDominates(ab *block, ai int, bb *block, bi int) bool {
	if ab == bb {
		return ai < bi
	}
	return g.blockDominates(ab, bb)
}

// ---------------------------------------------------------------------
// dataflow

// forwardFlow runs an iterative forward boolean dataflow to fixpoint.
// meetAll selects all-paths (AND, for must-analyses like lock-held) vs
// any-path (OR, for may-analyses like slab-consumed). transfer maps a
// unit and its in-state to its out-state. Returns the entry state of
// every block.
func (g *cfg) forwardFlow(entryState bool, meetAll bool, transfer func(u unit, in bool) bool) []bool {
	n := len(g.blocks)
	in := make([]bool, n)
	top := meetAll // AND: start optimistic (true); OR: start false
	for i := range in {
		in[i] = top
	}
	in[g.entry.index] = entryState

	out := func(blk *block) bool {
		st := in[blk.index]
		for _, u := range blk.units {
			st = transfer(u, st)
		}
		return st
	}

	for changed := true; changed; {
		changed = false
		for _, blk := range g.blocks {
			if blk == g.entry || len(blk.preds) == 0 {
				continue
			}
			st := meetAll
			for i, p := range blk.preds {
				po := out(p)
				if i == 0 {
					st = po
				} else if meetAll {
					st = st && po
				} else {
					st = st || po
				}
			}
			if st != in[blk.index] {
				in[blk.index] = st
				changed = true
			}
		}
	}
	return in
}
