package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
	ImportMap  map[string]string
	Error      *struct{ Err string }
	DepsErrors []struct{ Err string }
}

// Load resolves patterns (e.g. "./...") in dir, type-checks every
// matched package in the main module from source, and returns them in a
// deterministic order. Dependencies are imported from compiler export
// data produced by `go list -export`, so loading works without network
// access or golang.org/x/tools.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,Module,ImportMap,Error,DepsErrors",
		"-deps",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}

	exports := make(map[string]string) // import path -> export data file
	importMaps := make(map[string]map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if len(p.ImportMap) > 0 {
			importMaps[p.ImportPath] = p.ImportMap
		}
	}

	// Targets are the non-dependency packages: those in the main
	// module. (-deps lists dependencies too; we re-check only module
	// packages from source.)
	mod, err := moduleName(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var loaded []*Package
	for _, p := range pkgs {
		if p.Standard || p.Module == nil || p.Module.Path != mod {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		for _, de := range p.DepsErrors {
			return nil, fmt.Errorf("%s: dependency error: %s", p.ImportPath, de.Err)
		}
		lp, err := typecheck(fset, p.ImportPath, p.Dir, p.GoFiles, exports, importMaps[p.ImportPath])
		if err != nil {
			return nil, err
		}
		loaded = append(loaded, lp)
	}
	return loaded, nil
}

func moduleName(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out)), nil
}

// ExportImporter returns a types.Importer that resolves imports from
// compiler export data files. exports maps import paths to .a/.x files;
// importMap (may be nil) maps source-level import paths to resolved
// ones (vendoring, test variants).
func ExportImporter(fset *token.FileSet, exports map[string]string, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// NewInfo returns a types.Info with every map the analyzers need.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// typecheck parses and type-checks one package from source against
// export data for its dependencies.
func typecheck(fset *token.FileSet, path, dir string, goFiles []string, exports, importMap map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		fn := name
		if !filepath.IsAbs(fn) {
			fn = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{
		Importer: ExportImporter(fset, exports, importMap),
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// CheckFiles type-checks an already-parsed file set as one package —
// the entry point used by the vettool mode (files come from vet.cfg)
// and the fixture test harness.
func CheckFiles(fset *token.FileSet, path string, files []*ast.File, exports, importMap map[string]string) (*Package, error) {
	info := NewInfo()
	conf := types.Config{
		Importer: ExportImporter(fset, exports, importMap),
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return &Package{
		Path:  path,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
