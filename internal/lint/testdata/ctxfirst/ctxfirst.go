// Fixture for the ctxfirst analyzer. The importpath directive opts the
// package into the exported-signature scope (the struct-field rule is
// global).
//
//linttest:importpath fastreg/internal/netsim
package fixture

import "context"

// Good: ctx first.
func Good(ctx context.Context, key string) error { _ = ctx; _ = key; return nil }

// Bad: ctx trailing.
func Bad(key string, ctx context.Context) error { _ = ctx; _ = key; return nil } // want "context must be the first parameter"

type Store struct{}

// Read is fine.
func (s *Store) Read(ctx context.Context, key string) error { return nil }

// Write buries the context.
func (s *Store) Write(key string, val int, ctx context.Context) error { return nil } // want "context must be the first parameter"

// unexported signatures are style-free.
func helper(key string, ctx context.Context) { _ = ctx; _ = key }

// Session is exported API surface: its methods count.
type Session interface {
	Run(ctx context.Context, op string) error
	Stop(op string, ctx context.Context) error // want "context must be the first parameter"
}

// holder stores a context — forbidden everywhere, exported or not.
type holder struct {
	ctx context.Context // want "stores a context.Context"
	n   int
}
