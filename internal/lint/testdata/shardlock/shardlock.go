// Fixture for the shardlock analyzer: `// guardedby:` discipline, with
// the clean shapes copied from internal/keyreg and the broken ones
// from plausible refactors of them.
package fixture

import "sync"

type shard struct {
	mu sync.Mutex
	m  map[string]int // guardedby: mu
}

// Lock is the wrapper-lock convention from keyreg.ServerShard.
func (sh *shard) Lock() { sh.mu.Lock() }

// Unlock pairs with Lock.
func (sh *shard) Unlock() { sh.mu.Unlock() }

// GetLocked follows the *Locked caller-holds convention: not checked.
func (sh *shard) GetLocked(k string) int { return sh.m[k] }

// lockedAccess is the clean Acquire shape.
func lockedAccess(sh *shard, k string) int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.m[k]
}

// wrapperLock locks through the shard's own Lock method.
func wrapperLock(sh *shard, k string, v int) {
	sh.Lock()
	sh.m[k] = v
	sh.Unlock()
}

// unlockedRead is the basic violation.
func unlockedRead(sh *shard, k string) int {
	return sh.m[k] // want "sh.m accessed without holding sh.mu"
}

// earlyUnlock touches the map after releasing the lock.
func earlyUnlock(sh *shard, k string) int {
	sh.mu.Lock()
	v := sh.m[k]
	sh.mu.Unlock()
	delete(sh.m, k) // want "sh.m accessed without holding sh.mu"
	return v
}

// oneArmedLock only locks on one path; the join must still flag.
func oneArmedLock(sh *shard, k string, fast bool) int {
	if !fast {
		sh.mu.Lock()
	}
	v := sh.m[k] // want "sh.m accessed without holding sh.mu"
	if !fast {
		sh.mu.Unlock()
	}
	return v
}

// sweepShape is the clean per-shard loop from ClientRegistry.Sweep.
func sweepShape(shards []*shard) int {
	n := 0
	for _, sh := range shards {
		sh.mu.Lock()
		for k, v := range sh.m {
			if v == 0 {
				delete(sh.m, k)
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}
