// Fixture for the captureorder analyzer: durable-before-visible. The
// clean functions mirror transport.Server.handleReqs and
// netsim.MultiLive.handleGroup; the broken ones emit replies before
// the capture flush — the ordering that lets a crash forge history.
package fixture

import "fastreg/internal/proto"

type conn struct{}

func (conn) SendBatch(envs []proto.Envelope) error { return nil }

type request struct {
	env   proto.Envelope
	reply chan proto.Envelope
}

type server struct {
	capture func(req, rep proto.Envelope)
	c       conn
}

// goodOrder flushes the capture hook before emitting.
func goodOrder(s *server, reqs []request, replies []proto.Envelope) {
	for i, r := range reqs {
		s.capture(r.env, replies[i])
	}
	_ = s.c.SendBatch(replies)
}

// conditionalCapture is the handleGroup shape: the hook is gated on
// configuration; the join after the gate still precedes every send.
func conditionalCapture(s *server, reqs []request, replies []proto.Envelope) {
	if s.capture != nil {
		for i, r := range reqs {
			s.capture(r.env, replies[i])
		}
	}
	for i, r := range reqs {
		r.reply <- replies[i]
	}
}

// emitBeforeFlush sends the batch before the audit flush: a crash
// between the two forges history.
func emitBeforeFlush(s *server, reqs []request, replies []proto.Envelope) {
	_ = s.c.SendBatch(replies) // want "not dominated by the capture flush"
	for i, r := range reqs {
		s.capture(r.env, replies[i])
	}
}

// earlyReply leaks one reply past the gate on the fast path.
func earlyReply(s *server, reqs []request, replies []proto.Envelope, fast bool) {
	if fast && len(reqs) > 0 {
		reqs[0].reply <- replies[0] // want "not dominated by the capture flush"
	}
	if s.capture != nil {
		for i, r := range reqs {
			s.capture(r.env, replies[i])
		}
	}
	for i, r := range reqs {
		r.reply <- replies[i]
	}
}

// handleReqs returns the replies for the caller to emit, so the
// annotation makes every return part of the contract.
//
//lint:captureflush
func handleReqs(s *server, reqs []request, replies []proto.Envelope) []proto.Envelope {
	for i, r := range reqs {
		s.capture(r.env, replies[i])
	}
	return replies
}

// returnBeforeFlush sneaks a return out before flushing.
//
//lint:captureflush
func returnBeforeFlush(s *server, reqs []request, replies []proto.Envelope) []proto.Envelope {
	if len(reqs) == 0 {
		return replies // want "not dominated by the capture flush"
	}
	for i, r := range reqs {
		s.capture(r.env, replies[i])
	}
	return replies
}

// annotatedWithoutHook claims to flush but never does.
//
//lint:captureflush
func annotatedWithoutHook(s *server, replies []proto.Envelope) []proto.Envelope { // want "contains no capture hook call"
	return replies
}
