// Fixture for the pooledalias analyzer: pooled-slab ownership. The
// broken cases are deliberate copies of patterns from
// internal/transport with the consume point misplaced.
package fixture

import (
	"io"

	"fastreg/internal/proto"
)

type conn struct{}

func (conn) SendBatch(envs []proto.Envelope) error { return nil }

func sink(proto.Envelope)  {}
func sinkBuf([]byte)       {}
func give() proto.Envelope { return proto.Envelope{} }

// useAfterPut is the basic violation: read after pool return.
func useAfterPut() {
	envs := proto.GetEnvs()
	envs = append(envs, give())
	proto.PutEnvs(envs)
	sink(envs[0]) // want "use of envs after proto.PutEnvs consumed it"
}

// returnAfterPut leaks the recycled slab to the caller.
func returnAfterPut() []proto.Envelope {
	envs := proto.GetEnvs()
	proto.PutEnvs(envs)
	return envs // want "use of envs after proto.PutEnvs consumed it"
}

// useAfterSend violates the SendBatch ownership transfer.
func useAfterSend(c conn) {
	batch := proto.GetEnvs()
	batch = append(batch, give())
	_ = c.SendBatch(batch)
	sink(batch[0]) // want "use of batch after SendBatch consumed it"
}

// decodeAliasEscape reproduces the Decode no-alias contract: the
// envelopes decoded into a pooled slab must not be read once the slab
// is back in the pool — DecodeBatchInto aliases dst.
func decodeAliasEscape(frame []byte) proto.Envelope {
	envs, _, err := proto.DecodeBatchInto(proto.GetEnvs(), frame)
	if err != nil {
		return proto.Envelope{}
	}
	first := envs[0]
	proto.PutEnvs(envs)
	sink(envs[0]) // want "use of envs after proto.PutEnvs consumed it"
	return first
}

// putBufThenRead covers the byte-slab pool.
func putBufThenRead() {
	buf := proto.GetBuf()
	buf = append(buf, 1)
	proto.PutBuf(buf)
	sinkBuf(buf) // want "use of buf after proto.PutBuf consumed it"
}

// flushLoopPattern is the clean shape from transport.Client.flushLoop:
// the error path recycles and continues; the success path sends. The
// two never alias on one path, so nothing is flagged.
func flushLoopPattern(c conn, tries int) {
	for i := 0; i < tries; i++ {
		batch := proto.GetEnvs()
		batch = append(batch, give())
		if len(batch) == 0 {
			proto.PutEnvs(batch)
			continue
		}
		_ = c.SendBatch(batch)
	}
}

// reassignRearms: a fresh slice re-arms the variable.
func reassignRearms() {
	envs := proto.GetEnvs()
	proto.PutEnvs(envs)
	envs = proto.GetEnvs()
	sink(envs[0])
	proto.PutEnvs(envs)
}

// deferredPut is the ReadFramesInto shape: the deferred release runs
// at function exit, after every use.
func deferredPut(r io.Reader) error {
	buf := proto.GetBuf()
	defer func() { proto.PutBuf(buf) }()
	if _, err := r.Read(buf[:cap(buf)]); err != nil {
		return err
	}
	sinkBuf(buf)
	return nil
}

// recvLoopPattern is the clean shape from transport recvLoop: recycle
// at the bottom, redefine at the top of the next iteration.
func recvLoopPattern(frames [][]byte) {
	for _, frame := range frames {
		envs, _, err := proto.DecodeBatchInto(proto.GetEnvs(), frame)
		if err != nil {
			return
		}
		for _, env := range envs {
			sink(env)
		}
		proto.PutEnvs(envs)
	}
}

// deliver is an annotated consumer, like replyCollector.deliver.
//
//lint:consumes replies
func deliver(replies []proto.Envelope) { proto.PutEnvs(replies) }

func useAfterDeliver() {
	replies := proto.GetEnvs()
	deliver(replies)
	sink(replies[0]) // want "use of replies after deliver consumed it"
}

// suppressed shows the auditable escape hatch: the driver counts it.
func suppressed() {
	envs := proto.GetEnvs()
	proto.PutEnvs(envs)
	//lint:ignore pooledalias fixture exercises the suppression path
	sink(envs[0])
}
