// Fixture for the nilrecv analyzer: nil-disabled observability types.
package fixture

import "sync"

// Counter is nil-disabled: a nil *Counter must be a no-op.
//
//lint:nildisabled
type Counter struct {
	mu sync.Mutex
	n  int64
}

// Add is the canonical guarded method.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.n += d
	c.mu.Unlock()
}

// Value forgets the guard entirely.
func (c *Counter) Value() int64 { // want "accesses receiver fields without a nil-receiver guard"
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Reset touches a field before guarding.
func (c *Counter) Reset() {
	c.n = 0 // want "receiver field n accessed before the nil-receiver guard"
	if c == nil {
		return
	}
}

// Describe never dereferences the receiver, so no guard is needed.
func (c *Counter) Describe() string { return "counter" }

// DoubleGuard uses the || form from obs.Tracer.Finish.
func (c *Counter) DoubleGuard(other *Counter) int64 {
	if c == nil || other == nil {
		return 0
	}
	return c.n + other.n
}

// reset is unexported: internal helpers may assume non-nil.
func (c *Counter) reset() { c.n = 0 }

// Plain is not annotated; its methods are out of scope.
type Plain struct{ n int }

// Bump has no guard and that is fine here.
func (p *Plain) Bump() { p.n++ }
