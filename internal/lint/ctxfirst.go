package lint

import (
	"go/ast"
)

// CtxFirst enforces the session-API context conventions: in the public
// packages (fastreg and the session-facing internal ones), an exported
// function or method taking a context.Context must take it as the
// first parameter, and no struct anywhere may store a context.Context
// in a field (contexts are call-scoped; storing one hides cancellation
// wiring and outlives its deadline).
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "context.Context must be the first parameter of exported APIs and never a struct field",
	Run:  runCtxFirst,
}

// ctxFirstPkgs are the packages whose exported signatures are held to
// the ctx-first rule (the struct-field rule applies everywhere).
var ctxFirstPkgs = map[string]bool{
	"fastreg":                    true,
	"fastreg/internal/kv":        true,
	"fastreg/internal/transport": true,
	"fastreg/internal/netsim":    true,
}

func runCtxFirst(pass *Pass) error {
	if ctxFirstPkgs[pass.Pkg.Path()] {
		forEachFunc(pass, func(fd *ast.FuncDecl) {
			if !fd.Name.IsExported() {
				return
			}
			checkCtxParams(pass, fd.Name.Name, fd.Type)
		})
		// Exported interface methods are API surface too.
		forEachType(pass, func(_ *ast.GenDecl, ts *ast.TypeSpec) {
			it, ok := ts.Type.(*ast.InterfaceType)
			if !ok || !ts.Name.IsExported() {
				return
			}
			for _, m := range it.Methods.List {
				ft, ok := m.Type.(*ast.FuncType)
				if !ok {
					continue // embedded interface
				}
				for _, name := range m.Names {
					if name.IsExported() {
						checkCtxParams(pass, ts.Name.Name+"."+name.Name, ft)
					}
				}
			}
		})
	}

	forEachType(pass, func(_ *ast.GenDecl, ts *ast.TypeSpec) {
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return
		}
		for _, f := range st.Fields.List {
			if t := pass.Info.TypeOf(f.Type); t != nil && isContextType(t) {
				pass.Reportf(f.Pos(), "struct %s stores a context.Context: contexts are call-scoped, pass them as the first parameter instead", ts.Name.Name)
			}
		}
	})
	return nil
}

func checkCtxParams(pass *Pass, name string, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	idx := 0
	for _, f := range ft.Params.List {
		t := pass.Info.TypeOf(f.Type)
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		if t != nil && isContextType(t) && idx != 0 {
			pass.Reportf(f.Pos(), "%s takes a context.Context at parameter %d: context must be the first parameter", name, idx)
		}
		idx += n
	}
}
