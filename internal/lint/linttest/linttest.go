// Package linttest is the fixture harness for internal/lint analyzers,
// in the spirit of golang.org/x/tools' analysistest but built on the
// same stdlib-only loader the suite itself uses.
//
// A fixture is a directory of Go files forming one package. Lines that
// should be flagged carry a trailing expectation comment:
//
//	proto.PutEnvs(envs)
//	use(envs[0]) // want "after proto.PutEnvs consumed it"
//
// Each quoted string is a regexp that must match the message of a
// diagnostic reported on that line; diagnostics without a matching
// expectation, and expectations without a matching diagnostic, both
// fail the test. Suppression directives (//lint:ignore) are applied
// before matching, so fixtures can also pin the suppression behavior.
//
// A fixture whose package must pretend to live at a specific import
// path (e.g. to opt into a path-scoped analyzer) declares it:
//
//	//linttest:importpath fastreg/internal/netsim
package linttest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"fastreg/internal/lint"
)

// Run analyzes the fixture directory with a and compares diagnostics
// against the fixture's // want expectations.
func Run(t *testing.T, fixtureDir string, a *lint.Analyzer) {
	t.Helper()

	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importPath := "fixture/" + filepath.Base(fixtureDir)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		fn := filepath.Join(fixtureDir, e.Name())
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		if p := fileImportPath(f); p != "" {
			importPath = p
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", fixtureDir)
	}

	exports, err := repoExports()
	if err != nil {
		t.Fatalf("resolving export data: %v", err)
	}
	pkg, err := lint.CheckFiles(fset, importPath, files, exports, nil)
	if err != nil {
		t.Fatalf("typechecking fixture: %v", err)
	}

	res, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, fset, files)
	matchDiags(t, wants, res.Diags)
}

// fileImportPath extracts a //linttest:importpath directive.
func fileImportPath(f *ast.File) string {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if rest, ok := strings.CutPrefix(c.Text, "//linttest:importpath"); ok {
				return strings.TrimSpace(rest)
			}
		}
	}
	return ""
}

// want is one expectation: a pattern that must match a diagnostic
// reported on its line.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				ms := wantRe.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Errorf("%s:%d: malformed want comment (no quoted pattern)", pos.Filename, pos.Line)
					continue
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Errorf("%s:%d: bad want pattern: %v", pos.Filename, pos.Line, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants
}

func matchDiags(t *testing.T, wants []*want, diags []lint.Diagnostic) {
	t.Helper()
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// repoExports resolves the export-data files of every repo package and
// its dependencies, once per test process. Fixtures may import
// anything the repo itself (transitively) imports.
var repoExports = sync.OnceValues(func() (map[string]string, error) {
	cmd := exec.Command("go", "list", "-e", "-export",
		"-json=ImportPath,Export", "-deps", "fastreg/...")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
})
