package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CaptureOrder enforces durable-before-visible on server reply paths:
// in any function that invokes a capture hook (a call through a
// func-valued field whose name contains "capture" — the audit sink
// wiring), every reply emission — Conn.SendBatch, a reply-collector
// deliver, or a send on a `reply` channel — must be dominated by the
// capture flush. A reply that can reach the client before its
// operation hit the audit log would let a crash forge history.
//
// Conditional capture is handled through follow blocks: the hook's
// enclosing constructs (the `if s.capture != nil { ... }` gate, the
// flush loop) contribute their join points as capture points, so code
// after the gate is covered whether or not capture is configured —
// what is forbidden is a path that emits while skipping a configured
// flush.
//
// Functions annotated //lint:captureflush additionally require every
// return to be dominated by the flush (for reply paths where the
// emission happens in the caller, e.g. handleReqs returning the reply
// batch).
var CaptureOrder = &Analyzer{
	Name: "captureorder",
	Doc:  "reply emission must be dominated by the capture/audit flush (durable-before-visible)",
	Run:  runCaptureOrder,
}

func runCaptureOrder(pass *Pass) error {
	for _, reg := range regions(pass) {
		captureOrderRegion(pass, reg)
	}
	return nil
}

// unitRef addresses one unit plus the interesting node inside it.
type unitRef struct {
	blk  *block
	idx  int
	node ast.Node
	desc string
}

func captureOrderRegion(pass *Pass, reg funcRegion) {
	_, annotated := regionDirective(reg, "captureflush")

	g := buildCFG(reg.body)
	var hooks, emissions, returns []unitRef
	for _, blk := range g.blocks {
		for ui, u := range blk.units {
			if isDeferOrGo(u) {
				continue
			}
			if _, ok := u.node.(*ast.ReturnStmt); ok {
				returns = append(returns, unitRef{blk: blk, idx: ui, node: u.node})
			}
			blk, ui, u := blk, ui, u
			inspectUnit(u, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if isCaptureHook(pass, n) {
						hooks = append(hooks, unitRef{blk: blk, idx: ui, node: n})
					} else if name := methodCallName(n); name == "SendBatch" || name == "deliver" {
						emissions = append(emissions, unitRef{blk: blk, idx: ui, node: n, desc: name})
					}
				case *ast.SendStmt:
					if sel, ok := ast.Unparen(n.Chan).(*ast.SelectorExpr); ok && sel.Sel.Name == "reply" {
						emissions = append(emissions, unitRef{blk: blk, idx: ui, node: n, desc: "reply channel send"})
					}
				}
				return true
			})
		}
	}

	if len(hooks) == 0 {
		if annotated {
			pass.Reportf(reg.body.Pos(), "%s is annotated //lint:captureflush but contains no capture hook call", reg.name())
		}
		return
	}

	// Capture points: the hook units themselves, plus the follow
	// blocks of every construct enclosing a hook (control there has
	// passed the — possibly conditional — flush).
	var followPoints []*block
	for _, h := range hooks {
		u := h.blk.units[h.idx]
		for _, s := range u.encl {
			if f, ok := g.follow[s]; ok {
				followPoints = append(followPoints, f)
			}
		}
	}

	satisfied := func(e unitRef) bool {
		for _, h := range hooks {
			if g.unitDominates(h.blk, h.idx, e.blk, e.idx) {
				return true
			}
		}
		for _, f := range followPoints {
			if g.blockDominates(f, e.blk) {
				return true
			}
		}
		return false
	}

	for _, e := range emissions {
		if !satisfied(e) {
			pass.Reportf(e.node.Pos(), "%s is not dominated by the capture flush: replies must not become visible before the audit record (durable-before-visible)", e.desc)
		}
	}
	if annotated {
		for _, r := range returns {
			if !satisfied(r) {
				pass.Reportf(r.node.Pos(), "return in //lint:captureflush function %s is not dominated by the capture flush", reg.name())
			}
		}
	}
}

// regionDirective reads a directive off the region's declaration (a
// closure has none).
func regionDirective(reg funcRegion, name string) (string, bool) {
	if reg.decl == nil {
		return "", false
	}
	return funcDirective(reg.decl, name)
}

// isCaptureHook reports whether call invokes a func-typed field or
// variable whose name contains "capture" — the shape of every audit
// sink in the tree (Server.capture, MultiLive.serverCapture).
func isCaptureHook(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if !strings.Contains(strings.ToLower(sel.Sel.Name), "capture") {
		return false
	}
	v, ok := pass.ObjectOf(sel.Sel).(*types.Var)
	if !ok {
		return false
	}
	_, isFunc := v.Type().Underlying().(*types.Signature)
	return isFunc
}
