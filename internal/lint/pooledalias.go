package lint

import (
	"go/ast"
	"go/types"
)

// PooledAlias enforces the pooled-slab ownership protocol from
// internal/proto: once a slice has been handed back to the pool
// (proto.PutEnvs / proto.PutBuf), transferred to a connection
// (Conn.SendBatch consumes its argument), or passed to a function
// annotated //lint:consumes, the local variable is a dangling alias —
// the slab may be cleared and reissued concurrently. Any later read,
// store, or return of that variable in the same function is flagged.
//
// The check is path-sensitive (may-consumed dataflow over the mini
// CFG): `PutEnvs(batch); continue` does not poison the SendBatch on the
// fall-through path, and reassigning the variable re-arms it. Consume
// calls wrapped in defer/go are ignored — a deferred PutBuf runs at
// function exit, after every use.
var PooledAlias = &Analyzer{
	Name: "pooledalias",
	Doc:  "flags uses of pooled slices after PutEnvs/PutBuf/SendBatch consumed them",
	Run:  runPooledAlias,
}

const protoPath = "fastreg/internal/proto"

// consumeSpec describes one way an annotated call consumes an argument.
type consumeSpec struct {
	verb string // human-readable description of the consumer
	arg  int
}

func runPooledAlias(pass *Pass) error {
	annotated := collectConsumers(pass)
	for _, reg := range regions(pass) {
		pooledAliasRegion(pass, reg, annotated)
	}
	return nil
}

// collectConsumers gathers this package's //lint:consumes annotations:
// map from function object to the consumed parameter.
func collectConsumers(pass *Pass) map[*types.Func]consumeSpec {
	out := make(map[*types.Func]consumeSpec)
	forEachFunc(pass, func(fd *ast.FuncDecl) {
		arg, ok := funcDirective(fd, "consumes")
		if !ok || arg == "" {
			return
		}
		fobj, ok := pass.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		sig := fobj.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len(); i++ {
			if sig.Params().At(i).Name() == arg {
				out[fobj] = consumeSpec{verb: fd.Name.Name, arg: i}
				break
			}
		}
	})
	return out
}

// consumeOf reports whether call consumes one of its arguments, and
// which variable that argument is (nil when not a bare identifier —
// untrackable, ignored).
func consumeOf(pass *Pass, call *ast.CallExpr, annotated map[*types.Func]consumeSpec) (v *types.Var, verb string, ok bool) {
	if isPkgFunc(pass, call, protoPath, "PutEnvs") && len(call.Args) == 1 {
		return identVar(pass, call.Args[0]), "proto.PutEnvs", true
	}
	if isPkgFunc(pass, call, protoPath, "PutBuf") && len(call.Args) == 1 {
		return identVar(pass, call.Args[0]), "proto.PutBuf", true
	}
	if f := calleeFunc(pass, call); f != nil {
		if spec, found := annotated[f]; found && spec.arg < len(call.Args) {
			return identVar(pass, call.Args[spec.arg]), spec.verb, true
		}
		// Conn.SendBatch (and any method of that name taking a slice):
		// ownership of the slice transfers to the connection.
		if methodCallName(call) == "SendBatch" && f.Type().(*types.Signature).Recv() != nil &&
			len(call.Args) >= 1 {
			if _, isSlice := pass.Info.TypeOf(call.Args[0]).Underlying().(*types.Slice); isSlice {
				return identVar(pass, call.Args[0]), "SendBatch", true
			}
		}
	}
	return nil, "", false
}

func pooledAliasRegion(pass *Pass, reg funcRegion, annotated map[*types.Func]consumeSpec) {
	// Pass 1: which variables are ever consumed here? (Cheap scan
	// before building any CFG.)
	tracked := make(map[*types.Var]string) // var -> verb of first consumer
	ast.Inspect(reg.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != reg.lit {
			return false // separate region
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if v, verb, ok := consumeOf(pass, call, annotated); ok && v != nil {
			if _, dup := tracked[v]; !dup {
				tracked[v] = verb
			}
		}
		return true
	})
	if len(tracked) == 0 {
		return
	}

	g := buildCFG(reg.body)
	for v, verb := range tracked {
		checkConsumedVar(pass, g, v, verb, annotated)
	}
}

// unitConsumes reports whether executing the unit consumes v: it
// contains a live (non-defer) consume call taking v.
func unitConsumes(pass *Pass, u unit, v *types.Var, annotated map[*types.Func]consumeSpec) bool {
	found := false
	inspectUnit(u, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if cv, _, ok := consumeOf(pass, call, annotated); ok && cv == v {
				found = true
			}
		}
		return true
	})
	return found
}

// unitKills reports whether the unit reassigns v (re-arming the
// variable with a fresh value).
func unitKills(pass *Pass, u unit, v *types.Var) bool {
	switch n := u.node.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if identVar(pass, lhs) == v {
				return true
			}
		}
	case *ast.RangeStmt:
		if u.rangeIter {
			if n.Key != nil && identVar(pass, n.Key) == v {
				return true
			}
			if n.Value != nil && identVar(pass, n.Value) == v {
				return true
			}
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						if pass.Info.Defs[name] == v {
							return true
						}
					}
				}
			}
		}
	}
	return false
}

func checkConsumedVar(pass *Pass, g *cfg, v *types.Var, verb string, annotated map[*types.Func]consumeSpec) {
	transfer := func(u unit, in bool) bool {
		if isDeferOrGo(u) {
			return in
		}
		if unitConsumes(pass, u, v, annotated) {
			return true
		}
		if unitKills(pass, u, v) {
			return false
		}
		return in
	}
	entry := g.forwardFlow(false, false, transfer)

	// Report pass: walk each block from its fixpoint entry state,
	// flagging reads of v while the consumed state may hold.
	for _, blk := range g.blocks {
		st := entry[blk.index]
		for _, u := range blk.units {
			if isDeferOrGo(u) {
				continue
			}
			if unitConsumes(pass, u, v, annotated) {
				st = true
				continue // the consume call's own mention is not a reuse
			}
			kills := unitKills(pass, u, v)
			if st {
				flagUses(pass, u, v, kills, verb)
			}
			if kills {
				st = false
			}
		}
	}
}

// flagUses reports every read of v inside the unit. Assignment targets
// are exempt when the unit reassigns v (they overwrite, not read).
func flagUses(pass *Pass, u unit, v *types.Var, killUnit bool, verb string) {
	exempt := make(map[*ast.Ident]bool)
	if killUnit {
		switch n := u.node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					exempt[id] = true
				}
			}
		case *ast.RangeStmt:
			if id, ok := n.Key.(*ast.Ident); ok {
				exempt[id] = true
			}
			if id, ok := n.Value.(*ast.Ident); ok {
				exempt[id] = true
			}
		}
	}
	inspectUnit(u, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || exempt[id] {
			return true
		}
		if pass.Info.Uses[id] == v {
			pass.Reportf(id.Pos(), "use of %s after %s consumed it: the pooled slab may already be cleared and reissued", v.Name(), verb)
		}
		return true
	})
}
