package lint_test

import (
	"testing"

	"fastreg/internal/lint"
	"fastreg/internal/lint/linttest"
)

func TestPooledAlias(t *testing.T) {
	linttest.Run(t, "testdata/pooledalias", lint.PooledAlias)
}

func TestCtxFirst(t *testing.T) {
	linttest.Run(t, "testdata/ctxfirst", lint.CtxFirst)
}

func TestShardLock(t *testing.T) {
	linttest.Run(t, "testdata/shardlock", lint.ShardLock)
}

func TestNilRecv(t *testing.T) {
	linttest.Run(t, "testdata/nilrecv", lint.NilRecv)
}

func TestCaptureOrder(t *testing.T) {
	linttest.Run(t, "testdata/captureorder", lint.CaptureOrder)
}

// TestRepoClean runs the full suite over the whole module, the same
// check CI's fastreglint step performs: the tree must stay clean (or
// explicitly suppressed) at all times.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and re-typechecks the whole module")
	}
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	res, err := lint.Run(pkgs, lint.All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range res.BadIgnores {
		t.Errorf("malformed directive: %s", d)
	}
	for _, d := range res.Diags {
		t.Errorf("finding: %s", d)
	}
	t.Logf("suite %s: %d packages, %d suppressed", lint.Version, len(pkgs), len(res.Suppressed))
}
