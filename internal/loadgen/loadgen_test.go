package loadgen

import (
	"context"
	"testing"
	"time"

	"fastreg"
)

func openStore(t *testing.T) *fastreg.Store {
	t.Helper()
	st, err := fastreg.Open(fastreg.Config{Servers: 3, MaxCrashes: 1, Readers: 4, Writers: 4}, fastreg.W2R2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	return st
}

func run(t *testing.T, seed int64) *Report {
	t.Helper()
	st := openStore(t)
	rep, err := Run(context.Background(), st, Config{
		Seed:      seed,
		Writers:   4,
		Readers:   4,
		Keys:      16,
		Rate:      2000,
		Duration:  150 * time.Millisecond,
		WriteFrac: 0.3,
		ValueSize: 32,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRunAccounting(t *testing.T) {
	rep := run(t, 42)
	if rep.Scheduled == 0 {
		t.Fatal("no arrivals scheduled")
	}
	if got := rep.Completed + rep.Failed + rep.Dropped; got != rep.Scheduled {
		t.Fatalf("accounting leak: %d completed + %d failed + %d dropped != %d scheduled",
			rep.Completed, rep.Failed, rep.Dropped, rep.Scheduled)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d operations failed against a healthy in-process fleet", rep.Failed)
	}
	if rep.Completed > 0 && rep.Merged.Count != uint64(rep.Completed) {
		t.Fatalf("merged histogram saw %d ops, report says %d completed", rep.Merged.Count, rep.Completed)
	}
}

// The arrival schedule is a pure function of the seed: two runs must
// produce the identical number of arrivals even though completion
// timing (and thus the completed/dropped split) may differ.
func TestScheduleDeterminism(t *testing.T) {
	a, b := run(t, 7), run(t, 7)
	if a.Scheduled != b.Scheduled {
		t.Fatalf("same seed scheduled %d vs %d arrivals", a.Scheduled, b.Scheduled)
	}
	c := run(t, 8)
	if c.Scheduled == a.Scheduled && c.Writes == a.Writes {
		t.Logf("note: seeds 7 and 8 coincide on (%d arrivals, %d writes) — suspicious but not impossible", c.Scheduled, c.Writes)
	}
}

func TestConfigValidation(t *testing.T) {
	st := openStore(t)
	bad := []Config{
		{Writers: 0, Readers: 1, Keys: 1, Rate: 1, Duration: time.Millisecond},
		{Writers: 1, Readers: 1, Keys: 0, Rate: 1, Duration: time.Millisecond},
		{Writers: 1, Readers: 1, Keys: 1, Rate: 0, Duration: time.Millisecond},
		{Writers: 1, Readers: 1, Keys: 1, Rate: 1, Duration: 0},
		{Writers: 1, Readers: 1, Keys: 1, Rate: 1, Duration: time.Millisecond, WriteFrac: 1.5},
		{Writers: 1, Readers: 1, Keys: 1, Rate: 1, Duration: time.Millisecond, ZipfS: 0.5},
		{Writers: 99, Readers: 1, Keys: 1, Rate: 1, Duration: time.Millisecond}, // exceeds cluster shape
	}
	for i, cfg := range bad {
		if _, err := Run(context.Background(), st, cfg, nil); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestRateAt(t *testing.T) {
	c := Config{Rate: 100, EndRate: 300, Duration: time.Second}
	if got := c.RateAt(0); got != 100 {
		t.Fatalf("RateAt(0) = %v", got)
	}
	if got := c.RateAt(500 * time.Millisecond); got != 200 {
		t.Fatalf("RateAt(mid) = %v", got)
	}
	if got := c.RateAt(2 * time.Second); got != 300 {
		t.Fatalf("RateAt past end = %v (ramp must clamp)", got)
	}
	flat := Config{Rate: 50}
	if got := flat.RateAt(time.Hour); got != 50 {
		t.Fatalf("flat RateAt = %v", got)
	}
}
