// Package loadgen is the open-loop load generator for live stores: a
// seeded arrival process (Poisson, with linear rate ramps) over a
// zipfian key population, dispatched through pools of fastreg session
// handles — the workload shape a production fleet actually sees, where
// request arrival does not wait for request completion.
//
// Open-loop is the point. internal/workload's simulator harness is
// closed-loop — each virtual client issues its next operation when the
// previous one returns, so a slow system quietly slows its own offered
// load and latency numbers flatter the store. Here the arrival schedule
// is fixed by the seed alone: when every identity of a pool is busy the
// arrival is shed (counted, never queued), so overload shows up as drops
// and tail latency instead of disappearing into the harness.
//
// Determinism: every random draw — interarrival gaps, operation kind,
// key choice — comes from one rand.Rand owned by the scheduler
// goroutine and seeded from Config.Seed, so the same seed replays the
// identical operation schedule; only completion timings differ run to
// run. Latency is reported through internal/obs histograms and can be
// emitted as fastreg-bench/v1 documents for the repo's perf trajectory.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fastreg"
	"fastreg/internal/obs"
)

// Config shapes one generator run.
type Config struct {
	// Seed drives every random choice; same seed, same schedule.
	Seed int64

	// Writers and Readers bound the concurrent identities used (1-based
	// handles 1..N; both must be within the store's cluster shape).
	Writers, Readers int

	// Keys is the key population size; KeyPrefix namespaces it.
	Keys      int
	KeyPrefix string

	// ZipfS skews key popularity (> 1; higher = hotter head). Zero
	// defaults to 1.2, the classic web-cache skew.
	ZipfS float64

	// Rate is the offered load in operations/second at t=0; EndRate, if
	// positive, ramps the rate linearly to that value at Duration — the
	// knob that walks a scenario across the knee.
	Rate    float64
	EndRate float64

	// Duration bounds the arrival schedule (completions may trail it).
	Duration time.Duration

	// WriteFrac is the probability an arrival is a write.
	WriteFrac float64

	// ValueSize pads written values to this many bytes.
	ValueSize int

	// OpTimeout bounds each dispatched operation (default 10s).
	OpTimeout time.Duration
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.Writers < 1 || out.Readers < 1 {
		return out, errors.New("loadgen: need at least one writer and one reader identity")
	}
	if out.Keys < 1 {
		return out, errors.New("loadgen: need at least one key")
	}
	if out.Rate <= 0 {
		return out, errors.New("loadgen: rate must be positive")
	}
	if out.Duration <= 0 {
		return out, errors.New("loadgen: duration must be positive")
	}
	if out.WriteFrac < 0 || out.WriteFrac > 1 {
		return out, errors.New("loadgen: write_frac must be in [0,1]")
	}
	if out.ZipfS == 0 {
		out.ZipfS = 1.2
	}
	if out.ZipfS <= 1 {
		return out, errors.New("loadgen: zipf skew must be > 1")
	}
	if out.OpTimeout <= 0 {
		out.OpTimeout = 10 * time.Second
	}
	if out.KeyPrefix == "" {
		out.KeyPrefix = "k"
	}
	return out, nil
}

// Report is one run's outcome: schedule accounting plus the latency
// distributions (nanoseconds, measured from each operation's scheduled
// arrival instant, so dispatch skew counts against the store — the
// open-loop convention).
type Report struct {
	Elapsed time.Duration

	Scheduled int64 // arrivals the schedule produced
	Completed int64 // operations that returned a result
	Failed    int64 // operations that returned an error (timeouts included)
	Dropped   int64 // arrivals shed because every identity was busy

	Writes, Reads int64

	Write  obs.HistogramValue // write latency percentiles
	Read   obs.HistogramValue // read latency percentiles
	Merged obs.HistogramValue // both kinds combined

	// AllocsPerOp is the process's heap allocation delta across the run
	// divided by completed operations — harness included, so it is an
	// upper bound on the store's own cost.
	AllocsPerOp float64
}

// OpsPerSec is completed operations over the elapsed wall time.
func (r *Report) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Elapsed.Seconds()
}

// String renders the one-line summary scenario runners print.
func (r *Report) String() string {
	return fmt.Sprintf("%d/%d ops in %v (%.0f ops/sec, %d writes %d reads, %d failed, %d shed; p50 %v p99 %v)",
		r.Completed, r.Scheduled, r.Elapsed.Round(time.Millisecond), r.OpsPerSec(),
		r.Writes, r.Reads, r.Failed, r.Dropped,
		time.Duration(r.Merged.P50), time.Duration(r.Merged.P99))
}

// Run drives the store with cfg's open-loop schedule until the schedule
// ends or ctx cancels, and blocks for in-flight operations to settle.
// Metrics are recorded into reg under "loadgen.*" (a nil reg keeps a
// private registry, so the Report's percentiles always exist).
func Run(ctx context.Context, store *fastreg.Store, cfg Config, reg *obs.Registry) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	shape := store.Config()
	if cfg.Writers > shape.Writers || cfg.Readers > shape.Readers {
		return nil, fmt.Errorf("loadgen: %d writers / %d readers exceed the store's cluster shape (%d/%d)",
			cfg.Writers, cfg.Readers, shape.Writers, shape.Readers)
	}
	if reg == nil {
		reg = obs.New()
	}
	g := &gen{
		cfg:     cfg,
		writeLa: reg.Histogram("loadgen.write.latency_ns"),
		readLa:  reg.Histogram("loadgen.read.latency_ns"),
		fails:   reg.Counter("loadgen.failed"),
		drops:   reg.Counter("loadgen.dropped"),
		writers: make(chan *fastreg.Writer, cfg.Writers),
		readers: make(chan *fastreg.Reader, cfg.Readers),
	}
	for i := 1; i <= cfg.Writers; i++ {
		w, err := store.Writer(i)
		if err != nil {
			return nil, err
		}
		g.writers <- w
	}
	for i := 1; i <= cfg.Readers; i++ {
		r, err := store.Reader(i)
		if err != nil {
			return nil, err
		}
		g.readers <- r
	}

	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	t0 := time.Now()
	g.schedule(ctx, t0)
	g.wg.Wait()
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&ms1)

	rep := &Report{
		Elapsed:   elapsed,
		Scheduled: g.scheduled,
		Dropped:   g.dropped,
		Completed: g.completed.Load(),
		Failed:    g.failed.Load(),
		Writes:    g.writes.Load(),
		Reads:     g.reads.Load(),
	}
	ws, rs := g.writeLa.Snapshot(), g.readLa.Snapshot()
	rep.Write = obs.SnapshotOf(ws)
	rep.Read = obs.SnapshotOf(rs)
	ws.Merge(rs)
	rep.Merged = obs.SnapshotOf(ws)
	if rep.Completed > 0 {
		rep.AllocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(rep.Completed)
	}
	return rep, nil
}

// gen is one run's state. The schedule fields belong to the scheduler
// goroutine alone; the atomics are shared with the dispatched workers.
type gen struct {
	cfg Config

	writeLa, readLa *obs.Histogram
	fails, drops    *obs.Counter

	writers chan *fastreg.Writer
	readers chan *fastreg.Reader

	scheduled, dropped int64 // scheduler goroutine only
	completed, failed  atomic.Int64
	writes, reads      atomic.Int64

	wg sync.WaitGroup
}

// schedule runs the seeded arrival process: exponential interarrival
// gaps at the (possibly ramping) instantaneous rate, zipfian keys, a
// Bernoulli kind choice — all from one RNG, in one goroutine, so the
// draw sequence is a pure function of the seed.
func (g *gen) schedule(ctx context.Context, t0 time.Time) {
	rng := rand.New(rand.NewSource(g.cfg.Seed))
	zipf := rand.NewZipf(rng, g.cfg.ZipfS, 1, uint64(g.cfg.Keys-1))
	var at time.Duration // virtual arrival instant
	var seq int64
	for {
		rate := g.cfg.Rate
		if g.cfg.EndRate > 0 {
			frac := float64(at) / float64(g.cfg.Duration)
			rate += (g.cfg.EndRate - g.cfg.Rate) * frac
		}
		at += time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		if at >= g.cfg.Duration {
			return
		}
		isWrite := rng.Float64() < g.cfg.WriteFrac
		key := fmt.Sprintf("%s%04d", g.cfg.KeyPrefix, zipf.Uint64())
		seq++
		val := ""
		if isWrite {
			val = g.value(seq)
		}
		// Sleep to the arrival instant (absolute against t0, so sleep
		// jitter never accumulates into schedule drift).
		if wait := time.Until(t0.Add(at)); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return
			}
		}
		g.scheduled++
		g.dispatch(ctx, t0.Add(at), isWrite, key, val)
	}
}

// dispatch hands one arrival to a free identity, or sheds it — the
// scheduler never blocks on the store, which is the open-loop contract.
func (g *gen) dispatch(ctx context.Context, arrival time.Time, isWrite bool, key, val string) {
	if isWrite {
		select {
		case w := <-g.writers:
			g.wg.Add(1)
			go g.runWrite(ctx, w, arrival, key, val)
			return
		default:
		}
	} else {
		select {
		case r := <-g.readers:
			g.wg.Add(1)
			go g.runRead(ctx, r, arrival, key)
			return
		default:
		}
	}
	g.dropped++
	g.drops.Add(1)
}

func (g *gen) runWrite(ctx context.Context, w *fastreg.Writer, arrival time.Time, key, val string) {
	defer g.wg.Done()
	opCtx, cancel := context.WithTimeout(ctx, g.cfg.OpTimeout)
	_, err := w.Put(opCtx, key, val)
	cancel()
	g.finish(err, true, arrival)
	g.writers <- w
}

func (g *gen) runRead(ctx context.Context, r *fastreg.Reader, arrival time.Time, key string) {
	defer g.wg.Done()
	opCtx, cancel := context.WithTimeout(ctx, g.cfg.OpTimeout)
	_, _, _, err := r.Get(opCtx, key)
	cancel()
	g.finish(err, false, arrival)
	g.readers <- r
}

func (g *gen) finish(err error, isWrite bool, arrival time.Time) {
	if err != nil {
		g.failed.Add(1)
		g.fails.Add(1)
		return
	}
	g.completed.Add(1)
	lat := time.Since(arrival).Nanoseconds()
	if isWrite {
		g.writes.Add(1)
		g.writeLa.Observe(lat)
	} else {
		g.reads.Add(1)
		g.readLa.Observe(lat)
	}
}

// value pads the sequence stamp to ValueSize bytes.
func (g *gen) value(seq int64) string {
	v := fmt.Sprintf("v%d", seq)
	if pad := g.cfg.ValueSize - len(v); pad > 0 {
		v += strings.Repeat("x", pad)
	}
	return v
}

// RateAt exposes the ramp for schedule printouts: the instantaneous
// offered rate at virtual instant t.
func (c Config) RateAt(t time.Duration) float64 {
	if c.EndRate <= 0 || c.Duration <= 0 {
		return c.Rate
	}
	frac := math.Min(1, float64(t)/float64(c.Duration))
	return c.Rate + (c.EndRate-c.Rate)*frac
}
