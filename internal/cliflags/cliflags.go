// Package cliflags is the one definition of the command-line surface the
// deployable binaries share. cmd/regserver and cmd/regclient must agree
// on the cluster shape (S, t, R, W) and protocol name for a deployment
// to make sense, and they expose the same operational knobs (-evict-ttl,
// -unbatched, -shards); registering the flags and deriving the validated
// quorum.Config from one helper keeps the two binaries' surfaces from
// drifting — the same way internal/protocols keeps their protocol names
// identical.
package cliflags

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"fastreg"
	"fastreg/internal/audit"
	"fastreg/internal/obs"
	"fastreg/internal/protocols"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/transport"
)

// Flags holds the shared flag values after parsing.
type Flags struct {
	Cluster  string
	Servers  int
	T        int
	Readers  int
	Writers  int
	Protocol string

	EvictTTL     time.Duration
	Unbatched    bool
	Shards       int
	Workers      int
	ConnsPerLink int
	CaptureDir   string
	Seed         int64

	*DiagFlags
}

// DiagFlags is the diagnostics surface EVERY fleet binary exposes the
// same way — regserver, regclient, regaudit and benchwire all register
// it, so an operator can point -debug-addr or -cpuprofile at any process
// of a deployment without checking which binary it is. Flags embeds it;
// binaries without the full shared surface use RegisterDiag alone.
type DiagFlags struct {
	DebugAddr  string
	SlowOp     time.Duration
	CPUProfile string
	MemProfile string
}

// RegisterDiag installs only the diagnostics flags on fs.
func RegisterDiag(fs *flag.FlagSet) *DiagFlags {
	d := &DiagFlags{}
	fs.StringVar(&d.DebugAddr, "debug-addr", "", "serve the debug HTTP endpoint (/metrics, /healthz, /debug/slowops, /debug/pprof) on this address and enable metrics collection (e.g. 127.0.0.1:6060; empty = disabled)")
	fs.DurationVar(&d.SlowOp, "slow-op", 0, "slow-operation threshold: clients trace and dump operations at least this slow, servers count request batches handled this slowly (0 = off)")
	fs.StringVar(&d.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file (stopped and flushed at shutdown)")
	fs.StringVar(&d.MemProfile, "memprofile", "", "write a pprof heap profile to this file at shutdown")
	return d
}

// Register installs the shared flags on fs (flag.CommandLine in the
// binaries) and returns the struct they parse into. Command-specific
// flags (regserver's -replica/-listen, regclient's workload shape) stay
// in their own mains.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Cluster, "cluster", "", "comma-separated host:port list of ALL replicas (sets the server count)")
	fs.IntVar(&f.Servers, "servers", 3, "number of servers S (ignored when -cluster is set)")
	fs.IntVar(&f.T, "t", 1, "crash tolerance t")
	fs.IntVar(&f.Readers, "readers", 4, "number of readers R in the cluster shape")
	fs.IntVar(&f.Writers, "writers", 4, "number of writers W in the cluster shape")
	fs.StringVar(&f.Protocol, "protocol", "W2R2", "register protocol ("+strings.Join(protocols.Names(), ", ")+")")
	fs.DurationVar(&f.EvictTTL, "evict-ttl", 0, "expire per-key state idle for this long (0 = keep all state forever); on a server this is fleet-wide TTL-expiry semantics for the keys, on a client it bounds the registry (protocol state AND recorded histories — don't combine with -check unless keys stay hotter than the TTL)")
	fs.BoolVar(&f.Unbatched, "unbatched", false, "disable message-level send coalescing (client side; baseline measurements only)")
	fs.IntVar(&f.Shards, "shards", transport.DefaultServerShards, "key-space shards (replica side; clients always use the default partition)")
	fs.IntVar(&f.Workers, "workers", 0, "shard-affine request workers per replica: 0 = auto (GOMAXPROCS on multicore, inline on one CPU), -1 = force inline per-connection handling, n>0 = fixed pool of n workers")
	fs.IntVar(&f.ConnsPerLink, "conns-per-link", 1, "TCP connections a client opens per replica (sends steered round-robin, replies correlated by operation ID)")
	fs.StringVar(&f.CaptureDir, "capture", "", "append audit trace logs (.trlog) to this directory — servers log every handled request, clients every completed operation; `regaudit check DIR` then verifies the whole multi-process run")
	registerSeed(fs, &f.Seed)
	f.DiagFlags = RegisterDiag(fs)
	return f
}

// RegisterSeed installs only the shared -seed flag on fs — for binaries
// (cmd/regstorm) that don't carry the full cluster surface but must stay
// byte-for-byte reproducible. Every random draw in internal/loadgen and
// internal/faultnet flows from this one value via deterministic
// sub-seeding, so two runs with the same seed replay the same key
// choices, arrival times and fault schedule.
func RegisterSeed(fs *flag.FlagSet) *int64 {
	p := new(int64)
	registerSeed(fs, p)
	return p
}

func registerSeed(fs *flag.FlagSet, p *int64) {
	fs.Int64Var(p, "seed", 1, "deterministic seed for every random choice (workload keys/arrivals, fault schedules); the same seed replays the same run")
}

// Addrs returns the parsed -cluster list (nil when unset).
func (f *Flags) Addrs() []string {
	if f.Cluster == "" {
		return nil
	}
	return strings.Split(f.Cluster, ",")
}

// serverCount is the one derivation of S: the -cluster list's length
// when given, -servers otherwise.
func (f *Flags) serverCount() int {
	if addrs := f.Addrs(); addrs != nil {
		return len(addrs)
	}
	return f.Servers
}

// Config derives the validated cluster shape.
func (f *Flags) Config() (quorum.Config, error) {
	cfg := quorum.Config{S: f.serverCount(), T: f.T, R: f.Readers, W: f.Writers}
	if err := cfg.Validate(); err != nil {
		return quorum.Config{}, err
	}
	return cfg, nil
}

// Impl resolves the -protocol name.
func (f *Flags) Impl() (register.Protocol, error) { return protocols.New(f.Protocol) }

// ServerOptions maps the shared knobs onto transport.Server options.
// reg (nil when -debug-addr is unset) is the replica's metric registry;
// -slow-op doubles as the server's slow-batch threshold.
func (f *Flags) ServerOptions(reg *obs.Registry) []transport.ServerOption {
	opts := []transport.ServerOption{transport.WithServerShards(f.Shards)}
	if f.EvictTTL > 0 {
		opts = append(opts, transport.WithServerEviction(f.EvictTTL))
	}
	if f.Workers != 0 {
		opts = append(opts, transport.WithServerWorkers(f.Workers))
	}
	if reg != nil || f.SlowOp > 0 {
		opts = append(opts, transport.WithServerObs(reg, f.SlowOp))
	}
	return opts
}

// StoreOptions maps the shared knobs onto fastreg.Open options for a
// client binary driving the fleet at Addrs — the client-side counterpart
// of ServerOptions.
func (f *Flags) StoreOptions() []fastreg.Option {
	opts := []fastreg.Option{fastreg.WithTCP(f.Addrs()...)}
	if f.Unbatched {
		opts = append(opts, fastreg.WithUnbatchedSends())
	}
	if f.EvictTTL > 0 {
		opts = append(opts, fastreg.WithEvictionTTL(f.EvictTTL))
	}
	if f.ConnsPerLink > 1 {
		opts = append(opts, fastreg.WithConnsPerLink(f.ConnsPerLink))
	}
	if f.CaptureDir != "" {
		opts = append(opts, fastreg.WithCapture(f.CaptureDir))
	}
	if f.DebugAddr != "" {
		opts = append(opts, fastreg.WithMetrics())
	}
	if f.SlowOp > 0 {
		opts = append(opts, fastreg.WithSlowOpTrace(f.SlowOp))
	}
	return opts
}

// Registry returns a fresh metric registry when -debug-addr is set, nil
// otherwise — nil being internal/obs's disabled state, so the binary's
// instrumentation costs nothing without the flag.
func (d *DiagFlags) Registry() *obs.Registry {
	if d.DebugAddr == "" {
		return nil
	}
	return obs.New()
}

// ServeDebug starts the debug HTTP endpoint on -debug-addr serving h
// (typically obs.Handler or Store.DebugHandler) and returns a stop
// function. With the flag unset both the serve and the stop are no-ops.
// The listener binds synchronously, so a bad address fails startup
// rather than logging from a goroutine later.
func (d *DiagFlags) ServeDebug(h http.Handler) (stop func(), err error) {
	if d.DebugAddr == "" {
		return func() {}, nil
	}
	lis, err := net.Listen("tcp", d.DebugAddr)
	if err != nil {
		return nil, fmt.Errorf("-debug-addr: %w", err)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(lis)
	return func() { srv.Close() }, nil
}

// StartProfiles begins CPU profiling when -cpuprofile is set and returns
// a stop function that finishes both profiles (writing the -memprofile
// heap snapshot after a final GC). The stop function is safe to call
// exactly once, typically deferred from main; with neither flag set it
// is a no-op.
func (d *DiagFlags) StartProfiles() (stop func(), err error) {
	var cpuF *os.File
	if d.CPUProfile != "" {
		cpuF, err = os.Create(d.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if d.MemProfile != "" {
			memF, err := os.Create(d.MemProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
				return
			}
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(memF); err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
			}
			memF.Close()
		}
	}, nil
}

// ServerCapture opens replica i's audit trace log in the -capture
// directory ("s<i>.trlog"), returning nil when capture is off. The
// caller wires it via transport.WithServerCapture and closes it at
// shutdown.
func (f *Flags) ServerCapture(replica int) (*audit.Writer, error) {
	if f.CaptureDir == "" {
		return nil, nil
	}
	cfg, err := f.Config()
	if err != nil {
		return nil, err
	}
	impl, err := f.Impl()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(f.CaptureDir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(f.CaptureDir, fmt.Sprintf("s%d%s", replica, audit.TraceExt))
	return audit.NewFileWriter(path, audit.ServerHeader(replica, impl.Name(), cfg))
}

// ListenAddr resolves which address replica i (1-based) should bind:
// listen when set, else the -cluster entry for the replica.
func (f *Flags) ListenAddr(replica int, listen string) (string, error) {
	addrs := f.Addrs()
	if addrs != nil {
		if replica >= 1 && replica <= len(addrs) && listen == "" {
			listen = addrs[replica-1]
		}
	} else if listen == "" {
		return "", fmt.Errorf("need -listen or -cluster")
	}
	if s := f.serverCount(); replica < 1 || replica > s {
		return "", fmt.Errorf("-replica %d out of range [1,%d]", replica, s)
	}
	return listen, nil
}
