package proto

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"fastreg/internal/types"
)

// traceSeeds returns valid trace records of every kind for round-trip
// tests and fuzz seeding.
func traceSeeds() []TraceRecord {
	val := types.Value{Tag: types.Tag{TS: 7, WID: types.Writer(2)}, Data: "vv"}
	return []TraceRecord{
		{Kind: TraceHeader, Origin: "s2", Protocol: "W2R2", S: 3, T: 1, R: 4, W: 4, Server: types.Server(2)},
		{Kind: TraceHeader, Origin: "client-991-1", Protocol: "ABD", S: 5, T: 2, R: 3, W: 1},
		{Kind: TraceClientOp, Key: "run/k-01", Client: types.Writer(2), OpID: 9, Op: types.OpWrite,
			Val: val, Invoke: 3, Response: 8},
		{Kind: TraceClientOp, Key: "run/k-01", Client: types.Reader(1), OpID: 2, Op: types.OpRead,
			Val: types.InitialValue(), Invoke: 1, Response: 2},
		{Kind: TraceClientOp, Key: "k", Client: types.Writer(1), OpID: 3, Op: types.OpWrite,
			Val: val, Invoke: 9, Response: 10, Failed: true, Err: "register: operation timed out"},
		{Kind: TraceClientOp, Key: "k", Client: types.Reader(2), OpID: 4, Op: types.OpRead,
			Val: val, Invoke: 5, Response: 6, Epoch: 3},
		{Kind: TraceServerHandle, Key: "k", Client: types.Writer(2), OpID: 9, Server: types.Server(3),
			Round: 2, Payload: KindUpdate, Val: val},
		{Kind: TraceServerHandle, Key: "k", Client: types.Reader(1), OpID: 2, Server: types.Server(1),
			Round: 1, Payload: KindQuery, ReplyVal: val, Epoch: 3, Seq: 17},
		{Kind: TraceEpoch, Epoch: 5},
	}
}

func TestTraceRecordRoundTrip(t *testing.T) {
	for _, rec := range traceSeeds() {
		b, err := EncodeTraceRecord(rec)
		if err != nil {
			t.Fatalf("encode %v: %v", rec, err)
		}
		got, n, err := DecodeTraceRecord(b)
		if err != nil || n != len(b) {
			t.Fatalf("decode %v: n=%d err=%v", rec, n, err)
		}
		if !reflect.DeepEqual(rec, got) {
			t.Fatalf("round trip mismatch:\n in:  %+v\n out: %+v", rec, got)
		}
	}
}

// TestTraceRecordStream checks the file-reading contract: records stream
// back in order, a clean end is io.EOF, and a log cut mid-frame (the
// shape a killed process leaves) is io.ErrUnexpectedEOF.
func TestTraceRecordStream(t *testing.T) {
	var buf bytes.Buffer
	seeds := traceSeeds()
	for _, rec := range seeds {
		if err := WriteTraceRecord(&buf, rec); err != nil {
			t.Fatal(err)
		}
	}
	full := buf.Bytes()

	r := bytes.NewReader(full)
	for i, want := range seeds {
		got, err := ReadTraceRecord(r)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, want, got)
		}
	}
	if _, err := ReadTraceRecord(r); !errors.Is(err, io.EOF) {
		t.Fatalf("clean end: want io.EOF, got %v", err)
	}

	// Every mid-frame truncation point must read back the intact prefix
	// and then report an unexpected (not clean) end; cuts that land
	// exactly on a record boundary are indistinguishable from a complete
	// shorter log and legitimately read as clean.
	boundaries := map[int]bool{}
	for off := 0; off < len(full); {
		_, n, err := DecodeTraceRecord(full[off:])
		if err != nil {
			t.Fatal(err)
		}
		off += n
		boundaries[off] = true
	}
	for cut := 1; cut < len(full); cut++ {
		r := bytes.NewReader(full[:cut])
		var got int
		for {
			_, err := ReadTraceRecord(r)
			if err == nil {
				got++
				continue
			}
			if err == io.EOF && !boundaries[cut] {
				t.Fatalf("cut %d: truncated stream reported a clean EOF after %d records", cut, got)
			}
			break
		}
	}
}

// TestTraceRejectsOtherFrames locks the marker discipline: envelope and
// batch frames are not trace records, and vice versa.
func TestTraceRejectsOtherFrames(t *testing.T) {
	env, err := Encode(Envelope{From: types.Writer(1), To: types.Server(1), OpID: 1, Round: 1, Payload: Query{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeTraceRecord(env); !errors.Is(err, ErrNotTrace) {
		t.Fatalf("envelope frame accepted as trace record: %v", err)
	}
	batch, err := EncodeBatch([]Envelope{{From: types.Writer(1), To: types.Server(1), OpID: 1, Round: 1, Payload: Query{}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeTraceRecord(batch); !errors.Is(err, ErrNotTrace) {
		t.Fatalf("batch frame accepted as trace record: %v", err)
	}
	rec, err := EncodeTraceRecord(traceSeeds()[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decode(rec); err == nil {
		t.Fatal("trace frame accepted as envelope")
	}
	if _, _, err := DecodeBatch(rec); err == nil {
		t.Fatal("trace frame accepted as batch")
	}
}

func TestTraceRejectsInvalid(t *testing.T) {
	if _, err := EncodeTraceRecord(TraceRecord{}); err == nil {
		t.Fatal("zero-kind record encoded")
	}
	// A client op with an invalid op kind must not decode.
	rec := TraceRecord{Kind: TraceClientOp, Key: "k", Client: types.Writer(1), OpID: 1, Op: types.OpWrite}
	b, err := EncodeTraceRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	// The op kind byte sits right after marker+kind+key+proc+opid.
	off := 4 + 1 + 1 + (4 + 1) + (1 + 4) + 8
	b[off] = 99
	if _, _, err := DecodeTraceRecord(b); err == nil {
		t.Fatal("invalid op kind accepted")
	}
}
