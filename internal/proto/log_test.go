package proto

import (
	"testing"

	"fastreg/internal/types"
)

func TestLogEventReadMark(t *testing.T) {
	mark := LogEvent{Client: types.Reader(1)}
	if !mark.IsReadMark() {
		t.Error("zero-value event must be a read mark")
	}
	if mark.String() != "r1:mark" {
		t.Errorf("String = %q", mark.String())
	}
	ev := LogEvent{Client: types.Writer(1), Val: types.Value{Tag: types.Tag{TS: 1, WID: types.Writer(1)}, Data: "x"}}
	if ev.IsReadMark() {
		t.Error("written value misclassified as mark")
	}
}

func TestLogAckWrittenValues(t *testing.T) {
	v1 := types.Value{Tag: types.Tag{TS: 1, WID: types.Writer(1)}, Data: "a"}
	v2 := types.Value{Tag: types.Tag{TS: 1, WID: types.Writer(2)}, Data: "b"}
	ack := LogAck{Events: []LogEvent{
		{Client: types.Writer(1), Val: v1},
		{Client: types.Reader(1)}, // mark
		{Client: types.Writer(2), Val: v2},
		{Client: types.Reader(2), Val: v1}, // duplicate via relay
	}}
	got := ack.WrittenValues()
	if len(got) != 2 || got[0] != v1 || got[1] != v2 {
		t.Errorf("WrittenValues = %v", got)
	}
	if ack.Kind() != KindLogAck || KindLogAck.String() != "LOGACK" {
		t.Error("kind wiring wrong")
	}
}

func TestLogAckCodecRoundTrip(t *testing.T) {
	v := types.Value{Tag: types.Tag{TS: 2, WID: types.Writer(1)}, Data: "p"}
	env := Envelope{
		From: types.Server(1), To: types.Reader(1), OpID: 3, Round: 2, IsReply: true,
		Payload: LogAck{Events: []LogEvent{
			{Client: types.Writer(1), Val: v},
			{Client: types.Reader(2)},
		}},
	}
	b, err := Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := Decode(b)
	if err != nil || n != len(b) {
		t.Fatalf("decode: %v (n=%d/%d)", err, n, len(b))
	}
	ack, ok := got.Payload.(LogAck)
	if !ok || len(ack.Events) != 2 || ack.Events[0].Val != v || !ack.Events[1].IsReadMark() {
		t.Fatalf("round trip mismatch: %+v", got.Payload)
	}
}

func TestLogAckEmptyCodec(t *testing.T) {
	env := Envelope{From: types.Server(1), To: types.Reader(1), Payload: LogAck{}}
	b, err := Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if ack := got.Payload.(LogAck); len(ack.Events) != 0 {
		t.Errorf("events = %v", ack.Events)
	}
}
